// Package arcc is a from-scratch reproduction of "Adaptive Reliability
// Chipkill Correct (ARCC)" (Jian & Kumar, HPCA 2013): an adaptive chipkill
// memory system that keeps fault-free pages in a cheap 2-check-symbol mode
// and upgrades faulty pages, page by page, to a 4-check-symbol mode by
// joining codewords across two memory channels.
//
// The implementation lives under internal/: Galois-field arithmetic and a
// Reed–Solomon codec at the bottom; chipkill ECC schemes (commercial
// SCCDCD, double chip sparing, LOT-ECC, VECC); DRAM, power, cache, memory
// controller and CPU models; the ARCC controller itself (internal/core);
// the enhanced scrubber; the sharded Monte Carlo engine (internal/mc) that
// every lifetime sweep runs on; and the reliability and experiment
// harnesses that regenerate every table and figure of the paper's
// evaluation.
//
// Every experiment is an exhibit (internal/exhibit): a named entry point
// registered by internal/experiments that runs under a context with a
// functional-options Config and returns a structured Report renderable as
// text (byte-identical to the golden files), JSON, or CSV. Declarative
// scenarios — JSON files describing fault mixes, channel geometry, ECC
// upgrade costs, and workload sweeps — compile into exhibits too, so
// studies the paper never shipped run through the same machinery
// (arcc-experiments -scenario). See DESIGN.md for the system inventory,
// the engine's determinism contract, and the exhibit API.
//
// The exhibits are also servable: cmd/arcc-server runs a long-lived HTTP
// sweep service (internal/server) that accepts exhibit and scenario jobs,
// executes them on a bounded worker pool with live progress and one-shard
// cancellation, deduplicates identical runs through a content-addressed
// result cache, and streams reports in any registered format — a served
// report is byte-identical to the CLI's output for the same parameters.
//
// Lifetime sweeps can be accelerated for rare-event regimes: the fault
// model offers conditional ("at least one fault") and rate-tilted
// importance samplers with closed-form likelihood ratios, the engine runs
// weighted trials (internal/mc.RunWeighted) through mergeable streaming
// estimators (internal/stats: weighted moments, 95% CIs, Kish effective
// sample size, a deterministic quantile sketch), and scenarios opt in via
// accel/ci fields or the -accel/-ci flags. Weighted merges keep the
// bit-identical-at-any-parallelism contract, and the unaccelerated path
// reproduces the legacy estimators bit for bit, so goldens never move.
//
// The decode hot path under all of this is batched: internal/gf carries
// bit-sliced, word-parallel GF(256) kernels (eight codeword lanes per
// uint64), internal/rs builds batch encode/syndrome/decode entry points on
// them with an all-clean fast path, and the controller decodes each
// burst's codewords as one batch call. The resulting per-PR perf
// trajectory (BENCH_PR<N>.json, recorded by scripts/bench.sh) is enforced
// by cmd/arcc-benchcmp, which CI runs on every push and which fails on
// >15% ns/op regressions or new steady-state allocations.
//
// The functional memory under the controller is sparse: internal/pagedmem
// is a page-granular memory core in which only touched pages are
// materialised, holes read as zero, and scrub-verified all-zero pages are
// released back to holes — so terabyte-scale systems cost host memory
// proportional to their touched footprint. On top of it the scenario
// layer grew declarative axes: DDR4/DDR5 geometries and device widths
// (dram/width), correlated row-adjacent and bank-burst fault clustering
// with exact per-burst likelihoods that compose with the importance
// samplers (burst), multi-tenant interference mixes on private or shared
// LLCs (tenants/shared_llc/llc_bytes), and trace-file replay through a
// first-class workload source (trace, recorded by arcc-memsim
// -dump-trace). Example scenarios live under examples/scenarios/.
//
// The benchmarks in bench_test.go regenerate one table or figure each:
//
//	go test -bench=. -benchmem .
package arcc
