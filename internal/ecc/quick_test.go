package ecc

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

// Property-based tests on the scheme invariants, driven by testing/quick.

func TestQuickSchemesRoundTripArbitraryData(t *testing.T) {
	for _, s := range allSchemes() {
		s := s
		f := func(seed int64) bool {
			r := rand.New(rand.NewSource(seed))
			data := randBytes(r, s.DataSymbols())
			res, err := s.Decode(s.Encode(data))
			return err == nil && bytes.Equal(res.Data, data)
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
			t.Errorf("%s: %v", s.Name(), err)
		}
	}
}

func TestQuickSingleSymbolCorruptionAlwaysCorrected(t *testing.T) {
	for _, s := range allSchemes() {
		s := s
		f := func(seed int64, posRaw uint16, delta byte) bool {
			if delta == 0 {
				return true
			}
			r := rand.New(rand.NewSource(seed))
			data := randBytes(r, s.DataSymbols())
			cw := s.Encode(data)
			pos := int(posRaw) % s.TotalSymbols()
			cw[pos] ^= delta
			res, err := s.Decode(cw)
			return err == nil && bytes.Equal(res.Data, data)
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
			t.Errorf("%s: %v", s.Name(), err)
		}
	}
}

func TestQuickDetectGuaranteeNeverReturnsWrongDataSilently(t *testing.T) {
	// Within each scheme's guaranteed-detect budget, corrupting that many
	// distinct symbols must never yield a clean decode with wrong data.
	for _, s := range allSchemes() {
		s := s
		f := func(seed int64) bool {
			r := rand.New(rand.NewSource(seed))
			data := randBytes(r, s.DataSymbols())
			cw := s.Encode(data)
			n := s.GuaranteedDetect()
			for _, p := range r.Perm(s.TotalSymbols())[:n] {
				cw[p] ^= byte(1 + r.Intn(255))
			}
			res, err := s.Decode(cw)
			if err != nil {
				return true // detected: fine
			}
			return bytes.Equal(res.Data, data) // corrected exactly: also fine
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
			t.Errorf("%s: silent corruption within detect guarantee: %v", s.Name(), err)
		}
	}
}
