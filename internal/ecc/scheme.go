// Package ecc implements the chipkill-correct ECC schemes that ARCC builds
// on and compares against.
//
// Each scheme protects one codeword whose symbols map one-to-one onto DRAM
// devices in a rank (package dram owns that mapping). The schemes are:
//
//   - Relaxed: 2 check symbols per codeword (the weak, low-power mode ARCC
//     uses for fault-free pages): corrects one bad symbol, guarantees
//     detection of one bad symbol only.
//   - SCCDCD: commercial single chipkill correct double chipkill detect,
//     4 check symbols: corrects one bad symbol, guarantees detection of two.
//   - DoubleChipSparing: 3 check symbols + 1 spare symbol; corrects a second
//     bad symbol provided the first was detected (and remapped to the spare)
//     beforehand.
//   - EightCheck: the §5.1 extension with 8 check symbols across four
//     channels, enabling a second upgrade level.
//
// All schemes use 8-bit symbols so that one symbol per beat comes from each
// x8 device (or two beats of an x4 device), matching Table 7.1.
package ecc

import (
	"errors"

	"arcc/internal/rs"
)

// ErrDetected reports an error pattern that the scheme detected but could
// not correct — a DUE (detectable uncorrectable error) in memory terms.
var ErrDetected = errors.New("ecc: detected uncorrectable error")

// Result is the outcome of decoding one codeword.
type Result struct {
	// Data holds the recovered data symbols (length DataSymbols). The
	// allocating Decode returns a fresh slice; DecodeInto's Data aliases
	// the scratch (or the scratch-held corrected codeword) and is valid
	// only until the scratch's next use.
	Data []byte
	// Corrected lists codeword symbol positions that were repaired.
	Corrected []int
}

// Scheme is one chipkill-correct code configuration. Implementations are
// stateless and safe for concurrent use; sparing state is carried explicitly
// by the caller (see DoubleChipSparing), and decode working memory by the
// scheme-specific Scratch.
type Scheme interface {
	// Name identifies the scheme in experiment output.
	Name() string
	// DataSymbols is the number of data symbols per codeword (K).
	DataSymbols() int
	// TotalSymbols is the codeword length in symbols (N); it equals the
	// number of devices the codeword is striped across.
	TotalSymbols() int
	// CheckSymbols is N - K.
	CheckSymbols() int
	// GuaranteedDetect is the number of bad symbols whose detection the
	// scheme guarantees (the paper's reliability discussion, Ch. 2 & 6).
	GuaranteedDetect() int
	// Encode produces an N-symbol codeword from K data symbols.
	Encode(data []byte) []byte
	// EncodeInto computes the codeword in place: cw has TotalSymbols
	// symbols of which the first DataSymbols hold the data; every other
	// symbol (check symbols, and the sparing scheme's spare) is
	// overwritten. It performs no heap allocations.
	EncodeInto(cw []byte)
	// Decode recovers the data from a possibly corrupted codeword. It
	// returns ErrDetected for detected-uncorrectable patterns. Error
	// patterns beyond GuaranteedDetect bad symbols may silently corrupt
	// data (SDC) — quantifying that risk is the job of package reliability.
	Decode(cw []byte) (Result, error)
	// DecodeInto is Decode against a reusable workspace obtained from this
	// scheme's NewScratch: zero heap allocations in steady state, with the
	// Result aliasing the scratch until its next use. The input is not
	// modified. Decode is the detaching wrapper equivalent.
	DecodeInto(cw []byte, s *Scratch) (Result, error)
	// DecodeBatchInto decodes count codewords laid out in buf at the given
	// stride (codeword i at buf[i*stride : i*stride+TotalSymbols]), IN
	// PLACE, against the reusable workspace — the memory controller's burst
	// path, where all codewords of one access decode together. On return
	// every successfully decoded codeword's data symbols hold the recovered
	// data at their natural positions (schemes with a non-prefix layout
	// un-remap in place); codewords with detected-uncorrectable patterns
	// keep their raw content. It returns the total number of symbol
	// positions repaired across the batch, plus ErrDetected if any codeword
	// was uncorrectable. The all-clean batch — the overwhelmingly common
	// read — is verified word-parallel without running the scalar decoder
	// at all, and the call performs zero heap allocations in steady state.
	DecodeBatchInto(buf []byte, stride, count int, s *Scratch) (corrected int, err error)
	// NewScratch allocates a decode workspace sized for this scheme.
	NewScratch() *Scratch
}

// rsScheme is the shared shape of the RS-backed schemes.
type rsScheme struct {
	name     string
	code     *rs.Code
	maxFix   int // correction bound (policy, not raw code capability)
	detectGt int // guaranteed detect count
}

func (s *rsScheme) Name() string          { return s.name }
func (s *rsScheme) DataSymbols() int      { return s.code.K() }
func (s *rsScheme) TotalSymbols() int     { return s.code.N() }
func (s *rsScheme) CheckSymbols() int     { return s.code.CheckSymbols() }
func (s *rsScheme) GuaranteedDetect() int { return s.detectGt }

func (s *rsScheme) Encode(data []byte) []byte { return s.code.Encode(data) }

// EncodeInto implements Scheme: the data symbols are the codeword prefix,
// so this is the underlying code's in-place systematic encode.
func (s *rsScheme) EncodeInto(cw []byte) { s.code.EncodeInto(cw) }

func (s *rsScheme) Decode(cw []byte) (Result, error) {
	res, err := s.code.DecodeBounded(cw, s.maxFix)
	if err != nil {
		return Result{}, ErrDetected
	}
	return Result{Data: res.Corrected[:s.code.K()], Corrected: res.ErrorPositions}, nil
}

// DecodeInto implements Scheme on rs.DecodeScratch; the Result aliases s.
func (s *rsScheme) DecodeInto(cw []byte, scr *Scratch) (Result, error) {
	res, err := s.code.DecodeScratch(cw, s.maxFix, scr.rs)
	if err != nil {
		return Result{}, ErrDetected
	}
	return Result{Data: res.Corrected[:s.code.K()], Corrected: res.ErrorPositions}, nil
}

// DecodeBatchInto implements Scheme on rs.DecodeBatchFlat: data symbols are
// the codeword prefix, so the in-place batch correction already leaves the
// recovered data at its natural positions.
func (s *rsScheme) DecodeBatchInto(buf []byte, stride, count int, scr *Scratch) (int, error) {
	res := s.code.DecodeBatchFlat(buf, stride, count, s.maxFix, scr.rs)
	if !res.OK() {
		return res.Corrected, ErrDetected
	}
	return res.Corrected, nil
}

// NewScratch implements Scheme.
func (s *rsScheme) NewScratch() *Scratch { return &Scratch{rs: s.code.NewScratch()} }

// NewRelaxed returns the relaxed-mode code: 16 data + 2 check symbols,
// single symbol correct / single symbol detect. An 18-device rank serves one
// symbol per device.
func NewRelaxed() Scheme {
	return &rsScheme{name: "relaxed-scc", code: rs.New(18, 16), maxFix: 1, detectGt: 1}
}

// NewSCCDCD returns the commercial chipkill-correct code of Fig. 2.1:
// 32 data + 4 check symbols, decoded with a single-error bound so that the
// remaining redundancy guarantees detection of a second bad symbol. This
// mirrors the "somewhat inefficient encoding" the paper attributes to
// commercial SCCDCD: all four check symbols are spent on single correct +
// double detect.
func NewSCCDCD() Scheme {
	return &rsScheme{name: "sccdcd", code: rs.New(36, 32), maxFix: 1, detectGt: 2}
}

// NewEightCheck returns the §5.1 second-level upgrade code: 64 data + 8
// check symbols striped across four channels, decoded at a two-error bound
// (remaining redundancy still guarantees detection of four bad symbols in
// principle; we claim the conservative 4).
func NewEightCheck() Scheme {
	return &rsScheme{name: "eight-check", code: rs.New(72, 64), maxFix: 2, detectGt: 4}
}

// StorageOverhead returns the scheme's redundant-storage fraction:
// (total - data) / data symbols. The paper's central storage claim is that
// ARCC's mode changes never move this number: relaxed (2/16), upgraded
// SCCDCD (4/32), double chip sparing (4/32 counting the spare), and the
// §5.1 eight-check mode (8/64) all cost exactly 12.5%, the same as
// SECDED DIMMs.
func StorageOverhead(s Scheme) float64 {
	return float64(s.TotalSymbols()-s.DataSymbols()) / float64(s.DataSymbols())
}
