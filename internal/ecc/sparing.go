package ecc

import (
	"fmt"

	"arcc/internal/rs"
)

// DoubleChipSparing models the second commercial chipkill solution of Ch. 2:
// a 36-symbol codeword with 32 data symbols, 3 check symbols, and 1 spare
// symbol. The efficient 3-check encoding provides single symbol correct +
// double symbol detect; when a bad symbol is detected its device position is
// remapped to the spare, after which a *second* bad symbol can still be
// corrected — as long as it appears after the first was detected.
//
// Sparing state (which position has been remapped) belongs to the rank, not
// the code, so it is passed explicitly to DecodeSpared. The plain Decode
// method decodes with no position spared.
type DoubleChipSparing struct {
	code *rs.Code // (36, 33): 33 payload symbols (32 data + spare slot), 3 check
}

// NewDoubleChipSparing constructs the scheme.
func NewDoubleChipSparing() *DoubleChipSparing {
	// Layout: positions 0..31 data, position 32 spare, positions 33..35 the
	// three check symbols. The spare participates in the code as a payload
	// symbol so its contents are protected once it is put to use.
	return &DoubleChipSparing{code: rs.New(36, 33)}
}

// Name implements Scheme.
func (s *DoubleChipSparing) Name() string { return "double-chip-sparing" }

// DataSymbols implements Scheme: 32 true data symbols per codeword.
func (s *DoubleChipSparing) DataSymbols() int { return 32 }

// TotalSymbols implements Scheme.
func (s *DoubleChipSparing) TotalSymbols() int { return 36 }

// CheckSymbols implements Scheme: three true check symbols (the fourth
// redundant device holds the spare).
func (s *DoubleChipSparing) CheckSymbols() int { return 3 }

// GuaranteedDetect implements Scheme.
func (s *DoubleChipSparing) GuaranteedDetect() int { return 2 }

// SparePosition is the codeword position of the spare symbol.
const SparePosition = 32

// Encode implements Scheme. The spare symbol is initialised to zero.
func (s *DoubleChipSparing) Encode(data []byte) []byte {
	if len(data) != 32 {
		panic(fmt.Sprintf("ecc: sparing Encode with %d symbols, want 32", len(data)))
	}
	payload := make([]byte, 33)
	copy(payload, data)
	return s.code.Encode(payload)
}

// EncodeSpared encodes data for a codeword whose sparedPos has been remapped:
// the symbol that would live at sparedPos is stored in the spare position
// instead, and the dead position carries zero.
func (s *DoubleChipSparing) EncodeSpared(data []byte, sparedPos int) []byte {
	if sparedPos < 0 {
		return s.Encode(data)
	}
	if len(data) != 32 {
		panic(fmt.Sprintf("ecc: sparing Encode with %d symbols, want 32", len(data)))
	}
	if sparedPos >= 32 {
		panic(fmt.Sprintf("ecc: cannot spare non-data position %d", sparedPos))
	}
	payload := make([]byte, 33)
	copy(payload, data)
	payload[SparePosition] = data[sparedPos]
	payload[sparedPos] = 0
	return s.code.Encode(payload)
}

// EncodeInto implements Scheme: cw[0:32] hold the data; the spare (position
// 32) and the check symbols are overwritten in place.
func (s *DoubleChipSparing) EncodeInto(cw []byte) { s.EncodeSparedInto(cw, -1) }

// EncodeSparedInto is EncodeSpared in place: cw[0:32] hold the data laid
// out at their natural positions; the spare remap (move cw[sparedPos] to
// the spare, zero the dead position) and the check symbols are applied
// directly to cw. It performs no heap allocations.
func (s *DoubleChipSparing) EncodeSparedInto(cw []byte, sparedPos int) {
	if len(cw) != 36 {
		panic(fmt.Sprintf("ecc: sparing EncodeInto with %d symbols, want 36", len(cw)))
	}
	if sparedPos >= 32 {
		panic(fmt.Sprintf("ecc: cannot spare non-data position %d", sparedPos))
	}
	if sparedPos < 0 {
		cw[SparePosition] = 0
	} else {
		cw[SparePosition] = cw[sparedPos]
		cw[sparedPos] = 0
	}
	s.code.EncodeInto(cw)
}

// Decode implements Scheme, decoding with no spared position.
func (s *DoubleChipSparing) Decode(cw []byte) (Result, error) {
	return s.DecodeSpared(cw, -1)
}

// DecodeSpared decodes a codeword in which sparedPos (-1 for none) has been
// remapped to the spare. The dead position is treated as an erasure, which
// leaves enough redundancy to correct one additional unknown bad symbol —
// the "second chipkill" the scheme is named for.
func (s *DoubleChipSparing) DecodeSpared(cw []byte, sparedPos int) (Result, error) {
	if len(cw) != 36 {
		panic(fmt.Sprintf("ecc: sparing Decode with %d symbols, want 36", len(cw)))
	}
	var res rs.Result
	var err error
	if sparedPos < 0 {
		res, err = s.code.DecodeBounded(cw, 1)
	} else {
		// One erasure (the dead device) + up to one unknown error uses
		// exactly the three check symbols: 2*1 + 1 = 3.
		res, err = s.code.DecodeErrorsErasures(cw, []int{sparedPos}, 1)
	}
	if err != nil {
		return Result{}, ErrDetected
	}
	data := make([]byte, 32)
	copy(data, res.Corrected[:32])
	if sparedPos >= 0 {
		data[sparedPos] = res.Corrected[SparePosition]
	}
	return Result{Data: data, Corrected: res.ErrorPositions}, nil
}

// DecodeInto implements Scheme, decoding with no spared position against
// the reusable workspace; the Result aliases scr.
func (s *DoubleChipSparing) DecodeInto(cw []byte, scr *Scratch) (Result, error) {
	return s.DecodeSparedInto(cw, -1, scr)
}

// DecodeSparedInto is DecodeSpared against a reusable workspace: zero heap
// allocations in steady state, with the Result aliasing scr until its next
// use (for spared codewords Data is scr's remap buffer; otherwise it aliases
// the corrected codeword directly).
func (s *DoubleChipSparing) DecodeSparedInto(cw []byte, sparedPos int, scr *Scratch) (Result, error) {
	if len(cw) != 36 {
		panic(fmt.Sprintf("ecc: sparing Decode with %d symbols, want 36", len(cw)))
	}
	var res rs.Result
	var err error
	if sparedPos < 0 {
		res, err = s.code.DecodeScratch(cw, 1, scr.rs)
	} else {
		// One erasure (the dead device) + up to one unknown error uses
		// exactly the three check symbols: 2*1 + 1 = 3.
		scr.erasure[0] = sparedPos
		res, err = s.code.DecodeErrorsErasuresScratch(cw, scr.erasure[:], 1, scr.rs)
	}
	if err != nil {
		return Result{}, ErrDetected
	}
	if sparedPos < 0 {
		return Result{Data: res.Corrected[:32], Corrected: res.ErrorPositions}, nil
	}
	copy(scr.data, res.Corrected[:32])
	scr.data[sparedPos] = res.Corrected[SparePosition]
	return Result{Data: scr.data, Corrected: res.ErrorPositions}, nil
}

// DecodeBatchInto implements Scheme, batch-decoding with no spared position.
func (s *DoubleChipSparing) DecodeBatchInto(buf []byte, stride, count int, scr *Scratch) (int, error) {
	return s.DecodeSparedBatchInto(buf, stride, count, -1, scr)
}

// DecodeSparedBatchInto is DecodeSpared over a flat batch, in place:
// codeword i occupies buf[i*stride : i*stride+36]. On return each good
// codeword's first 32 symbols hold the recovered data — for spared
// codewords the spare symbol is un-remapped back over the dead position, so
// the lane no longer reads as a valid stored codeword — while uncorrectable
// codewords keep their raw content (no un-remap: the raw symbols are
// untrusted either way). Returns the total repaired-symbol count plus
// ErrDetected if any codeword was uncorrectable. Zero heap allocations in
// steady state; the all-clean batch never runs the scalar decoder.
func (s *DoubleChipSparing) DecodeSparedBatchInto(buf []byte, stride, count, sparedPos int, scr *Scratch) (int, error) {
	if sparedPos >= 32 {
		panic(fmt.Sprintf("ecc: cannot spare non-data position %d", sparedPos))
	}
	var res rs.BatchResult
	if sparedPos < 0 {
		res = s.code.DecodeBatchFlat(buf, stride, count, 1, scr.rs)
	} else {
		// One erasure (the dead device) + up to one unknown error uses
		// exactly the three check symbols: 2*1 + 1 = 3.
		scr.erasure[0] = sparedPos
		res = s.code.DecodeErrorsErasuresBatchFlat(buf, stride, count, scr.erasure[:], 1, scr.rs)
		// Un-remap the good lanes: the symbol the dead device would have
		// held lives in the spare position. res.Bad is ascending, so one
		// cursor walks it in step with the lane loop.
		bi := 0
		for i := 0; i < count; i++ {
			if bi < len(res.Bad) && res.Bad[bi] == i {
				bi++
				continue
			}
			lane := buf[i*stride:]
			lane[sparedPos] = lane[SparePosition]
		}
	}
	if !res.OK() {
		return res.Corrected, ErrDetected
	}
	return res.Corrected, nil
}

// NewScratch implements Scheme.
func (s *DoubleChipSparing) NewScratch() *Scratch {
	return &Scratch{rs: s.code.NewScratch(), data: make([]byte, 32)}
}

var _ Scheme = (*DoubleChipSparing)(nil)
