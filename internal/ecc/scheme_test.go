package ecc

import (
	"bytes"
	"math/rand"
	"testing"
)

func allSchemes() []Scheme {
	return []Scheme{NewRelaxed(), NewSCCDCD(), NewEightCheck(), NewDoubleChipSparing()}
}

func randBytes(r *rand.Rand, n int) []byte {
	b := make([]byte, n)
	r.Read(b)
	return b
}

func TestSchemeGeometry(t *testing.T) {
	cases := []struct {
		s                  Scheme
		data, total, check int
		detect             int
	}{
		{NewRelaxed(), 16, 18, 2, 1},
		{NewSCCDCD(), 32, 36, 4, 2},
		{NewEightCheck(), 64, 72, 8, 4},
		{NewDoubleChipSparing(), 32, 36, 3, 2},
	}
	for _, c := range cases {
		if c.s.DataSymbols() != c.data || c.s.TotalSymbols() != c.total ||
			c.s.CheckSymbols() != c.check || c.s.GuaranteedDetect() != c.detect {
			t.Errorf("%s: geometry = (%d,%d,%d,detect %d), want (%d,%d,%d,detect %d)",
				c.s.Name(), c.s.DataSymbols(), c.s.TotalSymbols(), c.s.CheckSymbols(), c.s.GuaranteedDetect(),
				c.data, c.total, c.check, c.detect)
		}
	}
}

func TestSchemeRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for _, s := range allSchemes() {
		for trial := 0; trial < 50; trial++ {
			data := randBytes(r, s.DataSymbols())
			cw := s.Encode(data)
			if len(cw) != s.TotalSymbols() {
				t.Fatalf("%s: codeword length %d, want %d", s.Name(), len(cw), s.TotalSymbols())
			}
			res, err := s.Decode(cw)
			if err != nil {
				t.Fatalf("%s: clean decode failed: %v", s.Name(), err)
			}
			if !bytes.Equal(res.Data, data) {
				t.Fatalf("%s: clean round trip corrupted data", s.Name())
			}
		}
	}
}

func TestSchemeCorrectsSingleBadSymbol(t *testing.T) {
	// Every scheme must survive a whole-device (single-symbol) failure at
	// any position: that is the definition of chipkill correct.
	r := rand.New(rand.NewSource(2))
	for _, s := range allSchemes() {
		data := randBytes(r, s.DataSymbols())
		cw := s.Encode(data)
		for pos := 0; pos < s.TotalSymbols(); pos++ {
			bad := make([]byte, len(cw))
			copy(bad, cw)
			bad[pos] ^= byte(1 + r.Intn(255))
			res, err := s.Decode(bad)
			if err != nil {
				t.Fatalf("%s: single bad symbol at %d not corrected: %v", s.Name(), pos, err)
			}
			if !bytes.Equal(res.Data, data) {
				t.Fatalf("%s: wrong correction at position %d", s.Name(), pos)
			}
			if len(res.Corrected) != 1 || res.Corrected[0] != pos {
				t.Fatalf("%s: corrected positions %v, want [%d]", s.Name(), res.Corrected, pos)
			}
		}
	}
}

func TestSCCDCDDetectsDoubleBadSymbol(t *testing.T) {
	// The commercial guarantee: two bad symbols are always detected.
	s := NewSCCDCD()
	r := rand.New(rand.NewSource(3))
	data := randBytes(r, s.DataSymbols())
	cw := s.Encode(data)
	for trial := 0; trial < 1000; trial++ {
		bad := make([]byte, len(cw))
		copy(bad, cw)
		perm := r.Perm(s.TotalSymbols())[:2]
		for _, p := range perm {
			bad[p] ^= byte(1 + r.Intn(255))
		}
		if _, err := s.Decode(bad); err != ErrDetected {
			t.Fatalf("trial %d: double bad symbol not detected (err=%v)", trial, err)
		}
	}
}

func TestDoubleChipSparingDetectsDoubleBadSymbol(t *testing.T) {
	s := NewDoubleChipSparing()
	r := rand.New(rand.NewSource(4))
	data := randBytes(r, 32)
	cw := s.Encode(data)
	for trial := 0; trial < 1000; trial++ {
		bad := make([]byte, len(cw))
		copy(bad, cw)
		perm := r.Perm(36)[:2]
		for _, p := range perm {
			bad[p] ^= byte(1 + r.Intn(255))
		}
		if _, err := s.Decode(bad); err != ErrDetected {
			t.Fatalf("trial %d: simultaneous double bad symbol not detected (err=%v)", trial, err)
		}
	}
}

func TestDoubleChipSparingCorrectsSecondFaultAfterSparing(t *testing.T) {
	// The headline capability: once the first bad device is spared, a
	// second whole-device fault is still correctable.
	s := NewDoubleChipSparing()
	r := rand.New(rand.NewSource(5))
	for trial := 0; trial < 200; trial++ {
		data := randBytes(r, 32)
		firstBad := r.Intn(32)
		cw := s.EncodeSpared(data, firstBad)

		// The dead device now returns garbage AND a second device fails.
		bad := make([]byte, len(cw))
		copy(bad, cw)
		bad[firstBad] = byte(r.Intn(256)) // garbage from the dead device
		secondBad := r.Intn(36)
		for secondBad == firstBad {
			secondBad = r.Intn(36)
		}
		bad[secondBad] ^= byte(1 + r.Intn(255))

		res, err := s.DecodeSpared(bad, firstBad)
		if err != nil {
			t.Fatalf("trial %d: second fault after sparing not corrected: %v", trial, err)
		}
		if !bytes.Equal(res.Data, data) {
			t.Fatalf("trial %d: wrong data after spared decode", trial)
		}
	}
}

func TestDoubleChipSparingSparedRoundTripClean(t *testing.T) {
	s := NewDoubleChipSparing()
	r := rand.New(rand.NewSource(6))
	for pos := 0; pos < 32; pos++ {
		data := randBytes(r, 32)
		cw := s.EncodeSpared(data, pos)
		res, err := s.DecodeSpared(cw, pos)
		if err != nil {
			t.Fatalf("spared pos %d: %v", pos, err)
		}
		if !bytes.Equal(res.Data, data) {
			t.Fatalf("spared pos %d: data mismatch", pos)
		}
	}
}

func TestDoubleChipSparingEncodeSparedNegativeIsPlain(t *testing.T) {
	s := NewDoubleChipSparing()
	data := randBytes(rand.New(rand.NewSource(7)), 32)
	if !bytes.Equal(s.EncodeSpared(data, -1), s.Encode(data)) {
		t.Fatal("EncodeSpared(-1) differs from Encode")
	}
}

func TestDoubleChipSparingPanics(t *testing.T) {
	s := NewDoubleChipSparing()
	for name, f := range map[string]func(){
		"encode wrong len":   func() { s.Encode(make([]byte, 16)) },
		"spare non-data pos": func() { s.EncodeSpared(make([]byte, 32), 33) },
		"decode wrong len":   func() { s.Decode(make([]byte, 18)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			f()
		}()
	}
}

func TestRelaxedDetectsSingleAlwaysButNotAlwaysDouble(t *testing.T) {
	// Relaxed mode guarantees only single-symbol detection. Doubles must
	// never come back as the original data, but may miscorrect — the SDC
	// exposure that motivates upgrading faulty pages.
	s := NewRelaxed()
	r := rand.New(rand.NewSource(8))
	data := randBytes(r, 16)
	cw := s.Encode(data)
	var miscorrect int
	for trial := 0; trial < 500; trial++ {
		bad := make([]byte, len(cw))
		copy(bad, cw)
		perm := r.Perm(18)[:2]
		for _, p := range perm {
			bad[p] ^= byte(1 + r.Intn(255))
		}
		res, err := s.Decode(bad)
		if err == nil {
			if bytes.Equal(res.Data, data) {
				t.Fatalf("trial %d: double error decoded to original data", trial)
			}
			miscorrect++
		}
	}
	if miscorrect == 0 {
		t.Fatal("relaxed mode never miscorrected a double error in 500 trials; SDC window should exist")
	}
}

func TestEightCheckCorrectsDoubleBadSymbol(t *testing.T) {
	s := NewEightCheck()
	r := rand.New(rand.NewSource(9))
	data := randBytes(r, 64)
	cw := s.Encode(data)
	for trial := 0; trial < 200; trial++ {
		bad := make([]byte, len(cw))
		copy(bad, cw)
		perm := r.Perm(72)[:2]
		for _, p := range perm {
			bad[p] ^= byte(1 + r.Intn(255))
		}
		res, err := s.Decode(bad)
		if err != nil {
			t.Fatalf("trial %d: double error not corrected by 8-check code: %v", trial, err)
		}
		if !bytes.Equal(res.Data, data) {
			t.Fatalf("trial %d: wrong correction", trial)
		}
	}
}

func TestStorageOverheadInvariant(t *testing.T) {
	// The paper's storage argument: every ARCC mode costs exactly the
	// commercial 12.5% overhead — upgrades trade power for reliability,
	// never for capacity.
	for _, s := range allSchemes() {
		if got := StorageOverhead(s); got != 0.125 {
			t.Errorf("%s: storage overhead %v, want 0.125", s.Name(), got)
		}
	}
}
