package ecc

import (
	"bytes"
	"errors"
	"math/rand"
	"slices"
	"testing"
)

func randPayload(r *rand.Rand, n int) []byte {
	b := make([]byte, n)
	r.Read(b)
	return b
}

// TestDecodeIntoMatchesDecode pins the scratch decode of every scheme to the
// allocating Decode across clean, single-error, and detected-uncorrectable
// codewords.
func TestDecodeIntoMatchesDecode(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for _, s := range []Scheme{NewRelaxed(), NewSCCDCD(), NewEightCheck(), NewDoubleChipSparing()} {
		scr := s.NewScratch()
		for trial := 0; trial < 200; trial++ {
			cw := s.Encode(randPayload(r, s.DataSymbols()))
			// 0, 1, or GuaranteedDetect corruptions.
			nbad := trial % 3
			if nbad == 2 {
				nbad = s.GuaranteedDetect()
			}
			for _, pos := range r.Perm(s.TotalSymbols())[:nbad] {
				cw[pos] ^= byte(1 + r.Intn(255))
			}
			want, wantErr := s.Decode(cw)
			got, gotErr := s.DecodeInto(cw, scr)
			if (wantErr == nil) != (gotErr == nil) {
				t.Fatalf("%s: error mismatch: %v vs %v", s.Name(), gotErr, wantErr)
			}
			if wantErr != nil {
				if !errors.Is(gotErr, ErrDetected) {
					t.Fatalf("%s: DecodeInto error %v, want ErrDetected", s.Name(), gotErr)
				}
				continue
			}
			if !bytes.Equal(got.Data, want.Data) {
				t.Fatalf("%s: data mismatch", s.Name())
			}
			if !slices.Equal(got.Corrected, want.Corrected) {
				t.Fatalf("%s: corrected positions %v vs %v", s.Name(), got.Corrected, want.Corrected)
			}
		}
	}
}

// TestEncodeIntoMatchesEncode pins the in-place encode of every scheme to
// the allocating Encode.
func TestEncodeIntoMatchesEncode(t *testing.T) {
	r := rand.New(rand.NewSource(43))
	for _, s := range []Scheme{NewRelaxed(), NewSCCDCD(), NewEightCheck(), NewDoubleChipSparing()} {
		for trial := 0; trial < 50; trial++ {
			data := randPayload(r, s.DataSymbols())
			want := s.Encode(data)
			cw := make([]byte, s.TotalSymbols())
			copy(cw, data)
			// Dirty the non-data symbols to prove they are overwritten.
			for i := s.DataSymbols(); i < len(cw); i++ {
				cw[i] = 0xAA
			}
			s.EncodeInto(cw)
			if !bytes.Equal(cw, want) {
				t.Fatalf("%s: EncodeInto mismatch", s.Name())
			}
		}
	}
}

// TestSparedIntoMatchesSpared pins the sparing scheme's scratch paths to the
// allocating ones with a remapped position, including the second-fault
// correction the spare enables.
func TestSparedIntoMatchesSpared(t *testing.T) {
	s := NewDoubleChipSparing()
	scr := s.NewScratch()
	r := rand.New(rand.NewSource(44))
	for trial := 0; trial < 200; trial++ {
		data := randPayload(r, 32)
		sparedPos := r.Intn(32)
		want := s.EncodeSpared(data, sparedPos)
		cw := make([]byte, 36)
		copy(cw, data)
		s.EncodeSparedInto(cw, sparedPos)
		if !bytes.Equal(cw, want) {
			t.Fatal("EncodeSparedInto mismatch")
		}
		// The dead device babbles, and a second fault may hit elsewhere.
		cw[sparedPos] = byte(r.Intn(256))
		if trial%2 == 0 {
			cw[(sparedPos+1+r.Intn(35))%36] ^= byte(1 + r.Intn(255))
		}
		wantRes, wantErr := s.DecodeSpared(cw, sparedPos)
		gotRes, gotErr := s.DecodeSparedInto(cw, sparedPos, scr)
		if (wantErr == nil) != (gotErr == nil) {
			t.Fatalf("error mismatch: %v vs %v", gotErr, wantErr)
		}
		if wantErr != nil {
			continue
		}
		if !bytes.Equal(gotRes.Data, wantRes.Data) {
			t.Fatal("spared decode data mismatch")
		}
		if !bytes.Equal(gotRes.Data, data) {
			t.Fatal("spared decode did not recover the data")
		}
		if !slices.Equal(gotRes.Corrected, wantRes.Corrected) {
			t.Fatalf("spared corrected positions %v vs %v", gotRes.Corrected, wantRes.Corrected)
		}
	}
}

// TestDecodeIntoAllocationFree pins the scheme-level scratch decode paths to
// zero heap allocations for the clean and single-error cases of every
// scheme, plus the sparing scheme's erasure path.
func TestDecodeIntoAllocationFree(t *testing.T) {
	r := rand.New(rand.NewSource(45))
	for _, s := range []Scheme{NewRelaxed(), NewSCCDCD(), NewEightCheck(), NewDoubleChipSparing()} {
		scr := s.NewScratch()
		clean := s.Encode(randPayload(r, s.DataSymbols()))
		oneErr := append([]byte(nil), clean...)
		oneErr[5] ^= 0x3C
		for name, cw := range map[string][]byte{"clean": clean, "1err": oneErr} {
			f := func() {
				if _, err := s.DecodeInto(cw, scr); err != nil {
					t.Fatal(err)
				}
			}
			f() // warm up
			if allocs := testing.AllocsPerRun(100, f); allocs != 0 {
				t.Errorf("%s/%s: %v allocs/op, want 0", s.Name(), name, allocs)
			}
		}
		buf := make([]byte, s.TotalSymbols())
		copy(buf, clean)
		enc := func() { s.EncodeInto(buf) }
		enc()
		if allocs := testing.AllocsPerRun(100, enc); allocs != 0 {
			t.Errorf("%s/EncodeInto: %v allocs/op, want 0", s.Name(), allocs)
		}
	}

	sp := NewDoubleChipSparing()
	scr := sp.NewScratch()
	data := randPayload(r, 32)
	cw := make([]byte, 36)
	copy(cw, data)
	sp.EncodeSparedInto(cw, 7)
	cw[7] = 0x55 // dead device babbles
	cw[20] ^= 1  // plus a second fault
	f := func() {
		if _, err := sp.DecodeSparedInto(cw, 7, scr); err != nil {
			t.Fatal(err)
		}
	}
	f()
	if allocs := testing.AllocsPerRun(100, f); allocs != 0 {
		t.Errorf("sparing/spared+1err: %v allocs/op, want 0", allocs)
	}
}
