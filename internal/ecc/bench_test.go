package ecc

import (
	"math/rand"
	"testing"
)

// The scheme-level decode benchmarks cover the codeword geometries the
// functional data path (package core) decodes on every access: the relaxed
// (18,16) code, the upgraded SCCDCD (36,32) code, the sparing code with a
// remapped position, and the §5.1 (72,64) code. Run with -benchmem: the
// DecodeInto paths must report zero allocs/op.

func benchScheme(b *testing.B, s Scheme, nbad int) {
	r := rand.New(rand.NewSource(1))
	data := make([]byte, s.DataSymbols())
	r.Read(data)
	cw := s.Encode(data)
	for _, pos := range r.Perm(s.TotalSymbols())[:nbad] {
		cw[pos] ^= byte(1 + r.Intn(255))
	}
	scr := s.NewScratch()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.DecodeInto(cw, scr); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecodeIntoRelaxedClean(b *testing.B)   { benchScheme(b, NewRelaxed(), 0) }
func BenchmarkDecodeIntoRelaxed1Err(b *testing.B)    { benchScheme(b, NewRelaxed(), 1) }
func BenchmarkDecodeIntoSCCDCDClean(b *testing.B)    { benchScheme(b, NewSCCDCD(), 0) }
func BenchmarkDecodeIntoSCCDCD1Err(b *testing.B)     { benchScheme(b, NewSCCDCD(), 1) }
func BenchmarkDecodeIntoEightCheck2Err(b *testing.B) { benchScheme(b, NewEightCheck(), 2) }

// BenchmarkDecodeIntoSpared1Err measures the sparing scheme's
// erasure+error path: a dead (spared) device babbling plus one new fault.
func BenchmarkDecodeIntoSpared1Err(b *testing.B) {
	s := NewDoubleChipSparing()
	r := rand.New(rand.NewSource(2))
	data := make([]byte, 32)
	r.Read(data)
	cw := make([]byte, 36)
	copy(cw, data)
	s.EncodeSparedInto(cw, 7)
	cw[7] = 0x55
	cw[20] ^= 0x0F
	scr := s.NewScratch()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.DecodeSparedInto(cw, 7, scr); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDecodeLegacySCCDCD1Err is the allocating wrapper for comparison.
func BenchmarkDecodeLegacySCCDCD1Err(b *testing.B) {
	s := NewSCCDCD()
	r := rand.New(rand.NewSource(3))
	data := make([]byte, s.DataSymbols())
	r.Read(data)
	cw := s.Encode(data)
	cw[11] ^= 0x42
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Decode(cw); err != nil {
			b.Fatal(err)
		}
	}
}
