package ecc

import "arcc/internal/rs"

// Scratch is a reusable decode workspace for one Scheme, wrapping the
// underlying rs.Scratch plus the small remap buffer schemes with a
// non-prefix data layout (double chip sparing) need. Mirroring the rs
// contract: a Scratch belongs to one decode call at a time, and the Result
// returned by DecodeInto/DecodeSparedInto aliases the scratch's buffers,
// valid only until the scratch's next use. Scratches are scheme-specific —
// obtain one from the Scheme whose DecodeInto it will be passed to.
type Scratch struct {
	rs *rs.Scratch
	// data backs Result.Data when the decoded payload cannot alias the
	// corrected codeword directly (the sparing scheme's spare-position
	// un-remap); sized to the scheme's DataSymbols.
	data    []byte
	erasure [1]int
}
