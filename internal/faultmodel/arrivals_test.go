package faultmodel

import (
	"math/rand"
	"sort"
	"testing"
)

// TestSampleArrivalsIntoMatchesSampleArrivals pins the RNG-interchange
// contract: for identically seeded generators, the buffered and allocating
// samplers must produce identical histories draw for draw, so migrating a
// Monte Carlo loop onto SampleArrivalsInto cannot move any golden value.
func TestSampleArrivalsIntoMatchesSampleArrivals(t *testing.T) {
	rates := FieldStudyRates().Scale(50) // inflated so histories have events
	rngA := rand.New(rand.NewSource(3))
	rngB := rand.New(rand.NewSource(3))
	var buf []Arrival
	for trial := 0; trial < 200; trial++ {
		want := SampleArrivals(rngA, rates, 2, 36, 7)
		buf = SampleArrivalsInto(rngB, buf, rates, 2, 36, 7)
		if len(want) != len(buf) {
			t.Fatalf("trial %d: %d arrivals buffered, %d allocated", trial, len(buf), len(want))
		}
		for i := range want {
			if want[i] != buf[i] {
				t.Fatalf("trial %d arrival %d: %+v != %+v", trial, i, buf[i], want[i])
			}
		}
	}
}

func TestSampleArrivalsIntoSorted(t *testing.T) {
	rates := FieldStudyRates().Scale(500)
	rng := rand.New(rand.NewSource(4))
	var buf []Arrival
	for trial := 0; trial < 100; trial++ {
		buf = SampleArrivalsInto(rng, buf, rates, 2, 36, 7)
		if !sort.SliceIsSorted(buf, func(i, j int) bool { return buf[i].AtHours < buf[j].AtHours }) {
			t.Fatalf("trial %d: arrivals not sorted by time", trial)
		}
	}
}

func TestSampleArrivalsIntoReusesCapacity(t *testing.T) {
	rates := FieldStudyRates().Scale(50)
	rng := rand.New(rand.NewSource(5))
	buf := make([]Arrival, 0, 64)
	out := SampleArrivalsInto(rng, buf, rates, 2, 36, 7)
	if len(out) > 64 {
		t.Skip("draw outgrew the test buffer")
	}
	if cap(out) != cap(buf) || (len(out) > 0 && &out[0] != &buf[:1][0]) {
		t.Fatal("SampleArrivalsInto did not reuse the caller's buffer")
	}
}

// TestSampleArrivalsIntoZeroAllocations is the sampling half of the PR's
// allocation contract: with an adequate buffer the sampler never touches
// the heap.
func TestSampleArrivalsIntoZeroAllocations(t *testing.T) {
	rates := FieldStudyRates().Scale(50)
	rng := rand.New(rand.NewSource(6))
	buf := make([]Arrival, 0, 1024)
	allocs := testing.AllocsPerRun(200, func() {
		buf = SampleArrivalsInto(rng, buf[:0], rates, 2, 36, 7)
	})
	if allocs != 0 {
		t.Fatalf("SampleArrivalsInto: %v allocs/op, want 0", allocs)
	}
}

func TestArrivalCapHintCoversExpectation(t *testing.T) {
	rates := FieldStudyRates()
	exp := ExpectedArrivals(rates, 2, 36, 7)
	if exp <= 0 {
		t.Fatal("expected arrivals should be positive at field rates")
	}
	if hint := ArrivalCapHint(rates, 2, 36, 7); float64(hint) < exp {
		t.Fatalf("cap hint %d below expectation %v", hint, exp)
	}
}

func BenchmarkSampleArrivals(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	rates := FieldStudyRates().Scale(4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SampleArrivals(rng, rates, 2, 36, 7)
	}
}

func BenchmarkSampleArrivalsInto(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	rates := FieldStudyRates().Scale(4)
	var buf []Arrival
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = SampleArrivalsInto(rng, buf, rates, 2, 36, 7)
	}
}
