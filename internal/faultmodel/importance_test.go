package faultmodel

import (
	"math"
	"math/rand"
	"testing"
)

// rareRates scales the field-study mix down so that a 7-year lifetime has
// only a fraction-of-a-percent chance of any fault — the regime the
// importance samplers exist for.
func rareRates() Rates { return FieldStudyRates().Scale(0.05) }

func TestPNoArrivals(t *testing.T) {
	rates := FieldStudyRates()
	p0 := PNoArrivals(rates, 2, 18, 7)
	want := math.Exp(-ExpectedArrivals(rates, 2, 18, 7))
	if math.Abs(p0-want) > 1e-15 {
		t.Fatalf("PNoArrivals = %v, want %v", p0, want)
	}
	if p0 <= 0 || p0 >= 1 {
		t.Fatalf("PNoArrivals = %v outside (0,1)", p0)
	}
}

func TestConditionalAlwaysNonEmptySortedAndWeighted(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	rates := rareRates()
	lambda := ExpectedArrivals(rates, 2, 18, 7)
	wantW := -math.Expm1(-lambda)
	var buf []Arrival
	for i := 0; i < 5000; i++ {
		arr, w := SampleArrivalsConditionalInto(rng, buf, rates, 2, 18, 7)
		buf = arr
		if len(arr) == 0 {
			t.Fatal("conditional draw produced an empty history")
		}
		if math.Abs(w-wantW) > 1e-12 {
			t.Fatalf("weight %v, want %v", w, wantW)
		}
		for j := 1; j < len(arr); j++ {
			if arr[j-1].AtHours > arr[j].AtHours {
				t.Fatal("arrivals not sorted by time")
			}
		}
		for _, a := range arr {
			if a.AtHours < 0 || a.AtHours > 7*HoursPerYear {
				t.Fatalf("arrival time %v outside lifespan", a.AtHours)
			}
			if a.Type == Lane {
				if a.Rank != -1 {
					t.Fatal("lane fault should have rank -1")
				}
			} else if a.Rank < 0 || a.Rank >= 2 {
				t.Fatalf("rank %d out of range", a.Rank)
			}
			if a.Device < 0 || a.Device >= 18 {
				t.Fatalf("device %d out of range", a.Device)
			}
		}
	}
}

// TestConditionalMatchesTruncatedLaw checks the conditional sampler
// against the ground truth: the unconditioned sampler restricted to its
// nonzero draws. Count distribution and type marginals must agree.
func TestConditionalMatchesTruncatedLaw(t *testing.T) {
	// Moderate rates so rejection sampling the ground truth is affordable.
	rates := FieldStudyRates().Scale(4)
	rng := rand.New(rand.NewSource(2))
	const trials = 60_000

	condCounts := map[int]int{}
	condTypes := map[Type]int{}
	var buf []Arrival
	for i := 0; i < trials; i++ {
		arr, _ := SampleArrivalsConditionalInto(rng, buf, rates, 2, 18, 7)
		buf = arr
		condCounts[len(arr)]++
		for _, a := range arr {
			condTypes[a.Type]++
		}
	}

	rejCounts := map[int]int{}
	rejTypes := map[Type]int{}
	got := 0
	for got < trials {
		arr := SampleArrivalsInto(rng, buf, rates, 2, 18, 7)
		buf = arr
		if len(arr) == 0 {
			continue
		}
		got++
		rejCounts[len(arr)]++
		for _, a := range arr {
			rejTypes[a.Type]++
		}
	}

	for n := 1; n <= 3; n++ {
		pc := float64(condCounts[n]) / trials
		pr := float64(rejCounts[n]) / trials
		if math.Abs(pc-pr) > 0.015 {
			t.Fatalf("P(N=%d): conditional %.4f vs rejection %.4f", n, pc, pr)
		}
	}
	for _, typ := range Types() {
		pc := float64(condTypes[typ]) / float64(trials)
		pr := float64(rejTypes[typ]) / float64(trials)
		if math.Abs(pc-pr) > 0.02 {
			t.Fatalf("type %v marginal: conditional %.4f vs rejection %.4f", typ, pc, pr)
		}
	}
}

// TestConditionalUnbiasedMean reconstructs E[N] = λ from weighted
// conditional draws: E[N] = P(N=0)·0 + E_cond[w·N].
func TestConditionalUnbiasedMean(t *testing.T) {
	rates := rareRates()
	lambda := ExpectedArrivals(rates, 2, 18, 7)
	rng := rand.New(rand.NewSource(3))
	var sum float64
	const trials = 200_000
	var buf []Arrival
	for i := 0; i < trials; i++ {
		arr, w := SampleArrivalsConditionalInto(rng, buf, rates, 2, 18, 7)
		buf = arr
		sum += w * float64(len(arr))
	}
	got := sum / trials
	if math.Abs(got-lambda)/lambda > 0.02 {
		t.Fatalf("reconstructed E[N] = %v, want %v", got, lambda)
	}
}

// TestTiltedWeightsAverageToOne: E_Q[dP/dQ] = 1 is the defining property
// of a likelihood ratio; with f ≡ 1 the weighted estimator must
// reconstruct exactly 1.
func TestTiltedWeightsAverageToOne(t *testing.T) {
	rates := rareRates()
	rng := rand.New(rand.NewSource(4))
	for _, tilt := range []float64{2, 8, 32} {
		var sum float64
		const trials = 100_000
		var buf []Arrival
		for i := 0; i < trials; i++ {
			arr, w := SampleArrivalsTiltedInto(rng, buf, rates, tilt, 2, 18, 7)
			buf = arr
			if w <= 0 {
				t.Fatalf("tilt %v: non-positive weight %v", tilt, w)
			}
			sum += w
		}
		if got := sum / trials; math.Abs(got-1) > 0.02 {
			t.Fatalf("tilt %v: mean weight %v, want 1", tilt, got)
		}
	}
}

// TestTiltedUnbiasedMean reconstructs E[N] = λ from tilted draws.
func TestTiltedUnbiasedMean(t *testing.T) {
	rates := rareRates()
	lambda := ExpectedArrivals(rates, 2, 18, 7)
	rng := rand.New(rand.NewSource(5))
	var sum float64
	const trials = 100_000
	var buf []Arrival
	for i := 0; i < trials; i++ {
		arr, w := SampleArrivalsTiltedInto(rng, buf, rates, 16, 2, 18, 7)
		buf = arr
		sum += w * float64(len(arr))
	}
	got := sum / trials
	if math.Abs(got-lambda)/lambda > 0.03 {
		t.Fatalf("reconstructed E[N] = %v, want %v", got, lambda)
	}
}

func TestZeroTruncatedPoissonLaw(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for _, lambda := range []float64{0.01, 0.5, 3, 40} {
		const trials = 50_000
		var sum float64
		for i := 0; i < trials; i++ {
			n := zeroTruncatedPoisson(rng, lambda)
			if n < 1 {
				t.Fatalf("lambda %v: drew %d < 1", lambda, n)
			}
			sum += float64(n)
		}
		want := lambda / -math.Expm1(-lambda) // E[N | N>=1]
		got := sum / trials
		if math.Abs(got-want)/want > 0.02 {
			t.Fatalf("lambda %v: mean %v, want %v", lambda, got, want)
		}
	}
}

func TestImportancePanics(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for name, f := range map[string]func(){
		"conditional zero rate": func() { SampleArrivalsConditional(rng, Rates{}, 2, 18, 7) },
		"conditional bad geom":  func() { SampleArrivalsConditional(rng, FieldStudyRates(), 0, 18, 7) },
		"tilt zero":             func() { SampleArrivalsTilted(rng, FieldStudyRates(), 0, 2, 18, 7) },
		"tilt negative":         func() { SampleArrivalsTilted(rng, FieldStudyRates(), -2, 2, 18, 7) },
		"tilt bad geom":         func() { SampleArrivalsTilted(rng, FieldStudyRates(), 2, 2, 0, 7) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: no panic", name)
				}
			}()
			f()
		}()
	}
}

func TestConditionalIntoDoesNotAllocateSteadyState(t *testing.T) {
	rates := rareRates()
	rng := rand.New(rand.NewSource(8))
	buf := make([]Arrival, 0, 64)
	allocs := testing.AllocsPerRun(2000, func() {
		arr, _ := SampleArrivalsConditionalInto(rng, buf, rates, 2, 18, 7)
		buf = arr[:0]
	})
	if allocs > 0 {
		t.Fatalf("conditional sampling allocates %v per draw", allocs)
	}
}

func BenchmarkSampleArrivalsConditionalInto(b *testing.B) {
	rates := rareRates()
	rng := rand.New(rand.NewSource(1))
	buf := make([]Arrival, 0, 64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		arr, _ := SampleArrivalsConditionalInto(rng, buf, rates, 2, 18, 7)
		buf = arr[:0]
	}
}

func BenchmarkSampleArrivalsTiltedInto(b *testing.B) {
	rates := rareRates()
	rng := rand.New(rand.NewSource(1))
	buf := make([]Arrival, 0, 256)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		arr, _ := SampleArrivalsTiltedInto(rng, buf, rates, 16, 2, 18, 7)
		buf = arr[:0]
	}
}
