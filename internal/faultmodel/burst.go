package faultmodel

import (
	"fmt"
	"math"
	"math/rand"
)

// Correlated fault bursts. The field studies the rate table comes from
// observe that large-scale faults cluster: a failing row is often one of
// several physically adjacent rows taken out by the same defect, and a
// marginal sense-amp or column decoder tends to produce a burst of column
// faults within one bank. The independent-arrival model underestimates
// the tail of the faulty-page distribution in exactly the scenarios ARCC's
// page-granular upgrades are designed for, so Burst adds correlation as a
// post-pass: each primary arrival of the affected type spawns, with a
// configured probability, a burst of secondaries sharing its arrival time,
// rank, and device.
//
// Burst sizes follow a truncated geometric law: with q = 1 - 1/Mean (the
// untruncated geometric with the configured mean) and support 1..Max,
//
//	P(K = k) = q^(k-1) (1-q) / (1 - q^Max)
//
// The pmf is exported (BurstSizePMF) because the likelihood must be exact:
// the rare-event accelerated estimators weight trials by the likelihood
// ratio of the *primary* arrival process only, which stays correct because
// expansion is drawn from the identical conditional law under the nominal
// and every proposal process — the burst factors cancel in the ratio.
//
// The zero value disables bursting and consumes no randomness, so every
// unaccelerated experiment is bit-identical with and without the feature
// compiled in.

// Burst configures correlated fault expansion. The zero value is the
// independent-arrival model.
type Burst struct {
	// RowProb is the probability that a row fault arrives as a burst of
	// physically adjacent rows rather than alone.
	RowProb float64 `json:"row_prob,omitempty"`
	// RowMean is the mean of the untruncated geometric burst-size law
	// (rows per burst, >= 1); the truncation at RowMax pulls the realised
	// mean slightly below it.
	RowMean float64 `json:"row_mean,omitempty"`
	// RowMax bounds the burst size (>= 2 when RowProb > 0).
	RowMax int `json:"row_max,omitempty"`
	// BankProb/BankMean/BankMax are the same law for column faults
	// bursting within one bank.
	BankProb float64 `json:"bank_prob,omitempty"`
	BankMean float64 `json:"bank_mean,omitempty"`
	BankMax  int     `json:"bank_max,omitempty"`
}

// IsZero reports whether the burst model is disabled.
func (b Burst) IsZero() bool { return b.RowProb == 0 && b.BankProb == 0 }

// Validate reports whether the configuration is usable.
func (b Burst) Validate() error {
	check := func(kind string, prob, mean float64, max int) error {
		if prob < 0 || prob > 1 || math.IsNaN(prob) {
			return fmt.Errorf("faultmodel: %s burst probability %v outside [0,1]", kind, prob)
		}
		if prob == 0 {
			return nil
		}
		if mean < 1 || math.IsNaN(mean) || math.IsInf(mean, 0) {
			return fmt.Errorf("faultmodel: %s burst mean %v must be >= 1 and finite", kind, mean)
		}
		if max < 2 {
			return fmt.Errorf("faultmodel: %s burst max %d must be >= 2 (a burst of one is no burst)", kind, max)
		}
		return nil
	}
	if err := check("row", b.RowProb, b.RowMean, b.RowMax); err != nil {
		return err
	}
	return check("bank", b.BankProb, b.BankMean, b.BankMax)
}

// BurstSizePMF returns the truncated-geometric burst-size law on 1..max:
// out[k-1] = P(K = k) with q = 1 - 1/mean. mean must be >= 1, max >= 1.
func BurstSizePMF(mean float64, max int) []float64 {
	if mean < 1 || max < 1 {
		panic(fmt.Sprintf("faultmodel: invalid burst-size law (mean=%v max=%d)", mean, max))
	}
	out := make([]float64, max)
	q := 1 - 1/mean
	if q == 0 {
		out[0] = 1
		return out
	}
	// Unnormalised geometric weights, then divide by 1 - q^max.
	norm := 1 - math.Pow(q, float64(max))
	w := 1 - q
	for k := 0; k < max; k++ {
		out[k] = w / norm
		w *= q
	}
	return out
}

// sampleBurstSize draws from BurstSizePMF(mean, max) by inverse CDF,
// consuming exactly one uniform variate.
func sampleBurstSize(rng *rand.Rand, mean float64, max int) int {
	q := 1 - 1/mean
	if q <= 0 {
		rng.Float64() // keep RNG consumption independent of mean
		return 1
	}
	u := rng.Float64() * (1 - math.Pow(q, float64(max)))
	w := 1 - q
	cdf := 0.0
	for k := 1; k < max; k++ {
		cdf += w
		if u < cdf {
			return k
		}
		w *= q
	}
	return max
}

// ExpandInto applies the burst model to a sorted arrival history in place:
// each row (column) primary spawns, with probability RowProb (BankProb), a
// burst of K-1 secondaries — arrivals with the same time, rank, and device,
// modelling adjacent rows (columns of the same bank) failing together. The
// expanded history is re-sorted and returned (the backing array is reused
// when capacity allows). A zero Burst returns arrivals untouched without
// consuming randomness; otherwise RNG consumption is a deterministic
// function of the primary history, so expanded experiments remain
// bit-identical at any parallelism.
func (b Burst) ExpandInto(rng *rand.Rand, arrivals []Arrival) []Arrival {
	if b.IsZero() {
		return arrivals
	}
	if err := b.Validate(); err != nil {
		panic(err.Error())
	}
	n := len(arrivals)
	for i := 0; i < n; i++ {
		a := arrivals[i]
		var prob, mean float64
		var max int
		switch a.Type {
		case Row:
			prob, mean, max = b.RowProb, b.RowMean, b.RowMax
		case Column:
			prob, mean, max = b.BankProb, b.BankMean, b.BankMax
		default:
			continue
		}
		if prob == 0 || rng.Float64() >= prob {
			continue
		}
		k := sampleBurstSize(rng, mean, max)
		for j := 1; j < k; j++ {
			arrivals = append(arrivals, a)
		}
	}
	sortArrivals(arrivals)
	return arrivals
}

// CapHintFactor returns the expected growth factor ExpandInto applies to a
// worst-case (all-burstable) history, for sizing reusable arrival buffers.
func (b Burst) CapHintFactor() float64 {
	f := 1.0
	if b.RowProb > 0 {
		f += b.RowProb * float64(b.RowMax-1)
	}
	if b.BankProb > 0 {
		f += b.BankProb * float64(b.BankMax-1)
	}
	return f
}
