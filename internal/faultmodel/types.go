// Package faultmodel provides the DRAM fault taxonomy, field-study fault
// rates, and fault-arrival sampling that drive every lifetime experiment in
// the repository (Figs. 3.1, 6.1, 7.4, 7.5, 7.6).
//
// The taxonomy and rates follow the large-scale field study of Sridharan &
// Liberty ("A study of DRAM failures in the field", SC'12) that the paper
// takes its inputs from: per-device FIT rates for single-bit, single-word,
// single-column, single-row, single-bank, whole-device, and lane faults.
// Absolute calibration is not the goal — the experiments depend on the
// relative frequencies (bit faults dominate; device and lane faults are
// rare) and the overall magnitude (a few percent of DIMMs fault per year).
package faultmodel

import "fmt"

// Type classifies a device-level fault by the circuitry it takes out.
type Type int

const (
	// Bit is a single-cell fault.
	Bit Type = iota
	// Word is a fault affecting one memory word (one line's symbols).
	Word
	// Column is a faulty column (one column of one bank).
	Column
	// Row is a faulty row (one row of one bank).
	Row
	// Bank is a faulty bank (the paper's Table 7.4 calls the resulting
	// upgrade span "subbank" because one bank is 1/8 of a device).
	Bank
	// Device is a whole-device (chipkill) fault.
	Device
	// Lane is a faulty data lane (DQ pin group) shared by all ranks of a
	// channel: every rank behind the lane is affected.
	Lane

	numTypes
)

// Types lists all fault types in rate-table order.
func Types() []Type {
	return []Type{Bit, Word, Column, Row, Bank, Device, Lane}
}

// String implements fmt.Stringer.
func (t Type) String() string {
	switch t {
	case Bit:
		return "bit"
	case Word:
		return "word"
	case Column:
		return "column"
	case Row:
		return "row"
	case Bank:
		return "bank"
	case Device:
		return "device"
	case Lane:
		return "lane"
	}
	return fmt.Sprintf("Type(%d)", int(t))
}

// IsTransientScale reports whether the fault's span is so small (a page or
// two) that its power/performance overhead after upgrade is negligible; the
// lifetime overhead experiments (Fig 7.4/7.5) track only the larger spans,
// exactly as Table 7.4 does.
func (t Type) IsTransientScale() bool {
	return t == Bit || t == Word || t == Row
}
