package faultmodel

import (
	"math"
	"math/rand"
	"sort"
)

// Arrival is one fault event in a simulated channel lifetime.
type Arrival struct {
	// AtHours is the fault's arrival time in hours since power-on.
	AtHours float64
	// Type is the fault type.
	Type Type
	// Rank is the affected rank, or -1 for lane faults (which sit on the
	// channel's shared bus and affect every rank).
	Rank int
	// Device is the affected device within the rank (for lane faults, the
	// device *position* whose lane is broken, identical in every rank).
	Device int
}

// SampleArrivals draws the fault history of one channel over a lifespan:
// for each fault type, a Poisson-distributed number of faults with the
// type's FIT rate aggregated over all devices, placed uniformly in time and
// on uniformly chosen devices. Results are sorted by arrival time.
//
// Every experiment passes its own seeded rng, so lifetimes are reproducible.
func SampleArrivals(rng *rand.Rand, rates Rates, ranks, devicesPerRank int, years float64) []Arrival {
	if ranks <= 0 || devicesPerRank <= 0 || years < 0 {
		panic("faultmodel: invalid sampling parameters")
	}
	hours := years * HoursPerYear
	totalDevices := ranks * devicesPerRank
	var out []Arrival
	for _, t := range Types() {
		rate, ok := rates[t]
		if !ok || rate == 0 {
			continue
		}
		lambda := rate * 1e-9 * float64(totalDevices) * hours
		n := poisson(rng, lambda)
		for i := 0; i < n; i++ {
			a := Arrival{
				AtHours: rng.Float64() * hours,
				Type:    t,
				Rank:    rng.Intn(ranks),
				Device:  rng.Intn(devicesPerRank),
			}
			if t == Lane {
				a.Rank = -1
			}
			out = append(out, a)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].AtHours < out[j].AtHours })
	return out
}

// poisson draws from a Poisson distribution with mean lambda. Knuth's
// method is exact and fast for the small lambdas (< 1) these simulations
// use; a normal approximation covers the large-lambda tail defensively.
func poisson(rng *rand.Rand, lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	if lambda > 100 {
		n := int(math.Round(lambda + math.Sqrt(lambda)*rng.NormFloat64()))
		if n < 0 {
			return 0
		}
		return n
	}
	l := math.Exp(-lambda)
	k, p := 0, 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
	}
}
