package faultmodel

import (
	"math"
	"math/rand"
)

// Arrival is one fault event in a simulated channel lifetime.
type Arrival struct {
	// AtHours is the fault's arrival time in hours since power-on.
	AtHours float64
	// Type is the fault type.
	Type Type
	// Rank is the affected rank, or -1 for lane faults (which sit on the
	// channel's shared bus and affect every rank).
	Rank int
	// Device is the affected device within the rank (for lane faults, the
	// device *position* whose lane is broken, identical in every rank).
	Device int
}

// SampleArrivals draws the fault history of one channel over a lifespan:
// for each fault type, a Poisson-distributed number of faults with the
// type's FIT rate aggregated over all devices, placed uniformly in time and
// on uniformly chosen devices. Results are sorted by arrival time. The
// returned slice is freshly allocated, pre-sized to the expected arrival
// count; Monte Carlo loops should call SampleArrivalsInto with a reused
// buffer instead.
//
// Every experiment passes its own seeded rng, so lifetimes are reproducible.
func SampleArrivals(rng *rand.Rand, rates Rates, ranks, devicesPerRank int, years float64) []Arrival {
	if ranks <= 0 || devicesPerRank <= 0 || years < 0 {
		panic("faultmodel: invalid sampling parameters")
	}
	buf := make([]Arrival, 0, ArrivalCapHint(rates, ranks, devicesPerRank, years))
	return SampleArrivalsInto(rng, buf, rates, ranks, devicesPerRank, years)
}

// SampleArrivalsInto is SampleArrivals drawing into buf's capacity: buf's
// contents are ignored, its backing array is reused, and the filled,
// sorted slice is returned (reallocated only if the draw outgrows the
// capacity). With an adequately sized buffer — see ArrivalCapHint — the
// steady state performs zero heap allocations. The RNG consumption is
// identical to SampleArrivals, so the two are interchangeable mid-stream.
func SampleArrivalsInto(rng *rand.Rand, buf []Arrival, rates Rates, ranks, devicesPerRank int, years float64) []Arrival {
	if ranks <= 0 || devicesPerRank <= 0 || years < 0 {
		panic("faultmodel: invalid sampling parameters")
	}
	hours := years * HoursPerYear
	totalDevices := ranks * devicesPerRank
	out := buf[:0]
	for _, t := range Types() {
		rate, ok := rates[t]
		if !ok || rate == 0 {
			continue
		}
		lambda := rate * 1e-9 * float64(totalDevices) * hours
		n := poisson(rng, lambda)
		for i := 0; i < n; i++ {
			a := Arrival{
				AtHours: rng.Float64() * hours,
				Type:    t,
				Rank:    rng.Intn(ranks),
				Device:  rng.Intn(devicesPerRank),
			}
			if t == Lane {
				a.Rank = -1
			}
			out = append(out, a)
		}
	}
	sortArrivals(out)
	return out
}

// ExpectedArrivals returns the mean of the total arrival count
// SampleArrivals draws: the sum over fault types of the channel-aggregated
// Poisson means.
func ExpectedArrivals(rates Rates, ranks, devicesPerRank int, years float64) float64 {
	hours := years * HoursPerYear
	total := float64(ranks * devicesPerRank)
	var sum float64
	for _, t := range Types() {
		sum += rates[t] * 1e-9 * total * hours
	}
	return sum
}

// ArrivalCapHint returns a buffer capacity for SampleArrivalsInto that
// covers the expected arrival count with slack for typical fluctuation, so
// reallocation in the sampling loop is rare.
func ArrivalCapHint(rates Rates, ranks, devicesPerRank int, years float64) int {
	return int(ExpectedArrivals(rates, ranks, devicesPerRank, years)) + 4
}

// sortArrivals orders arrivals by time using insertion sort: channel
// histories are a handful of events at field rates, where insertion sort
// beats the generic sort machinery, and the direct field comparison keeps
// the sampling path free of comparator closures and sort.Interface boxing.
func sortArrivals(out []Arrival) {
	for i := 1; i < len(out); i++ {
		a := out[i]
		j := i - 1
		for j >= 0 && out[j].AtHours > a.AtHours {
			out[j+1] = out[j]
			j--
		}
		out[j+1] = a
	}
}

// poisson draws from a Poisson distribution with mean lambda. Knuth's
// method is exact and fast for the small lambdas (< 1) these simulations
// use; a normal approximation covers the large-lambda tail defensively.
func poisson(rng *rand.Rand, lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	if lambda > 100 {
		n := int(math.Round(lambda + math.Sqrt(lambda)*rng.NormFloat64()))
		if n < 0 {
			return 0
		}
		return n
	}
	l := math.Exp(-lambda)
	k, p := 0, 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
	}
}
