package faultmodel

import (
	"fmt"
	"math/rand"

	"arcc/internal/dram"
)

// ToDRAMFault converts a sampled Arrival into a concrete device-level fault
// overlay for the functional DRAM model, choosing the faulty circuitry
// coordinates uniformly within the geometry. Lane arrivals must be expanded
// by the caller (inject the returned fault into every rank of the channel);
// the returned fault carries the arrival's device position.
//
// Corruption mode: stuck-at faults for the storage-array scopes, and
// wrong-data (address-decoder) behaviour for row/column faults, mirroring
// the failure-mode discussion in Ch. 2.
func ToDRAMFault(rng *rand.Rand, a Arrival, g dram.Geometry) dram.Fault {
	f := dram.Fault{Device: a.Device}
	if a.Device < 0 || a.Device >= g.DevicesPerRank {
		panic(fmt.Sprintf("faultmodel: arrival device %d outside geometry", a.Device))
	}
	switch a.Type {
	case Bit:
		f.Scope = dram.ScopeBit
		f.Mode = stuckMode(rng)
		f.Bank = rng.Intn(g.BanksPerDevice)
		f.Row = rng.Intn(g.RowsPerBank)
		f.Col = rng.Intn(g.ColsPerRow)
		f.Bit = rng.Intn(8)
	case Word:
		f.Scope = dram.ScopeWord
		f.Mode = stuckMode(rng)
		f.Bank = rng.Intn(g.BanksPerDevice)
		f.Row = rng.Intn(g.RowsPerBank)
		f.Col = rng.Intn(g.ColsPerRow)
	case Column:
		f.Scope = dram.ScopeColumn
		f.Mode = dram.WrongData // faulty column decoder
		f.Bank = rng.Intn(g.BanksPerDevice)
		f.Col = rng.Intn(g.ColsPerRow)
	case Row:
		f.Scope = dram.ScopeRow
		f.Mode = dram.WrongData // faulty row decoder
		f.Bank = rng.Intn(g.BanksPerDevice)
		f.Row = rng.Intn(g.RowsPerBank)
	case Bank:
		f.Scope = dram.ScopeBank
		f.Mode = stuckMode(rng)
		f.Bank = rng.Intn(g.BanksPerDevice)
	case Device, Lane:
		f.Scope = dram.ScopeDevice
		f.Mode = stuckMode(rng)
	default:
		panic(fmt.Sprintf("faultmodel: unknown fault type %v", a.Type))
	}
	return f
}

func stuckMode(rng *rand.Rand) dram.Mode {
	if rng.Intn(2) == 0 {
		return dram.StuckAt0
	}
	return dram.StuckAt1
}
