package faultmodel

import "fmt"

// Rates maps fault types to FIT rates per device (failures per 10^9
// device-hours).
type Rates map[Type]float64

// FieldStudyRates returns the DDR2 per-device fault rates transcribed from
// the Sridharan & Liberty SC'12 field study (the paper's input [2]): bit
// faults dominate, bank/row/column faults are the bulk of the large-span
// population, and whole-device and lane faults are comparatively rare.
func FieldStudyRates() Rates {
	return Rates{
		Bit:    33.05,
		Word:   1.11,
		Column: 5.22,
		Row:    8.81,
		Bank:   11.22,
		Device: 2.87,
		Lane:   1.50,
	}
}

// Scale returns a copy of r with every rate multiplied by factor. The
// paper's sensitivity sweeps use factors 1, 2 and 4 ("up to 4X the fault
// rate reported in [2]").
func (r Rates) Scale(factor float64) Rates {
	if factor < 0 {
		panic(fmt.Sprintf("faultmodel: negative rate factor %v", factor))
	}
	out := make(Rates, len(r))
	for t, v := range r {
		out[t] = v * factor
	}
	return out
}

// Total returns the summed FIT rate across all fault types.
func (r Rates) Total() float64 {
	var sum float64
	for _, v := range r {
		sum += v
	}
	return sum
}

// HoursPerYear is the average number of hours in a year (365.25 days).
const HoursPerYear = 8766.0

// ExpectedFaults returns the expected number of faults of type t across
// devices devices over years of operation.
func (r Rates) ExpectedFaults(t Type, devices int, years float64) float64 {
	return r[t] * 1e-9 * float64(devices) * years * HoursPerYear
}
