package faultmodel

import "fmt"

// ChannelShape describes a memory channel for page-span purposes: how many
// of the channel's 4 KB physical pages does a fault of a given type touch,
// under the paper's worst-case assumption (Ch. 3) that every memory location
// under the faulty circuitry is corrupted.
type ChannelShape struct {
	RanksPerChannel int
	BanksPerDevice  int
	PagesPerRow     int // the paper assumes two 4 KB pages per DRAM row
	TotalPages      int // 4 KB pages in the whole channel
}

// ARCCChannelShape is the evaluated ARCC configuration (Table 7.1): two
// ranks of 18 x8 devices per channel, 8 banks, two pages per row. The total
// page count corresponds to 2 GB of data per channel (16 data devices x
// 512 Mb x 2 ranks).
func ARCCChannelShape() ChannelShape {
	return ChannelShape{RanksPerChannel: 2, BanksPerDevice: 8, PagesPerRow: 2, TotalPages: 512 * 1024}
}

// BaselineChannelShape is the commercial SCCDCD configuration: one 36-device
// rank per physical channel, two lockstepped channels forming the logical
// channel of Fig 3.1 (72 devices, 2 ranks' worth of pages).
func BaselineChannelShape() ChannelShape {
	return ChannelShape{RanksPerChannel: 2, BanksPerDevice: 8, PagesPerRow: 2, TotalPages: 1024 * 1024}
}

func (s ChannelShape) validate() {
	if s.RanksPerChannel <= 0 || s.BanksPerDevice <= 0 || s.PagesPerRow <= 0 || s.TotalPages <= 0 {
		panic(fmt.Sprintf("faultmodel: invalid channel shape %+v", s))
	}
}

// UpgradedFraction returns the fraction of the channel's pages that a single
// fault of type t forces into upgraded mode. The large-span entries
// reproduce Table 7.4: lane 100%, device 1/2, bank ("subbank") 1/16, column
// 1/32 for the ARCC shape.
func (s ChannelShape) UpgradedFraction(t Type) float64 {
	s.validate()
	switch t {
	case Lane:
		// A lane fault sits on the shared data bus: both ranks of the
		// channel are behind it, so every page is affected.
		return 1.0
	case Device:
		// Every page in the faulty device's rank has symbols in it.
		return 1.0 / float64(s.RanksPerChannel)
	case Bank:
		// One bank of one rank.
		return 1.0 / float64(s.RanksPerChannel*s.BanksPerDevice)
	case Column:
		// A column intersects one line-column of every row in the bank;
		// with PagesPerRow pages per row it touches 1/PagesPerRow of the
		// bank's pages.
		return 1.0 / float64(s.RanksPerChannel*s.BanksPerDevice*s.PagesPerRow)
	case Row:
		// One DRAM row holds PagesPerRow pages.
		return float64(s.PagesPerRow) / float64(s.TotalPages)
	case Word, Bit:
		// Confined to a single page.
		return 1.0 / float64(s.TotalPages)
	}
	panic(fmt.Sprintf("faultmodel: unknown fault type %v", t))
}
