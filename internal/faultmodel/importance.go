package faultmodel

import (
	"math"
	"math/rand"
)

// Importance-sampled fault histories. At field rates a channel usually
// sees zero faults over its whole lifespan, so naive Monte Carlo spends
// nearly every trial confirming that nothing happened — useless for the
// tail statistics the lifetime figures are after. The samplers in this
// file draw from a *proposal* arrival process under which faults are
// common and return, alongside the trajectory, its exact likelihood ratio
// against the unconditioned Poisson process SampleArrivals draws from.
// Estimators weight each trial by that ratio and stay unbiased (see
// DESIGN.md "Rare-event acceleration" for the derivation).
//
// Both ratios are closed-form because the arrival process is Poisson:
//
//   - Conditional ("at least one fault"): every sampled trajectory has
//     n >= 1 and carries the constant weight 1 - e^{-λ}, where λ is the
//     channel-aggregated arrival mean. The zero-fault stratum is left to
//     the caller — for any statistic with f(no faults) = 0 it contributes
//     exactly nothing, so the weighted mean alone is the full estimate.
//   - Rate-tilted (rates scaled by θ): a trajectory with n total arrivals
//     carries weight e^{(θ-1)λ} · θ^{-n} — the per-type Poisson count
//     ratios multiplied out; arrival times and device positions are
//     uniform under both processes and cancel.

// PNoArrivals returns the probability that SampleArrivals draws an empty
// history: e^{-λ} with λ the channel-aggregated arrival mean.
func PNoArrivals(rates Rates, ranks, devicesPerRank int, years float64) float64 {
	return math.Exp(-ExpectedArrivals(rates, ranks, devicesPerRank, years))
}

// SampleArrivalsConditional draws a fault history conditioned on at least
// one arrival in the lifespan, returning the sorted trajectory and its
// likelihood ratio 1 - e^{-λ} against the unconditioned process. It
// panics when the aggregated rate is zero (conditioning on an impossible
// event). Monte Carlo loops should call SampleArrivalsConditionalInto
// with a reused buffer instead.
func SampleArrivalsConditional(rng *rand.Rand, rates Rates, ranks, devicesPerRank int, years float64) ([]Arrival, float64) {
	buf := make([]Arrival, 0, ArrivalCapHint(rates, ranks, devicesPerRank, years))
	return SampleArrivalsConditionalInto(rng, buf, rates, ranks, devicesPerRank, years)
}

// SampleArrivalsConditionalInto is SampleArrivalsConditional drawing into
// buf's capacity (contents ignored, backing array reused). The total
// count comes from the zero-truncated Poisson; each arrival's type is
// then categorical with probability proportional to the type's aggregated
// rate — the standard marked-Poisson factorization, so the conditional
// law exactly matches SampleArrivals given n >= 1.
func SampleArrivalsConditionalInto(rng *rand.Rand, buf []Arrival, rates Rates, ranks, devicesPerRank int, years float64) ([]Arrival, float64) {
	if ranks <= 0 || devicesPerRank <= 0 || years < 0 {
		panic("faultmodel: invalid sampling parameters")
	}
	hours := years * HoursPerYear
	perDevice := 1e-9 * float64(ranks*devicesPerRank) * hours
	var lambda float64
	for _, t := range Types() {
		lambda += rates[t] * perDevice
	}
	if lambda <= 0 {
		panic("faultmodel: conditional sampling of a zero-rate arrival process")
	}
	n := zeroTruncatedPoisson(rng, lambda)
	out := buf[:0]
	for i := 0; i < n; i++ {
		// Inverse-CDF walk over the per-type means; u lands past the last
		// bucket only through float rounding, in which case the last
		// nonzero-rate type absorbs it.
		u := rng.Float64() * lambda
		var typ Type
		for _, t := range Types() {
			lt := rates[t] * perDevice
			if lt <= 0 {
				continue
			}
			typ = t
			if u < lt {
				break
			}
			u -= lt
		}
		a := Arrival{
			AtHours: rng.Float64() * hours,
			Type:    typ,
			Rank:    rng.Intn(ranks),
			Device:  rng.Intn(devicesPerRank),
		}
		if typ == Lane {
			a.Rank = -1
		}
		out = append(out, a)
	}
	sortArrivals(out)
	return out, -math.Expm1(-lambda) // 1 - e^{-λ}, accurate for small λ
}

// SampleArrivalsTilted draws a fault history under rates scaled by tilt
// and returns the sorted trajectory with its likelihood ratio
// e^{(tilt-1)λ} · tilt^{-n} against the unscaled process (λ the unscaled
// aggregated mean, n the trajectory's arrival count). tilt must be
// positive; values above 1 make faults commoner and are the useful
// regime. Monte Carlo loops should call SampleArrivalsTiltedInto with a
// reused buffer instead.
func SampleArrivalsTilted(rng *rand.Rand, rates Rates, tilt float64, ranks, devicesPerRank int, years float64) ([]Arrival, float64) {
	hint := int(float64(ArrivalCapHint(rates, ranks, devicesPerRank, years)) * math.Max(tilt, 1))
	return SampleArrivalsTiltedInto(rng, make([]Arrival, 0, hint), rates, tilt, ranks, devicesPerRank, years)
}

// SampleArrivalsTiltedInto is SampleArrivalsTilted drawing into buf's
// capacity (contents ignored, backing array reused).
func SampleArrivalsTiltedInto(rng *rand.Rand, buf []Arrival, rates Rates, tilt float64, ranks, devicesPerRank int, years float64) ([]Arrival, float64) {
	if ranks <= 0 || devicesPerRank <= 0 || years < 0 {
		panic("faultmodel: invalid sampling parameters")
	}
	if tilt <= 0 || math.IsNaN(tilt) || math.IsInf(tilt, 0) {
		panic("faultmodel: tilt factor must be positive and finite")
	}
	hours := years * HoursPerYear
	perDevice := 1e-9 * float64(ranks*devicesPerRank) * hours
	out := buf[:0]
	var lambda float64
	for _, t := range Types() {
		rate, ok := rates[t]
		if !ok || rate == 0 {
			continue
		}
		lt := rate * perDevice
		lambda += lt
		n := poisson(rng, lt*tilt)
		for i := 0; i < n; i++ {
			a := Arrival{
				AtHours: rng.Float64() * hours,
				Type:    t,
				Rank:    rng.Intn(ranks),
				Device:  rng.Intn(devicesPerRank),
			}
			if t == Lane {
				a.Rank = -1
			}
			out = append(out, a)
		}
	}
	sortArrivals(out)
	w := math.Exp((tilt-1)*lambda - float64(len(out))*math.Log(tilt))
	return out, w
}

// zeroTruncatedPoisson draws from a Poisson(lambda) conditioned on a
// nonzero outcome. Small lambdas — the rare-fault regime this sampler
// exists for — use exact inversion on the truncated pmf; large lambdas
// fall back to rejection, where the zero outcome is vanishingly rare and
// the expected number of redraws is 1/(1-e^{-λ}) ≈ 1.
func zeroTruncatedPoisson(rng *rand.Rand, lambda float64) int {
	if lambda > 30 {
		for {
			if n := poisson(rng, lambda); n > 0 {
				return n
			}
		}
	}
	u := rng.Float64()
	p := lambda / math.Expm1(lambda) // P(N=1 | N>=1)
	cdf := p
	k := 1
	for u > cdf {
		k++
		p *= lambda / float64(k)
		cdf += p
		if p == 0 {
			// Float underflow: the remaining mass is below representable
			// precision, so u can only be rounding error past the cdf.
			break
		}
	}
	return k
}
