package faultmodel

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

func TestTypesCoverAll(t *testing.T) {
	if len(Types()) != int(numTypes) {
		t.Fatalf("Types() has %d entries, want %d", len(Types()), numTypes)
	}
	seen := map[Type]bool{}
	for _, ty := range Types() {
		if seen[ty] {
			t.Fatalf("duplicate type %v", ty)
		}
		seen[ty] = true
		if ty.String() == "" {
			t.Fatalf("type %d has empty name", ty)
		}
	}
}

func TestFieldStudyRatesShape(t *testing.T) {
	r := FieldStudyRates()
	if len(r) != len(Types()) {
		t.Fatalf("rates table has %d entries, want %d", len(r), len(Types()))
	}
	// The study's key qualitative findings: bit faults dominate; device and
	// lane faults are rare relative to bank faults.
	if r[Bit] <= r[Bank] || r[Bit] <= r[Row] {
		t.Fatal("bit faults must dominate the rate table")
	}
	if r[Device] >= r[Bank] || r[Lane] >= r[Bank] {
		t.Fatal("device/lane faults must be rarer than bank faults")
	}
	for ty, v := range r {
		if v <= 0 {
			t.Fatalf("rate for %v is %v, want > 0", ty, v)
		}
	}
}

func TestRatesScale(t *testing.T) {
	r := FieldStudyRates()
	r4 := r.Scale(4)
	for ty := range r {
		if math.Abs(r4[ty]-4*r[ty]) > 1e-12 {
			t.Fatalf("Scale(4) wrong for %v", ty)
		}
	}
	if math.Abs(r4.Total()-4*r.Total()) > 1e-9 {
		t.Fatal("Total does not scale")
	}
	// Scaling must not alias the original.
	r4[Bit] = 0
	if r[Bit] == 0 {
		t.Fatal("Scale aliased the receiver")
	}
}

func TestScaleNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Scale(-1) did not panic")
		}
	}()
	FieldStudyRates().Scale(-1)
}

func TestExpectedFaults(t *testing.T) {
	r := Rates{Device: 1000} // 1000 FIT
	// 1000 FIT x 1e-9 x 100 devices x 1 year(8766h) = 0.8766 faults.
	got := r.ExpectedFaults(Device, 100, 1)
	if math.Abs(got-0.8766) > 1e-9 {
		t.Fatalf("ExpectedFaults = %v, want 0.8766", got)
	}
}

func TestUpgradedFractionMatchesTable74(t *testing.T) {
	// Table 7.4: lane 100%, device 1/2, subbank 1/16, column 1/32.
	s := ARCCChannelShape()
	cases := map[Type]float64{
		Lane:   1.0,
		Device: 0.5,
		Bank:   1.0 / 16,
		Column: 1.0 / 32,
	}
	for ty, want := range cases {
		if got := s.UpgradedFraction(ty); math.Abs(got-want) > 1e-12 {
			t.Errorf("%v: fraction = %v, want %v", ty, got, want)
		}
	}
}

func TestUpgradedFractionSmallSpans(t *testing.T) {
	s := ARCCChannelShape()
	if got := s.UpgradedFraction(Row); got != 2.0/float64(s.TotalPages) {
		t.Fatalf("row fraction = %v", got)
	}
	if got := s.UpgradedFraction(Bit); got != 1.0/float64(s.TotalPages) {
		t.Fatalf("bit fraction = %v", got)
	}
	if got := s.UpgradedFraction(Word); got != 1.0/float64(s.TotalPages) {
		t.Fatalf("word fraction = %v", got)
	}
}

func TestUpgradedFractionOrdering(t *testing.T) {
	// Larger circuitry must never affect fewer pages.
	s := ARCCChannelShape()
	order := []Type{Bit, Row, Column, Bank, Device, Lane}
	for i := 1; i < len(order); i++ {
		lo, hi := s.UpgradedFraction(order[i-1]), s.UpgradedFraction(order[i])
		if lo > hi {
			t.Fatalf("fraction(%v)=%v > fraction(%v)=%v", order[i-1], lo, order[i], hi)
		}
	}
}

func TestChannelShapeValidate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("invalid shape did not panic")
		}
	}()
	ChannelShape{}.UpgradedFraction(Lane)
}

func TestIsTransientScale(t *testing.T) {
	for _, ty := range []Type{Bit, Word, Row} {
		if !ty.IsTransientScale() {
			t.Errorf("%v should be transient-scale", ty)
		}
	}
	for _, ty := range []Type{Column, Bank, Device, Lane} {
		if ty.IsTransientScale() {
			t.Errorf("%v should not be transient-scale", ty)
		}
	}
}

func TestSampleArrivalsDeterministic(t *testing.T) {
	r := FieldStudyRates().Scale(100) // high rate so arrivals exist
	a1 := SampleArrivals(rand.New(rand.NewSource(42)), r, 2, 18, 7)
	a2 := SampleArrivals(rand.New(rand.NewSource(42)), r, 2, 18, 7)
	if len(a1) != len(a2) {
		t.Fatalf("same seed, different arrival counts: %d vs %d", len(a1), len(a2))
	}
	for i := range a1 {
		if a1[i] != a2[i] {
			t.Fatalf("same seed, different arrival %d: %+v vs %+v", i, a1[i], a2[i])
		}
	}
}

func TestSampleArrivalsSortedAndInRange(t *testing.T) {
	r := FieldStudyRates().Scale(200)
	rng := rand.New(rand.NewSource(7))
	arr := SampleArrivals(rng, r, 2, 18, 7)
	if len(arr) == 0 {
		t.Fatal("no arrivals at 200x rates over 7 years; sampling broken")
	}
	if !sort.SliceIsSorted(arr, func(i, j int) bool { return arr[i].AtHours < arr[j].AtHours }) {
		t.Fatal("arrivals not sorted by time")
	}
	maxH := 7 * HoursPerYear
	for _, a := range arr {
		if a.AtHours < 0 || a.AtHours > maxH {
			t.Fatalf("arrival time %v outside [0, %v]", a.AtHours, maxH)
		}
		if a.Type == Lane {
			if a.Rank != -1 {
				t.Fatalf("lane fault has rank %d, want -1", a.Rank)
			}
		} else if a.Rank < 0 || a.Rank >= 2 {
			t.Fatalf("arrival rank %d out of range", a.Rank)
		}
		if a.Device < 0 || a.Device >= 18 {
			t.Fatalf("arrival device %d out of range", a.Device)
		}
	}
}

func TestSampleArrivalsMeanMatchesExpectation(t *testing.T) {
	// Law of large numbers: across many channels the empirical fault count
	// per type should match rate x devices x hours.
	rates := FieldStudyRates()
	rng := rand.New(rand.NewSource(11))
	const channels = 20000
	const years = 7.0
	counts := map[Type]int{}
	for i := 0; i < channels; i++ {
		for _, a := range SampleArrivals(rng, rates, 2, 18, years) {
			counts[a.Type]++
		}
	}
	for _, ty := range Types() {
		want := rates.ExpectedFaults(ty, 36, years) * channels
		got := float64(counts[ty])
		if want < 100 {
			continue // too few samples for a tight bound
		}
		// Poisson counts: std = sqrt(mean). Allow 4 sigma.
		if math.Abs(got-want) > 4*math.Sqrt(want) {
			t.Errorf("%v: %v arrivals, want ~%v (+-4 sigma = %v)", ty, got, want, 4*math.Sqrt(want))
		}
	}
}

func TestPoissonSmallAndLargeLambda(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	if got := poisson(rng, 0); got != 0 {
		t.Fatalf("poisson(0) = %d", got)
	}
	// Large-lambda path: mean within 5% over many draws.
	const lambda = 500.0
	var sum float64
	const draws = 2000
	for i := 0; i < draws; i++ {
		sum += float64(poisson(rng, lambda))
	}
	mean := sum / draws
	if math.Abs(mean-lambda)/lambda > 0.05 {
		t.Fatalf("poisson(%v) mean = %v", lambda, mean)
	}
}

func TestSampleArrivalsPanicsOnBadArgs(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, args := range []struct {
		ranks, dev int
		years      float64
	}{{0, 18, 1}, {2, 0, 1}, {2, 18, -1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("SampleArrivals(%+v) did not panic", args)
				}
			}()
			SampleArrivals(rng, FieldStudyRates(), args.ranks, args.dev, args.years)
		}()
	}
}
