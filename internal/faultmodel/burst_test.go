package faultmodel

import (
	"math"
	"math/rand"
	"testing"
)

func TestBurstValidate(t *testing.T) {
	good := []Burst{
		{},
		{RowProb: 0.3, RowMean: 2, RowMax: 8},
		{BankProb: 1, BankMean: 1, BankMax: 4},
		{RowProb: 0.1, RowMean: 3, RowMax: 16, BankProb: 0.2, BankMean: 2, BankMax: 8},
	}
	for _, b := range good {
		if err := b.Validate(); err != nil {
			t.Errorf("%+v: unexpected error %v", b, err)
		}
	}
	bad := []Burst{
		{RowProb: -0.1},
		{RowProb: 1.5, RowMean: 2, RowMax: 4},
		{RowProb: 0.5, RowMean: 0.5, RowMax: 4},
		{RowProb: 0.5, RowMean: 2, RowMax: 1},
		{BankProb: 0.5, BankMean: math.Inf(1), BankMax: 4},
	}
	for _, b := range bad {
		if err := b.Validate(); err == nil {
			t.Errorf("%+v: accepted", b)
		}
	}
}

func TestBurstSizePMFIsALaw(t *testing.T) {
	for _, tc := range []struct {
		mean float64
		max  int
	}{{1, 5}, {2, 8}, {3, 16}, {10, 4}} {
		pmf := BurstSizePMF(tc.mean, tc.max)
		sum := 0.0
		for k, p := range pmf {
			if p < 0 || p > 1 {
				t.Fatalf("mean=%v max=%d: P(K=%d) = %v", tc.mean, tc.max, k+1, p)
			}
			sum += p
		}
		if math.Abs(sum-1) > 1e-12 {
			t.Fatalf("mean=%v max=%d: pmf sums to %v", tc.mean, tc.max, sum)
		}
		// The truncated-geometric ratio: P(k+1)/P(k) = q = 1 - 1/mean.
		q := 1 - 1/tc.mean
		if q > 0 {
			for k := 0; k+1 < tc.max; k++ {
				if ratio := pmf[k+1] / pmf[k]; math.Abs(ratio-q) > 1e-9 {
					t.Fatalf("mean=%v max=%d: P(%d)/P(%d) = %v, want q=%v", tc.mean, tc.max, k+2, k+1, ratio, q)
				}
			}
		}
	}
	if p := BurstSizePMF(1, 5); p[0] != 1 {
		t.Fatalf("mean 1 must be a point mass at 1, got %v", p)
	}
}

func TestSampleBurstSizeMatchesPMF(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const mean, max, n = 2.5, 6, 200_000
	pmf := BurstSizePMF(mean, max)
	counts := make([]int, max)
	for i := 0; i < n; i++ {
		k := sampleBurstSize(rng, mean, max)
		if k < 1 || k > max {
			t.Fatalf("sampled size %d outside 1..%d", k, max)
		}
		counts[k-1]++
	}
	for k, p := range pmf {
		got := float64(counts[k]) / n
		// 5-sigma binomial tolerance.
		tol := 5 * math.Sqrt(p*(1-p)/n)
		if math.Abs(got-p) > tol {
			t.Errorf("P(K=%d): empirical %v, law %v (tol %v)", k+1, got, p, tol)
		}
	}
}

func TestZeroBurstConsumesNoRandomness(t *testing.T) {
	arr := []Arrival{{AtHours: 1, Type: Row}, {AtHours: 2, Type: Column}}
	rng := rand.New(rand.NewSource(7))
	before := rand.New(rand.NewSource(7)).Float64()
	out := Burst{}.ExpandInto(rng, arr)
	if len(out) != len(arr) {
		t.Fatalf("zero burst changed the history: %d arrivals", len(out))
	}
	if got := rng.Float64(); got != before {
		t.Fatal("zero burst consumed randomness")
	}
}

func TestExpandIntoLaw(t *testing.T) {
	// One Row primary with RowProb p and size law (mean, max): the expected
	// expanded length is 1 + p*(E[K]-1) with E[K] from the truncated pmf.
	const p, mean, max = 0.4, 2.0, 5
	b := Burst{RowProb: p, RowMean: mean, RowMax: max}
	pmf := BurstSizePMF(mean, max)
	ek := 0.0
	for k, q := range pmf {
		ek += float64(k+1) * q
	}
	want := 1 + p*(ek-1)

	rng := rand.New(rand.NewSource(11))
	const n = 200_000
	total := 0
	scratch := make([]Arrival, 0, max)
	for i := 0; i < n; i++ {
		scratch = scratch[:0]
		scratch = append(scratch, Arrival{AtHours: 5, Type: Row, Rank: 1, Device: 3})
		out := b.ExpandInto(rng, scratch)
		for _, a := range out {
			if (a != Arrival{AtHours: 5, Type: Row, Rank: 1, Device: 3}) {
				t.Fatalf("secondary differs from primary: %+v", a)
			}
		}
		total += len(out)
		scratch = out
	}
	got := float64(total) / n
	if math.Abs(got-want) > 0.01 {
		t.Fatalf("mean expanded length %v, want %v", got, want)
	}

	// Bank bursts ignore Row faults and vice versa.
	rng2 := rand.New(rand.NewSource(3))
	out := Burst{BankProb: 1, BankMean: 4, BankMax: 8}.ExpandInto(rng2, []Arrival{{AtHours: 1, Type: Row}})
	if len(out) != 1 {
		t.Fatalf("bank burst expanded a row fault: %d arrivals", len(out))
	}
}

func TestExpandIntoKeepsSorted(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	arr := []Arrival{
		{AtHours: 1, Type: Row}, {AtHours: 2, Type: Column},
		{AtHours: 3, Type: Row}, {AtHours: 4, Type: Device},
	}
	out := Burst{RowProb: 1, RowMean: 3, RowMax: 6, BankProb: 1, BankMean: 3, BankMax: 6}.ExpandInto(rng, arr)
	if len(out) <= 4 {
		t.Fatalf("prob-1 bursts on 3 burstable faults expanded nothing (len %d)", len(out))
	}
	for i := 1; i < len(out); i++ {
		if out[i].AtHours < out[i-1].AtHours {
			t.Fatalf("expanded history unsorted at %d: %+v", i, out)
		}
	}
}

func TestCapHintFactor(t *testing.T) {
	if f := (Burst{}).CapHintFactor(); f != 1 {
		t.Fatalf("zero burst factor %v", f)
	}
	b := Burst{RowProb: 0.5, RowMean: 2, RowMax: 5, BankProb: 0.25, BankMean: 2, BankMax: 9}
	if f := b.CapHintFactor(); f != 1+0.5*4+0.25*8 {
		t.Fatalf("factor %v", f)
	}
}
