package cpu

import "testing"

func TestNewPanicsOnBadConfig(t *testing.T) {
	for _, cfg := range []Config{
		{WidthIPC: 0, MLP: 4, HitLatency: 10},
		{WidthIPC: 2, MLP: 0, HitLatency: 10},
		{WidthIPC: 2, MLP: 4, HitLatency: -1},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%+v) did not panic", cfg)
				}
			}()
			New(cfg)
		}()
	}
}

func TestComputeOnlyIPCApproachesPeak(t *testing.T) {
	c := New(DefaultConfig())
	for i := 0; i < 1000; i++ {
		c.AdvanceCompute(100)
	}
	if ipc := c.IPC(); ipc < 1.9 || ipc > 2.0 {
		t.Fatalf("compute-only IPC = %v, want ~2 (peak width)", ipc)
	}
}

func TestHitsSlowButDoNotStall(t *testing.T) {
	withHits := New(DefaultConfig())
	without := New(DefaultConfig())
	for i := 0; i < 1000; i++ {
		withHits.AdvanceCompute(50)
		withHits.NoteHit()
		without.AdvanceCompute(50)
	}
	if withHits.IPC() >= without.IPC() {
		t.Fatal("hit latency should cost some IPC")
	}
	if withHits.IPC() < without.IPC()/2 {
		t.Fatal("hits cost too much; they are not misses")
	}
}

func TestMLPOverlapsMisses(t *testing.T) {
	// Same miss latency; a core with MLP=4 must finish much faster than a
	// blocking core (MLP=1) on a back-to-back miss stream.
	run := func(mlp int) int64 {
		cfg := DefaultConfig()
		cfg.MLP = mlp
		c := New(cfg)
		const lat = 300
		for i := 0; i < 1000; i++ {
			c.AdvanceCompute(10)
			c.IssueMiss(func(now int64) int64 { return now + lat })
		}
		c.Drain()
		return c.Now()
	}
	blocking, overlapped := run(1), run(4)
	speedup := float64(blocking) / float64(overlapped)
	if speedup < 2.5 {
		t.Fatalf("MLP=4 speedup over blocking = %.2fx, want > 2.5x", speedup)
	}
}

func TestWindowFullStalls(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MLP = 2
	c := New(cfg)
	issue := func(now int64) int64 { return now + 1000 }
	c.IssueMiss(issue)
	c.IssueMiss(issue)
	if c.OutstandingMisses() != 2 {
		t.Fatalf("outstanding = %d, want 2", c.OutstandingMisses())
	}
	before := c.Now()
	c.IssueMiss(issue) // must stall until the first completes
	if c.Now() < before+900 {
		t.Fatalf("third miss did not stall the full window: time went %d -> %d", before, c.Now())
	}
}

func TestRetireFreesWindow(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MLP = 2
	c := New(cfg)
	c.IssueMiss(func(now int64) int64 { return now + 100 })
	c.AdvanceCompute(1000) // plenty of time for the miss to retire
	if c.OutstandingMisses() != 0 {
		t.Fatalf("outstanding = %d after retirement window", c.OutstandingMisses())
	}
}

func TestDrain(t *testing.T) {
	c := New(DefaultConfig())
	c.IssueMiss(func(now int64) int64 { return now + 500 })
	c.Drain()
	if c.OutstandingMisses() != 0 {
		t.Fatal("Drain left misses outstanding")
	}
	if c.Now() < 500 {
		t.Fatalf("Drain did not advance time to completion: %d", c.Now())
	}
}

func TestCompletionBeforeNowClamped(t *testing.T) {
	c := New(DefaultConfig())
	c.AdvanceCompute(10000)
	c.IssueMiss(func(now int64) int64 { return 1 }) // stale completion
	c.Drain()
	if c.Now() < 5000 {
		t.Fatal("time went backwards")
	}
}

func TestNegativeGapPanics(t *testing.T) {
	c := New(DefaultConfig())
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	c.AdvanceCompute(-1)
}

func TestMemoryLatencySensitivity(t *testing.T) {
	// Doubling miss latency must cost IPC on a miss-heavy stream.
	run := func(lat int64) float64 {
		c := New(DefaultConfig())
		for i := 0; i < 2000; i++ {
			c.AdvanceCompute(20)
			c.IssueMiss(func(now int64) int64 { return now + lat })
		}
		c.Drain()
		return c.IPC()
	}
	fast, slow := run(150), run(300)
	if slow >= fast {
		t.Fatalf("IPC not sensitive to memory latency: %v vs %v", fast, slow)
	}
}

// fixedIssuer is a closure-free Issuer for tests: completion = now + lat.
type fixedIssuer struct{ lat int64 }

func (f *fixedIssuer) IssueAt(now int64) int64 { return now + f.lat }

// TestIssueMissToMatchesIssueMiss pins the closure-free path to the legacy
// callback path: the same miss sequence produces identical core state.
func TestIssueMissToMatchesIssueMiss(t *testing.T) {
	a := New(DefaultConfig())
	b := New(DefaultConfig())
	iss := &fixedIssuer{}
	lat := []int64{200, 40, 900, 1, 0, 350, 350, 77, 600, 5}
	for i := 0; i < 200; i++ {
		l := lat[i%len(lat)]
		a.AdvanceCompute(i % 7)
		b.AdvanceCompute(i % 7)
		a.IssueMiss(func(now int64) int64 { return now + l })
		iss.lat = l
		b.IssueMissTo(iss)
		if a.Now() != b.Now() || a.Instructions() != b.Instructions() || a.OutstandingMisses() != b.OutstandingMisses() {
			t.Fatalf("miss %d: state diverged: now %d vs %d, misses %d vs %d", i, a.Now(), b.Now(), a.OutstandingMisses(), b.OutstandingMisses())
		}
	}
	a.Drain()
	b.Drain()
	if a.Now() != b.Now() {
		t.Fatalf("drained time diverged: %d vs %d", a.Now(), b.Now())
	}
}

// TestIssueMissToAllocationFree pins the miss-issue path to zero heap
// allocations, including the MLP-full stall path and retire compaction.
func TestIssueMissToAllocationFree(t *testing.T) {
	c := New(DefaultConfig())
	iss := &fixedIssuer{lat: 300}
	step := func() {
		c.AdvanceCompute(3)
		c.IssueMissTo(iss)
	}
	step() // warm up
	if allocs := testing.AllocsPerRun(1000, step); allocs != 0 {
		t.Errorf("IssueMissTo: %v allocs/op, want 0", allocs)
	}
}

// TestReset pins that a reset core behaves like a fresh one.
func TestReset(t *testing.T) {
	c := New(DefaultConfig())
	iss := &fixedIssuer{lat: 100}
	for i := 0; i < 10; i++ {
		c.AdvanceCompute(5)
		c.IssueMissTo(iss)
	}
	c.Reset()
	if c.Now() != 0 || c.Instructions() != 0 || c.OutstandingMisses() != 0 {
		t.Fatalf("Reset left state: now %d, instr %d, misses %d", c.Now(), c.Instructions(), c.OutstandingMisses())
	}
	fresh := New(DefaultConfig())
	for i := 0; i < 10; i++ {
		c.AdvanceCompute(5)
		fresh.AdvanceCompute(5)
		c.IssueMissTo(iss)
		fresh.IssueMissTo(iss)
		if c.Now() != fresh.Now() {
			t.Fatalf("step %d: reset core diverged from fresh", i)
		}
	}
}
