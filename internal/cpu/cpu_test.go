package cpu

import "testing"

func TestNewPanicsOnBadConfig(t *testing.T) {
	for _, cfg := range []Config{
		{WidthIPC: 0, MLP: 4, HitLatency: 10},
		{WidthIPC: 2, MLP: 0, HitLatency: 10},
		{WidthIPC: 2, MLP: 4, HitLatency: -1},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%+v) did not panic", cfg)
				}
			}()
			New(cfg)
		}()
	}
}

func TestComputeOnlyIPCApproachesPeak(t *testing.T) {
	c := New(DefaultConfig())
	for i := 0; i < 1000; i++ {
		c.AdvanceCompute(100)
	}
	if ipc := c.IPC(); ipc < 1.9 || ipc > 2.0 {
		t.Fatalf("compute-only IPC = %v, want ~2 (peak width)", ipc)
	}
}

func TestHitsSlowButDoNotStall(t *testing.T) {
	withHits := New(DefaultConfig())
	without := New(DefaultConfig())
	for i := 0; i < 1000; i++ {
		withHits.AdvanceCompute(50)
		withHits.NoteHit()
		without.AdvanceCompute(50)
	}
	if withHits.IPC() >= without.IPC() {
		t.Fatal("hit latency should cost some IPC")
	}
	if withHits.IPC() < without.IPC()/2 {
		t.Fatal("hits cost too much; they are not misses")
	}
}

func TestMLPOverlapsMisses(t *testing.T) {
	// Same miss latency; a core with MLP=4 must finish much faster than a
	// blocking core (MLP=1) on a back-to-back miss stream.
	run := func(mlp int) int64 {
		cfg := DefaultConfig()
		cfg.MLP = mlp
		c := New(cfg)
		const lat = 300
		for i := 0; i < 1000; i++ {
			c.AdvanceCompute(10)
			c.IssueMiss(func(now int64) int64 { return now + lat })
		}
		c.Drain()
		return c.Now()
	}
	blocking, overlapped := run(1), run(4)
	speedup := float64(blocking) / float64(overlapped)
	if speedup < 2.5 {
		t.Fatalf("MLP=4 speedup over blocking = %.2fx, want > 2.5x", speedup)
	}
}

func TestWindowFullStalls(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MLP = 2
	c := New(cfg)
	issue := func(now int64) int64 { return now + 1000 }
	c.IssueMiss(issue)
	c.IssueMiss(issue)
	if c.OutstandingMisses() != 2 {
		t.Fatalf("outstanding = %d, want 2", c.OutstandingMisses())
	}
	before := c.Now()
	c.IssueMiss(issue) // must stall until the first completes
	if c.Now() < before+900 {
		t.Fatalf("third miss did not stall the full window: time went %d -> %d", before, c.Now())
	}
}

func TestRetireFreesWindow(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MLP = 2
	c := New(cfg)
	c.IssueMiss(func(now int64) int64 { return now + 100 })
	c.AdvanceCompute(1000) // plenty of time for the miss to retire
	if c.OutstandingMisses() != 0 {
		t.Fatalf("outstanding = %d after retirement window", c.OutstandingMisses())
	}
}

func TestDrain(t *testing.T) {
	c := New(DefaultConfig())
	c.IssueMiss(func(now int64) int64 { return now + 500 })
	c.Drain()
	if c.OutstandingMisses() != 0 {
		t.Fatal("Drain left misses outstanding")
	}
	if c.Now() < 500 {
		t.Fatalf("Drain did not advance time to completion: %d", c.Now())
	}
}

func TestCompletionBeforeNowClamped(t *testing.T) {
	c := New(DefaultConfig())
	c.AdvanceCompute(10000)
	c.IssueMiss(func(now int64) int64 { return 1 }) // stale completion
	c.Drain()
	if c.Now() < 5000 {
		t.Fatal("time went backwards")
	}
}

func TestNegativeGapPanics(t *testing.T) {
	c := New(DefaultConfig())
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	c.AdvanceCompute(-1)
}

func TestMemoryLatencySensitivity(t *testing.T) {
	// Doubling miss latency must cost IPC on a miss-heavy stream.
	run := func(lat int64) float64 {
		c := New(DefaultConfig())
		for i := 0; i < 2000; i++ {
			c.AdvanceCompute(20)
			c.IssueMiss(func(now int64) int64 { return now + lat })
		}
		c.Drain()
		return c.IPC()
	}
	fast, slow := run(150), run(300)
	if slow >= fast {
		t.Fatalf("IPC not sensitive to memory latency: %v vs %v", fast, slow)
	}
}
