// Package cpu provides the trace-driven core model that stands in for the
// paper's M5 full-system simulation (Table 7.2: a 2-wide out-of-order core
// with a 240-entry L2 MSHR file).
//
// The model is deliberately simple but captures the two couplings the
// experiments depend on:
//
//   - latency sensitivity: a core can overlap a bounded number of misses
//     (MLP); once the window fills it stalls until the oldest completes, so
//     longer memory latencies directly cost cycles;
//   - bandwidth sensitivity: the memory system books real bus/bank
//     occupancy per miss, so a core issuing misses faster than memory can
//     drain them piles up its own future stalls.
//
// Instructions between misses retire at the core's peak width.
package cpu

import (
	"fmt"
	"slices"
)

// Config shapes one core.
type Config struct {
	// WidthIPC is the peak commit rate in instructions per CPU cycle
	// (Table 7.2: superscalar width 2).
	WidthIPC float64
	// MLP is the number of outstanding misses the core overlaps before
	// stalling (bounded in practice by the ROB/LSQ, far below the 240
	// MSHRs of Table 7.2).
	MLP int
	// HitLatency is the LLC hit latency in CPU cycles (Table 7.2: 10).
	HitLatency int64
}

// DefaultConfig mirrors Table 7.2.
func DefaultConfig() Config { return Config{WidthIPC: 2, MLP: 4, HitLatency: 10} }

// Core is one simulated core. Time is in CPU cycles.
type Core struct {
	cfg          Config
	time         int64
	instructions int64
	outstanding  []int64 // completion times of in-flight misses, sorted
}

// New creates a core at time zero.
func New(cfg Config) *Core {
	if cfg.WidthIPC <= 0 || cfg.MLP <= 0 || cfg.HitLatency < 0 {
		panic(fmt.Sprintf("cpu: invalid config %+v", cfg))
	}
	// The outstanding window never exceeds MLP entries; pre-sizing it (and
	// compacting in place in retire) keeps the miss path allocation-free.
	return &Core{cfg: cfg, outstanding: make([]int64, 0, cfg.MLP+1)}
}

// Reset returns the core to its post-New state (time zero, no committed
// instructions, empty miss window), reusing the outstanding-miss backing
// array. sim.Scratch resets rather than reallocates cores between runs.
func (c *Core) Reset() {
	c.time = 0
	c.instructions = 0
	c.outstanding = c.outstanding[:0]
}

// Now returns the core's current cycle.
func (c *Core) Now() int64 { return c.time }

// Instructions returns the committed instruction count.
func (c *Core) Instructions() int64 { return c.instructions }

// IPC returns committed instructions per cycle so far.
func (c *Core) IPC() float64 {
	if c.time == 0 {
		return 0
	}
	return float64(c.instructions) / float64(c.time)
}

// AdvanceCompute retires gap instructions at peak width.
func (c *Core) AdvanceCompute(gap int) {
	if gap < 0 {
		panic(fmt.Sprintf("cpu: negative gap %d", gap))
	}
	c.instructions += int64(gap)
	c.time += int64(float64(gap)/c.cfg.WidthIPC + 0.5)
	c.retire()
}

// NoteHit charges an LLC hit's exposed latency.
func (c *Core) NoteHit() {
	c.time += c.cfg.HitLatency
	c.retire()
}

// Issuer books a demand miss with the memory system: IssueAt is called with
// the cycle at which the request leaves the core and must return its
// completion cycle. The indirection lets the memory system book bus/bank
// occupancy at the true issue time; implementing it on a long-lived struct
// (rather than a per-miss closure) keeps the miss path allocation-free.
type Issuer interface {
	IssueAt(now int64) (complete int64)
}

// issuerFunc adapts a plain callback to Issuer for the IssueMiss wrapper.
type issuerFunc func(now int64) int64

func (f issuerFunc) IssueAt(now int64) int64 { return f(now) }

// IssueMiss registers a demand miss via a callback. It is a compatibility
// wrapper over IssueMissTo; hot callers should pre-bind an Issuer instead
// of allocating a closure per miss.
func (c *Core) IssueMiss(issue func(now int64) (complete int64)) {
	c.IssueMissTo(issuerFunc(issue))
}

// IssueMissTo registers a demand miss. If the MLP window is full the core
// first stalls until the oldest outstanding miss completes. It performs no
// heap allocations.
func (c *Core) IssueMissTo(iss Issuer) {
	c.retire()
	if len(c.outstanding) >= c.cfg.MLP {
		// Stall until the oldest miss returns.
		oldest := c.outstanding[0]
		if oldest > c.time {
			c.time = oldest
		}
		c.retire()
	}
	complete := iss.IssueAt(c.time)
	if complete < c.time {
		complete = c.time
	}
	// Insert keeping the slice sorted (it is tiny: MLP entries).
	i, _ := slices.BinarySearch(c.outstanding, complete)
	c.outstanding = slices.Insert(c.outstanding, i, complete)

	// A miss also has some exposed front-end cost even when overlapped.
	c.time += c.cfg.HitLatency
}

// Drain stalls until every outstanding miss has completed (end of a run).
func (c *Core) Drain() {
	if n := len(c.outstanding); n > 0 {
		last := c.outstanding[n-1]
		if last > c.time {
			c.time = last
		}
		c.outstanding = c.outstanding[:0]
	}
}

// OutstandingMisses returns the number of in-flight misses.
func (c *Core) OutstandingMisses() int { return len(c.outstanding) }

func (c *Core) retire() {
	i := 0
	for i < len(c.outstanding) && c.outstanding[i] <= c.time {
		i++
	}
	if i > 0 {
		// Compact in place (rather than reslice the front off) so the
		// window's backing array keeps its capacity and the miss path never
		// regrows it.
		n := copy(c.outstanding, c.outstanding[i:])
		c.outstanding = c.outstanding[:n]
	}
}
