package lotecc

import (
	"bytes"
	"math/rand"
	"testing"
)

func randLine(r *rand.Rand) []byte {
	b := make([]byte, LineBytes)
	r.Read(b)
	return b
}

func TestGeometry(t *testing.T) {
	nine := New(NineDevice)
	if nine.DataDevices() != 8 || nine.DevicesPerRank() != 9 {
		t.Fatalf("nine-device geometry wrong: %d data, %d rank", nine.DataDevices(), nine.DevicesPerRank())
	}
	eighteen := New(EighteenDevice)
	if eighteen.DataDevices() != 16 || eighteen.DevicesPerRank() != 18 {
		t.Fatalf("18-device geometry wrong")
	}
}

func TestNewPanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	New(Config(9))
}

func TestRoundTripClean(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for _, cfg := range []Config{NineDevice, EighteenDevice} {
		s := New(cfg)
		for i := 0; i < 100; i++ {
			want := randLine(r)
			got, bad, err := s.Decode(s.Encode(want))
			if err != nil || bad != -1 {
				t.Fatalf("cfg %d: clean decode err=%v bad=%d", cfg, err, bad)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("cfg %d: round trip mismatch", cfg)
			}
		}
	}
}

func TestSingleDeviceFailureRecovered(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for _, cfg := range []Config{NineDevice, EighteenDevice} {
		s := New(cfg)
		for dev := 0; dev < s.DataDevices(); dev++ {
			want := randLine(r)
			l := s.Encode(want)
			// Stuck-at-1 device output: data wrong, checksum unchanged in
			// storage (it is stored in the same device... in our model the
			// stored checksum value read back is ALSO corrupted for a
			// whole-device failure; all-ones data with all-ones checksum
			// still mismatches because checksum(0xFF..) != 0xFFFF).
			for i := range l.Shares[dev] {
				l.Shares[dev][i] = 0xFF
			}
			l.Checksums[dev] = 0xFFFF
			got, bad, err := s.Decode(l)
			if err != nil {
				t.Fatalf("cfg %d dev %d: %v", cfg, dev, err)
			}
			if bad != dev {
				t.Fatalf("cfg %d: localized device %d, want %d", cfg, bad, dev)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("cfg %d dev %d: reconstruction wrong", cfg, dev)
			}
		}
	}
}

func TestDoubleDeviceFailureDetected(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	s := New(NineDevice)
	want := randLine(r)
	l := s.Encode(want)
	for _, dev := range []int{1, 5} {
		for i := range l.Shares[dev] {
			l.Shares[dev][i] ^= 0xA5
		}
	}
	if _, _, err := s.Decode(l); err != ErrDetected {
		t.Fatalf("double failure err = %v, want ErrDetected", err)
	}
}

func TestParityDeviceFailureAlone(t *testing.T) {
	// Parity device corrupt, data intact: data decodes fine (parity is
	// only consulted for reconstruction).
	r := rand.New(rand.NewSource(4))
	s := New(NineDevice)
	want := randLine(r)
	l := s.Encode(want)
	for i := range l.Parity {
		l.Parity[i] ^= 0xFF
	}
	got, bad, err := s.Decode(l)
	if err != nil || bad != -1 || !bytes.Equal(got, want) {
		t.Fatalf("parity-only corruption: err=%v bad=%d", err, bad)
	}
}

func TestDataPlusParityFailureDetected(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	s := New(NineDevice)
	l := s.Encode(randLine(r))
	l.Shares[2][0] ^= 0x01
	for i := range l.Parity {
		l.Parity[i] ^= 0x55
	}
	if _, _, err := s.Decode(l); err != ErrDetected {
		t.Fatalf("data+parity failure err = %v, want ErrDetected", err)
	}
}

func TestChecksumBlindSpot(t *testing.T) {
	// The documented weakness (Ch. 2): a device returning consistent but
	// WRONG (data, checksum) pairs — e.g. a faulty row decoder serving
	// another row — sails through Tier 1 undetected and silently corrupts
	// data. Commercial symbol codes catch exactly this case.
	r := rand.New(rand.NewSource(6))
	s := New(NineDevice)
	want := randLine(r)
	l := s.Encode(want)
	// Device 3 returns some other row's share with that row's checksum.
	other := make([]byte, len(l.Shares[3]))
	r.Read(other)
	l.Shares[3] = other
	l.Checksums[3] = checksum(other)
	got, bad, err := s.Decode(l)
	if err != nil {
		t.Fatalf("blind-spot fault was detected; the checksum should miss it: %v", err)
	}
	if bad != -1 {
		t.Fatalf("blind-spot fault was localized to %d", bad)
	}
	if bytes.Equal(got, want) {
		t.Fatal("test bug: corrupted line decoded to original data")
	}
	// This IS the silent data corruption.
}

func TestSilentlyWrongParityCorruptsReconstruction(t *testing.T) {
	// A localized data fault plus a parity device that lies consistently
	// (wrong parity whose own checksum matches) produces a silently wrong
	// reconstruction: LOT-ECC's residual SDC window. The decoder cannot
	// catch this — the bad device's stored checksum is untrusted — so the
	// test pins the *limitation*, which the paper's Ch. 2 discussion of
	// checksum-based detection is about.
	r := rand.New(rand.NewSource(7))
	s := New(NineDevice)
	want := randLine(r)
	l := s.Encode(want)
	l.Shares[0][0] ^= 0x01                // bad device 0 (checksum now mismatches)
	l.Parity[1] ^= 0x80                   // silently wrong parity...
	l.ParityChecksum = checksum(l.Parity) // ...lying consistently
	got, bad, err := s.Decode(l)
	if err != nil {
		t.Fatalf("consistently-lying parity was detected; it should not be: %v", err)
	}
	if bad != 0 {
		t.Fatalf("localization picked device %d, want 0", bad)
	}
	if bytes.Equal(got, want) {
		t.Fatal("reconstruction accidentally correct; test expects silent corruption")
	}
}

func TestAccessCosts(t *testing.T) {
	nine, eighteen := New(NineDevice).Cost(), New(EighteenDevice).Cost()
	if nine.DeviceAccessesPerRead != 9 || nine.ExtraReadPerRead || nine.ExtraWriteFraction != 0.8 {
		t.Fatalf("nine-device cost %+v", nine)
	}
	if eighteen.DeviceAccessesPerRead != 18 || !eighteen.ExtraReadPerRead || eighteen.ExtraWriteFraction != 1.0 {
		t.Fatalf("18-device cost %+v", eighteen)
	}
	if WorstCaseUpgradedPowerFactor() != 4.0 {
		t.Fatal("worst-case factor must be 4 (2x devices x 2x accesses)")
	}
}

func TestChecksumProperties(t *testing.T) {
	if checksum([]byte{0, 0, 0, 0}) != 0xFFFF {
		t.Fatal("checksum of zeros must be all ones (one's complement)")
	}
	a := []byte{1, 2, 3, 4}
	b := []byte{1, 2, 3, 5}
	if checksum(a) == checksum(b) {
		t.Fatal("single-byte change not caught")
	}
	// Odd-length input is handled.
	_ = checksum([]byte{9, 9, 9})
}

func TestDecodePanicsOnShapeMismatch(t *testing.T) {
	s := New(NineDevice)
	l := New(EighteenDevice).Encode(make([]byte, LineBytes))
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	s.Decode(l)
}

func TestStorageOverheadExceedsCommercial(t *testing.T) {
	// LOT-ECC's tradeoff: rank size drops to 9 devices but storage
	// overhead rises well above commercial chipkill's 12.5%.
	for _, cfg := range []Config{NineDevice, EighteenDevice} {
		got := New(cfg).StorageOverhead()
		if got <= 0.125 {
			t.Errorf("config %d: overhead %v should exceed 12.5%%", cfg, got)
		}
		if got > 0.35 {
			t.Errorf("config %d: overhead %v implausibly high", cfg, got)
		}
	}
	// The published 9-device figure is 26.5%; the model should land nearby.
	if got := New(NineDevice).StorageOverhead(); got < 0.22 || got > 0.30 {
		t.Errorf("9-device overhead %v, want near the paper's 26.5%%", got)
	}
}
