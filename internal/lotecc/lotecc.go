// Package lotecc implements LOT-ECC (Udipi et al., ISCA'12), the
// localized-and-tiered chipkill alternative the paper applies ARCC to in
// Chapter 5 and evaluates in Fig 7.6.
//
// LOT-ECC layers two mechanisms instead of one symbol code:
//
//   - Tier 1 (detection + localization): each device's share of a line is
//     covered by a one's-complement checksum stored in the same device.
//     A mismatching checksum both detects the error and names the device.
//   - Tier 2 (correction): the XOR of all devices' data shares is stored in
//     a parity device; once Tier 1 localizes a bad device, its data is
//     reconstructed from the XOR.
//
// Two configurations are modeled:
//
//   - NineDevice (the published configuration): 8 data devices + 1 device
//     holding parity; checksums ride with the data (same row, extra beats),
//     so reads cost one access while ~80% of writes cost an extra write to
//     update parity.
//   - EighteenDevice (the §5.2 extension enabling double chip sparing):
//     16 data devices + parity device + spare device; the checksums no
//     longer fit with the data and live in a different line of the same
//     row, so every read costs an extra read and every write an extra
//     write. ARCC upgrades a 9-device page to this layout after a fault.
//
// The checksum's known blind spot is reproduced faithfully: a device whose
// output is wrong-but-internally-consistent (e.g. a faulty row decoder
// returning another row's data *and* its checksum) can defeat detection —
// the weakness commercial symbol codes do not have (Ch. 2).
package lotecc

import (
	"errors"
	"fmt"
)

// ErrDetected reports a detected-uncorrectable pattern (two or more devices
// failing Tier 1 at once exceeds the single parity device's correction).
var ErrDetected = errors.New("lotecc: detected uncorrectable error")

// LineBytes is the data payload per line.
const LineBytes = 64

// Config selects the LOT-ECC layout.
type Config int

const (
	// NineDevice is the published 9-device-per-rank configuration.
	NineDevice Config = iota
	// EighteenDevice is the §5.2 double-chip-sparing configuration.
	EighteenDevice
)

// Scheme encodes and decodes LOT-ECC lines.
type Scheme struct {
	cfg         Config
	dataDevices int
	shareBytes  int // data bytes each device holds per line
}

// New builds a scheme for the configuration.
func New(cfg Config) *Scheme {
	switch cfg {
	case NineDevice:
		return &Scheme{cfg: cfg, dataDevices: 8, shareBytes: LineBytes / 8}
	case EighteenDevice:
		return &Scheme{cfg: cfg, dataDevices: 16, shareBytes: LineBytes / 16}
	default:
		panic(fmt.Sprintf("lotecc: unknown config %d", cfg))
	}
}

// Config returns the layout.
func (s *Scheme) Config() Config { return s.cfg }

// DataDevices returns the number of devices holding line data.
func (s *Scheme) DataDevices() int { return s.dataDevices }

// DevicesPerRank returns the rank size: data + parity (+ spare for the
// 18-device layout).
func (s *Scheme) DevicesPerRank() int {
	if s.cfg == NineDevice {
		return 9
	}
	return 18
}

// Line is one encoded LOT-ECC line: per-device data shares, per-device
// checksums, and the parity share.
type Line struct {
	Shares    [][]byte // [dataDevices][shareBytes]
	Checksums []uint16 // one's-complement checksum per data device
	Parity    []byte   // XOR of all shares
	// ParityChecksum covers the parity device itself.
	ParityChecksum uint16
}

// ChecksumOf computes the Tier-1 one's-complement checksum of a device
// share. Exposed so that callers (tests, fault-injection demos) can forge
// the "consistently lying device" case.
func ChecksumOf(b []byte) uint16 { return checksum(b) }

// checksum computes the one's-complement 16-bit sum of b.
func checksum(b []byte) uint16 {
	var sum uint32
	for i := 0; i+1 < len(b); i += 2 {
		sum += uint32(b[i])<<8 | uint32(b[i+1])
	}
	if len(b)%2 == 1 {
		sum += uint32(b[len(b)-1]) << 8
	}
	for sum>>16 != 0 {
		sum = sum&0xFFFF + sum>>16
	}
	return ^uint16(sum)
}

// Encode splits 64 data bytes into per-device shares with checksums and
// parity.
func (s *Scheme) Encode(data []byte) Line {
	if len(data) != LineBytes {
		panic(fmt.Sprintf("lotecc: Encode with %d bytes, want %d", len(data), LineBytes))
	}
	shares := make([][]byte, s.dataDevices)
	sums := make([]uint16, s.dataDevices)
	parity := make([]byte, s.shareBytes)
	for d := 0; d < s.dataDevices; d++ {
		share := make([]byte, s.shareBytes)
		copy(share, data[d*s.shareBytes:(d+1)*s.shareBytes])
		shares[d] = share
		sums[d] = checksum(share)
		for i, v := range share {
			parity[i] ^= v
		}
	}
	return Line{Shares: shares, Checksums: sums, Parity: parity, ParityChecksum: checksum(parity)}
}

// Decode validates Tier 1 checksums, reconstructs at most one bad device
// from parity, and returns the 64 data bytes. Two or more bad devices
// return ErrDetected. The returned badDevice is the reconstructed device
// index, or -1.
func (s *Scheme) Decode(l Line) (data []byte, badDevice int, err error) {
	if len(l.Shares) != s.dataDevices {
		panic(fmt.Sprintf("lotecc: Decode with %d shares, want %d", len(l.Shares), s.dataDevices))
	}
	badDevice = -1
	parityBad := checksum(l.Parity) != l.ParityChecksum
	for d, share := range l.Shares {
		if checksum(share) != l.Checksums[d] {
			if badDevice >= 0 {
				return nil, -1, ErrDetected
			}
			badDevice = d
		}
	}
	if badDevice >= 0 && parityBad {
		// A bad data device and a bad parity device at once.
		return nil, -1, ErrDetected
	}
	data = make([]byte, LineBytes)
	if badDevice >= 0 {
		// Reconstruct the localized device from the XOR of the others.
		recovered := make([]byte, s.shareBytes)
		copy(recovered, l.Parity)
		for d, share := range l.Shares {
			if d == badDevice {
				continue
			}
			for i, v := range share {
				recovered[i] ^= v
			}
		}
		// Note: the reconstruction cannot be verified against the bad
		// device's stored checksum — that checksum lives in the failed
		// device and is itself untrusted. If the parity share is silently
		// wrong at the same time (its own checksum aliasing), the
		// reconstruction is silently wrong too; that residual SDC risk is
		// inherent to LOT-ECC's tiered design.
		copy(data[badDevice*s.shareBytes:], recovered)
	}
	for d, share := range l.Shares {
		if d == badDevice {
			continue
		}
		copy(data[d*s.shareBytes:], share)
	}
	return data, badDevice, nil
}

// AccessCost models the paper's access accounting for LOT-ECC.
type AccessCost struct {
	// DeviceAccessesPerRead is devices touched per read (checksum rides
	// with the data in the 9-device layout; the 18-device layout needs an
	// extra checksum-line read).
	DeviceAccessesPerRead int
	// ExtraReadPerRead reports whether every read issues a second access.
	ExtraReadPerRead bool
	// ExtraWriteFraction is the fraction of writes needing an additional
	// memory write to update error-correction state (~80% in [6] for the
	// 9-device layout; 100% for the 18-device layout).
	ExtraWriteFraction float64
}

// Cost returns the access accounting for the scheme.
func (s *Scheme) Cost() AccessCost {
	if s.cfg == NineDevice {
		return AccessCost{DeviceAccessesPerRead: 9, ExtraReadPerRead: false, ExtraWriteFraction: 0.8}
	}
	return AccessCost{DeviceAccessesPerRead: 18, ExtraReadPerRead: true, ExtraWriteFraction: 1.0}
}

// WorstCaseUpgradedPowerFactor is the Fig 7.6 worst case: an upgraded
// (18-device) access costs 4x a relaxed (9-device) access — twice the
// devices and twice the accesses — for a 100%-read, zero-locality workload.
func WorstCaseUpgradedPowerFactor() float64 { return 4.0 }

// StorageOverhead returns the scheme's redundant-storage fraction per line:
// the XOR parity share plus the per-device checksums, relative to the data
// payload. LOT-ECC trades capacity for rank size — the published design
// stores a 7-bit checksum per device per cacheline, which with the parity
// share yields the ~26.5% the paper quotes against commercial chipkill's
// 12.5%. (The functional model in this package uses 16-bit checksums for
// clarity; the overhead accounting follows the published 7-bit geometry.)
func (s *Scheme) StorageOverhead() float64 {
	parity := float64(s.shareBytes)
	const checksumBits = 7
	checksums := checksumBits / 8.0 * float64(s.dataDevices+1)
	return (parity + checksums) / float64(LineBytes)
}
