package gf

import (
	"reflect"
	"testing"
)

// mulSlow is bitwise carry-less multiplication reduced by Poly — the
// definitional reference the table-driven Mul must match.
func mulSlow(a, b Elem) Elem {
	var acc int
	x, y := int(a), int(b)
	for ; y != 0; y >>= 1 {
		if y&1 != 0 {
			acc ^= x
		}
		x <<= 1
		if x&0x100 != 0 {
			x ^= Poly
		}
	}
	return Elem(acc)
}

// FuzzGFArithmetic throws arbitrary symbol triples at the field axioms the
// Reed-Solomon decoder relies on: Mul agreeing with the definitional
// reference, associativity/commutativity/distributivity, multiplicative
// inverses, and the division/multiplication round trip.
func FuzzGFArithmetic(f *testing.F) {
	f.Add(byte(0), byte(1), byte(2))
	f.Add(byte(0xFF), byte(0x1D), byte(0x80))
	f.Add(byte(1), byte(1), byte(1))
	f.Fuzz(func(t *testing.T, a, b, c byte) {
		if got, want := Mul(a, b), mulSlow(a, b); got != want {
			t.Fatalf("Mul(%#x, %#x) = %#x, want %#x", a, b, got, want)
		}
		if Mul(a, b) != Mul(b, a) {
			t.Fatalf("Mul not commutative at (%#x, %#x)", a, b)
		}
		if Mul(Mul(a, b), c) != Mul(a, Mul(b, c)) {
			t.Fatalf("Mul not associative at (%#x, %#x, %#x)", a, b, c)
		}
		if Mul(a, Add(b, c)) != Add(Mul(a, b), Mul(a, c)) {
			t.Fatalf("Mul not distributive at (%#x, %#x, %#x)", a, b, c)
		}
		if b != 0 {
			if Mul(b, Inv(b)) != 1 {
				t.Fatalf("Inv(%#x) is not an inverse", b)
			}
			if Mul(Div(a, b), b) != a {
				t.Fatalf("Div(%#x, %#x) * %#x != %#x", a, b, b, a)
			}
		}
	})
}

// FuzzPolyDivMod checks the polynomial division identity
// p = q*divisor + r with deg(r) < deg(divisor) for arbitrary coefficient
// strings — the backbone of systematic Reed-Solomon encoding.
func FuzzPolyDivMod(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5}, []byte{7, 1})
	f.Add([]byte{0, 0, 9}, []byte{1, 1, 1})
	f.Fuzz(func(t *testing.T, pc, dc []byte) {
		if len(pc) > 64 || len(dc) > 64 {
			t.Skip("degree cap")
		}
		p, d := Polynomial(pc), Polynomial(dc)
		if PolyDegree(d) < 0 {
			t.Skip("zero divisor")
		}
		q, r := PolyDivMod(p, d)
		if PolyDegree(r) >= PolyDegree(d) && PolyDegree(d) > 0 {
			t.Fatalf("remainder degree %d not below divisor degree %d", PolyDegree(r), PolyDegree(d))
		}
		back := PolyAdd(PolyMul(q, d), r)
		if !reflect.DeepEqual(PolyTrim(back), PolyTrim(p)) {
			t.Fatalf("q*d + r = %v, want %v", PolyTrim(back), PolyTrim(p))
		}
	})
}
