package gf

// This file holds the bit-sliced, word-parallel kernels of the batch codec
// path. Eight GF(2^8) symbols — one from each of eight independent
// codewords, the "lanes" — are packed little-endian into one uint64, and a
// constant multiplication of all eight lanes runs as a handful of
// shift/mask/XOR word operations with no table lookups and no loop-carried
// memory latency. Package rs builds its batch syndrome and encode kernels
// on these primitives; the per-lane layout (lane l occupies byte l) is part
// of the contract.
//
// Two multiply forms are exposed. XtimeWord multiplies every lane by x
// (alpha = 0x02) directly and is chained for the small alpha powers the
// syndrome recurrences use. MulWord multiplies by an arbitrary constant c
// via its BroadcastRow: bit j of each lane selects whether c*x^j
// contributes to that lane, so the product is the XOR of eight masked
// broadcasts — the bit-sliced decomposition of the GF(2) linearity of
// constant multiplication.

// Lanes is the number of byte lanes packed into one word (a uint64).
const Lanes = 8

const (
	laneLSB uint64 = 0x0101010101010101 // bit 0 of every lane
	laneMSB uint64 = 0x8080808080808080 // bit 7 of every lane
)

// BroadcastWord replicates c into all eight byte lanes of a word.
func BroadcastWord(c Elem) uint64 { return uint64(c) * laneLSB }

// XtimeWord multiplies every lane of v by x (the primitive element 0x02):
// a lane-local left shift, folding the dropped high bit back in as the low
// byte of Poly. No bit crosses a lane boundary.
func XtimeWord(v uint64) uint64 {
	return ((v &^ laneMSB) << 1) ^ (((v & laneMSB) >> 7) * (Poly & 0xFF))
}

// Reduction constants for the fused multi-step xtime kernels: red1..red3
// are x^8, x^9, x^10 reduced mod Poly. red1 = 0x1D < 0x80, so the next two
// are plain doublings with no further reduction.
const (
	red1 = Poly & 0xFF // x^8
	red2 = red1 << 1   // x^9
	red3 = red2 << 1   // x^10
)

const (
	lane6 uint64 = 0x3F3F3F3F3F3F3F3F // low 6 bits of every lane
	lane5 uint64 = 0x1F1F1F1F1F1F1F1F // low 5 bits of every lane
)

// Xtime2Word multiplies every lane of v by x^2 in one fused step: a single
// lane-local shift by 2, with the two overflowing bits folded back in as
// x^8 and x^9. Equivalent to XtimeWord(XtimeWord(v)) but with half the
// dependent latency — the three terms are independent — which matters in
// the syndrome Horner recurrences, where the accumulator update is a
// loop-carried chain.
func Xtime2Word(v uint64) uint64 {
	return ((v & lane6) << 2) ^
		(((v >> 6) & laneLSB) * red1) ^
		(((v >> 7) & laneLSB) * red2)
}

// Xtime3Word multiplies every lane of v by x^3 in one fused step, folding
// the three overflowing bits back in as x^8, x^9, x^10. Equivalent to three
// chained XtimeWords at a third of the dependent latency; this is the S_3
// Horner step of the 4-check-symbol syndrome sweep, the longest chain in
// the batch decoder's clean path.
func Xtime3Word(v uint64) uint64 {
	return ((v & lane5) << 3) ^
		(((v >> 5) & laneLSB) * red1) ^
		(((v >> 6) & laneLSB) * red2) ^
		(((v >> 7) & laneLSB) * red3)
}

// BroadcastRow is the word-parallel analogue of a multiplication-table row:
// entry j holds c * x^j broadcast to all eight lanes, so that multiplying a
// word by c is the XOR over j of entry j masked by bit j of each lane.
type BroadcastRow [8]uint64

// MulRowBatch builds the BroadcastRow of c — the batch counterpart of
// MulRow. Rows for fixed constants (generator coefficients, syndrome
// evaluation points) should be built once and reused, exactly as scalar
// callers hold MulRow pointers.
func MulRowBatch(c Elem) BroadcastRow {
	var r BroadcastRow
	for j := 0; j < 8; j++ {
		r[j] = BroadcastWord(c)
		c = xtime(c)
	}
	return r
}

// xtime is the scalar multiply-by-x used to derive broadcast rows.
func xtime(c Elem) Elem {
	v := uint(c) << 1
	if v&0x100 != 0 {
		v ^= Poly
	}
	return Elem(v)
}

// MulWord multiplies every lane of v by the constant whose BroadcastRow is
// r: MulWord(v, MulRowBatch(c)) has Mul(c, lane) in every lane. The eight
// masked-broadcast terms are independent, so the whole product issues in
// parallel; (m&laneLSB)*0xFF expands each lane's selected bit to a full
// 0xFF/0x00 byte mask without cross-lane carries (lane bytes are 0 or 1).
func MulWord(v uint64, r *BroadcastRow) uint64 {
	p := ((v & laneLSB) * 0xFF) & r[0]
	p ^= ((v >> 1 & laneLSB) * 0xFF) & r[1]
	p ^= ((v >> 2 & laneLSB) * 0xFF) & r[2]
	p ^= ((v >> 3 & laneLSB) * 0xFF) & r[3]
	p ^= ((v >> 4 & laneLSB) * 0xFF) & r[4]
	p ^= ((v >> 5 & laneLSB) * 0xFF) & r[5]
	p ^= ((v >> 6 & laneLSB) * 0xFF) & r[6]
	p ^= ((v >> 7 & laneLSB) * 0xFF) & r[7]
	return p
}

// MulAddWord returns acc ^ (c * v) lane-wise, the word-parallel
// multiply-accumulate: the fused step of batch encode feedback and batch
// syndrome Horner chains.
func MulAddWord(acc, v uint64, r *BroadcastRow) uint64 {
	return acc ^ MulWord(v, r)
}

// PackWord packs the first Lanes bytes of b little-endian into a word:
// b[l] lands in lane l. b must hold at least Lanes bytes.
func PackWord(b []byte) uint64 {
	_ = b[7]
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}

// UnpackWord is the inverse of PackWord: lane l of v is stored to b[l].
func UnpackWord(v uint64, b []byte) {
	_ = b[7]
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
	b[4] = byte(v >> 32)
	b[5] = byte(v >> 40)
	b[6] = byte(v >> 48)
	b[7] = byte(v >> 56)
}

// GatherWord packs byte off of each of lanes stride-separated codewords in
// buf into a word: lane l holds buf[l*stride+off]. Lanes beyond lanes are
// zero (the additive identity, inert in every kernel). lanes must be in
// [1, Lanes].
func GatherWord(buf []byte, off, stride, lanes int) uint64 {
	if lanes == Lanes {
		// The hot full-group case: eight independent loads the compiler can
		// schedule freely, no shift chain on the critical path.
		return uint64(buf[off]) |
			uint64(buf[stride+off])<<8 |
			uint64(buf[2*stride+off])<<16 |
			uint64(buf[3*stride+off])<<24 |
			uint64(buf[4*stride+off])<<32 |
			uint64(buf[5*stride+off])<<40 |
			uint64(buf[6*stride+off])<<48 |
			uint64(buf[7*stride+off])<<56
	}
	var v uint64
	for l := lanes - 1; l >= 0; l-- {
		v = v<<8 | uint64(buf[l*stride+off])
	}
	return v
}

// transpose masks: byte positions in the low half of each 2^(k+1)-byte
// block, for the three block sizes of the recursive 8x8 byte transpose.
const (
	tm32 uint64 = 0x00000000FFFFFFFF
	tm16 uint64 = 0x0000FFFF0000FFFF
	tm8  uint64 = 0x00FF00FF00FF00FF
)

// transpose8 transposes an 8x8 byte matrix held as eight row words (byte j
// of w[l] is element [l][j]) in place, using the recursive block-swap
// scheme: swap 4x4 byte blocks between row pairs four apart, then 2x2
// blocks two apart, then single bytes one apart. 36 word ops for all 64
// bytes — far cheaper than eight byte-gathers.
// Fully unrolled on locals so every intermediate stays in a register:
// looping with computed indices costs bounds checks and spills w to memory
// between stages, which showed up as a ~20% slowdown on the syndrome sweep.
func transpose8(w *[8]uint64) {
	a0, a1, a2, a3, a4, a5, a6, a7 := w[0], w[1], w[2], w[3], w[4], w[5], w[6], w[7]

	b0 := (a0 & tm32) | (a4 << 32)
	b4 := (a0 >> 32) | (a4 &^ tm32)
	b1 := (a1 & tm32) | (a5 << 32)
	b5 := (a1 >> 32) | (a5 &^ tm32)
	b2 := (a2 & tm32) | (a6 << 32)
	b6 := (a2 >> 32) | (a6 &^ tm32)
	b3 := (a3 & tm32) | (a7 << 32)
	b7 := (a3 >> 32) | (a7 &^ tm32)

	c0 := (b0 & tm16) | ((b2 & tm16) << 16)
	c2 := ((b0 >> 16) & tm16) | (b2 &^ tm16)
	c1 := (b1 & tm16) | ((b3 & tm16) << 16)
	c3 := ((b1 >> 16) & tm16) | (b3 &^ tm16)
	c4 := (b4 & tm16) | ((b6 & tm16) << 16)
	c6 := ((b4 >> 16) & tm16) | (b6 &^ tm16)
	c5 := (b5 & tm16) | ((b7 & tm16) << 16)
	c7 := ((b5 >> 16) & tm16) | (b7 &^ tm16)

	w[0] = (c0 & tm8) | ((c1 & tm8) << 8)
	w[1] = ((c0 >> 8) & tm8) | (c1 &^ tm8)
	w[2] = (c2 & tm8) | ((c3 & tm8) << 8)
	w[3] = ((c2 >> 8) & tm8) | (c3 &^ tm8)
	w[4] = (c4 & tm8) | ((c5 & tm8) << 8)
	w[5] = ((c4 >> 8) & tm8) | (c5 &^ tm8)
	w[6] = (c6 & tm8) | ((c7 & tm8) << 8)
	w[7] = ((c6 >> 8) & tm8) | (c7 &^ tm8)
}

// GatherWords8 gathers eight consecutive symbol positions off..off+7 of
// lanes stride-separated codewords in buf at once: on return w[j] equals
// GatherWord(buf, off+j, stride, lanes) for j in 0..7. Instead of eight
// scattered byte loads per position it performs ONE eight-byte load per
// lane (the positions are contiguous within a codeword) and transposes the
// 8x8 byte block in registers — the main reason the batch syndrome sweep
// beats the scalar decoder on clean reads. Requires off+8 <= codeword
// length so the per-lane loads stay inside each codeword's symbols.
func GatherWords8(buf []byte, off, stride, lanes int, w *[8]uint64) {
	if lanes == Lanes {
		w[0] = PackWord(buf[off:])
		w[1] = PackWord(buf[stride+off:])
		w[2] = PackWord(buf[2*stride+off:])
		w[3] = PackWord(buf[3*stride+off:])
		w[4] = PackWord(buf[4*stride+off:])
		w[5] = PackWord(buf[5*stride+off:])
		w[6] = PackWord(buf[6*stride+off:])
		w[7] = PackWord(buf[7*stride+off:])
	} else {
		for l := 0; l < Lanes; l++ {
			if l < lanes {
				w[l] = PackWord(buf[l*stride+off:])
			} else {
				w[l] = 0
			}
		}
	}
	transpose8(w)
}

// ScatterWord stores lane l of v to buf[l*stride+off] for l in [0, lanes):
// the inverse of GatherWord over the same flat stride-N layout.
func ScatterWord(v uint64, buf []byte, off, stride, lanes int) {
	for l := 0; l < lanes; l++ {
		buf[l*stride+off] = byte(v >> (8 * l))
	}
}

// MulAddSliceBatch adds c * src into dst element-wise like MulAddSlice, but
// processes eight bytes per step with the bit-sliced kernel and only falls
// back to the scalar table row for the tail. dst must be at least as long
// as src. On flat stride-N batch buffers (the batch codec layout) this is
// the bulk multiply-accumulate over all lanes at once.
func MulAddSliceBatch(dst, src []byte, c Elem) {
	if c == 0 {
		return
	}
	r := MulRowBatch(c)
	n := len(src) &^ (Lanes - 1)
	for i := 0; i < n; i += Lanes {
		UnpackWord(PackWord(dst[i:])^MulWord(PackWord(src[i:]), &r), dst[i:])
	}
	row := &mulTable[c]
	for i := n; i < len(src); i++ {
		dst[i] ^= row[src[i]]
	}
}
