// Package gf implements arithmetic over the Galois field GF(2^8).
//
// All symbol-based codes in this repository (Reed–Solomon, the commercial
// chipkill encodings, double chip sparing) operate on 8-bit symbols drawn
// from GF(2^8) with the primitive polynomial x^8 + x^4 + x^3 + x^2 + 1
// (0x11D), the same polynomial used by most memory and storage codes.
//
// The package exposes both scalar arithmetic (Add, Mul, Div, Inv, Pow) and
// polynomial arithmetic over GF(2^8) (see poly.go), which the Reed–Solomon
// codec in package rs builds on. Multiplication and division are table
// driven: a 255-entry exponential table and a 256-entry logarithm table are
// built once at package initialisation, and a full 256x256 (64 KB)
// multiplication table on top of them makes Mul a single unconditional
// lookup. The rows of that table are exposed directly (MulRow) together
// with bulk kernels over byte slices (MulSlice, MulAddSlice), which the
// Reed–Solomon hot path — encoding, syndrome computation, Chien search —
// is written against.
package gf

import "fmt"

// Poly is the primitive polynomial used to construct the field,
// x^8 + x^4 + x^3 + x^2 + 1, written as a bit mask including the x^8 term.
const Poly = 0x11D

// Size is the number of elements in GF(2^8).
const Size = 256

// Order is the order of the multiplicative group, Size - 1.
const Order = 255

// Elem is an element of GF(2^8). The zero value is the additive identity.
type Elem = byte

var (
	expTable [2 * Order]Elem  // expTable[i] = alpha^i, doubled to avoid mod in Mul
	logTable [Size]byte       // logTable[x] = log_alpha(x); logTable[0] is unused
	mulTable [Size][Size]Elem // mulTable[a][b] = a*b; row/col 0 stay zero
)

func init() {
	x := 1
	for i := 0; i < Order; i++ {
		expTable[i] = Elem(x)
		expTable[i+Order] = Elem(x)
		logTable[x] = byte(i)
		x <<= 1
		if x&0x100 != 0 {
			x ^= Poly
		}
	}
	if x != 1 {
		// The generator must cycle back to 1 after exactly Order steps for a
		// primitive polynomial; anything else means Poly is not primitive.
		panic(fmt.Sprintf("gf: %#x is not a primitive polynomial", Poly))
	}
	for a := 1; a < Size; a++ {
		la := int(logTable[a])
		row := &mulTable[a]
		for b := 1; b < Size; b++ {
			row[b] = expTable[la+int(logTable[b])]
		}
	}
}

// Add returns a + b in GF(2^8). Addition and subtraction coincide (XOR).
func Add(a, b Elem) Elem { return a ^ b }

// Sub returns a - b in GF(2^8), identical to Add.
func Sub(a, b Elem) Elem { return a ^ b }

// Mul returns a * b in GF(2^8): a single unconditional table lookup.
func Mul(a, b Elem) Elem { return mulTable[a][b] }

// Div returns a / b in GF(2^8). Division by zero panics: it indicates a
// decoder bug, not a runtime condition.
func Div(a, b Elem) Elem {
	if b == 0 {
		panic("gf: division by zero")
	}
	if a == 0 {
		return 0
	}
	d := int(logTable[a]) - int(logTable[b])
	if d < 0 {
		d += Order
	}
	return expTable[d]
}

// Inv returns the multiplicative inverse of a. Inv(0) panics.
func Inv(a Elem) Elem {
	if a == 0 {
		panic("gf: inverse of zero")
	}
	return expTable[Order-int(logTable[a])]
}

// Exp returns alpha^i where alpha is the primitive element (0x02). The
// exponent may be any integer; it is reduced modulo Order.
func Exp(i int) Elem {
	i %= Order
	if i < 0 {
		i += Order
	}
	return expTable[i]
}

// Log returns log_alpha(a) in [0, Order). Log(0) panics.
func Log(a Elem) int {
	if a == 0 {
		panic("gf: log of zero")
	}
	return int(logTable[a])
}

// Pow returns a raised to the power n. Pow(0, 0) is defined as 1.
func Pow(a Elem, n int) Elem {
	if n == 0 {
		return 1
	}
	if a == 0 {
		return 0
	}
	e := (int(logTable[a]) * n) % Order
	if e < 0 {
		e += Order
	}
	return expTable[e]
}
