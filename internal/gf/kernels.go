package gf

// This file holds the bulk multiplication kernels of the codec hot path.
// They all run off rows of the full 256x256 multiplication table, so the
// inner loops are single unconditional lookups with no branches on the
// operand values.

// MulRow returns the multiplication-table row of c: MulRow(c)[x] == Mul(c, x)
// for every x. The returned array is shared and must not be modified; callers
// that multiply many values by the same constant (generator coefficients,
// syndrome evaluation points, Chien stepping constants) hold the row pointer
// and index it directly.
func MulRow(c Elem) *[Size]Elem { return &mulTable[c] }

// MulSlice sets dst[i] = c * src[i] for every i in src. dst must be at least
// as long as src; dst and src may be the same slice.
func MulSlice(dst, src []byte, c Elem) {
	row := &mulTable[c]
	for i, v := range src {
		dst[i] = row[v]
	}
}

// MulAddSlice adds c * src into dst element-wise: dst[i] ^= c * src[i] for
// every i in src. dst must be at least as long as src. This is the
// multiply-accumulate step of polynomial multiplication and of the Forney
// numerator, fused into one pass.
func MulAddSlice(dst, src []byte, c Elem) {
	if c == 0 {
		return
	}
	row := &mulTable[c]
	for i, v := range src {
		dst[i] ^= row[v]
	}
}
