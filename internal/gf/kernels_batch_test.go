package gf

import (
	"math/rand"
	"testing"
)

func TestXtimeWordMatchesScalar(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	b := make([]byte, Lanes)
	for trial := 0; trial < 1000; trial++ {
		r.Read(b)
		v := XtimeWord(PackWord(b))
		for l := 0; l < Lanes; l++ {
			if got, want := byte(v>>(8*l)), Mul(2, b[l]); got != want {
				t.Fatalf("XtimeWord lane %d of %#x: got %#x, want %#x", l, b, got, want)
			}
		}
	}
}

func TestMulWordMatchesScalarExhaustiveConstants(t *testing.T) {
	// Every constant, against a few random lane vectors each: the broadcast
	// row decomposition must agree with the full multiplication table.
	r := rand.New(rand.NewSource(2))
	b := make([]byte, Lanes)
	for c := 0; c < Size; c++ {
		row := MulRowBatch(Elem(c))
		for trial := 0; trial < 4; trial++ {
			r.Read(b)
			b[trial%Lanes] = 0 // keep zero lanes represented
			v := MulWord(PackWord(b), &row)
			for l := 0; l < Lanes; l++ {
				if got, want := byte(v>>(8*l)), Mul(Elem(c), b[l]); got != want {
					t.Fatalf("MulWord(%#x) lane %d of %#x: got %#x, want %#x", c, l, b, got, want)
				}
			}
		}
	}
}

func TestMulRowBatchMatchesMulRow(t *testing.T) {
	for _, c := range []Elem{0, 1, 2, 3, 0x1D, 0x53, 0x80, 0xFF} {
		row := MulRowBatch(c)
		scalar := MulRow(c)
		for j := 0; j < 8; j++ {
			// Entry j is c*x^j in every lane; x^j is Exp(j) for j < 8.
			want := BroadcastWord(scalar[Exp(j)])
			if row[j] != want {
				t.Fatalf("MulRowBatch(%#x)[%d] = %#x, want %#x", c, j, row[j], want)
			}
		}
	}
}

func TestMulAddWord(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	acc := make([]byte, Lanes)
	src := make([]byte, Lanes)
	for trial := 0; trial < 200; trial++ {
		r.Read(acc)
		r.Read(src)
		c := Elem(r.Intn(Size))
		row := MulRowBatch(c)
		v := MulAddWord(PackWord(acc), PackWord(src), &row)
		for l := 0; l < Lanes; l++ {
			if got, want := byte(v>>(8*l)), acc[l]^Mul(c, src[l]); got != want {
				t.Fatalf("MulAddWord lane %d: got %#x, want %#x", l, got, want)
			}
		}
	}
}

func TestPackUnpackRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	b := make([]byte, Lanes)
	out := make([]byte, Lanes)
	for trial := 0; trial < 100; trial++ {
		r.Read(b)
		UnpackWord(PackWord(b), out)
		for l := range b {
			if out[l] != b[l] {
				t.Fatalf("round trip lane %d: got %#x, want %#x", l, out[l], b[l])
			}
		}
	}
}

func TestGatherScatterWord(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	const stride = 37
	for lanes := 1; lanes <= Lanes; lanes++ {
		buf := make([]byte, stride*Lanes)
		r.Read(buf)
		for off := 0; off < stride; off++ {
			v := GatherWord(buf, off, stride, lanes)
			for l := 0; l < Lanes; l++ {
				want := byte(0)
				if l < lanes {
					want = buf[l*stride+off]
				}
				if got := byte(v >> (8 * l)); got != want {
					t.Fatalf("GatherWord(off=%d, lanes=%d) lane %d: got %#x, want %#x", off, lanes, l, got, want)
				}
			}
		}
		// Scatter writes back exactly the gathered lanes.
		out := make([]byte, stride*Lanes)
		for off := 0; off < stride; off++ {
			ScatterWord(GatherWord(buf, off, stride, lanes), out, off, stride, lanes)
		}
		for l := 0; l < lanes; l++ {
			for off := 0; off < stride; off++ {
				if out[l*stride+off] != buf[l*stride+off] {
					t.Fatalf("scatter lane %d off %d mismatch", l, off)
				}
			}
		}
	}
}

func TestMulAddSliceBatchMatchesMulAddSlice(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	for trial := 0; trial < 200; trial++ {
		n := r.Intn(100) // covers 0, sub-word, and non-multiple-of-8 tails
		src := make([]byte, n)
		r.Read(src)
		c := Elem(r.Intn(Size))
		got := make([]byte, n)
		want := make([]byte, n)
		r.Read(got)
		copy(want, got)
		MulAddSliceBatch(got, src, c)
		MulAddSlice(want, src, c)
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("MulAddSliceBatch(c=%#x, n=%d): [%d] = %#x, want %#x", c, n, i, got[i], want[i])
			}
		}
	}
}

func TestMulAddSliceBatchAllocs(t *testing.T) {
	src := make([]byte, 64)
	dst := make([]byte, 64)
	if n := testing.AllocsPerRun(100, func() { MulAddSliceBatch(dst, src, 0x53) }); n != 0 {
		t.Fatalf("MulAddSliceBatch allocates %v per run, want 0", n)
	}
}

func BenchmarkMulAddSliceBatch(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	src := make([]byte, 64)
	dst := make([]byte, 64)
	r.Read(src)
	b.SetBytes(int64(len(src)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		MulAddSliceBatch(dst, src, byte(i)|1)
	}
}

// TestGatherWords8MatchesGatherWord pins the transposing block gather to
// the byte-wise reference: w[j] must equal GatherWord at position off+j
// for every lane count and every in-bounds offset.
func TestGatherWords8MatchesGatherWord(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	const stride = 37
	for lanes := 1; lanes <= Lanes; lanes++ {
		buf := make([]byte, stride*Lanes)
		r.Read(buf)
		var w [8]uint64
		for off := 0; off+8 <= stride; off++ {
			GatherWords8(buf, off, stride, lanes, &w)
			for j := 0; j < 8; j++ {
				if want := GatherWord(buf, off+j, stride, lanes); w[j] != want {
					t.Fatalf("GatherWords8(off=%d, lanes=%d)[%d] = %#x, want %#x", off, lanes, j, w[j], want)
				}
			}
		}
	}
}

// TestFusedXtimeWords checks the fused x^2/x^3 kernels against chained
// XtimeWord on full random words, so every lane value and every overflow
// bit combination is exercised.
func TestFusedXtimeWords(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for i := 0; i < 10000; i++ {
		v := rng.Uint64()
		if got, want := Xtime2Word(v), XtimeWord(XtimeWord(v)); got != want {
			t.Fatalf("Xtime2Word(%#x) = %#x, want %#x", v, got, want)
		}
		if got, want := Xtime3Word(v), XtimeWord(XtimeWord(XtimeWord(v))); got != want {
			t.Fatalf("Xtime3Word(%#x) = %#x, want %#x", v, got, want)
		}
	}
}
