package gf

import (
	"testing"
	"testing/quick"
)

func TestAddIsXOR(t *testing.T) {
	if Add(0x53, 0xCA) != 0x53^0xCA {
		t.Fatalf("Add(0x53,0xCA) = %#x, want %#x", Add(0x53, 0xCA), 0x53^0xCA)
	}
	if Sub(0x53, 0xCA) != Add(0x53, 0xCA) {
		t.Fatal("Sub must equal Add in characteristic 2")
	}
}

func TestMulIdentity(t *testing.T) {
	for a := 0; a < Size; a++ {
		if got := Mul(Elem(a), 1); got != Elem(a) {
			t.Fatalf("Mul(%d, 1) = %d, want %d", a, got, a)
		}
		if got := Mul(Elem(a), 0); got != 0 {
			t.Fatalf("Mul(%d, 0) = %d, want 0", a, got)
		}
	}
}

func TestMulAgainstSlowReference(t *testing.T) {
	// Carry-less multiplication reduced by the field polynomial, bit by bit.
	slow := func(a, b byte) byte {
		var p int
		x, y := int(a), int(b)
		for i := 0; i < 8; i++ {
			if y&1 != 0 {
				p ^= x
			}
			y >>= 1
			x <<= 1
			if x&0x100 != 0 {
				x ^= Poly
			}
		}
		return byte(p)
	}
	for a := 0; a < Size; a++ {
		for b := 0; b < Size; b++ {
			if got, want := Mul(Elem(a), Elem(b)), slow(byte(a), byte(b)); got != want {
				t.Fatalf("Mul(%d, %d) = %d, want %d", a, b, got, want)
			}
		}
	}
}

func TestMulCommutativeAssociativeDistributive(t *testing.T) {
	comm := func(a, b Elem) bool { return Mul(a, b) == Mul(b, a) }
	assoc := func(a, b, c Elem) bool { return Mul(Mul(a, b), c) == Mul(a, Mul(b, c)) }
	dist := func(a, b, c Elem) bool { return Mul(a, Add(b, c)) == Add(Mul(a, b), Mul(a, c)) }
	for name, f := range map[string]any{"commutative": comm, "associative": assoc, "distributive": dist} {
		if err := quick.Check(f, nil); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestDivInvertsMul(t *testing.T) {
	f := func(a, b Elem) bool {
		if b == 0 {
			return true
		}
		return Div(Mul(a, b), b) == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestInv(t *testing.T) {
	for a := 1; a < Size; a++ {
		if got := Mul(Elem(a), Inv(Elem(a))); got != 1 {
			t.Fatalf("a * Inv(a) = %d for a = %d, want 1", got, a)
		}
	}
}

func TestInvZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Inv(0) did not panic")
		}
	}()
	Inv(0)
}

func TestDivByZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Div(1, 0) did not panic")
		}
	}()
	Div(1, 0)
}

func TestLogZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Log(0) did not panic")
		}
	}()
	Log(0)
}

func TestExpLogRoundTrip(t *testing.T) {
	for a := 1; a < Size; a++ {
		if got := Exp(Log(Elem(a))); got != Elem(a) {
			t.Fatalf("Exp(Log(%d)) = %d", a, got)
		}
	}
	for i := 0; i < Order; i++ {
		if got := Log(Exp(i)); got != i {
			t.Fatalf("Log(Exp(%d)) = %d", i, got)
		}
	}
}

func TestExpNegativeAndLargeExponents(t *testing.T) {
	if Exp(-1) != Exp(Order-1) {
		t.Fatal("Exp(-1) != Exp(Order-1)")
	}
	if Exp(Order) != Exp(0) {
		t.Fatal("Exp(Order) != Exp(0)")
	}
	if Exp(3*Order+7) != Exp(7) {
		t.Fatal("Exp does not reduce large exponents")
	}
}

func TestPow(t *testing.T) {
	for a := 0; a < Size; a++ {
		want := Elem(1)
		for n := 0; n < 10; n++ {
			if got := Pow(Elem(a), n); got != want {
				t.Fatalf("Pow(%d, %d) = %d, want %d", a, n, got, want)
			}
			want = Mul(want, Elem(a))
		}
	}
}

func TestPrimitiveElementGeneratesGroup(t *testing.T) {
	seen := make(map[Elem]bool)
	for i := 0; i < Order; i++ {
		seen[Exp(i)] = true
	}
	if len(seen) != Order {
		t.Fatalf("alpha generates %d distinct elements, want %d", len(seen), Order)
	}
}
