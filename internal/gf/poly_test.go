package gf

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func randPoly(r *rand.Rand, maxDeg int) Polynomial {
	n := r.Intn(maxDeg + 2)
	p := make(Polynomial, n)
	for i := range p {
		p[i] = Elem(r.Intn(Size))
	}
	return PolyTrim(p)
}

func TestPolyTrim(t *testing.T) {
	p := Polynomial{1, 2, 0, 0}
	if got := PolyTrim(p); len(got) != 2 {
		t.Fatalf("PolyTrim len = %d, want 2", len(got))
	}
	if got := PolyTrim(Polynomial{0, 0}); len(got) != 0 {
		t.Fatalf("PolyTrim of zero poly len = %d, want 0", len(got))
	}
}

func TestPolyDegree(t *testing.T) {
	if d := PolyDegree(nil); d != -1 {
		t.Fatalf("degree(0) = %d, want -1", d)
	}
	if d := PolyDegree(Polynomial{5}); d != 0 {
		t.Fatalf("degree(const) = %d, want 0", d)
	}
	if d := PolyDegree(Polynomial{0, 0, 7}); d != 2 {
		t.Fatalf("degree = %d, want 2", d)
	}
}

func TestPolyAddSelfIsZero(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 100; i++ {
		p := randPoly(r, 10)
		if got := PolyAdd(p, p); len(got) != 0 {
			t.Fatalf("p + p = %v, want zero polynomial", got)
		}
	}
}

func TestPolyMulByConstant(t *testing.T) {
	p := Polynomial{1, 2, 3}
	got := PolyMul(p, Polynomial{2})
	want := PolyScale(p, 2)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("PolyMul by const = %v, want %v", got, want)
	}
}

func TestPolyMulDegreeAdds(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for i := 0; i < 200; i++ {
		a, b := randPoly(r, 8), randPoly(r, 8)
		da, db := PolyDegree(a), PolyDegree(b)
		dm := PolyDegree(PolyMul(a, b))
		if da < 0 || db < 0 {
			if dm != -1 {
				t.Fatalf("mul with zero poly has degree %d", dm)
			}
			continue
		}
		if dm != da+db {
			t.Fatalf("deg(a*b) = %d, want %d + %d", dm, da, db)
		}
	}
}

func TestPolyEvalHorner(t *testing.T) {
	// p(x) = 3 + 2x + x^2 evaluated the long way.
	p := Polynomial{3, 2, 1}
	for x := 0; x < Size; x++ {
		e := Elem(x)
		want := Add(Add(3, Mul(2, e)), Mul(e, e))
		if got := PolyEval(p, e); got != want {
			t.Fatalf("PolyEval(p, %d) = %d, want %d", x, got, want)
		}
	}
}

func TestPolyDivModReconstruction(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for i := 0; i < 500; i++ {
		a := randPoly(r, 12)
		b := randPoly(r, 6)
		if PolyDegree(b) < 0 {
			continue
		}
		q, rem := PolyDivMod(a, b)
		if PolyDegree(rem) >= PolyDegree(b) {
			t.Fatalf("deg(rem) = %d >= deg(b) = %d", PolyDegree(rem), PolyDegree(b))
		}
		back := PolyAdd(PolyMul(q, b), rem)
		if !reflect.DeepEqual(PolyTrim(back), PolyTrim(a)) {
			t.Fatalf("q*b + r = %v, want %v", back, a)
		}
	}
}

func TestPolyDivByZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("PolyDivMod by zero did not panic")
		}
	}()
	PolyDivMod(Polynomial{1}, nil)
}

func TestPolyDeriv(t *testing.T) {
	// d/dx (a + bx + cx^2 + dx^3) = b + dx^2 in characteristic 2.
	p := Polynomial{10, 20, 30, 40}
	got := PolyDeriv(p)
	want := Polynomial{20, 0, 40}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("PolyDeriv = %v, want %v", got, want)
	}
	if PolyDeriv(Polynomial{7}) != nil {
		t.Fatal("derivative of constant must be zero polynomial")
	}
}

func TestPolyMulCommutative(t *testing.T) {
	f := func(a, b []byte) bool {
		pa, pb := PolyTrim(Polynomial(a)), PolyTrim(Polynomial(b))
		return reflect.DeepEqual(PolyMul(pa, pb), PolyMul(pb, pa))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPolyEvalRootOfLinearFactor(t *testing.T) {
	// (x - r) has root r: eval of PolyMul(anything, (x-r)) at r is 0.
	r := rand.New(rand.NewSource(4))
	for i := 0; i < 100; i++ {
		root := Elem(r.Intn(Size))
		factor := Polynomial{root, 1} // x + root == x - root
		p := PolyMul(randPoly(r, 6), factor)
		if got := PolyEval(p, root); got != 0 {
			t.Fatalf("polynomial with root %d evaluates to %d", root, got)
		}
	}
}
