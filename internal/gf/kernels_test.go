package gf

import (
	"math/rand"
	"testing"
)

// mulLogExp is the reference log/exp multiplication the full table is built
// from; the exhaustive test below pins the table to it.
func mulLogExp(a, b Elem) Elem {
	if a == 0 || b == 0 {
		return 0
	}
	return expTable[int(logTable[a])+int(logTable[b])]
}

func TestMulTableMatchesLogExpExhaustive(t *testing.T) {
	for a := 0; a < Size; a++ {
		for b := 0; b < Size; b++ {
			if got, want := Mul(Elem(a), Elem(b)), mulLogExp(Elem(a), Elem(b)); got != want {
				t.Fatalf("Mul(%#x, %#x) = %#x, want %#x", a, b, got, want)
			}
		}
	}
}

func TestMulRow(t *testing.T) {
	for _, c := range []Elem{0, 1, 2, 0x53, 0xFF} {
		row := MulRow(c)
		for x := 0; x < Size; x++ {
			if row[x] != Mul(c, Elem(x)) {
				t.Fatalf("MulRow(%#x)[%#x] = %#x, want %#x", c, x, row[x], Mul(c, Elem(x)))
			}
		}
	}
}

func TestMulSliceAndMulAddSlice(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for trial := 0; trial < 100; trial++ {
		n := r.Intn(40)
		src := make([]byte, n)
		r.Read(src)
		c := Elem(r.Intn(Size))

		dst := make([]byte, n)
		MulSlice(dst, src, c)
		for i := range src {
			if dst[i] != Mul(c, src[i]) {
				t.Fatalf("MulSlice: dst[%d] = %#x, want %#x", i, dst[i], Mul(c, src[i]))
			}
		}

		acc := make([]byte, n)
		r.Read(acc)
		want := make([]byte, n)
		for i := range acc {
			want[i] = acc[i] ^ Mul(c, src[i])
		}
		MulAddSlice(acc, src, c)
		for i := range acc {
			if acc[i] != want[i] {
				t.Fatalf("MulAddSlice: dst[%d] = %#x, want %#x", i, acc[i], want[i])
			}
		}
	}
}

func TestMulSliceInPlace(t *testing.T) {
	src := []byte{1, 2, 3, 0x80, 0xFF}
	want := make([]byte, len(src))
	for i, v := range src {
		want[i] = Mul(0x1D, v)
	}
	MulSlice(src, src, 0x1D)
	for i := range src {
		if src[i] != want[i] {
			t.Fatalf("in-place MulSlice: [%d] = %#x, want %#x", i, src[i], want[i])
		}
	}
}

func BenchmarkMulAddSlice(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	src := make([]byte, 64)
	dst := make([]byte, 64)
	r.Read(src)
	b.SetBytes(int64(len(src)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		MulAddSlice(dst, src, byte(i)|1)
	}
}
