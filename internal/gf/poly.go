package gf

// Polynomial is a polynomial over GF(2^8), stored with the coefficient of
// x^i at index i. The zero-length slice is the zero polynomial. Functions in
// this file treat Polynomial values as immutable and always return fresh
// slices.
type Polynomial []Elem

// PolyTrim returns p with trailing zero coefficients removed, so that the
// last element (if any) is the leading, non-zero coefficient.
func PolyTrim(p Polynomial) Polynomial {
	n := len(p)
	for n > 0 && p[n-1] == 0 {
		n--
	}
	return p[:n]
}

// PolyDegree returns the degree of p, or -1 for the zero polynomial.
func PolyDegree(p Polynomial) int { return len(PolyTrim(p)) - 1 }

// PolyAdd returns a + b.
func PolyAdd(a, b Polynomial) Polynomial {
	if len(b) > len(a) {
		a, b = b, a
	}
	out := make(Polynomial, len(a))
	copy(out, a)
	for i, c := range b {
		out[i] ^= c
	}
	return PolyTrim(out)
}

// PolyMul returns a * b.
func PolyMul(a, b Polynomial) Polynomial {
	a, b = PolyTrim(a), PolyTrim(b)
	if len(a) == 0 || len(b) == 0 {
		return nil
	}
	out := make(Polynomial, len(a)+len(b)-1)
	for i, ca := range a {
		MulAddSlice(out[i:i+len(b)], b, ca)
	}
	return PolyTrim(out)
}

// PolyScale returns p * c for a scalar c.
func PolyScale(p Polynomial, c Elem) Polynomial {
	out := make(Polynomial, len(p))
	MulSlice(out, p, c)
	return PolyTrim(out)
}

// PolyEval evaluates p at x using Horner's rule.
func PolyEval(p Polynomial, x Elem) Elem {
	row := MulRow(x)
	var acc Elem
	for i := len(p) - 1; i >= 0; i-- {
		acc = row[acc] ^ p[i]
	}
	return acc
}

// PolyDivMod returns the quotient and remainder of a / b. It panics if b is
// the zero polynomial.
func PolyDivMod(a, b Polynomial) (q, r Polynomial) {
	b = PolyTrim(b)
	if len(b) == 0 {
		panic("gf: polynomial division by zero")
	}
	r = make(Polynomial, len(a))
	copy(r, a)
	r = PolyTrim(r)
	if PolyDegree(r) < PolyDegree(b) {
		return nil, r
	}
	q = make(Polynomial, PolyDegree(r)-PolyDegree(b)+1)
	lead := Inv(b[len(b)-1])
	for PolyDegree(r) >= PolyDegree(b) {
		d := PolyDegree(r) - PolyDegree(b)
		c := Mul(r[len(r)-1], lead)
		q[d] = c
		for i, bc := range b {
			r[d+i] ^= Mul(c, bc)
		}
		r = PolyTrim(r)
	}
	return PolyTrim(q), r
}

// PolyDeriv returns the formal derivative of p. In characteristic 2 the
// even-power terms vanish and odd-power terms keep their coefficients.
func PolyDeriv(p Polynomial) Polynomial {
	if len(p) < 2 {
		return nil
	}
	out := make(Polynomial, len(p)-1)
	for i := 1; i < len(p); i += 2 {
		out[i-1] = p[i]
	}
	return PolyTrim(out)
}
