package dram

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func testGeom() Geometry {
	return Geometry{
		DevicesPerRank: 18,
		BanksPerDevice: 8,
		RowsPerBank:    64,
		ColsPerRow:     32,
		BeatsPerLine:   4,
	}
}

func TestLineBytes(t *testing.T) {
	if got := testGeom().LineBytes(); got != 72 {
		t.Fatalf("LineBytes = %d, want 72 (18 devices x 4 beats)", got)
	}
}

func TestNewRankPanicsOnBadGeometry(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewRank with zero geometry did not panic")
		}
	}()
	NewRank(Geometry{})
}

func TestUnwrittenLinesReadZero(t *testing.T) {
	r := NewRank(testGeom())
	line := r.ReadLine(Addr{Bank: 3, Row: 10, Col: 5})
	for _, b := range line {
		if b != 0 {
			t.Fatal("unwritten line is not zero")
		}
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	r := NewRank(testGeom())
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		a := Addr{Bank: rng.Intn(8), Row: rng.Intn(64), Col: rng.Intn(32)}
		data := make([]byte, 72)
		rng.Read(data)
		r.WriteLine(a, data)
		if got := r.ReadLine(a); !bytes.Equal(got, data) {
			t.Fatalf("round trip mismatch at %+v", a)
		}
	}
}

func TestWriteLineCopiesData(t *testing.T) {
	r := NewRank(testGeom())
	data := make([]byte, 72)
	data[0] = 0x42
	a := Addr{}
	r.WriteLine(a, data)
	data[0] = 0x00 // caller mutates its buffer afterwards
	if got := r.ReadLine(a); got[0] != 0x42 {
		t.Fatal("WriteLine aliased the caller's buffer")
	}
}

func TestAddressesAreIndependent(t *testing.T) {
	// Property: flat addressing is injective across the geometry.
	g := Geometry{DevicesPerRank: 2, BanksPerDevice: 4, RowsPerBank: 8, ColsPerRow: 4, BeatsPerLine: 1}
	f := func(b1, r1, c1, b2, r2, c2 uint8) bool {
		a1 := Addr{Bank: int(b1) % 4, Row: int(r1) % 8, Col: int(c1) % 4}
		a2 := Addr{Bank: int(b2) % 4, Row: int(r2) % 8, Col: int(c2) % 4}
		if a1 == a2 {
			return true
		}
		return g.flat(a1) != g.flat(a2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestValidatePanicsOutOfRange(t *testing.T) {
	r := NewRank(testGeom())
	for _, a := range []Addr{{Bank: 8}, {Row: 64}, {Col: 32}, {Bank: -1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("address %+v did not panic", a)
				}
			}()
			r.ReadLine(a)
		}()
	}
}

func TestDeviceFaultCorruptsOnlyItsSymbols(t *testing.T) {
	r := NewRank(testGeom())
	a := Addr{Bank: 1, Row: 2, Col: 3}
	data := make([]byte, 72)
	for i := range data {
		data[i] = 0x55
	}
	r.WriteLine(a, data)
	r.InjectFault(Fault{Device: 7, Scope: ScopeDevice, Mode: StuckAt0})
	got := r.ReadLine(a)
	for beat := 0; beat < 4; beat++ {
		for dev := 0; dev < 18; dev++ {
			idx := beat*18 + dev
			want := byte(0x55)
			if dev == 7 {
				want = 0x00
			}
			if got[idx] != want {
				t.Fatalf("beat %d dev %d: got %#x, want %#x", beat, dev, got[idx], want)
			}
		}
	}
}

func TestStuckAt1Fault(t *testing.T) {
	r := NewRank(testGeom())
	a := Addr{}
	r.InjectFault(Fault{Device: 0, Scope: ScopeDevice, Mode: StuckAt1})
	got := r.ReadLine(a)
	for beat := 0; beat < 4; beat++ {
		if got[beat*18] != 0xFF {
			t.Fatalf("beat %d: stuck-at-1 device read %#x", beat, got[beat*18])
		}
	}
}

func TestBitFaultFlipsSingleBit(t *testing.T) {
	r := NewRank(testGeom())
	a := Addr{Bank: 2, Row: 5, Col: 9}
	data := make([]byte, 72)
	r.WriteLine(a, data)
	r.InjectFault(Fault{Device: 4, Scope: ScopeBit, Mode: StuckAt1, Bank: 2, Row: 5, Col: 9, Bit: 3})
	got := r.ReadLine(a)
	for beat := 0; beat < 4; beat++ {
		if got[beat*18+4] != 1<<3 {
			t.Fatalf("beat %d: bit fault produced %#x, want %#x", beat, got[beat*18+4], 1<<3)
		}
	}
	// A different address in the same bank is untouched.
	other := r.ReadLine(Addr{Bank: 2, Row: 5, Col: 10})
	for _, b := range other {
		if b != 0 {
			t.Fatal("bit fault leaked to another column")
		}
	}
}

func TestScopeCoverage(t *testing.T) {
	cases := []struct {
		fault Fault
		hit   []Addr
		miss  []Addr
	}{
		{
			Fault{Device: 0, Scope: ScopeBank, Mode: StuckAt1, Bank: 3},
			[]Addr{{Bank: 3}, {Bank: 3, Row: 63, Col: 31}},
			[]Addr{{Bank: 2}, {Bank: 4, Row: 63}},
		},
		{
			Fault{Device: 0, Scope: ScopeRow, Mode: StuckAt1, Bank: 1, Row: 7},
			[]Addr{{Bank: 1, Row: 7}, {Bank: 1, Row: 7, Col: 31}},
			[]Addr{{Bank: 1, Row: 8}, {Bank: 0, Row: 7}},
		},
		{
			Fault{Device: 0, Scope: ScopeColumn, Mode: StuckAt1, Bank: 1, Col: 4},
			[]Addr{{Bank: 1, Col: 4}, {Bank: 1, Row: 50, Col: 4}},
			[]Addr{{Bank: 1, Col: 5}, {Bank: 2, Col: 4}},
		},
		{
			Fault{Device: 0, Scope: ScopeWord, Mode: StuckAt1, Bank: 6, Row: 9, Col: 2},
			[]Addr{{Bank: 6, Row: 9, Col: 2}},
			[]Addr{{Bank: 6, Row: 9, Col: 3}, {Bank: 6, Row: 10, Col: 2}},
		},
	}
	for _, tc := range cases {
		r := NewRank(testGeom())
		r.InjectFault(tc.fault)
		for _, a := range tc.hit {
			if got := r.ReadLine(a); got[0] != 0xFF {
				t.Errorf("%v fault missed address %+v", tc.fault.Scope, a)
			}
		}
		for _, a := range tc.miss {
			if got := r.ReadLine(a); got[0] != 0x00 {
				t.Errorf("%v fault hit address %+v it should not cover", tc.fault.Scope, a)
			}
		}
	}
}

func TestWrongDataFaultIsDeterministicAndWrong(t *testing.T) {
	r := NewRank(testGeom())
	a := Addr{Bank: 0, Row: 1, Col: 2}
	data := make([]byte, 72)
	for i := range data {
		data[i] = byte(i)
	}
	r.WriteLine(a, data)
	r.InjectFault(Fault{Device: 3, Scope: ScopeDevice, Mode: WrongData})
	first := r.ReadLine(a)
	second := r.ReadLine(a)
	if !bytes.Equal(first, second) {
		t.Fatal("WrongData fault is not deterministic across reads")
	}
	raw := r.ReadLineRaw(a)
	if bytes.Equal(first, raw) {
		t.Fatal("WrongData fault returned the stored data")
	}
	// Only device 3's symbols differ.
	for i := range first {
		if i%18 == 3 {
			continue
		}
		if first[i] != raw[i] {
			t.Fatalf("WrongData corrupted symbol %d belonging to device %d", i, i%18)
		}
	}
}

func TestMultipleFaultsAccumulate(t *testing.T) {
	r := NewRank(testGeom())
	r.InjectFault(Fault{Device: 1, Scope: ScopeDevice, Mode: StuckAt1})
	r.InjectFault(Fault{Device: 2, Scope: ScopeDevice, Mode: StuckAt0})
	data := make([]byte, 72)
	for i := range data {
		data[i] = 0x77
	}
	a := Addr{}
	r.WriteLine(a, data)
	got := r.ReadLine(a)
	if got[1] != 0xFF || got[2] != 0x00 || got[3] != 0x77 {
		t.Fatalf("accumulated faults wrong: %#x %#x %#x", got[1], got[2], got[3])
	}
	if len(r.Faults()) != 2 {
		t.Fatalf("Faults() = %d entries, want 2", len(r.Faults()))
	}
	r.ClearFaults()
	if got := r.ReadLine(a); !bytes.Equal(got, data) {
		t.Fatal("ClearFaults did not restore clean reads")
	}
}

func TestFaultValidatePanics(t *testing.T) {
	r := NewRank(testGeom())
	bad := []Fault{
		{Device: 18, Scope: ScopeDevice},
		{Device: 0, Scope: ScopeBank, Bank: 8},
		{Device: 0, Scope: ScopeRow, Bank: 0, Row: 64},
		{Device: 0, Scope: ScopeColumn, Bank: 0, Col: 32},
		{Device: 0, Scope: ScopeBit, Bank: 0, Row: 0, Col: 0, Bit: 8},
	}
	for _, f := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("fault %+v did not panic", f)
				}
			}()
			r.InjectFault(f)
		}()
	}
}

func TestScopeAndModeStrings(t *testing.T) {
	if ScopeRow.String() != "row" || ScopeDevice.String() != "device" {
		t.Fatal("Scope.String wrong")
	}
	if StuckAt0.String() != "stuck-at-0" || WrongData.String() != "wrong-data" {
		t.Fatal("Mode.String wrong")
	}
	if Scope(99).String() == "" || Mode(99).String() == "" {
		t.Fatal("unknown enum values must still print")
	}
}

func TestStuckFaultHiddenUntilRead(t *testing.T) {
	// A stuck-at-0 cell holding a 0 is invisible; the scrubber's write-1
	// pass is what exposes it. This test pins the mechanism the 4-step
	// scrub algorithm (§4.2.2) relies on.
	r := NewRank(testGeom())
	a := Addr{Bank: 0, Row: 0, Col: 0}
	r.InjectFault(Fault{Device: 5, Scope: ScopeDevice, Mode: StuckAt0})

	zeros := make([]byte, 72)
	r.WriteLine(a, zeros)
	if got := r.ReadLine(a); !bytes.Equal(got, zeros) {
		t.Fatal("stuck-at-0 visible while holding zeros; should be hidden")
	}

	ones := make([]byte, 72)
	for i := range ones {
		ones[i] = 0xFF
	}
	r.WriteLine(a, ones)
	got := r.ReadLine(a)
	if got[5] != 0x00 {
		t.Fatal("stuck-at-0 did not corrupt the all-ones pattern")
	}
}
