package dram

import "fmt"

// Scope identifies the device-internal circuitry a fault takes out,
// following the taxonomy of the Sridharan & Liberty field study the paper
// draws its rates from.
type Scope int

const (
	// ScopeBit: one cell (one bit of one symbol at one address).
	ScopeBit Scope = iota
	// ScopeWord: one line's worth of symbols from this device.
	ScopeWord
	// ScopeColumn: one column across all rows of one bank.
	ScopeColumn
	// ScopeRow: one row of one bank.
	ScopeRow
	// ScopeBank: one whole bank of the device.
	ScopeBank
	// ScopeDevice: the whole device.
	ScopeDevice
)

// String implements fmt.Stringer.
func (s Scope) String() string {
	switch s {
	case ScopeBit:
		return "bit"
	case ScopeWord:
		return "word"
	case ScopeColumn:
		return "column"
	case ScopeRow:
		return "row"
	case ScopeBank:
		return "bank"
	case ScopeDevice:
		return "device"
	}
	return fmt.Sprintf("Scope(%d)", int(s))
}

// Mode is the way a faulty region corrupts read data.
type Mode int

const (
	// StuckAt0 forces affected bits to zero.
	StuckAt0 Mode = iota
	// StuckAt1 forces affected bits to one.
	StuckAt1
	// WrongData models address-decoder faults: reads return data from the
	// wrong internal location. The paper calls these out as the faults that
	// defeat checksum-only detection (Ch. 2, LOT-ECC discussion). Modeled
	// as a deterministic per-address scramble so repeated reads agree.
	WrongData
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case StuckAt0:
		return "stuck-at-0"
	case StuckAt1:
		return "stuck-at-1"
	case WrongData:
		return "wrong-data"
	}
	return fmt.Sprintf("Mode(%d)", int(m))
}

// Fault is one device-level fault overlay.
type Fault struct {
	Device int // device index within the rank
	Scope  Scope
	Mode   Mode
	// Coordinates of the faulty circuitry; fields beyond the scope are
	// ignored (e.g. a ScopeDevice fault ignores Bank/Row/Col/Bit).
	Bank, Row, Col int
	Bit            int // bit index within the symbol, for ScopeBit
}

func (f Fault) validate(g Geometry) {
	if f.Device < 0 || f.Device >= g.DevicesPerRank {
		panic(fmt.Sprintf("dram: fault device %d outside rank of %d", f.Device, g.DevicesPerRank))
	}
	needBank := f.Scope != ScopeDevice
	if needBank && (f.Bank < 0 || f.Bank >= g.BanksPerDevice) {
		panic(fmt.Sprintf("dram: fault bank %d outside geometry", f.Bank))
	}
	switch f.Scope {
	case ScopeRow, ScopeWord, ScopeBit:
		if f.Row < 0 || f.Row >= g.RowsPerBank {
			panic(fmt.Sprintf("dram: fault row %d outside geometry", f.Row))
		}
	}
	switch f.Scope {
	case ScopeColumn, ScopeWord, ScopeBit:
		if f.Col < 0 || f.Col >= g.ColsPerRow {
			panic(fmt.Sprintf("dram: fault col %d outside geometry", f.Col))
		}
	}
	if f.Scope == ScopeBit && (f.Bit < 0 || f.Bit >= 8) {
		panic(fmt.Sprintf("dram: fault bit %d outside symbol", f.Bit))
	}
}

// covers reports whether the fault affects address a.
func (f Fault) covers(a Addr) bool {
	switch f.Scope {
	case ScopeDevice:
		return true
	case ScopeBank:
		return a.Bank == f.Bank
	case ScopeRow:
		return a.Bank == f.Bank && a.Row == f.Row
	case ScopeColumn:
		return a.Bank == f.Bank && a.Col == f.Col
	case ScopeWord, ScopeBit:
		return a.Bank == f.Bank && a.Row == f.Row && a.Col == f.Col
	}
	return false
}

// corrupt applies the fault to line, which is laid out beat-major with
// DevicesPerRank symbols per beat.
func (f Fault) corrupt(r *Rank, a Addr, line []byte) {
	if !f.covers(a) {
		return
	}
	g := r.geom
	for beat := 0; beat < g.BeatsPerLine; beat++ {
		idx := beat*g.DevicesPerRank + f.Device
		switch f.Mode {
		case StuckAt0:
			if f.Scope == ScopeBit {
				line[idx] &^= 1 << f.Bit
			} else {
				line[idx] = 0x00
			}
		case StuckAt1:
			if f.Scope == ScopeBit {
				line[idx] |= 1 << f.Bit
			} else {
				line[idx] = 0xFF
			}
		case WrongData:
			// Deterministic scramble of (address, beat, device): the same
			// read always returns the same wrong value, like a decoder
			// that consistently selects the wrong row.
			line[idx] = scramble(g.flat(a), beat, f.Device)
		}
	}
}

// scramble is a small deterministic mixing function (xorshift-style) used by
// WrongData faults.
func scramble(addr uint64, beat, device int) byte {
	x := addr*0x9E3779B97F4A7C15 + uint64(beat)*0xBF58476D1CE4E5B9 + uint64(device)*0x94D049BB133111EB
	x ^= x >> 31
	x *= 0xD6E8FEB86659FD93
	x ^= x >> 27
	return byte(x)
}
