package dram

import "testing"

func TestParseGeneration(t *testing.T) {
	cases := []struct {
		in   string
		want Generation
		ok   bool
	}{
		{"", DDR2, true},
		{"ddr2", DDR2, true},
		{"DDR4", DDR4, true},
		{" ddr5 ", DDR5, true},
		{"ddr3", 0, false},
		{"lpddr5", 0, false},
	}
	for _, c := range cases {
		got, err := ParseGeneration(c.in)
		if (err == nil) != c.ok {
			t.Errorf("ParseGeneration(%q) error = %v, want ok=%v", c.in, err, c.ok)
			continue
		}
		if c.ok && got != c.want {
			t.Errorf("ParseGeneration(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestOrgTable(t *testing.T) {
	cases := []struct {
		gen     Generation
		width   int
		devices int
		banks   int
		clocks  int
	}{
		{DDR2, 8, 18, 8, 2},
		{DDR2, 4, 36, 8, 2},
		{DDR4, 8, 9, 16, 4},
		{DDR4, 4, 18, 16, 4},
		{DDR5, 8, 5, 32, 8},
		{DDR5, 16, 3, 32, 8},
	}
	for _, c := range cases {
		o, err := OrgFor(c.gen, c.width)
		if err != nil {
			t.Fatalf("OrgFor(%v, x%d): %v", c.gen, c.width, err)
		}
		if o.DevicesPerRank != c.devices || o.Banks() != c.banks || o.BurstClocks != c.clocks {
			t.Errorf("OrgFor(%v, x%d) = %+v, want devices %d banks %d clocks %d",
				c.gen, c.width, o, c.devices, c.banks, c.clocks)
		}
	}
	if _, err := OrgFor(DDR5, 32); err == nil {
		t.Error("OrgFor(DDR5, x32) accepted an unsupported width")
	}
	if _, err := OrgFor(Generation(99), 8); err == nil {
		t.Error("OrgFor(unknown, x8) accepted an unknown generation")
	}
}
