// Package dram models the DRAM storage substrate: channels of ranks of
// devices with bank/row/column geometry, a sparse backing store, and
// device-level fault overlays that corrupt reads the way real device
// failures do (stuck-at bits, dead devices, faulty row/column decoders).
//
// The model stores whole memory *lines*: each line is BeatsPerLine symbols
// wide per device, so a rank of D devices serves lines of D*BeatsPerLine
// bytes. Chipkill codes stripe each codeword across the devices — symbol i
// of beat b lives in device i — so a whole-device fault corrupts exactly one
// symbol per codeword. Timing and power live in packages memctrl and power;
// this package is purely functional storage plus corruption.
package dram

import "fmt"

// Geometry describes one rank's organisation. The ARCC evaluation uses
// 18-device x8 ranks (relaxed channel) and 36-device x4 lockstep ranks
// (baseline), both with 8 banks per device (DDR2 512 Mb devices).
type Geometry struct {
	DevicesPerRank int // symbols per beat
	BanksPerDevice int
	RowsPerBank    int
	ColsPerRow     int // line-sized columns per row
	BeatsPerLine   int // symbols each device contributes to one line
}

// LineBytes returns the total bytes (data + check) of one stored line.
func (g Geometry) LineBytes() int { return g.DevicesPerRank * g.BeatsPerLine }

// Addr locates one line within a rank.
type Addr struct {
	Bank int
	Row  int
	Col  int
}

func (g Geometry) validate(a Addr) {
	if a.Bank < 0 || a.Bank >= g.BanksPerDevice ||
		a.Row < 0 || a.Row >= g.RowsPerBank ||
		a.Col < 0 || a.Col >= g.ColsPerRow {
		panic(fmt.Sprintf("dram: address %+v outside geometry %+v", a, g))
	}
}

func (g Geometry) flat(a Addr) uint64 {
	return (uint64(a.Bank)*uint64(g.RowsPerBank)+uint64(a.Row))*uint64(g.ColsPerRow) + uint64(a.Col)
}

// Rank is a group of devices accessed together. The backing store is sparse:
// unwritten lines read as zero (a freshly-initialised, scrubbed memory).
type Rank struct {
	geom   Geometry
	store  map[uint64][]byte
	faults []Fault
}

// NewRank constructs an empty rank.
func NewRank(g Geometry) *Rank {
	if g.DevicesPerRank <= 0 || g.BanksPerDevice <= 0 || g.RowsPerBank <= 0 ||
		g.ColsPerRow <= 0 || g.BeatsPerLine <= 0 {
		panic(fmt.Sprintf("dram: invalid geometry %+v", g))
	}
	return &Rank{geom: g, store: make(map[uint64][]byte)}
}

// Geometry returns the rank's geometry.
func (r *Rank) Geometry() Geometry { return r.geom }

// WriteLine stores a line. The data length must equal Geometry().LineBytes().
// Writes are recorded faithfully; corruption happens on read, which is how
// stuck-at faults hide until the cell is read back. Rewriting a line reuses
// its stored buffer, so steady-state writes do not allocate.
func (r *Rank) WriteLine(a Addr, data []byte) {
	r.geom.validate(a)
	if len(data) != r.geom.LineBytes() {
		panic(fmt.Sprintf("dram: WriteLine with %d bytes, want %d", len(data), r.geom.LineBytes()))
	}
	key := r.geom.flat(a)
	if buf, ok := r.store[key]; ok {
		copy(buf, data)
		return
	}
	buf := make([]byte, len(data))
	copy(buf, data)
	r.store[key] = buf
}

// ReadLine fetches a line with all applicable fault corruption applied.
// Symbol s of beat b sits at offset b*DevicesPerRank + s and comes from
// device s.
func (r *Rank) ReadLine(a Addr) []byte {
	return r.ReadLineInto(a, make([]byte, r.geom.LineBytes()))
}

// ReadLineInto is ReadLine with a caller-owned buffer of LineBytes() bytes,
// which is overwritten and returned; it performs no heap allocations.
func (r *Rank) ReadLineInto(a Addr, out []byte) []byte {
	r.geom.validate(a)
	if len(out) != r.geom.LineBytes() {
		panic(fmt.Sprintf("dram: ReadLineInto with %d bytes, want %d", len(out), r.geom.LineBytes()))
	}
	if stored, ok := r.store[r.geom.flat(a)]; ok {
		copy(out, stored)
	} else {
		clear(out)
	}
	for i := range r.faults {
		r.faults[i].corrupt(r, a, out)
	}
	return out
}

// ReadLineRaw fetches the stored line without fault corruption. Tests and
// golden-path checks use it; the memory system never does.
func (r *Rank) ReadLineRaw(a Addr) []byte {
	r.geom.validate(a)
	out := make([]byte, r.geom.LineBytes())
	if stored, ok := r.store[r.geom.flat(a)]; ok {
		copy(out, stored)
	}
	return out
}

// InjectFault adds a fault overlay to the rank. Faults accumulate; each read
// applies all overlays in injection order.
func (r *Rank) InjectFault(f Fault) {
	f.validate(r.geom)
	r.faults = append(r.faults, f)
}

// ClearFaults removes all fault overlays (a repaired/replaced DIMM).
func (r *Rank) ClearFaults() { r.faults = nil }

// Faults returns the injected fault overlays.
func (r *Rank) Faults() []Fault { return r.faults }

// LinesStored reports how many distinct lines have been written (test aid).
func (r *Rank) LinesStored() int { return len(r.store) }
