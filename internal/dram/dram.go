// Package dram models the DRAM storage substrate: channels of ranks of
// devices with bank/row/column geometry, a sparse backing store, and
// device-level fault overlays that corrupt reads the way real device
// failures do (stuck-at bits, dead devices, faulty row/column decoders).
//
// The model stores whole memory *lines*: each line is BeatsPerLine symbols
// wide per device, so a rank of D devices serves lines of D*BeatsPerLine
// bytes. Chipkill codes stripe each codeword across the devices — symbol i
// of beat b lives in device i — so a whole-device fault corrupts exactly one
// symbol per codeword. Timing and power live in packages memctrl and power;
// this package is purely functional storage plus corruption.
package dram

import (
	"fmt"
	"math/bits"

	"arcc/internal/pagedmem"
)

// Geometry describes one rank's organisation. The ARCC evaluation uses
// 18-device x8 ranks (relaxed channel) and 36-device x4 lockstep ranks
// (baseline), both with 8 banks per device (DDR2 512 Mb devices).
type Geometry struct {
	DevicesPerRank int // symbols per beat
	BanksPerDevice int
	RowsPerBank    int
	ColsPerRow     int // line-sized columns per row
	BeatsPerLine   int // symbols each device contributes to one line
}

// LineBytes returns the total bytes (data + check) of one stored line.
func (g Geometry) LineBytes() int { return g.DevicesPerRank * g.BeatsPerLine }

// Addr locates one line within a rank.
type Addr struct {
	Bank int
	Row  int
	Col  int
}

func (g Geometry) validate(a Addr) {
	if a.Bank < 0 || a.Bank >= g.BanksPerDevice ||
		a.Row < 0 || a.Row >= g.RowsPerBank ||
		a.Col < 0 || a.Col >= g.ColsPerRow {
		panic(fmt.Sprintf("dram: address %+v outside geometry %+v", a, g))
	}
}

// flat returns the line index of a within the rank. Every operand is
// explicitly widened to uint64 before multiplying; NewRank rejects
// geometries whose TotalBytes overflow, so for a validated address the
// arithmetic here cannot wrap.
func (g Geometry) flat(a Addr) uint64 {
	return (uint64(a.Bank)*uint64(g.RowsPerBank)+uint64(a.Row))*uint64(g.ColsPerRow) + uint64(a.Col)
}

// TotalLines returns the number of addressable lines in the geometry, or
// an error when banks*rows*cols overflows uint64.
func (g Geometry) TotalLines() (uint64, error) {
	hi, lines := bits.Mul64(uint64(g.BanksPerDevice), uint64(g.RowsPerBank))
	if hi != 0 {
		return 0, fmt.Errorf("dram: geometry %+v overflows: %d banks x %d rows", g, g.BanksPerDevice, g.RowsPerBank)
	}
	hi, lines = bits.Mul64(lines, uint64(g.ColsPerRow))
	if hi != 0 {
		return 0, fmt.Errorf("dram: geometry %+v overflows: line count exceeds 2^64", g)
	}
	return lines, nil
}

// TotalBytes returns the stored capacity of the geometry in bytes
// (TotalLines * LineBytes), or an error when the flat byte address space
// overflows uint64 — the guard that makes flat-address arithmetic safe now
// that terabyte-and-beyond geometries are expressible.
func (g Geometry) TotalBytes() (uint64, error) {
	lines, err := g.TotalLines()
	if err != nil {
		return 0, err
	}
	hi, bytes := bits.Mul64(lines, uint64(g.LineBytes()))
	if hi != 0 {
		return 0, fmt.Errorf("dram: geometry %+v overflows: byte address space exceeds 2^64", g)
	}
	return bytes, nil
}

// rankPageBytes is the page size of a rank's sparse backing store. 4 KiB
// matches the OS page the paper's per-page modes are defined over; a
// 72-byte stored line occasionally straddles two backing pages, which the
// pagedmem span loop handles.
const rankPageBytes = 4096

// Rank is a group of devices accessed together. The backing store is a
// sparse paged memory: unwritten lines read as zero (a freshly-initialised,
// scrubbed memory), and host memory is proportional to the pages actually
// written, not the addressable capacity — a rank can span terabytes.
type Rank struct {
	geom      Geometry
	lineBytes uint64 // cached Geometry.LineBytes()
	mem       *pagedmem.Memory
	faults    []Fault
}

// NewRank constructs an empty rank. Geometries whose flat byte address
// space overflows uint64 are rejected, so all later address arithmetic is
// exact.
func NewRank(g Geometry) *Rank {
	if g.DevicesPerRank <= 0 || g.BanksPerDevice <= 0 || g.RowsPerBank <= 0 ||
		g.ColsPerRow <= 0 || g.BeatsPerLine <= 0 {
		panic(fmt.Sprintf("dram: invalid geometry %+v", g))
	}
	if _, err := g.TotalBytes(); err != nil {
		panic(err.Error())
	}
	return &Rank{geom: g, lineBytes: uint64(g.LineBytes()), mem: pagedmem.New(rankPageBytes)}
}

// Geometry returns the rank's geometry.
func (r *Rank) Geometry() Geometry { return r.geom }

// WriteLine stores a line. The data length must equal Geometry().LineBytes().
// Writes are recorded faithfully; corruption happens on read, which is how
// stuck-at faults hide until the cell is read back. Steady-state writes to
// already-materialised pages do not allocate, and all-zero writes over
// never-touched memory materialise nothing.
func (r *Rank) WriteLine(a Addr, data []byte) {
	r.geom.validate(a)
	if len(data) != r.geom.LineBytes() {
		panic(fmt.Sprintf("dram: WriteLine with %d bytes, want %d", len(data), r.geom.LineBytes()))
	}
	r.mem.StoreFrom(r.geom.flat(a)*r.lineBytes, data)
}

// ReadLine fetches a line with all applicable fault corruption applied.
// Symbol s of beat b sits at offset b*DevicesPerRank + s and comes from
// device s.
func (r *Rank) ReadLine(a Addr) []byte {
	return r.ReadLineInto(a, make([]byte, r.geom.LineBytes()))
}

// ReadLineInto is ReadLine with a caller-owned buffer of LineBytes() bytes,
// which is overwritten and returned; it performs no heap allocations.
func (r *Rank) ReadLineInto(a Addr, out []byte) []byte {
	r.geom.validate(a)
	if len(out) != r.geom.LineBytes() {
		panic(fmt.Sprintf("dram: ReadLineInto with %d bytes, want %d", len(out), r.geom.LineBytes()))
	}
	r.mem.LoadInto(r.geom.flat(a)*r.lineBytes, out)
	for i := range r.faults {
		r.faults[i].corrupt(r, a, out)
	}
	return out
}

// ReadLineRaw fetches the stored line without fault corruption. Tests and
// golden-path checks use it; the memory system never does.
func (r *Rank) ReadLineRaw(a Addr) []byte {
	r.geom.validate(a)
	out := make([]byte, r.geom.LineBytes())
	r.mem.LoadInto(r.geom.flat(a)*r.lineBytes, out)
	return out
}

// InjectFault adds a fault overlay to the rank. Faults accumulate; each read
// applies all overlays in injection order.
func (r *Rank) InjectFault(f Fault) {
	f.validate(r.geom)
	r.faults = append(r.faults, f)
}

// ClearFaults removes all fault overlays (a repaired/replaced DIMM).
func (r *Rank) ClearFaults() { r.faults = nil }

// Faults returns the injected fault overlays.
func (r *Rank) Faults() []Fault { return r.faults }

// ResidentPages reports how many backing-store pages are materialised.
func (r *Rank) ResidentPages() int { return r.mem.ResidentPages() }

// ResidentBytes reports the host memory held by the rank's backing store.
func (r *Rank) ResidentBytes() int64 { return r.mem.ResidentBytes() }

// CompactZero releases backing pages whose content has returned to all
// zero (scrub-verified-zero release) and reports how many were released.
func (r *Rank) CompactZero() int { return r.mem.CompactZero() }
