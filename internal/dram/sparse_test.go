package dram

import "testing"

// TestGeometryOverflowRejected is the regression test for the flat-address
// widening fix: geometries whose flat line or byte address space overflows
// uint64 must be rejected at construction, not silently wrap in flat().
func TestGeometryOverflowRejected(t *testing.T) {
	overflowing := []Geometry{
		// banks * rows alone overflows.
		{DevicesPerRank: 18, BanksPerDevice: 1 << 32, RowsPerBank: 1 << 33, ColsPerRow: 2, BeatsPerLine: 4},
		// banks * rows * cols overflows.
		{DevicesPerRank: 18, BanksPerDevice: 1 << 22, RowsPerBank: 1 << 22, ColsPerRow: 1 << 22, BeatsPerLine: 4},
		// The line count fits but the byte address space does not.
		{DevicesPerRank: 18, BanksPerDevice: 1 << 20, RowsPerBank: 1 << 20, ColsPerRow: 1 << 19, BeatsPerLine: 4},
	}
	for i, g := range overflowing {
		if _, err := g.TotalBytes(); err == nil {
			t.Errorf("case %d: TotalBytes accepted overflowing geometry %+v", i, g)
		}
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: NewRank accepted overflowing geometry %+v", i, g)
				}
			}()
			NewRank(g)
		}()
	}
	// A terabyte-scale geometry that does NOT overflow must be accepted.
	big := Geometry{DevicesPerRank: 18, BanksPerDevice: 32, RowsPerBank: 1 << 21, ColsPerRow: 1 << 8, BeatsPerLine: 4}
	lines, err := big.TotalLines()
	if err != nil {
		t.Fatalf("TotalLines(%+v): %v", big, err)
	}
	if want := uint64(32) << 29; lines != want {
		t.Fatalf("TotalLines = %d, want %d", lines, want)
	}
	bytes, err := big.TotalBytes()
	if err != nil {
		t.Fatalf("TotalBytes(%+v): %v", big, err)
	}
	if want := lines * 72; bytes != want {
		t.Fatalf("TotalBytes = %d, want %d", bytes, want)
	}
	if bytes < 1<<40 {
		t.Fatalf("test geometry spans %d bytes, want >= 1 TiB", bytes)
	}
}

// TestRankResidencyProportionalToTouch pins the tentpole property at the
// rank level: a terabyte-scale rank holds host memory proportional to the
// lines actually written, and scrub-verified-zero release reclaims pages
// whose content returns to zero.
func TestRankResidencyProportionalToTouch(t *testing.T) {
	g := Geometry{DevicesPerRank: 18, BanksPerDevice: 32, RowsPerBank: 1 << 21, ColsPerRow: 1 << 8, BeatsPerLine: 4}
	r := NewRank(g)

	line := make([]byte, g.LineBytes())
	for i := range line {
		line[i] = byte(i + 1)
	}
	// Scatter 1000 lines across the full bank/row space.
	const writes = 1000
	for i := 0; i < writes; i++ {
		a := Addr{Bank: i % 32, Row: (i * 2654435761) % (1 << 21), Col: i % (1 << 8)}
		r.WriteLine(a, line)
	}
	// Each 72-byte line touches at most 2 backing pages.
	if rp := r.ResidentPages(); rp == 0 || rp > 2*writes {
		t.Fatalf("ResidentPages = %d after %d scattered writes, want (0, %d]", rp, writes, 2*writes)
	}
	if rb := r.ResidentBytes(); rb > 2*writes*rankPageBytes {
		t.Fatalf("ResidentBytes = %d, not proportional to %d touched lines", rb, writes)
	}

	// Reads of never-written space are zero and materialise nothing.
	before := r.ResidentPages()
	out := make([]byte, g.LineBytes())
	r.ReadLineInto(Addr{Bank: 5, Row: 12345, Col: 17}, out)
	for i, b := range out {
		if b != 0 {
			t.Fatalf("unwritten line byte %d = %#x, want 0", i, b)
		}
	}
	if r.ResidentPages() != before {
		t.Fatal("read of unwritten space materialised pages")
	}

	// Zeroing the written lines and compacting releases everything.
	clear(line)
	for i := 0; i < writes; i++ {
		a := Addr{Bank: i % 32, Row: (i * 2654435761) % (1 << 21), Col: i % (1 << 8)}
		r.WriteLine(a, line)
	}
	r.CompactZero()
	if rp := r.ResidentPages(); rp != 0 {
		t.Fatalf("ResidentPages = %d after zeroing + CompactZero, want 0", rp)
	}
}
