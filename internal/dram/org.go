package dram

import (
	"fmt"
	"strings"
)

// Generation names a DRAM technology generation. The functional ECC layout
// (72-byte stored lines, four codewords per line) is generation-agnostic;
// what changes per generation is the device organisation — devices per ECC
// access, bank-group structure, burst length — and the timing/power models
// in packages memctrl and power that consume it.
type Generation int

const (
	// DDR2 is the paper's evaluated technology (Table 7.1: 667 MT/s,
	// 512 Mb devices, 8 flat banks, BL4).
	DDR2 Generation = iota
	// DDR4 introduces 4 bank groups x 4 banks and BL8; same-group
	// back-to-back column accesses pay tCCD_L instead of tCCD_S.
	DDR4
	// DDR5 splits each DIMM into independent subchannels with 8 bank
	// groups x 4 banks and BL16; an ECC subchannel is 40 bits wide.
	DDR5
)

// String implements fmt.Stringer.
func (g Generation) String() string {
	switch g {
	case DDR2:
		return "ddr2"
	case DDR4:
		return "ddr4"
	case DDR5:
		return "ddr5"
	}
	return fmt.Sprintf("Generation(%d)", int(g))
}

// ParseGeneration parses "ddr2", "ddr4", or "ddr5" (case-insensitive).
func ParseGeneration(s string) (Generation, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "ddr2":
		return DDR2, nil
	case "ddr4":
		return DDR4, nil
	case "ddr5":
		return DDR5, nil
	}
	return 0, fmt.Errorf("dram: unknown generation %q (want ddr2, ddr4, or ddr5)", s)
}

// Org describes one rank organisation of a generation/device-width pair:
// how many devices serve one ECC access, how the banks are grouped, and
// how many bus clocks one line transfer occupies.
type Org struct {
	Generation Generation
	// Width is the device data width in bits: 4, 8, or 16.
	Width int
	// DevicesPerRank is the number of devices a relaxed-mode ECC access
	// touches (the 72-bit DDR2/DDR4 ECC bus or the 40-bit DDR5 ECC
	// subchannel divided by the device width, rounded up).
	DevicesPerRank int
	// BankGroups and BanksPerGroup shape the bank hierarchy; DDR2 has one
	// flat group.
	BankGroups    int
	BanksPerGroup int
	// BurstClocks is the number of bus clocks one line burst occupies
	// (burst length / 2, data moving on both edges).
	BurstClocks int
}

// Banks returns the total banks per device.
func (o Org) Banks() int { return o.BankGroups * o.BanksPerGroup }

// orgs is the supported generation/width table. DevicesPerRank follows the
// ECC-bus arithmetic of each generation's access unit. DDR2 rows use the
// paper's ganged 144-bit channel (Table 7.1: two 72-bit halves accessed
// together — x4: 36, x8: 18, x16: 9). DDR4 rows use the standard 72-bit
// ECC DIMM bus (x4: 18, x8: 9, x16: 5 with one lane half-used). DDR5 rows
// use the 40-bit ECC subchannel (x4: 10, x8: 5, x16: 3).
var orgs = map[Generation]map[int]Org{
	DDR2: {
		4:  {DDR2, 4, 36, 1, 8, 2},
		8:  {DDR2, 8, 18, 1, 8, 2},
		16: {DDR2, 16, 9, 1, 8, 2},
	},
	DDR4: {
		4:  {DDR4, 4, 18, 4, 4, 4},
		8:  {DDR4, 8, 9, 4, 4, 4},
		16: {DDR4, 16, 5, 4, 4, 4},
	},
	DDR5: {
		4:  {DDR5, 4, 10, 8, 4, 8},
		8:  {DDR5, 8, 5, 8, 4, 8},
		16: {DDR5, 16, 3, 8, 4, 8},
	},
}

// OrgFor returns the organisation of a generation/device-width pair.
func OrgFor(gen Generation, width int) (Org, error) {
	byWidth, ok := orgs[gen]
	if !ok {
		return Org{}, fmt.Errorf("dram: unknown generation %v", gen)
	}
	o, ok := byWidth[width]
	if !ok {
		return Org{}, fmt.Errorf("dram: %v has no x%d organisation (want x4, x8, or x16)", gen, width)
	}
	return o, nil
}
