package scrub

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"arcc/internal/core"
	"arcc/internal/dram"
	"arcc/internal/pagetable"
)

func newMem(t *testing.T) *core.Controller {
	t.Helper()
	c := core.New(core.Config{Pages: 16, RanksPerChannel: 2, BanksPerDevice: 8, RowsPerBank: 1})
	c.RelaxAll()
	return c
}

func fillPage(t *testing.T, c *core.Controller, page int, r *rand.Rand) [][]byte {
	t.Helper()
	want := make([][]byte, core.LinesPerPage)
	for line := range want {
		want[line] = make([]byte, core.LineBytes)
		r.Read(want[line])
		if err := c.WriteLine(page, line, want[line]); err != nil {
			t.Fatal(err)
		}
	}
	return want
}

func TestCleanMemoryScrubFindsNothing(t *testing.T) {
	c := newMem(t)
	s := New(c, FourStep)
	r := rand.New(rand.NewSource(1))
	fillPage(t, c, 0, r)
	if faulty := s.FullScrub(); len(faulty) != 0 {
		t.Fatalf("clean memory reported faulty pages %v", faulty)
	}
	st := s.Stats()
	if st.Scrubs != 1 || st.FaultyPages != 0 || st.PagesUpgraded != 0 {
		t.Fatalf("stats %+v", st)
	}
}

func TestScrubPreservesData(t *testing.T) {
	c := newMem(t)
	s := New(c, FourStep)
	r := rand.New(rand.NewSource(2))
	want := fillPage(t, c, 3, r)
	s.FullScrub()
	for line, w := range want {
		got, err := c.ReadLine(3, line)
		if err != nil {
			t.Fatalf("line %d: %v", line, err)
		}
		if !bytes.Equal(got, w) {
			t.Fatalf("line %d: scrub destroyed data", line)
		}
	}
}

func TestScrubDetectsActiveFaultAndUpgrades(t *testing.T) {
	c := newMem(t)
	s := New(c, FourStep)
	r := rand.New(rand.NewSource(3))
	want := fillPage(t, c, 0, r)
	// WrongData faults produce nonzero syndromes on normal reads.
	c.InjectFault(0, 0, dram.Fault{Device: 6, Scope: dram.ScopeDevice, Mode: dram.WrongData})

	faulty := s.FullScrub()
	if len(faulty) == 0 {
		t.Fatal("scrub missed an active device fault")
	}
	// Pages in rank 0 of channel 0 must now be upgraded.
	for _, page := range faulty {
		if c.PageMode(page) != pagetable.Upgraded {
			t.Fatalf("faulty page %d not upgraded", page)
		}
	}
	// Data must survive detection + upgrade.
	for line, w := range want {
		got, err := c.ReadLine(0, line)
		if err != nil {
			t.Fatalf("line %d after upgrade: %v", line, err)
		}
		if !bytes.Equal(got, w) {
			t.Fatalf("line %d: data lost through scrub+upgrade", line)
		}
	}
}

func TestFourStepFindsHiddenStuckAtFault(t *testing.T) {
	// The decisive difference between the scrubbers: a stuck-at-0 device
	// in a region currently storing zeros is invisible to ECC reads but
	// the all-ones pass exposes it.
	cFour := newMem(t)
	cConv := newMem(t)
	// Memory content: all zeros (fresh pages). Stuck-at-0 on device 2.
	for _, c := range []*core.Controller{cFour, cConv} {
		c.InjectFault(0, 0, dram.Fault{Device: 2, Scope: dram.ScopeDevice, Mode: dram.StuckAt0})
	}

	four := New(cFour, FourStep)
	conv := New(cConv, Conventional)

	faultyFour := four.FullScrub()
	faultyConv := conv.FullScrub()

	if len(faultyFour) == 0 {
		t.Fatal("four-step scrubber missed hidden stuck-at-0 fault")
	}
	if four.Stats().HiddenStuckAt == 0 {
		t.Fatal("hidden fault not attributed to the pattern tests")
	}
	if len(faultyConv) != 0 {
		t.Fatal("conventional scrubber should NOT see the hidden fault (that is why ARCC hardens it)")
	}
}

func TestBootScrubRelaxesFaultFreePagesOnly(t *testing.T) {
	c := core.New(core.Config{Pages: 16, RanksPerChannel: 2, BanksPerDevice: 8, RowsPerBank: 1})
	// Boot state: everything upgraded. Fault in channel 0, rank 0, bank 3:
	// pages mapping to bank 3 of rank 0 stay upgraded.
	c.InjectFault(0, 0, dram.Fault{Device: 1, Scope: dram.ScopeBank, Mode: dram.WrongData, Bank: 3})
	s := New(c, FourStep)
	relaxed := s.BootScrub()
	if relaxed == 0 || relaxed == c.Pages() {
		t.Fatalf("BootScrub relaxed %d of %d pages; want some but not all", relaxed, c.Pages())
	}
	upgraded := c.Table().Count(pagetable.Upgraded)
	if upgraded+relaxed != c.Pages() {
		t.Fatalf("page accounting broken: %d upgraded + %d relaxed != %d", upgraded, relaxed, c.Pages())
	}
	// Exactly the pages of bank 3, rank 0 remain upgraded: 2 of 16 pages
	// (16 pages span 2 ranks x 8 banks with this tiny geometry).
	if upgraded != 2 {
		t.Fatalf("%d pages stayed upgraded, want 2 (bank-3 pages of rank 0)", upgraded)
	}
}

func TestScrubPageReportsOnlyFaultyPages(t *testing.T) {
	// 32 pages over 2 ranks (16 pages per rank with this geometry):
	// pages 16..31 live in rank 1.
	c := core.New(core.Config{Pages: 32, RanksPerChannel: 2, BanksPerDevice: 8, RowsPerBank: 1})
	c.RelaxAll()
	s := New(c, FourStep)
	c.InjectFault(0, 1, dram.Fault{Device: 0, Scope: dram.ScopeDevice, Mode: dram.StuckAt1})
	if s.ScrubPage(0) {
		t.Fatal("page 0 (rank 0) reported faulty; fault is in rank 1")
	}
	if !s.ScrubPage(c.Pages() - 1) {
		t.Fatal("page in faulty rank not reported")
	}
}

func TestConventionalScrubStillCatchesActiveFaults(t *testing.T) {
	c := newMem(t)
	r := rand.New(rand.NewSource(4))
	fillPage(t, c, 0, r)
	c.InjectFault(0, 0, dram.Fault{Device: 9, Scope: dram.ScopeDevice, Mode: dram.WrongData})
	s := New(c, Conventional)
	if faulty := s.FullScrub(); len(faulty) == 0 {
		t.Fatal("conventional scrub missed an active fault")
	}
	if s.Stats().ECCCorrections == 0 {
		t.Fatal("ECC corrections not counted")
	}
}

func TestScrubberAccessAccounting(t *testing.T) {
	cFour, cConv := newMem(t), newMem(t)
	four, conv := New(cFour, FourStep), New(cConv, Conventional)
	four.ScrubPage(0)
	conv.ScrubPage(0)
	if got, want := four.Stats().MemoryAccesses, int64(6*core.LinesPerPage); got != want {
		t.Fatalf("four-step accesses = %d, want %d", got, want)
	}
	if got, want := conv.Stats().MemoryAccesses, int64(2*core.LinesPerPage); got != want {
		t.Fatalf("conventional accesses = %d, want %d", got, want)
	}
}

func TestCostModelMatchesPaperArithmetic(t *testing.T) {
	// §4.2.2: 4 GB on a 128-bit 667 MT/s channel: one pass = 0.4 s, a
	// four-step scrub = 2.4 s, and at one scrub per 4 hours the bandwidth
	// overhead is 0.0167%.
	m := CostModel{
		MemoryBytes:           4 * 1024 * 1024 * 1024 * 8 / 8,
		ChannelBytesPerSecond: 667e6 * 16,
		ScrubIntervalHours:    4,
	}
	if got := m.PassSeconds(); math.Abs(got-0.4024) > 0.01 {
		t.Fatalf("pass time = %v s, want ~0.40 s", got)
	}
	if got := m.ScrubSeconds(FourStep); math.Abs(got-2.4) > 0.05 {
		t.Fatalf("scrub time = %v s, want ~2.4 s", got)
	}
	if got := m.BandwidthOverhead(FourStep); math.Abs(got-0.000167) > 0.00001 {
		t.Fatalf("bandwidth overhead = %v, want ~0.0167%%", got)
	}
	if m.ScrubSeconds(Conventional) >= m.ScrubSeconds(FourStep) {
		t.Fatal("conventional scrub must be cheaper")
	}
}

func TestNewPanicsOnBadAlgorithm(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New with bad algorithm did not panic")
		}
	}()
	New(newMem(t), Algorithm(7))
}

func TestRepeatedScrubsStable(t *testing.T) {
	// After the first scrub upgrades the faulty pages, later scrubs find
	// the same faults (they are permanent) but have nothing left to
	// upgrade.
	c := newMem(t)
	s := New(c, FourStep)
	c.InjectFault(0, 0, dram.Fault{Device: 3, Scope: dram.ScopeDevice, Mode: dram.StuckAt1})
	first := s.FullScrub()
	upgradedAfterFirst := c.Table().Count(pagetable.Upgraded)
	second := s.FullScrub()
	if len(second) != len(first) {
		t.Fatalf("permanent fault: scrub 1 found %d pages, scrub 2 found %d", len(first), len(second))
	}
	if got := c.Table().Count(pagetable.Upgraded); got != upgradedAfterFirst {
		t.Fatalf("second scrub changed upgraded count %d -> %d", upgradedAfterFirst, got)
	}
}

// TestScrubPageAllocationFree pins the steady-state scrub pass to zero heap
// allocations: the pattern buffers live in the Scrubber, the decode and
// line buffers in the controller, and the DRAM backing store reuses its
// per-line buffers once a line has been written.
func TestScrubPageAllocationFree(t *testing.T) {
	for _, algo := range []Algorithm{FourStep, Conventional} {
		mem := newMem(t)
		r := rand.New(rand.NewSource(21))
		fillPage(t, mem, 0, r)
		mem.InjectFault(0, 0, dram.Fault{Device: 3, Scope: dram.ScopeDevice, Mode: dram.StuckAt1})
		s := New(mem, algo)
		s.ScrubPage(0) // warm up: the pattern writes create store entries
		if allocs := testing.AllocsPerRun(5, func() { s.ScrubPage(0) }); allocs != 0 {
			t.Errorf("%v: ScrubPage: %v allocs/op, want 0", algo, allocs)
		}
	}
}
