package scrub

import (
	"bytes"
	"math/rand"
	"testing"

	"arcc/internal/core"
	"arcc/internal/dram"
	"arcc/internal/faultmodel"
	"arcc/internal/pagetable"
)

func TestSchedulerRunsScrubsOnInterval(t *testing.T) {
	s := New(newMem(t), FourStep)
	sched := NewScheduler(s, 4)
	if n := sched.AdvanceTo(3.9); n != 0 {
		t.Fatalf("scrub before the interval: %d", n)
	}
	if n := sched.AdvanceTo(4.0); n != 1 {
		t.Fatalf("AdvanceTo(4) ran %d scrubs, want 1", n)
	}
	if n := sched.AdvanceTo(17); n != 3 {
		t.Fatalf("AdvanceTo(17) ran %d scrubs, want 3 (at 8, 12, 16)", n)
	}
	if sched.Scrubber().Stats().Scrubs != 4 {
		t.Fatalf("total scrubs %d, want 4", sched.Scrubber().Stats().Scrubs)
	}
	if n := sched.AdvanceTo(10); n != 0 {
		t.Fatal("time moved backwards")
	}
}

func TestSchedulerPanicsOnBadInterval(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewScheduler(New(newMem(t), FourStep), 0)
}

func TestSecondLevelRequiresFourChannels(t *testing.T) {
	s := New(newMem(t), FourStep) // two channels
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	s.SetSecondLevel(true)
}

func TestSecondLevelUpgradeOnRepeatFault(t *testing.T) {
	// First scrub: fault -> pages upgrade to 4-check mode. Second fault in
	// another channel, next scrub: pages promote to 8-check mode (§5.1).
	mem := core.New(core.Config{Pages: 32, Channels: 4, RanksPerChannel: 2, BanksPerDevice: 8, RowsPerBank: 2})
	mem.RelaxAll()
	s := New(mem, FourStep)
	s.SetSecondLevel(true)

	mem.InjectFault(0, 0, dram.Fault{Device: 4, Scope: dram.ScopeDevice, Mode: dram.StuckAt1})
	s.FullScrub()
	if mem.Table().Count(pagetable.Upgraded) == 0 {
		t.Fatal("first fault did not upgrade pages")
	}
	if mem.Table().Count(pagetable.Upgraded8) != 0 {
		t.Fatal("no page should be at the second level yet")
	}

	mem.InjectFault(2, 0, dram.Fault{Device: 9, Scope: dram.ScopeDevice, Mode: dram.StuckAt0})
	s.FullScrub()
	if mem.Table().Count(pagetable.Upgraded8) == 0 {
		t.Fatal("second fault did not promote pages to upgraded8")
	}
}

// TestLifetimeSoak is the functional integration test: two simulated years
// of fault arrivals (at inflated rates) play against a real controller with
// real codewords, with a four-hourly scrub schedule. Data written before
// the faults must either read back intact or be flagged as a DUE — silent
// corruption of a *relaxed-mode guaranteed* pattern (single fault per
// channel-rank) must never happen.
func TestLifetimeSoak(t *testing.T) {
	// Daily scrubs over one year keep the test fast; the mechanism is
	// identical at the paper's four-hour cadence.
	mem := core.New(core.Config{Pages: 32, Channels: 2, RanksPerChannel: 2, BanksPerDevice: 8, RowsPerBank: 1})
	mem.RelaxAll()
	s := New(mem, FourStep)
	sched := NewScheduler(s, 24)
	rng := rand.New(rand.NewSource(99))

	// Reference content.
	want := make(map[[2]int][]byte)
	for page := 0; page < mem.Pages(); page++ {
		for line := 0; line < core.LinesPerPage; line += 16 {
			data := make([]byte, core.LineBytes)
			rng.Read(data)
			if err := mem.WriteLine(page, line, data); err != nil {
				t.Fatal(err)
			}
			want[[2]int{page, line}] = data
		}
	}

	// Fault history: heavily inflated rates so something happens, but at
	// most one device-scale fault per (channel, rank) to stay within the
	// relaxed mode's single-symbol guarantee between scrubs.
	rates := faultmodel.FieldStudyRates().Scale(100000)
	arrivals := faultmodel.SampleArrivals(rng, rates, 2, 18, 1)
	if len(arrivals) == 0 {
		t.Fatal("soak needs at least one arrival; raise the rate factor")
	}
	const maxFaults = 6
	geom := mem.Rank(0, 0).Geometry()
	used := map[[2]int]bool{}
	injected := 0
	for _, a := range arrivals {
		if injected >= maxFaults {
			break
		}
		if a.Type == faultmodel.Lane {
			continue // lane faults hit both ranks; skip for guarantee bookkeeping
		}
		channel := rng.Intn(2)
		key := [2]int{channel, a.Rank}
		if used[key] {
			continue // second fault in the same rank could defeat relaxed mode legally
		}
		used[key] = true
		sched.AdvanceTo(a.AtHours)
		mem.InjectFault(channel, a.Rank, faultmodel.ToDRAMFault(rng, a, geom))
		injected++
	}
	sched.AdvanceTo(faultmodel.HoursPerYear)
	if injected == 0 {
		t.Fatal("no usable faults injected")
	}

	// Every line must read back correctly: single faults per rank are
	// always correctable (relaxed before scrub, upgraded after).
	for key, data := range want {
		got, err := mem.ReadLine(key[0], key[1])
		if err != nil {
			t.Fatalf("page %d line %d: unexpected DUE after soak: %v", key[0], key[1], err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("page %d line %d: SILENT CORRUPTION after soak", key[0], key[1])
		}
	}

	st := s.Stats()
	if st.Scrubs < 300 {
		t.Fatalf("only %d scrubs over a year of daily scrubbing; scheduler broken", st.Scrubs)
	}
	t.Logf("soak: %d faults injected, %d scrubs, %d pages upgraded, %d corrections, %d DUEs",
		injected, st.Scrubs, st.PagesUpgraded, mem.Stats().Corrected, mem.Stats().DUEs)
}
