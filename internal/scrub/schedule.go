package scrub

import (
	"fmt"

	"arcc/internal/pagetable"
)

// SecondLevel controls whether FullScrub also applies the §5.1 second
// upgrade: a page that is *already* upgraded and is found faulty again gets
// promoted to the 8-check Upgraded8 mode (four-channel controllers only).
func (s *Scrubber) SetSecondLevel(enable bool) {
	if enable && !s.mem.SupportsStrongUpgrade() {
		panic("scrub: second-level upgrades require a four-channel controller")
	}
	s.secondLevel = enable
}

// applyModeTransitions performs the end-of-scrub upgrades for the pages
// found faulty.
func (s *Scrubber) applyModeTransitions(faulty []int) {
	for _, page := range faulty {
		switch s.mem.PageMode(page) {
		case pagetable.Relaxed:
			// The page is upgraded even when a DUE lost data along the
			// way: the stronger mode is still the right place for it.
			_ = s.mem.UpgradePage(page)
			s.stats.PagesUpgraded++
		case pagetable.Upgraded:
			if s.secondLevel {
				_ = s.mem.UpgradePageToStrong(page)
				s.stats.PagesUpgraded++
			}
		}
	}
}

// Scheduler drives periodic scrubs over simulated time, the way a memory
// controller timer would: one full scrub every interval (the paper and the
// field study use four hours).
type Scheduler struct {
	scrubber      *Scrubber
	intervalHours float64
	elapsedHours  float64
	nextScrubAt   float64
}

// NewScheduler wraps a scrubber with a periodic schedule.
func NewScheduler(s *Scrubber, intervalHours float64) *Scheduler {
	if intervalHours <= 0 {
		panic(fmt.Sprintf("scrub: invalid scrub interval %v", intervalHours))
	}
	return &Scheduler{scrubber: s, intervalHours: intervalHours, nextScrubAt: intervalHours}
}

// Scrubber returns the underlying scrubber (for statistics).
func (sc *Scheduler) Scrubber() *Scrubber { return sc.scrubber }

// ElapsedHours returns the simulated time reached so far.
func (sc *Scheduler) ElapsedHours() float64 { return sc.elapsedHours }

// AdvanceTo moves simulated time forward to hours, running every scrub that
// falls due in between. It returns the number of scrubs performed. Time
// never moves backwards; advancing to the past is a no-op.
func (sc *Scheduler) AdvanceTo(hours float64) int {
	scrubs := 0
	for sc.nextScrubAt <= hours {
		sc.scrubber.FullScrub()
		sc.elapsedHours = sc.nextScrubAt
		sc.nextScrubAt += sc.intervalHours
		scrubs++
	}
	if hours > sc.elapsedHours {
		sc.elapsedHours = hours
	}
	return scrubs
}
