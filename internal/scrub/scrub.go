// Package scrub implements ARCC's enhanced memory scrubber (§4.2.2).
//
// A conventional scrubber reads every line, corrects what the ECC can
// correct, and writes it back. That leaves *hidden* stuck-at faults
// undetected: a stuck-at-0 cell currently storing a 0 produces no syndrome.
// ARCC's reliability argument assumes an ideal scrubber that finds all
// faults at the end of each scrub, so the paper hardens the scrubber with
// write-pattern tests:
//
//  1. Read the line and set its value aside.
//  2. Write all 0s, read back: any 1 reveals a stuck-at-1 fault.
//  3. Write all 1s, read back: any 0 reveals a stuck-at-0 fault.
//  4. Correct any errors in the original content and write it back.
//
// A page in which any step finds a fault is upgraded at the end of the
// scrub. The scrubber also measures its own cost so the bandwidth-overhead
// numbers of §4.2.2 (six memory passes instead of two, ~0.0167% of
// bandwidth at one scrub per four hours) can be reproduced.
package scrub

import (
	"bytes"
	"fmt"

	"arcc/internal/core"
)

// Algorithm selects the scrubbing algorithm.
type Algorithm int

const (
	// FourStep is ARCC's pattern-testing scrubber described above.
	FourStep Algorithm = iota
	// Conventional only reads, corrects, and writes back — it misses
	// hidden stuck-at faults (kept for the ablation benchmarks).
	Conventional
)

// Scrubber drives periodic scrubs over an ARCC controller.
type Scrubber struct {
	mem         *core.Controller
	algo        Algorithm
	secondLevel bool // §5.1: promote faulty upgraded pages to Upgraded8

	// Pattern-test working buffers, allocated once: the all-zeros and
	// all-ones patterns plus the set-aside original content and read-back
	// buffer. With these (and the controller's own scratch) a steady-state
	// scrub pass performs zero heap allocations.
	zeros, ones, orig, back []byte

	stats Stats
}

// Stats accumulates scrubbing activity.
type Stats struct {
	Scrubs         int64 // full-memory scrubs completed
	LinesScrubbed  int64
	FaultyPages    int64 // pages found faulty (cumulative over scrubs)
	PagesUpgraded  int64
	HiddenStuckAt  int64 // faults caught only by the pattern tests
	ECCCorrections int64 // faults caught by the ECC decode in step 4
	DUEs           int64 // uncorrectable patterns encountered during scrub
	MemoryAccesses int64 // line-sized reads+writes issued (cost model)
}

// New creates a scrubber over mem.
func New(mem *core.Controller, algo Algorithm) *Scrubber {
	if algo != FourStep && algo != Conventional {
		panic(fmt.Sprintf("scrub: unknown algorithm %d", algo))
	}
	const stored = 72 // stored bytes per sub-line (64 data + 8 redundant)
	return &Scrubber{
		mem:   mem,
		algo:  algo,
		zeros: make([]byte, stored),
		ones:  bytes.Repeat([]byte{0xFF}, stored),
		orig:  make([]byte, stored),
		back:  make([]byte, stored),
	}
}

// Stats returns a snapshot of accumulated statistics.
func (s *Scrubber) Stats() Stats { return s.stats }

// ScrubPage scrubs one page and reports whether a fault was found in it.
// The page is NOT upgraded here — mode changes happen at the end of a full
// scrub (FullScrub), matching the paper's "upgrade at the end of every
// memory scrub".
func (s *Scrubber) ScrubPage(page int) bool {
	faulty := false
	for line := 0; line < core.LinesPerPage; line++ {
		s.stats.LinesScrubbed++
		switch s.algo {
		case FourStep:
			// Step 1: read and set aside.
			orig := s.mem.RawReadInto(page, line, s.orig)
			// Step 2: all-zeros pattern exposes stuck-at-1.
			s.mem.RawWrite(page, line, s.zeros)
			back := s.mem.RawReadInto(page, line, s.back)
			patternFault := !bytes.Equal(back, s.zeros)
			// Step 3: all-ones pattern exposes stuck-at-0.
			s.mem.RawWrite(page, line, s.ones)
			back = s.mem.RawReadInto(page, line, s.back)
			if !bytes.Equal(back, s.ones) {
				patternFault = true
			}
			// Step 4: restore original content, then let the ECC repair it.
			s.mem.RawWrite(page, line, orig)
			corrected, err := s.mem.CorrectLine(page, line)
			s.stats.MemoryAccesses += 6
			if patternFault {
				s.stats.HiddenStuckAt++
				faulty = true
			}
			if corrected > 0 {
				s.stats.ECCCorrections += int64(corrected)
				faulty = true
			}
			if err != nil {
				s.stats.DUEs++
				faulty = true
			}
		case Conventional:
			corrected, err := s.mem.CorrectLine(page, line)
			s.stats.MemoryAccesses += 2
			if corrected > 0 {
				s.stats.ECCCorrections += int64(corrected)
				faulty = true
			}
			if err != nil {
				s.stats.DUEs++
				faulty = true
			}
		}
	}
	if faulty {
		s.stats.FaultyPages++
	}
	return faulty
}

// FullScrub scrubs every page and then applies ARCC's mode transitions:
// faulty relaxed pages are upgraded. It returns the pages found faulty.
func (s *Scrubber) FullScrub() []int {
	var faulty []int
	for page := 0; page < s.mem.Pages(); page++ {
		if s.ScrubPage(page) {
			faulty = append(faulty, page)
		}
	}
	s.applyModeTransitions(faulty)
	s.stats.Scrubs++
	// Pattern testing materialises backing pages even where memory was
	// never written; release everything that is verified all-zero so a
	// scrub pass is footprint-neutral on the sparse store.
	s.mem.CompactZeroStorage()
	return faulty
}

// BootScrub performs the boot sequence of §4.2.1: with every page still in
// the upgraded boot state, scrub the memory and relax every fault-free
// page. Faulty pages stay upgraded. Returns the number of pages relaxed.
func (s *Scrubber) BootScrub() int {
	relaxed := 0
	for page := 0; page < s.mem.Pages(); page++ {
		if !s.ScrubPage(page) {
			if err := s.mem.RelaxPage(page); err == nil {
				relaxed++
			}
		}
	}
	s.stats.Scrubs++
	s.mem.CompactZeroStorage()
	return relaxed
}

// CostModel quantifies the scrubber's bandwidth overhead, reproducing the
// §4.2.2 arithmetic.
type CostModel struct {
	// MemoryBytes is the channel capacity being scrubbed.
	MemoryBytes float64
	// ChannelBytesPerSecond is the peak channel bandwidth (a 128-bit wide
	// 667 MT/s channel moves 667e6 * 16 bytes/s).
	ChannelBytesPerSecond float64
	// ScrubIntervalHours is the time between scrubs.
	ScrubIntervalHours float64
}

// PassSeconds is the time for one full read or write pass over memory.
func (m CostModel) PassSeconds() float64 {
	return m.MemoryBytes / m.ChannelBytesPerSecond
}

// ScrubSeconds returns the duration of one scrub under algo: the four-step
// scrubber makes six passes (read, write 0, read, write 1, read, write
// back), the conventional one makes two.
func (m CostModel) ScrubSeconds(algo Algorithm) float64 {
	passes := 2.0
	if algo == FourStep {
		passes = 6.0
	}
	return passes * m.PassSeconds()
}

// BandwidthOverhead returns the fraction of peak bandwidth consumed by
// scrubbing (§4.2.2 computes 0.000167 for 4 GB at 667 MT/s every 4 hours).
func (m CostModel) BandwidthOverhead(algo Algorithm) float64 {
	return m.ScrubSeconds(algo) / (m.ScrubIntervalHours * 3600)
}
