package benchcmp

import (
	"bytes"
	"regexp"
	"strings"
	"testing"
)

func fp(v float64) *float64 { return &v }

func point(name string, ns, allocs float64) Point {
	return Point{Name: name, Iterations: 1000, NsPerOp: fp(ns), BytesPerOp: fp(0), AllocsPerOp: fp(allocs)}
}

func verdictOf(t *testing.T, rep *Report, name string) Row {
	t.Helper()
	for _, row := range rep.Rows {
		if row.Name == name {
			return row
		}
	}
	t.Fatalf("no row for %s", name)
	return Row{}
}

// TestInjectedRegressionFails is the gate's reason to exist: a >15% ns/op
// slowdown injected into an otherwise identical file must fail the
// comparison, and the verdict must say why.
func TestInjectedRegressionFails(t *testing.T) {
	oldPts := []Point{
		point("BenchmarkDecodeScratchClean", 85.75, 0),
		point("BenchmarkDecodeBatchClean", 35.5, 0),
	}
	newPts := []Point{
		point("BenchmarkDecodeScratchClean", 85.75*1.20, 0), // injected +20%
		point("BenchmarkDecodeBatchClean", 35.5, 0),
	}
	rep := Compare(oldPts, newPts, Options{})
	if !rep.Failed() {
		t.Fatal("a +20% ns/op regression passed the 15% gate")
	}
	row := verdictOf(t, rep, "BenchmarkDecodeScratchClean")
	if row.Verdict != Regression {
		t.Fatalf("verdict = %s, want %s", row.Verdict, Regression)
	}
	if !strings.Contains(row.Why, "threshold") {
		t.Fatalf("regression reason %q does not mention the threshold", row.Why)
	}
	if verdictOf(t, rep, "BenchmarkDecodeBatchClean").Verdict != OK {
		t.Fatal("unchanged benchmark did not come back ok")
	}
}

// TestWithinThresholdPasses: noise-level movement in both directions stays
// green.
func TestWithinThresholdPasses(t *testing.T) {
	oldPts := []Point{point("BenchmarkA", 100, 0), point("BenchmarkB", 100, 0)}
	newPts := []Point{point("BenchmarkA", 110, 0), point("BenchmarkB", 92, 0)}
	rep := Compare(oldPts, newPts, Options{})
	if rep.Failed() {
		t.Fatalf("+10%%/-8%% failed the 15%% gate: %+v", rep.Regressions())
	}
}

// TestAllocRegressionFails: a zero-alloc steady-state benchmark that
// starts allocating fails even if its ns/op got faster.
func TestAllocRegressionFails(t *testing.T) {
	oldPts := []Point{point("BenchmarkDecodeBatchClean", 35.5, 0)}
	newPts := []Point{point("BenchmarkDecodeBatchClean", 30.0, 2)}
	rep := Compare(oldPts, newPts, Options{})
	if !rep.Failed() {
		t.Fatal("allocs/op 0 -> 2 passed the gate")
	}
	row := verdictOf(t, rep, "BenchmarkDecodeBatchClean")
	if !strings.Contains(row.Why, "allocs/op") {
		t.Fatalf("reason %q does not mention allocs", row.Why)
	}
	// Already-allocating benchmarks may keep allocating.
	rep = Compare([]Point{point("BenchmarkX", 100, 2)}, []Point{point("BenchmarkX", 100, 3)}, Options{})
	if rep.Failed() {
		t.Fatal("allocs/op 2 -> 3 failed: only the 0 -> nonzero transition gates")
	}
}

// TestExcludePattern: the noisy exhibit regenerators are reported but can
// never fail the gate.
func TestExcludePattern(t *testing.T) {
	oldPts := []Point{point("BenchmarkFig71", 1e9, 0)}
	newPts := []Point{point("BenchmarkFig71", 3e9, 0)}
	rep := Compare(oldPts, newPts, Options{Exclude: regexp.MustCompile(DefaultExcludePattern)})
	if rep.Failed() {
		t.Fatal("excluded benchmark failed the gate")
	}
	if v := verdictOf(t, rep, "BenchmarkFig71").Verdict; v != Excluded {
		t.Fatalf("verdict = %s, want %s", v, Excluded)
	}
}

// TestAddedRemoved: benchmarks present in only one file are informational.
func TestAddedRemoved(t *testing.T) {
	oldPts := []Point{point("BenchmarkOld", 50, 0), point("BenchmarkBoth", 10, 0)}
	newPts := []Point{point("BenchmarkBoth", 10, 0), point("BenchmarkNew", 99, 0)}
	rep := Compare(oldPts, newPts, Options{})
	if rep.Failed() {
		t.Fatal("added/removed benchmarks failed the gate")
	}
	if v := verdictOf(t, rep, "BenchmarkOld").Verdict; v != Removed {
		t.Fatalf("BenchmarkOld verdict = %s, want %s", v, Removed)
	}
	if v := verdictOf(t, rep, "BenchmarkNew").Verdict; v != Added {
		t.Fatalf("BenchmarkNew verdict = %s, want %s", v, Added)
	}
}

// TestCPUSuffixNormalization: the same suite recorded on machines with
// different GOMAXPROCS still lines up.
func TestCPUSuffixNormalization(t *testing.T) {
	oldPts := []Point{point("BenchmarkDecode-8", 100, 0)}
	newPts := []Point{point("BenchmarkDecode-16", 130, 0)}
	rep := Compare(oldPts, newPts, Options{})
	if !rep.Failed() {
		t.Fatal("suffix-differing names did not match up (regression went unseen)")
	}
	if canonical("BenchmarkNoSuffix") != "BenchmarkNoSuffix" {
		t.Fatal("suffix-free name mangled")
	}
	if canonical("BenchmarkSub/case-4") != "BenchmarkSub/case" {
		t.Fatal("subbenchmark suffix not stripped")
	}
}

// TestFasterVerdict: large improvements are labelled, informationally.
func TestFasterVerdict(t *testing.T) {
	rep := Compare([]Point{point("BenchmarkA", 100, 0)}, []Point{point("BenchmarkA", 40, 0)}, Options{})
	if v := verdictOf(t, rep, "BenchmarkA").Verdict; v != Faster {
		t.Fatalf("verdict = %s, want %s", v, Faster)
	}
}

// TestParse covers the bench.sh wire format, including null metrics from
// benchmarks that did not report B/op.
func TestParse(t *testing.T) {
	pts, err := Parse([]byte(`[
  {"name": "BenchmarkA", "iterations": 5, "ns_per_op": 12.5, "bytes_per_op": null, "allocs_per_op": 0}
]`))
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 1 || pts[0].Name != "BenchmarkA" || *pts[0].NsPerOp != 12.5 || pts[0].BytesPerOp != nil {
		t.Fatalf("parsed %+v", pts)
	}
	if _, err := Parse([]byte(`{"not": "an array"}`)); err == nil {
		t.Fatal("non-array JSON parsed")
	}
	if _, err := Parse([]byte(`[{"iterations": 5}]`)); err == nil {
		t.Fatal("nameless entry parsed")
	}
	if _, err := Load("testdata/definitely-missing.json"); err == nil {
		t.Fatal("missing file loaded")
	}
}

// TestCustomThreshold: the CLI's -threshold flag reaches the verdict.
func TestCustomThreshold(t *testing.T) {
	oldPts := []Point{point("BenchmarkA", 100, 0)}
	newPts := []Point{point("BenchmarkA", 108, 0)}
	if rep := Compare(oldPts, newPts, Options{Threshold: 0.05}); !rep.Failed() {
		t.Fatal("+8% passed a 5% threshold")
	}
	if rep := Compare(oldPts, newPts, Options{Threshold: 0.10}); rep.Failed() {
		t.Fatal("+8% failed a 10% threshold")
	}
}

// TestWriteReport pins the human-facing summary line.
func TestWriteReport(t *testing.T) {
	rep := Compare([]Point{point("BenchmarkA", 100, 0)}, []Point{point("BenchmarkA", 150, 0)}, Options{})
	var buf bytes.Buffer
	if err := rep.Write(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "FAIL") || !strings.Contains(out, "REGRESSION") {
		t.Fatalf("report does not flag the failure:\n%s", out)
	}
	rep = Compare([]Point{point("BenchmarkA", 100, 0)}, []Point{point("BenchmarkA", 100, 0)}, Options{})
	buf.Reset()
	if err := rep.Write(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "PASS") {
		t.Fatalf("clean report does not say PASS:\n%s", buf.String())
	}
}
