// Package benchcmp implements the repository's performance-trajectory
// gate: it diffs two of the machine-readable benchmark files emitted by
// scripts/bench.sh (the BENCH_PR<N>.json points checked in per PR) and
// decides whether the newer one regresses the hot path.
//
// A comparison fails when any benchmark present in both files either
//
//   - slows down by more than the ns/op threshold (default 15%), or
//   - starts allocating: allocs/op was zero in the old file and is nonzero
//     in the new one, which means a steady-state path lost its
//     scratch-reuse discipline.
//
// Benchmarks matching the exclude pattern (by default the ^BenchmarkFig
// end-to-end exhibit regenerators, which run a handful of iterations and
// are too noisy to gate on) are reported but never fail the gate, as are
// benchmarks that only one file contains. cmd/arcc-benchcmp is the CLI
// wrapper CI runs on every push.
package benchcmp

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strings"
)

// Point is one benchmark measurement as bench.sh records it. The metric
// fields are pointers because the awk emitter writes JSON null for metrics
// a benchmark line did not report.
type Point struct {
	Name        string   `json:"name"`
	Iterations  int64    `json:"iterations"`
	NsPerOp     *float64 `json:"ns_per_op"`
	BytesPerOp  *float64 `json:"bytes_per_op"`
	AllocsPerOp *float64 `json:"allocs_per_op"`
}

// Parse decodes a bench.sh JSON array.
func Parse(data []byte) ([]Point, error) {
	var pts []Point
	if err := json.Unmarshal(data, &pts); err != nil {
		return nil, fmt.Errorf("benchcmp: %w", err)
	}
	for i, p := range pts {
		if p.Name == "" {
			return nil, fmt.Errorf("benchcmp: entry %d has no name", i)
		}
	}
	return pts, nil
}

// Load reads and parses one bench.sh JSON file.
func Load(path string) ([]Point, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("benchcmp: %w", err)
	}
	pts, err := Parse(data)
	if err != nil {
		return nil, fmt.Errorf("benchcmp: %s: %w", path, err)
	}
	return pts, nil
}

// Verdict classifies one benchmark's comparison.
type Verdict string

const (
	// OK: present in both files, within the threshold, allocation
	// discipline intact.
	OK Verdict = "ok"
	// Faster: improved by more than the threshold (informational).
	Faster Verdict = "faster"
	// Regression: slowed down past the threshold, or went from zero to
	// nonzero allocs/op. Fails the gate.
	Regression Verdict = "REGRESSION"
	// Excluded: matched the exclude pattern; compared but never gating.
	Excluded Verdict = "excluded"
	// Added / Removed: present in only one file (informational — new
	// benchmarks have no baseline, deleted ones no successor).
	Added   Verdict = "added"
	Removed Verdict = "removed"
)

// Row is the comparison of one benchmark name.
type Row struct {
	Name    string
	Old     *Point // nil when Added
	New     *Point // nil when Removed
	Verdict Verdict
	// Delta is the fractional ns/op change (new/old - 1) when both sides
	// report ns/op; NaN-free: zero when either side is missing the metric.
	Delta float64
	// Why explains a Regression verdict.
	Why string
}

// Options tunes the gate.
type Options struct {
	// Threshold is the fractional ns/op slowdown that fails the gate;
	// zero means the 0.15 default.
	Threshold float64
	// Exclude, when non-nil, marks matching benchmark names as
	// non-gating (noisy end-to-end samples).
	Exclude *regexp.Regexp
}

// DefaultThreshold is the ns/op slowdown fraction the gate tolerates.
const DefaultThreshold = 0.15

// DefaultExcludePattern matches the benchmarks the gate reports but never
// fails on: the exhibit regenerators run -benchtime=3x and their ns/op is
// a wall-time sample, not a steady-state measurement.
const DefaultExcludePattern = `^BenchmarkFig`

// Report is the outcome of one comparison.
type Report struct {
	Rows      []Row
	Threshold float64
}

// Failed reports whether any row regressed.
func (r *Report) Failed() bool {
	for _, row := range r.Rows {
		if row.Verdict == Regression {
			return true
		}
	}
	return false
}

// Regressions returns the failing rows.
func (r *Report) Regressions() []Row {
	var out []Row
	for _, row := range r.Rows {
		if row.Verdict == Regression {
			out = append(out, row)
		}
	}
	return out
}

// canonical strips the -<GOMAXPROCS> suffix go test appends to benchmark
// names, so files recorded on machines with different core counts still
// match up.
func canonical(name string) string {
	if i := strings.LastIndex(name, "-"); i > 0 {
		digits := name[i+1:]
		if len(digits) > 0 && strings.Trim(digits, "0123456789") == "" {
			return name[:i]
		}
	}
	return name
}

// Compare diffs two benchmark files, old first. Rows come back sorted by
// benchmark name.
func Compare(oldPts, newPts []Point, opts Options) *Report {
	threshold := opts.Threshold
	if threshold == 0 {
		threshold = DefaultThreshold
	}
	oldBy := make(map[string]*Point, len(oldPts))
	for i := range oldPts {
		oldBy[canonical(oldPts[i].Name)] = &oldPts[i]
	}
	newBy := make(map[string]*Point, len(newPts))
	for i := range newPts {
		newBy[canonical(newPts[i].Name)] = &newPts[i]
	}
	names := make([]string, 0, len(oldBy)+len(newBy))
	for n := range oldBy {
		names = append(names, n)
	}
	for n := range newBy {
		if _, ok := oldBy[n]; !ok {
			names = append(names, n)
		}
	}
	sort.Strings(names)

	rep := &Report{Threshold: threshold}
	for _, name := range names {
		op, np := oldBy[name], newBy[name]
		row := Row{Name: name, Old: op, New: np}
		switch {
		case op == nil:
			row.Verdict = Added
		case np == nil:
			row.Verdict = Removed
		default:
			row.Verdict = OK
			if op.NsPerOp != nil && np.NsPerOp != nil && *op.NsPerOp > 0 {
				row.Delta = *np.NsPerOp / *op.NsPerOp - 1
			}
			excluded := opts.Exclude != nil && opts.Exclude.MatchString(name)
			switch {
			case excluded:
				row.Verdict = Excluded
			case row.Delta > threshold:
				row.Verdict = Regression
				row.Why = fmt.Sprintf("ns/op %.4g -> %.4g (%+.1f%%, threshold %+.0f%%)",
					*op.NsPerOp, *np.NsPerOp, 100*row.Delta, 100*threshold)
			case allocsRegressed(op, np):
				row.Verdict = Regression
				row.Why = fmt.Sprintf("allocs/op 0 -> %g: steady-state path started allocating", *np.AllocsPerOp)
			case row.Delta < -threshold:
				row.Verdict = Faster
			}
		}
		rep.Rows = append(rep.Rows, row)
	}
	return rep
}

func allocsRegressed(op, np *Point) bool {
	return op.AllocsPerOp != nil && np.AllocsPerOp != nil &&
		*op.AllocsPerOp == 0 && *np.AllocsPerOp > 0
}

// Write renders the report as an aligned text table with a one-line
// verdict at the end.
func (r *Report) Write(w io.Writer) error {
	for _, row := range r.Rows {
		line := fmt.Sprintf("%-44s %-10s", row.Name, row.Verdict)
		switch row.Verdict {
		case Added:
			if row.New.NsPerOp != nil {
				line += fmt.Sprintf(" %.4g ns/op", *row.New.NsPerOp)
			}
		case Removed:
			// name alone
		default:
			if row.Old.NsPerOp != nil && row.New.NsPerOp != nil {
				line += fmt.Sprintf(" %10.4g -> %10.4g ns/op (%+.1f%%)",
					*row.Old.NsPerOp, *row.New.NsPerOp, 100*row.Delta)
			}
			if row.Why != "" {
				line += "  [" + row.Why + "]"
			}
		}
		if _, err := fmt.Fprintln(w, line); err != nil {
			return err
		}
	}
	verdict := "PASS"
	if r.Failed() {
		verdict = fmt.Sprintf("FAIL: %d benchmark(s) regressed past %.0f%%", len(r.Regressions()), 100*r.Threshold)
	}
	_, err := fmt.Fprintf(w, "benchcmp: %s\n", verdict)
	return err
}
