package faultfs

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func TestTransparentWithoutRules(t *testing.T) {
	dir := t.TempDir()
	fs := Wrap(OS())
	f, err := fs.Create(filepath.Join(dir, "a"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := fs.Rename(filepath.Join(dir, "a"), filepath.Join(dir, "b")); err != nil {
		t.Fatal(err)
	}
	got, err := fs.ReadFile(filepath.Join(dir, "b"))
	if err != nil || string(got) != "hello" {
		t.Fatalf("read back %q, %v", got, err)
	}
}

func TestInjectedSyncError(t *testing.T) {
	dir := t.TempDir()
	fs := Wrap(OS())
	boom := errors.New("disk on fire")
	fs.AddRule(Rule{Op: OpSync, Err: boom})
	f, err := fs.Create(filepath.Join(dir, "a"))
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); !errors.Is(err, boom) {
		t.Fatalf("sync returned %v, want injected error", err)
	}
	f.Close()
}

func TestAfterAndTimes(t *testing.T) {
	dir := t.TempDir()
	fs := Wrap(OS())
	fs.AddRule(Rule{Op: OpWrite, After: 2, Times: 1})
	f, err := fs.Create(filepath.Join(dir, "a"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	for i, wantErr := range []bool{false, false, true, false, false} {
		_, err := f.Write([]byte("x"))
		if gotErr := err != nil; gotErr != wantErr {
			t.Errorf("write %d: err=%v, want failure=%v", i, err, wantErr)
		}
	}
}

func TestPathFilter(t *testing.T) {
	dir := t.TempDir()
	fs := Wrap(OS())
	fs.AddRule(Rule{Op: OpRename, PathContains: "journal"})
	if err := os.WriteFile(filepath.Join(dir, "a"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := fs.Rename(filepath.Join(dir, "a"), filepath.Join(dir, "results.json")); err != nil {
		t.Fatalf("unmatched rename failed: %v", err)
	}
	if err := fs.Rename(filepath.Join(dir, "results.json"), filepath.Join(dir, "journal.jsonl")); !errors.Is(err, ErrInjected) {
		t.Fatalf("matched rename returned %v, want ErrInjected", err)
	}
}

func TestTornWriteLandsPrefix(t *testing.T) {
	dir := t.TempDir()
	fs := Wrap(OS())
	fs.AddRule(Rule{Op: OpWrite, Partial: 3, Times: 1})
	f, err := fs.Create(filepath.Join(dir, "a"))
	if err != nil {
		t.Fatal(err)
	}
	n, err := f.Write([]byte("hello world"))
	if !errors.Is(err, ErrInjected) || n != 3 {
		t.Fatalf("torn write: n=%d err=%v, want 3 bytes and ErrInjected", n, err)
	}
	f.Close()
	got, err := os.ReadFile(filepath.Join(dir, "a"))
	if err != nil || string(got) != "hel" {
		t.Fatalf("on disk %q, %v; want the torn prefix \"hel\"", got, err)
	}
}

func TestHookObservesOps(t *testing.T) {
	dir := t.TempDir()
	fs := Wrap(OS())
	var ops []Op
	fs.SetHook(func(op Op, path string) { ops = append(ops, op) })
	f, err := fs.Create(filepath.Join(dir, "a"))
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte("x"))
	f.Sync()
	f.Close()
	want := []Op{OpCreate, OpWrite, OpSync, OpClose}
	if len(ops) != len(want) {
		t.Fatalf("hook saw %v, want %v", ops, want)
	}
	for i := range want {
		if ops[i] != want[i] {
			t.Fatalf("hook saw %v, want %v", ops, want)
		}
	}
}
