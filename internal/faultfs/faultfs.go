// Package faultfs is the filesystem seam of the sweep service's durable
// store, plus a fault-injecting wrapper for tests. The server writes its
// journal, result files, and checkpoints through the FS interface; OS()
// is the real thing, and Faulty decorates any FS with programmable
// write/sync/rename failures and torn (partial) writes, so recovery
// paths can be exercised deterministically under the race detector
// instead of hoping a crash lands in the right window.
package faultfs

import (
	"fmt"
	"os"
	"strings"
	"sync"
)

// File is the writable-file surface the store needs: sequential writes,
// a durability barrier, close.
type File interface {
	Write(p []byte) (int, error)
	Sync() error
	Close() error
}

// FS abstracts the handful of filesystem operations the durable store
// performs. Every mutation the store makes goes through here, so a
// Faulty wrapper sees — and can break — each one.
type FS interface {
	MkdirAll(path string, perm os.FileMode) error
	// Create truncates/creates path for writing.
	Create(path string) (File, error)
	// OpenAppend opens path for appending, creating it if absent.
	OpenAppend(path string) (File, error)
	Rename(oldpath, newpath string) error
	Remove(path string) error
	ReadFile(path string) ([]byte, error)
	ReadDir(path string) ([]os.DirEntry, error)
}

// OS returns the real filesystem.
func OS() FS { return osFS{} }

type osFS struct{}

func (osFS) MkdirAll(path string, perm os.FileMode) error { return os.MkdirAll(path, perm) }
func (osFS) Create(path string) (File, error)             { return os.Create(path) }
func (osFS) OpenAppend(path string) (File, error) {
	return os.OpenFile(path, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
}
func (osFS) Rename(oldpath, newpath string) error       { return os.Rename(oldpath, newpath) }
func (osFS) Remove(path string) error                   { return os.Remove(path) }
func (osFS) ReadFile(path string) ([]byte, error)       { return os.ReadFile(path) }
func (osFS) ReadDir(path string) ([]os.DirEntry, error) { return os.ReadDir(path) }

// Op names one FS operation for fault matching.
type Op string

// The operations a Rule can target.
const (
	OpWrite  Op = "write"
	OpSync   Op = "sync"
	OpClose  Op = "close"
	OpCreate Op = "create"
	OpAppend Op = "append"
	OpRename Op = "rename"
	OpRemove Op = "remove"
)

// Rule describes one injected fault: the operation and path it matches,
// when it starts firing, how often, and what failure it produces.
type Rule struct {
	// Op selects the operation ("" matches every operation).
	Op Op
	// PathContains narrows the rule to paths containing the substring
	// ("" matches every path). Write/sync/close match against the path
	// the file was opened with.
	PathContains string
	// After skips the first After matching calls before firing.
	After int
	// Times bounds how often the rule fires (0 = forever once active).
	Times int
	// Partial, for writes, writes only the first Partial bytes before
	// failing — a torn write. Partial 0 fails without writing.
	Partial int
	// Err is the error returned (ErrInjected when nil).
	Err error

	seen  int
	fired int
}

// ErrInjected is the default injected failure.
var ErrInjected = fmt.Errorf("faultfs: injected fault")

// Faulty wraps an FS with programmable fault injection. Zero value is
// unusable; build with Wrap. Safe for concurrent use.
type Faulty struct {
	inner FS

	mu    sync.Mutex
	rules []*Rule
	hook  func(op Op, path string)
}

// Wrap decorates fs with fault injection; with no rules it is
// transparent.
func Wrap(fs FS) *Faulty { return &Faulty{inner: fs} }

// AddRule arms a fault. The rule is matched in arming order; the first
// active match fires.
func (f *Faulty) AddRule(r Rule) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.rules = append(f.rules, &r)
}

// ClearRules disarms every fault.
func (f *Faulty) ClearRules() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.rules = nil
}

// SetHook installs a callback observed before every operation (after
// fault matching), for tests that need to time an action — e.g. starting
// a Shutdown the moment a checkpoint write begins. A nil hook disables
// it.
func (f *Faulty) SetHook(hook func(op Op, path string)) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.hook = hook
}

// check consumes one matching rule activation. It returns the rule's
// error (and for writes the torn-byte count) when a rule fires.
func (f *Faulty) check(op Op, path string) (partial int, err error) {
	f.mu.Lock()
	var hook func(Op, string)
	for _, r := range f.rules {
		if r.Op != "" && r.Op != op {
			continue
		}
		if r.PathContains != "" && !strings.Contains(path, r.PathContains) {
			continue
		}
		r.seen++
		if r.seen <= r.After {
			continue
		}
		if r.Times > 0 && r.fired >= r.Times {
			continue
		}
		r.fired++
		err = r.Err
		if err == nil {
			err = ErrInjected
		}
		partial = r.Partial
		break
	}
	hook = f.hook
	f.mu.Unlock()
	if hook != nil {
		hook(op, path)
	}
	return partial, err
}

func (f *Faulty) MkdirAll(path string, perm os.FileMode) error {
	return f.inner.MkdirAll(path, perm)
}

func (f *Faulty) Create(path string) (File, error) {
	if _, err := f.check(OpCreate, path); err != nil {
		return nil, err
	}
	file, err := f.inner.Create(path)
	if err != nil {
		return nil, err
	}
	return &faultyFile{f: f, path: path, inner: file}, nil
}

func (f *Faulty) OpenAppend(path string) (File, error) {
	if _, err := f.check(OpAppend, path); err != nil {
		return nil, err
	}
	file, err := f.inner.OpenAppend(path)
	if err != nil {
		return nil, err
	}
	return &faultyFile{f: f, path: path, inner: file}, nil
}

func (f *Faulty) Rename(oldpath, newpath string) error {
	if _, err := f.check(OpRename, newpath); err != nil {
		return err
	}
	return f.inner.Rename(oldpath, newpath)
}

func (f *Faulty) Remove(path string) error {
	if _, err := f.check(OpRemove, path); err != nil {
		return err
	}
	return f.inner.Remove(path)
}

func (f *Faulty) ReadFile(path string) ([]byte, error) { return f.inner.ReadFile(path) }

func (f *Faulty) ReadDir(path string) ([]os.DirEntry, error) { return f.inner.ReadDir(path) }

// faultyFile threads write/sync/close faults through to an open file. A
// torn write (Rule.Partial) writes the prefix for real: the bytes land
// on disk, exactly like a crash mid-write.
type faultyFile struct {
	f     *Faulty
	path  string
	inner File
}

func (ff *faultyFile) Write(p []byte) (int, error) {
	partial, err := ff.f.check(OpWrite, ff.path)
	if err != nil {
		n := 0
		if partial > 0 && partial < len(p) {
			n, _ = ff.inner.Write(p[:partial])
		}
		return n, err
	}
	return ff.inner.Write(p)
}

func (ff *faultyFile) Sync() error {
	if _, err := ff.f.check(OpSync, ff.path); err != nil {
		return err
	}
	return ff.inner.Sync()
}

func (ff *faultyFile) Close() error {
	if _, err := ff.f.check(OpClose, ff.path); err != nil {
		ff.inner.Close()
		return err
	}
	return ff.inner.Close()
}
