package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMean(t *testing.T) {
	if Mean([]float64{1, 2, 3}) != 2 {
		t.Fatal("mean wrong")
	}
	if Mean([]float64{5}) != 5 {
		t.Fatal("singleton mean wrong")
	}
}

func TestGeoMean(t *testing.T) {
	if got := GeoMean([]float64{1, 4}); math.Abs(got-2) > 1e-12 {
		t.Fatalf("GeoMean = %v, want 2", got)
	}
	// Geometric mean of ratios is inversion-symmetric.
	xs := []float64{0.5, 2, 1.25, 0.8}
	inv := make([]float64, len(xs))
	for i, x := range xs {
		inv[i] = 1 / x
	}
	if math.Abs(GeoMean(xs)*GeoMean(inv)-1) > 1e-12 {
		t.Fatal("geomean not inversion-symmetric")
	}
}

func TestStdDev(t *testing.T) {
	got := StdDev([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	// Known sample: variance = 32/7.
	want := math.Sqrt(32.0 / 7)
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("StdDev = %v, want %v", got, want)
	}
}

func TestCI95ShrinksWithSamples(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	small := make([]float64, 20)
	large := make([]float64, 2000)
	for i := range large {
		v := rng.NormFloat64()
		if i < len(small) {
			small[i] = v
		}
		large[i] = v
	}
	if CI95(large) >= CI95(small) {
		t.Fatal("more samples must tighten the interval")
	}
}

func TestNormalize(t *testing.T) {
	got := Normalize([]float64{2, 4}, 2)
	if got[0] != 1 || got[1] != 2 {
		t.Fatalf("Normalize = %v", got)
	}
}

func TestMinMax(t *testing.T) {
	lo, hi := MinMax([]float64{3, -1, 7, 2})
	if lo != -1 || hi != 7 {
		t.Fatalf("MinMax = %v, %v", lo, hi)
	}
}

func TestMeanBounds(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			// Exclude magnitudes whose sum could overflow float64.
			if !math.IsNaN(v) && !math.IsInf(v, 0) && math.Abs(v) < 1e300 {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		lo, hi := MinMax(xs)
		m := Mean(xs)
		return m >= lo-1e-9 && m <= hi+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"mean empty":     func() { Mean(nil) },
		"geomean empty":  func() { GeoMean(nil) },
		"geomean nonpos": func() { GeoMean([]float64{1, 0}) },
		"stddev empty":   func() { StdDev(nil) },
		"norm zero":      func() { Normalize([]float64{1}, 0) },
		"minmax empty":   func() { MinMax(nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			f()
		}()
	}
}
