package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

func TestWelfordMatchesBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	xs := make([]float64, 500)
	var w Welford
	for i := range xs {
		xs[i] = rng.NormFloat64()*3 + 10
		w.Add(xs[i])
	}
	if got, want := w.Mean, Mean(xs); math.Abs(got-want) > 1e-12 {
		t.Fatalf("Welford mean %v, batch %v", got, want)
	}
	if got, want := w.StdDev(), StdDev(xs); math.Abs(got-want) > 1e-12 {
		t.Fatalf("Welford stddev %v, batch %v", got, want)
	}
	if got, want := w.CI95(), CI95(xs); math.Abs(got-want) > 1e-12 {
		t.Fatalf("Welford CI95 %v, batch %v", got, want)
	}
}

func TestWelfordMerge(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	var all []float64
	var merged Welford
	// Merge several chunks of uneven sizes, including empty ones.
	for _, n := range []int{0, 17, 1, 0, 400, 3} {
		var part Welford
		for i := 0; i < n; i++ {
			x := rng.ExpFloat64()
			part.Add(x)
			all = append(all, x)
		}
		merged.Merge(part)
	}
	if merged.Count != int64(len(all)) {
		t.Fatalf("merged count %d, want %d", merged.Count, len(all))
	}
	if got, want := merged.Mean, Mean(all); math.Abs(got-want) > 1e-12 {
		t.Fatalf("merged mean %v, batch %v", got, want)
	}
	if got, want := merged.Variance(), StdDev(all)*StdDev(all); math.Abs(got-want) > 1e-9 {
		t.Fatalf("merged variance %v, batch %v", got, want)
	}
}

func TestWelfordSmallCounts(t *testing.T) {
	var w Welford
	if w.Variance() != 0 || w.CI95() != 0 {
		t.Fatal("empty Welford should report zero spread")
	}
	w.Add(5)
	if w.Mean != 5 || w.Variance() != 0 || w.CI95() != 0 {
		t.Fatal("single-sample Welford should report its value and zero spread")
	}
}

func TestWeightedAllOnesMatchesPlainSums(t *testing.T) {
	// With unit weights the weighted estimator must reproduce the legacy
	// sum-and-divide accumulator bit for bit: same additions, same order.
	rng := rand.New(rand.NewSource(9))
	var e Weighted
	var sum float64
	n := 1000
	for i := 0; i < n; i++ {
		x := rng.Float64()
		e.Add(x, 1)
		sum += x
	}
	if got, want := e.Mean(), sum/float64(n); math.Float64bits(got) != math.Float64bits(want) {
		t.Fatalf("weighted mean %v not bit-identical to plain mean %v", got, want)
	}
	if e.ESS() != float64(n) {
		t.Fatalf("unit-weight ESS %v, want %d", e.ESS(), n)
	}
}

func TestWeightedImportanceUnbiased(t *testing.T) {
	// Estimate E[X] for X ~ Exp(1) (mean 1) by sampling Exp(1/2) (mean 2)
	// and weighting with the likelihood ratio; the weighted estimate must
	// land near 1 with a truthful confidence interval.
	rng := rand.New(rand.NewSource(10))
	var e Weighted
	for i := 0; i < 200_000; i++ {
		x := rng.ExpFloat64() * 2 // density q(x) = 0.5 e^{-x/2}
		w := math.Exp(-x) / (0.5 * math.Exp(-x/2))
		e.Add(x, w)
	}
	if math.Abs(e.Mean()-1) > 3*e.CI95() {
		t.Fatalf("IS mean %v ± %v not consistent with 1", e.Mean(), e.CI95())
	}
	if ess := e.ESS(); ess <= 0 || ess >= float64(e.N()) {
		t.Fatalf("uneven weights should give 0 < ESS < N, got %v of %d", ess, e.N())
	}
}

func TestWeightedMerge(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var whole, a, b Weighted
	for i := 0; i < 1000; i++ {
		x, w := rng.NormFloat64(), rng.Float64()
		if i < 400 {
			a.Add(x, w)
		} else {
			b.Add(x, w)
		}
		whole.Add(x, w)
	}
	sumBefore := a.SumWX + b.SumWX
	a.Merge(b)
	// The merge is exactly one addition of the partial sums; against a
	// fully serial accumulation only float tolerance holds (addition is
	// not associative — which is why the engine fixes the merge order).
	if math.Float64bits(a.SumWX) != math.Float64bits(sumBefore) {
		t.Fatal("merged SumWX is not the sum of the partial sums")
	}
	if math.Abs(a.SumWX-whole.SumWX) > 1e-9 {
		t.Fatalf("merged SumWX %v far from serial %v", a.SumWX, whole.SumWX)
	}
	if math.Abs(a.CI95()-whole.CI95()) > 1e-12 {
		t.Fatalf("merged CI95 %v, serial %v", a.CI95(), whole.CI95())
	}
	if a.N() != whole.N() {
		t.Fatalf("merged N %d, want %d", a.N(), whole.N())
	}
}

func TestWeightedEmptyPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"Mean":           func() { (Weighted{}).Mean() },
		"NormalizedMean": func() { (Weighted{}).NormalizedMean() },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s of empty estimator should panic", name)
				}
			}()
			f()
		}()
	}
}

// adversarialDistributions are sample generators chosen to stress the
// sketch's deterministic compaction: sorted ramps (every compaction
// discards from the same side of the ordering), constants (massive ties),
// two-point masses, heavy tails, and a sawtooth that alternates extremes.
func adversarialDistributions(rng *rand.Rand) map[string]func(i int) float64 {
	return map[string]func(i int) float64{
		"ascending":  func(i int) float64 { return float64(i) },
		"descending": func(i int) float64 { return -float64(i) },
		"constant":   func(i int) float64 { return 42 },
		"two-point":  func(i int) float64 { return float64(i & 1) },
		"uniform":    func(i int) float64 { return rng.Float64() },
		"lognormal":  func(i int) float64 { return math.Exp(3 * rng.NormFloat64()) },
		"sawtooth":   func(i int) float64 { return float64(i%97) * math.Pow(-1, float64(i%2)) },
	}
}

// exactQuantile returns the same order statistic the sketch targets on the
// full sorted sample: the smallest value whose rank reaches q*n.
func exactQuantile(sorted []float64, q float64) float64 {
	target := q * float64(len(sorted))
	idx := int(math.Ceil(target)) - 1
	if idx < 0 {
		idx = 0
	}
	return sorted[idx]
}

// rankErr returns how far the target rank q*n falls outside the rank
// interval the value v occupies in sorted. A value with ties occupies a
// whole interval of ranks [countBelow, countAtOrBelow]; any target inside
// it is exact.
func rankErr(sorted []float64, v, q float64) float64 {
	lo := float64(sort.SearchFloat64s(sorted, v))
	hi := float64(sort.SearchFloat64s(sorted, math.Nextafter(v, math.Inf(1))))
	target := q * float64(len(sorted))
	switch {
	case target < lo:
		return lo - target
	case target > hi:
		return target - hi
	}
	return 0
}

func TestQuantileSketchVsExact(t *testing.T) {
	const n = 50_000
	rng := rand.New(rand.NewSource(12))
	for name, gen := range adversarialDistributions(rng) {
		t.Run(name, func(t *testing.T) {
			s := NewQuantileSketch(0)
			xs := make([]float64, n)
			for i := range xs {
				xs[i] = gen(i)
				s.Add(xs[i])
			}
			sort.Float64s(xs)
			for _, q := range []float64{0, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1} {
				est := s.Quantile(q)
				// Judge in rank space: the estimate's rank interval must
				// come within 2% of the requested rank. Value-space
				// comparison would be meaningless for heavy tails, and
				// plain ranks for ties.
				if err := rankErr(xs, est, q); err > 0.02*n {
					t.Fatalf("q=%v: estimate %v has rank error %.0f of n=%d", q, est, err, n)
				}
			}
		})
	}
}

func TestQuantileSketchPropertyRandomMerges(t *testing.T) {
	// Property: however a sample is split into chunks and merged, the
	// sketch's quantiles stay within rank tolerance of the exact ones.
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 20; trial++ {
		n := 1000 + rng.Intn(20_000)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64()
		}
		whole := NewQuantileSketch(128)
		i := 0
		for i < n {
			chunk := 1 + rng.Intn(n-i)
			part := NewQuantileSketch(128)
			for j := i; j < i+chunk; j++ {
				part.Add(xs[j])
			}
			whole.Merge(part)
			i += chunk
		}
		if whole.N != int64(n) {
			t.Fatalf("trial %d: merged N %d, want %d", trial, whole.N, n)
		}
		sorted := append([]float64(nil), xs...)
		sort.Float64s(sorted)
		for _, q := range []float64{0.1, 0.5, 0.9, 0.99} {
			if err := rankErr(sorted, whole.Quantile(q), q); err > 0.04*float64(n)+3 {
				t.Fatalf("trial %d q=%v: rank error %.0f of n=%d", trial, q, err, n)
			}
		}
	}
}

func TestQuantileSketchDeterministicMerge(t *testing.T) {
	// Two identical add/merge sequences must produce bit-identical
	// sketches — the determinism the engine's shard-ordered fold relies on.
	build := func() *QuantileSketch {
		rng := rand.New(rand.NewSource(14))
		s := NewQuantileSketch(64)
		for c := 0; c < 10; c++ {
			part := NewQuantileSketch(64)
			for i := 0; i < 5000; i++ {
				part.Add(rng.NormFloat64())
			}
			s.Merge(part)
		}
		return s
	}
	a, b := build(), build()
	if a.N != b.N || len(a.Levels) != len(b.Levels) {
		t.Fatal("sketch shapes diverged")
	}
	for lvl := range a.Levels {
		if len(a.Levels[lvl]) != len(b.Levels[lvl]) {
			t.Fatalf("level %d lengths diverged", lvl)
		}
		for i := range a.Levels[lvl] {
			if math.Float64bits(a.Levels[lvl][i]) != math.Float64bits(b.Levels[lvl][i]) {
				t.Fatalf("level %d item %d diverged", lvl, i)
			}
		}
	}
	for _, q := range []float64{0.25, 0.5, 0.99} {
		if math.Float64bits(a.Quantile(q)) != math.Float64bits(b.Quantile(q)) {
			t.Fatalf("quantile %v diverged", q)
		}
	}
}

func TestQuantileSketchBoundedMemory(t *testing.T) {
	s := NewQuantileSketch(64)
	for i := 0; i < 1_000_000; i++ {
		s.Add(float64(i % 1009))
	}
	if got := s.size(); got > 64*len(s.Levels) {
		t.Fatalf("sketch retains %d items across %d levels (cap %d each)", got, len(s.Levels), 64)
	}
	if len(s.Levels) > 24 {
		t.Fatalf("level count %d not logarithmic", len(s.Levels))
	}
}

func TestQuantileSketchEdgeCases(t *testing.T) {
	s := NewQuantileSketch(0)
	if s.K != DefaultSketchK {
		t.Fatalf("zero capacity should default to %d, got %d", DefaultSketchK, s.K)
	}
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Fatalf("%s should panic", name)
			}
		}()
		f()
	}
	mustPanic("empty quantile", func() { s.Quantile(0.5) })
	mustPanic("NaN add", func() { s.Add(math.NaN()) })
	s.Add(1)
	mustPanic("q out of range", func() { s.Quantile(1.5) })
	mustPanic("mismatched K merge", func() { s.Merge(NewQuantileSketch(64)) })
	if got := s.Quantile(0.5); got != 1 {
		t.Fatalf("single-item quantile = %v, want 1", got)
	}
}

func TestStdDevCI95SingleSample(t *testing.T) {
	// A single sample has no spread: zero, not a panic (the RunReplicated
	// runs==1 contract).
	if got := StdDev([]float64{3.5}); got != 0 {
		t.Fatalf("StdDev singleton = %v, want 0", got)
	}
	if got := CI95([]float64{3.5}); got != 0 {
		t.Fatalf("CI95 singleton = %v, want 0", got)
	}
	for name, f := range map[string]func(){
		"StdDev": func() { StdDev(nil) },
		"CI95":   func() { CI95(nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s of empty slice should panic", name)
				}
			}()
			f()
		}()
	}
}

func BenchmarkWelfordAdd(b *testing.B) {
	var w Welford
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		w.Add(float64(i & 1023))
	}
	sinkFloat = w.Mean
}

func BenchmarkWeightedAdd(b *testing.B) {
	var e Weighted
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.Add(float64(i&1023), 0.5)
	}
	sinkFloat = e.SumWX
}

func BenchmarkQuantileSketchAdd(b *testing.B) {
	s := NewQuantileSketch(0)
	rng := rand.New(rand.NewSource(1))
	xs := make([]float64, 4096)
	for i := range xs {
		xs[i] = rng.NormFloat64()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Add(xs[i&4095])
	}
	sinkFloat = float64(s.N)
}

func BenchmarkQuantileSketchQuantile(b *testing.B) {
	s := NewQuantileSketch(0)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 100_000; i++ {
		s.Add(rng.NormFloat64())
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sinkFloat = s.Quantile(0.99)
	}
}

var sinkFloat float64
