package stats

import (
	"fmt"
	"math"
	"sort"
)

// Streaming estimators: the batch helpers in stats.go need the whole
// sample in memory, which fleet-scale Monte Carlo sweeps cannot afford.
// The types in this file accumulate one observation at a time in O(1)
// (or bounded) memory and merge across shards, so the engine's
// shard-ordered fold (see mc.Accumulator) produces results that are
// bit-identical at any parallelism.

// Welford is an online mean/variance accumulator using Welford's
// algorithm; Merge combines two accumulators with Chan et al.'s
// pairwise update. The zero value is an empty accumulator ready for use.
//
// Fields are exported so snapshots gob-encode (the Monte Carlo engine
// checkpoints shard accumulators); treat them as read-only outside
// Add/Merge. Note that a merged accumulator is bit-identical across runs
// that merge in the same order, but not bit-identical to feeding every
// observation through a single Add loop — the engine's fixed shard-order
// merge is what makes results reproducible.
type Welford struct {
	// Count is the number of observations.
	Count int64
	// Mean is the running mean.
	Mean float64
	// M2 is the running sum of squared deviations from the mean.
	M2 float64
}

// Add folds one observation into the accumulator.
func (w *Welford) Add(x float64) {
	w.Count++
	d := x - w.Mean
	w.Mean += d / float64(w.Count)
	w.M2 += d * (x - w.Mean)
}

// Merge folds another accumulator into the receiver. The result depends
// on the merge order (float addition is not associative), so callers that
// need reproducibility must merge in a deterministic order — the Monte
// Carlo engine always merges shard accumulators in shard-index order.
func (w *Welford) Merge(o Welford) {
	if o.Count == 0 {
		return
	}
	if w.Count == 0 {
		*w = o
		return
	}
	n1, n2 := float64(w.Count), float64(o.Count)
	n := n1 + n2
	d := o.Mean - w.Mean
	w.Mean += d * n2 / n
	w.M2 += o.M2 + d*d*n1*n2/n
	w.Count += o.Count
}

// Variance returns the sample variance (n-1 denominator); zero below two
// observations (one sample carries no spread information).
func (w Welford) Variance() float64 {
	if w.Count < 2 {
		return 0
	}
	return w.M2 / float64(w.Count-1)
}

// StdDev returns the sample standard deviation; zero below two samples.
func (w Welford) StdDev() float64 { return math.Sqrt(w.Variance()) }

// CI95 returns the half-width of the 95% confidence interval of the mean
// under the normal approximation; zero below two samples.
func (w Welford) CI95() float64 {
	if w.Count < 2 {
		return 0
	}
	return 1.96 * w.StdDev() / math.Sqrt(float64(w.Count))
}

// Weighted estimates E[f(X)] from weighted trials (x_i, w_i) where w_i is
// the importance-sampling likelihood ratio of trial i against the target
// distribution (w == 1 for plain sampling). The unbiased estimate is the
// plain mean of y_i = w_i*x_i; its confidence interval comes from a
// Welford accumulator over the y_i, and the effective sample size from
// the weight moments. The zero value is an empty estimator ready for use.
//
// SumWX is kept as a plain running sum — not Welford's recurrence — so
// that with all weights 1 the Mean path performs exactly the additions a
// legacy sum-and-divide accumulator performs: merged in the same shard
// order, the weighted path reproduces unweighted results bit for bit.
type Weighted struct {
	// SumWX is the running sum of w*x.
	SumWX float64
	// SumW and SumW2 are the running sums of w and w².
	SumW, SumW2 float64
	// Y accumulates y = w*x for the variance of the estimate.
	Y Welford
}

// Add folds one weighted observation into the estimator.
func (e *Weighted) Add(x, w float64) {
	y := w * x
	e.SumWX += y
	e.SumW += w
	e.SumW2 += w * w
	e.Y.Add(y)
}

// Merge folds another estimator into the receiver; like Welford.Merge the
// result depends on the merge order.
func (e *Weighted) Merge(o Weighted) {
	e.SumWX += o.SumWX
	e.SumW += o.SumW
	e.SumW2 += o.SumW2
	e.Y.Merge(o.Y)
}

// N returns the number of trials folded in.
func (e Weighted) N() int64 { return e.Y.Count }

// Mean returns the unbiased importance-sampling estimate of E[f(X)]: the
// plain mean of w*x. It panics on an empty estimator, mirroring Mean.
func (e Weighted) Mean() float64 {
	if e.Y.Count == 0 {
		panic("stats: mean of empty weighted estimator")
	}
	return e.SumWX / float64(e.Y.Count)
}

// NormalizedMean returns the self-normalized estimate Σwx/Σw — the
// conventional weighted mean, which estimates E[f(X)] only up to the
// normalization of the weights. It panics when no weight has been seen.
func (e Weighted) NormalizedMean() float64 {
	if e.SumW == 0 {
		panic("stats: normalized mean with zero total weight")
	}
	return e.SumWX / e.SumW
}

// CI95 returns the half-width of the 95% confidence interval of Mean;
// zero below two trials.
func (e Weighted) CI95() float64 { return e.Y.CI95() }

// ESS returns Kish's effective sample size (Σw)²/Σw² — how many plain
// trials the weighted sample is worth. Zero for an empty estimator; equal
// to N when all weights are equal.
func (e Weighted) ESS() float64 {
	if e.SumW2 == 0 {
		return 0
	}
	return e.SumW * e.SumW / e.SumW2
}

// DefaultSketchK is the per-level capacity NewQuantileSketch interprets a
// zero k as: rank error around a few tenths of a percent at 10⁵
// observations, in ~2 KB per level.
const DefaultSketchK = 256

// QuantileSketch is a bounded-memory, mergeable quantile estimator: a
// deterministic multi-level compacting buffer (a simplified KLL sketch).
// Observations land in level 0; when a level fills to K items it is
// sorted and every second item (deterministically, the odd ranks) is
// promoted to the next level with doubled weight. Memory is O(K·log(n/K)).
//
// Both compaction and Merge are deterministic — no randomized offsets —
// so two runs that add the same items in the same order and merge in the
// same order produce bit-identical sketches, preserving the Monte Carlo
// engine's bit-identical-at-any-parallelism contract. The price is a
// small deterministic rank bias (≤ one rank per compaction per level)
// on top of the usual sketch error; the property tests bound the total
// error empirically.
//
// Fields are exported for gob checkpointing; treat them as read-only.
// NaN observations are rejected (they have no rank).
type QuantileSketch struct {
	// K is the per-level capacity.
	K int
	// N is the number of observations added (and, by construction, the
	// total weight the sketch carries).
	N int64
	// Levels[i] holds items of weight 2^i, unordered between compactions.
	Levels [][]float64
}

// NewQuantileSketch returns an empty sketch with per-level capacity k
// (0 = DefaultSketchK; otherwise k must be at least 4 and is rounded up
// to even so compactions halve exactly).
func NewQuantileSketch(k int) *QuantileSketch {
	if k == 0 {
		k = DefaultSketchK
	}
	if k < 4 {
		panic(fmt.Sprintf("stats: quantile sketch capacity %d below minimum 4", k))
	}
	k += k & 1
	return &QuantileSketch{K: k}
}

// Add folds one observation into the sketch.
func (s *QuantileSketch) Add(x float64) {
	if math.IsNaN(x) {
		panic("stats: NaN has no quantile rank")
	}
	if len(s.Levels) == 0 {
		s.Levels = append(s.Levels, make([]float64, 0, s.K))
	}
	s.Levels[0] = append(s.Levels[0], x)
	s.N++
	if len(s.Levels[0]) >= s.K {
		s.compact(0)
	}
}

// compact halves level i into level i+1, cascading while levels overflow.
// An odd item count leaves the largest item in place so the sketch's
// total weight stays exactly N.
func (s *QuantileSketch) compact(i int) {
	for ; i < len(s.Levels) && len(s.Levels[i]) >= s.K; i++ {
		if i+1 == len(s.Levels) {
			s.Levels = append(s.Levels, make([]float64, 0, s.K))
		}
		lvl := s.Levels[i]
		sort.Float64s(lvl)
		m := len(lvl) &^ 1
		for j := 1; j < m; j += 2 {
			s.Levels[i+1] = append(s.Levels[i+1], lvl[j])
		}
		if m < len(lvl) {
			lvl[0] = lvl[m] // the odd item out stays at this level
			s.Levels[i] = lvl[:1]
		} else {
			s.Levels[i] = lvl[:0]
		}
	}
}

// Merge folds another sketch into the receiver. The two sketches must
// share the same K (merging different resolutions would silently degrade
// accuracy); the result depends on the merge order like every streaming
// merge here, and the argument is not modified.
func (s *QuantileSketch) Merge(o *QuantileSketch) {
	if o == nil {
		return
	}
	if s.K != o.K {
		panic(fmt.Sprintf("stats: merging quantile sketches of capacity %d and %d", s.K, o.K))
	}
	if o.N == 0 {
		return
	}
	for lvl, items := range o.Levels {
		for len(s.Levels) <= lvl {
			s.Levels = append(s.Levels, make([]float64, 0, s.K))
		}
		s.Levels[lvl] = append(s.Levels[lvl], items...)
	}
	s.N += o.N
	for i := 0; i < len(s.Levels); i++ {
		if len(s.Levels[i]) >= s.K {
			s.compact(i)
		}
	}
}

// Quantile returns an approximation of the q-quantile (q in [0, 1]; 0 is
// the minimum, 1 the maximum). It panics on an empty sketch or a q
// outside [0, 1].
func (s *QuantileSketch) Quantile(q float64) float64 {
	if s.N == 0 {
		panic("stats: quantile of empty sketch")
	}
	if q < 0 || q > 1 || math.IsNaN(q) {
		panic(fmt.Sprintf("stats: quantile %v outside [0, 1]", q))
	}
	type wv struct {
		v float64
		w int64
	}
	items := make([]wv, 0, s.size())
	for lvl, vals := range s.Levels {
		w := int64(1) << lvl
		for _, v := range vals {
			items = append(items, wv{v, w})
		}
	}
	sort.Slice(items, func(i, j int) bool { return items[i].v < items[j].v })
	target := q * float64(s.N)
	var cum int64
	for _, it := range items {
		cum += it.w
		if float64(cum) >= target {
			return it.v
		}
	}
	return items[len(items)-1].v
}

// size returns the number of retained items across all levels.
func (s *QuantileSketch) size() int {
	n := 0
	for _, lvl := range s.Levels {
		n += len(lvl)
	}
	return n
}
