// Package stats provides the small statistical helpers the experiment
// harness uses: means, standard deviations, normal-approximation confidence
// intervals, and normalisation.
package stats

import (
	"fmt"
	"math"
)

// Mean returns the arithmetic mean of xs. It panics on empty input:
// averaging nothing is a harness bug, not a data condition.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: mean of empty slice")
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// GeoMean returns the geometric mean of xs, which must all be positive.
// Performance ratios are conventionally aggregated geometrically.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: geometric mean of empty slice")
	}
	var sum float64
	for _, x := range xs {
		if x <= 0 {
			panic(fmt.Sprintf("stats: geometric mean of non-positive value %v", x))
		}
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs)))
}

// StdDev returns the sample standard deviation (n-1 denominator). A
// single sample carries no spread information, so its deviation is zero —
// the same contract sim.RunReplicated gives a single replica. Only an
// empty slice is a harness bug and panics.
func StdDev(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: standard deviation of empty slice")
	}
	if len(xs) == 1 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs)-1))
}

// CI95 returns the half-width of the 95% confidence interval of the mean
// under the normal approximation (1.96 * stderr). Like StdDev it reports
// a zero half-width for a single sample and panics only on empty input.
func CI95(xs []float64) float64 {
	return 1.96 * StdDev(xs) / math.Sqrt(float64(len(xs)))
}

// Normalize returns xs scaled by 1/base. It panics on a zero base.
func Normalize(xs []float64, base float64) []float64 {
	if base == 0 {
		panic("stats: normalise by zero")
	}
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = x / base
	}
	return out
}

// MinMax returns the smallest and largest values in xs.
func MinMax(xs []float64) (lo, hi float64) {
	if len(xs) == 0 {
		panic("stats: min/max of empty slice")
	}
	lo, hi = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return lo, hi
}
