package exhibit

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
)

// encodedReport is the durable form of a Report. Data is stored as the
// compact JSON of the typed result struct: json.Encoder re-indents a
// RawMessage exactly as it would the original value (same field order,
// same escaping, shortest-round-trip floats), so a decoded report's JSON
// rendering is byte-identical to the live one's. Text is captured by
// running the closure once at encode time.
type encodedReport struct {
	Exhibit string          `json:"exhibit"`
	Title   string          `json:"title"`
	Meta    Meta            `json:"meta"`
	Data    json.RawMessage `json:"data"`
	Tables  []Table         `json:"tables,omitempty"`
	Text    *string         `json:"text,omitempty"`
}

// EncodeReport serializes a report for persistence (the sweep service's
// crash-safe result store). DecodeReport inverts it; the decoded report
// renders byte-identically to the original in every format.
func EncodeReport(r *Report) ([]byte, error) {
	data, err := json.Marshal(r.Data)
	if err != nil {
		return nil, fmt.Errorf("exhibit: encode %q data: %w", r.Exhibit, err)
	}
	enc := encodedReport{Exhibit: r.Exhibit, Title: r.Title, Meta: r.Meta, Data: data, Tables: r.Tables}
	if r.Text != nil {
		var buf bytes.Buffer
		r.Text(&buf)
		s := buf.String()
		enc.Text = &s
	}
	return json.Marshal(enc)
}

// DecodeReport reconstructs a report persisted by EncodeReport. Its Data
// is a json.RawMessage rather than the original typed struct, which the
// renderers cannot tell apart.
func DecodeReport(b []byte) (*Report, error) {
	var enc encodedReport
	if err := json.Unmarshal(b, &enc); err != nil {
		return nil, fmt.Errorf("exhibit: decode report: %w", err)
	}
	r := &Report{Exhibit: enc.Exhibit, Title: enc.Title, Meta: enc.Meta, Data: enc.Data, Tables: enc.Tables}
	if enc.Text != nil {
		text := *enc.Text
		r.Text = func(w io.Writer) { io.WriteString(w, text) }
	}
	return r, nil
}
