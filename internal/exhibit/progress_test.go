package exhibit

import "testing"

func TestTrackerSnapshotAndCumulative(t *testing.T) {
	var tr Tracker
	if d, total := tr.Snapshot(); d != 0 || total != 0 {
		t.Fatalf("fresh tracker snapshot %d/%d", d, total)
	}
	// Engine job 1: 100 trials in two ticks.
	tr.Update(50, 100)
	tr.Update(100, 100)
	if d, total := tr.Snapshot(); d != 100 || total != 100 {
		t.Fatalf("snapshot %d/%d, want 100/100", d, total)
	}
	if c := tr.CumulativeDone(); c != 100 {
		t.Fatalf("cumulative %d, want 100", c)
	}
	// Job 2 with the same total: done falls back, cumulative keeps rising.
	tr.Update(30, 100)
	if d, total := tr.Snapshot(); d != 30 || total != 100 {
		t.Fatalf("snapshot %d/%d, want 30/100", d, total)
	}
	if c := tr.CumulativeDone(); c != 130 {
		t.Fatalf("cumulative %d, want 130", c)
	}
	// Job 3 with a new total resets the per-job baseline even though done
	// jumped upward.
	tr.Update(640, 1000)
	if c := tr.CumulativeDone(); c != 770 {
		t.Fatalf("cumulative %d, want 770", c)
	}
}

// Two consecutive engine jobs with the same total, where the second
// completes in a single tick equal to the first job's final count, are
// indistinguishable by count heuristics alone. The engine's explicit
// Update(0, total) job-start signal is what marks the boundary; without
// it the second job would add zero to the cumulative count.
func TestTrackerCountsSameSizedBackToBackJobs(t *testing.T) {
	var tr Tracker
	// Job 1: the engine opens with (0, total), then one tick to done.
	tr.Update(0, 100)
	tr.Update(100, 100)
	// Job 2: same total, single tick equal to job 1's final done.
	tr.Update(0, 100)
	tr.Update(100, 100)
	if c := tr.CumulativeDone(); c != 200 {
		t.Fatalf("cumulative %d after two 100-trial jobs, want 200", c)
	}
	if d, total := tr.Snapshot(); d != 100 || total != 100 {
		t.Fatalf("snapshot %d/%d, want 100/100", d, total)
	}
}

func TestTrackerIsAProgress(t *testing.T) {
	var tr Tracker
	var p Progress = &tr
	p.Update(7, 10)
	if d, total := tr.Snapshot(); d != 7 || total != 10 {
		t.Fatalf("snapshot %d/%d", d, total)
	}
}
