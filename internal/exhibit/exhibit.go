// Package exhibit defines the unified experiment surface of the ARCC
// reproduction: every table, figure, and ablation the repository can
// regenerate is an Exhibit — a named, self-describing entry point that
// runs under a context with a shared Config and returns a structured
// Report renderable as text (byte-identical to the golden files), JSON,
// or CSV.
//
// Exhibits register themselves in a process-wide registry (Register,
// typically from an init function of the package that implements them);
// callers discover them with Lookup/All and run them with
// Exhibit.Run(ctx, cfg). The cmd/arcc-experiments binary, the root
// benchmark suite, the golden tests, and the examples all drive
// experiments exclusively through this interface.
//
// The package also defines the declarative Scenario layer: a JSON-loadable
// description of a sweep (fault mix, workload mix, ECC upgrade factor,
// upgraded fraction, trial count) that internal/experiments turns into a
// runnable Exhibit, so users can run studies the paper never shipped
// without writing Go.
package exhibit

import (
	"context"
	"fmt"
	"sort"
	"sync"
)

// Exhibit is one runnable experiment: a table, figure, ablation, or
// user-defined scenario.
type Exhibit struct {
	// Name is the canonical registry key ("t7.1", "f3.1", "ablation-llc").
	Name string
	// Title is the human heading, e.g. "Figure 3.1: Faulty Memory vs. Time".
	Title string
	// Describe is a one-line summary shown by listings.
	Describe string
	// Run computes the exhibit under ctx. It honours cancellation — a
	// cancelled context returns an error wrapping mc.ErrCanceled within
	// one Monte Carlo shard (or one simulator run) of the cancel — and
	// reports progress through cfg.Progress when set.
	Run func(ctx context.Context, cfg Config) (*Report, error)
}

var (
	regMu    sync.RWMutex
	registry = map[string]Exhibit{}
	order    []string
)

// Register adds e to the process-wide registry. It panics on an empty
// name, a nil Run, or a duplicate registration — all programmer errors in
// an init-time wiring.
func Register(e Exhibit) {
	if e.Name == "" || e.Run == nil {
		panic(fmt.Sprintf("exhibit: invalid registration (name=%q, run nil=%v): need Name and Run", e.Name, e.Run == nil))
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[e.Name]; dup {
		panic(fmt.Sprintf("exhibit: duplicate registration of %q", e.Name))
	}
	registry[e.Name] = e
	order = append(order, e.Name)
}

// Lookup returns the exhibit registered under name.
func Lookup(name string) (Exhibit, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	e, ok := registry[name]
	return e, ok
}

// All returns every registered exhibit in registration order — the order
// the paper presents them in, since internal/experiments registers them
// that way.
func All() []Exhibit {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]Exhibit, 0, len(order))
	for _, name := range order {
		out = append(out, registry[name])
	}
	return out
}

// Names returns the sorted names of all registered exhibits, for usage
// errors and listings.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	out := append([]string(nil), order...)
	sort.Strings(out)
	return out
}
