package exhibit

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
)

// Renderer serializes a report to one output format.
type Renderer interface {
	Render(w io.Writer, r *Report) error
}

// Formats lists the renderer names RendererFor accepts.
func Formats() []string { return []string{"text", "json", "csv"} }

// RendererFor maps a format name (text, json, csv) to its renderer.
func RendererFor(format string) (Renderer, error) {
	switch format {
	case "text":
		return TextRenderer{}, nil
	case "json":
		return JSONRenderer{}, nil
	case "csv":
		return CSVRenderer{}, nil
	}
	return nil, fmt.Errorf("exhibit: unknown format %q (have text, json, csv)", format)
}

// TextRenderer writes the exhibit's legacy human rendering — byte-identical
// to the testdata golden files.
type TextRenderer struct{}

// Render implements Renderer.
func (TextRenderer) Render(w io.Writer, r *Report) error {
	if r.Text == nil {
		return fmt.Errorf("exhibit: report %q has no text rendering", r.Exhibit)
	}
	r.Text(w)
	return nil
}

// JSONRenderer writes the report as one indented JSON object whose "data"
// field is the exhibit's typed rows.
type JSONRenderer struct{}

// Render implements Renderer.
func (JSONRenderer) Render(w io.Writer, r *Report) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// CSVRenderer writes the report's flat tables. Each table is emitted as a
// header block — one record naming the exhibit and table, one record of
// column headers — followed by the data rows, with a blank line between
// tables so one stream can carry a whole run.
type CSVRenderer struct{}

// Render implements Renderer.
func (CSVRenderer) Render(w io.Writer, r *Report) error {
	if len(r.Tables) == 0 {
		return fmt.Errorf("exhibit: report %q has no tabular projection", r.Exhibit)
	}
	cw := csv.NewWriter(w)
	for ti, t := range r.Tables {
		if ti > 0 {
			cw.Flush()
			if _, err := io.WriteString(w, "\n"); err != nil {
				return err
			}
		}
		if err := cw.Write([]string{"exhibit", r.Exhibit, t.Name}); err != nil {
			return err
		}
		if err := cw.Write(t.Columns); err != nil {
			return err
		}
		for _, row := range t.Rows {
			if len(row) != len(t.Columns) {
				return fmt.Errorf("exhibit: %s/%s row has %d cells for %d columns", r.Exhibit, t.Name, len(row), len(t.Columns))
			}
			if err := cw.Write(row); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}
