package exhibit

import (
	"bytes"
	"fmt"
	"io"
	"math"
	"testing"
)

// codecResult stands in for an exhibit's typed rows, with the encoding
// hazards the real ones carry: shortest-round-trip floats, HTML-escapable
// strings, nested structure.
type codecResult struct {
	Mixes  []string  `json:"mixes"`
	Values []float64 `json:"values"`
	Note   string    `json:"note"`
}

func codecReport() *Report {
	return &Report{
		Exhibit: "codec-test",
		Title:   "Codec round trip",
		Meta:    Meta{Seed: 42, Quick: true, Trials: 1000, Parallel: 3},
		Data: codecResult{
			Mixes:  []string{"Mix1", "Mix10"},
			Values: []float64{0.1, 1.0 / 3.0, math.SmallestNonzeroFloat64, 1e300, -0.0},
			Note:   `escaping <b>&"quotes"</b>`,
		},
		Tables: []Table{
			{Name: "main", Columns: []string{"mix", "value"}, Rows: [][]string{
				Row("Mix1", Ftoa(1.0/3.0)),
				Row("Mix10", Ftoa(1e300)),
			}},
			{Name: "aux", Columns: []string{"k"}, Rows: [][]string{Row("v")}},
		},
		Text: func(w io.Writer) {
			fmt.Fprintf(w, "codec-test: %v then %v\n", 1.0/3.0, 1e300)
		},
	}
}

func renderAll(t *testing.T, r *Report) map[string]string {
	t.Helper()
	out := map[string]string{}
	for _, format := range Formats() {
		ren, err := RendererFor(format)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := ren.Render(&buf, r); err != nil {
			t.Fatalf("%s render: %v", format, err)
		}
		out[format] = buf.String()
	}
	return out
}

func TestReportCodecRendersByteIdentical(t *testing.T) {
	orig := codecReport()
	want := renderAll(t, orig)

	blob, err := EncodeReport(orig)
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeReport(blob)
	if err != nil {
		t.Fatal(err)
	}
	got := renderAll(t, back)
	for _, format := range Formats() {
		if got[format] != want[format] {
			t.Errorf("%s rendering changed across the codec:\n--- live ---\n%s\n--- decoded ---\n%s",
				format, want[format], got[format])
		}
	}
}

func TestReportCodecSurvivesSecondTrip(t *testing.T) {
	// A decoded report (RawMessage data, captured text) must re-encode to
	// the same bytes: the store rewrites result files on compaction.
	blob, err := EncodeReport(codecReport())
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeReport(blob)
	if err != nil {
		t.Fatal(err)
	}
	blob2, err := EncodeReport(back)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(blob, blob2) {
		t.Errorf("second encode differs:\n%s\nvs\n%s", blob, blob2)
	}
}

func TestReportCodecNoText(t *testing.T) {
	r := codecReport()
	r.Text = nil
	blob, err := EncodeReport(r)
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeReport(blob)
	if err != nil {
		t.Fatal(err)
	}
	if back.Text != nil {
		t.Error("decoded report invented a text rendering")
	}
}

func TestReportCodecMetaRestampable(t *testing.T) {
	// The server restamps Meta when serving a cached result under a new
	// config; the decoded report must carry the new stamp everywhere.
	blob, err := EncodeReport(codecReport())
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeReport(blob)
	if err != nil {
		t.Fatal(err)
	}
	back.Meta = Meta{Seed: 7, Parallel: 8}
	rendered := renderAll(t, back)["json"]
	if !bytes.Contains([]byte(rendered), []byte(`"seed": 7`)) {
		t.Errorf("restamped seed missing from JSON:\n%s", rendered)
	}
}
