package exhibit

import (
	"io"
	"strconv"
)

// Meta records the run parameters that shaped a report, so a serialized
// report is self-describing and reproducible.
type Meta struct {
	Seed     int64  `json:"seed"`
	Quick    bool   `json:"quick"`
	Trials   int    `json:"trials,omitempty"`
	Parallel int    `json:"parallel,omitempty"`
	Accel    string `json:"accel,omitempty"`
	CI       bool   `json:"ci,omitempty"`
}

// MetaFor derives the report metadata from the config an exhibit ran under.
func MetaFor(cfg Config) Meta {
	return Meta{Seed: cfg.SeedOrDefault(), Quick: cfg.Quick, Trials: cfg.Trials, Parallel: cfg.Parallel,
		Accel: cfg.Accel, CI: cfg.CI}
}

// Report is the structured outcome of one exhibit run.
//
// Data holds the exhibit's typed rows (e.g. experiments.Fig31Result) and
// is what the JSON renderer serializes — consumers get the exact result
// struct back with json.Unmarshal. Tables is the flat tabular projection
// of the same data that the CSV renderer emits. Text is the exact legacy
// rendering, byte-identical to the golden files.
type Report struct {
	Exhibit string            `json:"exhibit"`
	Title   string            `json:"title"`
	Meta    Meta              `json:"meta"`
	Data    any               `json:"data"`
	Tables  []Table           `json:"-"`
	Text    func(w io.Writer) `json:"-"`
}

// Table is one flat table of a report: a name (reports may carry several
// tables — a lifetime figure has one per estimate kind), column headers,
// and pre-formatted rows.
type Table struct {
	Name    string
	Columns []string
	Rows    [][]string
}

// Row collects cells into a table row; a convenience for projections.
func Row(cells ...string) []string { return cells }

// Ftoa formats a float for a CSV cell with the shortest representation
// that round-trips.
func Ftoa(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// Itoa formats an int for a CSV cell.
func Itoa(v int) string { return strconv.Itoa(v) }
