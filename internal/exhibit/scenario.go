package exhibit

import (
	"encoding/json"
	"fmt"
	"io"
	"math/bits"
	"os"

	"arcc/internal/dram"
	"arcc/internal/faultmodel"
	"arcc/internal/lotecc"
	"arcc/internal/reliability"
	"arcc/internal/workload"
)

// Scenario is the declarative description of a user-defined sweep: the
// fault mix a channel is exposed to, the ECC upgrade cost it pays per
// fault, and (optionally) a workload sweep through the full-system
// simulator. internal/experiments turns a Scenario into a runnable
// Exhibit, so JSON files can drive studies the paper never shipped.
//
// JSON schema (all fields optional unless noted; zero values take the
// documented defaults):
//
//	{
//	  "name":             "string (required) — registry/report name",
//	  "description":      "string — one-line summary",
//
//	  "rate_factor":      1.0,   // scale on the SC'12 field-study FIT rates
//	  "fit_overrides":    {"lane": 3.0},  // absolute per-device FIT by fault
//	                                      // type: bit, word, column, row,
//	                                      // bank, device, lane
//	  "ranks":            2,     // ranks per channel
//	  "devices_per_rank": 18,    // DRAM devices per rank
//	  "banks_per_device": 8,
//	  "years":            7,     // operational lifespan
//	  "trials":           10000, // Monte Carlo channels (Config.Trials wins)
//	  "scrub_hours":      4.0,   // scrub interval for the SDC/DUE models
//
//	  "scheme":           "chipkill", // upgraded-access cost model:
//	                                  // "chipkill" (2x) or "lotecc" (4x)
//	  "upgrade_factor":   0,     // explicit cost factor; overrides scheme
//
//	  "accel":            "none",  // rare-event acceleration of the lifetime
//	                               // Monte Carlos: "none", "conditional"
//	                               // (require at least one fault), or
//	                               // "tilt:<factor>" (scale rates by factor)
//	  "ci":               false,   // report 95% confidence intervals and
//	                               // effective sample size
//
//	  "burst":            {        // correlated fault bursts (omit for the
//	                               // independent-arrival model)
//	    "row_prob": 0.3,           // chance a row fault is an adjacent-row burst
//	    "row_mean": 4, "row_max": 16,  // truncated-geometric burst size
//	    "bank_prob": 0.1,          // chance a column fault bursts in its bank
//	    "bank_mean": 3, "bank_max": 8
//	  },
//
//	  "mixes":            ["Mix1", "Mix7"], // Table 7.3 names; empty = no
//	                                        // simulator sweep
//	  "system":           "arcc",  // or "baseline"
//	  "upgraded_fraction": 0.25,   // fraction of pages upgraded in sim runs
//	  "instructions":     0,       // per core; 0 = profile default
//
//	  "dram":             "ddr2",  // simulator memory generation: ddr2
//	                               // (paper's calibrated config), ddr4, ddr5
//	  "width":            8,       // ARCC device width (bits): 4, 8, or 16
//
//	  "tenants": [                 // multi-tenant interference mix: 1-4
//	                               // tenants mapped round-robin onto the four
//	                               // cores; adds a "tenants" simulator run
//	    {"benchmark": "mcf2006", "footprint_lines": 16777216},
//	    {"benchmark": "swim"}
//	  ],
//	  "shared_llc":       false,   // one shared LLC instead of four private
//	  "llc_bytes":        0,       // LLC capacity (0 = 1 MB; power of two)
//
//	  "trace":            ""       // trace file (workload.TraceWriter format)
//	                               // replayed on all four cores; adds a
//	                               // "trace" simulator run
//	}
//
// The dram/width/tenants/shared_llc/llc_bytes/trace axes shape the
// full-system simulator runs only; the reliability Monte Carlos keep using
// the explicit ranks/devices_per_rank/banks_per_device channel geometry.
type Scenario struct {
	Name        string `json:"name"`
	Description string `json:"description,omitempty"`

	RateFactor     float64            `json:"rate_factor,omitempty"`
	FITOverrides   map[string]float64 `json:"fit_overrides,omitempty"`
	Ranks          int                `json:"ranks,omitempty"`
	DevicesPerRank int                `json:"devices_per_rank,omitempty"`
	BanksPerDevice int                `json:"banks_per_device,omitempty"`
	Years          int                `json:"years,omitempty"`
	Trials         int                `json:"trials,omitempty"`
	ScrubHours     float64            `json:"scrub_hours,omitempty"`

	Scheme        string  `json:"scheme,omitempty"`
	UpgradeFactor float64 `json:"upgrade_factor,omitempty"`

	Accel string `json:"accel,omitempty"`
	CI    bool   `json:"ci,omitempty"`

	Burst *faultmodel.Burst `json:"burst,omitempty"`

	Mixes            []string `json:"mixes,omitempty"`
	System           string   `json:"system,omitempty"`
	UpgradedFraction float64  `json:"upgraded_fraction,omitempty"`
	Instructions     int64    `json:"instructions,omitempty"`

	DRAM  string `json:"dram,omitempty"`
	Width int    `json:"width,omitempty"`

	Tenants   []workload.Tenant `json:"tenants,omitempty"`
	SharedLLC bool              `json:"shared_llc,omitempty"`
	LLCBytes  int               `json:"llc_bytes,omitempty"`

	Trace string `json:"trace,omitempty"`
}

// DefaultScenario returns the baseline the JSON overlays: the evaluated
// ARCC channel (two 18-device ranks) under 1x field-study rates for seven
// years, chipkill upgrade costs, four-hour scrubs, no simulator sweep.
func DefaultScenario() Scenario {
	return Scenario{
		RateFactor:     1,
		Ranks:          2,
		DevicesPerRank: 18,
		BanksPerDevice: 8,
		Years:          7,
		Trials:         10_000,
		ScrubHours:     4,
		Scheme:         "chipkill",
		System:         "arcc",
	}
}

// ParseScenario decodes a scenario from JSON (strictly: unknown fields are
// errors, so typos fail loudly), overlays it on DefaultScenario, and
// validates it.
func ParseScenario(r io.Reader) (Scenario, error) {
	s := DefaultScenario()
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return Scenario{}, fmt.Errorf("exhibit: parsing scenario: %w", err)
	}
	// One JSON value describes one scenario; trailing content means a
	// malformed file (e.g. a prematurely closed object) whose remaining
	// fields would otherwise be dropped silently.
	if _, err := dec.Token(); err != io.EOF {
		return Scenario{}, fmt.Errorf("exhibit: parsing scenario: trailing content after the scenario object")
	}
	if err := s.Validate(); err != nil {
		return Scenario{}, err
	}
	return s, nil
}

// LoadScenario reads and parses a scenario JSON file.
func LoadScenario(path string) (Scenario, error) {
	f, err := os.Open(path)
	if err != nil {
		return Scenario{}, fmt.Errorf("exhibit: %w", err)
	}
	defer f.Close()
	s, err := ParseScenario(f)
	if err != nil {
		return Scenario{}, fmt.Errorf("%w (in %s)", err, path)
	}
	return s, nil
}

// Validate checks every field the exhibit package can judge without the
// workload tables; mix names are validated by the experiments layer when
// the scenario is turned into an exhibit.
func (s Scenario) Validate() error {
	switch {
	case s.Name == "":
		return fmt.Errorf("exhibit: scenario needs a name")
	case s.RateFactor < 0:
		return fmt.Errorf("exhibit: scenario %q: negative rate_factor %v", s.Name, s.RateFactor)
	case s.Ranks <= 0 || s.DevicesPerRank <= 1 || s.BanksPerDevice <= 0:
		return fmt.Errorf("exhibit: scenario %q: invalid channel geometry (ranks=%d devices_per_rank=%d banks_per_device=%d)",
			s.Name, s.Ranks, s.DevicesPerRank, s.BanksPerDevice)
	case s.Years <= 0 || s.Trials <= 0:
		return fmt.Errorf("exhibit: scenario %q: years and trials must be positive (got %d, %d)", s.Name, s.Years, s.Trials)
	case s.ScrubHours <= 0:
		return fmt.Errorf("exhibit: scenario %q: scrub_hours must be positive (got %v)", s.Name, s.ScrubHours)
	case s.UpgradeFactor < 0 || (s.UpgradeFactor > 0 && s.UpgradeFactor < 1):
		return fmt.Errorf("exhibit: scenario %q: upgrade_factor must be >= 1 (got %v)", s.Name, s.UpgradeFactor)
	case s.UpgradedFraction < 0 || s.UpgradedFraction > 1:
		return fmt.Errorf("exhibit: scenario %q: upgraded_fraction must be in [0,1] (got %v)", s.Name, s.UpgradedFraction)
	case s.Instructions < 0:
		return fmt.Errorf("exhibit: scenario %q: negative instructions", s.Name)
	}
	if s.UpgradeFactor == 0 {
		if _, err := schemeFactor(s.Scheme); err != nil {
			return fmt.Errorf("exhibit: scenario %q: %w", s.Name, err)
		}
	}
	if s.System != "arcc" && s.System != "baseline" {
		return fmt.Errorf("exhibit: scenario %q: unknown system %q (have arcc, baseline)", s.Name, s.System)
	}
	if _, err := reliability.ParseAccel(s.Accel); err != nil {
		return fmt.Errorf("exhibit: scenario %q: %w", s.Name, err)
	}
	for name := range s.FITOverrides {
		if _, err := typeByName(name); err != nil {
			return fmt.Errorf("exhibit: scenario %q: %w", s.Name, err)
		}
	}
	if s.Burst != nil {
		if err := s.Burst.Validate(); err != nil {
			return fmt.Errorf("exhibit: scenario %q: %w", s.Name, err)
		}
	}
	gen, err := dram.ParseGeneration(s.DRAM)
	if err != nil {
		return fmt.Errorf("exhibit: scenario %q: %w", s.Name, err)
	}
	switch s.Width {
	case 0:
	case 4, 8, 16:
		if gen == dram.DDR2 && s.Width != 8 {
			return fmt.Errorf("exhibit: scenario %q: the DDR2 simulator models only x8 ARCC ranks, not x%d", s.Name, s.Width)
		}
	default:
		return fmt.Errorf("exhibit: scenario %q: device width %d (want 4, 8, or 16)", s.Name, s.Width)
	}
	if len(s.Tenants) > 0 {
		if _, err := workload.TenantBenchmarks(s.Tenants); err != nil {
			return fmt.Errorf("exhibit: scenario %q: %w", s.Name, err)
		}
	}
	if s.LLCBytes != 0 && (s.LLCBytes < 2048 || bits.OnesCount(uint(s.LLCBytes)) != 1) {
		return fmt.Errorf("exhibit: scenario %q: llc_bytes %d must be a power of two >= 2048", s.Name, s.LLCBytes)
	}
	return nil
}

// BurstOrZero returns the scenario's correlated-burst model, or the zero
// (independent-arrival) model when the field is omitted.
func (s Scenario) BurstOrZero() faultmodel.Burst {
	if s.Burst == nil {
		return faultmodel.Burst{}
	}
	return *s.Burst
}

// Generation returns the simulator memory generation the dram field names
// ("" means the paper's DDR2).
func (s Scenario) Generation() dram.Generation {
	gen, err := dram.ParseGeneration(s.DRAM)
	if err != nil {
		panic(err) // Validate rejects unknown generations first
	}
	return gen
}

// Rates resolves the scenario's fault mix: field-study FIT rates scaled by
// RateFactor, with FITOverrides replacing individual types afterwards
// (overrides are absolute, not scaled).
func (s Scenario) Rates() faultmodel.Rates {
	rates := faultmodel.FieldStudyRates().Scale(s.RateFactor)
	for name, fit := range s.FITOverrides {
		t, err := typeByName(name)
		if err != nil {
			panic(err) // Validate rejects unknown names first
		}
		rates[t] = fit
	}
	return rates
}

// Shape returns the channel shape the scenario's geometry implies, with
// the evaluated configuration's two-pages-per-row layout and a total page
// count scaled from the ARCC channel by rank count.
func (s Scenario) Shape() faultmodel.ChannelShape {
	base := faultmodel.ARCCChannelShape()
	return faultmodel.ChannelShape{
		RanksPerChannel: s.Ranks,
		BanksPerDevice:  s.BanksPerDevice,
		PagesPerRow:     base.PagesPerRow,
		TotalPages:      base.TotalPages / base.RanksPerChannel * s.Ranks,
	}
}

// CostFactor returns the upgraded-access cost factor: UpgradeFactor when
// set, otherwise the scheme's (chipkill 2x, lotecc 4x).
func (s Scenario) CostFactor() float64 {
	if s.UpgradeFactor > 0 {
		return s.UpgradeFactor
	}
	f, err := schemeFactor(s.Scheme)
	if err != nil {
		panic(err) // Validate rejects unknown schemes first
	}
	return f
}

func schemeFactor(scheme string) (float64, error) {
	switch scheme {
	case "chipkill":
		// ARCC on commercial chipkill: an upgraded access touches both
		// channels — double power, half bandwidth.
		return 2, nil
	case "lotecc":
		// ARCC on LOT-ECC: 18 devices instead of 9 plus the extra
		// checksum-line read.
		return lotecc.WorstCaseUpgradedPowerFactor(), nil
	}
	return 0, fmt.Errorf("unknown scheme %q (have chipkill, lotecc)", scheme)
}

func typeByName(name string) (faultmodel.Type, error) {
	for _, t := range faultmodel.Types() {
		if t.String() == name {
			return t, nil
		}
	}
	return 0, fmt.Errorf("unknown fault type %q", name)
}
