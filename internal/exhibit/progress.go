package exhibit

import "sync"

// Tracker is a concurrency-safe Progress sink that remembers the most
// recent completion counts, so a concurrent observer (a status endpoint,
// a TUI) can poll an exhibit's progress while it runs. One exhibit may
// run several engine jobs back to back (per rate factor, per sweep); the
// snapshot always reflects the job currently executing, and CumulativeDone
// carries a monotone count across job boundaries for coarse "is it moving"
// checks.
type Tracker struct {
	mu          sync.Mutex
	done, total int
	cumulative  int
	lastDone    int
}

// Update implements Progress. The engine serialises calls per job, but a
// Tracker may be read concurrently from other goroutines, so it locks.
func (t *Tracker) Update(done, total int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	// The engine opens every job with an explicit Update(0, total), so a
	// total change or done falling back (to 0, or below the previous
	// job's final count) always marks a job boundary — including a new
	// job with the same total as the last one. Only the fresh trials
	// advance the cumulative count.
	if total != t.total || done < t.lastDone {
		t.lastDone = 0
	}
	t.cumulative += done - t.lastDone
	t.lastDone = done
	t.done, t.total = done, total
}

// Snapshot returns the most recent (done, total) of the engine job the
// exhibit is currently running; (0, 0) before the first update.
func (t *Tracker) Snapshot() (done, total int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.done, t.total
}

// CumulativeDone returns the total number of trials completed across all
// engine jobs the exhibit has run so far.
func (t *Tracker) CumulativeDone() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.cumulative
}
