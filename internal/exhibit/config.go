package exhibit

import "arcc/internal/mc"

// Progress receives completion counts as an exhibit's Monte Carlo trials
// or simulator runs finish. Implementations must tolerate being reused
// across the several engine jobs one exhibit may run back to back (per
// rate factor, per sweep); done resets between jobs.
type Progress interface {
	Update(done, total int)
}

// ProgressFunc adapts a plain function to the Progress interface.
type ProgressFunc func(done, total int)

// Update implements Progress.
func (f ProgressFunc) Update(done, total int) { f(done, total) }

// Config tunes how an exhibit runs without changing what it computes: for
// a fixed Seed the numbers are bit-identical at any Parallel setting (the
// engine's contract), and Quick/Trials trade precision for speed. Build
// one with NewConfig and functional options; the zero value requests a
// paper-scale serial-default run with seed 1.
type Config struct {
	// Quick trades precision for speed (shorter instruction budgets,
	// fewer Monte Carlo channels).
	Quick bool
	// Seed drives all randomness; fixed default (1) when zero.
	Seed int64
	// Parallel caps the worker count of the Monte Carlo engine and the
	// per-mix simulation fan-out: 0 means GOMAXPROCS, 1 forces the serial
	// path. Results are bit-identical at any setting for a given seed.
	Parallel int
	// Trials overrides the Monte Carlo channel count of the lifetime
	// exhibits (0 keeps the profile default).
	Trials int
	// Accel, when non-empty, overrides the rare-event acceleration of
	// scenario lifetime Monte Carlos: "none", "conditional", or
	// "tilt:<factor>" (see reliability.ParseAccel). Acceleration changes
	// which proposal the trials sample from — estimates remain unbiased
	// for the same quantities, with far fewer trials to a given precision
	// at rare fault rates.
	Accel string
	// CI requests confidence intervals and effective-sample-size
	// reporting from scenario lifetime Monte Carlos.
	CI bool
	// Progress, when non-nil, receives completion counts as the
	// exhibit's Monte Carlo trials or simulator runs finish.
	Progress Progress
	// Resume, when non-nil, threads shard-level checkpoint/resume through
	// every engine job the exhibit runs (see mc.Resumer). Like Parallel it
	// cannot change the numbers: a resumed run is bit-identical to an
	// uninterrupted one.
	Resume *mc.Resumer
}

// Option mutates a Config under construction.
type Option func(*Config)

// NewConfig builds a Config from functional options.
func NewConfig(opts ...Option) Config {
	var c Config
	for _, o := range opts {
		o(&c)
	}
	return c
}

// WithQuick selects the reduced-volume profile.
func WithQuick(quick bool) Option { return func(c *Config) { c.Quick = quick } }

// WithSeed sets the root seed (0 keeps the fixed default of 1).
func WithSeed(seed int64) Option { return func(c *Config) { c.Seed = seed } }

// WithParallel sets the engine worker count (0 = GOMAXPROCS, 1 = serial).
func WithParallel(workers int) Option { return func(c *Config) { c.Parallel = workers } }

// WithTrials overrides the Monte Carlo channel count (0 = profile default).
func WithTrials(trials int) Option { return func(c *Config) { c.Trials = trials } }

// WithAccel overrides the scenario rare-event acceleration spec ("" keeps
// the scenario's own setting).
func WithAccel(accel string) Option { return func(c *Config) { c.Accel = accel } }

// WithCI requests confidence-interval reporting from scenario runs.
func WithCI(ci bool) Option { return func(c *Config) { c.CI = ci } }

// WithProgress installs a progress sink.
func WithProgress(p Progress) Option { return func(c *Config) { c.Progress = p } }

// WithResume installs a checkpoint/resume coordinator.
func WithResume(r *mc.Resumer) Option { return func(c *Config) { c.Resume = r } }

// SeedOrDefault returns the effective root seed: Seed, or 1 when unset.
func (c Config) SeedOrDefault() int64 {
	if c.Seed == 0 {
		return 1
	}
	return c.Seed
}

// MCOptions returns the engine options for channel-sharded Monte Carlo
// jobs (default shard size).
func (c Config) MCOptions() mc.Options {
	return mc.Options{Parallelism: c.Parallel, Progress: c.progressFunc(), Checkpoint: c.jobCheckpoint()}
}

// SimOptions returns the engine options for fan-outs whose trials are
// whole simulator runs: one run per shard.
func (c Config) SimOptions() mc.Options {
	return mc.Options{Parallelism: c.Parallel, ShardSize: 1, Progress: c.progressFunc(), Checkpoint: c.jobCheckpoint()}
}

func (c Config) progressFunc() func(done, total int) {
	if c.Progress == nil {
		return nil
	}
	return c.Progress.Update
}

// jobCheckpoint assigns the next engine-job sequence index of the Resume
// coordinator; exhibits call MCOptions/SimOptions once per engine job in
// deterministic order, so the indices of a resumed run line up with the
// interrupted one's.
func (c Config) jobCheckpoint() *mc.CheckpointConfig {
	if c.Resume == nil {
		return nil
	}
	return c.Resume.JobCheckpoint()
}
