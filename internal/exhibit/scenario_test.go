package exhibit

import (
	"strings"
	"testing"

	"arcc/internal/dram"
	"arcc/internal/faultmodel"
)

func TestParseScenario(t *testing.T) {
	s, err := ParseScenario(strings.NewReader(`{
		"name": "dense-channel",
		"description": "3 ranks of 12 devices at 3x rates",
		"rate_factor": 3,
		"fit_overrides": {"lane": 6.0},
		"ranks": 3,
		"devices_per_rank": 12,
		"years": 5,
		"trials": 2000,
		"scheme": "lotecc",
		"mixes": ["Mix1", "Mix7"],
		"upgraded_fraction": 0.25
	}`))
	if err != nil {
		t.Fatal(err)
	}
	if s.Name != "dense-channel" || s.Ranks != 3 || s.Years != 5 {
		t.Fatalf("fields not decoded: %+v", s)
	}
	// Defaults survive the overlay.
	if s.BanksPerDevice != 8 || s.ScrubHours != 4 || s.System != "arcc" {
		t.Fatalf("defaults lost: %+v", s)
	}
	if got := s.CostFactor(); got != 4 {
		t.Fatalf("lotecc cost factor = %v, want 4", got)
	}
	rates := s.Rates()
	if rates[faultmodel.Lane] != 6.0 {
		t.Fatalf("fit override not applied: lane = %v", rates[faultmodel.Lane])
	}
	if want := faultmodel.FieldStudyRates()[faultmodel.Bit] * 3; rates[faultmodel.Bit] != want {
		t.Fatalf("rate factor not applied: bit = %v, want %v", rates[faultmodel.Bit], want)
	}
	if shape := s.Shape(); shape.RanksPerChannel != 3 {
		t.Fatalf("shape ranks = %d", shape.RanksPerChannel)
	}
}

func TestParseScenarioRejects(t *testing.T) {
	cases := map[string]string{
		"unknown field":   `{"name":"x", "rate_fctor": 2}`,
		"missing name":    `{"rate_factor": 2}`,
		"bad fault type":  `{"name":"x", "fit_overrides": {"pin": 1}}`,
		"bad scheme":      `{"name":"x", "scheme": "hamming"}`,
		"bad system":      `{"name":"x", "system": "vecc"}`,
		"negative factor": `{"name":"x", "rate_factor": -1}`,
		"fraction over 1": `{"name":"x", "upgraded_fraction": 1.5}`,
		"zero years":      `{"name":"x", "years": -3}`,
		"sub-1 upgrade":   `{"name":"x", "upgrade_factor": 0.5}`,
		"not json":        `{"name":`,
		"trailing junk":   `{"name":"x"} "trials": 500`,
	}
	for label, raw := range cases {
		if _, err := ParseScenario(strings.NewReader(raw)); err == nil {
			t.Errorf("%s: accepted %s", label, raw)
		}
	}
}

func TestParseScenarioNewAxes(t *testing.T) {
	s, err := ParseScenario(strings.NewReader(`{
		"name": "axes",
		"dram": "ddr5",
		"width": 16,
		"tenants": [{"benchmark": "mcf2006", "footprint_lines": 12288}],
		"shared_llc": true,
		"llc_bytes": 2097152,
		"trace": "some.trc",
		"burst": {"row_prob": 0.5, "row_mean": 4, "row_max": 16}
	}`))
	if err != nil {
		t.Fatal(err)
	}
	if s.Generation() != dram.DDR5 || s.Width != 16 || !s.SharedLLC || s.LLCBytes != 2097152 {
		t.Fatalf("axes not decoded: %+v", s)
	}
	if len(s.Tenants) != 1 || s.Tenants[0].Benchmark != "mcf2006" {
		t.Fatalf("tenants not decoded: %+v", s.Tenants)
	}
	if s.Trace != "some.trc" {
		t.Fatalf("trace not decoded: %q", s.Trace)
	}
	b := s.BurstOrZero()
	if b.RowProb != 0.5 || b.RowMean != 4 || b.RowMax != 16 {
		t.Fatalf("burst not decoded: %+v", b)
	}
	// The zero value keeps the legacy DDR2 path and a zero burst.
	d := DefaultScenario()
	if d.Generation() != dram.DDR2 || !d.BurstOrZero().IsZero() {
		t.Fatalf("defaults changed: gen %v burst %+v", d.Generation(), d.BurstOrZero())
	}
}

func TestParseScenarioRejectsNewAxes(t *testing.T) {
	cases := map[string]string{
		"bad generation":  `{"name":"x", "dram": "ddr6"}`,
		"bad width":       `{"name":"x", "dram": "ddr4", "width": 12}`,
		"ddr2 narrow":     `{"name":"x", "width": 4}`,
		"unknown tenant":  `{"name":"x", "tenants": [{"benchmark": "nope"}]}`,
		"negative lines":  `{"name":"x", "tenants": [{"benchmark": "mesa", "footprint_lines": -1}]}`,
		"llc not pow2":    `{"name":"x", "llc_bytes": 3000000}`,
		"llc too small":   `{"name":"x", "llc_bytes": 1024}`,
		"bad burst prob":  `{"name":"x", "burst": {"row_prob": 2}}`,
		"bad burst max":   `{"name":"x", "burst": {"row_prob": 0.5, "row_mean": 4, "row_max": 1}}`,
		"bad burst field": `{"name":"x", "burst": {"row_probability": 0.5}}`,
	}
	for label, raw := range cases {
		if _, err := ParseScenario(strings.NewReader(raw)); err == nil {
			t.Errorf("%s: accepted %s", label, raw)
		}
	}
}

func TestLoadScenarioMissingFile(t *testing.T) {
	if _, err := LoadScenario("testdata/definitely-missing.json"); err == nil {
		t.Fatal("missing file accepted")
	}
}
