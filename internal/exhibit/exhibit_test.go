package exhibit

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"strings"
	"testing"
)

func testExhibit(name string) Exhibit {
	return Exhibit{
		Name:  name,
		Title: "Test " + name,
		Run: func(_ context.Context, cfg Config) (*Report, error) {
			return &Report{Exhibit: name, Title: "Test " + name, Meta: MetaFor(cfg)}, nil
		},
	}
}

func TestRegistry(t *testing.T) {
	before := len(All())
	Register(testExhibit("zz-test-registry"))
	if _, ok := Lookup("zz-test-registry"); !ok {
		t.Fatal("registered exhibit not found")
	}
	if _, ok := Lookup("zz-no-such"); ok {
		t.Fatal("lookup invented an exhibit")
	}
	all := All()
	if len(all) != before+1 || all[len(all)-1].Name != "zz-test-registry" {
		t.Fatalf("All() does not preserve registration order: %d entries", len(all))
	}
	names := Names()
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("Names() not sorted: %v", names)
		}
	}
	for _, bad := range []Exhibit{
		{},                              // no name, no run
		{Name: "zz-norun"},              // no run
		testExhibit("zz-test-registry"), // duplicate
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Register(%q) did not panic", bad.Name)
				}
			}()
			Register(bad)
		}()
	}
}

func TestConfigOptions(t *testing.T) {
	calls := 0
	cfg := NewConfig(
		WithQuick(true),
		WithSeed(42),
		WithParallel(3),
		WithTrials(500),
		WithProgress(ProgressFunc(func(done, total int) { calls++ })),
	)
	if !cfg.Quick || cfg.Seed != 42 || cfg.Parallel != 3 || cfg.Trials != 500 {
		t.Fatalf("options not applied: %+v", cfg)
	}
	mco := cfg.MCOptions()
	if mco.Parallelism != 3 || mco.Progress == nil {
		t.Fatalf("MCOptions wrong: %+v", mco)
	}
	mco.Progress(1, 2)
	if calls != 1 {
		t.Fatal("progress adapter not wired")
	}
	if so := cfg.SimOptions(); so.ShardSize != 1 {
		t.Fatalf("SimOptions must use shard size 1, got %d", so.ShardSize)
	}
	if (Config{}).SeedOrDefault() != 1 {
		t.Fatal("zero seed must default to 1")
	}
	if (Config{}).MCOptions().Progress != nil {
		t.Fatal("nil Progress must map to nil engine callback")
	}
}

func TestRenderers(t *testing.T) {
	r := &Report{
		Exhibit: "demo",
		Title:   "Demo",
		Meta:    Meta{Seed: 1, Quick: true},
		Data:    map[string]int{"x": 1},
		Tables: []Table{
			{Name: "a", Columns: []string{"k", "v"}, Rows: [][]string{Row("x", "1")}},
			{Name: "b", Columns: []string{"n"}, Rows: [][]string{Row("2")}},
		},
		Text: func(w io.Writer) { io.WriteString(w, "demo text\n") },
	}

	var buf bytes.Buffer
	if err := (TextRenderer{}).Render(&buf, r); err != nil || buf.String() != "demo text\n" {
		t.Fatalf("text renderer: %q, %v", buf.String(), err)
	}

	buf.Reset()
	if err := (JSONRenderer{}).Render(&buf, r); err != nil {
		t.Fatal(err)
	}
	var wire map[string]any
	if err := json.Unmarshal(buf.Bytes(), &wire); err != nil {
		t.Fatalf("json renderer output invalid: %v", err)
	}
	if wire["exhibit"] != "demo" {
		t.Fatalf("json envelope wrong: %v", wire)
	}

	buf.Reset()
	if err := (CSVRenderer{}).Render(&buf, r); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"exhibit,demo,a", "k,v", "x,1", "exhibit,demo,b"} {
		if !strings.Contains(out, want) {
			t.Errorf("csv output missing %q:\n%s", want, out)
		}
	}

	// Mismatched row width is an error, not silent corruption.
	bad := &Report{Exhibit: "bad", Tables: []Table{{Name: "t", Columns: []string{"a", "b"}, Rows: [][]string{Row("only")}}}}
	if err := (CSVRenderer{}).Render(io.Discard, bad); err == nil {
		t.Fatal("csv renderer accepted a short row")
	}

	if _, err := RendererFor("yaml"); err == nil {
		t.Fatal("unknown format accepted")
	}
	for _, f := range Formats() {
		if _, err := RendererFor(f); err != nil {
			t.Errorf("advertised format %q not accepted: %v", f, err)
		}
	}
}
