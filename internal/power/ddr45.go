package power

// DDR4 and DDR5 device profiles for the generation scenario axis. The
// paper's evaluation is DDR2-667; these profiles let the same power model
// answer "what does the relaxed/upgraded split look like on a modern
// part". Values are representative of mainstream 8 Gb DDR4-2400 (1.2 V)
// and 16 Gb DDR5-4800 (1.1 V) datasheets — like the timing presets, they
// support configuration *comparisons*, not part certification.

// DDR4x8Device is an 8 Gb x8 DDR4-2400 device.
func DDR4x8Device() DeviceParams {
	return DeviceParams{
		Name: "8Gb x8 DDR4-2400",
		IDD0: 58, IDD2P: 25, IDD2N: 37, IDD3N: 50, IDD3P: 32,
		IDD4R: 150, IDD4W: 145, IDD5: 190,
		VDD: 1.2,
		TCK: 0.833, TRC: 45.3, TRAS: 32, TRFC: 350, TREF: 7812.5,
		BurstLen: 8,
	}
}

// DDR4x4Device is an 8 Gb x4 DDR4-2400 device (slightly lower burst
// current than the x8 part).
func DDR4x4Device() DeviceParams {
	p := DDR4x8Device()
	p.Name = "8Gb x4 DDR4-2400"
	p.IDD4R, p.IDD4W = 135, 130
	return p
}

// DDR4x16Device is an 8 Gb x16 DDR4-2400 device (higher burst current).
func DDR4x16Device() DeviceParams {
	p := DDR4x8Device()
	p.Name = "8Gb x16 DDR4-2400"
	p.IDD4R, p.IDD4W = 180, 175
	return p
}

// DDR5x8Device is a 16 Gb x8 DDR5-4800 device. DDR5 refreshes at fine
// granularity (tREFI 3.9 us) with a shorter tRFC.
func DDR5x8Device() DeviceParams {
	return DeviceParams{
		Name: "16Gb x8 DDR5-4800",
		IDD0: 65, IDD2P: 22, IDD2N: 34, IDD3N: 45, IDD3P: 30,
		IDD4R: 170, IDD4W: 160, IDD5: 175,
		VDD: 1.1,
		TCK: 0.417, TRC: 48, TRAS: 32, TRFC: 295, TREF: 3906.25,
		BurstLen: 16,
	}
}

// DDR5x4Device is a 16 Gb x4 DDR5-4800 device.
func DDR5x4Device() DeviceParams {
	p := DDR5x8Device()
	p.Name = "16Gb x4 DDR5-4800"
	p.IDD4R, p.IDD4W = 155, 145
	return p
}

// DDR5x16Device is a 16 Gb x16 DDR5-4800 device.
func DDR5x16Device() DeviceParams {
	p := DDR5x8Device()
	p.Name = "16Gb x16 DDR5-4800"
	p.IDD4R, p.IDD4W = 200, 190
	return p
}
