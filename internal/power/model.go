package power

import "fmt"

// Meter accumulates the operation energy of a memory channel and converts
// it, together with background power, into average power over a simulated
// interval. The memory controller records one Activate per row activation
// and one Read/Write burst per column access, each with the number of
// devices involved — 18 for a relaxed ARCC access, 36 for a baseline or
// upgraded access.
type Meter struct {
	params DeviceParams

	// actEnergy caches params.ActivateEnergy(); burstBeats/readEnergy/
	// writeEnergy memoise the per-burst energies for the last beat count
	// seen (controllers use one fixed burst length, so this is a plain
	// cache hit on every record). Recording an event is then one multiply
	// and one add — the meter sits on the simulator's per-access path.
	actEnergy   float64
	burstBeats  int
	readEnergy  float64
	writeEnergy float64

	activates    int64
	readBursts   int64
	writeBursts  int64
	opEnergyNJ   float64
	deviceBursts int64 // devices*bursts, for reporting
}

// NewMeter creates a Meter for devices with the given parameters.
func NewMeter(params DeviceParams) *Meter {
	return &Meter{params: params, actEnergy: params.ActivateEnergy(), burstBeats: -1}
}

// Params returns the device parameters the meter uses.
func (m *Meter) Params() DeviceParams { return m.params }

// RecordActivate charges one activate+precharge pair on each of devices.
func (m *Meter) RecordActivate(devices int) {
	m.checkDevices(devices)
	m.activates++
	m.opEnergyNJ += float64(devices) * m.actEnergy
}

// RecordRead charges a read burst of beats beats on each of devices.
func (m *Meter) RecordRead(devices, beats int) {
	m.checkDevices(devices)
	if beats != m.burstBeats {
		m.memoBurst(beats)
	}
	m.readBursts++
	m.deviceBursts += int64(devices)
	m.opEnergyNJ += float64(devices) * m.readEnergy
}

// RecordWrite charges a write burst of beats beats on each of devices.
func (m *Meter) RecordWrite(devices, beats int) {
	m.checkDevices(devices)
	if beats != m.burstBeats {
		m.memoBurst(beats)
	}
	m.writeBursts++
	m.deviceBursts += int64(devices)
	m.opEnergyNJ += float64(devices) * m.writeEnergy
}

func (m *Meter) memoBurst(beats int) {
	m.burstBeats = beats
	m.readEnergy = m.params.ReadBurstEnergy(beats)
	m.writeEnergy = m.params.WriteBurstEnergy(beats)
}

func (m *Meter) checkDevices(devices int) {
	if devices <= 0 {
		panic(fmt.Sprintf("power: non-positive device count %d", devices))
	}
}

// OperationEnergyNJ returns the accumulated operation energy in nanojoules.
func (m *Meter) OperationEnergyNJ() float64 { return m.opEnergyNJ }

// Counts returns the recorded event counts (activates, reads, writes).
func (m *Meter) Counts() (activates, reads, writes int64) {
	return m.activates, m.readBursts, m.writeBursts
}

// AveragePowerMW converts accumulated energy plus background power into the
// average channel power in milliwatts over an interval of elapsedNS
// nanoseconds, for a memory system with totalDevices powered devices whose
// banks are active activeFraction of the time and which spend
// powerDownFraction of their idle time in CKE power-down (memory controllers
// with closed-page policies power idle ranks down aggressively; DRAMsim
// models the same mechanism).
func (m *Meter) AveragePowerMW(elapsedNS float64, totalDevices int, activeFraction, powerDownFraction float64) float64 {
	if elapsedNS <= 0 {
		panic("power: non-positive interval")
	}
	if totalDevices <= 0 {
		panic("power: non-positive device count")
	}
	opPower := m.opEnergyNJ / elapsedNS * 1e3 // nJ/ns = W; *1e3 -> mW
	bg := float64(totalDevices) * m.params.BackgroundPower(activeFraction, powerDownFraction)
	return opPower + bg
}

// Reset clears accumulated energy and counts.
func (m *Meter) Reset() {
	m.activates, m.readBursts, m.writeBursts = 0, 0, 0
	m.opEnergyNJ, m.deviceBursts = 0, 0
}
