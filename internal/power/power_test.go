package power

import (
	"math"
	"testing"
)

func TestDeviceParamsPositiveEnergies(t *testing.T) {
	for _, p := range []DeviceParams{Micron512MbX4(), Micron512MbX8()} {
		if p.ActivateEnergy() <= 0 {
			t.Errorf("%s: ActivateEnergy = %v, want > 0", p.Name, p.ActivateEnergy())
		}
		if p.ReadBurstEnergy(4) <= 0 || p.WriteBurstEnergy(4) <= 0 {
			t.Errorf("%s: burst energies must be positive", p.Name)
		}
		if p.WriteBurstEnergy(4) <= p.ReadBurstEnergy(4)*0.5 {
			t.Errorf("%s: write energy implausibly small vs read", p.Name)
		}
	}
}

func TestBurstEnergyScalesWithBeats(t *testing.T) {
	p := Micron512MbX8()
	e4, e8 := p.ReadBurstEnergy(4), p.ReadBurstEnergy(8)
	if math.Abs(e8-2*e4) > 1e-9 {
		t.Fatalf("ReadBurstEnergy(8) = %v, want 2 * ReadBurstEnergy(4) = %v", e8, 2*e4)
	}
}

func TestBackgroundPowerMonotonicInActiveFraction(t *testing.T) {
	p := Micron512MbX8()
	prev := -1.0
	for _, f := range []float64{0, 0.25, 0.5, 0.75, 1} {
		bg := p.BackgroundPower(f, 0)
		if bg <= prev {
			t.Fatalf("background power not increasing: f=%v -> %v (prev %v)", f, bg, prev)
		}
		prev = bg
	}
}

func TestBackgroundPowerPowerDownSaves(t *testing.T) {
	p := Micron512MbX8()
	if p.BackgroundPower(0, 1) >= p.BackgroundPower(0, 0) {
		t.Fatal("power-down must reduce idle power")
	}
}

func TestBackgroundPowerPanicsOutOfRange(t *testing.T) {
	p := Micron512MbX8()
	for _, args := range [][2]float64{{-0.1, 0}, {1.1, 0}, {0, -0.1}, {0, 1.1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("BackgroundPower(%v, %v) did not panic", args[0], args[1])
				}
			}()
			p.BackgroundPower(args[0], args[1])
		}()
	}
}

func TestMeterAccumulation(t *testing.T) {
	m := NewMeter(Micron512MbX8())
	m.RecordActivate(18)
	m.RecordRead(18, 4)
	m.RecordWrite(18, 4)
	a, r, w := m.Counts()
	if a != 1 || r != 1 || w != 1 {
		t.Fatalf("counts = %d/%d/%d, want 1/1/1", a, r, w)
	}
	p := m.Params()
	want := 18 * (p.ActivateEnergy() + p.ReadBurstEnergy(4) + p.WriteBurstEnergy(4))
	if math.Abs(m.OperationEnergyNJ()-want) > 1e-9 {
		t.Fatalf("energy = %v, want %v", m.OperationEnergyNJ(), want)
	}
	m.Reset()
	if m.OperationEnergyNJ() != 0 {
		t.Fatal("Reset did not clear energy")
	}
}

func TestHalfDevicesHalvesOperationEnergy(t *testing.T) {
	// The core ARCC power mechanism: the same access stream against 18
	// devices must cost exactly half the operation energy of 36 devices.
	p := Micron512MbX8()
	relaxed, baseline := NewMeter(p), NewMeter(p)
	for i := 0; i < 1000; i++ {
		relaxed.RecordActivate(18)
		relaxed.RecordRead(18, 4)
		baseline.RecordActivate(36)
		baseline.RecordRead(36, 4)
	}
	ratio := relaxed.OperationEnergyNJ() / baseline.OperationEnergyNJ()
	if math.Abs(ratio-0.5) > 1e-12 {
		t.Fatalf("operation energy ratio = %v, want 0.5", ratio)
	}
}

func TestAveragePowerIncludesBackground(t *testing.T) {
	m := NewMeter(Micron512MbX8())
	// No operations at all: average power must equal pure background.
	got := m.AveragePowerMW(1e9, 72, 0, 0)
	want := 72 * m.Params().BackgroundPower(0, 0)
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("idle power = %v, want background %v", got, want)
	}
	// Adding operations strictly increases power.
	m.RecordActivate(36)
	m.RecordRead(36, 4)
	if m.AveragePowerMW(1e9, 72, 0, 0) <= want {
		t.Fatal("operations did not increase average power")
	}
}

func TestRelaxedVsBaselinePowerGapIsSubstantial(t *testing.T) {
	// End-to-end sanity for the Fig 7.1 mechanism: with a memory-intensive
	// access stream (one line access every ~60 ns, idle devices powered
	// down), the 18-device configuration should land roughly 25-50% below
	// the 36-device configuration in total power.
	const accesses = 200000
	const elapsedNS = accesses * 60.0
	relaxed := NewMeter(Micron512MbX8())
	baseline := NewMeter(Micron512MbX4())
	for i := 0; i < accesses; i++ {
		relaxed.RecordActivate(18)
		relaxed.RecordRead(18, 4)
		baseline.RecordActivate(36)
		baseline.RecordRead(36, 8) // x4 devices burst 8 beats to supply 4 symbols per codeword position
	}
	pr := relaxed.AveragePowerMW(elapsedNS, 72, 0.3, 0.9)
	pb := baseline.AveragePowerMW(elapsedNS, 72, 0.3, 0.9)
	reduction := 1 - pr/pb
	if reduction < 0.25 || reduction > 0.50 {
		t.Fatalf("power reduction = %.1f%%, want within [25%%, 50%%] (relaxed %v mW vs baseline %v mW)",
			reduction*100, pr, pb)
	}
}

func TestMeterPanics(t *testing.T) {
	m := NewMeter(Micron512MbX8())
	for name, f := range map[string]func(){
		"zero devices":     func() { m.RecordRead(0, 4) },
		"negative devices": func() { m.RecordActivate(-1) },
		"zero interval":    func() { m.AveragePowerMW(0, 72, 0, 0) },
		"zero total dev":   func() { m.AveragePowerMW(1, 0, 0, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			f()
		}()
	}
}
