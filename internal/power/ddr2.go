// Package power implements the DDR2 memory power model used by the
// experiments: the Micron system-power-calculator equations (the same
// methodology DRAMsim uses), driven by datasheet IDD currents.
//
// The model splits device power into background (standby) power, which every
// powered device pays whether or not it is accessed, and operation power
// (activate/precharge plus read/write burst), which scales with the number
// of devices accessed per request. That split is the mechanism behind
// ARCC's headline result: a relaxed access touches 18 devices instead of 36,
// halving operation energy per access while background power stays fixed,
// which nets out to the ~36% average power reduction of Fig. 7.1.
package power

// DeviceParams holds the datasheet parameters of one DRAM device. Currents
// are in milliamps, voltage in volts, times in nanoseconds. Values follow
// the Micron 512 Mb DDR2-667 datasheet the paper cites [13].
type DeviceParams struct {
	Name string
	// IDD values per the DDR2 datasheet.
	IDD0  float64 // one-bank activate-precharge current
	IDD2P float64 // precharge power-down standby
	IDD2N float64 // precharge standby
	IDD3N float64 // active standby
	IDD3P float64 // active power-down standby
	IDD4R float64 // burst read current
	IDD4W float64 // burst write current
	IDD5  float64 // burst refresh current
	VDD   float64 // supply voltage
	// Timing.
	TCK  float64 // clock period, ns (DDR2-667: 3.0 ns at 333 MHz)
	TRC  float64 // activate-to-activate, ns
	TRAS float64 // activate-to-precharge, ns
	TRFC float64 // refresh cycle time, ns
	TREF float64 // average refresh interval, ns (64 ms / 8192 rows)
	// Burst.
	BurstLen int // beats per column access
}

// Micron512MbX4 is a DDR2-667 512 Mb x4 device (baseline config, Table 7.1).
func Micron512MbX4() DeviceParams {
	return DeviceParams{
		Name: "MT47H128M4-3 (512Mb x4 DDR2-667)",
		IDD0: 90, IDD2P: 7, IDD2N: 40, IDD3N: 55, IDD3P: 25,
		IDD4R: 115, IDD4W: 125, IDD5: 230,
		VDD: 1.8,
		TCK: 3.0, TRC: 55, TRAS: 40, TRFC: 105, TREF: 7812.5,
		BurstLen: 8, // x4 devices need BL8 to fill a 64 B line from 36 devices... see memctrl
	}
}

// Micron512MbX8 is a DDR2-667 512 Mb x8 device (ARCC config, Table 7.1).
// x8 devices draw slightly more burst current than x4 parts.
func Micron512MbX8() DeviceParams {
	return DeviceParams{
		Name: "MT47H64M8-3 (512Mb x8 DDR2-667)",
		IDD0: 90, IDD2P: 7, IDD2N: 40, IDD3N: 55, IDD3P: 25,
		IDD4R: 125, IDD4W: 135, IDD5: 230,
		VDD: 1.8,
		TCK: 3.0, TRC: 55, TRAS: 40, TRFC: 105, TREF: 7812.5,
		BurstLen: 4,
	}
}

// ActivateEnergy returns the energy in nanojoules of one activate+precharge
// pair on one device: E = VDD * (IDD0 - IDD3N*tRAS/tRC - IDD2N*(tRC-tRAS)/tRC) * tRC,
// the Micron power-calculator formulation of ACT/PRE power net of standby.
func (p DeviceParams) ActivateEnergy() float64 {
	net := p.IDD0 - (p.IDD3N*p.TRAS+p.IDD2N*(p.TRC-p.TRAS))/p.TRC
	return p.VDD * net * p.TRC * 1e-3 // mA * ns * V = pJ; /1e3 -> nJ
}

// ReadBurstEnergy returns the energy in nanojoules of one read burst of
// nBeats beats on one device, net of active standby.
func (p DeviceParams) ReadBurstEnergy(nBeats int) float64 {
	dur := float64(nBeats) / 2 * p.TCK // DDR: two beats per clock
	return p.VDD * (p.IDD4R - p.IDD3N) * dur * 1e-3
}

// WriteBurstEnergy returns the energy in nanojoules of one write burst of
// nBeats beats on one device, net of active standby.
func (p DeviceParams) WriteBurstEnergy(nBeats int) float64 {
	dur := float64(nBeats) / 2 * p.TCK
	return p.VDD * (p.IDD4W - p.IDD3N) * dur * 1e-3
}

// BackgroundPower returns the standby power in milliwatts of one device,
// given the fraction of time any bank is active and the fraction of idle
// time spent in power-down. Refresh power is folded in.
func (p DeviceParams) BackgroundPower(activeFraction, powerDownFraction float64) float64 {
	if activeFraction < 0 || activeFraction > 1 || powerDownFraction < 0 || powerDownFraction > 1 {
		panic("power: fractions must be within [0, 1]")
	}
	idle := 1 - activeFraction
	standby := activeFraction*p.IDD3N +
		idle*(powerDownFraction*p.IDD2P+(1-powerDownFraction)*p.IDD2N)
	refresh := (p.IDD5 - p.IDD2N) * p.TRFC / p.TREF
	return p.VDD * (standby + refresh)
}
