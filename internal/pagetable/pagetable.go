// Package pagetable models the one extension ARCC makes to the page table
// and TLB (§4.2.1): a per-physical-page chipkill-strength flag. Pages start
// in the strongest mode at boot; the first full memory scrub relaxes every
// fault-free page, and later scrubs upgrade pages in which faults are
// detected.
package pagetable

import "fmt"

// Mode is the chipkill-correct strength a physical page operates in.
type Mode int

const (
	// Relaxed: two check symbols per codeword; 64 B lines served by one
	// channel (18 devices). The low-power state.
	Relaxed Mode = iota
	// Upgraded: four check symbols per codeword; 128 B lines served by two
	// channels in lockstep (36 devices).
	Upgraded
	// Upgraded8: eight check symbols per codeword across four channels —
	// the §5.1 second upgrade level for pages that develop a second fault.
	Upgraded8
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case Relaxed:
		return "relaxed"
	case Upgraded:
		return "upgraded"
	case Upgraded8:
		return "upgraded8"
	}
	return fmt.Sprintf("Mode(%d)", int(m))
}

// Table tracks the strength flag of every physical page. The zero page
// count is rejected; all pages start Upgraded, matching the paper's boot
// sequence ("the operating system is started up in the upgraded mode for
// every page").
//
// The representation is sparse: a default mode plus an exception map of
// the pages that differ from it. Construction and RelaxAll are O(1) and a
// table over 2^28 pages (a terabyte of 4 KB pages) costs memory
// proportional to the pages whose mode has actually diverged — in a
// healthy memory, the handful of faulty upgraded pages.
type Table struct {
	numPages int
	def      Mode         // mode of every page not in except
	except   map[int]Mode // pages whose mode differs from def
	counts   [3]int
}

// New creates a table of numPages physical pages, all in Upgraded mode.
func New(numPages int) *Table {
	if numPages <= 0 {
		panic(fmt.Sprintf("pagetable: invalid page count %d", numPages))
	}
	t := &Table{numPages: numPages, def: Upgraded, except: make(map[int]Mode)}
	t.counts[Upgraded] = numPages
	return t
}

// Len returns the number of pages.
func (t *Table) Len() int { return t.numPages }

// Exceptions returns the number of pages whose mode differs from the
// current default — the table's resident footprint.
func (t *Table) Exceptions() int { return len(t.except) }

// Mode returns the current strength of page.
func (t *Table) Mode(page int) Mode {
	t.check(page)
	if m, ok := t.except[page]; ok {
		return m
	}
	return t.def
}

// SetMode changes the strength of page.
func (t *Table) SetMode(page int, m Mode) {
	t.check(page)
	if m < Relaxed || m > Upgraded8 {
		panic(fmt.Sprintf("pagetable: invalid mode %d", m))
	}
	old := t.Mode(page)
	if old == m {
		return
	}
	t.counts[old]--
	t.counts[m]++
	if m == t.def {
		delete(t.except, page)
	} else {
		t.except[page] = m
	}
}

// Upgrade raises the strength of page by one level (Relaxed -> Upgraded ->
// Upgraded8) and reports the new mode. Upgrading an Upgraded8 page is a
// no-op: there is no stronger level.
func (t *Table) Upgrade(page int) Mode {
	t.check(page)
	switch t.Mode(page) {
	case Relaxed:
		t.SetMode(page, Upgraded)
	case Upgraded:
		t.SetMode(page, Upgraded8)
	}
	return t.Mode(page)
}

// RelaxAll sets every page to Relaxed — the action of the first boot-time
// scrub on a fault-free memory. O(1): it flips the default and drops the
// exceptions.
func (t *Table) RelaxAll() {
	t.def = Relaxed
	clear(t.except)
	t.counts = [3]int{}
	t.counts[Relaxed] = t.numPages
}

// Count returns the number of pages currently in mode m.
func (t *Table) Count(m Mode) int {
	if m < Relaxed || m > Upgraded8 {
		panic(fmt.Sprintf("pagetable: invalid mode %d", m))
	}
	return t.counts[m]
}

// UpgradedFraction returns the fraction of pages above Relaxed mode.
func (t *Table) UpgradedFraction() float64 {
	return float64(t.counts[Upgraded]+t.counts[Upgraded8]) / float64(t.numPages)
}

func (t *Table) check(page int) {
	if page < 0 || page >= t.numPages {
		panic(fmt.Sprintf("pagetable: page %d outside [0, %d)", page, t.numPages))
	}
}
