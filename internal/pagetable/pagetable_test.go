package pagetable

import (
	"math/rand"
	"testing"
)

func TestNewStartsUpgraded(t *testing.T) {
	tbl := New(100)
	if tbl.Len() != 100 {
		t.Fatalf("Len = %d", tbl.Len())
	}
	for i := 0; i < 100; i++ {
		if tbl.Mode(i) != Upgraded {
			t.Fatalf("page %d starts in %v, want upgraded (boot state)", i, tbl.Mode(i))
		}
	}
	if tbl.Count(Upgraded) != 100 || tbl.Count(Relaxed) != 0 {
		t.Fatal("counts wrong after New")
	}
}

func TestNewPanicsOnZeroPages(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(0) did not panic")
		}
	}()
	New(0)
}

func TestRelaxAllThenUpgrade(t *testing.T) {
	tbl := New(10)
	tbl.RelaxAll()
	if tbl.Count(Relaxed) != 10 || tbl.UpgradedFraction() != 0 {
		t.Fatal("RelaxAll did not relax everything")
	}
	if got := tbl.Upgrade(3); got != Upgraded {
		t.Fatalf("Upgrade returned %v, want upgraded", got)
	}
	if tbl.Mode(3) != Upgraded || tbl.Count(Upgraded) != 1 || tbl.Count(Relaxed) != 9 {
		t.Fatal("counts wrong after one upgrade")
	}
	if f := tbl.UpgradedFraction(); f != 0.1 {
		t.Fatalf("UpgradedFraction = %v, want 0.1", f)
	}
}

func TestUpgradeLevels(t *testing.T) {
	tbl := New(4)
	tbl.RelaxAll()
	if got := tbl.Upgrade(0); got != Upgraded {
		t.Fatalf("first upgrade -> %v", got)
	}
	if got := tbl.Upgrade(0); got != Upgraded8 {
		t.Fatalf("second upgrade -> %v", got)
	}
	if got := tbl.Upgrade(0); got != Upgraded8 {
		t.Fatalf("third upgrade -> %v, want to stay at upgraded8", got)
	}
	if tbl.Count(Upgraded8) != 1 {
		t.Fatal("upgraded8 count wrong")
	}
}

func TestSetModeIdempotent(t *testing.T) {
	tbl := New(5)
	tbl.SetMode(2, Upgraded)
	tbl.SetMode(2, Upgraded)
	if tbl.Count(Upgraded) != 5 {
		t.Fatalf("count drifted on idempotent SetMode: %d", tbl.Count(Upgraded))
	}
}

func TestCountsAlwaysSumToLen(t *testing.T) {
	tbl := New(64)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 10000; i++ {
		page := rng.Intn(64)
		switch rng.Intn(3) {
		case 0:
			tbl.SetMode(page, Mode(rng.Intn(3)))
		case 1:
			tbl.Upgrade(page)
		case 2:
			if rng.Intn(100) == 0 {
				tbl.RelaxAll()
			}
		}
		if got := tbl.Count(Relaxed) + tbl.Count(Upgraded) + tbl.Count(Upgraded8); got != 64 {
			t.Fatalf("iteration %d: counts sum to %d, want 64", i, got)
		}
	}
}

func TestPanicsOnBadArguments(t *testing.T) {
	tbl := New(4)
	for name, f := range map[string]func(){
		"Mode out of range":  func() { tbl.Mode(4) },
		"SetMode page range": func() { tbl.SetMode(-1, Relaxed) },
		"SetMode bad mode":   func() { tbl.SetMode(0, Mode(7)) },
		"Count bad mode":     func() { tbl.Count(Mode(-1)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			f()
		}()
	}
}

func TestModeString(t *testing.T) {
	if Relaxed.String() != "relaxed" || Upgraded.String() != "upgraded" || Upgraded8.String() != "upgraded8" {
		t.Fatal("mode strings wrong")
	}
	if Mode(9).String() == "" {
		t.Fatal("unknown mode must still print")
	}
}

func TestTLBHitMiss(t *testing.T) {
	tbl := New(100)
	tbl.RelaxAll()
	tlb := NewTLB(tbl, 4)
	if got := tlb.Lookup(7); got != Relaxed {
		t.Fatalf("Lookup = %v", got)
	}
	hits, misses := tlb.Stats()
	if hits != 0 || misses != 1 {
		t.Fatalf("stats after first lookup: %d/%d", hits, misses)
	}
	tlb.Lookup(7)
	hits, misses = tlb.Stats()
	if hits != 1 || misses != 1 {
		t.Fatalf("stats after repeat lookup: %d/%d", hits, misses)
	}
}

func TestTLBCachesStaleModeUntilInvalidate(t *testing.T) {
	// The TLB deliberately caches the flag; the scrubber must invalidate
	// after changing a page's mode. This test pins that contract.
	tbl := New(10)
	tbl.RelaxAll()
	tlb := NewTLB(tbl, 4)
	if tlb.Lookup(3) != Relaxed {
		t.Fatal("initial lookup")
	}
	tbl.SetMode(3, Upgraded)
	if tlb.Lookup(3) != Relaxed {
		t.Fatal("TLB should still serve the cached (stale) flag")
	}
	tlb.Invalidate(3)
	if tlb.Lookup(3) != Upgraded {
		t.Fatal("after invalidate, TLB must refetch the new mode")
	}
}

func TestTLBLRUEviction(t *testing.T) {
	tbl := New(10)
	tbl.RelaxAll()
	tlb := NewTLB(tbl, 2)
	tlb.Lookup(0) // miss
	tlb.Lookup(1) // miss
	tlb.Lookup(0) // hit, makes 1 the LRU
	tlb.Lookup(2) // miss, evicts 1
	tlb.Lookup(0) // must still hit
	hits, misses := tlb.Stats()
	if hits != 2 || misses != 3 {
		t.Fatalf("stats %d/%d, want 2 hits / 3 misses", hits, misses)
	}
	tlb.Lookup(1) // must miss again (was evicted)
	_, misses = tlb.Stats()
	if misses != 4 {
		t.Fatalf("misses = %d, want 4", misses)
	}
}

func TestTLBInvalidateAll(t *testing.T) {
	tbl := New(10)
	tlb := NewTLB(tbl, 8)
	for i := 0; i < 5; i++ {
		tlb.Lookup(i)
	}
	tlb.InvalidateAll()
	tlb.Lookup(0)
	hits, _ := tlb.Stats()
	if hits != 0 {
		t.Fatal("lookup after InvalidateAll should miss")
	}
}

func TestTLBPanicsOnBadCapacity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewTLB(_, 0) did not panic")
		}
	}()
	NewTLB(New(1), 0)
}
