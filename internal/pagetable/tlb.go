package pagetable

import "fmt"

// TLB is a small fully-associative translation cache that carries the
// strength flag alongside each translation (§4.2.1: "each physical page
// entry and the corresponding TLB entry is modified to contain an
// additional 1-bit flag"). LRU replacement. The model's purpose is to show
// that mode lookups stay off the page-table critical path, so it tracks
// hit/miss statistics.
type TLB struct {
	table    *Table
	capacity int
	entries  map[int]*tlbEntry
	clock    int64

	hits, misses int64
}

type tlbEntry struct {
	mode    Mode
	lastUse int64
}

// NewTLB creates a TLB over table with the given entry capacity.
func NewTLB(table *Table, capacity int) *TLB {
	if capacity <= 0 {
		panic(fmt.Sprintf("pagetable: invalid TLB capacity %d", capacity))
	}
	return &TLB{table: table, capacity: capacity, entries: make(map[int]*tlbEntry, capacity)}
}

// Lookup returns the strength flag for page, filling the TLB on a miss.
func (t *TLB) Lookup(page int) Mode {
	t.clock++
	if e, ok := t.entries[page]; ok {
		t.hits++
		e.lastUse = t.clock
		return e.mode
	}
	t.misses++
	mode := t.table.Mode(page)
	if len(t.entries) >= t.capacity {
		t.evictLRU()
	}
	t.entries[page] = &tlbEntry{mode: mode, lastUse: t.clock}
	return mode
}

// Invalidate drops the entry for page, if cached. The scrubber invalidates
// entries for pages whose mode it changes; a real system would shoot down
// remote TLBs the same way.
func (t *TLB) Invalidate(page int) {
	delete(t.entries, page)
}

// InvalidateAll empties the TLB (end-of-scrub global shootdown).
func (t *TLB) InvalidateAll() {
	t.entries = make(map[int]*tlbEntry, t.capacity)
}

// Stats returns hit and miss counts.
func (t *TLB) Stats() (hits, misses int64) { return t.hits, t.misses }

func (t *TLB) evictLRU() {
	var victim int
	var oldest int64 = 1<<63 - 1
	for page, e := range t.entries {
		if e.lastUse < oldest {
			oldest = e.lastUse
			victim = page
		}
	}
	delete(t.entries, victim)
}
