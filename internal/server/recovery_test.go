package server_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"arcc/internal/faultfs"
	"arcc/internal/server"
)

// startServer is newTestServer without the automatic cleanup: restart
// tests stop and re-create servers on the same state dir explicitly.
func startServer(t *testing.T, opts server.Options) (*server.Server, *httptest.Server) {
	t.Helper()
	svc, err := server.New(opts)
	if err != nil {
		t.Fatalf("server.New: %v", err)
	}
	return svc, httptest.NewServer(svc.Handler())
}

func stopServer(t *testing.T, svc *server.Server, ts *httptest.Server) {
	t.Helper()
	ts.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := svc.Shutdown(ctx); err != nil {
		t.Errorf("shutdown: %v", err)
	}
}

func del(t *testing.T, ts *httptest.Server, id string) server.JobStatus {
	t.Helper()
	req, err := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+id, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("DELETE %s: %v", id, err)
	}
	defer resp.Body.Close()
	var st server.JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("decoding cancel response: %v", err)
	}
	return st
}

func healthz(t *testing.T, ts *httptest.Server) map[string]any {
	t.Helper()
	_, b := get(t, ts.URL+"/v1/healthz")
	out := map[string]any{}
	if err := json.Unmarshal(b, &out); err != nil {
		t.Fatalf("decoding healthz: %v", err)
	}
	return out
}

func TestRestartRestoresCacheAndJobs(t *testing.T) {
	dir := t.TempDir()
	opts := server.Options{Workers: 1, StateDir: dir, Logf: t.Logf}

	svc1, ts1 := startServer(t, opts)
	_, st := post(t, ts1, fmt.Sprintf(`{"scenario": %s, "seed": 5}`, tinyScenario))
	waitState(t, ts1, st.ID, server.StateDone)
	code, want := get(t, ts1.URL+"/v1/jobs/"+st.ID+"/result")
	if code != http.StatusOK {
		t.Fatalf("result before restart: HTTP %d", code)
	}
	stopServer(t, svc1, ts1)

	svc2, ts2 := startServer(t, opts)
	defer stopServer(t, svc2, ts2)

	// The finished job survives the restart with its exact result bytes.
	got2 := getStatus(t, ts2, st.ID)
	if got2.State != server.StateDone {
		t.Fatalf("job after restart: %q, want done", got2.State)
	}
	code, got := get(t, ts2.URL+"/v1/jobs/"+st.ID+"/result")
	if code != http.StatusOK || !bytes.Equal(got, want) {
		t.Fatalf("result after restart: HTTP %d, bytes equal %v", code, bytes.Equal(got, want))
	}
	// An identical resubmission is a cache hit served from the restored
	// cache — no re-run — and job ids keep counting from where they left.
	code, st2 := post(t, ts2, fmt.Sprintf(`{"scenario": %s, "seed": 5}`, tinyScenario))
	if code != http.StatusCreated || !st2.Cached {
		t.Fatalf("resubmit after restart: HTTP %d cached=%v, want 201 from cache", code, st2.Cached)
	}
	if st2.ID != "job-2" {
		t.Fatalf("resubmitted job id %s, want job-2 (sequence restored)", st2.ID)
	}
	if n := svc2.Metrics().JobsRun; n != 0 {
		t.Fatalf("restarted server ran %d jobs, want 0 (everything served from restored state)", n)
	}
}

func TestCrashMidSweepResumesByteIdentical(t *testing.T) {
	const scenario = `{"name":"resume","trials":300000}`
	dir := t.TempDir()
	fs := faultfs.Wrap(faultfs.OS())
	opts := server.Options{
		Workers:               1,
		StateDir:              dir,
		FS:                    fs,
		CheckpointEveryShards: 200,
		CheckpointPeriod:      time.Hour, // cadence purely shard-driven
		Logf:                  t.Logf,
	}
	svc1, ts1 := startServer(t, opts)

	// Force an abrupt stop the moment the first checkpoint lands: Shutdown
	// with an expired context cancels every job context immediately, which
	// is the in-process analogue of a crash — except the engine still gets
	// to flush its final snapshot, exercising the Shutdown-races-
	// checkpoint-write window under the race detector.
	crashed := make(chan struct{})
	var once sync.Once
	fs.SetHook(func(op faultfs.Op, path string) {
		if op == faultfs.OpRename && strings.Contains(path, "checkpoints") {
			once.Do(func() {
				go func() {
					ctx, cancel := context.WithCancel(context.Background())
					cancel()
					svc1.Shutdown(ctx)
					close(crashed)
				}()
			})
		}
	})

	_, st := post(t, ts1, fmt.Sprintf(`{"scenario": %s, "seed": 9, "parallel": 1}`, scenario))
	select {
	case <-crashed:
	case <-time.After(60 * time.Second):
		t.Fatal("the job never wrote a checkpoint")
	}
	got := getStatus(t, ts1, st.ID)
	if got.State != server.StateCanceled {
		t.Fatalf("interrupted job: %q, want canceled in the dying process", got.State)
	}
	ts1.Close()
	fs.SetHook(nil)

	svc2, ts2 := startServer(t, opts)
	defer stopServer(t, svc2, ts2)
	if n := svc2.Metrics().JobsRecovered; n != 1 {
		t.Fatalf("recovered %d jobs, want 1", n)
	}
	final := waitState(t, ts2, st.ID, server.StateDone)
	if !final.Recovered || !final.Resumed {
		t.Fatalf("finished job recovered=%v resumed=%v, want both true", final.Recovered, final.Resumed)
	}
	code, got2 := get(t, ts2.URL+"/v1/jobs/"+st.ID+"/result")
	if code != http.StatusOK {
		t.Fatalf("resumed result: HTTP %d: %s", code, got2)
	}
	want := cliRender(t, scenario, "json", 9, 0, 1, false)
	if !bytes.Equal(got2, want) {
		t.Errorf("resumed report differs from an uninterrupted run:\n--- resumed ---\n%s\n--- uninterrupted ---\n%s", got2, want)
	}
}

func TestServerToleratesTornJournalTail(t *testing.T) {
	dir := t.TempDir()
	opts := server.Options{Workers: 1, StateDir: dir, Logf: t.Logf}

	svc1, ts1 := startServer(t, opts)
	_, st := post(t, ts1, fmt.Sprintf(`{"scenario": %s, "seed": 3}`, tinyScenario))
	waitState(t, ts1, st.ID, server.StateDone)
	stopServer(t, svc1, ts1)

	// A crash mid-append tears the final journal line.
	f, err := os.OpenFile(filepath.Join(dir, "journal.jsonl"), os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"op":"submit","id":"job-99","ke`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	svc2, ts2 := startServer(t, opts)
	defer stopServer(t, svc2, ts2)
	if got := getStatus(t, ts2, st.ID); got.State != server.StateDone {
		t.Fatalf("job after torn-tail restart: %q, want done", got.State)
	}
	if code, _ := get(t, ts2.URL+"/v1/jobs/job-99"); code != http.StatusNotFound {
		t.Fatalf("torn job visible after restart: HTTP %d, want 404", code)
	}
	if code, st2 := post(t, ts2, fmt.Sprintf(`{"scenario": %s, "seed": 3}`, tinyScenario)); code != http.StatusCreated || !st2.Cached {
		t.Fatalf("resubmit after torn-tail restart: HTTP %d cached=%v, want a cache hit", code, st2.Cached)
	}
}

func TestCheckpointWriteFaultsDoNotFailJob(t *testing.T) {
	const scenario = `{"name":"faulty","trials":100000}`
	fs := faultfs.Wrap(faultfs.OS())
	// Every checkpoint write fails at creation; the sweep must not care.
	fs.AddRule(faultfs.Rule{Op: faultfs.OpCreate, PathContains: "checkpoints"})
	_, ts := newTestServer(t, server.Options{
		Workers:               1,
		StateDir:              t.TempDir(),
		FS:                    fs,
		CheckpointEveryShards: 50,
		CheckpointPeriod:      time.Hour,
		Logf:                  t.Logf,
	})
	_, st := post(t, ts, fmt.Sprintf(`{"scenario": %s, "seed": 4, "parallel": 1}`, scenario))
	waitState(t, ts, st.ID, server.StateDone)
	code, got := get(t, ts.URL+"/v1/jobs/"+st.ID+"/result")
	if code != http.StatusOK {
		t.Fatalf("result with checkpoint faults: HTTP %d", code)
	}
	if want := cliRender(t, scenario, "json", 4, 0, 1, false); !bytes.Equal(got, want) {
		t.Error("checkpoint write faults changed the report bytes")
	}
}

func TestCoalesceIdenticalInflightSharesOneRun(t *testing.T) {
	svc, ts := newTestServer(t, server.Options{Workers: 1})

	// One worker: the blocker occupies it, so job A sits queued and the
	// identical submissions B and C must attach to A, not run or cache-hit.
	_, blocker := post(t, ts, fmt.Sprintf(`{"scenario": %s, "parallel": 1}`, bigScenario))
	waitState(t, ts, blocker.ID, server.StateRunning)

	body := fmt.Sprintf(`{"scenario": %s, "seed": 6}`, tinyScenario)
	_, a := post(t, ts, body)
	codeB, b := post(t, ts, body)
	if codeB != http.StatusAccepted || !b.Coalesced {
		t.Fatalf("duplicate submit: HTTP %d coalesced=%v, want 202 attached to %s", codeB, b.Coalesced, a.ID)
	}
	// Different parallelism, same result identity: still coalesces.
	_, c := post(t, ts, fmt.Sprintf(`{"scenario": %s, "seed": 6, "parallel": 2}`, tinyScenario))
	if !c.Coalesced {
		t.Fatal("parallel-only variant did not coalesce")
	}

	del(t, ts, blocker.ID)
	waitState(t, ts, a.ID, server.StateDone)
	waitState(t, ts, b.ID, server.StateDone)
	waitState(t, ts, c.ID, server.StateDone)

	_, wantA := get(t, ts.URL+"/v1/jobs/"+a.ID+"/result")
	_, gotB := get(t, ts.URL+"/v1/jobs/"+b.ID+"/result")
	if !bytes.Equal(wantA, gotB) {
		t.Error("coalesced follower's report differs from the primary's")
	}
	_, gotC := get(t, ts.URL+"/v1/jobs/"+c.ID+"/result")
	if !bytes.Contains(gotC, []byte(`"parallel": 2`)) {
		t.Errorf("follower with parallel 2 kept the primary's meta:\n%s", gotC)
	}
	m := svc.Metrics()
	if m.JobsCoalesced != 2 {
		t.Errorf("JobsCoalesced = %d, want 2", m.JobsCoalesced)
	}
	// The blocker ran (and was canceled); A ran; B and C did not.
	if m.JobsRun != 2 {
		t.Errorf("JobsRun = %d, want 2 (blocker + primary only)", m.JobsRun)
	}
	h := healthz(t, ts)
	if h["jobs_coalesced"].(float64) != 2 {
		t.Errorf("healthz jobs_coalesced = %v, want 2", h["jobs_coalesced"])
	}
}

func TestCancelSemanticsWithCoalescedJobs(t *testing.T) {
	_, ts := newTestServer(t, server.Options{Workers: 1})
	_, blocker := post(t, ts, fmt.Sprintf(`{"scenario": %s, "parallel": 1}`, bigScenario))
	waitState(t, ts, blocker.ID, server.StateRunning)

	body := fmt.Sprintf(`{"scenario": %s, "seed": 8}`, tinyScenario)
	_, a := post(t, ts, body)
	_, b := post(t, ts, body)
	_, c := post(t, ts, body)
	if !b.Coalesced || !c.Coalesced {
		t.Fatalf("followers did not coalesce: b=%v c=%v", b.Coalesced, c.Coalesced)
	}

	// Canceling a follower detaches it without touching the primary.
	if st := del(t, ts, c.ID); st.State != server.StateCanceled {
		t.Fatalf("canceled follower state %q", st.State)
	}
	if st := getStatus(t, ts, a.ID); st.State != server.StateQueued {
		t.Fatalf("primary after follower cancel: %q, want still queued", st.State)
	}
	// Canceling the primary cancels the jobs coalesced onto it.
	if st := del(t, ts, a.ID); st.State != server.StateCanceled {
		t.Fatalf("canceled primary state %q", st.State)
	}
	if st := getStatus(t, ts, b.ID); st.State != server.StateCanceled {
		t.Fatalf("follower after primary cancel: %q, want canceled", st.State)
	}
	del(t, ts, blocker.ID)
}

func TestMaxJobDurationFailsRunawayJob(t *testing.T) {
	_, ts := newTestServer(t, server.Options{
		Workers:        1,
		MaxJobDuration: 100 * time.Millisecond,
	})
	// A million serial trials run ~1s, far past the 100ms cap.
	_, st := post(t, ts, fmt.Sprintf(`{"scenario": %s, "parallel": 1}`, bigScenario))
	final := waitState(t, ts, st.ID, server.StateFailed)
	if !strings.Contains(final.Error, "max duration") {
		t.Fatalf("timeout failure reads %q, want a max-duration explanation", final.Error)
	}
	if code, _ := get(t, ts.URL+"/v1/jobs/"+st.ID+"/result"); code != http.StatusInternalServerError {
		t.Fatalf("result of a timed-out job: HTTP %d, want 500", code)
	}
}
