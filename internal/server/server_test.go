package server_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"arcc/internal/exhibit"
	"arcc/internal/experiments"
	"arcc/internal/server"
	"arcc/internal/workload"
)

// tinyScenario is a sweep small enough for unit tests: 64 Monte Carlo
// channels over 2 years, no simulator mixes.
const tinyScenario = `{"name":"tiny","ranks":1,"years":2,"trials":64}`

// bigScenario is a sweep long enough to cancel mid-run: a million
// channels over 7 years. The inflated rate factor makes every channel
// sample dozens of arrivals, so the job cannot finish before the test
// gets its cancel/coalesce/crash in — at field rates a million mostly
// empty channels complete in well under a second on a fast machine.
const bigScenario = `{"name":"big","trials":1000000,"rate_factor":500}`

func newTestServer(t *testing.T, opts server.Options) (*server.Server, *httptest.Server) {
	t.Helper()
	svc, err := server.New(opts)
	if err != nil {
		t.Fatalf("server.New: %v", err)
	}
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := svc.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	})
	return svc, ts
}

func post(t *testing.T, ts *httptest.Server, body string) (int, server.JobStatus) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST /v1/jobs: %v", err)
	}
	defer resp.Body.Close()
	var st server.JobStatus
	if resp.StatusCode == http.StatusAccepted || resp.StatusCode == http.StatusCreated {
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatalf("decoding job status: %v", err)
		}
	}
	return resp.StatusCode, st
}

func get(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("reading %s: %v", url, err)
	}
	return resp.StatusCode, b
}

func getStatus(t *testing.T, ts *httptest.Server, id string) server.JobStatus {
	t.Helper()
	code, b := get(t, ts.URL+"/v1/jobs/"+id)
	if code != http.StatusOK {
		t.Fatalf("status %s: HTTP %d: %s", id, code, b)
	}
	var st server.JobStatus
	if err := json.Unmarshal(b, &st); err != nil {
		t.Fatalf("decoding status: %v", err)
	}
	return st
}

func waitState(t *testing.T, ts *httptest.Server, id string, want ...server.State) server.JobStatus {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		st := getStatus(t, ts, id)
		for _, w := range want {
			if st.State == w {
				return st
			}
		}
		switch st.State {
		case server.StateDone, server.StateFailed, server.StateCanceled:
			t.Fatalf("job %s reached terminal state %q (error %q), want one of %v", id, st.State, st.Error, want)
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s never reached %v", id, want)
	return server.JobStatus{}
}

// cliRender reproduces exactly what `arcc-experiments -scenario f.json
// -format json` emits for the given scenario and knobs: the same exhibit
// construction, the same Config, the same renderer.
func cliRender(t *testing.T, scenarioJSON string, format string, seed int64, trials, parallel int, quick bool) []byte {
	t.Helper()
	sc, err := exhibit.ParseScenario(strings.NewReader(scenarioJSON))
	if err != nil {
		t.Fatalf("parsing scenario: %v", err)
	}
	ex, err := experiments.NewScenarioExhibit(sc)
	if err != nil {
		t.Fatalf("building scenario exhibit: %v", err)
	}
	cfg := exhibit.NewConfig(
		exhibit.WithQuick(quick),
		exhibit.WithSeed(seed),
		exhibit.WithParallel(parallel),
		exhibit.WithTrials(trials),
	)
	report, err := ex.Run(context.Background(), cfg)
	if err != nil {
		t.Fatalf("running scenario: %v", err)
	}
	renderer, err := exhibit.RendererFor(format)
	if err != nil {
		t.Fatalf("renderer: %v", err)
	}
	var buf bytes.Buffer
	if err := renderer.Render(&buf, report); err != nil {
		t.Fatalf("rendering: %v", err)
	}
	return buf.Bytes()
}

func TestSubmitStatusResultRoundTrip(t *testing.T) {
	_, ts := newTestServer(t, server.Options{Workers: 2})

	body := fmt.Sprintf(`{"scenario": %s, "seed": 7, "parallel": 2, "format": "json"}`, tinyScenario)
	code, st := post(t, ts, body)
	if code != http.StatusAccepted && code != http.StatusCreated {
		t.Fatalf("submit: HTTP %d", code)
	}
	if st.Exhibit != "tiny" {
		t.Fatalf("job exhibit %q, want tiny", st.Exhibit)
	}
	waitState(t, ts, st.ID, server.StateDone)

	rcode, got := get(t, ts.URL+"/v1/jobs/"+st.ID+"/result")
	if rcode != http.StatusOK {
		t.Fatalf("result: HTTP %d: %s", rcode, got)
	}
	want := cliRender(t, tinyScenario, "json", 7, 0, 2, false)
	if !bytes.Equal(got, want) {
		t.Fatalf("HTTP result differs from CLI -format json output:\n got: %s\nwant: %s", got, want)
	}

	// The ?format= override streams the same report through another
	// renderer, byte-identical to the CLI's -format csv.
	rcode, gotCSV := get(t, ts.URL+"/v1/jobs/"+st.ID+"/result?format=csv")
	if rcode != http.StatusOK {
		t.Fatalf("csv result: HTTP %d", rcode)
	}
	if wantCSV := cliRender(t, tinyScenario, "csv", 7, 0, 2, false); !bytes.Equal(gotCSV, wantCSV) {
		t.Fatalf("csv result differs from CLI output:\n got: %s\nwant: %s", gotCSV, wantCSV)
	}
}

// TestNewAxisScenariosThroughServer submits one scenario per new PR-10
// family — DDR5 geometry with multi-tenant interference, correlated
// row/bank bursts, and trace replay — purely as JSON, and checks each
// result byte-identical to the CLI's rendering of the same scenario.
func TestNewAxisScenariosThroughServer(t *testing.T) {
	trace := filepath.Join(t.TempDir(), "core0.trc")
	f, err := os.Create(trace)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := workload.Record(f, workload.ByName("mesa").NewStream(7, 0), 2000); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	tracePath, err := json.Marshal(trace)
	if err != nil {
		t.Fatal(err)
	}

	families := map[string]string{
		"ddr5-tenants": `{"name":"ddr5-tenants","trials":64,"years":2,"mixes":[],
			"dram":"ddr5","width":8,
			"tenants":[{"benchmark":"mcf2006","footprint_lines":12288}],
			"shared_llc":true,"llc_bytes":2097152}`,
		"burst": `{"name":"burst","trials":64,"years":2,"mixes":[],
			"burst":{"row_prob":0.5,"row_mean":4,"row_max":16,"bank_prob":0.2,"bank_mean":3,"bank_max":8}}`,
		"trace-replay": fmt.Sprintf(`{"name":"trace-replay","trials":64,"years":2,"mixes":[],
			"dram":"ddr4","trace":%s}`, tracePath),
	}

	_, ts := newTestServer(t, server.Options{Workers: 2})
	for label, scenario := range families {
		code, st := post(t, ts, fmt.Sprintf(`{"scenario": %s, "seed": 7, "quick": true, "format": "json"}`, scenario))
		if code != http.StatusAccepted && code != http.StatusCreated {
			t.Fatalf("%s: submit HTTP %d", label, code)
		}
		waitState(t, ts, st.ID, server.StateDone)
		rcode, got := get(t, ts.URL+"/v1/jobs/"+st.ID+"/result")
		if rcode != http.StatusOK {
			t.Fatalf("%s: result HTTP %d: %s", label, rcode, got)
		}
		if want := cliRender(t, scenario, "json", 7, 0, 0, true); !bytes.Equal(got, want) {
			t.Fatalf("%s: HTTP result differs from CLI output:\n got: %s\nwant: %s", label, got, want)
		}
		switch label {
		case "ddr5-tenants":
			if !bytes.Contains(got, []byte(`"tenants"`)) {
				t.Fatalf("%s: result missing tenants row: %s", label, got)
			}
		case "trace-replay":
			if !bytes.Contains(got, []byte(`"trace"`)) {
				t.Fatalf("%s: result missing trace row: %s", label, got)
			}
		}
	}
}

func TestExhibitJobRoundTrip(t *testing.T) {
	_, ts := newTestServer(t, server.Options{Workers: 1})
	code, st := post(t, ts, `{"exhibit": "t7.1"}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d", code)
	}
	waitState(t, ts, st.ID, server.StateDone)
	rcode, body := get(t, ts.URL+"/v1/jobs/"+st.ID+"/result")
	if rcode != http.StatusOK {
		t.Fatalf("result: HTTP %d: %s", rcode, body)
	}
	var report struct {
		Exhibit string `json:"exhibit"`
		Meta    struct {
			Seed int64 `json:"seed"`
		} `json:"meta"`
	}
	if err := json.Unmarshal(body, &report); err != nil {
		t.Fatalf("result not JSON: %v", err)
	}
	if report.Exhibit != "t7.1" || report.Meta.Seed != 1 {
		t.Fatalf("unexpected report header: %+v", report)
	}
}

// TestScenarioAccelCIInResult: a scenario asking for rare-event
// acceleration and confidence intervals gets both back in the JSON
// result, and its cache identity is distinct from the plain sweep's.
func TestScenarioAccelCIInResult(t *testing.T) {
	svc, ts := newTestServer(t, server.Options{Workers: 1})

	const accelScenario = `{"name":"tiny","ranks":1,"years":2,"trials":64,"accel":"conditional","ci":true}`
	_, plain := post(t, ts, fmt.Sprintf(`{"scenario": %s, "seed": 5}`, tinyScenario))
	waitState(t, ts, plain.ID, server.StateDone)
	_, accel := post(t, ts, fmt.Sprintf(`{"scenario": %s, "seed": 5}`, accelScenario))
	waitState(t, ts, accel.ID, server.StateDone)
	if m := svc.Metrics(); m.JobsRun != 2 || m.CacheHits != 0 {
		t.Fatalf("accel scenario must not share the plain sweep's cache entry: %+v", m)
	}

	_, body := get(t, ts.URL+"/v1/jobs/"+accel.ID+"/result")
	var report struct {
		Data struct {
			Scenario struct {
				Accel string `json:"accel"`
				CI    bool   `json:"ci"`
			} `json:"Scenario"`
			FaultyFraction []float64
			FaultyCI       []float64
			OverheadCI     []float64
			OverheadESS    float64
		} `json:"data"`
	}
	if err := json.Unmarshal(body, &report); err != nil {
		t.Fatalf("result not JSON: %v\n%s", err, body)
	}
	d := report.Data
	if d.Scenario.Accel != "conditional" || !d.Scenario.CI {
		t.Fatalf("effective scenario lost the accel/ci request: %+v", d.Scenario)
	}
	if len(d.FaultyCI) != len(d.FaultyFraction) || len(d.OverheadCI) != len(d.FaultyFraction) {
		t.Fatalf("CI series missing or mis-sized: %d faulty, %d faulty CI, %d overhead CI",
			len(d.FaultyFraction), len(d.FaultyCI), len(d.OverheadCI))
	}
	if d.OverheadESS <= 0 || d.OverheadESS > 64 {
		t.Fatalf("ESS %v outside (0, trials]", d.OverheadESS)
	}

	_, pbody := get(t, ts.URL+"/v1/jobs/"+plain.ID+"/result")
	var preport struct {
		Data struct {
			FaultyCI []float64
		} `json:"data"`
	}
	if err := json.Unmarshal(pbody, &preport); err != nil {
		t.Fatalf("plain result not JSON: %v", err)
	}
	if preport.Data.FaultyCI != nil {
		t.Fatal("plain sweep should not carry CI series")
	}
}

func TestDuplicateSubmissionsHitCache(t *testing.T) {
	svc, ts := newTestServer(t, server.Options{Workers: 2})

	body := fmt.Sprintf(`{"scenario": %s, "seed": 3, "parallel": 1}`, tinyScenario)
	_, first := post(t, ts, body)
	waitState(t, ts, first.ID, server.StateDone)
	if m := svc.Metrics(); m.JobsRun != 1 || m.CacheHits != 0 {
		t.Fatalf("after first run: %+v", m)
	}

	code, second := post(t, ts, body)
	if code != http.StatusCreated {
		t.Fatalf("duplicate submit: HTTP %d, want 201 (cache hit)", code)
	}
	if second.State != server.StateDone || !second.Cached {
		t.Fatalf("duplicate job not served from cache: %+v", second)
	}
	if m := svc.Metrics(); m.JobsRun != 1 || m.CacheHits != 1 {
		t.Fatalf("after duplicate: %+v (want 1 run, 1 hit)", m)
	}
	_, a := get(t, ts.URL+"/v1/jobs/"+first.ID+"/result")
	_, b := get(t, ts.URL+"/v1/jobs/"+second.ID+"/result")
	if !bytes.Equal(a, b) {
		t.Fatalf("cached result differs from original:\n%s\nvs\n%s", a, b)
	}

	// A duplicate differing only in parallelism still hits the cache (the
	// engine contract makes parallelism result-invariant); the report's
	// meta is restamped with the new request's knobs.
	code, third := post(t, ts, fmt.Sprintf(`{"scenario": %s, "seed": 3, "parallel": 4}`, tinyScenario))
	if code != http.StatusCreated || !third.Cached {
		t.Fatalf("parallel-differing duplicate missed the cache: HTTP %d, %+v", code, third)
	}
	if m := svc.Metrics(); m.JobsRun != 1 || m.CacheHits != 2 {
		t.Fatalf("after third: %+v", m)
	}
	_, c := get(t, ts.URL+"/v1/jobs/"+third.ID+"/result")
	var report struct {
		Meta struct {
			Parallel int `json:"parallel"`
		} `json:"meta"`
	}
	if err := json.Unmarshal(c, &report); err != nil {
		t.Fatalf("third result not JSON: %v", err)
	}
	if report.Meta.Parallel != 4 {
		t.Fatalf("cached report meta not restamped: parallel %d, want 4", report.Meta.Parallel)
	}

	// A different seed is a different result identity: it must run.
	_, fourth := post(t, ts, fmt.Sprintf(`{"scenario": %s, "seed": 4}`, tinyScenario))
	waitState(t, ts, fourth.ID, server.StateDone)
	if m := svc.Metrics(); m.JobsRun != 2 || m.CacheHits != 2 {
		t.Fatalf("after seed change: %+v (want 2 runs)", m)
	}
}

func TestCancelMidRun(t *testing.T) {
	before := runtime.NumGoroutine()
	svc, ts := newTestServer(t, server.Options{Workers: 1})

	body := fmt.Sprintf(`{"scenario": %s, "parallel": 4}`, bigScenario)
	code, st := post(t, ts, body)
	if code != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d", code)
	}
	running := waitState(t, ts, st.ID, server.StateRunning)
	if running.Progress == nil {
		t.Fatalf("running status carries no progress: %+v", running)
	}

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+st.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("DELETE: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel: HTTP %d", resp.StatusCode)
	}

	// The engine stops within one shard; the job must go canceled well
	// before the million trials could complete.
	deadline := time.Now().Add(30 * time.Second)
	var final server.JobStatus
	for {
		final = getStatus(t, ts, st.ID)
		if final.State == server.StateCanceled {
			break
		}
		if final.State == server.StateDone || final.State == server.StateFailed {
			t.Fatalf("canceled job ended %q (error %q)", final.State, final.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job still %q long after cancel", final.State)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// A canceled job has no result.
	rcode, _ := get(t, ts.URL+"/v1/jobs/"+st.ID+"/result")
	if rcode != http.StatusGone {
		t.Fatalf("result of canceled job: HTTP %d, want 410", rcode)
	}
	if m := svc.Metrics(); m.CacheHits != 0 {
		t.Fatalf("canceled job touched the cache: %+v", m)
	}

	// No goroutine leaks: once the server shuts down, the worker pool and
	// every engine goroutine the canceled job spawned must exit.
	ts.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := svc.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	for end := time.Now().Add(10 * time.Second); ; {
		runtime.Gosched()
		if runtime.NumGoroutine() <= before {
			break
		}
		if time.Now().After(end) {
			t.Fatalf("goroutines leaked: %d before, %d after cancel+shutdown", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestRequestValidation(t *testing.T) {
	_, ts := newTestServer(t, server.Options{Workers: 1, MaxTrials: 1000})
	cases := []struct {
		name, body string
	}{
		{"empty", `{}`},
		{"both", fmt.Sprintf(`{"exhibit": "t7.1", "scenario": %s}`, tinyScenario)},
		{"unknown exhibit", `{"exhibit": "nope"}`},
		{"unknown field", `{"exhibit": "t7.1", "bogus": 1}`},
		{"negative trials", `{"exhibit": "t7.1", "trials": -1}`},
		{"oversized trials", `{"exhibit": "t7.1", "trials": 1001}`},
		{"negative parallel", `{"exhibit": "t7.1", "parallel": -2}`},
		{"oversized parallel", `{"exhibit": "t7.1", "parallel": 1000000}`},
		{"bad format", `{"exhibit": "t7.1", "format": "xml"}`},
		{"not json", `{"exhibit": `},
		{"trailing content", `{"exhibit": "t7.1"} {"exhibit": "t7.2"}`},
		{"invalid scenario geometry", `{"scenario": {"name": "x", "ranks": -1}}`},
		{"unknown scenario scheme", `{"scenario": {"name": "x", "scheme": "magic"}}`},
		{"unknown scenario mix", `{"scenario": {"name": "x", "mixes": ["MixNope"]}}`},
		{"unknown scenario fault type", `{"scenario": {"name": "x", "fit_overrides": {"cosmic": 1}}}`},
		{"nameless scenario", `{"scenario": {"trials": 10}}`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, _ := post(t, ts, tc.body)
			if code != http.StatusBadRequest {
				t.Fatalf("HTTP %d, want 400", code)
			}
		})
	}

	for _, url := range []string{"/v1/jobs/job-999", "/v1/jobs/job-999/result"} {
		if code, _ := get(t, ts.URL+url); code != http.StatusNotFound {
			t.Fatalf("GET %s: want 404", url)
		}
	}
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/job-999", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("DELETE unknown job: HTTP %d, want 404", resp.StatusCode)
	}
}

func TestHealthzAndExhibitListing(t *testing.T) {
	_, ts := newTestServer(t, server.Options{Workers: 1})
	code, body := get(t, ts.URL+"/v1/healthz")
	if code != http.StatusOK {
		t.Fatalf("healthz: HTTP %d", code)
	}
	var health struct {
		Status string `json:"status"`
	}
	if err := json.Unmarshal(body, &health); err != nil || health.Status != "ok" {
		t.Fatalf("healthz body %s (err %v)", body, err)
	}

	code, body = get(t, ts.URL+"/v1/exhibits")
	if code != http.StatusOK {
		t.Fatalf("exhibits: HTTP %d", code)
	}
	var infos []server.ExhibitInfo
	if err := json.Unmarshal(body, &infos); err != nil {
		t.Fatalf("exhibits body: %v", err)
	}
	found := false
	for _, e := range infos {
		if e.Name == "f3.1" {
			found = true
		}
	}
	if !found || len(infos) < 16 {
		t.Fatalf("registry listing incomplete (%d entries, f3.1 found %v)", len(infos), found)
	}
}

func TestResultWhileRunningIsNotReady(t *testing.T) {
	_, ts := newTestServer(t, server.Options{Workers: 1})
	_, st := post(t, ts, fmt.Sprintf(`{"scenario": %s}`, bigScenario))
	waitState(t, ts, st.ID, server.StateRunning)
	code, _ := get(t, ts.URL+"/v1/jobs/"+st.ID+"/result")
	if code != http.StatusAccepted {
		t.Fatalf("result while running: HTTP %d, want 202", code)
	}
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+st.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
}

func TestShutdownRejectsNewJobsAndCancelsUnderDeadline(t *testing.T) {
	svc, err := server.New(server.Options{Workers: 1})
	if err != nil {
		t.Fatalf("server.New: %v", err)
	}
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	_, st := post(t, ts, fmt.Sprintf(`{"scenario": %s}`, bigScenario))
	waitState(t, ts, st.ID, server.StateRunning)

	// A deadline far shorter than the million-trial sweep forces the
	// drain to cancel the in-flight job.
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := svc.Shutdown(ctx); err != context.DeadlineExceeded {
		t.Fatalf("shutdown error %v, want deadline exceeded", err)
	}
	if got := getStatus(t, ts, st.ID); got.State != server.StateCanceled {
		t.Fatalf("in-flight job after forced drain: %q, want canceled", got.State)
	}
	if code, _ := post(t, ts, `{"exhibit": "t7.1"}`); code != http.StatusServiceUnavailable {
		t.Fatalf("submit after shutdown: HTTP %d, want 503", code)
	}
	if code, _ := get(t, ts.URL+"/v1/healthz"); code != http.StatusServiceUnavailable {
		t.Fatalf("healthz after shutdown: HTTP %d, want 503", code)
	}
}

func TestQueueBoundRejectsOverload(t *testing.T) {
	svc, ts := newTestServer(t, server.Options{Workers: 1, QueueDepth: 1})

	// Occupy the single worker, fill the single queue slot, then overflow.
	_, running := post(t, ts, fmt.Sprintf(`{"scenario": %s}`, bigScenario))
	waitState(t, ts, running.ID, server.StateRunning)
	code1, queued := post(t, ts, fmt.Sprintf(`{"scenario": %s, "seed": 2}`, bigScenario))
	if code1 != http.StatusAccepted {
		t.Fatalf("queued submit: HTTP %d", code1)
	}
	code2, _ := post(t, ts, fmt.Sprintf(`{"scenario": %s, "seed": 3}`, bigScenario))
	if code2 != http.StatusServiceUnavailable {
		t.Fatalf("overflow submit: HTTP %d, want 503", code2)
	}

	// A rejected submission must leave the job table consistent: the
	// listing holds exactly the two registered jobs, and every row's
	// status endpoint answers (a dangling id would 500 here).
	lcode, lbody := get(t, ts.URL+"/v1/jobs")
	if lcode != http.StatusOK {
		t.Fatalf("list after overflow: HTTP %d: %s", lcode, lbody)
	}
	var listed []server.JobStatus
	if err := json.Unmarshal(lbody, &listed); err != nil {
		t.Fatalf("list body: %v", err)
	}
	if len(listed) != 2 {
		t.Fatalf("listing has %d jobs after a rejected submit, want 2: %s", len(listed), lbody)
	}
	for _, row := range listed {
		if row.ID != running.ID && row.ID != queued.ID {
			t.Fatalf("listing contains unexpected job %q", row.ID)
		}
		getStatus(t, ts, row.ID)
	}

	// Canceling the queued job must settle it without a worker.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+queued.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := getStatus(t, ts, queued.ID); got.State != server.StateCanceled {
		t.Fatalf("canceled queued job: %q", got.State)
	}
	// Unblock the worker for the cleanup shutdown.
	req, _ = http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+running.ID, nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	_ = svc
}

// Concurrent submissions against a full queue must never corrupt the job
// table: whatever mix of acceptances and 503s comes back, every listed
// job keeps answering its status endpoint. This is a regression test for
// a rollback race that left a dangling id in the listing order.
func TestConcurrentOverflowKeepsListingsConsistent(t *testing.T) {
	_, ts := newTestServer(t, server.Options{Workers: 1, QueueDepth: 1})

	_, running := post(t, ts, fmt.Sprintf(`{"scenario": %s}`, bigScenario))
	waitState(t, ts, running.ID, server.StateRunning)

	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			body := fmt.Sprintf(`{"scenario": %s, "seed": %d}`, bigScenario, seed+2)
			resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
			if err != nil {
				t.Errorf("concurrent POST: %v", err)
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusServiceUnavailable {
				t.Errorf("concurrent POST: HTTP %d", resp.StatusCode)
			}
		}(i)
	}
	wg.Wait()

	lcode, lbody := get(t, ts.URL+"/v1/jobs")
	if lcode != http.StatusOK {
		t.Fatalf("list after concurrent overflow: HTTP %d: %s", lcode, lbody)
	}
	var listed []server.JobStatus
	if err := json.Unmarshal(lbody, &listed); err != nil {
		t.Fatalf("list body: %v", err)
	}
	// The running job plus at most one queued job survived the stampede.
	if len(listed) < 1 || len(listed) > 2 {
		t.Fatalf("listing has %d jobs, want 1 or 2: %s", len(listed), lbody)
	}
	for _, row := range listed {
		getStatus(t, ts, row.ID)
		// Cancel everything so the cleanup shutdown drains quickly.
		req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+row.ID, nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
}

func TestOversizedBodyIs413(t *testing.T) {
	_, ts := newTestServer(t, server.Options{Workers: 1})
	big := `{"exhibit": "` + strings.Repeat("a", 1<<20) + `"}`
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(big))
	if err != nil {
		t.Fatalf("POST oversized body: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body: HTTP %d, want 413", resp.StatusCode)
	}
	var e struct {
		Error string `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
		t.Fatalf("413 body: %v", err)
	}
	if !strings.Contains(e.Error, "byte limit") {
		t.Fatalf("413 message %q does not name the limit", e.Error)
	}
}

func TestRetentionBoundsJobsAndCache(t *testing.T) {
	svc, ts := newTestServer(t, server.Options{Workers: 1, MaxFinishedJobs: 1, MaxCachedResults: 1})

	submit := func(seed int) server.JobStatus {
		t.Helper()
		code, st := post(t, ts, fmt.Sprintf(`{"scenario": %s, "seed": %d}`, tinyScenario, seed))
		if code != http.StatusAccepted && code != http.StatusCreated {
			t.Fatalf("submit seed %d: HTTP %d", seed, code)
		}
		waitState(t, ts, st.ID, server.StateDone)
		return st
	}
	first := submit(1)
	second := submit(2)
	// Registering a third job prunes terminal jobs past the bound of one:
	// the first (oldest terminal) is forgotten, the second survives.
	third := submit(3)
	if code, _ := get(t, ts.URL+"/v1/jobs/"+first.ID); code != http.StatusNotFound {
		t.Fatalf("pruned job %s: HTTP %d, want 404", first.ID, code)
	}
	getStatus(t, ts, third.ID)
	_, lbody := get(t, ts.URL+"/v1/jobs")
	var listed []server.JobStatus
	if err := json.Unmarshal(lbody, &listed); err != nil {
		t.Fatalf("list body: %v", err)
	}
	for _, row := range listed {
		if row.ID == first.ID {
			t.Fatalf("pruned job %s still listed: %s", first.ID, lbody)
		}
	}
	_ = second

	// The result cache holds one entry (FIFO): by now only seed 3 can be
	// cached, so resubmitting seed 1 must run again, not hit the cache.
	runsBefore := svc.Metrics().JobsRun
	submit(1)
	m := svc.Metrics()
	if m.JobsRun != runsBefore+1 {
		t.Fatalf("evicted entry served from cache: %+v (runs before %d)", m, runsBefore)
	}
	if m.CacheHits != 0 {
		t.Fatalf("unexpected cache hits under eviction: %+v", m)
	}
}
