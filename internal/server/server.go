// Package server implements the ARCC sweep service: a long-running HTTP
// front end over the exhibit registry. Clients submit exhibit or scenario
// jobs (POST /v1/jobs), poll their status and progress (GET /v1/jobs/{id}),
// stream the structured result in any registered format
// (GET /v1/jobs/{id}/result), and cancel mid-run (DELETE /v1/jobs/{id} —
// the engine's ErrCanceled plumbing stops within one shard).
//
// Jobs execute on a bounded worker pool; each worker runs one exhibit at
// a time under the server's base context, reusing the internal/mc
// sharding and pooled sim.Scratch machinery that already makes exhibit
// runs allocation-free and bit-identical at any parallelism. Because
// results depend only on (exhibit-or-scenario, seed, trials, quick) —
// never on the worker count — completed reports are kept in a
// content-addressed cache, and an identical resubmission is served
// without re-running (only the report's Meta is restamped with the new
// request's parameters).
//
// The package is panic-proof at its boundary: every request is validated
// before it can reach a library panic path (unknown exhibits, invalid
// scenarios, negative trial counts are HTTP 400), and both the HTTP
// handlers and the job runner convert any residual panic into an error
// response or a failed job instead of a dead process.
package server

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"arcc/internal/exhibit"
	"arcc/internal/mc"
)

// Options tunes the service; the zero value is usable.
type Options struct {
	// Workers bounds how many jobs execute concurrently; <= 0 means
	// GOMAXPROCS. Each job may itself fan out across Parallel engine
	// workers, so a small pool with parallel jobs already saturates the
	// machine.
	Workers int
	// QueueDepth bounds how many accepted jobs may wait for a worker;
	// <= 0 means DefaultQueueDepth. A full queue rejects submissions with
	// 503 rather than queueing unboundedly.
	QueueDepth int
	// MaxTrials caps the per-job Monte Carlo channel override; <= 0 means
	// DefaultMaxTrials. Requests above the cap are 400s.
	MaxTrials int
	// MaxCachedResults bounds the content-addressed result cache; <= 0
	// means DefaultMaxCachedResults. When the bound is hit the oldest
	// entry is evicted (FIFO), so a long-running service does not retain
	// every report it ever produced.
	MaxCachedResults int
	// MaxFinishedJobs bounds how many terminal (done/failed/canceled)
	// jobs stay in the job table; <= 0 means DefaultMaxFinishedJobs.
	// When a new submission pushes the count over the bound, the oldest
	// terminal jobs are forgotten: they disappear from listings and their
	// ids answer 404. Queued and running jobs are never pruned.
	MaxFinishedJobs int
}

// DefaultQueueDepth is the submission queue bound when Options.QueueDepth
// is zero.
const DefaultQueueDepth = 64

// DefaultMaxTrials is the per-job trial cap when Options.MaxTrials is
// zero: generous next to the paper's 10 000-channel sweeps, small enough
// that one request cannot wedge a worker for hours.
const DefaultMaxTrials = 1_000_000

// DefaultMaxCachedResults is the result-cache bound when
// Options.MaxCachedResults is zero.
const DefaultMaxCachedResults = 256

// DefaultMaxFinishedJobs is the terminal-job retention bound when
// Options.MaxFinishedJobs is zero.
const DefaultMaxFinishedJobs = 1024

// MaxParallel caps the per-job engine worker override.
const MaxParallel = 1024

func (o Options) workers() int {
	if o.Workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return o.Workers
}

func (o Options) queueDepth() int {
	if o.QueueDepth <= 0 {
		return DefaultQueueDepth
	}
	return o.QueueDepth
}

func (o Options) maxTrials() int {
	if o.MaxTrials <= 0 {
		return DefaultMaxTrials
	}
	return o.MaxTrials
}

func (o Options) maxCachedResults() int {
	if o.MaxCachedResults <= 0 {
		return DefaultMaxCachedResults
	}
	return o.MaxCachedResults
}

func (o Options) maxFinishedJobs() int {
	if o.MaxFinishedJobs <= 0 {
		return DefaultMaxFinishedJobs
	}
	return o.MaxFinishedJobs
}

// State is a job's lifecycle position. Transitions are
// queued → running → {done, failed, canceled}, with queued → canceled
// for jobs canceled before a worker picks them up; done/failed/canceled
// are terminal.
type State string

// The job states.
const (
	StateQueued   State = "queued"
	StateRunning  State = "running"
	StateDone     State = "done"
	StateFailed   State = "failed"
	StateCanceled State = "canceled"
)

// job is one submitted run and its outcome.
type job struct {
	id      string
	key     string // content-addressed result identity
	name    string // exhibit name, for status listings
	format  string // default render format for /result
	ex      exhibit.Exhibit
	cfg     exhibit.Config
	tracker *exhibit.Tracker
	ctx     context.Context
	cancel  context.CancelFunc
	created time.Time

	mu       sync.Mutex
	state    State
	err      error
	report   *exhibit.Report
	cached   bool
	started  time.Time
	finished time.Time
}

// Server owns the job table, the result cache, and the worker pool. Create
// one with New and serve its Handler; Shutdown drains it.
type Server struct {
	opts      Options
	baseCtx   context.Context
	cancelAll context.CancelFunc
	queue     chan *job
	wg        sync.WaitGroup

	mu         sync.Mutex
	jobs       map[string]*job
	order      []string // job ids in submission order, for listings
	cache      map[string]*exhibit.Report
	cacheOrder []string // cache keys in insertion order, for FIFO eviction
	closed     bool
	seq        uint64

	jobsRun   atomic.Int64
	cacheHits atomic.Int64
}

// Metrics is a snapshot of the server's run counters. JobsRun counts
// exhibits actually executed (cache hits do not run), CacheHits counts
// submissions served from the result cache.
type Metrics struct {
	JobsRun   int64
	CacheHits int64
}

// New starts a server with a running worker pool. Callers must Shutdown
// it to release the workers.
func New(opts Options) *Server {
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		opts:      opts,
		baseCtx:   ctx,
		cancelAll: cancel,
		queue:     make(chan *job, opts.queueDepth()),
		jobs:      map[string]*job{},
		cache:     map[string]*exhibit.Report{},
	}
	for i := 0; i < opts.workers(); i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

// Metrics returns the current run counters.
func (s *Server) Metrics() Metrics {
	return Metrics{JobsRun: s.jobsRun.Load(), CacheHits: s.cacheHits.Load()}
}

// Shutdown stops accepting jobs and drains the pool: queued and running
// jobs keep executing until they finish or ctx expires, at which point
// every job context is canceled (the engine stops within one shard) and
// the workers are awaited. It returns ctx.Err() when the deadline forced
// the cancel, nil on a clean drain.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	already := s.closed
	s.closed = true
	s.mu.Unlock()
	if !already {
		// Safe with respect to submit: every send on s.queue happens under
		// s.mu after observing closed == false, and closed was just set
		// under the same lock — so no send can follow this close.
		close(s.queue)
	}
	drained := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(drained)
	}()
	select {
	case <-drained:
		return nil
	case <-ctx.Done():
		s.cancelAll()
		<-drained
		return ctx.Err()
	}
}

// submission is a validated job request, ready to enqueue.
type submission struct {
	name   string
	ex     exhibit.Exhibit
	key    string
	format string
	seed   int64
	trials int
	par    int
	quick  bool
}

// submit registers the submission as a job: served straight from the
// result cache when an identical run already completed, enqueued for a
// worker otherwise. It returns errServerClosed after Shutdown and
// errQueueFull when the backlog bound is hit.
func (s *Server) submit(sub submission) (*job, error) {
	tracker := &exhibit.Tracker{}
	cfg := exhibit.NewConfig(
		exhibit.WithQuick(sub.quick),
		exhibit.WithSeed(sub.seed),
		exhibit.WithParallel(sub.par),
		exhibit.WithTrials(sub.trials),
		exhibit.WithProgress(tracker),
	)
	ctx, cancel := context.WithCancel(s.baseCtx)
	j := &job{
		key:     sub.key,
		name:    sub.name,
		format:  sub.format,
		ex:      sub.ex,
		cfg:     cfg,
		tracker: tracker,
		ctx:     ctx,
		cancel:  cancel,
		created: time.Now(),
		state:   StateQueued,
	}

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		cancel()
		return nil, errServerClosed
	}
	s.seq++
	j.id = fmt.Sprintf("job-%d", s.seq)
	if cached, ok := s.cache[sub.key]; ok {
		// The engine's contract makes the result a pure function of the
		// cache key; only the report metadata (e.g. the Parallel knob)
		// reflects this request, so restamp it on a shallow clone.
		r := *cached
		r.Meta = exhibit.MetaFor(cfg)
		j.state = StateDone
		j.report = &r
		j.cached = true
		j.started, j.finished = j.created, j.created
		s.jobs[j.id] = j
		s.order = append(s.order, j.id)
		s.pruneJobsLocked()
		s.mu.Unlock()
		s.cacheHits.Add(1)
		cancel()
		return j, nil
	}
	// The enqueue attempt happens under s.mu, for two reasons. First, it
	// makes the closed-check and the send atomic with respect to Shutdown,
	// which sets closed under the same lock before closing the queue — so
	// no send can race the close. Second, a rejected job is simply never
	// registered, so there is no rollback to race with a concurrent
	// submission appending its own id to s.order.
	select {
	case s.queue <- j:
		s.jobs[j.id] = j
		s.order = append(s.order, j.id)
		s.pruneJobsLocked()
		s.mu.Unlock()
		return j, nil
	default:
		s.mu.Unlock()
		cancel()
		return nil, errQueueFull
	}
}

var (
	errServerClosed = errors.New("server is shutting down")
	errQueueFull    = errors.New("job queue is full")
)

// storeResult inserts a completed report into the result cache, evicting
// the oldest entries (FIFO) past the retention bound.
func (s *Server) storeResult(key string, report *exhibit.Report) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.cache[key]; dup {
		return
	}
	s.cache[key] = report
	s.cacheOrder = append(s.cacheOrder, key)
	for len(s.cache) > s.opts.maxCachedResults() {
		delete(s.cache, s.cacheOrder[0])
		s.cacheOrder = s.cacheOrder[1:]
	}
}

// pruneJobsLocked forgets the oldest terminal jobs past the retention
// bound, so the job table does not grow without bound in a long-running
// service. Queued and running jobs are never pruned. Callers hold s.mu;
// the per-job state reads take j.mu, so the lock order is always
// s.mu → j.mu (runJob publishes results without holding j.mu across the
// cache write for exactly this reason).
func (s *Server) pruneJobsLocked() {
	var terminal []string
	for _, id := range s.order {
		if s.jobs[id].terminal() {
			terminal = append(terminal, id)
		}
	}
	evict := len(terminal) - s.opts.maxFinishedJobs()
	if evict <= 0 {
		return
	}
	drop := make(map[string]bool, evict)
	for _, id := range terminal[:evict] {
		drop[id] = true
		delete(s.jobs, id)
	}
	kept := s.order[:0]
	for _, id := range s.order {
		if !drop[id] {
			kept = append(kept, id)
		}
	}
	s.order = kept
}

// terminal reports whether the job reached a terminal state.
func (j *job) terminal() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	switch j.state {
	case StateDone, StateFailed, StateCanceled:
		return true
	}
	return false
}

// lookup returns the job registered under id.
func (s *Server) lookup(id string) (*job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// snapshotJobs returns all jobs in submission order.
func (s *Server) snapshotJobs() []*job {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*job, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.jobs[id])
	}
	return out
}

func (s *Server) worker() {
	defer s.wg.Done()
	for j := range s.queue {
		s.runJob(j)
	}
}

// runJob executes one job and records its outcome. Exhibit code runs
// under a recover guard: a panic that slips past request validation fails
// the job, never the process.
func (s *Server) runJob(j *job) {
	j.mu.Lock()
	if j.state != StateQueued || j.ctx.Err() != nil {
		// Canceled (or shutdown-canceled) while waiting for a worker.
		if j.state == StateQueued {
			j.state = StateCanceled
			j.err = mc.ErrCanceled
			j.finished = time.Now()
		}
		j.mu.Unlock()
		j.cancel()
		return
	}
	j.state = StateRunning
	j.started = time.Now()
	j.mu.Unlock()

	report, err := s.execute(j)

	j.mu.Lock()
	j.finished = time.Now()
	switch {
	case err == nil:
		j.state = StateDone
		j.report = report
	case errors.Is(err, mc.ErrCanceled) || j.ctx.Err() != nil:
		j.state = StateCanceled
		j.err = mc.ErrCanceled
	default:
		j.state = StateFailed
		j.err = err
	}
	j.mu.Unlock()
	if err == nil {
		// Published after j.mu is released: the cache write takes s.mu, and
		// the prune path nests j.mu inside s.mu, so holding j.mu here would
		// invert the lock order.
		s.storeResult(j.key, report)
	}
	j.cancel()
}

func (s *Server) execute(j *job) (report *exhibit.Report, err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("exhibit %s panicked: %v", j.name, p)
		}
	}()
	s.jobsRun.Add(1)
	return j.ex.Run(j.ctx, j.cfg)
}

// cacheKey derives the content-addressed identity of a job's result: a
// hash over everything the result depends on — the exhibit name or the
// full effective scenario, the seed, the trial override, and the profile
// — and nothing it does not (parallelism never changes a result, per the
// engine contract, so jobs differing only in Parallel share an entry).
func cacheKey(exhibitName string, sc *exhibit.Scenario, seed int64, trials int, quick bool) string {
	k := struct {
		Exhibit  string            `json:"exhibit,omitempty"`
		Scenario *exhibit.Scenario `json:"scenario,omitempty"`
		Seed     int64             `json:"seed"`
		Trials   int               `json:"trials"`
		Quick    bool              `json:"quick"`
	}{exhibitName, sc, seed, trials, quick}
	b, err := json.Marshal(k)
	if err != nil {
		// Scenario and the scalar fields always marshal; reaching here is
		// a programmer error in the key struct itself.
		panic(fmt.Sprintf("server: cache key marshal: %v", err))
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}
