// Package server implements the ARCC sweep service: a long-running HTTP
// front end over the exhibit registry. Clients submit exhibit or scenario
// jobs (POST /v1/jobs), poll their status and progress (GET /v1/jobs/{id}),
// stream the structured result in any registered format
// (GET /v1/jobs/{id}/result), and cancel mid-run (DELETE /v1/jobs/{id} —
// the engine's ErrCanceled plumbing stops within one shard).
//
// Jobs execute on a bounded worker pool; each worker runs one exhibit at
// a time under the server's base context, reusing the internal/mc
// sharding and pooled sim.Scratch machinery that already makes exhibit
// runs allocation-free and bit-identical at any parallelism. Because
// results depend only on (exhibit-or-scenario, seed, trials, quick) —
// never on the worker count — completed reports are kept in a
// content-addressed cache, and an identical resubmission is served
// without re-running (only the report's Meta is restamped with the new
// request's parameters). A resubmission that matches a job still queued
// or running coalesces onto it instead of sweeping twice: the follower
// shares the primary's progress and receives a restamped copy of its
// report when it completes (canceling the primary cancels its followers;
// canceling a follower just detaches it).
//
// With Options.StateDir set the service survives crashes: accepted jobs
// are recorded in an append-only fsync'd journal, completed reports are
// persisted as content-addressed files, and running jobs checkpoint
// their completed Monte Carlo shards every few shards or seconds. On
// startup the journal is replayed — tolerating a torn final record —
// the result cache is restored, and jobs interrupted mid-run are
// re-enqueued from their latest checkpoint. Because the engine merges
// per-shard accumulators deterministically, a resumed sweep's report is
// byte-identical to an uninterrupted one.
//
// The package is panic-proof at its boundary: every request is validated
// before it can reach a library panic path (unknown exhibits, invalid
// scenarios, negative trial counts are HTTP 400), and both the HTTP
// handlers and the job runner convert any residual panic into an error
// response or a failed job instead of a dead process.
package server

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"arcc/internal/exhibit"
	"arcc/internal/experiments"
	"arcc/internal/faultfs"
	"arcc/internal/mc"
)

// Options tunes the service; the zero value is usable.
type Options struct {
	// Workers bounds how many jobs execute concurrently; <= 0 means
	// GOMAXPROCS. Each job may itself fan out across Parallel engine
	// workers, so a small pool with parallel jobs already saturates the
	// machine.
	Workers int
	// QueueDepth bounds how many accepted jobs may wait for a worker;
	// <= 0 means DefaultQueueDepth. A full queue rejects submissions with
	// 503 rather than queueing unboundedly.
	QueueDepth int
	// MaxTrials caps the per-job Monte Carlo channel override; <= 0 means
	// DefaultMaxTrials. Requests above the cap are 400s.
	MaxTrials int
	// MaxCachedResults bounds the content-addressed result cache; <= 0
	// means DefaultMaxCachedResults. When the bound is hit the oldest
	// entry is evicted (FIFO), so a long-running service does not retain
	// every report it ever produced.
	MaxCachedResults int
	// MaxFinishedJobs bounds how many terminal (done/failed/canceled)
	// jobs stay in the job table; <= 0 means DefaultMaxFinishedJobs.
	// When a new submission pushes the count over the bound, the oldest
	// terminal jobs are forgotten: they disappear from listings and their
	// ids answer 404. Queued and running jobs are never pruned.
	MaxFinishedJobs int
	// MaxJobDuration caps one job's wall-clock execution; 0 means
	// unlimited. A job that outlives the cap is canceled through the
	// engine's ctx path (stops within one shard) and marked failed with a
	// timeout reason, so a runaway sweep cannot occupy a worker forever.
	MaxJobDuration time.Duration
	// StateDir, when non-empty, makes the service durable: a job journal,
	// the result cache, and running-job checkpoints are persisted under
	// this directory and recovered on startup (see the package comment).
	StateDir string
	// CheckpointEveryShards snapshots a running job after this many
	// completed engine shards; <= 0 means DefaultCheckpointEveryShards.
	// Only meaningful with StateDir.
	CheckpointEveryShards int
	// CheckpointPeriod also snapshots when this much time passed since
	// the previous snapshot; <= 0 means DefaultCheckpointPeriod. Only
	// meaningful with StateDir.
	CheckpointPeriod time.Duration
	// FS is the filesystem the durable store writes through; nil means
	// the real one. Tests inject faults here (faultfs.Wrap).
	FS faultfs.FS
	// Logf receives operational log lines (journal write failures,
	// recovery notes); nil means the standard logger.
	Logf func(format string, args ...any)
}

// DefaultQueueDepth is the submission queue bound when Options.QueueDepth
// is zero.
const DefaultQueueDepth = 64

// DefaultMaxTrials is the per-job trial cap when Options.MaxTrials is
// zero: generous next to the paper's 10 000-channel sweeps, small enough
// that one request cannot wedge a worker for hours.
const DefaultMaxTrials = 1_000_000

// DefaultMaxCachedResults is the result-cache bound when
// Options.MaxCachedResults is zero.
const DefaultMaxCachedResults = 256

// DefaultMaxFinishedJobs is the terminal-job retention bound when
// Options.MaxFinishedJobs is zero.
const DefaultMaxFinishedJobs = 1024

// DefaultCheckpointEveryShards is the shard-count checkpoint cadence when
// Options.CheckpointEveryShards is zero.
const DefaultCheckpointEveryShards = 64

// DefaultCheckpointPeriod is the time-based checkpoint cadence when
// Options.CheckpointPeriod is zero.
const DefaultCheckpointPeriod = 2 * time.Second

// MaxParallel caps the per-job engine worker override.
const MaxParallel = 1024

func (o Options) workers() int {
	if o.Workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return o.Workers
}

func (o Options) queueDepth() int {
	if o.QueueDepth <= 0 {
		return DefaultQueueDepth
	}
	return o.QueueDepth
}

func (o Options) maxTrials() int {
	if o.MaxTrials <= 0 {
		return DefaultMaxTrials
	}
	return o.MaxTrials
}

func (o Options) maxCachedResults() int {
	if o.MaxCachedResults <= 0 {
		return DefaultMaxCachedResults
	}
	return o.MaxCachedResults
}

func (o Options) maxFinishedJobs() int {
	if o.MaxFinishedJobs <= 0 {
		return DefaultMaxFinishedJobs
	}
	return o.MaxFinishedJobs
}

func (o Options) checkpointEveryShards() int {
	if o.CheckpointEveryShards <= 0 {
		return DefaultCheckpointEveryShards
	}
	return o.CheckpointEveryShards
}

func (o Options) checkpointPeriod() time.Duration {
	if o.CheckpointPeriod <= 0 {
		return DefaultCheckpointPeriod
	}
	return o.CheckpointPeriod
}

// State is a job's lifecycle position. Transitions are
// queued → running → {done, failed, canceled}, with queued → canceled
// for jobs canceled before a worker picks them up; done/failed/canceled
// are terminal.
type State string

// The job states.
const (
	StateQueued   State = "queued"
	StateRunning  State = "running"
	StateDone     State = "done"
	StateFailed   State = "failed"
	StateCanceled State = "canceled"
)

// job is one submitted run and its outcome.
type job struct {
	id      string
	key     string // content-addressed result identity
	name    string // exhibit name, for status listings
	format  string // default render format for /result
	ex      exhibit.Exhibit
	cfg     exhibit.Config
	tracker *exhibit.Tracker
	ctx     context.Context
	cancel  context.CancelFunc
	created time.Time
	subRec  journalRecord          // the journal record that re-creates this job
	saved   map[int]*mc.Checkpoint // checkpoints restored at recovery, nil otherwise

	// coalescing links, guarded by the server's mu (lock order s.mu → j.mu).
	primary   *job   // the running job this one attached to, nil otherwise
	followers []*job // jobs attached to this one

	mu           sync.Mutex
	state        State
	err          error
	report       *exhibit.Report
	cached       bool
	coalesced    bool // resolved by a primary rather than run
	recovered    bool // re-enqueued from the journal after a restart
	resumed      bool // restored checkpoints actually skipped work
	userCanceled bool // DELETE, as opposed to a shutdown cancel
	journaled    bool // terminal record written, exactly once
	started      time.Time
	finished     time.Time
}

// Server owns the job table, the result cache, and the worker pool. Create
// one with New and serve its Handler; Shutdown drains it.
type Server struct {
	opts      Options
	baseCtx   context.Context
	cancelAll context.CancelFunc
	queue     chan *job
	store     *store // nil when StateDir is unset
	wg        sync.WaitGroup

	mu         sync.Mutex
	jobs       map[string]*job
	order      []string // job ids in submission order, for listings
	cache      map[string]*exhibit.Report
	cacheOrder []string        // cache keys in insertion order, for FIFO eviction
	inflight   map[string]*job // key → primary job queued or running
	closed     bool
	seq        uint64

	jobsRun       atomic.Int64
	cacheHits     atomic.Int64
	jobsCoalesced atomic.Int64
	jobsRecovered atomic.Int64
}

// Metrics is a snapshot of the server's run counters. JobsRun counts
// exhibits actually executed (cache hits do not run), CacheHits counts
// submissions served from the result cache, JobsCoalesced counts
// submissions attached to an identical in-flight job, and JobsRecovered
// counts jobs re-enqueued from the journal after a restart.
type Metrics struct {
	JobsRun       int64
	CacheHits     int64
	JobsCoalesced int64
	JobsRecovered int64
}

// New starts a server with a running worker pool, recovering persisted
// state first when Options.StateDir is set. Callers must Shutdown it to
// release the workers.
func New(opts Options) (*Server, error) {
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		opts:      opts,
		baseCtx:   ctx,
		cancelAll: cancel,
		jobs:      map[string]*job{},
		cache:     map[string]*exhibit.Report{},
		inflight:  map[string]*job{},
	}
	var pending []*job
	if opts.StateDir != "" {
		fs := opts.FS
		if fs == nil {
			fs = faultfs.OS()
		}
		st, err := newStore(fs, opts.StateDir, s.logf)
		if err != nil {
			cancel()
			return nil, err
		}
		s.store = st
		pending = s.recoverState()
	}
	// Size the queue to hold every recovered job on top of the configured
	// depth, so recovery can never deadlock on its own backlog.
	s.queue = make(chan *job, opts.queueDepth()+len(pending))
	for _, j := range pending {
		s.queue <- j
	}
	for i := 0; i < opts.workers(); i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s, nil
}

func (s *Server) logf(format string, args ...any) {
	if s.opts.Logf != nil {
		s.opts.Logf(format, args...)
		return
	}
	log.Printf(format, args...)
}

// Metrics returns the current run counters.
func (s *Server) Metrics() Metrics {
	return Metrics{
		JobsRun:       s.jobsRun.Load(),
		CacheHits:     s.cacheHits.Load(),
		JobsCoalesced: s.jobsCoalesced.Load(),
		JobsRecovered: s.jobsRecovered.Load(),
	}
}

// Shutdown stops accepting jobs and drains the pool: queued and running
// jobs keep executing until they finish or ctx expires, at which point
// every job context is canceled (the engine stops within one shard) and
// the workers are awaited. It returns ctx.Err() when the deadline forced
// the cancel, nil on a clean drain. With a state dir, jobs the deadline
// interrupted keep their latest checkpoint and no terminal journal
// record, so the next startup resumes them where they stopped.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	already := s.closed
	s.closed = true
	s.mu.Unlock()
	if !already {
		// Safe with respect to submit: every send on s.queue happens under
		// s.mu after observing closed == false, and closed was just set
		// under the same lock — so no send can follow this close.
		close(s.queue)
	}
	drained := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(drained)
	}()
	var err error
	select {
	case <-drained:
	case <-ctx.Done():
		s.cancelAll()
		<-drained
		err = ctx.Err()
	}
	if s.store != nil {
		s.store.close()
	}
	return err
}

// submission is a validated job request, ready to enqueue.
type submission struct {
	name     string
	ex       exhibit.Exhibit
	key      string
	format   string
	seed     int64
	trials   int
	par      int
	quick    bool
	scenario *exhibit.Scenario // the effective scenario, nil for registry exhibits
}

// record builds the journal line that re-creates this submission.
func (sub submission) record(id string, created time.Time) journalRecord {
	rec := journalRecord{
		Op:       opSubmit,
		ID:       id,
		Key:      sub.key,
		Name:     sub.name,
		Format:   sub.format,
		Seed:     sub.seed,
		Trials:   sub.trials,
		Parallel: sub.par,
		Quick:    sub.quick,
		Time:     created.UTC().Format(time.RFC3339Nano),
	}
	if sub.scenario != nil {
		rec.Scenario = sub.scenario
	} else {
		rec.Exhibit = sub.name
	}
	return rec
}

// submit registers the submission as a job: served straight from the
// result cache when an identical run already completed, attached to an
// identical in-flight job when one is queued or running, enqueued for a
// worker otherwise. It returns errServerClosed after Shutdown and
// errQueueFull when the backlog bound is hit.
func (s *Server) submit(sub submission) (*job, error) {
	tracker := &exhibit.Tracker{}
	cfg := exhibit.NewConfig(
		exhibit.WithQuick(sub.quick),
		exhibit.WithSeed(sub.seed),
		exhibit.WithParallel(sub.par),
		exhibit.WithTrials(sub.trials),
		exhibit.WithProgress(tracker),
	)
	ctx, cancel := context.WithCancel(s.baseCtx)
	j := &job{
		key:     sub.key,
		name:    sub.name,
		format:  sub.format,
		ex:      sub.ex,
		cfg:     cfg,
		tracker: tracker,
		ctx:     ctx,
		cancel:  cancel,
		created: time.Now(),
		state:   StateQueued,
	}

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		cancel()
		return nil, errServerClosed
	}
	s.seq++
	j.id = fmt.Sprintf("job-%d", s.seq)
	j.subRec = sub.record(j.id, j.created)
	if cached, ok := s.cache[sub.key]; ok {
		// The engine's contract makes the result a pure function of the
		// cache key; only the report metadata (e.g. the Parallel knob)
		// reflects this request, so restamp it on a shallow clone.
		r := *cached
		r.Meta = exhibit.MetaFor(cfg)
		j.state = StateDone
		j.report = &r
		j.cached = true
		j.started, j.finished = j.created, j.created
		s.jobs[j.id] = j
		s.order = append(s.order, j.id)
		s.pruneJobsLocked()
		s.mu.Unlock()
		s.cacheHits.Add(1)
		cancel()
		s.journalSubmit(j)
		s.journalTerminal(j)
		return j, nil
	}
	if p, ok := s.inflight[sub.key]; ok && !p.terminal() {
		// An identical job is already queued or running: attach to it
		// rather than sweeping twice. The follower shares the primary's
		// tracker (live progress) and is resolved when the primary ends.
		// This cannot race the primary's completion: finishJob snapshots
		// followers under the same s.mu, so an attach either lands before
		// that snapshot or observes p.terminal() above.
		j.primary = p
		j.coalesced = true
		j.tracker = p.tracker
		p.followers = append(p.followers, j)
		p.mu.Lock()
		if p.state == StateRunning {
			j.state = StateRunning
			j.started = time.Now()
		}
		p.mu.Unlock()
		s.jobs[j.id] = j
		s.order = append(s.order, j.id)
		s.pruneJobsLocked()
		s.mu.Unlock()
		s.jobsCoalesced.Add(1)
		s.journalSubmit(j)
		return j, nil
	}
	// The enqueue attempt happens under s.mu, for two reasons. First, it
	// makes the closed-check and the send atomic with respect to Shutdown,
	// which sets closed under the same lock before closing the queue — so
	// no send can race the close. Second, a rejected job is simply never
	// registered, so there is no rollback to race with a concurrent
	// submission appending its own id to s.order.
	select {
	case s.queue <- j:
		s.jobs[j.id] = j
		s.order = append(s.order, j.id)
		s.inflight[sub.key] = j
		s.pruneJobsLocked()
		s.mu.Unlock()
		s.journalSubmit(j)
		return j, nil
	default:
		s.mu.Unlock()
		cancel()
		return nil, errQueueFull
	}
}

var (
	errServerClosed = errors.New("server is shutting down")
	errQueueFull    = errors.New("job queue is full")
)

// journalSubmit records an accepted job. A journal failure degrades
// durability, not availability: the job still runs, it just would not be
// recovered after a crash.
func (s *Server) journalSubmit(j *job) {
	if s.store == nil {
		return
	}
	if err := s.store.append(j.subRec); err != nil {
		s.logf("server: journaling submit of %s: %v", j.id, err)
	}
}

// journalTerminal records a job's terminal state, exactly once. Callers
// must only invoke it after the job reached done/failed/canceled.
func (s *Server) journalTerminal(j *job) {
	if s.store == nil {
		return
	}
	j.mu.Lock()
	var op string
	switch j.state {
	case StateDone:
		op = opDone
	case StateFailed:
		op = opFailed
	case StateCanceled:
		op = opCanceled
	default:
		j.mu.Unlock()
		return
	}
	if j.journaled {
		j.mu.Unlock()
		return
	}
	j.journaled = true
	rec := journalRecord{Op: op, ID: j.id, Key: j.key, Cached: j.cached}
	if j.err != nil {
		rec.Error = j.err.Error()
	}
	j.mu.Unlock()
	if err := s.store.append(rec); err != nil {
		s.logf("server: journaling %s of %s: %v", op, j.id, err)
	}
	s.store.removeCheckpoints(j.id)
}

// storeResult inserts a completed report into the result cache (and, with
// a state dir, onto disk), evicting the oldest entries (FIFO) past the
// retention bound. A persistence failure is logged, never fatal: the
// in-memory cache still serves the result for this process's lifetime.
func (s *Server) storeResult(key string, report *exhibit.Report) {
	if s.store != nil {
		if blob, err := exhibit.EncodeReport(report); err != nil {
			s.logf("server: encoding result %s: %v", key, err)
		} else if err := s.store.saveResult(key, blob); err != nil {
			s.logf("server: persisting result %s: %v", key, err)
		}
	}
	var evicted []string
	s.mu.Lock()
	if _, dup := s.cache[key]; dup {
		s.mu.Unlock()
		return
	}
	s.cache[key] = report
	s.cacheOrder = append(s.cacheOrder, key)
	for len(s.cache) > s.opts.maxCachedResults() {
		evicted = append(evicted, s.cacheOrder[0])
		delete(s.cache, s.cacheOrder[0])
		s.cacheOrder = s.cacheOrder[1:]
	}
	s.mu.Unlock()
	if s.store != nil {
		for _, old := range evicted {
			s.store.removeResult(old)
		}
	}
}

// pruneJobsLocked forgets the oldest terminal jobs past the retention
// bound, so the job table does not grow without bound in a long-running
// service. Queued and running jobs are never pruned. Callers hold s.mu;
// the per-job state reads take j.mu, so the lock order is always
// s.mu → j.mu (runJob publishes results without holding j.mu across the
// cache write for exactly this reason).
func (s *Server) pruneJobsLocked() {
	var terminal []string
	for _, id := range s.order {
		if s.jobs[id].terminal() {
			terminal = append(terminal, id)
		}
	}
	evict := len(terminal) - s.opts.maxFinishedJobs()
	if evict <= 0 {
		return
	}
	drop := make(map[string]bool, evict)
	for _, id := range terminal[:evict] {
		drop[id] = true
		delete(s.jobs, id)
	}
	kept := s.order[:0]
	for _, id := range s.order {
		if !drop[id] {
			kept = append(kept, id)
		}
	}
	s.order = kept
}

// terminal reports whether the job reached a terminal state.
func (j *job) terminal() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.terminalLocked()
}

func (j *job) terminalLocked() bool {
	switch j.state {
	case StateDone, StateFailed, StateCanceled:
		return true
	}
	return false
}

// lookup returns the job registered under id.
func (s *Server) lookup(id string) (*job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// snapshotJobs returns all jobs in submission order.
func (s *Server) snapshotJobs() []*job {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*job, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.jobs[id])
	}
	return out
}

func (s *Server) worker() {
	defer s.wg.Done()
	for j := range s.queue {
		s.runJob(j)
	}
}

// runJob executes one job and records its outcome. Exhibit code runs
// under a recover guard: a panic that slips past request validation fails
// the job, never the process.
func (s *Server) runJob(j *job) {
	j.mu.Lock()
	if j.state != StateQueued || j.ctx.Err() != nil {
		if j.terminalLocked() {
			// Canceled via DELETE while waiting for a worker: cancelJob
			// already did the bookkeeping.
			j.mu.Unlock()
			j.cancel()
			return
		}
		// Shutdown-canceled while waiting for a worker: terminal in this
		// process, but no terminal journal record — the job re-enqueues
		// on the next startup.
		j.state = StateCanceled
		j.err = mc.ErrCanceled
		j.finished = time.Now()
		j.mu.Unlock()
		j.cancel()
		s.finishJob(j, true)
		return
	}
	j.state = StateRunning
	j.started = time.Now()
	j.mu.Unlock()
	s.followersRunning(j)

	// With a state dir, thread checkpoint/resume through every engine job
	// the exhibit runs. The Resumer sequence-indexes the engine jobs, so
	// a resumed run's checkpoints line up with the interrupted one's.
	if s.store != nil {
		j.cfg.Resume = mc.NewResumer(j.saved,
			s.opts.checkpointEveryShards(), s.opts.checkpointPeriod(), s.persistFunc(j))
	}

	// A runaway job is bounded by MaxJobDuration through the same ctx
	// path a cancel uses; the deadline variant is told apart from a user
	// or shutdown cancel below.
	runCtx := j.ctx
	cancelRun := context.CancelFunc(func() {})
	if d := s.opts.MaxJobDuration; d > 0 {
		runCtx, cancelRun = context.WithTimeout(j.ctx, d)
	}
	report, err := s.execute(runCtx, j)
	timedOut := errors.Is(runCtx.Err(), context.DeadlineExceeded) && j.ctx.Err() == nil
	cancelRun()

	var shutdownInterrupted bool
	j.mu.Lock()
	j.finished = time.Now()
	switch {
	case err == nil:
		j.state = StateDone
		j.report = report
	case timedOut:
		j.state = StateFailed
		j.err = fmt.Errorf("job exceeded the server's max duration %s", s.opts.MaxJobDuration)
	case errors.Is(err, mc.ErrCanceled) || j.ctx.Err() != nil:
		j.state = StateCanceled
		j.err = mc.ErrCanceled
		// A cancel that came from Shutdown (not DELETE) leaves no
		// terminal record: the job is interrupted, not finished, and the
		// next startup resumes it from its flushed checkpoint.
		shutdownInterrupted = !j.userCanceled && s.baseCtx.Err() != nil
	default:
		j.state = StateFailed
		j.err = err
	}
	j.mu.Unlock()
	if err == nil {
		// Published after j.mu is released: the cache write takes s.mu, and
		// the prune path nests j.mu inside s.mu, so holding j.mu here would
		// invert the lock order. The result file lands before the "done"
		// journal record, so replay never sees a done job without its
		// result.
		s.storeResult(j.key, report)
	}
	j.cancel()
	s.finishJob(j, shutdownInterrupted)
}

// finishJob does the server-side bookkeeping once j is terminal: drop the
// in-flight key, journal the outcome (unless a shutdown interrupted the
// job, which must stay non-terminal in the journal to be resumed), and
// resolve coalesced followers. Shutdown-interrupted jobs keep their
// followers unresolved too — each holds its own non-terminal journal
// record and re-attaches on recovery.
func (s *Server) finishJob(j *job, shutdownInterrupted bool) {
	s.mu.Lock()
	if s.inflight[j.key] == j {
		delete(s.inflight, j.key)
	}
	var followers []*job
	if !shutdownInterrupted {
		followers = j.followers
		j.followers = nil
	}
	s.mu.Unlock()
	if shutdownInterrupted {
		return
	}
	s.journalTerminal(j)
	for _, f := range followers {
		s.resolveFollower(f, j)
	}
}

// followersRunning flips j's followers to running alongside it.
func (s *Server) followersRunning(j *job) {
	s.mu.Lock()
	followers := append([]*job(nil), j.followers...)
	s.mu.Unlock()
	for _, f := range followers {
		f.mu.Lock()
		if f.state == StateQueued {
			f.state = StateRunning
			f.started = time.Now()
		}
		f.mu.Unlock()
	}
}

// resolveFollower settles a coalesced job from its primary's outcome: a
// restamped copy of the report on success, the primary's failure or
// cancellation otherwise (canceling a primary cancels its followers).
func (s *Server) resolveFollower(f *job, p *job) {
	p.mu.Lock()
	state, err, report := p.state, p.err, p.report
	p.mu.Unlock()
	f.mu.Lock()
	if f.terminalLocked() { // canceled and detached concurrently
		f.mu.Unlock()
		return
	}
	f.finished = time.Now()
	switch state {
	case StateDone:
		r := *report
		r.Meta = exhibit.MetaFor(f.cfg)
		f.state = StateDone
		f.report = &r
	case StateFailed:
		f.state = StateFailed
		f.err = err
	default:
		f.state = StateCanceled
		f.err = errors.New("canceled with the job it had coalesced onto")
	}
	f.mu.Unlock()
	f.cancel()
	s.journalTerminal(f)
}

// cancelJob is the DELETE path: marks the cancel as user-initiated (so it
// journals a terminal record instead of resuming on restart), detaches a
// coalesced follower from its primary, settles a still-queued job
// immediately, and cancels the job context either way.
func (s *Server) cancelJob(j *job) {
	s.mu.Lock()
	p := j.primary
	if p != nil {
		kept := p.followers[:0]
		for _, f := range p.followers {
			if f != j {
				kept = append(kept, f)
			}
		}
		p.followers = kept
	}
	s.mu.Unlock()

	j.mu.Lock()
	j.userCanceled = true
	settle := j.state == StateQueued || (p != nil && !j.terminalLocked())
	if settle {
		j.state = StateCanceled
		j.err = errors.New("canceled before start")
		if p != nil {
			j.err = errors.New("canceled (detached from the job it had coalesced onto)")
		}
		j.finished = time.Now()
	}
	j.mu.Unlock()
	// Cancel the job context (the engine stops within one shard); a
	// running primary then reaches finishJob through its worker. Terminal
	// states are untouched — cancel after done just reports the status.
	j.cancel()
	if settle {
		s.finishJob(j, false)
	}
}

// persistFunc builds the checkpoint sink for one job: it accumulates the
// latest snapshot of every engine job the exhibit has run and writes the
// whole set atomically, so replay always sees a consistent family of
// checkpoints. Write failures degrade durability, never the sweep.
func (s *Server) persistFunc(j *job) func(int, *mc.Checkpoint) {
	var mu sync.Mutex
	latest := map[int]*mc.Checkpoint{}
	for i, cp := range j.saved {
		latest[i] = cp
	}
	return func(i int, cp *mc.Checkpoint) {
		mu.Lock()
		latest[i] = cp
		snap := make(map[int]*mc.Checkpoint, len(latest))
		for k, v := range latest {
			snap[k] = v
		}
		mu.Unlock()
		if err := s.store.saveCheckpoints(j.id, snap); err != nil {
			s.logf("server: persisting checkpoint of %s: %v", j.id, err)
		}
	}
}

func (s *Server) execute(ctx context.Context, j *job) (report *exhibit.Report, err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("exhibit %s panicked: %v", j.name, p)
		}
	}()
	s.jobsRun.Add(1)
	return j.ex.Run(ctx, j.cfg)
}

// recoverState rebuilds the job table and result cache from the journal
// and returns the interrupted jobs to re-enqueue, each primed with its
// latest persisted checkpoint. Runs during New, before any worker or
// handler exists, so it may touch server state without s.mu.
func (s *Server) recoverState() []*job {
	recs := s.store.replay()
	if len(recs) == 0 {
		return nil
	}
	results := s.store.loadResults()
	checkpoints := s.store.loadCheckpoints()

	var ids []string
	byID := map[string]*replayedJob{}
	for _, rec := range recs {
		if rec.Op == opSubmit {
			if _, dup := byID[rec.ID]; !dup && rec.ID != "" {
				byID[rec.ID] = &replayedJob{sub: rec}
				ids = append(ids, rec.ID)
			}
			continue
		}
		if rp, ok := byID[rec.ID]; ok && rp.term == nil {
			term := rec
			rp.term = &term
		}
	}

	// Restore the result cache first (in journal order, respecting the
	// FIFO bound) so interrupted duplicates of a completed sweep can be
	// served from it below.
	for _, id := range ids {
		rp := byID[id]
		if rp.term == nil || rp.term.Op != opDone {
			continue
		}
		if report, ok := results[rp.sub.Key]; ok {
			s.storeResult(rp.sub.Key, report)
		}
	}

	var pending []*job
	for _, id := range ids {
		rp := byID[id]
		if n := seqOf(id); n > s.seq {
			s.seq = n
		}
		j := s.rebuildJob(rp, checkpoints)
		s.jobs[id] = j
		s.order = append(s.order, id)
		if j.terminal() {
			continue
		}
		if p, ok := s.inflight[j.key]; ok {
			// Interrupted duplicate of another interrupted job: re-attach
			// instead of re-running twice, exactly like a live coalesce.
			j.primary = p
			j.coalesced = true
			j.tracker = p.tracker
			p.followers = append(p.followers, j)
			s.jobsCoalesced.Add(1)
			continue
		}
		s.inflight[j.key] = j
		pending = append(pending, j)
		s.jobsRecovered.Add(1)
	}
	s.pruneJobsLocked()
	if len(pending) > 0 {
		s.logf("server: recovered %d interrupted job(s) from %s", len(pending), s.opts.StateDir)
	}

	// Compact: rewrite the journal to just the jobs still in the table,
	// shedding pruned jobs and any torn tail.
	var compacted []journalRecord
	for _, id := range s.order {
		rp := byID[id]
		compacted = append(compacted, rp.sub)
		if rp.term != nil {
			compacted = append(compacted, *rp.term)
		} else if s.jobs[id].terminal() {
			// Terminal state decided during recovery (cache hit, dead
			// exhibit): synthesize its record now.
			compacted = append(compacted, s.terminalRecord(s.jobs[id]))
		}
	}
	if err := s.store.rewrite(compacted); err != nil {
		s.logf("server: journal compaction: %v", err)
	}
	return pending
}

// terminalRecord snapshots j's terminal state as a journal record and
// marks it journaled.
func (s *Server) terminalRecord(j *job) journalRecord {
	j.mu.Lock()
	defer j.mu.Unlock()
	op := opCanceled
	switch j.state {
	case StateDone:
		op = opDone
	case StateFailed:
		op = opFailed
	}
	j.journaled = true
	rec := journalRecord{Op: op, ID: j.id, Key: j.key, Cached: j.cached}
	if j.err != nil {
		rec.Error = j.err.Error()
	}
	return rec
}

// rebuildJob turns a replayed journal pair back into a job. Terminal jobs
// come back for listings (done ones with their persisted report when it
// survived); interrupted jobs come back queued, primed with their saved
// checkpoints, unless their key is already served by the restored cache.
func (s *Server) rebuildJob(rp *replayedJob, checkpoints map[string]map[int]*mc.Checkpoint) *job {
	sub := rp.sub
	tracker := &exhibit.Tracker{}
	cfg := exhibit.NewConfig(
		exhibit.WithQuick(sub.Quick),
		exhibit.WithSeed(sub.Seed),
		exhibit.WithParallel(sub.Parallel),
		exhibit.WithTrials(sub.Trials),
		exhibit.WithProgress(tracker),
	)
	ctx, cancel := context.WithCancel(s.baseCtx)
	j := &job{
		id:      sub.ID,
		key:     sub.Key,
		name:    sub.Name,
		format:  sub.Format,
		cfg:     cfg,
		tracker: tracker,
		ctx:     ctx,
		cancel:  cancel,
		created: parseTime(sub.Time),
		subRec:  sub,
		state:   StateQueued,
	}
	if rp.term != nil {
		j.journaled = true
		j.finished = parseTime(rp.term.Time)
		j.started = j.created
		j.cached = rp.term.Cached
		switch rp.term.Op {
		case opDone:
			j.state = StateDone
			j.report = s.cache[sub.Key] // nil if the result file was lost: /result answers 410
		case opFailed:
			j.state = StateFailed
			j.err = errors.New(rp.term.Error)
		default:
			j.state = StateCanceled
			j.err = errors.New(rp.term.Error)
		}
		cancel()
		return j
	}

	// Interrupted: first check whether an identical sweep completed (the
	// restored cache), then rebuild the runnable exhibit.
	j.recovered = true
	if cached, ok := s.cache[sub.Key]; ok {
		r := *cached
		r.Meta = exhibit.MetaFor(cfg)
		j.state = StateDone
		j.report = &r
		j.cached = true
		j.started, j.finished = j.created, time.Now()
		s.cacheHits.Add(1)
		cancel()
		return j
	}
	var (
		ex  exhibit.Exhibit
		err error
	)
	if sub.Scenario != nil {
		ex, err = experiments.NewScenarioExhibit(*sub.Scenario)
	} else if reg, ok := exhibit.Lookup(sub.Exhibit); ok {
		ex = reg
	} else {
		err = fmt.Errorf("exhibit %q is no longer registered", sub.Exhibit)
	}
	if err != nil {
		j.state = StateFailed
		j.err = fmt.Errorf("not recoverable: %w", err)
		j.started, j.finished = j.created, time.Now()
		cancel()
		return j
	}
	j.ex = ex
	if cps := checkpoints[sub.ID]; len(cps) > 0 {
		j.saved = cps
		j.resumed = true
	}
	return j
}

// replayedJob pairs a job's submit record with its terminal record (nil
// for interrupted jobs).
type replayedJob struct {
	sub  journalRecord
	term *journalRecord
}

// seqOf extracts the numeric suffix of a "job-N" id, 0 when malformed.
func seqOf(id string) uint64 {
	n, err := strconv.ParseUint(strings.TrimPrefix(id, "job-"), 10, 64)
	if err != nil {
		return 0
	}
	return n
}

func parseTime(s string) time.Time {
	t, err := time.Parse(time.RFC3339Nano, s)
	if err != nil {
		return time.Now()
	}
	return t
}

// cacheKey derives the content-addressed identity of a job's result: a
// hash over everything the result depends on — the exhibit name or the
// full effective scenario, the seed, the trial override, and the profile
// — and nothing it does not (parallelism never changes a result, per the
// engine contract, so jobs differing only in Parallel share an entry).
func cacheKey(exhibitName string, sc *exhibit.Scenario, seed int64, trials int, quick bool) string {
	k := struct {
		Exhibit  string            `json:"exhibit,omitempty"`
		Scenario *exhibit.Scenario `json:"scenario,omitempty"`
		Seed     int64             `json:"seed"`
		Trials   int               `json:"trials"`
		Quick    bool              `json:"quick"`
	}{exhibitName, sc, seed, trials, quick}
	b, err := json.Marshal(k)
	if err != nil {
		// Scenario and the scalar fields always marshal; reaching here is
		// a programmer error in the key struct itself.
		panic(fmt.Sprintf("server: cache key marshal: %v", err))
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}
