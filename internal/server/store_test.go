package server

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"arcc/internal/faultfs"
)

func testStore(t *testing.T, fs faultfs.FS) *store {
	t.Helper()
	st, err := newStore(fs, t.TempDir(), t.Logf)
	if err != nil {
		t.Fatalf("newStore: %v", err)
	}
	t.Cleanup(st.close)
	return st
}

func TestJournalAppendReplayRoundTrip(t *testing.T) {
	st := testStore(t, faultfs.OS())
	want := []journalRecord{
		{Op: opSubmit, ID: "job-1", Key: "k1", Exhibit: "f3.1", Seed: 7, Trials: 100},
		{Op: opDone, ID: "job-1", Key: "k1"},
		{Op: opSubmit, ID: "job-2", Key: "k2", Exhibit: "t7.1"},
		{Op: opFailed, ID: "job-2", Key: "k2", Error: "boom"},
	}
	for _, rec := range want {
		if err := st.append(rec); err != nil {
			t.Fatalf("append: %v", err)
		}
	}
	got := st.replay()
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Op != want[i].Op || got[i].ID != want[i].ID ||
			got[i].Key != want[i].Key || got[i].Error != want[i].Error {
			t.Errorf("record %d: got %+v, want %+v", i, got[i], want[i])
		}
		if got[i].Time == "" {
			t.Errorf("record %d: append did not stamp a time", i)
		}
	}
}

func TestReplayToleratesTornFinalRecord(t *testing.T) {
	st := testStore(t, faultfs.OS())
	for _, rec := range []journalRecord{
		{Op: opSubmit, ID: "job-1"},
		{Op: opDone, ID: "job-1"},
	} {
		if err := st.append(rec); err != nil {
			t.Fatal(err)
		}
	}
	// A crash mid-append leaves a half-written final line with no newline.
	f, err := os.OpenFile(filepath.Join(st.dir, journalName), os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"op":"submit","id":"job-2","ke`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	got := st.replay()
	if len(got) != 2 {
		t.Fatalf("replayed %d records, want the 2 intact ones", len(got))
	}
	if got[0].ID != "job-1" || got[1].Op != opDone {
		t.Fatalf("replayed %+v", got)
	}
}

func TestReplayTornMiddleSurrendersTail(t *testing.T) {
	st := testStore(t, faultfs.OS())
	if err := st.append(journalRecord{Op: opSubmit, ID: "job-1"}); err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(filepath.Join(st.dir, journalName), os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString("garbage line\n"); err != nil {
		t.Fatal(err)
	}
	f.Close()
	// A record after the corruption is surrendered rather than trusted:
	// the journal's integrity is prefix-only.
	if err := st.append(journalRecord{Op: opSubmit, ID: "job-3"}); err != nil {
		t.Fatal(err)
	}

	got := st.replay()
	if len(got) != 1 || got[0].ID != "job-1" {
		t.Fatalf("replayed %+v, want just the intact prefix", got)
	}
}

func TestRewriteCompactsAndReopens(t *testing.T) {
	st := testStore(t, faultfs.OS())
	for i := 0; i < 10; i++ {
		if err := st.append(journalRecord{Op: opSubmit, ID: "job-1"}); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.rewrite([]journalRecord{{Op: opSubmit, ID: "job-1", Time: "t"}}); err != nil {
		t.Fatalf("rewrite: %v", err)
	}
	// The append handle must still work after the rewrite swapped the file.
	if err := st.append(journalRecord{Op: opDone, ID: "job-1"}); err != nil {
		t.Fatalf("append after rewrite: %v", err)
	}
	got := st.replay()
	if len(got) != 2 || got[0].Op != opSubmit || got[1].Op != opDone {
		t.Fatalf("replayed %+v, want the compacted record plus one append", got)
	}
}

func TestWriteFileAtomicSurvivesRenameFault(t *testing.T) {
	fs := faultfs.Wrap(faultfs.OS())
	st := testStore(t, fs)
	path := filepath.Join(st.dir, resultsDir, "k.json")
	if err := st.writeFileAtomic(path, []byte("old")); err != nil {
		t.Fatal(err)
	}

	fs.AddRule(faultfs.Rule{Op: faultfs.OpRename, PathContains: "k.json", Times: 1})
	err := st.writeFileAtomic(path, []byte("new"))
	if !errors.Is(err, faultfs.ErrInjected) {
		t.Fatalf("rename fault surfaced as %v", err)
	}
	// The old content survives untouched and the tmp file is cleaned up.
	got, err := os.ReadFile(path)
	if err != nil || string(got) != "old" {
		t.Fatalf("after failed atomic write: %q, %v; want the old content", got, err)
	}
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Fatalf("tmp file left behind: %v", err)
	}
}

func TestAppendSurfacesSyncFault(t *testing.T) {
	fs := faultfs.Wrap(faultfs.OS())
	st := testStore(t, fs)
	fs.AddRule(faultfs.Rule{Op: faultfs.OpSync, PathContains: journalName, Times: 1})
	if err := st.append(journalRecord{Op: opSubmit, ID: "job-1"}); !errors.Is(err, faultfs.ErrInjected) {
		t.Fatalf("append with sync fault returned %v, want ErrInjected", err)
	}
	if err := st.append(journalRecord{Op: opSubmit, ID: "job-2"}); err != nil {
		t.Fatalf("append after the fault cleared: %v", err)
	}
}

func TestLoadResultsSkipsUndecodable(t *testing.T) {
	st := testStore(t, faultfs.OS())
	if err := st.saveResult("bad", []byte("not json")); err != nil {
		t.Fatal(err)
	}
	good := []byte(`{"exhibit":"x","title":"X","meta":{"seed":1,"quick":false,"trials":0,"parallel":0},"data":{"v":1}}`)
	if err := st.saveResult("good", good); err != nil {
		t.Fatal(err)
	}
	out := st.loadResults()
	if _, ok := out["bad"]; ok {
		t.Error("undecodable result survived the load")
	}
	if r, ok := out["good"]; !ok || r.Exhibit != "x" {
		t.Errorf("good result not loaded: %+v", out)
	}
}
