package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"arcc/internal/exhibit"
	"arcc/internal/experiments"
)

// maxRequestBody bounds a job submission; scenarios are small JSON
// documents, so 1 MiB is generous.
const maxRequestBody = 1 << 20

// jobRequest is the POST /v1/jobs body. Exactly one of Exhibit and
// Scenario must be set; Scenario is an inline exhibit.Scenario object
// (same schema as the -scenario files), parsed strictly over the scenario
// defaults.
type jobRequest struct {
	Exhibit  string          `json:"exhibit,omitempty"`
	Scenario json.RawMessage `json:"scenario,omitempty"`
	Seed     int64           `json:"seed,omitempty"`
	Trials   int             `json:"trials,omitempty"`
	Parallel int             `json:"parallel,omitempty"`
	Quick    bool            `json:"quick,omitempty"`
	Format   string          `json:"format,omitempty"`
}

// JobStatus is the wire form of a job's state, returned by the submit,
// status, cancel, and list endpoints (and by a not-ready result poll).
type JobStatus struct {
	ID      string `json:"id"`
	Exhibit string `json:"exhibit"`
	State   State  `json:"state"`
	Format  string `json:"format"`
	// Cached marks a job served from the result cache without running.
	Cached bool `json:"cached,omitempty"`
	// Coalesced marks a job attached to an identical in-flight job rather
	// than sweeping on its own; it settles when that job does.
	Coalesced bool `json:"coalesced,omitempty"`
	// Recovered marks a job re-enqueued from the journal after a restart;
	// Resumed additionally means saved checkpoints let it skip completed
	// shards instead of re-running from scratch.
	Recovered bool `json:"recovered,omitempty"`
	Resumed   bool `json:"resumed,omitempty"`
	// Error carries the failure (or cancellation) cause in terminal states.
	Error string `json:"error,omitempty"`
	// Progress reports the engine job the exhibit is currently running;
	// one exhibit may run several engine jobs back to back, and Cumulative
	// counts trials finished across all of them.
	Progress *ProgressStatus `json:"progress,omitempty"`

	Created  string `json:"created,omitempty"`
	Started  string `json:"started,omitempty"`
	Finished string `json:"finished,omitempty"`
}

// ProgressStatus is a point-in-time progress snapshot.
type ProgressStatus struct {
	Done       int `json:"done"`
	Total      int `json:"total"`
	Cumulative int `json:"cumulative"`
}

// ExhibitInfo is one row of the GET /v1/exhibits listing.
type ExhibitInfo struct {
	Name     string `json:"name"`
	Title    string `json:"title"`
	Describe string `json:"describe"`
}

// Handler returns the service's HTTP API. Every handler runs under a
// recover guard that converts a panic into a 500 response, so no request
// can take the process down.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/healthz", s.handleHealthz)
	mux.HandleFunc("GET /v1/exhibits", s.handleExhibits)
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleResult)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	return recoverMiddleware(mux)
}

func recoverMiddleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if p := recover(); p != nil {
				writeError(w, http.StatusInternalServerError, fmt.Sprintf("internal error: %v", p))
			}
		}()
		next.ServeHTTP(w, r)
	})
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	closed := s.closed
	jobs := len(s.jobs)
	s.mu.Unlock()
	status := "ok"
	code := http.StatusOK
	if closed {
		status = "shutting down"
		code = http.StatusServiceUnavailable
	}
	m := s.Metrics()
	writeJSON(w, code, map[string]any{
		"status":         status,
		"jobs":           jobs,
		"jobs_run":       m.JobsRun,
		"cache_hits":     m.CacheHits,
		"jobs_coalesced": m.JobsCoalesced,
		"jobs_recovered": m.JobsRecovered,
		"durable":        s.store != nil,
	})
}

func (s *Server) handleExhibits(w http.ResponseWriter, _ *http.Request) {
	all := exhibit.All()
	out := make([]ExhibitInfo, 0, len(all))
	for _, e := range all {
		out = append(out, ExhibitInfo{Name: e.Name, Title: e.Title, Describe: e.Describe})
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxRequestBody))
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, http.StatusRequestEntityTooLarge,
				fmt.Sprintf("job request body exceeds the %d-byte limit", tooBig.Limit))
			return
		}
		writeError(w, http.StatusBadRequest, fmt.Sprintf("reading request: %v", err))
		return
	}
	sub, status, err := s.validate(body)
	if err != nil {
		writeError(w, status, err.Error())
		return
	}
	j, err := s.submit(sub)
	switch {
	case errors.Is(err, errServerClosed):
		writeError(w, http.StatusServiceUnavailable, err.Error())
		return
	case errors.Is(err, errQueueFull):
		writeError(w, http.StatusServiceUnavailable, err.Error())
		return
	case err != nil:
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	code := http.StatusAccepted
	if j.status().State == StateDone { // cache hit: the result is ready now
		code = http.StatusCreated
	}
	writeJSON(w, code, j.status())
}

// validate turns a request body into a ready submission or an HTTP error.
// Everything a user can get wrong — unknown fields, unknown exhibits,
// invalid scenarios, out-of-range knobs, bad formats — is caught here
// with a 400, so no request reaches the panic-on-misuse library
// boundaries (mc job construction, Scenario.Rates/CostFactor).
func (s *Server) validate(body []byte) (submission, int, error) {
	var req jobRequest
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		return submission{}, http.StatusBadRequest, fmt.Errorf("parsing job request: %w", err)
	}
	if tok, err := dec.Token(); err != io.EOF {
		return submission{}, http.StatusBadRequest, fmt.Errorf("trailing content %v after the job object", tok)
	}

	switch {
	case req.Exhibit == "" && len(req.Scenario) == 0:
		return submission{}, http.StatusBadRequest, errors.New("job needs exactly one of \"exhibit\" and \"scenario\"")
	case req.Exhibit != "" && len(req.Scenario) != 0:
		return submission{}, http.StatusBadRequest, errors.New("job sets both \"exhibit\" and \"scenario\"; pick one")
	case req.Trials < 0:
		return submission{}, http.StatusBadRequest, fmt.Errorf("negative trials %d", req.Trials)
	case req.Trials > s.opts.maxTrials():
		return submission{}, http.StatusBadRequest, fmt.Errorf("trials %d exceeds the server cap %d", req.Trials, s.opts.maxTrials())
	case req.Parallel < 0 || req.Parallel > MaxParallel:
		return submission{}, http.StatusBadRequest, fmt.Errorf("parallel %d outside [0, %d]", req.Parallel, MaxParallel)
	}

	format := req.Format
	if format == "" {
		format = "json"
	}
	if _, err := exhibit.RendererFor(format); err != nil {
		return submission{}, http.StatusBadRequest, err
	}

	sub := submission{
		format: format,
		seed:   req.Seed,
		trials: req.Trials,
		par:    req.Parallel,
		quick:  req.Quick,
	}
	if req.Exhibit != "" {
		ex, ok := exhibit.Lookup(req.Exhibit)
		if !ok {
			return submission{}, http.StatusBadRequest,
				fmt.Errorf("unknown exhibit %q; registered: %s", req.Exhibit, strings.Join(exhibit.Names(), ", "))
		}
		sub.name = ex.Name
		sub.ex = ex
		sub.key = cacheKey(ex.Name, nil, req.Seed, req.Trials, req.Quick)
		return sub, 0, nil
	}

	// ParseScenario overlays the request's scenario on the documented
	// defaults, rejects unknown fields, and validates geometry, rates,
	// and schemes; NewScenarioExhibit validates the workload mix names.
	sc, err := exhibit.ParseScenario(bytes.NewReader(req.Scenario))
	if err != nil {
		return submission{}, http.StatusBadRequest, err
	}
	ex, err := experiments.NewScenarioExhibit(sc)
	if err != nil {
		return submission{}, http.StatusBadRequest, err
	}
	sub.name = ex.Name
	sub.ex = ex
	// The effective scenario (defaults applied) rides along so the journal
	// can re-create the job after a crash.
	sub.scenario = &sc
	// The key hashes the *effective* scenario, so textually different JSON
	// describing the same sweep dedupes.
	sub.key = cacheKey("", &sc, req.Seed, req.Trials, req.Quick)
	return sub, 0, nil
}

func (s *Server) handleList(w http.ResponseWriter, _ *http.Request) {
	jobs := s.snapshotJobs()
	out := make([]JobStatus, 0, len(jobs))
	for _, j := range jobs {
		out = append(out, j.status())
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Sprintf("no job %q", r.PathValue("id")))
		return
	}
	writeJSON(w, http.StatusOK, j.status())
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Sprintf("no job %q", r.PathValue("id")))
		return
	}
	s.cancelJob(j)
	writeJSON(w, http.StatusOK, j.status())
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Sprintf("no job %q", r.PathValue("id")))
		return
	}
	format := j.format
	if q := r.URL.Query().Get("format"); q != "" {
		format = q
	}
	renderer, err := exhibit.RendererFor(format)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}

	st := j.status()
	switch st.State {
	case StateQueued, StateRunning:
		// Not ready yet: report progress so pollers can back off sensibly.
		writeJSON(w, http.StatusAccepted, st)
		return
	case StateCanceled:
		writeJSON(w, http.StatusGone, st)
		return
	case StateFailed:
		writeJSON(w, http.StatusInternalServerError, st)
		return
	}

	j.mu.Lock()
	report := j.report
	j.mu.Unlock()
	if report == nil {
		// A done job recovered from the journal whose persisted result was
		// lost or evicted: the outcome is known but the bytes are not.
		writeError(w, http.StatusGone, "result no longer available (evicted after a restart)")
		return
	}
	w.Header().Set("Content-Type", contentType(format))
	// Render into a buffer first so a mid-render error can still become a
	// clean 500 instead of a truncated 200.
	var buf bytes.Buffer
	if err := renderer.Render(&buf, report); err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(buf.Bytes())
}

func contentType(format string) string {
	switch format {
	case "json":
		return "application/json"
	case "csv":
		return "text/csv"
	}
	return "text/plain; charset=utf-8"
}

// status snapshots the job for the wire.
func (j *job) status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := JobStatus{
		ID:        j.id,
		Exhibit:   j.name,
		State:     j.state,
		Format:    j.format,
		Cached:    j.cached,
		Coalesced: j.coalesced,
		Recovered: j.recovered,
		Resumed:   j.resumed,
		Created:   rfc3339(j.created),
	}
	if j.err != nil {
		st.Error = j.err.Error()
	}
	st.Started = rfc3339(j.started)
	st.Finished = rfc3339(j.finished)
	if j.state == StateRunning {
		done, total := j.tracker.Snapshot()
		st.Progress = &ProgressStatus{Done: done, Total: total, Cumulative: j.tracker.CumulativeDone()}
	}
	return st
}

func rfc3339(t time.Time) string {
	if t.IsZero() {
		return ""
	}
	return t.UTC().Format(time.RFC3339Nano)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]string{"error": msg})
}
