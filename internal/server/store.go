package server

import (
	"encoding/json"
	"fmt"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"arcc/internal/exhibit"
	"arcc/internal/faultfs"
	"arcc/internal/mc"
)

// The durable store's on-disk layout under Options.StateDir:
//
//	journal.jsonl           append-only job journal, one JSON record per
//	                        line, fsync'd per append; replayed on startup
//	results/<key>.json      content-addressed encoded reports
//	                        (exhibit.EncodeReport), written atomically
//	checkpoints/<id>.json   a running job's engine checkpoints, keyed by
//	                        engine-job sequence index, written atomically
//
// Every mutation goes through a faultfs.FS, so tests inject write/sync/
// rename failures and torn appends deterministically.
const (
	journalName    = "journal.jsonl"
	resultsDir     = "results"
	checkpointsDir = "checkpoints"
)

// journalRecord is one line of the job journal. A job contributes a
// "submit" record when accepted and exactly one terminal record ("done",
// "failed", "canceled") when it ends — except when the process dies or a
// shutdown interrupts it, which is precisely how replay tells interrupted
// jobs (re-enqueue from their latest checkpoint) from finished ones.
type journalRecord struct {
	Op       string            `json:"op"`
	ID       string            `json:"id"`
	Key      string            `json:"key,omitempty"`
	Name     string            `json:"name,omitempty"`
	Format   string            `json:"format,omitempty"`
	Exhibit  string            `json:"exhibit,omitempty"`
	Scenario *exhibit.Scenario `json:"scenario,omitempty"`
	Seed     int64             `json:"seed,omitempty"`
	Trials   int               `json:"trials,omitempty"`
	Parallel int               `json:"parallel,omitempty"`
	Quick    bool              `json:"quick,omitempty"`
	Cached   bool              `json:"cached,omitempty"`
	Error    string            `json:"error,omitempty"`
	Time     string            `json:"time,omitempty"`
}

// The journal operations.
const (
	opSubmit   = "submit"
	opDone     = "done"
	opFailed   = "failed"
	opCanceled = "canceled"
)

// store persists jobs, results, and checkpoints under one directory.
// Append and rewrite are serialized by mu; the result and checkpoint
// files are written atomically (tmp + rename) so readers never observe a
// partial file — only the journal needs torn-tail tolerance.
type store struct {
	fs   faultfs.FS
	dir  string
	logf func(format string, args ...any)

	mu      sync.Mutex
	journal faultfs.File
	appends int // records since the last rewrite, for compaction
}

// compactEvery bounds journal growth: after this many appends the journal
// is rewritten to just the live records at the next opportunity.
const compactEvery = 4096

func newStore(fs faultfs.FS, dir string, logf func(string, ...any)) (*store, error) {
	for _, d := range []string{dir, filepath.Join(dir, resultsDir), filepath.Join(dir, checkpointsDir)} {
		if err := fs.MkdirAll(d, 0o755); err != nil {
			return nil, fmt.Errorf("server: state dir: %w", err)
		}
	}
	journal, err := fs.OpenAppend(filepath.Join(dir, journalName))
	if err != nil {
		return nil, fmt.Errorf("server: open journal: %w", err)
	}
	return &store{fs: fs, dir: dir, logf: logf, journal: journal}, nil
}

func (st *store) close() {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.journal != nil {
		st.journal.Close()
		st.journal = nil
	}
}

// append journals one record: a single line, written in one call and
// fsync'd, so a crash can tear at most the final record — which replay
// tolerates.
func (st *store) append(rec journalRecord) error {
	rec.Time = time.Now().UTC().Format(time.RFC3339Nano)
	line, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("server: journal marshal: %w", err)
	}
	line = append(line, '\n')
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.journal == nil {
		return fmt.Errorf("server: journal closed")
	}
	if _, err := st.journal.Write(line); err != nil {
		return fmt.Errorf("server: journal append: %w", err)
	}
	if err := st.journal.Sync(); err != nil {
		return fmt.Errorf("server: journal sync: %w", err)
	}
	st.appends++
	return nil
}

// replay reads the journal back. A torn final line — the signature of a
// crash mid-append — is dropped; every record before it is recovered. A
// malformed line elsewhere ends the replay at that point too, surrendering
// the tail rather than failing startup.
func (st *store) replay() []journalRecord {
	data, err := st.fs.ReadFile(filepath.Join(st.dir, journalName))
	if err != nil {
		return nil // first boot: no journal yet
	}
	var recs []journalRecord
	lines := strings.Split(string(data), "\n")
	for i, line := range lines {
		if line == "" {
			continue
		}
		var rec journalRecord
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			dropped := len(lines) - i
			st.logf("server: journal: dropping %d unparsable trailing record(s) (torn write?): %v", dropped, err)
			break
		}
		recs = append(recs, rec)
	}
	return recs
}

// rewrite replaces the journal with just recs (atomic tmp + rename) and
// reopens the append handle — startup compaction after replay.
func (st *store) rewrite(recs []journalRecord) error {
	var buf []byte
	for _, rec := range recs {
		line, err := json.Marshal(rec)
		if err != nil {
			return fmt.Errorf("server: journal marshal: %w", err)
		}
		buf = append(buf, line...)
		buf = append(buf, '\n')
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	path := filepath.Join(st.dir, journalName)
	if err := st.writeFileAtomic(path, buf); err != nil {
		return err
	}
	if st.journal != nil {
		st.journal.Close()
	}
	journal, err := st.fs.OpenAppend(path)
	if err != nil {
		st.journal = nil
		return fmt.Errorf("server: reopen journal: %w", err)
	}
	st.journal = journal
	st.appends = 0
	return nil
}

// writeFileAtomic lands blob at path via tmp + fsync + rename, so a crash
// leaves either the old file or the new one, never a mix.
func (st *store) writeFileAtomic(path string, blob []byte) error {
	tmp := path + ".tmp"
	f, err := st.fs.Create(tmp)
	if err != nil {
		return fmt.Errorf("server: create %s: %w", tmp, err)
	}
	if _, err := f.Write(blob); err != nil {
		f.Close()
		st.fs.Remove(tmp)
		return fmt.Errorf("server: write %s: %w", tmp, err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		st.fs.Remove(tmp)
		return fmt.Errorf("server: sync %s: %w", tmp, err)
	}
	if err := f.Close(); err != nil {
		st.fs.Remove(tmp)
		return fmt.Errorf("server: close %s: %w", tmp, err)
	}
	if err := st.fs.Rename(tmp, path); err != nil {
		st.fs.Remove(tmp)
		return fmt.Errorf("server: rename %s: %w", path, err)
	}
	return nil
}

// saveResult persists an encoded report under its content-addressed key.
func (st *store) saveResult(key string, blob []byte) error {
	return st.writeFileAtomic(filepath.Join(st.dir, resultsDir, key+".json"), blob)
}

func (st *store) removeResult(key string) {
	st.fs.Remove(filepath.Join(st.dir, resultsDir, key+".json"))
}

// loadResults decodes every persisted report, keyed by cache key. A file
// that fails to decode is skipped (and logged): losing one cached result
// costs a re-run, not a failed startup.
func (st *store) loadResults() map[string]*exhibit.Report {
	entries, err := st.fs.ReadDir(filepath.Join(st.dir, resultsDir))
	if err != nil {
		return nil
	}
	out := map[string]*exhibit.Report{}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".json") || strings.HasSuffix(name, ".tmp") {
			continue
		}
		blob, err := st.fs.ReadFile(filepath.Join(st.dir, resultsDir, name))
		if err != nil {
			continue
		}
		report, err := exhibit.DecodeReport(blob)
		if err != nil {
			st.logf("server: skipping undecodable result %s: %v", name, err)
			continue
		}
		out[strings.TrimSuffix(name, ".json")] = report
	}
	return out
}

// saveCheckpoints persists a job's engine checkpoints (all engine jobs
// the exhibit has run so far, keyed by sequence index) in one atomic
// write, so replay sees a consistent set.
func (st *store) saveCheckpoints(id string, cps map[int]*mc.Checkpoint) error {
	blob, err := json.Marshal(cps)
	if err != nil {
		return fmt.Errorf("server: checkpoint marshal: %w", err)
	}
	return st.writeFileAtomic(filepath.Join(st.dir, checkpointsDir, id+".json"), blob)
}

func (st *store) removeCheckpoints(id string) {
	st.fs.Remove(filepath.Join(st.dir, checkpointsDir, id+".json"))
}

// loadCheckpoints reads every job's persisted checkpoints, keyed by job
// id. Undecodable files are skipped — the job re-runs from scratch.
func (st *store) loadCheckpoints() map[string]map[int]*mc.Checkpoint {
	entries, err := st.fs.ReadDir(filepath.Join(st.dir, checkpointsDir))
	if err != nil {
		return nil
	}
	out := map[string]map[int]*mc.Checkpoint{}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".json") || strings.HasSuffix(name, ".tmp") {
			continue
		}
		blob, err := st.fs.ReadFile(filepath.Join(st.dir, checkpointsDir, name))
		if err != nil {
			continue
		}
		var cps map[int]*mc.Checkpoint
		if err := json.Unmarshal(blob, &cps); err != nil {
			st.logf("server: skipping undecodable checkpoints %s: %v", name, err)
			continue
		}
		out[strings.TrimSuffix(name, ".json")] = cps
	}
	return out
}

// needsCompaction reports whether enough appends accumulated to warrant a
// rewrite.
func (st *store) needsCompaction() bool {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.appends >= compactEvery
}
