package cache

import (
	"math/rand"
	"testing"
)

func newSmall(policy Policy) *LLC {
	// 8 KB, 2-way: 64 sets — small enough to force evictions quickly.
	return New(8*1024, 2, policy)
}

func TestNewPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"zero size":   func() { New(0, 2, SharedRecency) },
		"zero assoc":  func() { New(1024, 0, SharedRecency) },
		"indivisible": func() { New(64*3, 2, SharedRecency) },
		"one set":     func() { New(128, 2, SharedRecency) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			f()
		}()
	}
}

func TestMissThenHit(t *testing.T) {
	c := newSmall(SharedRecency)
	if c.Access(100, false) {
		t.Fatal("cold access hit")
	}
	c.Insert(100, false, false)
	if !c.Access(100, false) {
		t.Fatal("access after insert missed")
	}
	hits, misses, _, _ := c.Stats()
	if hits != 1 || misses != 1 {
		t.Fatalf("stats %d/%d", hits, misses)
	}
}

func TestLRUEviction(t *testing.T) {
	c := newSmall(SharedRecency) // 64 sets, 2 ways
	// Three addresses in the same set (stride = numSets).
	a, b, d := uint64(0), uint64(64), uint64(128)
	c.Insert(a, false, false)
	c.Insert(b, false, false)
	c.Access(a, false) // b becomes LRU
	ev := c.Insert(d, false, false)
	if len(ev) != 1 || ev[0].Addr != b {
		t.Fatalf("evictions = %+v, want [b=64]", ev)
	}
	if !c.Contains(a) || c.Contains(b) || !c.Contains(d) {
		t.Fatal("wrong resident set after eviction")
	}
}

func TestDirtyEvictionCountsWriteback(t *testing.T) {
	c := newSmall(SharedRecency)
	c.Insert(0, false, true) // dirty
	c.Insert(64, false, false)
	ev := c.Insert(128, false, false) // evicts 0 (LRU)
	if len(ev) != 1 || !ev[0].Dirty {
		t.Fatalf("evictions = %+v, want dirty eviction of 0", ev)
	}
	_, _, wb, _ := c.Stats()
	if wb != 1 {
		t.Fatalf("writebacks = %d, want 1", wb)
	}
}

func TestUpgradedInsertBringsBothSubLines(t *testing.T) {
	c := newSmall(SharedRecency)
	c.Insert(10, true, false)
	if !c.Contains(10) || !c.Contains(11) {
		t.Fatal("upgraded insert must fill both sub-lines")
	}
	// Sub-lines land in adjacent sets.
	if c.setIndex(10) == c.setIndex(11) {
		t.Fatal("sub-lines should map to different (adjacent) sets")
	}
}

func TestUpgradedPairEvictsTogether(t *testing.T) {
	c := newSmall(SharedRecency)
	c.Insert(10, true, true) // pair {10, 11}, 10 dirty
	// Force eviction of 10 by filling its set (set index 10, 2 ways) with
	// same-set addresses; collect evictions across all inserts.
	var ev []Eviction
	for _, a := range []uint64{10 + 64, 10 + 128, 10 + 192} {
		ev = append(ev, c.Insert(a, false, false)...)
	}
	var sawPair int
	for _, e := range ev {
		if e.Addr == 10 || e.Addr == 11 {
			sawPair++
			if !e.Upgraded {
				t.Fatal("pair eviction not flagged upgraded")
			}
			if !e.Dirty {
				t.Fatal("either-dirty must force both sub-lines to write back dirty")
			}
		}
	}
	if sawPair != 2 {
		t.Fatalf("evicting one sub-line evicted %d pair members, want 2 (%+v)", sawPair, ev)
	}
	if c.Contains(11) {
		t.Fatal("partner sub-line still resident after pair eviction")
	}
}

func TestSharedRecencyProtectsPartner(t *testing.T) {
	// Pair {0, 1}; only sub-line 1 is reused. Under SharedRecency the
	// reuse of 1 must protect 0 from eviction.
	c := newSmall(SharedRecency)
	c.Insert(0, true, false) // pair {0,1}: 0 in set 0, 1 in set 1
	c.Insert(64, false, false)
	c.Access(1, false)                // refresh partner's recency
	c.Access(64, false)               // refresh competitor too... make 64 newer than 0's own use
	c.Access(1, false)                // partner newest overall
	ev := c.Insert(128, false, false) // set 0 is full: {0, 64}
	if len(ev) != 1 {
		t.Fatalf("evictions %+v", ev)
	}
	if ev[0].Addr != 64 {
		t.Fatalf("evicted %d, want 64: shared recency should protect sub-line 0", ev[0].Addr)
	}
}

func TestIndependentLRUDoesNotProtectPartner(t *testing.T) {
	c := newSmall(IndependentLRU)
	c.Insert(0, true, false)
	c.Insert(64, false, false)
	c.Access(1, false)
	c.Access(64, false)
	c.Access(1, false)
	ev := c.Insert(128, false, false)
	// Under independent LRU, sub-line 0's own recency is oldest, so the
	// pair gets evicted despite partner reuse.
	found := false
	for _, e := range ev {
		if e.Addr == 0 {
			found = true
		}
	}
	if !found {
		t.Fatalf("independent LRU should evict sub-line 0 (evictions %+v)", ev)
	}
}

func TestPartnerReinsertIsIdempotent(t *testing.T) {
	c := newSmall(SharedRecency)
	c.Insert(20, true, false)
	c.Insert(21, true, true) // partner already resident; must not duplicate
	if !c.Contains(20) || !c.Contains(21) {
		t.Fatal("pair should be resident")
	}
	// Count resident copies of 21's tag in its set.
	set := c.sets[c.setIndex(21)]
	tag := c.tagOf(21)
	n := 0
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			n++
		}
	}
	if n != 1 {
		t.Fatalf("%d copies of line 21 resident, want 1", n)
	}
}

func TestWriteMarksOnlyRequestedSubLineDirty(t *testing.T) {
	c := newSmall(SharedRecency)
	c.Insert(30, true, true) // write to even sub-line
	// Evict the pair and check dirtiness: 30 dirty, and pair write-back
	// policy promotes both to dirty together.
	c.Insert(30+64, false, false)
	c.Insert(30+128, false, false)
	ev := c.Insert(30+192, false, false)
	for _, e := range ev {
		if (e.Addr == 30 || e.Addr == 31) && !e.Dirty {
			t.Fatalf("pair member %d not dirty on paired write-back", e.Addr)
		}
	}
}

func TestTagReadsCountedForSharedRecency(t *testing.T) {
	c := newSmall(SharedRecency)
	c.Insert(0, true, false)
	c.Insert(64, false, false)
	_, _, _, before := c.Stats()
	c.Insert(128, false, false) // replacement in set 0 examines partner tag
	_, _, _, after := c.Stats()
	if after <= before {
		t.Fatal("replacement did not record extra tag reads")
	}
}

func TestHitRate(t *testing.T) {
	c := newSmall(SharedRecency)
	if c.HitRate() != 0 {
		t.Fatal("hit rate before any access")
	}
	c.Insert(5, false, false)
	c.Access(5, false)
	c.Access(6, false)
	if got := c.HitRate(); got != 0.5 {
		t.Fatalf("hit rate = %v, want 0.5", got)
	}
}

func TestRandomizedInvariantNoDuplicateResidency(t *testing.T) {
	c := New(16*1024, 4, SharedRecency)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 50000; i++ {
		addr := uint64(rng.Intn(4096))
		upgraded := rng.Intn(3) == 0
		write := rng.Intn(2) == 0
		if !c.Access(addr, write) {
			c.Insert(addr, upgraded, write)
		}
	}
	// Invariant: no tag appears twice in a set.
	for si, set := range c.sets {
		seen := map[uint64]bool{}
		for _, w := range set {
			if !w.valid {
				continue
			}
			if seen[w.tag] {
				t.Fatalf("set %d holds duplicate tag %d", si, w.tag)
			}
			seen[w.tag] = true
		}
	}
}

func TestSpatialWorkloadBenefitsFromUpgradedPrefetch(t *testing.T) {
	// With strong spatial locality, inserting 128 B pairs should raise the
	// hit rate versus 64 B fills — the "useful prefetch" effect of §7.2.
	run := func(upgraded bool) float64 {
		c := New(64*1024, 8, SharedRecency)
		rng := rand.New(rand.NewSource(2))
		addr := uint64(0)
		for i := 0; i < 200000; i++ {
			if rng.Float64() < 0.8 {
				addr++
			} else {
				addr = uint64(rng.Intn(1 << 20))
			}
			if !c.Access(addr, false) {
				c.Insert(addr, upgraded, false)
			}
		}
		return c.HitRate()
	}
	relaxed, upgraded := run(false), run(true)
	if upgraded <= relaxed {
		t.Fatalf("upgraded-line prefetch did not help a sequential workload: %v <= %v", upgraded, relaxed)
	}
}

// TestInsertIntoMatchesInsert pins the scratch API to the legacy one: the
// same access/insert sequence driven through InsertInto (with a reused
// eviction buffer) and Insert produces identical evictions and statistics.
func TestInsertIntoMatchesInsert(t *testing.T) {
	for _, policy := range []Policy{SharedRecency, IndependentLRU} {
		legacy := newSmall(policy)
		scratch := newSmall(policy)
		rng := rand.New(rand.NewSource(7))
		var evs []Eviction
		for i := 0; i < 20000; i++ {
			addr := uint64(rng.Intn(512))
			write := rng.Intn(3) == 0
			upgraded := rng.Intn(3) == 0
			if legacy.Access(addr, write) != scratch.Access(addr, write) {
				t.Fatalf("policy %v: access %d diverged", policy, i)
			}
			if legacy.Contains(addr) {
				continue
			}
			want := legacy.Insert(addr, upgraded, write)
			evs = scratch.InsertInto(addr, upgraded, write, evs[:0])
			if len(want) != len(evs) {
				t.Fatalf("policy %v: insert %d: %d evictions vs %d", policy, i, len(evs), len(want))
			}
			for j := range want {
				if want[j] != evs[j] {
					t.Fatalf("policy %v: insert %d eviction %d: %+v vs %+v", policy, i, j, evs[j], want[j])
				}
			}
		}
		lh, lm, lw, lt := legacy.Stats()
		sh, sm, sw, st := scratch.Stats()
		if lh != sh || lm != sm || lw != sw || lt != st {
			t.Fatalf("policy %v: stats diverged: %d/%d/%d/%d vs %d/%d/%d/%d", policy, sh, sm, sw, st, lh, lm, lw, lt)
		}
	}
}

// TestAccessInsertAllocationFree pins the steady-state LLC hot path to zero
// heap allocations: lookups, and fills through InsertInto with a reused
// eviction scratch.
func TestAccessInsertAllocationFree(t *testing.T) {
	c := newSmall(SharedRecency)
	evs := make([]Eviction, 0, 4)
	addr := uint64(0)
	fill := func() {
		a := addr % 4096
		if !c.Access(a, addr%5 == 0) {
			evs = c.InsertInto(a, addr%3 == 0, addr%5 == 0, evs[:0])
		}
		addr += 17
	}
	for i := 0; i < 1000; i++ {
		fill() // populate so the measured runs evict constantly
	}
	if allocs := testing.AllocsPerRun(2000, fill); allocs != 0 {
		t.Errorf("Access+InsertInto: %v allocs/op, want 0", allocs)
	}
}

// TestReset pins that a reset cache behaves exactly like a fresh one.
func TestReset(t *testing.T) {
	used := newSmall(SharedRecency)
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 5000; i++ {
		a := uint64(rng.Intn(512))
		if !used.Access(a, i%4 == 0) {
			used.Insert(a, i%2 == 0, i%4 == 0)
		}
	}
	used.Reset()
	fresh := newSmall(SharedRecency)
	rng = rand.New(rand.NewSource(10))
	for i := 0; i < 5000; i++ {
		a := uint64(rng.Intn(512))
		w := i%4 == 0
		if used.Access(a, w) != fresh.Access(a, w) {
			t.Fatalf("access %d diverged after Reset", i)
		}
		if !fresh.Contains(a) {
			wantEv := fresh.Insert(a, i%2 == 0, w)
			gotEv := used.Insert(a, i%2 == 0, w)
			if len(wantEv) != len(gotEv) {
				t.Fatalf("insert %d diverged after Reset", i)
			}
		}
	}
	uh, um, uw, ut := used.Stats()
	fh, fm, fw, ft := fresh.Stats()
	if uh != fh || um != fm || uw != fw || ut != ft {
		t.Fatalf("stats diverged after Reset: %d/%d/%d/%d vs %d/%d/%d/%d", uh, um, uw, ut, fh, fm, fw, ft)
	}
}
