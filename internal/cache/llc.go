// Package cache models the last-level cache with ARCC's modifications
// (§4.2.3): 64 B cachelines plus an upgraded-line tag bit; the two 64 B
// sub-lines of a 128 B upgraded line live in adjacent sets (their physical
// addresses are consecutive), are written back to memory *together* so all
// four check symbols per codeword stay consistent, and share a recency value
// so one sub-line's reuse keeps both resident.
package cache

import (
	"fmt"
	"math/bits"
)

// Line address convention: a cacheline is identified by its 64 B line index
// (byte address / 64). The partner sub-line of an upgraded line at address a
// is a^1 — the adjacent line, which maps to the adjacent set.

// Eviction describes one line pushed out of the cache.
type Eviction struct {
	Addr     uint64
	Dirty    bool
	Upgraded bool
	// PairedWith is the partner address written back together with this
	// line when it belongs to an upgraded pair (valid when Upgraded).
	PairedWith uint64
}

// Policy selects how upgraded pairs are treated by replacement.
type Policy int

const (
	// SharedRecency is the paper's design: a sub-line's replacement
	// recency is the max of both sub-lines' recencies, and evicting one
	// sub-line evicts (and pairs the write-back of) the other.
	SharedRecency Policy = iota
	// IndependentLRU treats sub-lines as unrelated lines except that
	// eviction of a dirty sub-line still drags its partner out for the
	// paired write-back. Kept for the ablation benchmarks.
	IndependentLRU
)

type way struct {
	tag      uint64
	valid    bool
	dirty    bool
	upgraded bool
	lastUse  int64
}

// LLC is a set-associative write-back, write-allocate cache.
type LLC struct {
	sets     [][]way
	numSets  uint64
	tagShift uint // log2(numSets); addr = tag<<tagShift | setIndex
	assoc    int
	policy   Policy
	clock    int64
	tagReads int64

	hits, misses, writebacks int64
}

// New builds an LLC of sizeBytes with the given associativity and 64 B
// lines. Table 7.2's L2 is 1 MB, 16-way.
func New(sizeBytes, assoc int, policy Policy) *LLC {
	if sizeBytes <= 0 || assoc <= 0 {
		panic(fmt.Sprintf("cache: invalid size %d / assoc %d", sizeBytes, assoc))
	}
	lines := sizeBytes / 64
	if lines%assoc != 0 {
		panic(fmt.Sprintf("cache: %d lines not divisible by associativity %d", lines, assoc))
	}
	numSets := lines / assoc
	if numSets < 2 {
		panic("cache: need at least 2 sets for paired sub-lines")
	}
	if numSets&(numSets-1) != 0 {
		panic(fmt.Sprintf("cache: set count %d must be a power of two", numSets))
	}
	sets := make([][]way, numSets)
	backing := make([]way, numSets*assoc)
	for i := range sets {
		sets[i], backing = backing[:assoc], backing[assoc:]
	}
	return &LLC{
		sets:     sets,
		numSets:  uint64(numSets),
		tagShift: uint(bits.TrailingZeros64(uint64(numSets))),
		assoc:    assoc,
		policy:   policy,
	}
}

// Reset returns the cache to its post-New state — empty, counters zeroed —
// reusing the backing arrays. sim.Scratch resets rather than reallocates the
// LLCs between simulator runs.
func (c *LLC) Reset() {
	for _, set := range c.sets {
		clear(set)
	}
	c.clock, c.tagReads = 0, 0
	c.hits, c.misses, c.writebacks = 0, 0, 0
}

func (c *LLC) setIndex(addr uint64) uint64 { return addr & (c.numSets - 1) }
func (c *LLC) tagOf(addr uint64) uint64    { return addr >> c.tagShift }

func (c *LLC) find(addr uint64) *way {
	set := c.sets[c.setIndex(addr)]
	tag := c.tagOf(addr)
	c.tagReads++
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			return &set[i]
		}
	}
	return nil
}

// Access looks up addr, updating recency and the dirty bit on a hit.
// It reports whether the access hit.
func (c *LLC) Access(addr uint64, write bool) bool {
	c.clock++
	if w := c.find(addr); w != nil {
		c.hits++
		w.lastUse = c.clock
		if write {
			w.dirty = true
		}
		return true
	}
	c.misses++
	return false
}

// Contains reports residency without touching recency or statistics.
func (c *LLC) Contains(addr uint64) bool {
	set := c.sets[c.setIndex(addr)]
	tag := c.tagOf(addr)
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			return true
		}
	}
	return false
}

// Insert fills addr after a miss. For upgraded lines both sub-lines
// (addr&^1 and addr|1) are inserted — the memory returned the whole 128 B
// line. Returns the evictions this caused in a fresh slice (nil when none).
// write marks the *requested* line dirty.
//
// Insert is a compatibility wrapper over InsertInto; hot callers should
// pass their own eviction scratch to InsertInto instead.
func (c *LLC) Insert(addr uint64, upgraded, write bool) []Eviction {
	return c.InsertInto(addr, upgraded, write, nil)
}

// InsertInto is Insert with a caller-owned eviction buffer: the evictions
// (at most three: a victim plus an upgraded victim's partner per sub-line
// inserted) are appended to evs and the extended slice is returned. Passing
// a scratch slice with spare capacity makes a steady-state miss path
// allocation-free.
func (c *LLC) InsertInto(addr uint64, upgraded, write bool, evs []Eviction) []Eviction {
	c.clock++
	if !upgraded {
		return c.insertOne(addr, false, write, evs)
	}
	lo, hi := addr&^uint64(1), addr|1
	evs = c.insertOne(lo, true, write && addr == lo, evs)
	evs = c.insertOne(hi, true, write && addr == hi, evs)
	return evs
}

func (c *LLC) insertOne(addr uint64, upgraded, dirty bool, evs []Eviction) []Eviction {
	if w := c.find(addr); w != nil {
		// Already resident (e.g. partner was brought in earlier).
		w.lastUse = c.clock
		w.upgraded = w.upgraded || upgraded
		w.dirty = w.dirty || dirty
		return evs
	}
	set := c.sets[c.setIndex(addr)]
	victim := c.pickVictim(addr, set)
	if victim.valid {
		evs = c.evict(victim, c.setIndex(addr), evs)
	}
	*victim = way{tag: c.tagOf(addr), valid: true, dirty: dirty, upgraded: upgraded, lastUse: c.clock}
	return evs
}

// pickVictim selects the LRU way. Under SharedRecency, a sub-line of an
// upgraded pair is judged by the most recent use of either sub-line, which
// costs a second tag access (counted; the paper doubles replacement time
// and observes no slowdown).
func (c *LLC) pickVictim(addr uint64, set []way) *way {
	for i := range set {
		if !set[i].valid {
			return &set[i]
		}
	}
	setIdx := c.setIndex(addr)
	best := 0
	bestRecency := int64(1<<62 - 1)
	for i := range set {
		rec := set[i].lastUse
		if c.policy == SharedRecency && set[i].upgraded {
			if p := c.partnerOf(&set[i], setIdx); p != nil {
				c.tagReads++
				if p.lastUse > rec {
					rec = p.lastUse
				}
			}
		}
		if rec < bestRecency {
			bestRecency = rec
			best = i
		}
	}
	return &set[best]
}

// partnerOf finds the partner sub-line of w (which lives in the adjacent
// set with the same tag), or nil if it is not resident.
func (c *LLC) partnerOf(w *way, setIdx uint64) *way {
	addr := w.tag<<c.tagShift | setIdx
	partner := addr ^ 1
	set := c.sets[c.setIndex(partner)]
	tag := c.tagOf(partner)
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			return &set[i]
		}
	}
	return nil
}

// evict removes w and, for upgraded sub-lines, also removes the partner so
// both halves write back together. The evictions are appended to evs.
func (c *LLC) evict(w *way, setIdx uint64, evs []Eviction) []Eviction {
	addr := w.tag<<c.tagShift | setIdx
	if !w.upgraded {
		if w.dirty {
			c.writebacks++
		}
		w.valid = false
		return append(evs, Eviction{Addr: addr, Dirty: w.dirty})
	}
	partnerAddr := addr ^ 1
	base := len(evs)
	evs = append(evs, Eviction{Addr: addr, Dirty: w.dirty, Upgraded: true, PairedWith: partnerAddr})
	if p := c.partnerOf(w, setIdx); p != nil {
		// Either sub-line dirty forces the pair to write back together.
		evs = append(evs, Eviction{Addr: partnerAddr, Dirty: p.dirty, Upgraded: true, PairedWith: addr})
		if w.dirty || p.dirty {
			evs[base].Dirty = true
			evs[base+1].Dirty = true
			c.writebacks += 2
		}
		p.valid = false
	} else if w.dirty {
		c.writebacks++
	}
	w.valid = false
	return evs
}

// Stats returns hit/miss/writeback counters and total tag reads (the extra
// tag read per replacement is the overhead §4.2.3 discusses).
func (c *LLC) Stats() (hits, misses, writebacks, tagReads int64) {
	return c.hits, c.misses, c.writebacks, c.tagReads
}

// HitRate returns hits / (hits + misses), or 0 before any access.
func (c *LLC) HitRate() float64 {
	total := c.hits + c.misses
	if total == 0 {
		return 0
	}
	return float64(c.hits) / float64(total)
}
