package cache

import (
	"math/rand"
	"testing"
)

func TestSectoredMissThenHit(t *testing.T) {
	c := NewSectored(8*1024, 2)
	if c.Access(100, false) {
		t.Fatal("cold hit")
	}
	c.Insert(100, false, false)
	if !c.Access(100, false) {
		t.Fatal("miss after insert")
	}
	// The partner sub-sector is NOT valid after a relaxed fill.
	if c.Access(101, false) {
		t.Fatal("relaxed fill validated the partner sub-sector")
	}
}

func TestSectoredUpgradedFillValidatesBoth(t *testing.T) {
	c := NewSectored(8*1024, 2)
	c.Insert(10, true, false)
	if !c.Access(10, false) || !c.Access(11, false) {
		t.Fatal("upgraded fill must validate both sub-sectors")
	}
}

func TestSectoredPartnerFillSharesTag(t *testing.T) {
	c := NewSectored(8*1024, 2)
	c.Insert(20, false, false)
	c.Insert(21, false, true) // same sector, second sub-sector, dirty
	if !c.Access(20, false) || !c.Access(21, false) {
		t.Fatal("both sub-sectors should now be valid under one tag")
	}
}

func TestSectoredEvictionWritesBackDirtySubsectors(t *testing.T) {
	c := NewSectored(8*1024, 2) // 32 sets of 2 sectors
	c.Insert(0, false, true)    // sector 0, sub 0, dirty
	// Fill set 0 with conflicting sectors (sector addr stride = 32).
	var evs []Eviction
	for _, line := range []uint64{64, 128, 192} { // sectors 32, 64, 96 -> set 0
		evs = append(evs, c.Insert(line, false, false)...)
	}
	var sawDirty bool
	for _, e := range evs {
		if e.Addr == 0 && e.Dirty {
			sawDirty = true
		}
	}
	if !sawDirty {
		t.Fatalf("dirty sub-sector not written back on eviction: %+v", evs)
	}
}

func TestSectoredUpgradedEvictionPairsDirty(t *testing.T) {
	c := NewSectored(8*1024, 2)
	c.Insert(0, true, true) // upgraded sector, sub 0 dirty
	var evs []Eviction
	for _, line := range []uint64{64, 128, 192} {
		evs = append(evs, c.Insert(line, false, false)...)
	}
	var both int
	for _, e := range evs {
		if (e.Addr == 0 || e.Addr == 1) && e.Dirty && e.Upgraded {
			both++
		}
	}
	if both != 2 {
		t.Fatalf("upgraded sector eviction wrote back %d dirty sub-lines, want 2 (%+v)", both, evs)
	}
}

func TestSectoredWastesCapacityOnRandomWorkloads(t *testing.T) {
	// The design tradeoff the paper cites: on a low-spatial-locality
	// workload the sectored cache holds half-empty sectors, so its hit
	// rate falls below the paired-set LLC of the same size.
	run := func(useSectored bool) float64 {
		rng := rand.New(rand.NewSource(3))
		var hitRate func() float64
		var access func(uint64) bool
		var insert func(uint64)
		if useSectored {
			c := NewSectored(64*1024, 8)
			access = func(a uint64) bool { return c.Access(a, false) }
			insert = func(a uint64) { c.Insert(a, false, false) }
			hitRate = c.HitRate
		} else {
			c := New(64*1024, 8, SharedRecency)
			access = func(a uint64) bool { return c.Access(a, false) }
			insert = func(a uint64) { c.Insert(a, false, false) }
			hitRate = c.HitRate
		}
		// Hot random working set somewhat larger than half the cache.
		for i := 0; i < 300000; i++ {
			a := uint64(rng.Intn(1200))
			if !access(a) {
				insert(a)
			}
		}
		return hitRate()
	}
	sectored, paired := run(true), run(false)
	if sectored >= paired {
		t.Fatalf("sectored hit rate %.3f should fall below paired-set %.3f on random access", sectored, paired)
	}
}

func TestSectoredPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"zero size":   func() { NewSectored(0, 2) },
		"zero assoc":  func() { NewSectored(1024, 0) },
		"indivisible": func() { NewSectored(128*3, 2) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			f()
		}()
	}
}
