package cache

import (
	"fmt"
	"math/bits"
)

// Sectored is the alternative LLC organisation §4.2.3 mentions (Rothman &
// Smith's sector cache): 128 B sectors, one tag per sector, two 64 B
// sub-sector valid/dirty bits. Upgraded lines fill a whole sector; relaxed
// lines fill one sub-sector and leave the other invalid, which is exactly
// the capacity waste that made the paper prefer the paired-set design for
// workloads with low spatial locality.
type Sectored struct {
	sets     [][]sector
	numSets  uint64
	tagShift uint // log2(numSets)
	assoc    int
	clock    int64

	hits, misses, writebacks int64
}

type sector struct {
	tag      uint64
	valid    [2]bool
	dirty    [2]bool
	upgraded bool
	lastUse  int64
}

// NewSectored builds a sectored LLC of sizeBytes with assoc sectors per set.
func NewSectored(sizeBytes, assoc int) *Sectored {
	if sizeBytes <= 0 || assoc <= 0 {
		panic(fmt.Sprintf("cache: invalid size %d / assoc %d", sizeBytes, assoc))
	}
	sectors := sizeBytes / 128
	if sectors%assoc != 0 {
		panic(fmt.Sprintf("cache: %d sectors not divisible by associativity %d", sectors, assoc))
	}
	numSets := sectors / assoc
	if numSets == 0 || numSets&(numSets-1) != 0 {
		panic(fmt.Sprintf("cache: sector set count %d must be a positive power of two", numSets))
	}
	sets := make([][]sector, numSets)
	backing := make([]sector, numSets*assoc)
	for i := range sets {
		sets[i], backing = backing[:assoc], backing[assoc:]
	}
	return &Sectored{
		sets:     sets,
		numSets:  uint64(numSets),
		tagShift: uint(bits.TrailingZeros64(uint64(numSets))),
		assoc:    assoc,
	}
}

// sectorOf splits a line address into (sector address, sub-sector index).
func sectorOf(addr uint64) (uint64, int) { return addr >> 1, int(addr & 1) }

func (c *Sectored) setIndex(sectorAddr uint64) uint64 { return sectorAddr & (c.numSets - 1) }
func (c *Sectored) tagOf(sectorAddr uint64) uint64    { return sectorAddr >> c.tagShift }

func (c *Sectored) find(sectorAddr uint64) *sector {
	set := c.sets[c.setIndex(sectorAddr)]
	tag := c.tagOf(sectorAddr)
	for i := range set {
		if (set[i].valid[0] || set[i].valid[1]) && set[i].tag == tag {
			return &set[i]
		}
	}
	return nil
}

// Access looks up addr; a hit requires both a tag match and a valid
// sub-sector.
func (c *Sectored) Access(addr uint64, write bool) bool {
	c.clock++
	sa, sub := sectorOf(addr)
	if s := c.find(sa); s != nil && s.valid[sub] {
		c.hits++
		s.lastUse = c.clock
		if write {
			s.dirty[sub] = true
		}
		return true
	}
	c.misses++
	return false
}

// Insert fills addr after a miss. Upgraded fills validate both sub-sectors
// (the memory returned 128 B); relaxed fills validate only the requested
// one.
func (c *Sectored) Insert(addr uint64, upgraded, write bool) []Eviction {
	c.clock++
	sa, sub := sectorOf(addr)
	if s := c.find(sa); s != nil {
		// Sector present: validate the missing sub-sector(s).
		s.lastUse = c.clock
		s.valid[sub] = true
		if upgraded {
			s.valid[0], s.valid[1] = true, true
			s.upgraded = true
		}
		if write {
			s.dirty[sub] = true
		}
		return nil
	}
	set := c.sets[c.setIndex(sa)]
	victim := &set[0]
	for i := range set {
		if !set[i].valid[0] && !set[i].valid[1] {
			victim = &set[i]
			break
		}
		if set[i].lastUse < victim.lastUse {
			victim = &set[i]
		}
	}
	var evictions []Eviction
	if victim.valid[0] || victim.valid[1] {
		evictions = c.evictSector(victim, c.setIndex(sa))
	}
	*victim = sector{tag: c.tagOf(sa), lastUse: c.clock, upgraded: upgraded}
	victim.valid[sub] = true
	if upgraded {
		victim.valid[0], victim.valid[1] = true, true
	}
	if write {
		victim.dirty[sub] = true
	}
	return evictions
}

func (c *Sectored) evictSector(s *sector, setIdx uint64) []Eviction {
	base := (s.tag<<c.tagShift | setIdx) << 1
	var out []Eviction
	pairDirty := s.upgraded && (s.dirty[0] || s.dirty[1])
	for sub := 0; sub < 2; sub++ {
		if !s.valid[sub] {
			continue
		}
		dirty := s.dirty[sub] || pairDirty
		out = append(out, Eviction{Addr: base + uint64(sub), Dirty: dirty, Upgraded: s.upgraded, PairedWith: base + uint64(1-sub)})
		if dirty {
			c.writebacks++
		}
	}
	s.valid[0], s.valid[1] = false, false
	return out
}

// Stats returns hit/miss/writeback counters.
func (c *Sectored) Stats() (hits, misses, writebacks int64) {
	return c.hits, c.misses, c.writebacks
}

// HitRate returns hits / (hits + misses), or 0 before any access.
func (c *Sectored) HitRate() float64 {
	total := c.hits + c.misses
	if total == 0 {
		return 0
	}
	return float64(c.hits) / float64(total)
}
