// Package sim composes the full-system performance/power simulation used by
// the Chapter 7 experiments: four trace-driven cores (package cpu) with
// private LLCs (package cache) sharing a memory system (package memctrl)
// whose per-page ECC mode follows ARCC's page table, with DDR2 power
// accounting (package power).
//
// The functional data path (real codewords in simulated DRAM, package core)
// is exercised by its own tests and the reliability experiments; this
// simulator tracks addresses, timing, and energy only, which keeps the
// Chapter 7 sweeps fast.
package sim

import (
	"fmt"

	"arcc/internal/cache"
	"arcc/internal/cpu"
	"arcc/internal/memctrl"
	"arcc/internal/power"
	"arcc/internal/workload"
)

// MemorySystem selects the evaluated configuration (Table 7.1).
type MemorySystem int

const (
	// Baseline is commercial chipkill: two channels, one 36-device x4
	// rank each; every access touches 36 devices.
	Baseline MemorySystem = iota
	// ARCC is the adaptive configuration: two channels, two 18-device x8
	// ranks each; relaxed accesses touch 18 devices, upgraded accesses
	// pair both channels (36 devices).
	ARCC
)

// String implements fmt.Stringer.
func (m MemorySystem) String() string {
	if m == Baseline {
		return "baseline"
	}
	return "arcc"
}

// Config describes one simulation run.
type Config struct {
	Mix    workload.Mix
	System MemorySystem
	// UpgradedFraction is the fraction of pages in upgraded mode (0 for a
	// fault-free memory; Table 7.4 fractions for the Fig 7.2/7.3 fault
	// scenarios). Ignored for the Baseline system.
	UpgradedFraction float64
	// InstructionsPerCore ends the run once every core commits this many.
	InstructionsPerCore int64
	// Seed drives all randomness (workload streams, page-mode placement).
	Seed int64
	// LLCBytes / LLCAssoc shape each core's private LLC (Table 7.2: 1 MB,
	// 16-way).
	LLCBytes, LLCAssoc int
	// LLCPolicy selects the replacement policy for upgraded pairs
	// (§4.2.3). The zero value is the paper's shared-recency design.
	LLCPolicy cache.Policy
	// Pairing selects the §4.2.4 sub-line pairing design. The zero value
	// is pointer promotion.
	Pairing memctrl.Pairing
	// CPUCyclesPerDRAMCycle converts between clock domains (3 GHz core vs
	// 333 MHz DDR2 clock = 9).
	CPUCyclesPerDRAMCycle int64
	// Sources, when non-nil, overrides the synthetic generators with
	// caller-provided access sources (e.g. recorded traces replayed with
	// workload.NewReplaySource). Entries left nil fall back to the mix's
	// generator for that core.
	Sources [4]workload.Source
}

// DefaultConfig returns the Table 7.1/7.2 configuration for a mix.
func DefaultConfig(mix workload.Mix, system MemorySystem) Config {
	return Config{
		Mix:                   mix,
		System:                system,
		InstructionsPerCore:   1_000_000,
		Seed:                  1,
		LLCBytes:              1 << 20,
		LLCAssoc:              16,
		CPUCyclesPerDRAMCycle: 9,
	}
}

// Result summarises one run.
type Result struct {
	// IPCSum is the sum of per-core IPCs — the paper's performance metric.
	IPCSum     float64
	PerCoreIPC [4]float64
	// PowerMW is the average DRAM power over the run.
	PowerMW float64
	// ElapsedDRAMCycles is the run length in DRAM cycles (slowest core).
	ElapsedDRAMCycles int64
	// MemReads/MemWrites are line transfers performed by the controller.
	MemReads, MemWrites int64
	// LLCHitRate aggregates all cores' LLCs.
	LLCHitRate float64
	// UpgradedAccessFraction is the fraction of demand fetches served in
	// upgraded (paired) mode.
	UpgradedAccessFraction float64
}

// pageOf maps a line address to its 4 KB page.
func pageOf(line uint64) uint64 { return line >> 6 }

// withRefresh adds DDR2 auto-refresh timing (tREFI 7.8 us, tRFC 105 ns at
// 333 MHz) to a timing set.
func withRefresh(t memctrl.Timing) memctrl.Timing {
	t.TREFI = 2600
	t.TRFC = 35
	return t
}

// Run executes one simulation.
func Run(cfg Config) Result {
	if cfg.InstructionsPerCore <= 0 || cfg.LLCBytes <= 0 || cfg.LLCAssoc <= 0 || cfg.CPUCyclesPerDRAMCycle <= 0 {
		panic(fmt.Sprintf("sim: invalid config %+v", cfg))
	}
	if cfg.UpgradedFraction < 0 || cfg.UpgradedFraction > 1 {
		panic(fmt.Sprintf("sim: upgraded fraction %v out of range", cfg.UpgradedFraction))
	}

	var meter *power.Meter
	var mem *memctrl.Controller
	switch cfg.System {
	case Baseline:
		meter = power.NewMeter(power.Micron512MbX4())
		mem = memctrl.New(memctrl.Config{
			Channels: 2, RanksPerChannel: 1, BanksPerRank: 8,
			Timing: withRefresh(memctrl.DDR2X4Timing()), DevicesPerAccess: 36, BurstBeats: 4,
		}, meter)
	case ARCC:
		meter = power.NewMeter(power.Micron512MbX8())
		mem = memctrl.New(memctrl.Config{
			Channels: 2, RanksPerChannel: 2, BanksPerRank: 8,
			Timing: withRefresh(memctrl.DDR2X8Timing()), DevicesPerAccess: 18, BurstBeats: 4,
			Pairing: cfg.Pairing,
		}, meter)
	default:
		panic(fmt.Sprintf("sim: unknown system %d", cfg.System))
	}

	// Page-mode oracle: a page is upgraded if a seeded hash of its number
	// falls under the target fraction. Deterministic, O(1), and spreads
	// upgraded pages uniformly — which matches the Fig 7.2 scenarios where
	// a fault's pages are interleaved through every workload's footprint.
	threshold := uint64(cfg.UpgradedFraction * float64(1<<32))
	upgraded := func(page uint64) bool {
		if cfg.System != ARCC || threshold == 0 {
			return false
		}
		h := (page ^ uint64(cfg.Seed)<<40) * 0x9E3779B97F4A7C15
		h ^= h >> 33
		h *= 0xC2B2AE3D27D4EB4F
		h ^= h >> 29
		return h&0xFFFFFFFF < threshold
	}

	type coreState struct {
		core   *cpu.Core
		llc    *cache.LLC
		stream workload.Source
		done   bool
	}
	states := make([]*coreState, 4)
	base := uint64(0)
	for i := range states {
		b := cfg.Mix.Benchmarks[i]
		var src workload.Source = b.NewStream(cfg.Seed+int64(i)*7919, base)
		if cfg.Sources[i] != nil {
			src = cfg.Sources[i]
		}
		states[i] = &coreState{
			core:   cpu.New(cpu.DefaultConfig()),
			llc:    cache.New(cfg.LLCBytes, cfg.LLCAssoc, cfg.LLCPolicy),
			stream: src,
		}
		base += uint64(b.FootprintLines)
		// Page-align region starts so pairs never straddle benchmarks.
		base = (base + 63) &^ 63
	}

	ranksBanks := mem.Config().RanksPerChannel * mem.Config().BanksPerRank
	cpr := cfg.CPUCyclesPerDRAMCycle

	// mapLine computes the (channel, globalBank) of a 64 B line.
	mapLine := func(line uint64) (ch, bank int) {
		ch = int(line & 1)
		bank = int((line >> 1) % uint64(ranksBanks))
		return ch, bank
	}

	var demandFetches, upgradedFetches int64

	// fetch books the memory traffic for a demand miss and returns its
	// completion time in CPU cycles.
	fetch := func(nowCPU int64, line uint64, isUpgraded bool) int64 {
		nowDRAM := nowCPU / cpr
		ch, bank := mapLine(line)
		var doneDRAM int64
		if isUpgraded {
			doneDRAM = mem.AccessPaired(nowDRAM, bank, false)
		} else {
			doneDRAM = mem.Access(nowDRAM, ch, bank, false)
		}
		return doneDRAM * cpr
	}

	// writeback books eviction traffic (non-blocking for the core).
	writeback := func(nowCPU int64, evs []cache.Eviction) {
		nowDRAM := nowCPU / cpr
		handled := map[uint64]bool{}
		for _, e := range evs {
			if !e.Dirty || handled[e.Addr] {
				continue
			}
			if e.Upgraded {
				_, bank := mapLine(e.Addr)
				mem.AccessPaired(nowDRAM, bank, true)
				handled[e.Addr] = true
				handled[e.PairedWith] = true
			} else {
				ch, bank := mapLine(e.Addr)
				mem.Access(nowDRAM, ch, bank, true)
				handled[e.Addr] = true
			}
		}
	}

	// Event loop: always advance the core that is furthest behind, so the
	// shared memory controller sees requests in (approximate) time order.
	for {
		var next *coreState
		for _, s := range states {
			if s.done {
				continue
			}
			if next == nil || s.core.Now() < next.core.Now() {
				next = s
			}
		}
		if next == nil {
			break
		}
		s := next
		a := s.stream.Next()
		s.core.AdvanceCompute(a.Gap)
		if s.core.Instructions() >= cfg.InstructionsPerCore {
			s.core.Drain()
			s.done = true
			continue
		}
		if s.llc.Access(a.Line, a.Write) {
			s.core.NoteHit()
			continue
		}
		isUp := upgraded(pageOf(a.Line))
		evs := s.llc.Insert(a.Line, isUp, a.Write)
		writeback(s.core.Now(), evs)
		demandFetches++
		if isUp {
			upgradedFetches++
		}
		line := a.Line
		if a.Write {
			// Write-allocate: the fill occupies memory but the store
			// itself retires through the store buffer without stalling.
			fetch(s.core.Now(), line, isUp)
			continue
		}
		s.core.IssueMiss(func(now int64) int64 { return fetch(now, line, isUp) })
	}

	// Aggregate.
	var res Result
	var slowest int64
	var hits, misses int64
	for i, s := range states {
		res.PerCoreIPC[i] = float64(cfg.InstructionsPerCore) / float64(s.core.Now())
		res.IPCSum += res.PerCoreIPC[i]
		if s.core.Now() > slowest {
			slowest = s.core.Now()
		}
		h, m, _, _ := s.llc.Stats()
		hits += h
		misses += m
	}
	res.ElapsedDRAMCycles = slowest / cpr
	if last := mem.LastCompletion(); last > res.ElapsedDRAMCycles {
		res.ElapsedDRAMCycles = last
	}
	res.MemReads, res.MemWrites = mem.Stats()
	if hits+misses > 0 {
		res.LLCHitRate = float64(hits) / float64(hits+misses)
	}
	if demandFetches > 0 {
		res.UpgradedAccessFraction = float64(upgradedFetches) / float64(demandFetches)
	}

	const nsPerDRAMCycle = 3.0
	const totalDevices = 72
	elapsedNS := float64(res.ElapsedDRAMCycles) * nsPerDRAMCycle
	active := mem.BankUtilization(res.ElapsedDRAMCycles)
	res.PowerMW = meter.AveragePowerMW(elapsedNS, totalDevices, active, 0.9)
	return res
}
