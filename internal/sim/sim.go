// Package sim composes the full-system performance/power simulation used by
// the Chapter 7 experiments: four trace-driven cores (package cpu) with
// private LLCs (package cache) sharing a memory system (package memctrl)
// whose per-page ECC mode follows ARCC's page table, with DDR2 power
// accounting (package power).
//
// The functional data path (real codewords in simulated DRAM, package core)
// is exercised by its own tests and the reliability experiments; this
// simulator tracks addresses, timing, and energy only, which keeps the
// Chapter 7 sweeps fast.
package sim

import (
	"fmt"
	"slices"
	"sync"

	"arcc/internal/cache"
	"arcc/internal/cpu"
	"arcc/internal/memctrl"
	"arcc/internal/power"
	"arcc/internal/workload"
)

// MemorySystem selects the evaluated configuration (Table 7.1).
type MemorySystem int

const (
	// Baseline is commercial chipkill: two channels, one 36-device x4
	// rank each; every access touches 36 devices.
	Baseline MemorySystem = iota
	// ARCC is the adaptive configuration: two channels, two 18-device x8
	// ranks each; relaxed accesses touch 18 devices, upgraded accesses
	// pair both channels (36 devices).
	ARCC
)

// String implements fmt.Stringer.
func (m MemorySystem) String() string {
	if m == Baseline {
		return "baseline"
	}
	return "arcc"
}

// Config describes one simulation run.
type Config struct {
	Mix    workload.Mix
	System MemorySystem
	// UpgradedFraction is the fraction of pages in upgraded mode (0 for a
	// fault-free memory; Table 7.4 fractions for the Fig 7.2/7.3 fault
	// scenarios). Ignored for the Baseline system.
	UpgradedFraction float64
	// InstructionsPerCore ends the run once every core commits this many.
	InstructionsPerCore int64
	// Seed drives all randomness (workload streams, page-mode placement).
	Seed int64
	// LLCBytes / LLCAssoc shape each core's private LLC (Table 7.2: 1 MB,
	// 16-way).
	LLCBytes, LLCAssoc int
	// LLCPolicy selects the replacement policy for upgraded pairs
	// (§4.2.3). The zero value is the paper's shared-recency design.
	LLCPolicy cache.Policy
	// Pairing selects the §4.2.4 sub-line pairing design. The zero value
	// is pointer promotion.
	Pairing memctrl.Pairing
	// CPUCyclesPerDRAMCycle converts between clock domains (3 GHz core vs
	// 333 MHz DDR2 clock = 9).
	CPUCyclesPerDRAMCycle int64
	// Sources, when non-nil, overrides the synthetic generators with
	// caller-provided access sources (e.g. recorded traces replayed with
	// workload.NewReplaySource). Entries left nil fall back to the mix's
	// generator for that core.
	Sources [4]workload.Source
}

// DefaultConfig returns the Table 7.1/7.2 configuration for a mix.
func DefaultConfig(mix workload.Mix, system MemorySystem) Config {
	return Config{
		Mix:                   mix,
		System:                system,
		InstructionsPerCore:   1_000_000,
		Seed:                  1,
		LLCBytes:              1 << 20,
		LLCAssoc:              16,
		CPUCyclesPerDRAMCycle: 9,
	}
}

// Result summarises one run.
type Result struct {
	// IPCSum is the sum of per-core IPCs — the paper's performance metric.
	IPCSum     float64
	PerCoreIPC [4]float64
	// PowerMW is the average DRAM power over the run.
	PowerMW float64
	// ElapsedDRAMCycles is the run length in DRAM cycles (slowest core).
	ElapsedDRAMCycles int64
	// MemReads/MemWrites are line transfers performed by the controller.
	MemReads, MemWrites int64
	// LLCHitRate aggregates all cores' LLCs.
	LLCHitRate float64
	// UpgradedAccessFraction is the fraction of demand fetches served in
	// upgraded (paired) mode.
	UpgradedAccessFraction float64
}

// pageOf maps a line address to its 4 KB page.
func pageOf(line uint64) uint64 { return line >> 6 }

// withRefresh adds DDR2 auto-refresh timing (tREFI 7.8 us, tRFC 105 ns at
// 333 MHz) to a timing set.
func withRefresh(t memctrl.Timing) memctrl.Timing {
	t.TREFI = 2600
	t.TRFC = 35
	return t
}

// Scratch holds the reusable working state of one simulation run: the four
// cores and their LLC backing arrays, the memory controller and power meter
// of the last system simulated, the reusable workload streams, and the
// (tiny) per-miss eviction and writeback buffers. A Scratch carries capacity
// only — RunWith fully resets every component before use — so for a given
// Config the result is bit-identical whether the scratch is fresh or reused.
// A Scratch serves one run at a time and is not safe for concurrent use;
// mc-driven fan-outs thread one per shard (mc.MapScratch), and the plain Run
// entry point borrows one from an internal pool.
type Scratch struct {
	cores   [4]*cpu.Core
	streams [4]*workload.Stream

	llcs               [4]*cache.LLC
	llcBytes, llcAssoc int
	llcPolicy          cache.Policy

	// One controller+meter per memory system, so a scratch alternating
	// between Baseline and ARCC runs (the Fig 7.1 comparison) reuses both.
	mem     [2]*memctrl.Controller
	meter   [2]*power.Meter
	pairing [2]memctrl.Pairing

	evs     []cache.Eviction
	handled []uint64
	fetch   missIssuer
}

// NewScratch returns an empty scratch; RunWith sizes its components to the
// first config it runs (and re-sizes them if the config's geometry changes).
func NewScratch() *Scratch { return &Scratch{} }

// memorySystem returns the scratch's controller+meter for cfg, reusing the
// (reset) pair built for the same memory system on an earlier run.
func (s *Scratch) memorySystem(cfg Config) (*memctrl.Controller, *power.Meter) {
	if cfg.System != Baseline && cfg.System != ARCC {
		panic(fmt.Sprintf("sim: unknown system %d", cfg.System))
	}
	i := int(cfg.System)
	if s.mem[i] != nil && s.pairing[i] == cfg.Pairing {
		s.mem[i].Reset()
		s.meter[i].Reset()
		return s.mem[i], s.meter[i]
	}
	switch cfg.System {
	case Baseline:
		s.meter[i] = power.NewMeter(power.Micron512MbX4())
		s.mem[i] = memctrl.New(memctrl.Config{
			Channels: 2, RanksPerChannel: 1, BanksPerRank: 8,
			Timing: withRefresh(memctrl.DDR2X4Timing()), DevicesPerAccess: 36, BurstBeats: 4,
		}, s.meter[i])
	case ARCC:
		s.meter[i] = power.NewMeter(power.Micron512MbX8())
		s.mem[i] = memctrl.New(memctrl.Config{
			Channels: 2, RanksPerChannel: 2, BanksPerRank: 8,
			Timing: withRefresh(memctrl.DDR2X8Timing()), DevicesPerAccess: 18, BurstBeats: 4,
			Pairing: cfg.Pairing,
		}, s.meter[i])
	}
	s.pairing[i] = cfg.Pairing
	return s.mem[i], s.meter[i]
}

// resetLLCs returns the four per-core LLCs for cfg, reusing (and resetting)
// the previous run's backing arrays when the cache geometry is unchanged
// and rebuilding all four together when it is not.
func (s *Scratch) resetLLCs(cfg Config) *[4]*cache.LLC {
	if s.llcs[0] != nil && s.llcBytes == cfg.LLCBytes && s.llcAssoc == cfg.LLCAssoc && s.llcPolicy == cfg.LLCPolicy {
		for _, llc := range s.llcs {
			llc.Reset()
		}
		return &s.llcs
	}
	for i := range s.llcs {
		s.llcs[i] = cache.New(cfg.LLCBytes, cfg.LLCAssoc, cfg.LLCPolicy)
	}
	s.llcBytes, s.llcAssoc, s.llcPolicy = cfg.LLCBytes, cfg.LLCAssoc, cfg.LLCPolicy
	return &s.llcs
}

// mapLine computes the (channel, globalBank) of a 64 B line.
func mapLine(line, ranksBanks uint64) (ch, bank int) {
	ch = int(line & 1)
	bank = int((line >> 1) % ranksBanks)
	return ch, bank
}

// upgradedPage is the page-mode oracle: a page is upgraded if a seeded hash
// of its number falls under the target threshold. Deterministic, O(1), and
// spreads upgraded pages uniformly — which matches the Fig 7.2 scenarios
// where a fault's pages are interleaved through every workload's footprint.
func upgradedPage(page uint64, seed int64, threshold uint64) bool {
	h := (page ^ uint64(seed)<<40) * 0x9E3779B97F4A7C15
	h ^= h >> 33
	h *= 0xC2B2AE3D27D4EB4F
	h ^= h >> 29
	return h&0xFFFFFFFF < threshold
}

// missIssuer books the memory traffic for one demand read miss and reports
// its completion time in CPU cycles. It implements cpu.Issuer on a struct
// that lives in the Scratch and is re-pointed at each miss, replacing the
// per-miss closure the read path used to allocate.
type missIssuer struct {
	mem        *memctrl.Controller
	cpr        int64
	ranksBanks uint64
	line       uint64
	isUp       bool
}

// IssueAt implements cpu.Issuer.
func (m *missIssuer) IssueAt(nowCPU int64) int64 {
	nowDRAM := nowCPU / m.cpr
	ch, bank := mapLine(m.line, m.ranksBanks)
	var doneDRAM int64
	if m.isUp {
		doneDRAM = m.mem.AccessPaired(nowDRAM, bank, false)
	} else {
		doneDRAM = m.mem.Access(nowDRAM, ch, bank, false)
	}
	return doneDRAM * m.cpr
}

// writeback books eviction traffic (non-blocking for the core). handled is
// the caller's scratch for addresses already written this batch — an
// upgraded pair evicted as two entries must write back once — and is
// returned re-sliced; eviction batches are at most a few entries, so a
// linear scan replaces the map the old path allocated per miss.
func writeback(mem *memctrl.Controller, cpr int64, ranksBanks uint64, nowCPU int64, evs []cache.Eviction, handled []uint64) []uint64 {
	nowDRAM := nowCPU / cpr
	handled = handled[:0]
	for _, e := range evs {
		if !e.Dirty || slices.Contains(handled, e.Addr) {
			continue
		}
		if e.Upgraded {
			_, bank := mapLine(e.Addr, ranksBanks)
			mem.AccessPaired(nowDRAM, bank, true)
			handled = append(handled, e.Addr, e.PairedWith)
		} else {
			ch, bank := mapLine(e.Addr, ranksBanks)
			mem.Access(nowDRAM, ch, bank, true)
			handled = append(handled, e.Addr)
		}
	}
	return handled
}

// scratchPool backs the plain Run entry point, so callers that do not
// manage a Scratch themselves (tests, the experiment fan-outs) still reuse
// run state across consecutive runs on the same worker.
var scratchPool = sync.Pool{New: func() any { return NewScratch() }}

// Run executes one simulation. It is RunWith with a pooled Scratch.
func Run(cfg Config) Result {
	s := scratchPool.Get().(*Scratch)
	res := RunWith(cfg, s)
	scratchPool.Put(s)
	return res
}

// RunWith executes one simulation using s's reusable working state (nil
// behaves like a fresh scratch). The result is identical to Run's for the
// same config; reuse only removes the per-run setup allocations and the
// steady-state loop's per-miss allocations.
func RunWith(cfg Config, s *Scratch) Result {
	if s == nil {
		s = NewScratch()
	}
	if cfg.InstructionsPerCore <= 0 || cfg.LLCBytes <= 0 || cfg.LLCAssoc <= 0 || cfg.CPUCyclesPerDRAMCycle <= 0 {
		panic(fmt.Sprintf("sim: invalid config %+v", cfg))
	}
	if cfg.UpgradedFraction < 0 || cfg.UpgradedFraction > 1 {
		panic(fmt.Sprintf("sim: upgraded fraction %v out of range", cfg.UpgradedFraction))
	}

	mem, meter := s.memorySystem(cfg)

	threshold := uint64(cfg.UpgradedFraction * float64(1<<32))
	oracleOn := cfg.System == ARCC && threshold != 0

	type coreState struct {
		core   *cpu.Core
		llc    *cache.LLC
		stream workload.Source
		done   bool
	}
	var states [4]coreState
	llcs := s.resetLLCs(cfg)
	base := uint64(0)
	for i := range states {
		b := cfg.Mix.Benchmarks[i]
		var src workload.Source
		if cfg.Sources[i] != nil {
			src = cfg.Sources[i]
		} else if s.streams[i] != nil {
			s.streams[i].Reset(b, cfg.Seed+int64(i)*7919, base)
			src = s.streams[i]
		} else {
			s.streams[i] = b.NewStream(cfg.Seed+int64(i)*7919, base)
			src = s.streams[i]
		}
		if s.cores[i] == nil {
			s.cores[i] = cpu.New(cpu.DefaultConfig())
		} else {
			s.cores[i].Reset()
		}
		states[i] = coreState{core: s.cores[i], llc: llcs[i], stream: src}
		base += uint64(b.FootprintLines)
		// Page-align region starts so pairs never straddle benchmarks.
		base = (base + 63) &^ 63
	}

	ranksBanks := uint64(mem.Config().RanksPerChannel * mem.Config().BanksPerRank)
	cpr := cfg.CPUCyclesPerDRAMCycle
	s.fetch = missIssuer{mem: mem, cpr: cpr, ranksBanks: ranksBanks}

	var demandFetches, upgradedFetches int64

	// Event loop: always advance the core that is furthest behind, so the
	// shared memory controller sees requests in (approximate) time order.
	for {
		next := -1
		for i := range states {
			if states[i].done {
				continue
			}
			if next < 0 || states[i].core.Now() < states[next].core.Now() {
				next = i
			}
		}
		if next < 0 {
			break
		}
		st := &states[next]
		a := st.stream.Next()
		st.core.AdvanceCompute(a.Gap)
		if st.core.Instructions() >= cfg.InstructionsPerCore {
			st.core.Drain()
			st.done = true
			continue
		}
		if st.llc.Access(a.Line, a.Write) {
			st.core.NoteHit()
			continue
		}
		isUp := oracleOn && upgradedPage(pageOf(a.Line), cfg.Seed, threshold)
		s.evs = st.llc.InsertInto(a.Line, isUp, a.Write, s.evs[:0])
		s.handled = writeback(mem, cpr, ranksBanks, st.core.Now(), s.evs, s.handled)
		demandFetches++
		if isUp {
			upgradedFetches++
		}
		s.fetch.line, s.fetch.isUp = a.Line, isUp
		if a.Write {
			// Write-allocate: the fill occupies memory but the store
			// itself retires through the store buffer without stalling.
			s.fetch.IssueAt(st.core.Now())
			continue
		}
		st.core.IssueMissTo(&s.fetch)
	}

	// Aggregate.
	var res Result
	var slowest int64
	var hits, misses int64
	for i := range states {
		st := &states[i]
		res.PerCoreIPC[i] = float64(cfg.InstructionsPerCore) / float64(st.core.Now())
		res.IPCSum += res.PerCoreIPC[i]
		if st.core.Now() > slowest {
			slowest = st.core.Now()
		}
		h, m, _, _ := st.llc.Stats()
		hits += h
		misses += m
	}
	res.ElapsedDRAMCycles = slowest / cpr
	if last := mem.LastCompletion(); last > res.ElapsedDRAMCycles {
		res.ElapsedDRAMCycles = last
	}
	res.MemReads, res.MemWrites = mem.Stats()
	if hits+misses > 0 {
		res.LLCHitRate = float64(hits) / float64(hits+misses)
	}
	if demandFetches > 0 {
		res.UpgradedAccessFraction = float64(upgradedFetches) / float64(demandFetches)
	}

	const nsPerDRAMCycle = 3.0
	const totalDevices = 72
	elapsedNS := float64(res.ElapsedDRAMCycles) * nsPerDRAMCycle
	active := mem.BankUtilization(res.ElapsedDRAMCycles)
	res.PowerMW = meter.AveragePowerMW(elapsedNS, totalDevices, active, 0.9)
	return res
}
