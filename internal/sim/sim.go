// Package sim composes the full-system performance/power simulation used by
// the Chapter 7 experiments: four trace-driven cores (package cpu) with
// private LLCs (package cache) sharing a memory system (package memctrl)
// whose per-page ECC mode follows ARCC's page table, with DDR2 power
// accounting (package power).
//
// The functional data path (real codewords in simulated DRAM, package core)
// is exercised by its own tests and the reliability experiments; this
// simulator tracks addresses, timing, and energy only, which keeps the
// Chapter 7 sweeps fast.
package sim

import (
	"fmt"
	"slices"
	"sync"

	"arcc/internal/cache"
	"arcc/internal/cpu"
	"arcc/internal/dram"
	"arcc/internal/memctrl"
	"arcc/internal/power"
	"arcc/internal/workload"
)

// MemorySystem selects the evaluated configuration (Table 7.1).
type MemorySystem int

const (
	// Baseline is commercial chipkill: two channels, one 36-device x4
	// rank each; every access touches 36 devices.
	Baseline MemorySystem = iota
	// ARCC is the adaptive configuration: two channels, two 18-device x8
	// ranks each; relaxed accesses touch 18 devices, upgraded accesses
	// pair both channels (36 devices).
	ARCC
)

// String implements fmt.Stringer.
func (m MemorySystem) String() string {
	if m == Baseline {
		return "baseline"
	}
	return "arcc"
}

// Tech selects the memory technology generation the two systems are built
// from. The zero value is the paper's DDR2-667 evaluation (Table 7.1),
// byte-identical to the pre-axis simulator; DDR4/DDR5 rebuild both systems
// from the dram.OrgFor organisation tables, the memctrl generation timing
// presets (bank groups, tCCD_L/tCCD_S), and the power generation device
// profiles. The Baseline system always uses x4 devices — commercial
// chipkill needs the narrow symbol — while Width sets the ARCC rank's
// device width.
type Tech struct {
	Generation dram.Generation
	// Width is the ARCC device width in bits: 4, 8, or 16. Zero means 8,
	// the paper's choice.
	Width int
}

// normalize validates the pair and canonicalises it so equal-meaning Techs
// compare equal (the Scratch caches controllers per Tech).
func (t Tech) normalize() Tech {
	if t.Generation == dram.DDR2 {
		// The DDR2 path is the calibrated paper configuration; only the
		// paper's x8 ARCC ranks are modelled.
		if t.Width != 0 && t.Width != 8 {
			panic(fmt.Sprintf("sim: DDR2 models only x8 ARCC ranks, not x%d", t.Width))
		}
		return Tech{}
	}
	if t.Width == 0 {
		t.Width = 8
	}
	if _, err := dram.OrgFor(t.Generation, t.Width); err != nil {
		panic("sim: " + err.Error())
	}
	return t
}

// CPR returns the conventional CPU-cycles-per-DRAM-cycle ratio for the
// generation under the paper's 3 GHz core: 9 for DDR2-667 (333 MHz memory
// clock), 3 for DDR4-2400 (1.2 GHz), and 1 for DDR5-4800 (2.4 GHz) — the
// nearest integer ratios, which is the same approximation Table 7.1 makes.
func (t Tech) CPR() int64 {
	switch t.normalize().Generation {
	case dram.DDR4:
		return 3
	case dram.DDR5:
		return 1
	}
	return 9
}

// nsPerCycle returns the DRAM clock period in nanoseconds.
func nsPerCycle(gen dram.Generation) float64 {
	switch gen {
	case dram.DDR4:
		return 0.833
	case dram.DDR5:
		return 0.417
	}
	return 3.0
}

// deviceFor maps a generation/width pair to its power device profile.
func deviceFor(gen dram.Generation, width int) power.DeviceParams {
	switch gen {
	case dram.DDR4:
		switch width {
		case 4:
			return power.DDR4x4Device()
		case 8:
			return power.DDR4x8Device()
		case 16:
			return power.DDR4x16Device()
		}
	case dram.DDR5:
		switch width {
		case 4:
			return power.DDR5x4Device()
		case 8:
			return power.DDR5x8Device()
		case 16:
			return power.DDR5x16Device()
		}
	}
	panic(fmt.Sprintf("sim: no power profile for %v x%d", gen, width))
}

// Config describes one simulation run.
type Config struct {
	Mix    workload.Mix
	System MemorySystem
	// Tech selects the memory generation; the zero value is the paper's
	// DDR2-667 configuration.
	Tech Tech
	// UpgradedFraction is the fraction of pages in upgraded mode (0 for a
	// fault-free memory; Table 7.4 fractions for the Fig 7.2/7.3 fault
	// scenarios). Ignored for the Baseline system.
	UpgradedFraction float64
	// InstructionsPerCore ends the run once every core commits this many.
	InstructionsPerCore int64
	// Seed drives all randomness (workload streams, page-mode placement).
	Seed int64
	// LLCBytes / LLCAssoc shape each core's private LLC (Table 7.2: 1 MB,
	// 16-way).
	LLCBytes, LLCAssoc int
	// LLCPolicy selects the replacement policy for upgraded pairs
	// (§4.2.3). The zero value is the paper's shared-recency design.
	LLCPolicy cache.Policy
	// Pairing selects the §4.2.4 sub-line pairing design. The zero value
	// is pointer promotion.
	Pairing memctrl.Pairing
	// CPUCyclesPerDRAMCycle converts between clock domains (3 GHz core vs
	// 333 MHz DDR2 clock = 9).
	CPUCyclesPerDRAMCycle int64
	// Sources, when non-nil, overrides the synthetic generators with
	// caller-provided access sources (e.g. recorded traces replayed with
	// workload.NewReplaySource, or trace files loaded into a
	// workload.TraceSource and cloned per core). Entries left nil fall back
	// to the mix's generator for that core.
	Sources [4]workload.Source
	// Tenants, when non-empty, replaces the mix's four benchmarks with a
	// multi-tenant interference mix: 1-4 tenants mapped round-robin onto
	// the four cores (workload.TenantBenchmarks). Ignored for cores whose
	// Sources entry is set.
	Tenants []workload.Tenant
	// SharedLLC replaces the four private LLCs with one LLC of LLCBytes
	// shared by all cores — the contention half of a multi-tenant study.
	// LLCBytes is the total shared capacity, so a scenario comparing
	// private-1MB against shared-4MB sets it explicitly.
	SharedLLC bool
}

// DefaultConfig returns the Table 7.1/7.2 configuration for a mix.
func DefaultConfig(mix workload.Mix, system MemorySystem) Config {
	return Config{
		Mix:                   mix,
		System:                system,
		InstructionsPerCore:   1_000_000,
		Seed:                  1,
		LLCBytes:              1 << 20,
		LLCAssoc:              16,
		CPUCyclesPerDRAMCycle: 9,
	}
}

// Result summarises one run.
type Result struct {
	// IPCSum is the sum of per-core IPCs — the paper's performance metric.
	IPCSum     float64
	PerCoreIPC [4]float64
	// PowerMW is the average DRAM power over the run.
	PowerMW float64
	// ElapsedDRAMCycles is the run length in DRAM cycles (slowest core).
	ElapsedDRAMCycles int64
	// MemReads/MemWrites are line transfers performed by the controller.
	MemReads, MemWrites int64
	// LLCHitRate aggregates all cores' LLCs.
	LLCHitRate float64
	// UpgradedAccessFraction is the fraction of demand fetches served in
	// upgraded (paired) mode.
	UpgradedAccessFraction float64
}

// pageOf maps a line address to its 4 KB page.
func pageOf(line uint64) uint64 { return line >> 6 }

// withRefresh adds DDR2 auto-refresh timing (tREFI 7.8 us, tRFC 105 ns at
// 333 MHz) to a timing set.
func withRefresh(t memctrl.Timing) memctrl.Timing {
	t.TREFI = 2600
	t.TRFC = 35
	return t
}

// Scratch holds the reusable working state of one simulation run: the four
// cores and their LLC backing arrays, the memory controller and power meter
// of the last system simulated, the reusable workload streams, and the
// (tiny) per-miss eviction and writeback buffers. A Scratch carries capacity
// only — RunWith fully resets every component before use — so for a given
// Config the result is bit-identical whether the scratch is fresh or reused.
// A Scratch serves one run at a time and is not safe for concurrent use;
// mc-driven fan-outs thread one per shard (mc.MapScratch), and the plain Run
// entry point borrows one from an internal pool.
type Scratch struct {
	cores   [4]*cpu.Core
	streams [4]*workload.Stream

	llcs               [4]*cache.LLC
	llcBytes, llcAssoc int
	llcPolicy          cache.Policy
	llcShared          bool

	// One controller+meter per memory system, so a scratch alternating
	// between Baseline and ARCC runs (the Fig 7.1 comparison) reuses both.
	// tech/nsPerCyc/devices record the generation each pair was built for.
	mem      [2]*memctrl.Controller
	meter    [2]*power.Meter
	pairing  [2]memctrl.Pairing
	tech     [2]Tech
	nsPerCyc [2]float64
	devices  [2]int

	evs     []cache.Eviction
	handled []uint64
	fetch   missIssuer
}

// NewScratch returns an empty scratch; RunWith sizes its components to the
// first config it runs (and re-sizes them if the config's geometry changes).
func NewScratch() *Scratch { return &Scratch{} }

// memorySystem returns the scratch's controller+meter for cfg, reusing the
// (reset) pair built for the same memory system on an earlier run.
func (s *Scratch) memorySystem(cfg Config) (*memctrl.Controller, *power.Meter) {
	if cfg.System != Baseline && cfg.System != ARCC {
		panic(fmt.Sprintf("sim: unknown system %d", cfg.System))
	}
	i := int(cfg.System)
	tech := cfg.Tech.normalize()
	if s.mem[i] != nil && s.pairing[i] == cfg.Pairing && s.tech[i] == tech {
		s.mem[i].Reset()
		s.meter[i].Reset()
		return s.mem[i], s.meter[i]
	}
	if tech == (Tech{}) {
		// The calibrated DDR2-667 paper configuration, byte-identical to
		// the pre-generation-axis simulator.
		switch cfg.System {
		case Baseline:
			s.meter[i] = power.NewMeter(power.Micron512MbX4())
			s.mem[i] = memctrl.New(memctrl.Config{
				Channels: 2, RanksPerChannel: 1, BanksPerRank: 8,
				Timing: withRefresh(memctrl.DDR2X4Timing()), DevicesPerAccess: 36, BurstBeats: 4,
			}, s.meter[i])
			s.devices[i] = 72
		case ARCC:
			s.meter[i] = power.NewMeter(power.Micron512MbX8())
			s.mem[i] = memctrl.New(memctrl.Config{
				Channels: 2, RanksPerChannel: 2, BanksPerRank: 8,
				Timing: withRefresh(memctrl.DDR2X8Timing()), DevicesPerAccess: 18, BurstBeats: 4,
				Pairing: cfg.Pairing,
			}, s.meter[i])
			s.devices[i] = 72
		}
		s.nsPerCyc[i] = nsPerCycle(dram.DDR2)
	} else {
		var tim memctrl.Timing
		switch tech.Generation {
		case dram.DDR4:
			tim = memctrl.DDR4Timing()
		case dram.DDR5:
			tim = memctrl.DDR5Timing()
		}
		switch cfg.System {
		case Baseline:
			// Commercial chipkill: one rank of x4 devices per channel.
			org, err := dram.OrgFor(tech.Generation, 4)
			if err != nil {
				panic("sim: " + err.Error())
			}
			s.meter[i] = power.NewMeter(deviceFor(tech.Generation, 4))
			s.mem[i] = memctrl.New(memctrl.Config{
				Channels: 2, RanksPerChannel: 1,
				BanksPerRank: org.Banks(), BankGroups: org.BankGroups,
				Timing: tim, DevicesPerAccess: org.DevicesPerRank,
				BurstBeats: org.BurstClocks * 2,
			}, s.meter[i])
			s.devices[i] = 2 * org.DevicesPerRank
		case ARCC:
			org, err := dram.OrgFor(tech.Generation, tech.Width)
			if err != nil {
				panic("sim: " + err.Error())
			}
			s.meter[i] = power.NewMeter(deviceFor(tech.Generation, tech.Width))
			s.mem[i] = memctrl.New(memctrl.Config{
				Channels: 2, RanksPerChannel: 2,
				BanksPerRank: org.Banks(), BankGroups: org.BankGroups,
				Timing: tim, DevicesPerAccess: org.DevicesPerRank,
				BurstBeats: org.BurstClocks * 2, Pairing: cfg.Pairing,
			}, s.meter[i])
			s.devices[i] = 2 * 2 * org.DevicesPerRank
		}
		s.nsPerCyc[i] = nsPerCycle(tech.Generation)
	}
	s.pairing[i] = cfg.Pairing
	s.tech[i] = tech
	return s.mem[i], s.meter[i]
}

// resetLLCs returns the four per-core LLCs for cfg, reusing (and resetting)
// the previous run's backing arrays when the cache geometry is unchanged
// and rebuilding all four together when it is not. Under SharedLLC all four
// entries alias one LLC of LLCBytes total capacity.
func (s *Scratch) resetLLCs(cfg Config) *[4]*cache.LLC {
	if s.llcs[0] != nil && s.llcBytes == cfg.LLCBytes && s.llcAssoc == cfg.LLCAssoc &&
		s.llcPolicy == cfg.LLCPolicy && s.llcShared == cfg.SharedLLC {
		if cfg.SharedLLC {
			s.llcs[0].Reset()
		} else {
			for _, llc := range s.llcs {
				llc.Reset()
			}
		}
		return &s.llcs
	}
	if cfg.SharedLLC {
		shared := cache.New(cfg.LLCBytes, cfg.LLCAssoc, cfg.LLCPolicy)
		for i := range s.llcs {
			s.llcs[i] = shared
		}
	} else {
		for i := range s.llcs {
			s.llcs[i] = cache.New(cfg.LLCBytes, cfg.LLCAssoc, cfg.LLCPolicy)
		}
	}
	s.llcBytes, s.llcAssoc, s.llcPolicy, s.llcShared = cfg.LLCBytes, cfg.LLCAssoc, cfg.LLCPolicy, cfg.SharedLLC
	return &s.llcs
}

// mapLine computes the (channel, globalBank) of a 64 B line.
func mapLine(line, ranksBanks uint64) (ch, bank int) {
	ch = int(line & 1)
	bank = int((line >> 1) % ranksBanks)
	return ch, bank
}

// upgradedPage is the page-mode oracle: a page is upgraded if a seeded hash
// of its number falls under the target threshold. Deterministic, O(1), and
// spreads upgraded pages uniformly — which matches the Fig 7.2 scenarios
// where a fault's pages are interleaved through every workload's footprint.
func upgradedPage(page uint64, seed int64, threshold uint64) bool {
	h := (page ^ uint64(seed)<<40) * 0x9E3779B97F4A7C15
	h ^= h >> 33
	h *= 0xC2B2AE3D27D4EB4F
	h ^= h >> 29
	return h&0xFFFFFFFF < threshold
}

// missIssuer books the memory traffic for one demand read miss and reports
// its completion time in CPU cycles. It implements cpu.Issuer on a struct
// that lives in the Scratch and is re-pointed at each miss, replacing the
// per-miss closure the read path used to allocate.
type missIssuer struct {
	mem        *memctrl.Controller
	cpr        int64
	ranksBanks uint64
	line       uint64
	isUp       bool
}

// IssueAt implements cpu.Issuer.
func (m *missIssuer) IssueAt(nowCPU int64) int64 {
	nowDRAM := nowCPU / m.cpr
	ch, bank := mapLine(m.line, m.ranksBanks)
	var doneDRAM int64
	if m.isUp {
		doneDRAM = m.mem.AccessPaired(nowDRAM, bank, false)
	} else {
		doneDRAM = m.mem.Access(nowDRAM, ch, bank, false)
	}
	return doneDRAM * m.cpr
}

// writeback books eviction traffic (non-blocking for the core). handled is
// the caller's scratch for addresses already written this batch — an
// upgraded pair evicted as two entries must write back once — and is
// returned re-sliced; eviction batches are at most a few entries, so a
// linear scan replaces the map the old path allocated per miss.
func writeback(mem *memctrl.Controller, cpr int64, ranksBanks uint64, nowCPU int64, evs []cache.Eviction, handled []uint64) []uint64 {
	nowDRAM := nowCPU / cpr
	handled = handled[:0]
	for _, e := range evs {
		if !e.Dirty || slices.Contains(handled, e.Addr) {
			continue
		}
		if e.Upgraded {
			_, bank := mapLine(e.Addr, ranksBanks)
			mem.AccessPaired(nowDRAM, bank, true)
			handled = append(handled, e.Addr, e.PairedWith)
		} else {
			ch, bank := mapLine(e.Addr, ranksBanks)
			mem.Access(nowDRAM, ch, bank, true)
			handled = append(handled, e.Addr)
		}
	}
	return handled
}

// scratchPool backs the plain Run entry point, so callers that do not
// manage a Scratch themselves (tests, the experiment fan-outs) still reuse
// run state across consecutive runs on the same worker.
var scratchPool = sync.Pool{New: func() any { return NewScratch() }}

// Run executes one simulation. It is RunWith with a pooled Scratch.
func Run(cfg Config) Result {
	s := scratchPool.Get().(*Scratch)
	res := RunWith(cfg, s)
	scratchPool.Put(s)
	return res
}

// RunWith executes one simulation using s's reusable working state (nil
// behaves like a fresh scratch). The result is identical to Run's for the
// same config; reuse only removes the per-run setup allocations and the
// steady-state loop's per-miss allocations.
func RunWith(cfg Config, s *Scratch) Result {
	if s == nil {
		s = NewScratch()
	}
	if cfg.InstructionsPerCore <= 0 || cfg.LLCBytes <= 0 || cfg.LLCAssoc <= 0 || cfg.CPUCyclesPerDRAMCycle <= 0 {
		panic(fmt.Sprintf("sim: invalid config %+v", cfg))
	}
	if cfg.UpgradedFraction < 0 || cfg.UpgradedFraction > 1 {
		panic(fmt.Sprintf("sim: upgraded fraction %v out of range", cfg.UpgradedFraction))
	}

	mem, meter := s.memorySystem(cfg)

	threshold := uint64(cfg.UpgradedFraction * float64(1<<32))
	oracleOn := cfg.System == ARCC && threshold != 0

	type coreState struct {
		core   *cpu.Core
		llc    *cache.LLC
		stream workload.Source
		done   bool
	}
	var states [4]coreState
	llcs := s.resetLLCs(cfg)
	benchmarks := cfg.Mix.Benchmarks
	if len(cfg.Tenants) > 0 {
		tb, err := workload.TenantBenchmarks(cfg.Tenants)
		if err != nil {
			panic("sim: " + err.Error())
		}
		benchmarks = tb
	}
	base := uint64(0)
	for i := range states {
		b := benchmarks[i]
		var src workload.Source
		if cfg.Sources[i] != nil {
			src = cfg.Sources[i]
		} else if s.streams[i] != nil {
			s.streams[i].Reset(b, cfg.Seed+int64(i)*7919, base)
			src = s.streams[i]
		} else {
			s.streams[i] = b.NewStream(cfg.Seed+int64(i)*7919, base)
			src = s.streams[i]
		}
		if s.cores[i] == nil {
			s.cores[i] = cpu.New(cpu.DefaultConfig())
		} else {
			s.cores[i].Reset()
		}
		states[i] = coreState{core: s.cores[i], llc: llcs[i], stream: src}
		base += uint64(b.FootprintLines)
		// Page-align region starts so pairs never straddle benchmarks.
		base = (base + 63) &^ 63
	}

	ranksBanks := uint64(mem.Config().RanksPerChannel * mem.Config().BanksPerRank)
	cpr := cfg.CPUCyclesPerDRAMCycle
	s.fetch = missIssuer{mem: mem, cpr: cpr, ranksBanks: ranksBanks}

	var demandFetches, upgradedFetches int64

	// Event loop: always advance the core that is furthest behind, so the
	// shared memory controller sees requests in (approximate) time order.
	for {
		next := -1
		for i := range states {
			if states[i].done {
				continue
			}
			if next < 0 || states[i].core.Now() < states[next].core.Now() {
				next = i
			}
		}
		if next < 0 {
			break
		}
		st := &states[next]
		a := st.stream.Next()
		st.core.AdvanceCompute(a.Gap)
		if st.core.Instructions() >= cfg.InstructionsPerCore {
			st.core.Drain()
			st.done = true
			continue
		}
		if st.llc.Access(a.Line, a.Write) {
			st.core.NoteHit()
			continue
		}
		isUp := oracleOn && upgradedPage(pageOf(a.Line), cfg.Seed, threshold)
		s.evs = st.llc.InsertInto(a.Line, isUp, a.Write, s.evs[:0])
		s.handled = writeback(mem, cpr, ranksBanks, st.core.Now(), s.evs, s.handled)
		demandFetches++
		if isUp {
			upgradedFetches++
		}
		s.fetch.line, s.fetch.isUp = a.Line, isUp
		if a.Write {
			// Write-allocate: the fill occupies memory but the store
			// itself retires through the store buffer without stalling.
			s.fetch.IssueAt(st.core.Now())
			continue
		}
		st.core.IssueMissTo(&s.fetch)
	}

	// Aggregate.
	var res Result
	var slowest int64
	var hits, misses int64
	for i := range states {
		st := &states[i]
		res.PerCoreIPC[i] = float64(cfg.InstructionsPerCore) / float64(st.core.Now())
		res.IPCSum += res.PerCoreIPC[i]
		if st.core.Now() > slowest {
			slowest = st.core.Now()
		}
		if cfg.SharedLLC && i > 0 {
			continue // all four states alias one LLC; count it once
		}
		h, m, _, _ := st.llc.Stats()
		hits += h
		misses += m
	}
	res.ElapsedDRAMCycles = slowest / cpr
	if last := mem.LastCompletion(); last > res.ElapsedDRAMCycles {
		res.ElapsedDRAMCycles = last
	}
	res.MemReads, res.MemWrites = mem.Stats()
	if hits+misses > 0 {
		res.LLCHitRate = float64(hits) / float64(hits+misses)
	}
	if demandFetches > 0 {
		res.UpgradedAccessFraction = float64(upgradedFetches) / float64(demandFetches)
	}

	// The clock period and device count follow the generation the scratch
	// built this system from (3.0 ns and 72 devices for the paper's DDR2).
	sys := int(cfg.System)
	elapsedNS := float64(res.ElapsedDRAMCycles) * s.nsPerCyc[sys]
	active := mem.BankUtilization(res.ElapsedDRAMCycles)
	res.PowerMW = meter.AveragePowerMW(elapsedNS, s.devices[sys], active, 0.9)
	return res
}
