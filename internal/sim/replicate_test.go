package sim

import (
	"runtime"
	"testing"

	"arcc/internal/workload"
)

func TestRunReplicated(t *testing.T) {
	cfg := shortConfig(0, ARCC)
	r := RunReplicated(cfg, 4)
	if r.Runs != 4 {
		t.Fatalf("runs %d", r.Runs)
	}
	if r.IPCMean <= 0 || r.PowerMean <= 0 {
		t.Fatal("means must be positive")
	}
	if r.IPCCI95 < 0 || r.PowerCI95 < 0 {
		t.Fatal("confidence half-widths must be non-negative")
	}
	// Seeds perturb the workloads only slightly: the interval should be
	// tight relative to the mean.
	if r.IPCCI95 > 0.2*r.IPCMean {
		t.Fatalf("IPC CI %v too wide vs mean %v", r.IPCCI95, r.IPCMean)
	}
}

func TestRunReplicatedDeterministicAcrossParallelism(t *testing.T) {
	cfg := shortConfig(0, ARCC)
	want := RunReplicatedParallel(cfg, 4, 1)
	for _, par := range []int{1, 4, runtime.NumCPU()} {
		if got := RunReplicatedParallel(cfg, 4, par); got != want {
			t.Fatalf("parallelism %d: %+v, want bit-identical %+v", par, got, want)
		}
	}
}

func TestRunReplicatedPanicsOnTooFewRuns(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	RunReplicated(DefaultConfig(workload.Mixes()[0], ARCC), 0)
}

// A single replica is user input (an HTTP job, a CLI flag), not a harness
// bug: it must report the run itself with zero confidence half-widths,
// never panic (stats.StdDev under CI95 needs two samples).
func TestRunReplicatedSingleRun(t *testing.T) {
	cfg := shortConfig(0, ARCC)
	r := RunReplicated(cfg, 1)
	if r.Runs != 1 {
		t.Fatalf("runs %d", r.Runs)
	}
	if r.IPCMean <= 0 || r.PowerMean <= 0 {
		t.Fatal("means must be positive")
	}
	if r.IPCCI95 != 0 || r.PowerCI95 != 0 {
		t.Fatalf("one sample has no spread: CI95 %v/%v, want 0/0", r.IPCCI95, r.PowerCI95)
	}
	// The single replica must be the same run a 2-replica aggregate
	// starts from: seed cfg.Seed+1.
	solo := cfg
	solo.Seed = cfg.Seed + 1
	want := Run(solo)
	if r.IPCMean != want.IPCSum || r.PowerMean != want.PowerMW {
		t.Fatalf("single-run mean %v/%v, want the seed+1 run %v/%v",
			r.IPCMean, r.PowerMean, want.IPCSum, want.PowerMW)
	}
}

func TestReplaySourceReproducesStreamRun(t *testing.T) {
	// Record each core's stream, replay the traces through the simulator,
	// and require the identical result — the trace path is faithful.
	cfg := shortConfig(2, ARCC)
	direct := Run(cfg)

	// Rebuild the same streams and capture generously more accesses than
	// the run consumes.
	replay := cfg
	base := uint64(0)
	for i := range replay.Sources {
		b := cfg.Mix.Benchmarks[i]
		s := b.NewStream(cfg.Seed+int64(i)*7919, base)
		accesses := make([]workload.Access, 0, 200000)
		for j := 0; j < 200000; j++ {
			accesses = append(accesses, s.Next())
		}
		replay.Sources[i] = workload.NewReplaySource(accesses)
		base += uint64(b.FootprintLines)
		base = (base + 63) &^ 63
	}
	replayed := Run(replay)
	if direct != replayed {
		t.Fatalf("trace replay diverged:\n direct   %+v\n replayed %+v", direct, replayed)
	}
}
