package sim

import (
	"testing"

	"arcc/internal/workload"
)

func quickCfg(system MemorySystem, upgraded float64, seed int64) Config {
	cfg := DefaultConfig(workload.Mixes()[0], system)
	cfg.InstructionsPerCore = 30_000
	cfg.UpgradedFraction = upgraded
	cfg.Seed = seed
	return cfg
}

// TestRunWithMatchesRun pins the scratch entry point to Run: a fresh
// scratch, a heavily reused scratch, and the pooled Run wrapper all produce
// bit-identical results, including across config changes (different memory
// system, upgraded fraction, seed) on the same scratch.
func TestRunWithMatchesRun(t *testing.T) {
	configs := []Config{
		quickCfg(Baseline, 0, 1),
		quickCfg(ARCC, 0, 1),
		quickCfg(ARCC, 0.3, 1),
		quickCfg(ARCC, 1, 7),
		quickCfg(Baseline, 0, 7),
	}
	reused := NewScratch()
	// Warm the reused scratch with an unrelated geometry so reuse paths
	// (reset vs rebuild) are both exercised.
	small := quickCfg(ARCC, 0.5, 3)
	small.LLCBytes = 1 << 18
	RunWith(small, reused)
	for i, cfg := range configs {
		want := RunWith(cfg, nil)
		if got := RunWith(cfg, reused); got != want {
			t.Errorf("config %d: reused scratch diverged:\n got %+v\nwant %+v", i, got, want)
		}
		if got := Run(cfg); got != want {
			t.Errorf("config %d: pooled Run diverged:\n got %+v\nwant %+v", i, got, want)
		}
	}
}

// TestRunWithSteadyStateAllocationFree pins the whole simulator run to zero
// heap allocations once its scratch is warm: LLC fills and evictions, core
// miss issue, writeback dedup, and the memory/power bookkeeping all run on
// reused state.
func TestRunWithSteadyStateAllocationFree(t *testing.T) {
	for _, system := range []MemorySystem{Baseline, ARCC} {
		cfg := quickCfg(system, 0.3, 2)
		cfg.InstructionsPerCore = 5_000
		s := NewScratch()
		RunWith(cfg, s) // warm up: sizes every buffer
		allocs := testing.AllocsPerRun(5, func() { RunWith(cfg, s) })
		if allocs != 0 {
			t.Errorf("%v: RunWith steady state: %v allocs/op, want 0", system, allocs)
		}
	}
}

// BenchmarkSimRunSteadyState measures one full quick-profile simulator run
// against a warm scratch — the unit the Fig 7.1-7.3 sweeps repeat hundreds
// of times. Allocations should be zero.
func BenchmarkSimRunSteadyState(b *testing.B) {
	cfg := quickCfg(ARCC, 0.3, 1)
	cfg.InstructionsPerCore = 150_000 // the experiments' quick budget
	s := NewScratch()
	RunWith(cfg, s)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		RunWith(cfg, s)
	}
}
