package sim

import (
	"bytes"
	"testing"

	"arcc/internal/dram"
	"arcc/internal/workload"
)

// techConfig returns a short run on a given generation.
func techConfig(system MemorySystem, tech Tech) Config {
	cfg := DefaultConfig(workload.Mixes()[0], system)
	cfg.InstructionsPerCore = 120_000
	cfg.Tech = tech
	cfg.CPUCyclesPerDRAMCycle = tech.CPR()
	return cfg
}

func TestTechAxisDeterministicAndDistinct(t *testing.T) {
	ddr2 := Run(techConfig(ARCC, Tech{}))
	for _, tech := range []Tech{
		{Generation: dram.DDR4},
		{Generation: dram.DDR4, Width: 16},
		{Generation: dram.DDR5},
		{Generation: dram.DDR5, Width: 4},
	} {
		a := Run(techConfig(ARCC, tech))
		b := Run(techConfig(ARCC, tech))
		if a != b {
			t.Fatalf("%v x%d: nondeterministic:\n%+v\n%+v", tech.Generation, tech.Width, a, b)
		}
		if a == ddr2 {
			t.Fatalf("%v x%d: identical to DDR2 — tech axis not wired", tech.Generation, tech.Width)
		}
		if a.IPCSum <= 0 || a.PowerMW <= 0 {
			t.Fatalf("%v x%d: degenerate result %+v", tech.Generation, tech.Width, a)
		}
	}
}

func TestTechZeroValueMatchesLegacyDDR2(t *testing.T) {
	// The zero Tech must book byte-identically to the pre-axis simulator,
	// including through a scratch that ran a DDR5 config in between (cache
	// keyed on tech, not just system).
	s := NewScratch()
	ref := RunWith(techConfig(ARCC, Tech{}), s)
	RunWith(techConfig(ARCC, Tech{Generation: dram.DDR5}), s)
	again := RunWith(techConfig(ARCC, Tech{}), s)
	if ref != again {
		t.Fatalf("legacy DDR2 result changed after a DDR5 run on the same scratch:\n%+v\n%+v", ref, again)
	}
	// Width 8 normalises to the zero Tech.
	if w8 := Run(techConfig(ARCC, Tech{Width: 8})); w8 != ref {
		t.Fatalf("DDR2 x8 differs from zero Tech:\n%+v\n%+v", w8, ref)
	}
}

func TestTechRejectsUnsupported(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("DDR2 x16 accepted")
		}
	}()
	Run(techConfig(ARCC, Tech{Generation: dram.DDR2, Width: 16}))
}

func TestTechCPR(t *testing.T) {
	for _, tc := range []struct {
		tech Tech
		want int64
	}{
		{Tech{}, 9},
		{Tech{Generation: dram.DDR4}, 3},
		{Tech{Generation: dram.DDR5}, 1},
	} {
		if got := tc.tech.CPR(); got != tc.want {
			t.Errorf("%v: CPR = %d, want %d", tc.tech.Generation, got, tc.want)
		}
	}
}

func TestDDR5ARCCStillSavesPower(t *testing.T) {
	// The paper's mechanism — relaxed accesses touch fewer devices — must
	// survive the generation change, not just the DDR2 calibration.
	arcc := Run(techConfig(ARCC, Tech{Generation: dram.DDR5}))
	base := Run(techConfig(Baseline, Tech{Generation: dram.DDR5}))
	if arcc.PowerMW >= base.PowerMW {
		t.Fatalf("DDR5 ARCC power %.2f mW >= baseline %.2f mW", arcc.PowerMW, base.PowerMW)
	}
}

func TestSharedLLCContention(t *testing.T) {
	// Four instances of a tenant whose 768 KB working set fits a private
	// 1 MB LLC but whose combined 3 MB cannot fit one shared 1 MB LLC.
	base := shortConfig(0, ARCC)
	base.Tenants = []workload.Tenant{{Benchmark: "mcf2006", FootprintLines: 12288}}
	private := Run(base)

	shared := base
	shared.SharedLLC = true
	a := Run(shared)
	b := Run(shared)
	if a != b {
		t.Fatalf("shared-LLC run nondeterministic:\n%+v\n%+v", a, b)
	}
	if a.LLCHitRate >= private.LLCHitRate {
		t.Fatalf("shared 1MB hit rate %.4f >= private 4x1MB %.4f; contention not modelled", a.LLCHitRate, private.LLCHitRate)
	}
	// Giving the shared LLC the same total capacity recovers most of it.
	bigShared := shared
	bigShared.LLCBytes = 4 << 20
	c := Run(bigShared)
	if c.LLCHitRate <= a.LLCHitRate {
		t.Fatalf("4MB shared hit rate %.4f <= 1MB shared %.4f", c.LLCHitRate, a.LLCHitRate)
	}
}

func TestTenantsOverrideMix(t *testing.T) {
	cfg := shortConfig(0, ARCC)
	cfg.Tenants = []workload.Tenant{{Benchmark: "mcf2006"}, {Benchmark: "swim"}}
	a := Run(cfg)
	b := Run(cfg)
	if a != b {
		t.Fatalf("tenant run nondeterministic:\n%+v\n%+v", a, b)
	}
	if a == Run(shortConfig(0, ARCC)) {
		t.Fatal("tenants did not change the run; mix override not wired")
	}
	// A footprint override must change cache behaviour.
	cfg2 := cfg
	cfg2.Tenants = []workload.Tenant{{Benchmark: "mcf2006", FootprintLines: 1 << 26}, {Benchmark: "swim"}}
	if c := Run(cfg2); c.LLCHitRate == a.LLCHitRate && c.MemReads == a.MemReads {
		t.Fatal("footprint override had no effect")
	}
}

func TestTraceSourcesDriveSim(t *testing.T) {
	// Record a short trace per core, then run the simulator twice from
	// clones of the same loaded traces: results must be identical, and a
	// trace-driven run must match the equivalent synthetic run it was
	// recorded from.
	cfg := shortConfig(0, ARCC)
	ref := Run(cfg)

	var traces [4]*workload.TraceSource
	for i := range traces {
		b := cfg.Mix.Benchmarks[i]
		var base uint64
		for j := 0; j < i; j++ {
			base += uint64(cfg.Mix.Benchmarks[j].FootprintLines)
			base = (base + 63) &^ 63
		}
		s := b.NewStream(cfg.Seed+int64(i)*7919, base)
		var buf bytes.Buffer
		// Generously more accesses than the run consumes.
		if _, err := workload.Record(&buf, s, 600_000); err != nil {
			t.Fatal(err)
		}
		src, err := workload.LoadTrace(&buf)
		if err != nil {
			t.Fatal(err)
		}
		traces[i] = src
	}

	run := func() Result {
		c := cfg
		for i := range traces {
			c.Sources[i] = traces[i].Clone()
		}
		return Run(c)
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("trace-driven runs diverge:\n%+v\n%+v", a, b)
	}
	if a != ref {
		t.Fatalf("trace replay differs from the synthetic run it recorded:\n%+v\n%+v", a, ref)
	}
}
