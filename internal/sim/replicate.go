package sim

import (
	"fmt"

	"arcc/internal/stats"
)

// Replication aggregates repeated runs of one configuration across seeds.
type Replication struct {
	Runs int
	// IPC and Power aggregate the per-seed IPCSum and PowerMW results.
	IPCMean, IPCCI95     float64
	PowerMean, PowerCI95 float64
}

// RunReplicated executes cfg under runs different seeds (cfg.Seed+1 ..
// cfg.Seed+runs) and reports mean and 95% confidence half-widths. The
// experiments use it to put error bars on the headline numbers.
func RunReplicated(cfg Config, runs int) Replication {
	if runs < 2 {
		panic(fmt.Sprintf("sim: RunReplicated needs at least 2 runs, got %d", runs))
	}
	ipcs := make([]float64, runs)
	powers := make([]float64, runs)
	for i := 0; i < runs; i++ {
		c := cfg
		c.Seed = cfg.Seed + int64(i) + 1
		r := Run(c)
		ipcs[i] = r.IPCSum
		powers[i] = r.PowerMW
	}
	return Replication{
		Runs:      runs,
		IPCMean:   stats.Mean(ipcs),
		IPCCI95:   stats.CI95(ipcs),
		PowerMean: stats.Mean(powers),
		PowerCI95: stats.CI95(powers),
	}
}
