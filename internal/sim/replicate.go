package sim

import (
	"fmt"
	"math/rand"

	"arcc/internal/mc"
	"arcc/internal/stats"
)

// Replication aggregates repeated runs of one configuration across seeds.
type Replication struct {
	Runs int
	// IPC and Power aggregate the per-seed IPCSum and PowerMW results.
	IPCMean, IPCCI95     float64
	PowerMean, PowerCI95 float64
}

// RunReplicated executes cfg under runs different seeds (cfg.Seed+1 ..
// cfg.Seed+runs) and reports mean and 95% confidence half-widths. The
// experiments use it to put error bars on the headline numbers. Runs are
// fanned out across GOMAXPROCS workers; because each run is wholly
// determined by its own seed, the aggregate is bit-identical to a serial
// execution.
//
// A single replica is a legal request — its mean is the run itself and
// the confidence half-widths are zero (one sample carries no spread
// information). Only runs < 1 is a programmer error.
func RunReplicated(cfg Config, runs int) Replication {
	return RunReplicatedParallel(cfg, runs, 0)
}

// RunReplicatedParallel is RunReplicated with an explicit worker count
// (<= 0 means GOMAXPROCS; 1 runs the replicas serially in-line).
func RunReplicatedParallel(cfg Config, runs, parallelism int) Replication {
	if runs < 1 {
		panic(fmt.Sprintf("sim: RunReplicated needs at least 1 run, got %d", runs))
	}
	// One replica per shard: a full simulator run is far too heavy to
	// batch, and per-run seeding (not the shard stream) fixes each
	// replica's randomness. Each worker threads one sim.Scratch through
	// the replicas it executes, so a run reuses the previous run's cores,
	// LLC backing arrays, and controller state instead of rebuilding the
	// world; the scratch carries capacity only, so the aggregate stays
	// bit-identical to a serial execution.
	type rp struct{ IPC, Power float64 }
	results := mc.MapScratch(runs, cfg.Seed, mc.Options{Parallelism: parallelism, ShardSize: 1},
		NewScratch,
		func(_ *rand.Rand, i int, scratch *Scratch) rp {
			c := cfg
			c.Seed = cfg.Seed + int64(i) + 1
			r := RunWith(c, scratch)
			return rp{IPC: r.IPCSum, Power: r.PowerMW}
		})
	ipcs := make([]float64, runs)
	powers := make([]float64, runs)
	for i, r := range results {
		ipcs[i] = r.IPC
		powers[i] = r.Power
	}
	// stats.CI95 reports a zero half-width for a single replica — one
	// sample has no spread — so runs == 1 (user input: an HTTP job, a CLI
	// flag) needs no special case here.
	return Replication{
		Runs:      runs,
		IPCMean:   stats.Mean(ipcs),
		PowerMean: stats.Mean(powers),
		IPCCI95:   stats.CI95(ipcs),
		PowerCI95: stats.CI95(powers),
	}
}
