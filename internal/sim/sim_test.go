package sim

import (
	"testing"

	"arcc/internal/workload"
)

// shortConfig returns a config small enough for unit tests.
func shortConfig(mixIdx int, system MemorySystem) Config {
	cfg := DefaultConfig(workload.Mixes()[mixIdx], system)
	cfg.InstructionsPerCore = 150_000
	return cfg
}

func TestRunDeterministic(t *testing.T) {
	a := Run(shortConfig(0, ARCC))
	b := Run(shortConfig(0, ARCC))
	if a != b {
		t.Fatalf("same config, different results:\n%+v\n%+v", a, b)
	}
}

func TestSeedChangesOutcome(t *testing.T) {
	cfg := shortConfig(0, ARCC)
	a := Run(cfg)
	cfg.Seed = 999
	b := Run(cfg)
	if a.IPCSum == b.IPCSum && a.MemReads == b.MemReads {
		t.Fatal("different seeds produced identical runs; randomness not plumbed")
	}
}

func TestARCCSavesPowerFaultFree(t *testing.T) {
	// The headline mechanism of Fig 7.1: fault-free ARCC must land well
	// below the baseline in power on every mix we sample.
	for _, mixIdx := range []int{0, 5, 9} {
		arcc := Run(shortConfig(mixIdx, ARCC))
		base := Run(shortConfig(mixIdx, Baseline))
		reduction := 1 - arcc.PowerMW/base.PowerMW
		if reduction < 0.20 || reduction > 0.55 {
			t.Errorf("mix %d: power reduction %.1f%%, want within [20%%, 55%%]", mixIdx+1, reduction*100)
		}
	}
}

func TestARCCPerformanceAtLeastComparable(t *testing.T) {
	// Fig 7.1: ARCC averaged +5.9% IPC from rank parallelism. Individual
	// mixes vary; none should collapse.
	for _, mixIdx := range []int{0, 9} {
		arcc := Run(shortConfig(mixIdx, ARCC))
		base := Run(shortConfig(mixIdx, Baseline))
		ratio := arcc.IPCSum / base.IPCSum
		if ratio < 0.97 {
			t.Errorf("mix %d: ARCC IPC ratio %.3f, want >= 0.97", mixIdx+1, ratio)
		}
	}
}

func TestUpgradedFractionRaisesPowerMonotonically(t *testing.T) {
	cfg := shortConfig(0, ARCC)
	prev := Run(cfg).PowerMW
	for _, f := range []float64{1.0 / 32, 1.0 / 16, 0.5, 1.0} {
		cfg.UpgradedFraction = f
		p := Run(cfg).PowerMW
		if p < prev*0.999 {
			t.Fatalf("power not monotone in upgraded fraction: f=%v gives %v after %v", f, p, prev)
		}
		prev = p
	}
}

func TestWorstCasePowerBound(t *testing.T) {
	// Fig 7.2's "worst case est.": the power increase cannot exceed the
	// upgraded page fraction (that bound assumes zero spatial reuse; real
	// workloads with locality do better).
	cfg := shortConfig(0, ARCC)
	clean := Run(cfg).PowerMW
	for _, f := range []float64{0.5, 1.0} {
		cfg.UpgradedFraction = f
		ratio := Run(cfg).PowerMW / clean
		if ratio > 1+f+0.02 {
			t.Errorf("f=%v: power ratio %.3f exceeds worst-case bound %.3f", f, ratio, 1+f)
		}
		if ratio < 1.0 {
			t.Errorf("f=%v: power ratio %.3f below 1; faults cannot save power", f, ratio)
		}
	}
}

func TestSpatialLocalityDecidesFaultPerformance(t *testing.T) {
	// Fig 7.3: with every page upgraded (lane fault), high-spatial mixes
	// benefit from the 128 B implicit prefetch while pointer-chasing
	// mixes lose performance.
	spatial := shortConfig(0, ARCC) // Mix1: mesa/leslie3d/GemsFDTD/fma3d
	chase := shortConfig(9, ARCC)   // Mix10: mcf/libquantum/omnetpp/astar

	spatialClean, chaseClean := Run(spatial), Run(chase)
	spatial.UpgradedFraction = 1
	chase.UpgradedFraction = 1
	spatialFault, chaseFault := Run(spatial), Run(chase)

	spatialRatio := spatialFault.IPCSum / spatialClean.IPCSum
	chaseRatio := chaseFault.IPCSum / chaseClean.IPCSum
	if spatialRatio <= chaseRatio {
		t.Fatalf("spatial mix ratio %.3f should exceed pointer-chasing ratio %.3f", spatialRatio, chaseRatio)
	}
	if chaseRatio < 0.5 {
		t.Fatalf("worst-case perf loss beyond the 50%% bandwidth bound: %.3f", chaseRatio)
	}
}

func TestUpgradedAccessFractionTracksPageFraction(t *testing.T) {
	cfg := shortConfig(0, ARCC)
	cfg.UpgradedFraction = 0.5
	r := Run(cfg)
	if r.UpgradedAccessFraction < 0.3 || r.UpgradedAccessFraction > 0.7 {
		t.Fatalf("upgraded access fraction %.3f far from page fraction 0.5", r.UpgradedAccessFraction)
	}
	cfg.UpgradedFraction = 0
	if r := Run(cfg); r.UpgradedAccessFraction != 0 {
		t.Fatalf("fault-free run served %.3f upgraded accesses", r.UpgradedAccessFraction)
	}
}

func TestBaselineIgnoresUpgradedFraction(t *testing.T) {
	cfg := shortConfig(0, Baseline)
	a := Run(cfg)
	cfg.UpgradedFraction = 1
	b := Run(cfg)
	if a.PowerMW != b.PowerMW || a.IPCSum != b.IPCSum {
		t.Fatal("baseline must not react to the upgraded fraction")
	}
}

func TestRunPanicsOnBadConfig(t *testing.T) {
	for name, mutate := range map[string]func(*Config){
		"zero instructions": func(c *Config) { c.InstructionsPerCore = 0 },
		"bad fraction":      func(c *Config) { c.UpgradedFraction = 1.5 },
		"zero llc":          func(c *Config) { c.LLCBytes = 0 },
		"bad system":        func(c *Config) { c.System = MemorySystem(9) },
	} {
		cfg := shortConfig(0, ARCC)
		mutate(&cfg)
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			Run(cfg)
		}()
	}
}

func TestPerCoreIPCsPositiveAndBounded(t *testing.T) {
	r := Run(shortConfig(3, ARCC))
	for i, ipc := range r.PerCoreIPC {
		if ipc <= 0 || ipc > 2.0 {
			t.Fatalf("core %d IPC %v outside (0, 2]", i, ipc)
		}
	}
	if r.MemReads == 0 {
		t.Fatal("no memory reads recorded")
	}
	if r.ElapsedDRAMCycles <= 0 {
		t.Fatal("no elapsed time")
	}
}

func TestLongerRunsProduceWritebacks(t *testing.T) {
	cfg := shortConfig(11, ARCC) // Mix12 contains lbm (45% writes)
	cfg.InstructionsPerCore = 600_000
	r := Run(cfg)
	if r.MemWrites == 0 {
		t.Fatal("dirty evictions never reached memory")
	}
}

func TestMemorySystemString(t *testing.T) {
	if Baseline.String() != "baseline" || ARCC.String() != "arcc" {
		t.Fatal("MemorySystem strings wrong")
	}
}
