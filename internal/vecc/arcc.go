package vecc

import (
	"fmt"

	"arcc/internal/rs"
)

// This file implements the §5.2 application of ARCC to VECC: fault-free
// pages drop from the 18-device VECC layout to a NINE-device layout — eight
// data devices plus one redundant device holding a single detection check
// symbol, with one correction check symbol virtualized into another rank.
// Faulty pages upgrade back to the full 18-device VECC (package-level
// Scheme), doubling both tiers' check symbols.

// RelaxedDataSymbols is the data symbol count of the 9-device codeword.
const RelaxedDataSymbols = 8

// RelaxedScheme is the 9-device VECC codec: RS(10, 8) with one rank-resident
// T1 symbol and one virtualized T2 symbol.
type RelaxedScheme struct {
	full *rs.Code // (10, 8)
}

// NewRelaxed constructs the 9-device codec.
func NewRelaxed() *RelaxedScheme {
	return &RelaxedScheme{full: rs.New(RelaxedDataSymbols+2, RelaxedDataSymbols)}
}

// Encode produces the rank-resident part (8 data + 1 T1 check, 9 symbols)
// and the single virtualized T2 symbol.
func (s *RelaxedScheme) Encode(data []byte) (rankPart, t2Part []byte) {
	if len(data) != RelaxedDataSymbols {
		panic(fmt.Sprintf("vecc: relaxed Encode with %d symbols, want %d", len(data), RelaxedDataSymbols))
	}
	cw := s.full.Encode(data)
	rankPart = make([]byte, RelaxedDataSymbols+1)
	copy(rankPart, cw[:RelaxedDataSymbols+1])
	t2Part = []byte{cw[RelaxedDataSymbols+1]}
	return rankPart, t2Part
}

// CheckT1 verifies the rank-resident symbols with the single detection
// check symbol: any one bad symbol is guaranteed to be flagged.
func (s *RelaxedScheme) CheckT1(rankPart []byte) bool {
	if len(rankPart) != RelaxedDataSymbols+1 {
		panic(fmt.Sprintf("vecc: relaxed CheckT1 with %d symbols, want %d", len(rankPart), RelaxedDataSymbols+1))
	}
	cw := s.full.Encode(rankPart[:RelaxedDataSymbols])
	return cw[RelaxedDataSymbols] == rankPart[RelaxedDataSymbols]
}

// Decode corrects using both tiers (two check symbols total): one bad
// symbol is corrected; patterns beyond that return ErrDetected.
func (s *RelaxedScheme) Decode(rankPart, t2Part []byte) ([]byte, error) {
	if len(rankPart) != RelaxedDataSymbols+1 || len(t2Part) != 1 {
		panic("vecc: relaxed Decode with wrong part sizes")
	}
	cw := make([]byte, s.full.N())
	copy(cw, rankPart)
	cw[RelaxedDataSymbols+1] = t2Part[0]
	res, err := s.full.DecodeBounded(cw, 1)
	if err != nil {
		return nil, ErrDetected
	}
	return res.Corrected[:RelaxedDataSymbols], nil
}

// ARCCCost compares the access cost of the two VECC modes: the relaxed
// 9-device layout against the upgraded 18-device layout, for a given T2EC
// LLC hit rate. Power scales with devices per access exactly as in the main
// ARCC evaluation.
type ARCCCost struct {
	RelaxedDevicesPerRead  int
	UpgradedDevicesPerRead int
	// UpgradedPowerFactor is the worst-case power multiple of an upgraded
	// access over a relaxed one (2x the devices).
	UpgradedPowerFactor float64
}

// CostOfARCC returns the §5.2 cost comparison.
func CostOfARCC() ARCCCost {
	return ARCCCost{
		RelaxedDevicesPerRead:  9,
		UpgradedDevicesPerRead: 18,
		UpgradedPowerFactor:    2,
	}
}
