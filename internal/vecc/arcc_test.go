package vecc

import (
	"bytes"
	"math/rand"
	"testing"
)

func TestRelaxedEncodeShapes(t *testing.T) {
	s := NewRelaxed()
	rank, t2 := s.Encode(make([]byte, RelaxedDataSymbols))
	if len(rank) != 9 || len(t2) != 1 {
		t.Fatalf("parts %d/%d, want 9/1", len(rank), len(t2))
	}
}

func TestRelaxedCleanT1(t *testing.T) {
	s := NewRelaxed()
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 100; i++ {
		data := make([]byte, RelaxedDataSymbols)
		r.Read(data)
		rank, _ := s.Encode(data)
		if !s.CheckT1(rank) {
			t.Fatal("clean relaxed rank part failed T1")
		}
	}
}

func TestRelaxedT1DetectsEverySingleBadSymbol(t *testing.T) {
	s := NewRelaxed()
	r := rand.New(rand.NewSource(2))
	data := make([]byte, RelaxedDataSymbols)
	r.Read(data)
	rank, _ := s.Encode(data)
	for pos := 0; pos < len(rank); pos++ {
		for _, delta := range []byte{1, 0xFF, 0x80} {
			bad := make([]byte, len(rank))
			copy(bad, rank)
			bad[pos] ^= delta
			if s.CheckT1(bad) {
				t.Fatalf("T1 missed bad symbol at %d delta %#x", pos, delta)
			}
		}
	}
}

func TestRelaxedDecodeCorrectsSingleBadSymbol(t *testing.T) {
	s := NewRelaxed()
	r := rand.New(rand.NewSource(3))
	data := make([]byte, RelaxedDataSymbols)
	r.Read(data)
	rank, t2 := s.Encode(data)
	for pos := 0; pos < len(rank); pos++ {
		bad := make([]byte, len(rank))
		copy(bad, rank)
		bad[pos] ^= byte(1 + r.Intn(255))
		got, err := s.Decode(bad, t2)
		if err != nil {
			t.Fatalf("pos %d: %v", pos, err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("pos %d: wrong correction", pos)
		}
	}
}

func TestRelaxedDoubleBadSymbolNotSilentlyOriginal(t *testing.T) {
	// Two bad symbols exceed the 2-check relaxed code: they are either
	// detected or miscorrect — never returned as the original data.
	s := NewRelaxed()
	r := rand.New(rand.NewSource(4))
	data := make([]byte, RelaxedDataSymbols)
	r.Read(data)
	rank, t2 := s.Encode(data)
	var detected int
	for trial := 0; trial < 500; trial++ {
		bad := make([]byte, len(rank))
		copy(bad, rank)
		perm := r.Perm(len(rank))[:2]
		for _, p := range perm {
			bad[p] ^= byte(1 + r.Intn(255))
		}
		got, err := s.Decode(bad, t2)
		if err != nil {
			detected++
			continue
		}
		if bytes.Equal(got, data) {
			t.Fatalf("trial %d: double error decoded to original data", trial)
		}
	}
	if detected == 0 {
		t.Fatal("no double errors detected at all")
	}
}

func TestCostOfARCC(t *testing.T) {
	c := CostOfARCC()
	if c.RelaxedDevicesPerRead != 9 || c.UpgradedDevicesPerRead != 18 {
		t.Fatalf("cost %+v", c)
	}
	if c.UpgradedPowerFactor != 2 {
		t.Fatal("upgraded factor must be 2 (twice the devices)")
	}
}

func TestRelaxedPanics(t *testing.T) {
	s := NewRelaxed()
	for name, f := range map[string]func(){
		"encode":  func() { s.Encode(make([]byte, 16)) },
		"checkt1": func() { s.CheckT1(make([]byte, 10)) },
		"decode":  func() { s.Decode(make([]byte, 9), make([]byte, 2)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			f()
		}()
	}
}
