package vecc

import (
	"bytes"
	"math/rand"
	"testing"
)

func randData(r *rand.Rand) []byte {
	b := make([]byte, DataSymbols)
	r.Read(b)
	return b
}

func TestEncodeShapes(t *testing.T) {
	s := New()
	rank, t2 := s.Encode(make([]byte, DataSymbols))
	if len(rank) != 18 || len(t2) != 2 {
		t.Fatalf("parts %d/%d, want 18/2", len(rank), len(t2))
	}
}

func TestCleanReadNeedsOnlyT1(t *testing.T) {
	s := New()
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 100; i++ {
		rank, _ := s.Encode(randData(r))
		if !s.CheckT1(rank) {
			t.Fatal("clean rank part failed T1 check")
		}
	}
}

func TestT1DetectsSingleBadSymbolEverywhere(t *testing.T) {
	s := New()
	r := rand.New(rand.NewSource(2))
	rank, _ := s.Encode(randData(r))
	for pos := 0; pos < len(rank); pos++ {
		bad := make([]byte, len(rank))
		copy(bad, rank)
		bad[pos] ^= byte(1 + r.Intn(255))
		if s.CheckT1(bad) {
			t.Fatalf("T1 missed a bad symbol at position %d", pos)
		}
	}
}

func TestFullDecodeCorrectsSingleBadSymbol(t *testing.T) {
	s := New()
	r := rand.New(rand.NewSource(3))
	data := randData(r)
	rank, t2 := s.Encode(data)
	for pos := 0; pos < len(rank); pos++ {
		bad := make([]byte, len(rank))
		copy(bad, rank)
		bad[pos] ^= byte(1 + r.Intn(255))
		got, err := s.Decode(bad, t2)
		if err != nil {
			t.Fatalf("pos %d: %v", pos, err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("pos %d: wrong correction", pos)
		}
	}
}

func TestFullDecodeCorrectsBadT2Symbol(t *testing.T) {
	s := New()
	r := rand.New(rand.NewSource(4))
	data := randData(r)
	rank, t2 := s.Encode(data)
	badT2 := []byte{t2[0] ^ 0x42, t2[1]}
	got, err := s.Decode(rank, badT2)
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("bad T2 symbol not corrected: %v", err)
	}
}

func TestDoubleBadSymbolDetected(t *testing.T) {
	s := New()
	r := rand.New(rand.NewSource(5))
	data := randData(r)
	rank, t2 := s.Encode(data)
	for trial := 0; trial < 500; trial++ {
		bad := make([]byte, len(rank))
		copy(bad, rank)
		perm := r.Perm(len(rank))[:2]
		for _, p := range perm {
			bad[p] ^= byte(1 + r.Intn(255))
		}
		if _, err := s.Decode(bad, t2); err != ErrDetected {
			t.Fatalf("trial %d: double error err=%v, want detected", trial, err)
		}
	}
}

func TestCostAccounting(t *testing.T) {
	c := Cost(0.6)
	if c.DevicesPerRead != 18 || c.ErrorReadFactor != 2 {
		t.Fatalf("cost %+v", c)
	}
	if got := c.WriteAccesses(); got != 1.4 {
		t.Fatalf("WriteAccesses = %v, want 1.4 at 60%% T2EC hit rate", got)
	}
	if Cost(1).WriteAccesses() != 1 {
		t.Fatal("perfect T2EC caching must cost exactly one access per write")
	}
}

func TestCostPanicsOnBadHitRate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	Cost(1.5)
}

func TestPanicsOnWrongSizes(t *testing.T) {
	s := New()
	for name, f := range map[string]func(){
		"encode":  func() { s.Encode(make([]byte, 8)) },
		"checkt1": func() { s.CheckT1(make([]byte, 20)) },
		"decode":  func() { s.Decode(make([]byte, 18), make([]byte, 3)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			f()
		}()
	}
}

func TestStorageOverheadAboveCommercial(t *testing.T) {
	if got := StorageOverhead(); got <= 0.125 {
		t.Fatalf("VECC overhead %v should exceed commercial 12.5%%", got)
	}
}
