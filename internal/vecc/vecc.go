// Package vecc implements VECC (Yoon & Erez, ASPLOS'10), the virtualized
// two-tier ECC scheme the paper discusses in Ch. 2 and applies ARCC to in
// §5.2.
//
// VECC splits a chipkill code's check symbols across two tiers:
//
//   - Tier 1 (T1EC) — two check symbols stored in the rank's two redundant
//     devices; enough to *detect* a bad symbol on every read.
//   - Tier 2 (T2EC) — the remaining check symbols, stored as ordinary data
//     in a different rank and cached in the LLC. They are fetched only when
//     Tier 1 flags an error (a second memory access) and must be updated on
//     writes (an extra write when the T2EC line is not LLC-resident).
//
// This reduces the rank size from 36 to 18 while keeping chipkill
// correction, at the cost of extra accesses on writes and on erroneous
// reads. The code here uses an RS(20, 16) codeword: symbols 0..15 data,
// 16..17 T1, 18..19 T2; T1-only decoding is detect-only, full decoding
// corrects one symbol and detects two.
package vecc

import (
	"errors"
	"fmt"

	"arcc/internal/rs"
)

// ErrDetected reports an error pattern beyond the decoder's correction.
var ErrDetected = errors.New("vecc: detected uncorrectable error")

// DataSymbols is the number of data symbols per codeword.
const DataSymbols = 16

// T1Symbols is the number of Tier-1 (detection) check symbols.
const T1Symbols = 2

// T2Symbols is the number of Tier-2 (correction) check symbols.
const T2Symbols = 2

// Scheme is the VECC codec.
type Scheme struct {
	full *rs.Code // (20, 16): T1 + T2 together
}

// New constructs the codec.
func New() *Scheme {
	return &Scheme{full: rs.New(DataSymbols+T1Symbols+T2Symbols, DataSymbols)}
}

// Encode produces the full codeword split into the rank-resident part
// (data + T1, 18 symbols) and the virtualized T2 part (2 symbols).
func (s *Scheme) Encode(data []byte) (rankPart, t2Part []byte) {
	if len(data) != DataSymbols {
		panic(fmt.Sprintf("vecc: Encode with %d symbols, want %d", len(data), DataSymbols))
	}
	// The (20,16) codeword is data-first; check symbols 16..19. The first
	// two checks live in the rank's redundant devices (T1), the last two
	// are virtualized (T2).
	cw := s.full.Encode(data)
	rankPart = make([]byte, DataSymbols+T1Symbols)
	copy(rankPart, cw[:DataSymbols+T1Symbols])
	t2Part = make([]byte, T2Symbols)
	copy(t2Part, cw[DataSymbols+T1Symbols:])
	return rankPart, t2Part
}

// CheckT1 inspects only the rank-resident symbols and reports whether they
// are consistent. A clean result completes the read with a single memory
// access; a dirty result forces the T2 fetch. Detection-only: T1 never
// corrects.
func (s *Scheme) CheckT1(rankPart []byte) bool {
	if len(rankPart) != DataSymbols+T1Symbols {
		panic(fmt.Sprintf("vecc: CheckT1 with %d symbols, want %d", len(rankPart), DataSymbols+T1Symbols))
	}
	// Treat the missing T2 symbols as erasures: consistency of the
	// punctured codeword is checked by attempting an erasures-only decode
	// and comparing the reconstructed T2 against... simpler and exact:
	// re-encode the data symbols and compare the T1 symbols.
	cw := s.full.Encode(rankPart[:DataSymbols])
	for i := 0; i < T1Symbols; i++ {
		if cw[DataSymbols+i] != rankPart[DataSymbols+i] {
			return false
		}
	}
	return true
}

// Decode corrects the codeword using both tiers: up to one bad symbol is
// corrected, two bad symbols are detected. Returns the data symbols.
func (s *Scheme) Decode(rankPart, t2Part []byte) ([]byte, error) {
	if len(rankPart) != DataSymbols+T1Symbols || len(t2Part) != T2Symbols {
		panic("vecc: Decode with wrong part sizes")
	}
	cw := make([]byte, s.full.N())
	copy(cw, rankPart)
	copy(cw[DataSymbols+T1Symbols:], t2Part)
	res, err := s.full.DecodeBounded(cw, 1)
	if err != nil {
		return nil, ErrDetected
	}
	return res.Corrected[:DataSymbols], nil
}

// AccessCost models VECC's access accounting (Ch. 2): reads cost one rank
// access unless an error forces the T2 fetch; writes cost an extra access
// when the T2EC line misses in the LLC.
type AccessCost struct {
	DevicesPerRead  int     // 18
	ErrorReadFactor int     // 2 accesses when T1 flags an error
	T2ECHitRate     float64 // LLC hit rate of T2EC lines (workload-dependent)
}

// Cost returns the accounting with the given T2EC LLC hit rate.
func Cost(t2HitRate float64) AccessCost {
	if t2HitRate < 0 || t2HitRate > 1 {
		panic(fmt.Sprintf("vecc: hit rate %v out of range", t2HitRate))
	}
	return AccessCost{DevicesPerRead: 18, ErrorReadFactor: 2, T2ECHitRate: t2HitRate}
}

// WriteAccesses returns the expected memory accesses per write: one for the
// data plus one for the T2EC update when it misses in the LLC.
func (c AccessCost) WriteAccesses() float64 { return 1 + (1 - c.T2ECHitRate) }

// StorageOverhead returns VECC's redundant-storage fraction: both tiers'
// check symbols against the data symbols. VECC shrinks the rank from 36 to
// 18 devices by spending more storage than commercial chipkill's 12.5%
// (Ch. 2).
func StorageOverhead() float64 {
	return float64(T1Symbols+T2Symbols) / float64(DataSymbols)
}
