package pagedmem

import (
	"math/rand"
	"testing"
)

// BenchmarkPagedMemTerabyteSweep sweeps 72-byte stored lines scattered
// across a 1 TiB address space — the access pattern of a terabyte-scale
// controller whose workload touches a few thousand pages — and reports the
// resident footprint next to the usual ns/op and B/op. The perf gate
// (cmd/arcc-benchcmp) holds the line on ns/op and on allocs/op staying
// zero in steady state; pages-resident documents that residency tracks the
// touched footprint, not the 2^40-byte address space.
func BenchmarkPagedMemTerabyteSweep(b *testing.B) {
	const (
		space     = uint64(1) << 40 // 1 TiB
		lineBytes = 72
		lines     = 4096 // distinct lines touched
	)
	m := New(4096)
	rng := rand.New(rand.NewSource(1))
	addrs := make([]uint64, lines)
	for i := range addrs {
		addrs[i] = (rng.Uint64() % (space / lineBytes)) * lineBytes
	}
	line := make([]byte, lineBytes)
	for i := range line {
		line[i] = byte(i + 1)
	}
	out := make([]byte, lineBytes)
	// Materialise the working set once so the timed loop measures the
	// steady state.
	for _, a := range addrs {
		m.StoreFrom(a, line)
	}
	b.SetBytes(2 * lineBytes)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := addrs[i%lines]
		m.StoreFrom(a, line)
		m.LoadInto(a, out)
	}
	b.StopTimer()
	b.ReportMetric(float64(m.ResidentPages()), "pages-resident")
	b.ReportMetric(float64(m.ResidentBytes()), "bytes-resident")
}

// BenchmarkPagedMemMaterialise measures first-touch page materialisation
// (sorted-table insert + buffer allocation) across a scattered footprint.
func BenchmarkPagedMemMaterialise(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	addrs := make([]uint64, 4096)
	for i := range addrs {
		addrs[i] = rng.Uint64() &^ 4095
	}
	one := []byte{1}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := New(4096)
		for _, a := range addrs {
			m.StoreFrom(a, one)
		}
	}
}
