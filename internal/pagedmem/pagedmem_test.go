package pagedmem

import (
	"bytes"
	"math/rand"
	"testing"
)

func TestNewValidatesPageSize(t *testing.T) {
	for _, bad := range []int{0, -4096, 32, 48, 100, 4095} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d) did not panic", bad)
				}
			}()
			New(bad)
		}()
	}
	for _, good := range []int{64, 128, 4096, 1 << 20} {
		if m := New(good); m.PageBytes() != good {
			t.Errorf("PageBytes() = %d, want %d", m.PageBytes(), good)
		}
	}
}

func TestHolesReadZeroWithoutAllocating(t *testing.T) {
	m := New(4096)
	buf := make([]byte, 300)
	for i := range buf {
		buf[i] = 0xAA
	}
	m.LoadInto(1<<40+123, buf)
	for i, b := range buf {
		if b != 0 {
			t.Fatalf("hole read byte %d = %#x, want 0", i, b)
		}
	}
	if m.ResidentPages() != 0 || m.TouchedPages() != 0 {
		t.Fatalf("hole read materialised pages: resident %d touched %d", m.ResidentPages(), m.TouchedPages())
	}
}

func TestZeroStoreOverHolePreservesHole(t *testing.T) {
	m := New(256)
	zeros := make([]byte, 1000) // spans 4+ pages
	m.StoreFrom(512, zeros)
	if m.ResidentPages() != 0 {
		t.Fatalf("all-zero store materialised %d pages", m.ResidentPages())
	}
	// A single non-zero byte materialises exactly the page holding it.
	data := make([]byte, 1000)
	data[700] = 1
	m.StoreFrom(512, data)
	if m.ResidentPages() != 1 {
		t.Fatalf("resident pages = %d, want 1", m.ResidentPages())
	}
	got := make([]byte, 1000)
	m.LoadInto(512, got)
	if !bytes.Equal(got, data) {
		t.Fatal("read-back mismatch after sparse store")
	}
}

// TestDifferentialAgainstDenseReference drives random load/store/release
// sequences through Memory and a dense reference array in lockstep —
// cross-page spans, zero stores over holes, page releases — and checks
// byte-for-byte agreement plus the sorted-table invariant throughout.
func TestDifferentialAgainstDenseReference(t *testing.T) {
	const (
		pageBytes = 256
		space     = 64 * pageBytes // dense mirror size
		ops       = 20000
	)
	rng := rand.New(rand.NewSource(42))
	m := New(pageBytes)
	ref := make([]byte, space)
	scratch := make([]byte, 3*pageBytes)

	for op := 0; op < ops; op++ {
		n := 1 + rng.Intn(len(scratch))
		addr := uint64(rng.Intn(space - n))
		switch k := rng.Intn(10); {
		case k < 4: // store random data
			buf := scratch[:n]
			rng.Read(buf)
			if rng.Intn(4) == 0 { // sometimes mostly-zero data
				for i := range buf {
					if rng.Intn(8) != 0 {
						buf[i] = 0
					}
				}
			}
			m.StoreFrom(addr, buf)
			copy(ref[addr:], buf)
		case k < 6: // store zeros (hole-preserving over holes, page-zeroing otherwise)
			buf := scratch[:n]
			clear(buf)
			m.StoreFrom(addr, buf)
			copy(ref[addr:], buf)
		case k < 9: // load and compare
			buf := scratch[:n]
			m.LoadInto(addr, buf)
			if !bytes.Equal(buf, ref[addr:int(addr)+n]) {
				t.Fatalf("op %d: load mismatch at %#x+%d", op, addr, n)
			}
		default: // release a page if it has gone all-zero
			page := addr &^ uint64(pageBytes-1)
			want := allZero(ref[page : page+pageBytes])
			got := m.ReleaseIfZero(addr)
			// Release succeeds iff the page is resident AND zero; a zero
			// hole page is already released, so only assert the negative.
			if got && !want {
				t.Fatalf("op %d: released non-zero page %#x", op, page)
			}
		}
		if op%997 == 0 {
			if err := m.sanityCheck(); err != nil {
				t.Fatalf("op %d: %v", op, err)
			}
		}
	}

	// Full sweep: every byte agrees with the dense reference.
	got := make([]byte, space)
	m.LoadInto(0, got)
	if !bytes.Equal(got, ref) {
		t.Fatal("final full-space read disagrees with dense reference")
	}
	if err := m.sanityCheck(); err != nil {
		t.Fatal(err)
	}

	// CompactZero releases exactly the all-zero resident pages and changes
	// no observable content.
	m.CompactZero()
	m.LoadInto(0, got)
	if !bytes.Equal(got, ref) {
		t.Fatal("CompactZero changed memory content")
	}
	for i := 0; i < len(m.bases); i++ {
		if allZero(m.pages[i]) {
			t.Fatalf("all-zero page %#x survived CompactZero", m.bases[i])
		}
	}
}

func TestAccounting(t *testing.T) {
	m := New(4096)
	one := []byte{1}
	// Touch 8 scattered pages across a 2^44-byte span.
	for i := 0; i < 8; i++ {
		m.StoreFrom(uint64(i)<<41, one)
	}
	if m.ResidentPages() != 8 || m.TouchedPages() != 8 || m.HighWaterPages() != 8 {
		t.Fatalf("resident %d touched %d highwater %d, want 8/8/8",
			m.ResidentPages(), m.TouchedPages(), m.HighWaterPages())
	}
	if m.ResidentBytes() != 8*4096 {
		t.Fatalf("ResidentBytes() = %d, want %d", m.ResidentBytes(), 8*4096)
	}
	// Zero two pages and release them.
	zero := make([]byte, 1)
	m.StoreFrom(0<<41, zero)
	m.StoreFrom(3<<41, zero)
	if n := m.CompactZero(); n != 2 {
		t.Fatalf("CompactZero released %d pages, want 2", n)
	}
	if m.ResidentPages() != 6 || m.HighWaterPages() != 8 {
		t.Fatalf("after release: resident %d highwater %d, want 6/8", m.ResidentPages(), m.HighWaterPages())
	}
	// Re-touching a released page counts as a new materialisation.
	m.StoreFrom(0<<41, one)
	if m.ResidentPages() != 7 || m.TouchedPages() != 9 {
		t.Fatalf("after re-touch: resident %d touched %d, want 7/9", m.ResidentPages(), m.TouchedPages())
	}
	m.Reset()
	if m.ResidentPages() != 0 || m.TouchedPages() != 0 || m.HighWaterPages() != 0 || m.ResidentBytes() != 0 {
		t.Fatal("Reset did not clear accounting")
	}
}

func TestReleasedBuffersAreReused(t *testing.T) {
	m := New(4096)
	one := []byte{1}
	m.StoreFrom(0, one)
	m.StoreFrom(0, []byte{0})
	if !m.ReleaseIfZero(0) {
		t.Fatal("zeroed page did not release")
	}
	// Re-materialising must come from the free list, not the heap.
	allocs := testing.AllocsPerRun(1, func() {
		m.StoreFrom(0, one)
		m.StoreFrom(0, []byte{0})
		m.ReleaseIfZero(0)
	})
	if allocs != 0 {
		t.Fatalf("release/re-touch cycle allocates %v times per run, want 0", allocs)
	}
	// A reused buffer must come back zeroed.
	m.StoreFrom(100, one)
	got := make([]byte, 4096)
	m.LoadInto(0, got)
	for i, b := range got {
		if i != 100 && b != 0 {
			t.Fatalf("reused page byte %d = %#x, want 0", i, b)
		}
	}
}

func TestSteadyStateZeroAllocs(t *testing.T) {
	m := New(4096)
	line := make([]byte, 72)
	for i := range line {
		line[i] = byte(i + 1)
	}
	out := make([]byte, 72)
	// Pre-materialise the pages the loop touches (including a cross-page
	// line at the 4 KB boundary).
	m.StoreFrom(4096-36, line)
	m.StoreFrom(9000, line)
	allocs := testing.AllocsPerRun(100, func() {
		m.StoreFrom(9000, line)
		m.LoadInto(9000, out)
		m.StoreFrom(4096-36, line) // crosses a page boundary
		m.LoadInto(4096-36, out)
		m.LoadInto(1<<50, out) // hole read
	})
	if allocs != 0 {
		t.Fatalf("steady-state load/store allocates %v times per run, want 0", allocs)
	}
}

func TestForEachPageAscending(t *testing.T) {
	m := New(256)
	for _, pn := range []uint64{9, 2, 7, 1 << 30} {
		m.StoreFrom(pn*256, []byte{1, byte(pn)})
	}
	var bases []uint64
	m.ForEachPage(func(base uint64, data []byte) {
		bases = append(bases, base)
		if data[0] != 1 || data[1] != byte(base/256) {
			t.Fatalf("page %#x holds % x", base, data[:2])
		}
	})
	want := []uint64{2 * 256, 7 * 256, 9 * 256, (1 << 30) * 256}
	if len(bases) != len(want) {
		t.Fatalf("ForEachPage visited %d pages, want %d", len(bases), len(want))
	}
	for i := range want {
		if bases[i] != want[i] {
			t.Fatalf("visit %d: base %#x, want %#x", i, bases[i], want[i])
		}
	}
}

func TestSpanWrapPanics(t *testing.T) {
	m := New(64)
	defer func() {
		if recover() == nil {
			t.Fatal("wrapping span did not panic")
		}
	}()
	m.LoadInto(^uint64(0)-10, make([]byte, 64))
}
