// Package pagedmem is a page-granular sparse memory core: a flat byte
// address space of up to 2^64 bytes in which only the pages that have ever
// held non-trivial data are materialised. It is the storage substrate that
// lets the simulator span terabyte address spaces with host memory
// proportional to the *touched* footprint rather than the addressable one.
//
// # Layout
//
// The space is divided into fixed power-of-two pages. Allocated pages live
// in a sorted page table — two parallel slices, `bases` (ascending page
// numbers) and `pages` (their backing buffers) — in the page-hole idiom of
// the classic sparse VM cores: a lookup binary-searches `bases`, and any
// page number absent from it is a *hole*.
//
// # Hole semantics
//
// Holes read as zero (a freshly initialised, scrubbed memory) and reads
// never allocate. Writes materialise a page only when they would make it
// differ from a hole: storing all-zero bytes over a hole is a no-op, so
// sweeping zero-fill passes over pristine memory cost nothing. Pages whose
// content has returned to all-zero can be released back to holes —
// individually (ReleaseIfZero) or in bulk (CompactZero), which is what the
// scrubber calls after a verified pass so that pattern-tested-but-untouched
// memory does not stay resident.
//
// # Accounting
//
// ResidentPages/ResidentBytes report the currently materialised footprint,
// HighWaterPages its historical maximum, and TouchedPages the cumulative
// number of page materialisations (a page released and later re-written
// counts again). Tests pin "resident memory proportional to touched pages"
// against these numbers.
//
// # Allocation contract
//
// Steady-state loads and stores to already-materialised pages perform no
// heap allocations (pinned by testing.AllocsPerRun); only the first write
// that materialises a page allocates, and released page buffers are kept in
// a small free list for reuse.
package pagedmem

import (
	"fmt"
	"math/bits"
	"sort"
)

// maxFreePages bounds the released-buffer free list: enough to absorb
// scrub-style release/re-touch churn without hoarding a large high-water
// footprint forever.
const maxFreePages = 16

// Memory is a sparse byte-addressable space. The zero value is not usable;
// construct with New.
type Memory struct {
	pageBytes int
	shift     uint   // log2(pageBytes)
	offMask   uint64 // pageBytes-1

	bases []uint64 // sorted page numbers of materialised pages
	pages [][]byte // parallel backing buffers, len == pageBytes each
	free  [][]byte // released buffers kept for reuse (bounded)

	hint      int   // last hit index in bases: accelerates sequential runs
	touched   int64 // cumulative page materialisations
	highWater int   // max len(bases) ever observed
}

// New creates an empty memory with the given page size, which must be a
// power of two of at least 64 bytes.
func New(pageBytes int) *Memory {
	if pageBytes < 64 || pageBytes&(pageBytes-1) != 0 {
		panic(fmt.Sprintf("pagedmem: page size %d is not a power of two >= 64", pageBytes))
	}
	return &Memory{
		pageBytes: pageBytes,
		shift:     uint(bits.TrailingZeros(uint(pageBytes))),
		offMask:   uint64(pageBytes - 1),
	}
}

// PageBytes returns the page size.
func (m *Memory) PageBytes() int { return m.pageBytes }

// ResidentPages returns the number of currently materialised pages.
func (m *Memory) ResidentPages() int { return len(m.bases) }

// ResidentBytes returns the bytes held by materialised pages.
func (m *Memory) ResidentBytes() int64 { return int64(len(m.bases)) * int64(m.pageBytes) }

// TouchedPages returns the cumulative number of page materialisations. A
// page that is released and later re-written counts once per
// materialisation.
func (m *Memory) TouchedPages() int64 { return m.touched }

// HighWaterPages returns the maximum resident page count ever observed.
func (m *Memory) HighWaterPages() int { return m.highWater }

// find binary-searches the page table for page number pn. It returns the
// index holding pn and true, or the insertion index and false. A one-entry
// hint makes runs of accesses to the same page O(1).
func (m *Memory) find(pn uint64) (int, bool) {
	n := len(m.bases)
	if h := m.hint; h < n && m.bases[h] == pn {
		return h, true
	}
	lo, hi := 0, n
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if m.bases[mid] < pn {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < n && m.bases[lo] == pn {
		m.hint = lo
		return lo, true
	}
	return lo, false
}

// materialise inserts a zeroed page for pn at table index i (from a failed
// find) and returns its buffer.
func (m *Memory) materialise(pn uint64, i int) []byte {
	var buf []byte
	if n := len(m.free); n > 0 {
		buf = m.free[n-1]
		m.free[n-1] = nil
		m.free = m.free[:n-1]
		clear(buf)
	} else {
		buf = make([]byte, m.pageBytes)
	}
	m.bases = append(m.bases, 0)
	m.pages = append(m.pages, nil)
	copy(m.bases[i+1:], m.bases[i:])
	copy(m.pages[i+1:], m.pages[i:])
	m.bases[i] = pn
	m.pages[i] = buf
	m.hint = i
	m.touched++
	if len(m.bases) > m.highWater {
		m.highWater = len(m.bases)
	}
	return buf
}

// release removes table index i, parking its buffer on the free list.
func (m *Memory) release(i int) {
	buf := m.pages[i]
	copy(m.bases[i:], m.bases[i+1:])
	copy(m.pages[i:], m.pages[i+1:])
	last := len(m.bases) - 1
	m.pages[last] = nil
	m.bases = m.bases[:last]
	m.pages = m.pages[:last]
	if len(m.free) < maxFreePages {
		m.free = append(m.free, buf)
	}
	if m.hint > i {
		m.hint--
	}
}

func (m *Memory) checkSpan(addr uint64, n int) {
	if n < 0 {
		panic(fmt.Sprintf("pagedmem: negative span %d", n))
	}
	if uint64(n) > 0 && addr+uint64(n)-1 < addr {
		panic(fmt.Sprintf("pagedmem: span [%#x, +%d) wraps the address space", addr, n))
	}
}

// LoadInto fills out with the bytes at [addr, addr+len(out)), zero-filling
// any holes. It never allocates.
func (m *Memory) LoadInto(addr uint64, out []byte) {
	m.checkSpan(addr, len(out))
	for len(out) > 0 {
		pn := addr >> m.shift
		off := int(addr & m.offMask)
		n := m.pageBytes - off
		if n > len(out) {
			n = len(out)
		}
		if i, ok := m.find(pn); ok {
			copy(out[:n], m.pages[i][off:off+n])
		} else {
			clear(out[:n])
		}
		addr += uint64(n)
		out = out[n:]
	}
}

// StoreFrom writes data at [addr, addr+len(data)). Pages are materialised
// lazily: a store whose bytes for a hole page are all zero leaves the hole
// in place, so zero-writes over pristine memory cost nothing. Stores to
// already-materialised pages do not allocate.
func (m *Memory) StoreFrom(addr uint64, data []byte) {
	m.checkSpan(addr, len(data))
	for len(data) > 0 {
		pn := addr >> m.shift
		off := int(addr & m.offMask)
		n := m.pageBytes - off
		if n > len(data) {
			n = len(data)
		}
		i, ok := m.find(pn)
		if !ok {
			if allZero(data[:n]) {
				addr += uint64(n)
				data = data[n:]
				continue
			}
			m.materialise(pn, i)
		}
		copy(m.pages[i][off:off+n], data[:n])
		addr += uint64(n)
		data = data[n:]
	}
}

// ReadLineInto is LoadInto returning the buffer, the idiom the controller's
// line-oriented read paths use.
func (m *Memory) ReadLineInto(addr uint64, out []byte) []byte {
	m.LoadInto(addr, out)
	return out
}

// WriteLine is StoreFrom under the controller's line-write name.
func (m *Memory) WriteLine(addr uint64, data []byte) {
	m.StoreFrom(addr, data)
}

// ReleaseIfZero releases the page containing addr back to a hole if it is
// materialised and its content is all zero (scrub-verified-zero release).
// It reports whether a page was released.
func (m *Memory) ReleaseIfZero(addr uint64) bool {
	i, ok := m.find(addr >> m.shift)
	if !ok || !allZero(m.pages[i]) {
		return false
	}
	m.release(i)
	return true
}

// CompactZero scans the page table and releases every all-zero page,
// returning the number released. The scrubber calls it after a full
// verified pass so memory it only pattern-tested does not stay resident.
func (m *Memory) CompactZero() int {
	released := 0
	for i := 0; i < len(m.bases); {
		if allZero(m.pages[i]) {
			m.release(i)
			released++
		} else {
			i++
		}
	}
	return released
}

// ForEachPage calls fn for every materialised page in ascending page-number
// order with the page's base byte address and content. fn must not store or
// mutate data beyond the call, and must not call back into m.
func (m *Memory) ForEachPage(fn func(base uint64, data []byte)) {
	for i, pn := range m.bases {
		fn(pn<<m.shift, m.pages[i])
	}
}

// Reset drops every page (and the free list), returning the memory to the
// pristine all-holes state. Accounting restarts from zero.
func (m *Memory) Reset() {
	m.bases = nil
	m.pages = nil
	m.free = nil
	m.hint = 0
	m.touched = 0
	m.highWater = 0
}

// allZero reports whether b contains only zero bytes, eight bytes at a
// time (the page-release scan is on the scrub path).
func allZero(b []byte) bool {
	i := 0
	for ; i+8 <= len(b); i += 8 {
		if b[i]|b[i+1]|b[i+2]|b[i+3]|b[i+4]|b[i+5]|b[i+6]|b[i+7] != 0 {
			return false
		}
	}
	for ; i < len(b); i++ {
		if b[i] != 0 {
			return false
		}
	}
	return true
}

// sanityCheck verifies the sorted-table invariant; tests call it after
// mutation sequences.
func (m *Memory) sanityCheck() error {
	if len(m.bases) != len(m.pages) {
		return fmt.Errorf("pagedmem: %d bases but %d pages", len(m.bases), len(m.pages))
	}
	if !sort.SliceIsSorted(m.bases, func(i, j int) bool { return m.bases[i] < m.bases[j] }) {
		return fmt.Errorf("pagedmem: page table out of order")
	}
	for i := 1; i < len(m.bases); i++ {
		if m.bases[i] == m.bases[i-1] {
			return fmt.Errorf("pagedmem: duplicate page %#x", m.bases[i])
		}
	}
	for i, p := range m.pages {
		if len(p) != m.pageBytes {
			return fmt.Errorf("pagedmem: page %#x has %d bytes", m.bases[i], len(p))
		}
	}
	return nil
}
