package core

import (
	"fmt"
)

// This file owns the Fig. 4.1 codeword layouts.
//
// Relaxed line (one channel, 72 stored bytes, beat-major):
//
//	beat c (18 symbols) = codeword c = [ d[16c] .. d[16c+15] | chk0 chk1 ]
//
// Upgraded line pair (both channels, 72 stored bytes per channel):
//
//	codeword c (36 symbols) =
//	    [ X-data d[16c]..d[16c+15] | Y-data d[16c]..d[16c+15] | r0 r1 r2 r3 ]
//	channel X beat c stores symbols {0..15, 32, 33}
//	channel Y beat c stores symbols {16..31, 34, 35}
//
// so each stored symbol still maps to its own device in its own channel and
// a whole-device fault corrupts exactly one symbol of each codeword.
//
// Every encode/decode below runs against the controller's scratch (one ECC
// workspace per scheme, one codeword assembly buffer) and caller-owned
// stored/data buffers, so the steady-state data path never allocates.

// storedLineBytes is the per-channel stored size of one line: 4 beats x 18
// symbols (64 data bytes + 8 redundant bytes).
const storedLineBytes = codewordsPerLine * 18

// encodeRelaxedLineInto encodes 64 data bytes into the 72-byte stored
// format, written into out (length storedLineBytes).
func (c *Controller) encodeRelaxedLineInto(data, out []byte) {
	if len(data) != LineBytes {
		panic(fmt.Sprintf("core: relaxed encode with %d bytes, want %d", len(data), LineBytes))
	}
	if len(out) != storedLineBytes {
		panic(fmt.Sprintf("core: relaxed encode into %d bytes, want %d", len(out), storedLineBytes))
	}
	for cw := 0; cw < codewordsPerLine; cw++ {
		stored := out[cw*18 : (cw+1)*18]
		copy(stored, data[cw*dataPerCodeword:(cw+1)*dataPerCodeword])
		c.relaxed.EncodeInto(stored)
	}
}

// decodeRelaxedLineInto decodes a 72-byte stored line into the 64-byte data
// buffer, reporting the corrected symbol count. A detected uncorrectable
// pattern returns ErrUncorrectable with the raw (untrusted) data symbols
// copied through for the affected codewords.
//
// The stored line IS a flat batch — four beat-major codewords at stride
// 18 — so it decodes in place as one word-parallel batch (stored is the
// controller's read scratch, never live device state) and the data symbols
// copy straight out: corrected for repaired codewords, raw for DUEs.
func (c *Controller) decodeRelaxedLineInto(stored, data []byte) (corrected int, err error) {
	if len(stored) != storedLineBytes {
		panic(fmt.Sprintf("core: relaxed decode with %d bytes, want %d", len(stored), storedLineBytes))
	}
	corrected, derr := c.relaxed.DecodeBatchInto(stored, 18, codewordsPerLine, c.scr.relaxed)
	if derr != nil {
		err = ErrUncorrectable
	}
	for cw := 0; cw < codewordsPerLine; cw++ {
		copy(data[cw*dataPerCodeword:], stored[cw*18:cw*18+dataPerCodeword])
	}
	return corrected, err
}

// encodeUpgradedPairInto encodes 128 data bytes (sub-line X ++ sub-line Y)
// into the two 72-byte stored sub-line buffers. sparedPos is the codeword
// position remapped to the spare for sparing pages, or -1.
func (c *Controller) encodeUpgradedPairInto(data []byte, sparedPos int, storedX, storedY []byte) {
	if len(data) != 2*LineBytes {
		panic(fmt.Sprintf("core: upgraded encode with %d bytes, want %d", len(data), 2*LineBytes))
	}
	if len(storedX) != storedLineBytes || len(storedY) != storedLineBytes {
		panic("core: upgraded encode into wrong stored sizes")
	}
	full := c.scr.full[:36]
	for cw := 0; cw < codewordsPerLine; cw++ {
		copy(full[0:16], data[cw*16:cw*16+16])        // X half
		copy(full[16:32], data[64+cw*16:64+cw*16+16]) // Y half
		if c.sparing != nil {
			c.sparing.EncodeSparedInto(full, sparedPos)
		} else {
			c.upgraded.EncodeInto(full)
		}
		// Scatter: X gets symbols 0..15 and 32, 33; Y gets 16..31, 34, 35.
		copy(storedX[cw*18:], full[0:16])
		storedX[cw*18+16] = full[32]
		storedX[cw*18+17] = full[33]
		copy(storedY[cw*18:], full[16:32])
		storedY[cw*18+16] = full[34]
		storedY[cw*18+17] = full[35]
	}
}

// decodeUpgradedPairInto decodes the two stored sub-lines into the 128-byte
// data buffer, reporting the corrected symbol count.
//
// The four 36-symbol codewords are gathered into the controller's flat
// batch buffer (stride 36) and decoded together: the all-clean access —
// every read of a fault-free pair — never leaves the word-parallel
// syndrome sweep. After the in-place batch decode each good lane's first
// 32 symbols hold the recovered data (the sparing scheme un-remaps its
// spare in the batch call) and DUE lanes hold the raw gathered symbols, so
// one uniform scatter writes the data buffer either way.
func (c *Controller) decodeUpgradedPairInto(storedX, storedY []byte, sparedPos int, data []byte) (corrected int, err error) {
	if len(storedX) != storedLineBytes || len(storedY) != storedLineBytes {
		panic("core: upgraded decode with wrong stored sizes")
	}
	batch := c.scr.batch[:codewordsPerLine*36]
	for cw := 0; cw < codewordsPerLine; cw++ {
		full := batch[cw*36 : (cw+1)*36]
		copy(full[0:16], storedX[cw*18:cw*18+16])
		full[32] = storedX[cw*18+16]
		full[33] = storedX[cw*18+17]
		copy(full[16:32], storedY[cw*18:cw*18+16])
		full[34] = storedY[cw*18+16]
		full[35] = storedY[cw*18+17]
	}
	var derr error
	if c.sparing != nil {
		corrected, derr = c.sparing.DecodeSparedBatchInto(batch, 36, codewordsPerLine, sparedPos, c.scr.upgraded)
	} else {
		corrected, derr = c.upgraded.DecodeBatchInto(batch, 36, codewordsPerLine, c.scr.upgraded)
	}
	if derr != nil {
		err = ErrUncorrectable
	}
	for cw := 0; cw < codewordsPerLine; cw++ {
		full := batch[cw*36 : (cw+1)*36]
		copy(data[cw*16:], full[0:16])
		copy(data[64+cw*16:], full[16:32])
	}
	return corrected, err
}
