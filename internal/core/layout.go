package core

import "fmt"

// This file owns the Fig. 4.1 codeword layouts.
//
// Relaxed line (one channel, 72 stored bytes, beat-major):
//
//	beat c (18 symbols) = codeword c = [ d[16c] .. d[16c+15] | chk0 chk1 ]
//
// Upgraded line pair (both channels, 72 stored bytes per channel):
//
//	codeword c (36 symbols) =
//	    [ X-data d[16c]..d[16c+15] | Y-data d[16c]..d[16c+15] | r0 r1 r2 r3 ]
//	channel X beat c stores symbols {0..15, 32, 33}
//	channel Y beat c stores symbols {16..31, 34, 35}
//
// so each stored symbol still maps to its own device in its own channel and
// a whole-device fault corrupts exactly one symbol of each codeword.

// storedLineBytes is the per-channel stored size of one line: 4 beats x 18
// symbols (64 data bytes + 8 redundant bytes).
const storedLineBytes = codewordsPerLine * 18

// encodeRelaxedLine encodes 64 data bytes into the 72-byte stored format.
func (c *Controller) encodeRelaxedLine(data []byte) []byte {
	if len(data) != LineBytes {
		panic(fmt.Sprintf("core: relaxed encode with %d bytes, want %d", len(data), LineBytes))
	}
	out := make([]byte, storedLineBytes)
	for cw := 0; cw < codewordsPerLine; cw++ {
		copy(out[cw*18:], c.relaxed.Encode(data[cw*dataPerCodeword:(cw+1)*dataPerCodeword]))
	}
	return out
}

// decodeRelaxedLine decodes a 72-byte stored line into 64 data bytes,
// reporting corrected symbol count. A detected uncorrectable pattern returns
// ErrUncorrectable together with the raw (untrusted) data symbols.
func (c *Controller) decodeRelaxedLine(stored []byte) (data []byte, corrected int, err error) {
	if len(stored) != storedLineBytes {
		panic(fmt.Sprintf("core: relaxed decode with %d bytes, want %d", len(stored), storedLineBytes))
	}
	data = make([]byte, LineBytes)
	for cw := 0; cw < codewordsPerLine; cw++ {
		res, derr := c.relaxed.Decode(stored[cw*18 : (cw+1)*18])
		if derr != nil {
			err = ErrUncorrectable
			copy(data[cw*dataPerCodeword:], stored[cw*18:cw*18+dataPerCodeword])
			continue
		}
		corrected += len(res.Corrected)
		copy(data[cw*dataPerCodeword:], res.Data)
	}
	return data, corrected, err
}

// encodeUpgradedPair encodes 128 data bytes (sub-line X ++ sub-line Y) into
// the two 72-byte stored sub-lines. sparedPos is the codeword position
// remapped to the spare for sparing pages, or -1.
func (c *Controller) encodeUpgradedPair(data []byte, sparedPos int) (storedX, storedY []byte) {
	if len(data) != 2*LineBytes {
		panic(fmt.Sprintf("core: upgraded encode with %d bytes, want %d", len(data), 2*LineBytes))
	}
	storedX = make([]byte, storedLineBytes)
	storedY = make([]byte, storedLineBytes)
	payload := make([]byte, 32)
	for cw := 0; cw < codewordsPerLine; cw++ {
		copy(payload[0:16], data[cw*16:cw*16+16])        // X half
		copy(payload[16:32], data[64+cw*16:64+cw*16+16]) // Y half
		var full []byte
		if c.sparing != nil {
			full = c.sparing.EncodeSpared(payload, sparedPos)
		} else {
			full = c.upgraded.Encode(payload)
		}
		// Scatter: X gets symbols 0..15 and 32, 33; Y gets 16..31, 34, 35.
		copy(storedX[cw*18:], full[0:16])
		storedX[cw*18+16] = full[32]
		storedX[cw*18+17] = full[33]
		copy(storedY[cw*18:], full[16:32])
		storedY[cw*18+16] = full[34]
		storedY[cw*18+17] = full[35]
	}
	return storedX, storedY
}

// decodeUpgradedPair decodes the two stored sub-lines into 128 data bytes.
func (c *Controller) decodeUpgradedPair(storedX, storedY []byte, sparedPos int) (data []byte, corrected []int, err error) {
	if len(storedX) != storedLineBytes || len(storedY) != storedLineBytes {
		panic("core: upgraded decode with wrong stored sizes")
	}
	data = make([]byte, 2*LineBytes)
	full := make([]byte, 36)
	for cw := 0; cw < codewordsPerLine; cw++ {
		copy(full[0:16], storedX[cw*18:cw*18+16])
		full[32] = storedX[cw*18+16]
		full[33] = storedX[cw*18+17]
		copy(full[16:32], storedY[cw*18:cw*18+16])
		full[34] = storedY[cw*18+16]
		full[35] = storedY[cw*18+17]

		var res eccResult
		var derr error
		if c.sparing != nil {
			r, e := c.sparing.DecodeSpared(full, sparedPos)
			res, derr = eccResult{data: r.Data, corrected: r.Corrected}, e
		} else {
			r, e := c.upgraded.Decode(full)
			res, derr = eccResult{data: r.Data, corrected: r.Corrected}, e
		}
		if derr != nil {
			err = ErrUncorrectable
			copy(data[cw*16:], full[0:16])
			copy(data[64+cw*16:], full[16:32])
			continue
		}
		corrected = append(corrected, res.corrected...)
		copy(data[cw*16:], res.data[0:16])
		copy(data[64+cw*16:], res.data[16:32])
	}
	return data, corrected, err
}

type eccResult struct {
	data      []byte
	corrected []int
}
