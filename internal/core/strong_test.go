package core

import (
	"bytes"
	"math/rand"
	"testing"

	"arcc/internal/dram"
	"arcc/internal/pagetable"
)

func quadConfig() Config {
	return Config{Pages: 32, Channels: 4, RanksPerChannel: 2, BanksPerDevice: 8, RowsPerBank: 2}
}

func newQuadController(t *testing.T) *Controller {
	t.Helper()
	c := New(quadConfig())
	c.RelaxAll()
	return c
}

func TestFourChannelRelaxedRoundTrip(t *testing.T) {
	c := newQuadController(t)
	r := rand.New(rand.NewSource(1))
	for line := 0; line < LinesPerPage; line += 3 {
		want := randLine(r)
		if err := c.WriteLine(0, line, want); err != nil {
			t.Fatal(err)
		}
		got, err := c.ReadLine(0, line)
		if err != nil || !bytes.Equal(got, want) {
			t.Fatalf("line %d: err=%v", line, err)
		}
	}
}

func TestFourChannelUpgradeAndStrongUpgradePreserveData(t *testing.T) {
	c := newQuadController(t)
	r := rand.New(rand.NewSource(2))
	page := 5
	want := make([][]byte, LinesPerPage)
	for line := range want {
		want[line] = randLine(r)
		if err := c.WriteLine(page, line, want[line]); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.UpgradePage(page); err != nil {
		t.Fatal(err)
	}
	for line := range want {
		got, err := c.ReadLine(page, line)
		if err != nil || !bytes.Equal(got, want[line]) {
			t.Fatalf("after first upgrade, line %d: err=%v", line, err)
		}
	}
	if err := c.UpgradePageToStrong(page); err != nil {
		t.Fatal(err)
	}
	if c.PageMode(page) != pagetable.Upgraded8 {
		t.Fatal("mode not upgraded8")
	}
	if c.Stats().StrongUpgrades != 1 {
		t.Fatal("strong upgrade not counted")
	}
	for line := range want {
		got, err := c.ReadLine(page, line)
		if err != nil || !bytes.Equal(got, want[line]) {
			t.Fatalf("after strong upgrade, line %d: err=%v", line, err)
		}
	}
}

func TestUpgraded8CorrectsTwoDeviceFaultsInDifferentChannels(t *testing.T) {
	// The point of §5.1: after the second upgrade, a codeword tolerates
	// two simultaneous bad symbols — two whole-device faults in two
	// different channels — where the 4-check SCCDCD code could only
	// detect them.
	c := newQuadController(t)
	r := rand.New(rand.NewSource(3))
	page := 0
	want := make([][]byte, LinesPerPage)
	for line := range want {
		want[line] = randLine(r)
		if err := c.WriteLine(page, line, want[line]); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.UpgradePage(page); err != nil {
		t.Fatal(err)
	}
	if err := c.UpgradePageToStrong(page); err != nil {
		t.Fatal(err)
	}
	c.InjectFault(0, 0, dram.Fault{Device: 3, Scope: dram.ScopeDevice, Mode: dram.StuckAt1})
	c.InjectFault(2, 0, dram.Fault{Device: 9, Scope: dram.ScopeDevice, Mode: dram.StuckAt0})
	for line := 0; line < LinesPerPage; line += 5 {
		got, err := c.ReadLine(page, line)
		if err != nil {
			t.Fatalf("line %d: double-channel fault not corrected by 8-check mode: %v", line, err)
		}
		if !bytes.Equal(got, want[line]) {
			t.Fatalf("line %d: wrong correction", line)
		}
	}
}

func TestUpgraded8ReadCostsFourSubLines(t *testing.T) {
	c := newQuadController(t)
	if err := c.UpgradePage(0); err != nil {
		t.Fatal(err)
	}
	if err := c.UpgradePageToStrong(0); err != nil {
		t.Fatal(err)
	}
	before := c.Stats().SubLineAccesses
	if _, err := c.ReadLine(0, 0); err != nil {
		t.Fatal(err)
	}
	if got := c.Stats().SubLineAccesses - before; got != 4 {
		t.Fatalf("upgraded8 read made %d sub-line accesses, want 4", got)
	}
}

func TestWriteLineOnUpgraded8ReadModifyWrite(t *testing.T) {
	c := newQuadController(t)
	r := rand.New(rand.NewSource(4))
	page := 1
	quadLines := []int{8, 9, 10, 11} // quad 2
	want := make(map[int][]byte)
	for _, line := range quadLines {
		want[line] = randLine(r)
		if err := c.WriteLine(page, line, want[line]); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.UpgradePage(page); err != nil {
		t.Fatal(err)
	}
	if err := c.UpgradePageToStrong(page); err != nil {
		t.Fatal(err)
	}
	// Overwrite one quarter; the other three must survive.
	want[9] = randLine(r)
	if err := c.WriteLine(page, 9, want[9]); err != nil {
		t.Fatal(err)
	}
	for _, line := range quadLines {
		got, err := c.ReadLine(page, line)
		if err != nil || !bytes.Equal(got, want[line]) {
			t.Fatalf("line %d corrupted by partial quad write (err=%v)", line, err)
		}
	}
}

func TestWriteQuadAndReadQuad(t *testing.T) {
	c := newQuadController(t)
	if err := c.UpgradePage(2); err != nil {
		t.Fatal(err)
	}
	if err := c.UpgradePageToStrong(2); err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 4*LineBytes)
	rand.New(rand.NewSource(5)).Read(data)
	c.WriteQuad(2, 3, data)
	got, err := c.ReadQuad(2, 3)
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("quad round trip failed: %v", err)
	}
}

func TestStrongUpgradePanicsOnTwoChannelSystem(t *testing.T) {
	c := New(testConfig()) // 2 channels
	c.RelaxAll()
	if err := c.UpgradePage(0); err != nil {
		t.Fatal(err)
	}
	if c.SupportsStrongUpgrade() {
		t.Fatal("two-channel system claims strong-upgrade support")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("UpgradePageToStrong on 2-channel system did not panic")
		}
	}()
	_ = c.UpgradePageToStrong(0)
}

func TestStrongUpgradePanicsOnRelaxedPage(t *testing.T) {
	c := newQuadController(t)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	_ = c.UpgradePageToStrong(0) // page is relaxed, not upgraded
}

func TestNewPanicsOnOddChannelCount(t *testing.T) {
	cfg := testConfig()
	cfg.Channels = 3
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	New(cfg)
}

func TestFourChannelScrubPrimitivesCoverAllLines(t *testing.T) {
	// RawRead/RawWrite/CorrectLine must address all 64 lines across the
	// four channels without collisions.
	c := newQuadController(t)
	for line := 0; line < LinesPerPage; line++ {
		raw := bytes.Repeat([]byte{byte(line)}, storedLineBytes)
		c.RawWrite(7, line, raw)
	}
	for line := 0; line < LinesPerPage; line++ {
		got := c.RawRead(7, line)
		if got[0] != byte(line) {
			t.Fatalf("line %d raw data collided: got %#x", line, got[0])
		}
	}
}

func TestCorrectLineOnUpgraded8(t *testing.T) {
	c := newQuadController(t)
	r := rand.New(rand.NewSource(6))
	want := randLine(r)
	if err := c.WriteLine(0, 0, want); err != nil {
		t.Fatal(err)
	}
	if err := c.UpgradePage(0); err != nil {
		t.Fatal(err)
	}
	if err := c.UpgradePageToStrong(0); err != nil {
		t.Fatal(err)
	}
	c.InjectFault(1, 0, dram.Fault{Device: 2, Scope: dram.ScopeDevice, Mode: dram.WrongData})
	n, err := c.CorrectLine(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("CorrectLine found nothing behind a WrongData fault in upgraded8 mode")
	}
	got, err := c.ReadLine(0, 0)
	if err != nil || !bytes.Equal(got, want) {
		t.Fatalf("data wrong after upgraded8 CorrectLine (err=%v)", err)
	}
}
