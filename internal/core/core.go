// Package core implements the paper's contribution: the Adaptive
// Reliability Chipkill Correct (ARCC) memory controller.
//
// ARCC manages a multi-channel memory in which every 4 KB physical page
// operates in one of three modes (§4.1/Fig. 4.1, and §5.1):
//
//   - Relaxed: each 64 B line lives in one channel and is protected by four
//     (18, 16) codewords — 2 check symbols each, single symbol correct.
//     A line access touches 18 devices.
//   - Upgraded: two adjacent 64 B lines, one per channel, join into a single
//     128 B line protected by four 36-symbol codewords with 4 check symbols
//     each. Each codeword spans two channels, so a line access touches 36
//     devices but gains double-symbol detection (and with the sparing
//     scheme, second-fault correction).
//   - Upgraded8 (§5.1, 4-channel systems only): four 64 B lines join into a
//     256 B line protected by four 72-symbol codewords with 8 check symbols
//     striped across four channels — the second upgrade level for pages
//     that develop a second fault.
//
// The controller owns the data layout, the per-page mode flag (package
// pagetable), mode transitions (page upgrades re-read, re-encode, and write
// back every line of the page), and the scrub-facing raw access primitives
// the 4-step scrubber (package scrub) needs.
//
// Lines are interleaved across channels in the conventional way
// (SDRAM_HIPERF_MAP-style): line l of a page lives in channel l%C, slot
// l/C, so the sub-lines of an upgraded pair (or quad) sit at the same slot
// in adjacent channels and can be fetched in parallel.
package core

import (
	"errors"
	"fmt"

	"arcc/internal/dram"
	"arcc/internal/ecc"
	"arcc/internal/pagetable"
)

// LineBytes is the data payload of one memory line.
const LineBytes = 64

// LinesPerPage is the number of 64 B lines in a 4 KB page.
const LinesPerPage = 64

// codewordsPerLine is the number of codewords protecting one line (Fig 4.1:
// four codewords per line, one per DRAM beat).
const codewordsPerLine = 4

// dataPerCodeword is the number of data symbols each relaxed codeword
// carries (16 symbols x 4 codewords = 64 B line).
const dataPerCodeword = 16

// ErrUncorrectable is returned by ReadLine when the ECC detects an error
// pattern it cannot repair — a DUE. The data returned alongside it is the
// best-effort raw content and must not be trusted.
var ErrUncorrectable = errors.New("core: detectable uncorrectable error")

// UpgradeCode selects the code used for upgraded pages.
type UpgradeCode int

const (
	// UpgradeSCCDCD protects upgraded pages with the commercial 4-check
	// SCCDCD code (single correct, double detect).
	UpgradeSCCDCD UpgradeCode = iota
	// UpgradeSparing protects upgraded pages with double chip sparing
	// (3 check + spare; corrects a second fault after the first is spared).
	UpgradeSparing
)

// Config sizes the ARCC memory.
type Config struct {
	// Pages is the number of 4 KB physical pages.
	Pages int
	// Channels is the number of memory channels: 2 (the evaluated
	// configuration) or 4 (enables the §5.1 Upgraded8 mode). Zero means 2.
	Channels int
	// RanksPerChannel is the number of ranks in each channel (Table 7.1:
	// two for the ARCC configuration).
	RanksPerChannel int
	// BanksPerDevice and RowsPerBank shape each rank; ColsPerRow is derived
	// from the page mapping (two pages per row).
	BanksPerDevice int
	RowsPerBank    int
	// Upgrade selects the upgraded-mode code. Zero value is SCCDCD.
	Upgrade UpgradeCode
}

// pagesPerRow: the paper assumes two 4 KB pages per DRAM row.
const pagesPerRow = 2

// Controller is the ARCC memory controller.
type Controller struct {
	cfg          Config
	numChannels  int
	slotsPerPage int // line slots each channel holds per page
	channels     [][]*dram.Rank
	table        *pagetable.Table
	relaxed      ecc.Scheme
	upgraded     ecc.Scheme
	eight        ecc.Scheme             // §5.1 second-level code (4-channel systems)
	sparing      *ecc.DoubleChipSparing // non-nil iff cfg.Upgrade == UpgradeSparing

	// sparedPos[page] is the codeword position remapped to the spare for
	// sparing-mode upgraded pages; pages absent from the map have no spare
	// remap. Sparse (only spared pages are present) so a terabyte-scale
	// controller costs nothing for its healthy pages; map reads are
	// allocation-free, which keeps the upgraded access path zero-alloc.
	sparedPos map[int]int32

	// scr is the controller's decode/line workspace: one ECC scratch per
	// scheme plus the stored-line, codeword-assembly, payload, and
	// whole-page buffers every access and mode transition reuses. It makes
	// the steady-state read/write/scrub/upgrade paths allocation-free. A
	// controller therefore serves one operation at a time (it was never
	// concurrency-safe: it has stats).
	scr ctrlScratch

	stats Stats
}

// ctrlScratch holds the controller's reusable working buffers.
type ctrlScratch struct {
	relaxed  *ecc.Scratch
	upgraded *ecc.Scratch
	eight    *ecc.Scratch
	stored   [4][]byte // per-channel stored sub-lines, storedLineBytes each
	full     []byte    // widest codeword assembly buffer (72 symbols)
	batch    []byte    // flat codeword batch for the read path (4 x 72 symbols)
	data     []byte    // widest decoded payload (a 256 B quad)
	page     []byte    // whole-page payload for mode transitions (4 KB)
	posHits  [32]int   // per-position correction counts during UpgradePage
}

// Stats counts controller activity.
type Stats struct {
	Reads           int64 // line reads served
	Writes          int64 // line writes served
	SubLineAccesses int64 // 64 B channel accesses performed (2 per upgraded line, 4 per upgraded8 line)
	Corrected       int64 // codewords repaired on the fly
	DUEs            int64 // detected uncorrectable codewords
	PageUpgrades    int64 // relaxed -> upgraded transitions
	StrongUpgrades  int64 // upgraded -> upgraded8 transitions
}

// New builds a controller with all pages in Upgraded mode (the boot state);
// call RelaxAll or run a scrub to drop fault-free pages to relaxed mode.
func New(cfg Config) *Controller {
	if cfg.Channels == 0 {
		cfg.Channels = 2
	}
	if cfg.Channels != 2 && cfg.Channels != 4 {
		panic(fmt.Sprintf("core: unsupported channel count %d (want 2 or 4)", cfg.Channels))
	}
	if cfg.Pages <= 0 || cfg.RanksPerChannel <= 0 || cfg.BanksPerDevice <= 0 || cfg.RowsPerBank <= 0 {
		panic(fmt.Sprintf("core: invalid config %+v", cfg))
	}
	pagesPerRank := cfg.BanksPerDevice * cfg.RowsPerBank * pagesPerRow
	if cfg.Pages > pagesPerRank*cfg.RanksPerChannel {
		panic(fmt.Sprintf("core: %d pages exceed capacity %d", cfg.Pages, pagesPerRank*cfg.RanksPerChannel))
	}
	slots := LinesPerPage / cfg.Channels
	geom := dram.Geometry{
		DevicesPerRank: 18,
		BanksPerDevice: cfg.BanksPerDevice,
		RowsPerBank:    cfg.RowsPerBank,
		ColsPerRow:     pagesPerRow * slots,
		BeatsPerLine:   codewordsPerLine,
	}
	c := &Controller{
		cfg:          cfg,
		numChannels:  cfg.Channels,
		slotsPerPage: slots,
		table:        pagetable.New(cfg.Pages),
		relaxed:      ecc.NewRelaxed(),
		eight:        ecc.NewEightCheck(),
		sparedPos:    make(map[int]int32),
	}
	switch cfg.Upgrade {
	case UpgradeSCCDCD:
		c.upgraded = ecc.NewSCCDCD()
	case UpgradeSparing:
		s := ecc.NewDoubleChipSparing()
		c.upgraded = s
		c.sparing = s
	default:
		panic(fmt.Sprintf("core: unknown upgrade code %d", cfg.Upgrade))
	}
	c.channels = make([][]*dram.Rank, cfg.Channels)
	for ch := range c.channels {
		ranks := make([]*dram.Rank, cfg.RanksPerChannel)
		for r := range ranks {
			ranks[r] = dram.NewRank(geom)
		}
		c.channels[ch] = ranks
	}
	c.scr.relaxed = c.relaxed.NewScratch()
	c.scr.upgraded = c.upgraded.NewScratch()
	c.scr.eight = c.eight.NewScratch()
	for i := range c.scr.stored {
		c.scr.stored[i] = make([]byte, storedLineBytes)
	}
	c.scr.full = make([]byte, 72)
	c.scr.batch = make([]byte, codewordsPerLine*72)
	c.scr.data = make([]byte, 4*LineBytes)
	c.scr.page = make([]byte, LinesPerPage*LineBytes)
	return c
}

// Pages returns the number of physical pages.
func (c *Controller) Pages() int { return c.cfg.Pages }

// Channels returns the channel count (2 or 4).
func (c *Controller) Channels() int { return c.numChannels }

// SupportsStrongUpgrade reports whether the §5.1 Upgraded8 mode is
// available (it needs four channels to stripe eight check symbols).
func (c *Controller) SupportsStrongUpgrade() bool { return c.numChannels == 4 }

// Table exposes the page table (read-mostly; the scrubber drives upgrades
// through the controller, not by flipping flags directly).
func (c *Controller) Table() *pagetable.Table { return c.table }

// Stats returns a snapshot of the activity counters.
func (c *Controller) Stats() Stats { return c.stats }

// PageMode returns the current mode of page.
func (c *Controller) PageMode(page int) pagetable.Mode { return c.table.Mode(page) }

// Rank returns the rank serving (channel, rank index) for fault injection.
func (c *Controller) Rank(channel, rank int) *dram.Rank {
	if channel < 0 || channel >= c.numChannels {
		panic(fmt.Sprintf("core: channel %d out of range", channel))
	}
	return c.channels[channel][rank]
}

// InjectFault injects a device-level fault into (channel, rank). Lane
// faults (which affect every rank behind the channel) are modeled by
// injecting the same device fault into all ranks of the channel.
func (c *Controller) InjectFault(channel, rank int, f dram.Fault) {
	c.Rank(channel, rank).InjectFault(f)
}

// ResidentPages sums the materialised backing-store pages of every rank —
// the controller's host-memory footprint in 4 KB units, proportional to
// the lines actually written rather than the addressable capacity.
func (c *Controller) ResidentPages() int {
	n := 0
	for _, ranks := range c.channels {
		for _, r := range ranks {
			n += r.ResidentPages()
		}
	}
	return n
}

// ResidentBytes sums the host memory held by every rank's backing store.
func (c *Controller) ResidentBytes() int64 {
	var n int64
	for _, ranks := range c.channels {
		for _, r := range ranks {
			n += r.ResidentBytes()
		}
	}
	return n
}

// CompactZeroStorage releases every backing-store page whose content has
// returned to all zero (scrub-verified-zero release) and returns the
// number of pages released. The scrubber calls it after each full pass so
// pattern-tested-but-untouched memory does not stay resident.
func (c *Controller) CompactZeroStorage() int {
	n := 0
	for _, ranks := range c.channels {
		for _, r := range ranks {
			n += r.CompactZero()
		}
	}
	return n
}

// RelaxAllPristine performs the boot-time relax of a *pristine* memory in
// O(1): every code in use is linear, so the all-zero payload encodes to
// the all-zero codeword under every mode — never-touched (hole) lines are
// simultaneously valid in relaxed, upgraded, and upgraded8 form, and no
// re-encode pass is needed. This is what makes booting a terabyte-scale
// controller feasible; a memory that has been written must go through
// RelaxAll or a scrub instead, and RelaxAllPristine panics if any storage
// is resident after zero-compaction.
func (c *Controller) RelaxAllPristine() {
	c.CompactZeroStorage()
	if n := c.ResidentPages(); n > 0 {
		panic(fmt.Sprintf("core: RelaxAllPristine on a written memory (%d resident pages); use RelaxAll or a scrub", n))
	}
	c.table.RelaxAll()
	clear(c.sparedPos)
}

// addrOf maps (page, slot) to the rank index and in-rank address for one
// channel. Pages are block-distributed across ranks, interleaved across
// banks within a rank, and packed two pages per row — the mapping that
// yields Table 7.4's upgrade spans (device fault -> whole rank, bank fault
// -> 1/8 of the rank, column fault -> half a bank).
func (c *Controller) addrOf(page, slot int) (rank int, a dram.Addr) {
	if page < 0 || page >= c.cfg.Pages {
		panic(fmt.Sprintf("core: page %d out of range", page))
	}
	if slot < 0 || slot >= c.slotsPerPage {
		panic(fmt.Sprintf("core: slot %d out of range", slot))
	}
	pagesPerRank := c.cfg.BanksPerDevice * c.cfg.RowsPerBank * pagesPerRow
	rank = page / pagesPerRank
	p := page % pagesPerRank
	bank := p % c.cfg.BanksPerDevice
	rowPage := p / c.cfg.BanksPerDevice
	row := rowPage / pagesPerRow
	half := rowPage % pagesPerRow
	return rank, dram.Addr{Bank: bank, Row: row, Col: half*c.slotsPerPage + slot}
}

// channelOf maps a line index within its page to (channel, slot).
func (c *Controller) channelOf(line int) (channel, slot int) {
	if line < 0 || line >= LinesPerPage {
		panic(fmt.Sprintf("core: line %d out of range", line))
	}
	return line % c.numChannels, line / c.numChannels
}
