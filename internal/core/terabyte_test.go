package core

import (
	"bytes"
	"testing"

	"arcc/internal/pagetable"
)

// terabyteConfig spans 2^28 4 KB pages = 1 TiB of data space: 2 channels x
// 2 ranks, 32 banks, 2^21 rows, two pages per row. Before the sparse
// rebase (dense per-page mode array + dense sparedPos + map-of-lines
// store) merely constructing this controller cost gigabytes; now
// construction is O(1) in the page count and residency tracks the touched
// footprint.
func terabyteConfig() Config {
	return Config{
		Pages:           1 << 28,
		Channels:        2,
		RanksPerChannel: 2,
		BanksPerDevice:  32,
		RowsPerBank:     1 << 21,
	}
}

func TestTerabyteControllerResidencyProportionalToTouch(t *testing.T) {
	c := New(terabyteConfig())
	if got := c.Pages(); got != 1<<28 {
		t.Fatalf("Pages() = %d, want %d", got, 1<<28)
	}

	// O(1) boot relax of the pristine memory: holes are valid in every
	// mode because all codes are linear (zero encodes to zero).
	c.RelaxAllPristine()
	if got := c.Table().Count(pagetable.Relaxed); got != 1<<28 {
		t.Fatalf("relaxed pages = %d, want all %d", got, 1<<28)
	}

	// Touch a scattered set of pages across the whole terabyte.
	data := make([]byte, LineBytes)
	for i := range data {
		data[i] = byte(i + 3)
	}
	const touched = 200
	stride := (1 << 28) / touched
	for i := 0; i < touched; i++ {
		page := i*stride + (i*i)%stride // scattered, covers all ranks
		if err := c.WriteLine(page, i%LinesPerPage, data); err != nil {
			t.Fatalf("WriteLine(page %d): %v", page, err)
		}
	}

	// Residency must be proportional to the touched pages, nowhere near
	// the 2^28-page address space. Each written 72-byte stored line spans
	// at most 2 backing pages per channel touched.
	if rp := c.ResidentPages(); rp == 0 || rp > 4*touched {
		t.Fatalf("ResidentPages = %d after touching %d pages, want (0, %d]", rp, touched, 4*touched)
	}
	if rb := c.ResidentBytes(); rb > int64(4*touched*4096) {
		t.Fatalf("ResidentBytes = %d, want <= %d", rb, 4*touched*4096)
	}

	// Read everything back — touched lines decode to the written data,
	// untouched lines anywhere in the terabyte read as zero.
	got := make([]byte, LineBytes)
	for i := 0; i < touched; i++ {
		page := i*stride + (i*i)%stride
		if err := c.ReadLineInto(page, i%LinesPerPage, got); err != nil {
			t.Fatalf("ReadLineInto(page %d): %v", page, err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("page %d read-back mismatch", page)
		}
	}
	zero := make([]byte, LineBytes)
	for _, page := range []int{1, 1 << 20, 1<<28 - 1} {
		if err := c.ReadLineInto(page, 63, got); err != nil {
			t.Fatalf("ReadLineInto(untouched page %d): %v", page, err)
		}
		if !bytes.Equal(got, zero) {
			t.Fatalf("untouched page %d reads non-zero", page)
		}
	}

	// Upgrading a touched page keeps working at this scale, and the
	// sparse spared-position table stays proportional to upgrades.
	if err := c.UpgradePage(0); err != nil {
		t.Fatalf("UpgradePage(0): %v", err)
	}
	if c.PageMode(0) != pagetable.Upgraded {
		t.Fatalf("page 0 mode = %v after upgrade", c.PageMode(0))
	}
	if exc := c.Table().Exceptions(); exc != 1 {
		t.Fatalf("page-table exceptions = %d after one upgrade, want 1", exc)
	}

	// Zeroing the touched lines and compacting returns the controller to
	// (near-)pristine residency.
	for i := 0; i < touched; i++ {
		page := i*stride + (i*i)%stride
		if err := c.WriteLine(page, i%LinesPerPage, zero); err != nil {
			t.Fatalf("WriteLine(zero, page %d): %v", page, err)
		}
	}
	c.CompactZeroStorage()
	if rp := c.ResidentPages(); rp != 0 {
		t.Fatalf("ResidentPages = %d after zeroing + compaction, want 0", rp)
	}
}

func TestRelaxAllPristineRejectsWrittenMemory(t *testing.T) {
	c := New(Config{Pages: 64, RanksPerChannel: 1, BanksPerDevice: 8, RowsPerBank: 8})
	data := make([]byte, LineBytes)
	data[0] = 1
	if err := c.WriteLine(0, 0, data); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("RelaxAllPristine on a written memory did not panic")
		}
	}()
	c.RelaxAllPristine()
}

// TestRelaxAllPristineMatchesRelaxAll proves the O(1) pristine relax is
// observationally identical to the O(pages) re-encode relax on a pristine
// memory: same modes, same subsequent read/write behaviour.
func TestRelaxAllPristineMatchesRelaxAll(t *testing.T) {
	cfg := Config{Pages: 32, RanksPerChannel: 1, BanksPerDevice: 8, RowsPerBank: 4}
	fast := New(cfg)
	slow := New(cfg)
	fast.RelaxAllPristine()
	slow.RelaxAll()

	data := make([]byte, LineBytes)
	for i := range data {
		data[i] = byte(i * 7)
	}
	gotF := make([]byte, LineBytes)
	gotS := make([]byte, LineBytes)
	for page := 0; page < cfg.Pages; page++ {
		if fast.PageMode(page) != slow.PageMode(page) {
			t.Fatalf("page %d: mode %v vs %v", page, fast.PageMode(page), slow.PageMode(page))
		}
		line := page % LinesPerPage
		if err := fast.WriteLine(page, line, data); err != nil {
			t.Fatal(err)
		}
		if err := slow.WriteLine(page, line, data); err != nil {
			t.Fatal(err)
		}
		if err := fast.ReadLineInto(page, line, gotF); err != nil {
			t.Fatal(err)
		}
		if err := slow.ReadLineInto(page, line, gotS); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(gotF, gotS) || !bytes.Equal(gotF, data) {
			t.Fatalf("page %d: divergent read-back", page)
		}
		// The raw stored form must agree too.
		rawF := fast.RawRead(page, line)
		rawS := slow.RawRead(page, line)
		if !bytes.Equal(rawF, rawS) {
			t.Fatalf("page %d: divergent stored form", page)
		}
	}
}
