package core

import (
	"fmt"

	"arcc/internal/pagetable"
)

// UpgradePage raises page from relaxed to upgraded mode (§4.2.1): every
// line of the page is read out (correcting errors on the way), adjacent
// line pairs are joined into 128 B upgraded lines, and the page is written
// back in the stronger layout. Only this page is touched.
//
// When the upgraded code is double chip sparing and the relaxed reads
// corrected a consistent symbol position (a dead device), that position is
// remapped to the spare so a *second* device fault remains correctable.
//
// A DUE while reading the relaxed content is propagated; the page is still
// upgraded (with the raw content), which matches a controller that must not
// lose the upgrade just because one word was unrecoverable, but the caller
// is told data was lost.
func (c *Controller) UpgradePage(page int) error {
	if c.table.Mode(page) != pagetable.Relaxed {
		panic(fmt.Sprintf("core: UpgradePage on %v page %d", c.table.Mode(page), page))
	}

	// Read out all 64 lines in relaxed form, tracking corrected positions.
	var readErr error
	positionHits := make(map[int]int)
	lines := make([][]byte, LinesPerPage)
	for line := 0; line < LinesPerPage; line++ {
		ch, slot := c.channelOf(line)
		rank, addr := c.addrOf(page, slot)
		c.stats.SubLineAccesses++
		stored := c.channels[ch][rank].ReadLine(addr)
		data, corrected, err := c.decodeRelaxedLine(stored)
		if err != nil {
			readErr = err
			c.stats.DUEs++
		}
		c.stats.Corrected += int64(corrected)
		if corrected > 0 {
			// Identify which codeword positions were repaired so sparing
			// can remap a consistently-failing device. In the upgraded
			// codeword, data from an even channel occupies positions
			// 0..15 and from an odd channel 16..31.
			for cw := 0; cw < codewordsPerLine; cw++ {
				res, derr := c.relaxed.Decode(stored[cw*18 : (cw+1)*18])
				if derr != nil {
					continue
				}
				for _, pos := range res.Corrected {
					if pos < 16 {
						if ch%2 == 0 {
							positionHits[pos]++
						} else {
							positionHits[16+pos]++
						}
					}
				}
			}
		}
		lines[line] = data
	}

	// Choose a spare remap target: the most frequently corrected data
	// position, if the sparing scheme is in use.
	spared := -1
	if c.sparing != nil {
		best := 0
		for pos, n := range positionHits {
			if n > best {
				best, spared = n, pos
			}
		}
		if spared >= 0 {
			c.sparedPos[page] = spared
		}
	}

	// Flip the mode first so writePairStored encodes in upgraded form.
	c.table.SetMode(page, pagetable.Upgraded)
	c.stats.PageUpgrades++

	pairData := make([]byte, 2*LineBytes)
	for pair := 0; pair < LinesPerPage/2; pair++ {
		copy(pairData[:LineBytes], lines[2*pair])
		copy(pairData[LineBytes:], lines[2*pair+1])
		c.writePairStored(page, pair, pairData)
	}
	return readErr
}

// RelaxPage drops page from upgraded to relaxed mode — the boot-time scrub
// applies this to every fault-free page. The page content is decoded in
// upgraded form and re-encoded per-line in relaxed form.
func (c *Controller) RelaxPage(page int) error {
	if c.table.Mode(page) != pagetable.Upgraded {
		panic(fmt.Sprintf("core: RelaxPage on %v page %d", c.table.Mode(page), page))
	}
	var readErr error
	pairs := make([][]byte, LinesPerPage/2)
	for pair := range pairs {
		data, err := c.ReadPair(page, pair)
		if err != nil {
			readErr = err
		}
		pairs[pair] = data
	}
	c.table.SetMode(page, pagetable.Relaxed)
	delete(c.sparedPos, page)
	for pair, data := range pairs {
		for half := 0; half < 2; half++ {
			line := 2*pair + half
			ch, slot := c.channelOf(line)
			rank, addr := c.addrOf(page, slot)
			c.stats.SubLineAccesses++
			c.channels[ch][rank].WriteLine(addr, c.encodeRelaxedLine(data[half*LineBytes:(half+1)*LineBytes]))
		}
	}
	return readErr
}

// RelaxAll drops every upgraded page to relaxed mode. It is the bulk form
// of the boot sequence: start upgraded, populate, then relax everything the
// first scrub finds fault-free. Returns the count of pages relaxed.
func (c *Controller) RelaxAll() int {
	n := 0
	for page := 0; page < c.cfg.Pages; page++ {
		if c.table.Mode(page) == pagetable.Upgraded {
			if err := c.RelaxPage(page); err == nil {
				n++
			}
		}
	}
	return n
}
