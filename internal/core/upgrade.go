package core

import (
	"fmt"

	"arcc/internal/pagetable"
)

// UpgradePage raises page from relaxed to upgraded mode (§4.2.1): every
// line of the page is read out (correcting errors on the way), adjacent
// line pairs are joined into 128 B upgraded lines, and the page is written
// back in the stronger layout. Only this page is touched. The page payload
// is staged in the controller's whole-page scratch, so the transition does
// not allocate.
//
// When the upgraded code is double chip sparing and the relaxed reads
// corrected a consistent symbol position (a dead device), that position is
// remapped to the spare so a *second* device fault remains correctable.
//
// A DUE while reading the relaxed content is propagated; the page is still
// upgraded (with the raw content), which matches a controller that must not
// lose the upgrade just because one word was unrecoverable, but the caller
// is told data was lost.
func (c *Controller) UpgradePage(page int) error {
	if c.table.Mode(page) != pagetable.Relaxed {
		panic(fmt.Sprintf("core: UpgradePage on %v page %d", c.table.Mode(page), page))
	}

	// Read out all 64 lines in relaxed form, tracking corrected positions:
	// positionHits identifies which upgraded-codeword positions were
	// repaired so sparing can remap a consistently-failing device. Data
	// from an even channel occupies positions 0..15 of the upgraded
	// codeword, from an odd channel 16..31.
	var readErr error
	positionHits := &c.scr.posHits
	clear(positionHits[:])
	pageData := c.scr.page
	for line := 0; line < LinesPerPage; line++ {
		ch, slot := c.channelOf(line)
		rank, addr := c.addrOf(page, slot)
		c.stats.SubLineAccesses++
		stored := c.channels[ch][rank].ReadLineInto(addr, c.scr.stored[0])
		data := pageData[line*LineBytes : (line+1)*LineBytes]
		lineDUE := false
		for cw := 0; cw < codewordsPerLine; cw++ {
			res, derr := c.relaxed.DecodeInto(stored[cw*18:(cw+1)*18], c.scr.relaxed)
			if derr != nil {
				lineDUE = true
				copy(data[cw*dataPerCodeword:], stored[cw*18:cw*18+dataPerCodeword])
				continue
			}
			c.stats.Corrected += int64(len(res.Corrected))
			copy(data[cw*dataPerCodeword:], res.Data)
			for _, pos := range res.Corrected {
				if pos < 16 {
					if ch%2 == 0 {
						positionHits[pos]++
					} else {
						positionHits[16+pos]++
					}
				}
			}
		}
		if lineDUE {
			readErr = ErrUncorrectable
			c.stats.DUEs++
		}
	}

	// Choose a spare remap target: the most frequently corrected data
	// position, if the sparing scheme is in use.
	if c.sparing != nil {
		best := 0
		spared := -1
		for pos, n := range positionHits {
			if n > best {
				best, spared = n, pos
			}
		}
		if spared >= 0 {
			c.sparedPos[page] = int32(spared)
		}
	}

	// Flip the mode first so writePairStored encodes in upgraded form.
	c.table.SetMode(page, pagetable.Upgraded)
	c.stats.PageUpgrades++

	for pair := 0; pair < LinesPerPage/2; pair++ {
		c.writePairStored(page, pair, pageData[pair*2*LineBytes:(pair+1)*2*LineBytes])
	}
	return readErr
}

// RelaxPage drops page from upgraded to relaxed mode — the boot-time scrub
// applies this to every fault-free page. The page content is decoded in
// upgraded form and re-encoded per-line in relaxed form, staged in the
// controller's whole-page scratch.
func (c *Controller) RelaxPage(page int) error {
	if c.table.Mode(page) != pagetable.Upgraded {
		panic(fmt.Sprintf("core: RelaxPage on %v page %d", c.table.Mode(page), page))
	}
	var readErr error
	pageData := c.scr.page
	for pair := 0; pair < LinesPerPage/2; pair++ {
		if err := c.readPairInto(page, pair, pageData[pair*2*LineBytes:(pair+1)*2*LineBytes]); err != nil {
			readErr = err
		}
	}
	c.table.SetMode(page, pagetable.Relaxed)
	delete(c.sparedPos, page)
	for line := 0; line < LinesPerPage; line++ {
		ch, slot := c.channelOf(line)
		rank, addr := c.addrOf(page, slot)
		c.stats.SubLineAccesses++
		c.encodeRelaxedLineInto(pageData[line*LineBytes:(line+1)*LineBytes], c.scr.stored[0])
		c.channels[ch][rank].WriteLine(addr, c.scr.stored[0])
	}
	return readErr
}

// RelaxAll drops every upgraded page to relaxed mode. It is the bulk form
// of the boot sequence: start upgraded, populate, then relax everything the
// first scrub finds fault-free. Returns the count of pages relaxed.
func (c *Controller) RelaxAll() int {
	n := 0
	for page := 0; page < c.cfg.Pages; page++ {
		if c.table.Mode(page) == pagetable.Upgraded {
			if err := c.RelaxPage(page); err == nil {
				n++
			}
		}
	}
	return n
}
