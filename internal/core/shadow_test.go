package core

import (
	"bytes"
	"math/rand"
	"testing"

	"arcc/internal/pagetable"
)

// TestShadowModelRandomOperations drives the controller with thousands of
// random operations (writes, reads, pair writes, upgrades, relaxations,
// strong upgrades) against a simple map-based shadow model. With no faults
// injected, every read must return exactly what the shadow holds and never
// report an error, across every mode transition.
func TestShadowModelRandomOperations(t *testing.T) {
	for _, channels := range []int{2, 4} {
		channels := channels
		t.Run(map[int]string{2: "two-channel", 4: "four-channel"}[channels], func(t *testing.T) {
			cfg := Config{Pages: 16, Channels: channels, RanksPerChannel: 2, BanksPerDevice: 4, RowsPerBank: 2}
			if rand.New(rand.NewSource(int64(channels))).Intn(2) == 0 {
				cfg.Upgrade = UpgradeSparing
			}
			c := New(cfg)
			c.RelaxAll()
			rng := rand.New(rand.NewSource(42))

			shadow := make(map[[2]int][]byte) // (page, line) -> 64 B
			readShadow := func(page, line int) []byte {
				if d, ok := shadow[[2]int{page, line}]; ok {
					return d
				}
				return make([]byte, LineBytes)
			}

			for op := 0; op < 4000; op++ {
				page := rng.Intn(cfg.Pages)
				line := rng.Intn(LinesPerPage)
				switch rng.Intn(10) {
				case 0, 1, 2, 3: // write line
					data := make([]byte, LineBytes)
					rng.Read(data)
					if err := c.WriteLine(page, line, data); err != nil {
						t.Fatalf("op %d: write: %v", op, err)
					}
					shadow[[2]int{page, line}] = data
				case 4, 5, 6, 7: // read line
					got, err := c.ReadLine(page, line)
					if err != nil {
						t.Fatalf("op %d: read: %v", op, err)
					}
					if !bytes.Equal(got, readShadow(page, line)) {
						t.Fatalf("op %d: page %d line %d diverged from shadow (mode %v)",
							op, page, line, c.PageMode(page))
					}
				case 8: // mode transition up
					switch c.PageMode(page) {
					case pagetable.Relaxed:
						if err := c.UpgradePage(page); err != nil {
							t.Fatalf("op %d: upgrade: %v", op, err)
						}
					case pagetable.Upgraded:
						if c.SupportsStrongUpgrade() {
							if err := c.UpgradePageToStrong(page); err != nil {
								t.Fatalf("op %d: strong upgrade: %v", op, err)
							}
						}
					}
				case 9: // pair write or relax
					if c.PageMode(page) == pagetable.Upgraded {
						if rng.Intn(2) == 0 {
							pair := rng.Intn(LinesPerPage / 2)
							data := make([]byte, 2*LineBytes)
							rng.Read(data)
							c.WritePair(page, pair, data)
							shadow[[2]int{page, 2 * pair}] = data[:LineBytes:LineBytes]
							shadow[[2]int{page, 2*pair + 1}] = data[LineBytes:]
						} else {
							if err := c.RelaxPage(page); err != nil {
								t.Fatalf("op %d: relax: %v", op, err)
							}
						}
					}
				}
			}

			// Final sweep: every line in every page agrees with the shadow.
			for page := 0; page < cfg.Pages; page++ {
				for line := 0; line < LinesPerPage; line++ {
					got, err := c.ReadLine(page, line)
					if err != nil {
						t.Fatalf("final sweep: page %d line %d: %v", page, line, err)
					}
					if !bytes.Equal(got, readShadow(page, line)) {
						t.Fatalf("final sweep: page %d line %d diverged (mode %v)",
							page, line, c.PageMode(page))
					}
				}
			}
			if c.Stats().DUEs != 0 || c.Stats().Corrected != 0 {
				t.Fatalf("fault-free run produced corrections (%d) or DUEs (%d)",
					c.Stats().Corrected, c.Stats().DUEs)
			}
		})
	}
}
