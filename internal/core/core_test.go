package core

import (
	"bytes"
	"math/rand"
	"testing"

	"arcc/internal/dram"
	"arcc/internal/pagetable"
)

func testConfig() Config {
	return Config{Pages: 64, RanksPerChannel: 2, BanksPerDevice: 8, RowsPerBank: 4}
}

func newRelaxedController(t *testing.T) *Controller {
	t.Helper()
	c := New(testConfig())
	c.RelaxAll()
	if c.Table().Count(pagetable.Relaxed) != c.Pages() {
		t.Fatal("RelaxAll did not relax all pages")
	}
	return c
}

func randLine(r *rand.Rand) []byte {
	b := make([]byte, LineBytes)
	r.Read(b)
	return b
}

func TestNewPanicsOnBadConfig(t *testing.T) {
	for _, cfg := range []Config{
		{},
		{Pages: -1, RanksPerChannel: 1, BanksPerDevice: 1, RowsPerBank: 1},
		{Pages: 10000, RanksPerChannel: 1, BanksPerDevice: 2, RowsPerBank: 2}, // exceeds capacity
		{Pages: 1, RanksPerChannel: 1, BanksPerDevice: 1, RowsPerBank: 1, Upgrade: UpgradeCode(9)},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%+v) did not panic", cfg)
				}
			}()
			New(cfg)
		}()
	}
}

func TestBootStateIsUpgraded(t *testing.T) {
	c := New(testConfig())
	if c.PageMode(0) != pagetable.Upgraded {
		t.Fatal("pages must boot in upgraded mode")
	}
	// Zero-filled memory decodes cleanly in upgraded mode.
	data, err := c.ReadLine(0, 0)
	if err != nil {
		t.Fatalf("reading boot memory: %v", err)
	}
	for _, b := range data {
		if b != 0 {
			t.Fatal("boot memory not zero")
		}
	}
}

func TestRelaxedRoundTrip(t *testing.T) {
	c := newRelaxedController(t)
	r := rand.New(rand.NewSource(1))
	for page := 0; page < c.Pages(); page += 7 {
		for line := 0; line < LinesPerPage; line += 5 {
			want := randLine(r)
			if err := c.WriteLine(page, line, want); err != nil {
				t.Fatal(err)
			}
			got, err := c.ReadLine(page, line)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("page %d line %d: round trip mismatch", page, line)
			}
		}
	}
}

func TestUpgradePreservesData(t *testing.T) {
	for _, code := range []UpgradeCode{UpgradeSCCDCD, UpgradeSparing} {
		cfg := testConfig()
		cfg.Upgrade = code
		c := New(cfg)
		c.RelaxAll()
		r := rand.New(rand.NewSource(2))
		page := 5
		want := make([][]byte, LinesPerPage)
		for line := range want {
			want[line] = randLine(r)
			if err := c.WriteLine(page, line, want[line]); err != nil {
				t.Fatal(err)
			}
		}
		if err := c.UpgradePage(page); err != nil {
			t.Fatalf("code %d: UpgradePage: %v", code, err)
		}
		if c.PageMode(page) != pagetable.Upgraded {
			t.Fatal("mode not flipped")
		}
		for line := range want {
			got, err := c.ReadLine(page, line)
			if err != nil {
				t.Fatalf("code %d line %d: %v", code, line, err)
			}
			if !bytes.Equal(got, want[line]) {
				t.Fatalf("code %d line %d: data lost across upgrade", code, line)
			}
		}
	}
}

func TestRelaxPageInvertsUpgrade(t *testing.T) {
	c := newRelaxedController(t)
	r := rand.New(rand.NewSource(3))
	page := 9
	want := make([][]byte, LinesPerPage)
	for line := range want {
		want[line] = randLine(r)
		if err := c.WriteLine(page, line, want[line]); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.UpgradePage(page); err != nil {
		t.Fatal(err)
	}
	if err := c.RelaxPage(page); err != nil {
		t.Fatal(err)
	}
	if c.PageMode(page) != pagetable.Relaxed {
		t.Fatal("mode not restored")
	}
	for line := range want {
		got, err := c.ReadLine(page, line)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want[line]) {
			t.Fatalf("line %d: data lost across relax", line)
		}
	}
}

func TestWriteLineOnUpgradedPageReadModifyWrite(t *testing.T) {
	c := newRelaxedController(t)
	r := rand.New(rand.NewSource(4))
	page := 2
	a, b := randLine(r), randLine(r)
	if err := c.WriteLine(page, 10, a); err != nil {
		t.Fatal(err)
	}
	if err := c.WriteLine(page, 11, b); err != nil {
		t.Fatal(err)
	}
	if err := c.UpgradePage(page); err != nil {
		t.Fatal(err)
	}
	// Overwrite one half of the pair; the other half must survive.
	a2 := randLine(r)
	if err := c.WriteLine(page, 10, a2); err != nil {
		t.Fatal(err)
	}
	got10, err := c.ReadLine(page, 10)
	if err != nil {
		t.Fatal(err)
	}
	got11, err := c.ReadLine(page, 11)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got10, a2) || !bytes.Equal(got11, b) {
		t.Fatal("partial write to upgraded pair corrupted the pair")
	}
}

func TestWritePairAndReadPair(t *testing.T) {
	c := newRelaxedController(t)
	r := rand.New(rand.NewSource(5))
	page := 3
	if err := c.UpgradePage(page); err != nil {
		t.Fatal(err)
	}
	pairData := make([]byte, 2*LineBytes)
	r.Read(pairData)
	c.WritePair(page, 7, pairData)
	got, err := c.ReadPair(page, 7)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, pairData) {
		t.Fatal("pair round trip mismatch")
	}
}

func TestRelaxedToleratesWholeDeviceFault(t *testing.T) {
	c := newRelaxedController(t)
	r := rand.New(rand.NewSource(6))
	page, line := 0, 0 // rank 0, channel 0
	want := randLine(r)
	if err := c.WriteLine(page, line, want); err != nil {
		t.Fatal(err)
	}
	c.InjectFault(0, 0, dram.Fault{Device: 4, Scope: dram.ScopeDevice, Mode: dram.StuckAt1})
	got, err := c.ReadLine(page, line)
	if err != nil {
		t.Fatalf("chipkill violated: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("device fault not corrected in relaxed mode")
	}
	if c.Stats().Corrected == 0 {
		t.Fatal("correction not counted")
	}
}

func TestUpgradedToleratesFaultsInBothChannels(t *testing.T) {
	// After upgrade, one dead device per *channel* means two bad symbols
	// per codeword — SCCDCD detects (DUE), sparing with a remapped first
	// fault corrects. This is the reliability distinction of Ch. 5/6.
	for _, tc := range []struct {
		code    UpgradeCode
		wantDUE bool
	}{
		{UpgradeSCCDCD, true},
		{UpgradeSparing, false},
	} {
		cfg := testConfig()
		cfg.Upgrade = tc.code
		c := New(cfg)
		c.RelaxAll()
		r := rand.New(rand.NewSource(7))
		page := 0
		want := make([][]byte, LinesPerPage)
		for line := range want {
			want[line] = randLine(r)
			if err := c.WriteLine(page, line, want[line]); err != nil {
				t.Fatal(err)
			}
		}
		// First fault: channel 0 device 3. Scrub would find it and upgrade.
		c.InjectFault(0, 0, dram.Fault{Device: 3, Scope: dram.ScopeDevice, Mode: dram.StuckAt1})
		if err := c.UpgradePage(page); err != nil {
			t.Fatalf("code %d: upgrade with one fault: %v", tc.code, err)
		}
		// Second fault: channel 1 device 9, arriving after the upgrade.
		c.InjectFault(1, 0, dram.Fault{Device: 9, Scope: dram.ScopeDevice, Mode: dram.StuckAt1})

		_, err := c.ReadLine(page, 0)
		if tc.wantDUE {
			if err != ErrUncorrectable {
				t.Fatalf("SCCDCD: double-channel fault: err = %v, want DUE", err)
			}
		} else {
			if err != nil {
				t.Fatalf("sparing: second fault after sparing not corrected: %v", err)
			}
			got, err := c.ReadLine(page, 1)
			if err != nil || !bytes.Equal(got, want[1]) {
				t.Fatalf("sparing: data mismatch after double fault (err=%v)", err)
			}
		}
	}
}

func TestUpgradeWithFaultyDeviceRecoversData(t *testing.T) {
	c := newRelaxedController(t)
	r := rand.New(rand.NewSource(8))
	page := 1
	want := make([][]byte, LinesPerPage)
	for line := range want {
		want[line] = randLine(r)
		if err := c.WriteLine(page, line, want[line]); err != nil {
			t.Fatal(err)
		}
	}
	c.InjectFault(0, 0, dram.Fault{Device: 0, Scope: dram.ScopeDevice, Mode: dram.StuckAt0})
	if err := c.UpgradePage(page); err != nil {
		t.Fatalf("upgrade across faulty device: %v", err)
	}
	for line := range want {
		got, err := c.ReadLine(page, line)
		if err != nil {
			t.Fatalf("line %d: %v", line, err)
		}
		if !bytes.Equal(got, want[line]) {
			t.Fatalf("line %d: upgrade lost data behind faulty device", line)
		}
	}
}

func TestSubLineAccessCounting(t *testing.T) {
	c := newRelaxedController(t)
	before := c.Stats().SubLineAccesses
	if _, err := c.ReadLine(0, 0); err != nil {
		t.Fatal(err)
	}
	if got := c.Stats().SubLineAccesses - before; got != 1 {
		t.Fatalf("relaxed read made %d sub-line accesses, want 1", got)
	}
	if err := c.UpgradePage(0); err != nil {
		t.Fatal(err)
	}
	before = c.Stats().SubLineAccesses
	if _, err := c.ReadLine(0, 0); err != nil {
		t.Fatal(err)
	}
	if got := c.Stats().SubLineAccesses - before; got != 2 {
		t.Fatalf("upgraded read made %d sub-line accesses, want 2", got)
	}
}

func TestAddrMappingProperties(t *testing.T) {
	c := New(testConfig())
	type key struct {
		rank int
		a    dram.Addr
	}
	seen := map[key][2]int{}
	for page := 0; page < c.Pages(); page++ {
		for slot := 0; slot < c.slotsPerPage; slot++ {
			rank, a := c.addrOf(page, slot)
			k := key{rank, a}
			if prev, dup := seen[k]; dup {
				t.Fatalf("(page %d, slot %d) and (page %d, slot %d) collide at %+v",
					page, slot, prev[0], prev[1], k)
			}
			seen[k] = [2]int{page, slot}
		}
	}
	// Pages interleave across banks: consecutive pages in a rank land in
	// consecutive banks (that is what makes a bank fault span 1/8 of the
	// rank's pages, Table 7.4).
	_, a0 := c.addrOf(0, 0)
	_, a1 := c.addrOf(1, 0)
	if a1.Bank != (a0.Bank+1)%testConfig().BanksPerDevice {
		t.Fatalf("pages do not interleave across banks: %+v then %+v", a0, a1)
	}
}

func TestUpgradePagePanicsOnUpgraded(t *testing.T) {
	c := New(testConfig()) // boot: upgraded
	defer func() {
		if recover() == nil {
			t.Fatal("UpgradePage on upgraded page did not panic")
		}
	}()
	_ = c.UpgradePage(0)
}

func TestCorrectLineFixesStoredContent(t *testing.T) {
	// A WrongData fault corrupts reads; CorrectLine must report repairs.
	c := newRelaxedController(t)
	r := rand.New(rand.NewSource(9))
	want := randLine(r)
	if err := c.WriteLine(0, 0, want); err != nil {
		t.Fatal(err)
	}
	c.InjectFault(0, 0, dram.Fault{Device: 2, Scope: dram.ScopeDevice, Mode: dram.WrongData})
	n, err := c.CorrectLine(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("CorrectLine found nothing to repair behind a WrongData fault")
	}
	got, err := c.ReadLine(0, 0)
	if err != nil || !bytes.Equal(got, want) {
		t.Fatalf("data wrong after CorrectLine (err=%v)", err)
	}
}

func TestRawReadWriteRoundTrip(t *testing.T) {
	c := newRelaxedController(t)
	raw := make([]byte, storedLineBytes)
	for i := range raw {
		raw[i] = 0xFF
	}
	c.RawWrite(0, 5, raw)
	if got := c.RawRead(0, 5); !bytes.Equal(got, raw) {
		t.Fatal("raw round trip mismatch")
	}
}

func TestDUEOnRelaxedDoubleChannelFaultSameCodeword(t *testing.T) {
	// Two dead devices in the SAME channel hit the same relaxed codeword
	// twice; the (18,16) code cannot correct that and may or may not
	// detect it. With stuck-at patterns it must at least not return
	// silently wrong data *as corrected* more often than detected; here we
	// just pin that the read is not clean.
	c := newRelaxedController(t)
	r := rand.New(rand.NewSource(10))
	want := randLine(r)
	if err := c.WriteLine(0, 0, want); err != nil {
		t.Fatal(err)
	}
	c.InjectFault(0, 0, dram.Fault{Device: 1, Scope: dram.ScopeDevice, Mode: dram.StuckAt1})
	c.InjectFault(0, 0, dram.Fault{Device: 2, Scope: dram.ScopeDevice, Mode: dram.StuckAt1})
	got, err := c.ReadLine(0, 0)
	if err == nil && bytes.Equal(got, want) {
		t.Fatal("double in-channel fault read back original data cleanly; impossible")
	}
}
