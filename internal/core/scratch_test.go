package core

import (
	"bytes"
	"math/rand"
	"testing"

	"arcc/internal/dram"
	"arcc/internal/pagetable"
)

// TestReadIntoMatchesRead pins the Into variants to the allocating wrappers
// across all three page modes, with faults injected so corrections and raw
// passthrough paths are exercised too.
func TestReadIntoMatchesRead(t *testing.T) {
	for _, upgrade := range []UpgradeCode{UpgradeSCCDCD, UpgradeSparing} {
		cfg := testConfig()
		cfg.Channels = 4
		cfg.Upgrade = upgrade
		c := New(cfg)
		c.RelaxAll()
		r := rand.New(rand.NewSource(11))
		// Page 0 relaxed, page 1 upgraded, page 2 upgraded8.
		for page := 0; page < 3; page++ {
			for line := 0; line < LinesPerPage; line++ {
				if err := c.WriteLine(page, line, randLine(r)); err != nil {
					t.Fatal(err)
				}
			}
		}
		if err := c.UpgradePage(1); err != nil {
			t.Fatal(err)
		}
		if err := c.UpgradePage(2); err != nil {
			t.Fatal(err)
		}
		if err := c.UpgradePageToStrong(2); err != nil {
			t.Fatal(err)
		}
		c.InjectFault(0, 0, dram.Fault{Device: 3, Scope: dram.ScopeDevice, Mode: dram.StuckAt1})

		buf := make([]byte, LineBytes)
		pairBuf := make([]byte, 2*LineBytes)
		quadBuf := make([]byte, 4*LineBytes)
		for page := 0; page < 3; page++ {
			for line := 0; line < LinesPerPage; line++ {
				want, wantErr := c.ReadLine(page, line)
				gotErr := c.ReadLineInto(page, line, buf)
				if (wantErr == nil) != (gotErr == nil) || !bytes.Equal(want, buf) {
					t.Fatalf("upgrade %v page %d line %d: ReadLineInto diverged", upgrade, page, line)
				}
			}
		}
		for pair := 0; pair < LinesPerPage/2; pair++ {
			want, wantErr := c.ReadPair(1, pair)
			gotErr := c.ReadPairInto(1, pair, pairBuf)
			if (wantErr == nil) != (gotErr == nil) || !bytes.Equal(want, pairBuf) {
				t.Fatalf("upgrade %v pair %d: ReadPairInto diverged", upgrade, pair)
			}
		}
		for quad := 0; quad < LinesPerPage/4; quad++ {
			want, wantErr := c.ReadQuad(2, quad)
			gotErr := c.ReadQuadInto(2, quad, quadBuf)
			if (wantErr == nil) != (gotErr == nil) || !bytes.Equal(want, quadBuf) {
				t.Fatalf("upgrade %v quad %d: ReadQuadInto diverged", upgrade, quad)
			}
		}
	}
}

// TestControllerSteadyStateAllocationFree pins the controller's scratch
// contract: once every touched line has been written at least once, reads,
// writes, corrections, raw scrub primitives, and whole-page mode
// transitions perform zero heap allocations in every mode.
func TestControllerSteadyStateAllocationFree(t *testing.T) {
	for _, upgrade := range []UpgradeCode{UpgradeSCCDCD, UpgradeSparing} {
		cfg := testConfig()
		cfg.Channels = 4
		cfg.Upgrade = upgrade
		c := New(cfg)
		c.RelaxAll()
		r := rand.New(rand.NewSource(12))
		for page := 0; page < 3; page++ {
			for line := 0; line < LinesPerPage; line++ {
				if err := c.WriteLine(page, line, randLine(r)); err != nil {
					t.Fatal(err)
				}
			}
		}
		if err := c.UpgradePage(1); err != nil {
			t.Fatal(err)
		}
		if err := c.UpgradePage(2); err != nil {
			t.Fatal(err)
		}
		if err := c.UpgradePageToStrong(2); err != nil {
			t.Fatal(err)
		}
		// A live single-device fault keeps the decoders correcting (the
		// worst steady-state path) without tripping DUEs.
		c.InjectFault(0, 0, dram.Fault{Device: 3, Scope: dram.ScopeDevice, Mode: dram.StuckAt1})

		data := make([]byte, LineBytes)
		raw := make([]byte, 72)
		cases := []struct {
			name string
			f    func()
		}{
			{"ReadLineInto/relaxed", func() { _ = c.ReadLineInto(0, 5, data) }},
			{"ReadLineInto/upgraded", func() { _ = c.ReadLineInto(1, 5, data) }},
			{"ReadLineInto/upgraded8", func() { _ = c.ReadLineInto(2, 5, data) }},
			{"WriteLine/relaxed", func() { _ = c.WriteLine(0, 6, data) }},
			{"WriteLine/upgraded", func() { _ = c.WriteLine(1, 6, data) }},
			{"WriteLine/upgraded8", func() { _ = c.WriteLine(2, 6, data) }},
			{"CorrectLine/relaxed", func() { _, _ = c.CorrectLine(0, 7) }},
			{"CorrectLine/upgraded", func() { _, _ = c.CorrectLine(1, 7) }},
			{"CorrectLine/upgraded8", func() { _, _ = c.CorrectLine(2, 7) }},
			{"RawReadInto+RawWrite", func() { c.RawWrite(0, 8, c.RawReadInto(0, 8, raw)) }},
			{"UpgradePage+RelaxPage", func() {
				if c.Table().Mode(0) == pagetable.Relaxed {
					_ = c.UpgradePage(0)
				}
				_ = c.RelaxPage(0)
			}},
		}
		for _, tc := range cases {
			tc.f() // warm up (first writes may create DRAM store entries)
			if allocs := testing.AllocsPerRun(20, tc.f); allocs != 0 {
				t.Errorf("upgrade %v: %s: %v allocs/op, want 0", upgrade, tc.name, allocs)
			}
		}
	}
}
