package core

import (
	"fmt"

	"arcc/internal/pagetable"
)

// pairChannels returns the two channels and the shared slot holding
// upgraded pair p (lines 2p and 2p+1).
func (c *Controller) pairChannels(pair int) (chX, chY, slot int) {
	line := 2 * pair
	chX, slot = c.channelOf(line)
	return chX, chX + 1, slot
}

// ReadLine serves a 64 B line read. For relaxed pages it touches one
// channel (18 devices); for upgraded pages it reads the line's pair from
// two channels in lockstep (36 devices); for upgraded8 pages it reads the
// line's quad from four channels (72 devices). The returned error is
// ErrUncorrectable for DUEs; the data is then raw and untrusted.
func (c *Controller) ReadLine(page, line int) ([]byte, error) {
	c.stats.Reads++
	switch c.table.Mode(page) {
	case pagetable.Relaxed:
		ch, slot := c.channelOf(line)
		rank, addr := c.addrOf(page, slot)
		c.stats.SubLineAccesses++
		stored := c.channels[ch][rank].ReadLine(addr)
		data, corrected, err := c.decodeRelaxedLine(stored)
		c.noteOutcome(corrected, err)
		return data, err
	case pagetable.Upgraded:
		pair, err := c.ReadPair(page, line/2)
		if pair == nil {
			return nil, err
		}
		half := make([]byte, LineBytes)
		if line%2 == 0 {
			copy(half, pair[:LineBytes])
		} else {
			copy(half, pair[LineBytes:])
		}
		return half, err
	case pagetable.Upgraded8:
		quad, err := c.ReadQuad(page, line/4)
		if quad == nil {
			return nil, err
		}
		part := make([]byte, LineBytes)
		off := (line % 4) * LineBytes
		copy(part, quad[off:off+LineBytes])
		return part, err
	default:
		panic(fmt.Sprintf("core: page %d in unsupported mode %v", page, c.table.Mode(page)))
	}
}

// ReadPair reads upgraded pair p (lines 2p and 2p+1) of page, returning the
// 128 B payload. Two channels are accessed in lockstep.
func (c *Controller) ReadPair(page, pair int) ([]byte, error) {
	if c.table.Mode(page) != pagetable.Upgraded {
		panic(fmt.Sprintf("core: ReadPair on %v page %d", c.table.Mode(page), page))
	}
	chX, chY, slot := c.pairChannels(pair)
	rank, addr := c.addrOf(page, slot)
	c.stats.SubLineAccesses += 2
	storedX := c.channels[chX][rank].ReadLine(addr)
	storedY := c.channels[chY][rank].ReadLine(addr)
	data, corrected, err := c.decodeUpgradedPair(storedX, storedY, c.sparedPosOf(page))
	c.noteOutcome(len(corrected), err)
	return data, err
}

// WriteLine serves a 64 B line write. For relaxed pages the line is encoded
// and stored in its channel. For upgraded/upgraded8 pages the partner
// sub-lines must be merged so all check symbols per codeword stay
// consistent: the controller performs the read-modify-write that the LLC
// normally avoids by writing back whole pairs (use WritePair for that path).
func (c *Controller) WriteLine(page, line int, data []byte) error {
	if len(data) != LineBytes {
		panic(fmt.Sprintf("core: WriteLine with %d bytes, want %d", len(data), LineBytes))
	}
	c.stats.Writes++
	switch c.table.Mode(page) {
	case pagetable.Relaxed:
		ch, slot := c.channelOf(line)
		rank, addr := c.addrOf(page, slot)
		c.stats.SubLineAccesses++
		c.channels[ch][rank].WriteLine(addr, c.encodeRelaxedLine(data))
		return nil
	case pagetable.Upgraded:
		pair := line / 2
		current, err := c.ReadPair(page, pair)
		if err != nil {
			return err
		}
		if line%2 == 0 {
			copy(current[:LineBytes], data)
		} else {
			copy(current[LineBytes:], data)
		}
		c.writePairStored(page, pair, current)
		return nil
	case pagetable.Upgraded8:
		quad := line / 4
		current, err := c.ReadQuad(page, quad)
		if err != nil {
			return err
		}
		off := (line % 4) * LineBytes
		copy(current[off:off+LineBytes], data)
		c.writeQuadStored(page, quad, current)
		return nil
	default:
		panic(fmt.Sprintf("core: page %d in unsupported mode %v", page, c.table.Mode(page)))
	}
}

// WritePair writes back a full 128 B upgraded pair — the efficient path the
// modified LLC uses when evicting both sub-lines together (§4.2.3).
func (c *Controller) WritePair(page, pair int, data []byte) {
	if len(data) != 2*LineBytes {
		panic(fmt.Sprintf("core: WritePair with %d bytes, want %d", len(data), 2*LineBytes))
	}
	if c.table.Mode(page) != pagetable.Upgraded {
		panic(fmt.Sprintf("core: WritePair on %v page %d", c.table.Mode(page), page))
	}
	c.stats.Writes += 2
	c.writePairStored(page, pair, data)
}

func (c *Controller) writePairStored(page, pair int, data []byte) {
	chX, chY, slot := c.pairChannels(pair)
	rank, addr := c.addrOf(page, slot)
	storedX, storedY := c.encodeUpgradedPair(data, c.sparedPosOf(page))
	c.stats.SubLineAccesses += 2
	c.channels[chX][rank].WriteLine(addr, storedX)
	c.channels[chY][rank].WriteLine(addr, storedY)
}

func (c *Controller) sparedPosOf(page int) int {
	if pos, ok := c.sparedPos[page]; ok {
		return pos
	}
	return -1
}

func (c *Controller) noteOutcome(corrected int, err error) {
	c.stats.Corrected += int64(corrected)
	if err != nil {
		c.stats.DUEs++
	}
}

// RawRead returns the 72 stored bytes of one sub-line as the devices return
// them (fault corruption applied, no ECC). The scrubber's pattern tests use
// this primitive.
func (c *Controller) RawRead(page, line int) []byte {
	ch, slot := c.channelOf(line)
	rank, addr := c.addrOf(page, slot)
	return c.channels[ch][rank].ReadLine(addr)
}

// RawWrite stores 72 raw bytes into one sub-line, bypassing ECC encode. Only
// the scrubber's pattern tests should use it.
func (c *Controller) RawWrite(page, line int, raw []byte) {
	if len(raw) != storedLineBytes {
		panic(fmt.Sprintf("core: RawWrite with %d bytes, want %d", len(raw), storedLineBytes))
	}
	ch, slot := c.channelOf(line)
	rank, addr := c.addrOf(page, slot)
	c.channels[ch][rank].WriteLine(addr, raw)
}

// CorrectLine decodes the ECC context covering line (the line itself when
// relaxed, its pair/quad when upgraded), writes the corrected content back,
// and reports how many symbols were repaired. ErrUncorrectable reports a
// DUE; the stored content is left as-is in that case.
func (c *Controller) CorrectLine(page, line int) (corrected int, err error) {
	switch c.table.Mode(page) {
	case pagetable.Relaxed:
		ch, slot := c.channelOf(line)
		rank, addr := c.addrOf(page, slot)
		stored := c.channels[ch][rank].ReadLine(addr)
		data, n, derr := c.decodeRelaxedLine(stored)
		if derr != nil {
			c.stats.DUEs++
			return n, derr
		}
		if n > 0 {
			c.channels[ch][rank].WriteLine(addr, c.encodeRelaxedLine(data))
			c.stats.Corrected += int64(n)
		}
		return n, nil
	case pagetable.Upgraded:
		pair := line / 2
		chX, chY, slot := c.pairChannels(pair)
		rank, addr := c.addrOf(page, slot)
		storedX := c.channels[chX][rank].ReadLine(addr)
		storedY := c.channels[chY][rank].ReadLine(addr)
		data, fixed, derr := c.decodeUpgradedPair(storedX, storedY, c.sparedPosOf(page))
		if derr != nil {
			c.stats.DUEs++
			return len(fixed), derr
		}
		if len(fixed) > 0 {
			c.writePairStored(page, pair, data)
			c.stats.Corrected += int64(len(fixed))
		}
		return len(fixed), nil
	case pagetable.Upgraded8:
		quad := line / 4
		stored := c.readQuadStored(page, quad)
		data, fixed, derr := c.decodeQuad(stored)
		if derr != nil {
			c.stats.DUEs++
			return len(fixed), derr
		}
		if len(fixed) > 0 {
			c.writeQuadStored(page, quad, data)
			c.stats.Corrected += int64(len(fixed))
		}
		return len(fixed), nil
	default:
		panic(fmt.Sprintf("core: page %d in unsupported mode %v", page, c.table.Mode(page)))
	}
}
