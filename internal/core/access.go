package core

import (
	"fmt"

	"arcc/internal/pagetable"
)

// pairChannels returns the two channels and the shared slot holding
// upgraded pair p (lines 2p and 2p+1).
func (c *Controller) pairChannels(pair int) (chX, chY, slot int) {
	line := 2 * pair
	chX, slot = c.channelOf(line)
	return chX, chX + 1, slot
}

// ReadLine serves a 64 B line read, returning the data in a fresh slice.
// For relaxed pages it touches one channel (18 devices); for upgraded pages
// it reads the line's pair from two channels in lockstep (36 devices); for
// upgraded8 pages it reads the line's quad from four channels (72 devices).
// The returned error is ErrUncorrectable for DUEs; the data is then raw and
// untrusted. ReadLine is a compatibility wrapper over ReadLineInto.
func (c *Controller) ReadLine(page, line int) ([]byte, error) {
	data := make([]byte, LineBytes)
	err := c.ReadLineInto(page, line, data)
	return data, err
}

// ReadLineInto is ReadLine with a caller-owned 64 B buffer: the decode runs
// against the controller's scratch and performs no heap allocations.
func (c *Controller) ReadLineInto(page, line int, data []byte) error {
	if len(data) != LineBytes {
		panic(fmt.Sprintf("core: ReadLineInto with %d bytes, want %d", len(data), LineBytes))
	}
	c.stats.Reads++
	switch c.table.Mode(page) {
	case pagetable.Relaxed:
		ch, slot := c.channelOf(line)
		rank, addr := c.addrOf(page, slot)
		c.stats.SubLineAccesses++
		stored := c.channels[ch][rank].ReadLineInto(addr, c.scr.stored[0])
		corrected, err := c.decodeRelaxedLineInto(stored, data)
		c.noteOutcome(corrected, err)
		return err
	case pagetable.Upgraded:
		pair := c.scr.data[:2*LineBytes]
		err := c.readPairInto(page, line/2, pair)
		if line%2 == 0 {
			copy(data, pair[:LineBytes])
		} else {
			copy(data, pair[LineBytes:])
		}
		return err
	case pagetable.Upgraded8:
		quad := c.scr.data[:4*LineBytes]
		err := c.readQuadInto(page, line/4, quad)
		off := (line % 4) * LineBytes
		copy(data, quad[off:off+LineBytes])
		return err
	default:
		panic(fmt.Sprintf("core: page %d in unsupported mode %v", page, c.table.Mode(page)))
	}
}

// ReadPair reads upgraded pair p (lines 2p and 2p+1) of page, returning the
// 128 B payload in a fresh slice. Two channels are accessed in lockstep.
// ReadPair is a compatibility wrapper over ReadPairInto.
func (c *Controller) ReadPair(page, pair int) ([]byte, error) {
	data := make([]byte, 2*LineBytes)
	err := c.ReadPairInto(page, pair, data)
	return data, err
}

// ReadPairInto is ReadPair with a caller-owned 128 B buffer; it performs no
// heap allocations.
func (c *Controller) ReadPairInto(page, pair int, data []byte) error {
	if len(data) != 2*LineBytes {
		panic(fmt.Sprintf("core: ReadPairInto with %d bytes, want %d", len(data), 2*LineBytes))
	}
	return c.readPairInto(page, pair, data)
}

// readPairInto is ReadPairInto without the length check (internal callers
// pass scratch slices of the right size).
func (c *Controller) readPairInto(page, pair int, data []byte) error {
	if c.table.Mode(page) != pagetable.Upgraded {
		panic(fmt.Sprintf("core: ReadPair on %v page %d", c.table.Mode(page), page))
	}
	chX, chY, slot := c.pairChannels(pair)
	rank, addr := c.addrOf(page, slot)
	c.stats.SubLineAccesses += 2
	storedX := c.channels[chX][rank].ReadLineInto(addr, c.scr.stored[0])
	storedY := c.channels[chY][rank].ReadLineInto(addr, c.scr.stored[1])
	corrected, err := c.decodeUpgradedPairInto(storedX, storedY, c.sparedPosOf(page), data)
	c.noteOutcome(corrected, err)
	return err
}

// WriteLine serves a 64 B line write. For relaxed pages the line is encoded
// and stored in its channel. For upgraded/upgraded8 pages the partner
// sub-lines must be merged so all check symbols per codeword stay
// consistent: the controller performs the read-modify-write that the LLC
// normally avoids by writing back whole pairs (use WritePair for that path).
// It performs no heap allocations.
func (c *Controller) WriteLine(page, line int, data []byte) error {
	if len(data) != LineBytes {
		panic(fmt.Sprintf("core: WriteLine with %d bytes, want %d", len(data), LineBytes))
	}
	c.stats.Writes++
	switch c.table.Mode(page) {
	case pagetable.Relaxed:
		ch, slot := c.channelOf(line)
		rank, addr := c.addrOf(page, slot)
		c.stats.SubLineAccesses++
		c.encodeRelaxedLineInto(data, c.scr.stored[0])
		c.channels[ch][rank].WriteLine(addr, c.scr.stored[0])
		return nil
	case pagetable.Upgraded:
		pair := line / 2
		current := c.scr.data[:2*LineBytes]
		if err := c.readPairInto(page, pair, current); err != nil {
			return err
		}
		if line%2 == 0 {
			copy(current[:LineBytes], data)
		} else {
			copy(current[LineBytes:], data)
		}
		c.writePairStored(page, pair, current)
		return nil
	case pagetable.Upgraded8:
		quad := line / 4
		current := c.scr.data[:4*LineBytes]
		if err := c.readQuadInto(page, quad, current); err != nil {
			return err
		}
		off := (line % 4) * LineBytes
		copy(current[off:off+LineBytes], data)
		c.writeQuadStored(page, quad, current)
		return nil
	default:
		panic(fmt.Sprintf("core: page %d in unsupported mode %v", page, c.table.Mode(page)))
	}
}

// WritePair writes back a full 128 B upgraded pair — the efficient path the
// modified LLC uses when evicting both sub-lines together (§4.2.3).
func (c *Controller) WritePair(page, pair int, data []byte) {
	if len(data) != 2*LineBytes {
		panic(fmt.Sprintf("core: WritePair with %d bytes, want %d", len(data), 2*LineBytes))
	}
	if c.table.Mode(page) != pagetable.Upgraded {
		panic(fmt.Sprintf("core: WritePair on %v page %d", c.table.Mode(page), page))
	}
	c.stats.Writes += 2
	c.writePairStored(page, pair, data)
}

func (c *Controller) writePairStored(page, pair int, data []byte) {
	chX, chY, slot := c.pairChannels(pair)
	rank, addr := c.addrOf(page, slot)
	storedX, storedY := c.scr.stored[2], c.scr.stored[3]
	c.encodeUpgradedPairInto(data, c.sparedPosOf(page), storedX, storedY)
	c.stats.SubLineAccesses += 2
	c.channels[chX][rank].WriteLine(addr, storedX)
	c.channels[chY][rank].WriteLine(addr, storedY)
}

func (c *Controller) sparedPosOf(page int) int {
	if pos, ok := c.sparedPos[page]; ok {
		return int(pos)
	}
	return -1
}

func (c *Controller) noteOutcome(corrected int, err error) {
	c.stats.Corrected += int64(corrected)
	if err != nil {
		c.stats.DUEs++
	}
}

// RawRead returns the 72 stored bytes of one sub-line as the devices return
// them (fault corruption applied, no ECC), in a fresh slice. The scrubber's
// pattern tests use this primitive (via RawReadInto for the hot loop).
func (c *Controller) RawRead(page, line int) []byte {
	return c.RawReadInto(page, line, make([]byte, storedLineBytes))
}

// RawReadInto is RawRead with a caller-owned buffer, which is overwritten
// and returned; it performs no heap allocations.
func (c *Controller) RawReadInto(page, line int, raw []byte) []byte {
	ch, slot := c.channelOf(line)
	rank, addr := c.addrOf(page, slot)
	return c.channels[ch][rank].ReadLineInto(addr, raw)
}

// RawWrite stores 72 raw bytes into one sub-line, bypassing ECC encode. Only
// the scrubber's pattern tests should use it.
func (c *Controller) RawWrite(page, line int, raw []byte) {
	if len(raw) != storedLineBytes {
		panic(fmt.Sprintf("core: RawWrite with %d bytes, want %d", len(raw), storedLineBytes))
	}
	ch, slot := c.channelOf(line)
	rank, addr := c.addrOf(page, slot)
	c.channels[ch][rank].WriteLine(addr, raw)
}

// CorrectLine decodes the ECC context covering line (the line itself when
// relaxed, its pair/quad when upgraded), writes the corrected content back,
// and reports how many symbols were repaired. ErrUncorrectable reports a
// DUE; the stored content is left as-is in that case. It performs no heap
// allocations.
func (c *Controller) CorrectLine(page, line int) (corrected int, err error) {
	switch c.table.Mode(page) {
	case pagetable.Relaxed:
		ch, slot := c.channelOf(line)
		rank, addr := c.addrOf(page, slot)
		stored := c.channels[ch][rank].ReadLineInto(addr, c.scr.stored[0])
		data := c.scr.data[:LineBytes]
		n, derr := c.decodeRelaxedLineInto(stored, data)
		if derr != nil {
			c.stats.DUEs++
			return n, derr
		}
		if n > 0 {
			c.encodeRelaxedLineInto(data, stored)
			c.channels[ch][rank].WriteLine(addr, stored)
			c.stats.Corrected += int64(n)
		}
		return n, nil
	case pagetable.Upgraded:
		pair := line / 2
		chX, chY, slot := c.pairChannels(pair)
		rank, addr := c.addrOf(page, slot)
		storedX := c.channels[chX][rank].ReadLineInto(addr, c.scr.stored[0])
		storedY := c.channels[chY][rank].ReadLineInto(addr, c.scr.stored[1])
		data := c.scr.data[:2*LineBytes]
		n, derr := c.decodeUpgradedPairInto(storedX, storedY, c.sparedPosOf(page), data)
		if derr != nil {
			c.stats.DUEs++
			return n, derr
		}
		if n > 0 {
			c.writePairStored(page, pair, data)
			c.stats.Corrected += int64(n)
		}
		return n, nil
	case pagetable.Upgraded8:
		quad := line / 4
		stored := c.readQuadStored(page, quad)
		data := c.scr.data[:4*LineBytes]
		n, derr := c.decodeQuadInto(stored, data)
		if derr != nil {
			c.stats.DUEs++
			return n, derr
		}
		if n > 0 {
			c.writeQuadStored(page, quad, data)
			c.stats.Corrected += int64(n)
		}
		return n, nil
	default:
		panic(fmt.Sprintf("core: page %d in unsupported mode %v", page, c.table.Mode(page)))
	}
}
