package core

import (
	"fmt"

	"arcc/internal/pagetable"
)

// This file implements the §5.1 second upgrade level: when a codeword in an
// upgraded page develops a second bad symbol, the page's codewords can be
// striped across FOUR memory channels, giving each codeword eight check
// symbols (the EightCheck scheme: 64 data + 8 check symbols, correcting two
// bad symbols outright).
//
// Quad layout: lines 4q..4q+3 of a page share slot q in channels 0..3.
// Codeword c of the quad (72 symbols) is
//
//	[ ch0 data d0[16c..16c+15] | ch1 data | ch2 data | ch3 data | r0..r7 ]
//
// with data symbols 16k..16k+15 and check symbols 64+2k, 64+2k+1 stored in
// channel k — every stored symbol still owns its device, so a whole-device
// fault costs one symbol per codeword and a whole-channel (lane) fault
// costs at most 18 positions spread across four codewords' disjoint ranges.

// quadChannels returns the base slot of quad q; channels are always 0..3.
func (c *Controller) quadSlot(quad int) int {
	line := 4 * quad
	_, slot := c.channelOf(line)
	return slot
}

// readQuadStored fetches the four stored sub-lines of a quad.
func (c *Controller) readQuadStored(page, quad int) [4][]byte {
	c.mustSupportStrong()
	slot := c.quadSlot(quad)
	rank, addr := c.addrOf(page, slot)
	var stored [4][]byte
	for ch := 0; ch < 4; ch++ {
		stored[ch] = c.channels[ch][rank].ReadLine(addr)
	}
	c.stats.SubLineAccesses += 4
	return stored
}

// ReadQuad reads upgraded8 quad q (lines 4q..4q+3), returning the 256 B
// payload. All four channels are accessed in lockstep.
func (c *Controller) ReadQuad(page, quad int) ([]byte, error) {
	if c.table.Mode(page) != pagetable.Upgraded8 {
		panic(fmt.Sprintf("core: ReadQuad on %v page %d", c.table.Mode(page), page))
	}
	stored := c.readQuadStored(page, quad)
	data, corrected, err := c.decodeQuad(stored)
	c.noteOutcome(len(corrected), err)
	return data, err
}

// WriteQuad writes back a full 256 B upgraded8 quad.
func (c *Controller) WriteQuad(page, quad int, data []byte) {
	if len(data) != 4*LineBytes {
		panic(fmt.Sprintf("core: WriteQuad with %d bytes, want %d", len(data), 4*LineBytes))
	}
	if c.table.Mode(page) != pagetable.Upgraded8 {
		panic(fmt.Sprintf("core: WriteQuad on %v page %d", c.table.Mode(page), page))
	}
	c.stats.Writes += 4
	c.writeQuadStored(page, quad, data)
}

// writeQuadStored encodes a 256 B quad and stores its four sub-lines.
func (c *Controller) writeQuadStored(page, quad int, data []byte) {
	c.mustSupportStrong()
	if len(data) != 4*LineBytes {
		panic(fmt.Sprintf("core: quad encode with %d bytes, want %d", len(data), 4*LineBytes))
	}
	slot := c.quadSlot(quad)
	rank, addr := c.addrOf(page, slot)
	var stored [4][]byte
	for ch := 0; ch < 4; ch++ {
		stored[ch] = make([]byte, storedLineBytes)
	}
	payload := make([]byte, 64)
	for cw := 0; cw < codewordsPerLine; cw++ {
		for ch := 0; ch < 4; ch++ {
			copy(payload[ch*16:(ch+1)*16], data[ch*LineBytes+cw*16:ch*LineBytes+cw*16+16])
		}
		full := c.eight.Encode(payload)
		for ch := 0; ch < 4; ch++ {
			copy(stored[ch][cw*18:], full[ch*16:(ch+1)*16])
			stored[ch][cw*18+16] = full[64+2*ch]
			stored[ch][cw*18+17] = full[64+2*ch+1]
		}
	}
	for ch := 0; ch < 4; ch++ {
		c.channels[ch][rank].WriteLine(addr, stored[ch])
	}
	c.stats.SubLineAccesses += 4
}

// decodeQuad decodes four stored sub-lines into 256 data bytes.
func (c *Controller) decodeQuad(stored [4][]byte) (data []byte, corrected []int, err error) {
	for ch := 0; ch < 4; ch++ {
		if len(stored[ch]) != storedLineBytes {
			panic("core: quad decode with wrong stored sizes")
		}
	}
	data = make([]byte, 4*LineBytes)
	full := make([]byte, 72)
	for cw := 0; cw < codewordsPerLine; cw++ {
		for ch := 0; ch < 4; ch++ {
			copy(full[ch*16:(ch+1)*16], stored[ch][cw*18:cw*18+16])
			full[64+2*ch] = stored[ch][cw*18+16]
			full[64+2*ch+1] = stored[ch][cw*18+17]
		}
		res, derr := c.eight.Decode(full)
		if derr != nil {
			err = ErrUncorrectable
			for ch := 0; ch < 4; ch++ {
				copy(data[ch*LineBytes+cw*16:], full[ch*16:(ch+1)*16])
			}
			continue
		}
		corrected = append(corrected, res.Corrected...)
		for ch := 0; ch < 4; ch++ {
			copy(data[ch*LineBytes+cw*16:], res.Data[ch*16:(ch+1)*16])
		}
	}
	return data, corrected, err
}

// UpgradePageToStrong raises an Upgraded page to Upgraded8 (§5.1): the
// page's pairs are read out (correcting what the 4-check code still can),
// re-encoded as four-channel quads with eight check symbols, and written
// back. Requires a four-channel controller.
func (c *Controller) UpgradePageToStrong(page int) error {
	c.mustSupportStrong()
	if c.table.Mode(page) != pagetable.Upgraded {
		panic(fmt.Sprintf("core: UpgradePageToStrong on %v page %d", c.table.Mode(page), page))
	}
	var readErr error
	pairs := make([][]byte, LinesPerPage/2)
	for pair := range pairs {
		data, err := c.ReadPair(page, pair)
		if err != nil {
			readErr = err
		}
		pairs[pair] = data
	}
	c.table.SetMode(page, pagetable.Upgraded8)
	delete(c.sparedPos, page)
	c.stats.StrongUpgrades++

	quadData := make([]byte, 4*LineBytes)
	for quad := 0; quad < LinesPerPage/4; quad++ {
		copy(quadData[:2*LineBytes], pairs[2*quad])
		copy(quadData[2*LineBytes:], pairs[2*quad+1])
		c.writeQuadStored(page, quad, quadData)
	}
	return readErr
}

func (c *Controller) mustSupportStrong() {
	if !c.SupportsStrongUpgrade() {
		panic("core: Upgraded8 mode requires a four-channel configuration (§5.1)")
	}
}
