package core

import (
	"fmt"

	"arcc/internal/pagetable"
)

// This file implements the §5.1 second upgrade level: when a codeword in an
// upgraded page develops a second bad symbol, the page's codewords can be
// striped across FOUR memory channels, giving each codeword eight check
// symbols (the EightCheck scheme: 64 data + 8 check symbols, correcting two
// bad symbols outright).
//
// Quad layout: lines 4q..4q+3 of a page share slot q in channels 0..3.
// Codeword c of the quad (72 symbols) is
//
//	[ ch0 data d0[16c..16c+15] | ch1 data | ch2 data | ch3 data | r0..r7 ]
//
// with data symbols 16k..16k+15 and check symbols 64+2k, 64+2k+1 stored in
// channel k — every stored symbol still owns its device, so a whole-device
// fault costs one symbol per codeword and a whole-channel (lane) fault
// costs at most 18 positions spread across four codewords' disjoint ranges.

// quadChannels returns the base slot of quad q; channels are always 0..3.
func (c *Controller) quadSlot(quad int) int {
	line := 4 * quad
	_, slot := c.channelOf(line)
	return slot
}

// readQuadStored fetches the four stored sub-lines of a quad into the
// controller's scratch buffers (valid until the next operation).
func (c *Controller) readQuadStored(page, quad int) [4][]byte {
	c.mustSupportStrong()
	slot := c.quadSlot(quad)
	rank, addr := c.addrOf(page, slot)
	var stored [4][]byte
	for ch := 0; ch < 4; ch++ {
		stored[ch] = c.channels[ch][rank].ReadLineInto(addr, c.scr.stored[ch])
	}
	c.stats.SubLineAccesses += 4
	return stored
}

// ReadQuad reads upgraded8 quad q (lines 4q..4q+3), returning the 256 B
// payload in a fresh slice. All four channels are accessed in lockstep.
// ReadQuad is a compatibility wrapper over ReadQuadInto.
func (c *Controller) ReadQuad(page, quad int) ([]byte, error) {
	data := make([]byte, 4*LineBytes)
	err := c.ReadQuadInto(page, quad, data)
	return data, err
}

// ReadQuadInto is ReadQuad with a caller-owned 256 B buffer; it performs no
// heap allocations.
func (c *Controller) ReadQuadInto(page, quad int, data []byte) error {
	if len(data) != 4*LineBytes {
		panic(fmt.Sprintf("core: ReadQuadInto with %d bytes, want %d", len(data), 4*LineBytes))
	}
	return c.readQuadInto(page, quad, data)
}

// readQuadInto is ReadQuadInto without the length check.
func (c *Controller) readQuadInto(page, quad int, data []byte) error {
	if c.table.Mode(page) != pagetable.Upgraded8 {
		panic(fmt.Sprintf("core: ReadQuad on %v page %d", c.table.Mode(page), page))
	}
	stored := c.readQuadStored(page, quad)
	corrected, err := c.decodeQuadInto(stored, data)
	c.noteOutcome(corrected, err)
	return err
}

// WriteQuad writes back a full 256 B upgraded8 quad.
func (c *Controller) WriteQuad(page, quad int, data []byte) {
	if len(data) != 4*LineBytes {
		panic(fmt.Sprintf("core: WriteQuad with %d bytes, want %d", len(data), 4*LineBytes))
	}
	if c.table.Mode(page) != pagetable.Upgraded8 {
		panic(fmt.Sprintf("core: WriteQuad on %v page %d", c.table.Mode(page), page))
	}
	c.stats.Writes += 4
	c.writeQuadStored(page, quad, data)
}

// writeQuadStored encodes a 256 B quad and stores its four sub-lines,
// assembling the codewords and stored images in the controller's scratch.
func (c *Controller) writeQuadStored(page, quad int, data []byte) {
	c.mustSupportStrong()
	if len(data) != 4*LineBytes {
		panic(fmt.Sprintf("core: quad encode with %d bytes, want %d", len(data), 4*LineBytes))
	}
	slot := c.quadSlot(quad)
	rank, addr := c.addrOf(page, slot)
	full := c.scr.full[:72]
	for cw := 0; cw < codewordsPerLine; cw++ {
		for ch := 0; ch < 4; ch++ {
			copy(full[ch*16:(ch+1)*16], data[ch*LineBytes+cw*16:ch*LineBytes+cw*16+16])
		}
		c.eight.EncodeInto(full)
		for ch := 0; ch < 4; ch++ {
			stored := c.scr.stored[ch]
			copy(stored[cw*18:], full[ch*16:(ch+1)*16])
			stored[cw*18+16] = full[64+2*ch]
			stored[cw*18+17] = full[64+2*ch+1]
		}
	}
	for ch := 0; ch < 4; ch++ {
		c.channels[ch][rank].WriteLine(addr, c.scr.stored[ch])
	}
	c.stats.SubLineAccesses += 4
}

// decodeQuadInto decodes four stored sub-lines into the 256-byte data
// buffer, reporting the corrected symbol count. Like the pair path, the
// four 72-symbol codewords are gathered into the controller's flat batch
// buffer (stride 72) and decoded word-parallel in one call; corrected
// lanes then hold the repaired codeword and DUE lanes the raw gathered
// symbols, so the data scatter is uniform.
func (c *Controller) decodeQuadInto(stored [4][]byte, data []byte) (corrected int, err error) {
	for ch := 0; ch < 4; ch++ {
		if len(stored[ch]) != storedLineBytes {
			panic("core: quad decode with wrong stored sizes")
		}
	}
	batch := c.scr.batch[:codewordsPerLine*72]
	for cw := 0; cw < codewordsPerLine; cw++ {
		full := batch[cw*72 : (cw+1)*72]
		for ch := 0; ch < 4; ch++ {
			copy(full[ch*16:(ch+1)*16], stored[ch][cw*18:cw*18+16])
			full[64+2*ch] = stored[ch][cw*18+16]
			full[64+2*ch+1] = stored[ch][cw*18+17]
		}
	}
	var derr error
	corrected, derr = c.eight.DecodeBatchInto(batch, 72, codewordsPerLine, c.scr.eight)
	if derr != nil {
		err = ErrUncorrectable
	}
	for cw := 0; cw < codewordsPerLine; cw++ {
		full := batch[cw*72 : (cw+1)*72]
		for ch := 0; ch < 4; ch++ {
			copy(data[ch*LineBytes+cw*16:], full[ch*16:(ch+1)*16])
		}
	}
	return corrected, err
}

// UpgradePageToStrong raises an Upgraded page to Upgraded8 (§5.1): the
// page's pairs are read out (correcting what the 4-check code still can),
// re-encoded as four-channel quads with eight check symbols, and written
// back. Requires a four-channel controller. The page payload is staged in
// the controller's whole-page scratch, so the transition does not allocate.
func (c *Controller) UpgradePageToStrong(page int) error {
	c.mustSupportStrong()
	if c.table.Mode(page) != pagetable.Upgraded {
		panic(fmt.Sprintf("core: UpgradePageToStrong on %v page %d", c.table.Mode(page), page))
	}
	var readErr error
	pageData := c.scr.page
	for pair := 0; pair < LinesPerPage/2; pair++ {
		if err := c.readPairInto(page, pair, pageData[pair*2*LineBytes:(pair+1)*2*LineBytes]); err != nil {
			readErr = err
		}
	}
	c.table.SetMode(page, pagetable.Upgraded8)
	delete(c.sparedPos, page)
	c.stats.StrongUpgrades++

	for quad := 0; quad < LinesPerPage/4; quad++ {
		c.writeQuadStored(page, quad, pageData[quad*4*LineBytes:(quad+1)*4*LineBytes])
	}
	return readErr
}

func (c *Controller) mustSupportStrong() {
	if !c.SupportsStrongUpgrade() {
		panic("core: Upgraded8 mode requires a four-channel configuration (§5.1)")
	}
}
