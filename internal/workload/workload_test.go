package workload

import (
	"math"
	"testing"
)

func TestMixesMatchTable73(t *testing.T) {
	mixes := Mixes()
	if len(mixes) != 12 {
		t.Fatalf("got %d mixes, want 12", len(mixes))
	}
	if mixes[0].Name != "Mix1" || mixes[11].Name != "Mix12" {
		t.Fatal("mix names wrong")
	}
	// Spot-check against Table 7.3.
	if mixes[9].Benchmarks[0].Name != "mcf2006" || mixes[9].Benchmarks[1].Name != "libquantum" {
		t.Fatalf("Mix10 = %v", mixes[9].Benchmarks)
	}
	if mixes[11].Benchmarks[0].Name != "lbm" {
		t.Fatalf("Mix12 starts with %s, want lbm", mixes[11].Benchmarks[0].Name)
	}
	for _, m := range mixes {
		for _, b := range m.Benchmarks {
			b.validate()
		}
	}
}

func TestByNamePanicsOnUnknown(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("ByName(unknown) did not panic")
		}
	}()
	ByName("doom3")
}

func TestStreamDeterminism(t *testing.T) {
	b := ByName("swim")
	s1, s2 := b.NewStream(7, 1000), b.NewStream(7, 1000)
	for i := 0; i < 1000; i++ {
		a1, a2 := s1.Next(), s2.Next()
		if a1 != a2 {
			t.Fatalf("access %d differs: %+v vs %+v", i, a1, a2)
		}
	}
}

func TestStreamStaysInFootprint(t *testing.T) {
	b := ByName("mcf2006")
	base := uint64(1 << 30)
	s := b.NewStream(1, base)
	for i := 0; i < 10000; i++ {
		a := s.Next()
		if a.Line < base || a.Line >= base+uint64(b.FootprintLines) {
			t.Fatalf("access %d at line %d escapes footprint [%d, %d)", i, a.Line, base, base+uint64(b.FootprintLines))
		}
		if a.Gap < 1 {
			t.Fatalf("gap %d < 1", a.Gap)
		}
	}
}

func TestStreamGapMatchesAPKI(t *testing.T) {
	// Mean gap should be ~1000/APKI instructions.
	b := ByName("omnetpp")
	s := b.NewStream(3, 0)
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		sum += float64(s.Next().Gap)
	}
	mean := sum / n
	want := 1000 / b.APKI
	if math.Abs(mean-want)/want > 0.1 {
		t.Fatalf("mean gap %v, want ~%v", mean, want)
	}
}

func TestStreamWriteFraction(t *testing.T) {
	b := ByName("lbm")
	s := b.NewStream(4, 0)
	const n = 100000
	writes := 0
	for i := 0; i < n; i++ {
		if s.Next().Write {
			writes++
		}
	}
	got := float64(writes) / n
	if math.Abs(got-b.WriteFraction) > 0.02 {
		t.Fatalf("write fraction %v, want ~%v", got, b.WriteFraction)
	}
}

func TestStreamSpatialLocalityShowsUp(t *testing.T) {
	// Sequential-run fraction of a streaming benchmark must far exceed a
	// pointer-chaser's.
	seqFrac := func(name string) float64 {
		s := ByName(name).NewStream(5, 0)
		prev := s.Next().Line
		seq := 0
		const n = 50000
		for i := 0; i < n; i++ {
			a := s.Next()
			if a.Line == prev+1 {
				seq++
			}
			prev = a.Line
		}
		return float64(seq) / n
	}
	stream, chase := seqFrac("libquantum"), seqFrac("mcf2006")
	if stream < 0.8 {
		t.Fatalf("libquantum sequential fraction %v, want > 0.8", stream)
	}
	if chase > 0.3 {
		t.Fatalf("mcf2006 sequential fraction %v, want < 0.3", chase)
	}
	if stream <= chase {
		t.Fatal("locality ordering inverted")
	}
}

func TestBenchmarkValidatePanics(t *testing.T) {
	bad := Benchmark{Name: "bad", APKI: 0, SpatialLocality: 0.5, FootprintLines: 10, HotFraction: 0.1}
	defer func() {
		if recover() == nil {
			t.Fatal("invalid benchmark did not panic")
		}
	}()
	bad.NewStream(1, 0)
}

func TestAllMixBenchmarksDistinctRegionsPossible(t *testing.T) {
	// Footprints must be small enough that four of them fit in the
	// simulated physical memory (1M pages x 64 lines).
	const memLines = 1 << 26
	for _, m := range Mixes() {
		var total int
		for _, b := range m.Benchmarks {
			total += b.FootprintLines
		}
		if total > memLines {
			t.Fatalf("%s footprints (%d lines) exceed memory (%d lines)", m.Name, total, memLines)
		}
	}
}
