// Package workload generates the memory access streams that drive the
// performance and power experiments.
//
// The paper runs 12 multiprogrammed mixes of SPEC CPU2000/2006 benchmarks
// (Table 7.3) on M5. SPEC binaries and simulator checkpoints are not
// reproducible here, so each benchmark is replaced by a synthetic stream
// generator parameterised by the memory-level behaviour that the
// experiments actually depend on:
//
//   - APKI: LLC accesses per kilo-instruction (memory intensity),
//   - SpatialLocality: probability that an access continues a sequential
//     run (this is what makes upgraded 128 B lines act as useful prefetch
//     for some workloads and waste bandwidth for others, Fig 7.2/7.3),
//   - WriteFraction: stores among LLC accesses,
//   - FootprintLines: working-set size in 64 B lines,
//   - HotFraction/HotWeight: a hot subset that captures reuse (LLC hits).
//
// Parameter values are calibrated to the published memory characteristics
// of the named benchmarks (streaming codes like lbm/libquantum/swim are
// intense and sequential; pointer-chasers like mcf/omnetpp are intense and
// random; mesa/calculix/sjeng/h264ref are cache-friendly).
package workload

import (
	"fmt"
	"math/rand"
)

// Access is one LLC-level memory access.
type Access struct {
	// Line is the 64 B line address (line index, not byte address).
	Line uint64
	// Write reports a store.
	Write bool
	// Gap is the number of instructions executed since the previous
	// access (the compute the core performs in between).
	Gap int
}

// Benchmark is a synthetic stand-in for one SPEC benchmark.
type Benchmark struct {
	Name            string
	APKI            float64 // LLC accesses per 1000 instructions
	SpatialLocality float64 // probability of continuing a sequential run
	WriteFraction   float64
	FootprintLines  int
	HotFraction     float64 // fraction of footprint that is hot
	HotWeight       float64 // probability a random jump lands in the hot set
}

func (b Benchmark) validate() {
	if b.APKI <= 0 || b.FootprintLines <= 0 ||
		b.SpatialLocality < 0 || b.SpatialLocality >= 1 ||
		b.WriteFraction < 0 || b.WriteFraction > 1 ||
		b.HotFraction <= 0 || b.HotFraction > 1 ||
		b.HotWeight < 0 || b.HotWeight > 1 {
		panic(fmt.Sprintf("workload: invalid benchmark %+v", b))
	}
}

// Stream produces the access sequence of one benchmark instance.
type Stream struct {
	b    Benchmark
	rng  *rand.Rand
	base uint64 // first line of this instance's address range
	cur  uint64 // current line within [0, FootprintLines)
	gapM float64
}

// NewStream starts a stream at a deterministic position. base is the first
// line address of the region this benchmark instance owns; instances in a
// mix get disjoint regions.
func (b Benchmark) NewStream(seed int64, base uint64) *Stream {
	b.validate()
	return &Stream{
		b:    b,
		rng:  rand.New(rand.NewSource(seed)),
		base: base,
		gapM: 1000 / b.APKI,
	}
}

// Reset re-initialises s exactly as b.NewStream(seed, base) would, reusing
// the stream's RNG state so no heap allocations occur. The access sequence a
// reset stream produces is identical to a freshly-constructed stream's, so
// the two are interchangeable (sim.Scratch reuses streams across runs).
func (s *Stream) Reset(b Benchmark, seed int64, base uint64) {
	b.validate()
	s.b = b
	s.rng.Seed(seed)
	s.base = base
	s.cur = 0
	s.gapM = 1000 / b.APKI
}

// Name returns the benchmark name.
func (s *Stream) Name() string { return s.b.Name }

// Next produces the next access.
func (s *Stream) Next() Access {
	b := &s.b
	if s.rng.Float64() < b.SpatialLocality {
		s.cur = (s.cur + 1) % uint64(b.FootprintLines)
	} else if s.rng.Float64() < b.HotWeight {
		hot := uint64(float64(b.FootprintLines) * b.HotFraction)
		if hot == 0 {
			hot = 1
		}
		s.cur = uint64(s.rng.Int63n(int64(hot)))
	} else {
		s.cur = uint64(s.rng.Int63n(int64(b.FootprintLines)))
	}
	gap := int(s.rng.ExpFloat64() * s.gapM)
	if gap < 1 {
		gap = 1
	}
	return Access{
		Line:  s.base + s.cur,
		Write: s.rng.Float64() < b.WriteFraction,
		Gap:   gap,
	}
}
