package workload

import (
	"fmt"
	"io"
)

// Source produces an access stream. *Stream (the synthetic generators) and
// *ReplaySource (recorded traces) both implement it, so the simulator can
// run either.
type Source interface {
	Next() Access
}

var _ Source = (*Stream)(nil)

// ReplaySource cycles through a recorded access sequence. When the
// simulator needs more accesses than the trace holds, the trace wraps
// around (with a fresh warning left to the caller via Wrapped).
type ReplaySource struct {
	accesses []Access
	pos      int
	wrapped  bool
}

// NewReplaySource wraps a recorded access sequence.
func NewReplaySource(accesses []Access) *ReplaySource {
	if len(accesses) == 0 {
		panic("workload: empty replay source")
	}
	return &ReplaySource{accesses: accesses}
}

// Next implements Source.
func (r *ReplaySource) Next() Access {
	a := r.accesses[r.pos]
	r.pos++
	if r.pos == len(r.accesses) {
		r.pos = 0
		r.wrapped = true
	}
	return a
}

// Wrapped reports whether the trace has been replayed past its end.
func (r *ReplaySource) Wrapped() bool { return r.wrapped }

// Len returns the trace length.
func (r *ReplaySource) Len() int { return len(r.accesses) }

// ReadAll loads an entire trace stream into memory for replay.
func ReadAll(rd io.Reader) ([]Access, error) {
	tr, err := NewTraceReader(rd)
	if err != nil {
		return nil, err
	}
	var out []Access
	for {
		a, err := tr.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, fmt.Errorf("workload: reading trace record %d: %w", len(out), err)
		}
		out = append(out, a)
	}
}
