package workload

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Trace recording and replay: a compact binary format for memory access
// streams, so that interesting workloads (including ones captured from
// other tools) can be replayed deterministically through the simulator
// instead of being regenerated.
//
// Format: an 8-byte header ("ARCCTRC1"), then one record per access:
//
//	uint64 line address
//	uint32 gap (instructions since the previous access)
//	uint8  flags (bit 0: write)
//
// all little-endian.

var traceMagic = [8]byte{'A', 'R', 'C', 'C', 'T', 'R', 'C', '1'}

// ErrBadTrace reports a malformed trace stream.
var ErrBadTrace = errors.New("workload: malformed trace")

// TraceWriter streams accesses into an io.Writer.
type TraceWriter struct {
	w     *bufio.Writer
	count int64
}

// NewTraceWriter writes the header and returns a writer.
func NewTraceWriter(w io.Writer) (*TraceWriter, error) {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(traceMagic[:]); err != nil {
		return nil, fmt.Errorf("workload: writing trace header: %w", err)
	}
	return &TraceWriter{w: bw}, nil
}

// Write appends one access.
func (t *TraceWriter) Write(a Access) error {
	var rec [13]byte
	binary.LittleEndian.PutUint64(rec[0:8], a.Line)
	if a.Gap < 0 || int64(a.Gap) > int64(^uint32(0)) {
		return fmt.Errorf("workload: gap %d does not fit the trace format", a.Gap)
	}
	binary.LittleEndian.PutUint32(rec[8:12], uint32(a.Gap))
	if a.Write {
		rec[12] = 1
	}
	if _, err := t.w.Write(rec[:]); err != nil {
		return fmt.Errorf("workload: writing trace record: %w", err)
	}
	t.count++
	return nil
}

// Count returns the number of records written.
func (t *TraceWriter) Count() int64 { return t.count }

// Flush drains buffered records to the underlying writer.
func (t *TraceWriter) Flush() error { return t.w.Flush() }

// TraceReader replays accesses from an io.Reader.
type TraceReader struct {
	r     *bufio.Reader
	count int64
}

// NewTraceReader validates the header and returns a reader.
func NewTraceReader(r io.Reader) (*TraceReader, error) {
	br := bufio.NewReader(r)
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("workload: reading trace header: %w", err)
	}
	if magic != traceMagic {
		return nil, ErrBadTrace
	}
	return &TraceReader{r: br}, nil
}

// Next returns the next access, or io.EOF at the end of the trace.
func (t *TraceReader) Next() (Access, error) {
	var rec [13]byte
	if _, err := io.ReadFull(t.r, rec[:]); err != nil {
		if err == io.EOF {
			return Access{}, io.EOF
		}
		return Access{}, fmt.Errorf("%w: truncated record", ErrBadTrace)
	}
	t.count++
	// Decode the gap through int64: on 32-bit platforms int(uint32) can
	// overflow into a negative gap, which the stream contract forbids.
	gap := int64(binary.LittleEndian.Uint32(rec[8:12]))
	if gap > int64(maxInt) {
		return Access{}, fmt.Errorf("%w: gap %d exceeds the platform int range", ErrBadTrace, gap)
	}
	return Access{
		Line:  binary.LittleEndian.Uint64(rec[0:8]),
		Gap:   int(gap),
		Write: rec[12]&1 != 0,
	}, nil
}

// maxInt is the largest value an int holds on this platform (2^31-1 on
// 32-bit targets, where a trace gap above it cannot be represented).
const maxInt = int(^uint(0) >> 1)

// Count returns the number of records read so far.
func (t *TraceReader) Count() int64 { return t.count }

// Record captures n accesses from a stream into w. It returns the
// number of records accepted; when a mid-stream write fails it flushes
// the records accepted before the failure — so w holds a valid trace
// prefix rather than losing a buffer's worth of tail — and returns the
// count alongside the error.
func Record(w io.Writer, s *Stream, n int) (int64, error) {
	tw, err := NewTraceWriter(w)
	if err != nil {
		return 0, err
	}
	for i := 0; i < n; i++ {
		if err := tw.Write(s.Next()); err != nil {
			// Best-effort flush of the accepted records; the write error
			// is the root cause, so it wins over any flush error.
			tw.Flush()
			return tw.Count(), err
		}
	}
	return tw.Count(), tw.Flush()
}
