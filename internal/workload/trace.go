package workload

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
)

// Trace recording and replay: a compact binary format for memory access
// streams, so that interesting workloads (including ones captured from
// other tools) can be replayed deterministically through the simulator
// instead of being regenerated.
//
// Format: an 8-byte header ("ARCCTRC1"), then one record per access:
//
//	uint64 line address
//	uint32 gap (instructions since the previous access)
//	uint8  flags (bit 0: write)
//
// all little-endian.

var traceMagic = [8]byte{'A', 'R', 'C', 'C', 'T', 'R', 'C', '1'}

// ErrBadTrace reports a malformed trace stream.
var ErrBadTrace = errors.New("workload: malformed trace")

// TraceWriter streams accesses into an io.Writer.
type TraceWriter struct {
	w     *bufio.Writer
	count int64
}

// NewTraceWriter writes the header and returns a writer.
func NewTraceWriter(w io.Writer) (*TraceWriter, error) {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(traceMagic[:]); err != nil {
		return nil, fmt.Errorf("workload: writing trace header: %w", err)
	}
	return &TraceWriter{w: bw}, nil
}

// Write appends one access.
func (t *TraceWriter) Write(a Access) error {
	var rec [13]byte
	binary.LittleEndian.PutUint64(rec[0:8], a.Line)
	if a.Gap < 0 || int64(a.Gap) > int64(^uint32(0)) {
		return fmt.Errorf("workload: gap %d does not fit the trace format", a.Gap)
	}
	binary.LittleEndian.PutUint32(rec[8:12], uint32(a.Gap))
	if a.Write {
		rec[12] = 1
	}
	if _, err := t.w.Write(rec[:]); err != nil {
		return fmt.Errorf("workload: writing trace record: %w", err)
	}
	t.count++
	return nil
}

// Count returns the number of records written.
func (t *TraceWriter) Count() int64 { return t.count }

// Flush drains buffered records to the underlying writer.
func (t *TraceWriter) Flush() error { return t.w.Flush() }

// TraceReader replays accesses from an io.Reader.
type TraceReader struct {
	r     *bufio.Reader
	count int64
}

// NewTraceReader validates the header and returns a reader.
func NewTraceReader(r io.Reader) (*TraceReader, error) {
	br := bufio.NewReader(r)
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("workload: reading trace header: %w", err)
	}
	if magic != traceMagic {
		return nil, ErrBadTrace
	}
	return &TraceReader{r: br}, nil
}

// Next returns the next access, or io.EOF at the end of the trace.
func (t *TraceReader) Next() (Access, error) {
	var rec [13]byte
	if _, err := io.ReadFull(t.r, rec[:]); err != nil {
		if err == io.EOF {
			return Access{}, io.EOF
		}
		return Access{}, fmt.Errorf("%w: truncated record", ErrBadTrace)
	}
	t.count++
	// Decode the gap through int64: on 32-bit platforms int(uint32) can
	// overflow into a negative gap, which the stream contract forbids.
	gap := int64(binary.LittleEndian.Uint32(rec[8:12]))
	if gap > int64(maxInt) {
		return Access{}, fmt.Errorf("%w: gap %d exceeds the platform int range", ErrBadTrace, gap)
	}
	return Access{
		Line:  binary.LittleEndian.Uint64(rec[0:8]),
		Gap:   int(gap),
		Write: rec[12]&1 != 0,
	}, nil
}

// maxInt is the largest value an int holds on this platform (2^31-1 on
// 32-bit targets, where a trace gap above it cannot be represented).
const maxInt = int(^uint(0) >> 1)

// Count returns the number of records read so far.
func (t *TraceReader) Count() int64 { return t.count }

// TraceSource replays a fully-loaded trace as a Source. Unlike the
// streaming TraceReader it holds the whole trace in memory, which buys the
// two properties multi-shard replay needs: deterministic rewind (Rewind
// returns the cursor to the first access, so every run over the source
// sees the identical sequence) and cheap clones (Clone shares the loaded
// access slice and gets an independent cursor, so each simulator core —
// and each Monte Carlo shard — replays the same trace without re-reading
// or re-decoding the file).
type TraceSource struct {
	accesses []Access // shared with clones; immutable after load
	pos      int
	wrapped  bool
}

// NewTraceSource wraps a loaded access sequence.
func NewTraceSource(accesses []Access) *TraceSource {
	if len(accesses) == 0 {
		panic("workload: empty trace source")
	}
	return &TraceSource{accesses: accesses}
}

// LoadTrace decodes a whole trace stream into a TraceSource.
func LoadTrace(r io.Reader) (*TraceSource, error) {
	accesses, err := ReadAll(r)
	if err != nil {
		return nil, err
	}
	if len(accesses) == 0 {
		return nil, fmt.Errorf("%w: trace holds no records", ErrBadTrace)
	}
	return NewTraceSource(accesses), nil
}

// LoadTraceFile decodes the trace file at path into a TraceSource.
func LoadTraceFile(path string) (*TraceSource, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("workload: opening trace: %w", err)
	}
	defer f.Close()
	src, err := LoadTrace(f)
	if err != nil {
		return nil, fmt.Errorf("workload: reading trace %s: %w", path, err)
	}
	return src, nil
}

// Next implements Source. Past the end of the trace it wraps to the
// beginning (Wrapped reports that it did).
func (t *TraceSource) Next() Access {
	a := t.accesses[t.pos]
	t.pos++
	if t.pos == len(t.accesses) {
		t.pos = 0
		t.wrapped = true
	}
	return a
}

// Rewind returns the cursor to the first access, so the next run over the
// source replays the identical sequence.
func (t *TraceSource) Rewind() {
	t.pos = 0
	t.wrapped = false
}

// Clone returns an independent cursor over the same loaded trace. Clones
// share the (immutable) access slice, so handing one to each simulator
// core or each shard of a fan-out costs no copying.
func (t *TraceSource) Clone() *TraceSource {
	return &TraceSource{accesses: t.accesses}
}

// Len returns the number of accesses in the trace.
func (t *TraceSource) Len() int { return len(t.accesses) }

// Wrapped reports whether replay has passed the end of the trace at least
// once since the last Rewind.
func (t *TraceSource) Wrapped() bool { return t.wrapped }

var _ Source = (*TraceSource)(nil)

// Record captures n accesses from a stream into w. It returns the
// number of records accepted; when a mid-stream write fails it flushes
// the records accepted before the failure — so w holds a valid trace
// prefix rather than losing a buffer's worth of tail — and returns the
// count alongside the error.
func Record(w io.Writer, s *Stream, n int) (int64, error) {
	tw, err := NewTraceWriter(w)
	if err != nil {
		return 0, err
	}
	for i := 0; i < n; i++ {
		if err := tw.Write(s.Next()); err != nil {
			// Best-effort flush of the accepted records; the write error
			// is the root cause, so it wins over any flush error.
			tw.Flush()
			return tw.Count(), err
		}
	}
	return tw.Count(), tw.Flush()
}
