package workload

import "fmt"

// spec returns the benchmark parameter table. Values are calibrated to the
// published memory behaviour of each benchmark: APKI approximates L2-access
// intensity, spatial locality separates streaming array codes from
// pointer-chasing codes, and footprints separate cache-resident from
// memory-resident working sets.
var spec = map[string]Benchmark{
	// Streaming, memory-intensive.
	"swim":       {Name: "swim", APKI: 28, SpatialLocality: 0.85, WriteFraction: 0.35, FootprintLines: 1 << 19, HotFraction: 0.05, HotWeight: 0.2},
	"lbm":        {Name: "lbm", APKI: 32, SpatialLocality: 0.88, WriteFraction: 0.45, FootprintLines: 1 << 19, HotFraction: 0.05, HotWeight: 0.1},
	"libquantum": {Name: "libquantum", APKI: 26, SpatialLocality: 0.92, WriteFraction: 0.25, FootprintLines: 1 << 18, HotFraction: 0.02, HotWeight: 0.05},
	"leslie3d":   {Name: "leslie3d", APKI: 21, SpatialLocality: 0.80, WriteFraction: 0.30, FootprintLines: 1 << 18, HotFraction: 0.05, HotWeight: 0.2},
	"GemsFDTD":   {Name: "GemsFDTD", APKI: 24, SpatialLocality: 0.75, WriteFraction: 0.30, FootprintLines: 1 << 19, HotFraction: 0.05, HotWeight: 0.2},
	"milc":       {Name: "milc", APKI: 23, SpatialLocality: 0.70, WriteFraction: 0.35, FootprintLines: 1 << 19, HotFraction: 0.05, HotWeight: 0.2},
	"lucas":      {Name: "lucas", APKI: 16, SpatialLocality: 0.65, WriteFraction: 0.20, FootprintLines: 1 << 18, HotFraction: 0.05, HotWeight: 0.3},
	"mgrid":      {Name: "mgrid", APKI: 17, SpatialLocality: 0.78, WriteFraction: 0.25, FootprintLines: 1 << 18, HotFraction: 0.05, HotWeight: 0.3},
	"applu":      {Name: "applu", APKI: 15, SpatialLocality: 0.72, WriteFraction: 0.30, FootprintLines: 1 << 18, HotFraction: 0.05, HotWeight: 0.3},
	"art110":     {Name: "art110", APKI: 30, SpatialLocality: 0.55, WriteFraction: 0.20, FootprintLines: 1 << 16, HotFraction: 0.2, HotWeight: 0.5},

	// Pointer-chasing / irregular, memory-intensive.
	"mcf2006": {Name: "mcf2006", APKI: 35, SpatialLocality: 0.15, WriteFraction: 0.25, FootprintLines: 1 << 20, HotFraction: 0.1, HotWeight: 0.4},
	"omnetpp": {Name: "omnetpp", APKI: 18, SpatialLocality: 0.20, WriteFraction: 0.35, FootprintLines: 1 << 19, HotFraction: 0.1, HotWeight: 0.5},
	"astar":   {Name: "astar", APKI: 12, SpatialLocality: 0.25, WriteFraction: 0.25, FootprintLines: 1 << 18, HotFraction: 0.1, HotWeight: 0.5},
	"soplex":  {Name: "soplex", APKI: 20, SpatialLocality: 0.45, WriteFraction: 0.25, FootprintLines: 1 << 19, HotFraction: 0.1, HotWeight: 0.4},
	"sphinx3": {Name: "sphinx3", APKI: 19, SpatialLocality: 0.50, WriteFraction: 0.15, FootprintLines: 1 << 18, HotFraction: 0.1, HotWeight: 0.4},

	// Moderate.
	"fma3d":   {Name: "fma3d", APKI: 9, SpatialLocality: 0.60, WriteFraction: 0.30, FootprintLines: 1 << 17, HotFraction: 0.1, HotWeight: 0.5},
	"apsi":    {Name: "apsi", APKI: 10, SpatialLocality: 0.55, WriteFraction: 0.30, FootprintLines: 1 << 17, HotFraction: 0.1, HotWeight: 0.5},
	"facerec": {Name: "facerec", APKI: 11, SpatialLocality: 0.65, WriteFraction: 0.20, FootprintLines: 1 << 17, HotFraction: 0.1, HotWeight: 0.5},
	"ammp":    {Name: "ammp", APKI: 8, SpatialLocality: 0.40, WriteFraction: 0.25, FootprintLines: 1 << 17, HotFraction: 0.15, HotWeight: 0.6},
	"wupwise": {Name: "wupwise", APKI: 7, SpatialLocality: 0.60, WriteFraction: 0.25, FootprintLines: 1 << 16, HotFraction: 0.15, HotWeight: 0.6},
	"gromacs": {Name: "gromacs", APKI: 5, SpatialLocality: 0.55, WriteFraction: 0.30, FootprintLines: 1 << 16, HotFraction: 0.2, HotWeight: 0.6},

	// Cache-friendly, compute-bound.
	"mesa":     {Name: "mesa", APKI: 3, SpatialLocality: 0.60, WriteFraction: 0.30, FootprintLines: 1 << 15, HotFraction: 0.25, HotWeight: 0.7},
	"calculix": {Name: "calculix", APKI: 2, SpatialLocality: 0.55, WriteFraction: 0.25, FootprintLines: 1 << 15, HotFraction: 0.25, HotWeight: 0.7},
	"sjeng":    {Name: "sjeng", APKI: 2.5, SpatialLocality: 0.30, WriteFraction: 0.25, FootprintLines: 1 << 16, HotFraction: 0.2, HotWeight: 0.7},
	"h264ref":  {Name: "h264ref", APKI: 2, SpatialLocality: 0.70, WriteFraction: 0.30, FootprintLines: 1 << 15, HotFraction: 0.25, HotWeight: 0.7},
}

// Mix is one multiprogrammed workload: four benchmarks, one per core.
type Mix struct {
	Name       string
	Benchmarks [4]Benchmark
}

// mixTable reproduces Table 7.3 (the thesis' "fma3di" is the fma3d entry).
var mixTable = [12][4]string{
	{"mesa", "leslie3d", "GemsFDTD", "fma3d"},
	{"omnetpp", "soplex", "apsi", "mesa"},
	{"sphinx3", "calculix", "omnetpp", "wupwise"},
	{"lucas", "gromacs", "swim", "fma3d"},
	{"mesa", "swim", "apsi", "sphinx3"},
	{"sjeng", "swim", "facerec", "ammp"},
	{"milc", "GemsFDTD", "leslie3d", "omnetpp"},
	{"facerec", "leslie3d", "ammp", "mgrid"},
	{"applu", "soplex", "mcf2006", "GemsFDTD"},
	{"mcf2006", "libquantum", "omnetpp", "astar"},
	{"calculix", "swim", "art110", "omnetpp"},
	{"lbm", "facerec", "h264ref", "ammp"},
}

// ByName returns the benchmark with the given SPEC name.
func ByName(name string) Benchmark {
	b, ok := spec[name]
	if !ok {
		panic(fmt.Sprintf("workload: unknown benchmark %q", name))
	}
	return b
}

// Mixes returns the 12 workload mixes of Table 7.3.
func Mixes() []Mix {
	out := make([]Mix, len(mixTable))
	for i, names := range mixTable {
		m := Mix{Name: fmt.Sprintf("Mix%d", i+1)}
		for j, n := range names {
			m.Benchmarks[j] = ByName(n)
		}
		out[i] = m
	}
	return out
}
