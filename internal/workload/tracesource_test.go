package workload

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// recordedTrace returns a buffer holding n recorded accesses of a benchmark.
func recordedTrace(t *testing.T, n int) *bytes.Buffer {
	t.Helper()
	var buf bytes.Buffer
	s := ByName("mcf2006").NewStream(7, 0)
	if _, err := Record(&buf, s, n); err != nil {
		t.Fatal(err)
	}
	return &buf
}

func TestTraceSourceReplaysAndWraps(t *testing.T) {
	const n = 200
	buf := recordedTrace(t, n)
	src, err := LoadTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if src.Len() != n {
		t.Fatalf("Len = %d, want %d", src.Len(), n)
	}

	ref := ByName("mcf2006").NewStream(7, 0)
	first := make([]Access, n)
	for i := 0; i < n; i++ {
		first[i] = src.Next()
		if want := ref.Next(); first[i] != want {
			t.Fatalf("access %d: %+v != %+v", i, first[i], want)
		}
	}
	if !src.Wrapped() {
		t.Fatal("source consumed exactly once should report wrapped")
	}
	// Past the end the source wraps to the beginning.
	if got := src.Next(); got != first[0] {
		t.Fatalf("wrap-around returned %+v, want %+v", got, first[0])
	}
}

func TestTraceSourceRewindAndClone(t *testing.T) {
	src, err := LoadTrace(bytes.NewReader(recordedTrace(t, 100).Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	a1, a2 := src.Next(), src.Next()

	// A clone starts at the beginning regardless of the parent's cursor.
	c := src.Clone()
	if got := c.Next(); got != a1 {
		t.Fatalf("clone first access %+v, want %+v", got, a1)
	}
	// Rewind replays the identical prefix.
	src.Rewind()
	if src.Wrapped() {
		t.Fatal("rewound source reports wrapped")
	}
	if got := src.Next(); got != a1 {
		t.Fatalf("post-rewind first access %+v, want %+v", got, a1)
	}
	if got := src.Next(); got != a2 {
		t.Fatalf("post-rewind second access %+v, want %+v", got, a2)
	}
	// Cursors are independent: the clone is still at position 1.
	if got := c.Next(); got != a2 {
		t.Fatalf("clone second access %+v, want %+v", got, a2)
	}
}

func TestLoadTraceFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.trc")
	if err := os.WriteFile(path, recordedTrace(t, 50).Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	src, err := LoadTraceFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if src.Len() != 50 {
		t.Fatalf("Len = %d, want 50", src.Len())
	}
	if _, err := LoadTraceFile(filepath.Join(t.TempDir(), "missing.trc")); err == nil {
		t.Fatal("missing file loaded without error")
	}
}

func TestLoadTraceRejectsEmptyAndGarbage(t *testing.T) {
	var empty bytes.Buffer
	tw, err := NewTraceWriter(&empty)
	if err != nil {
		t.Fatal(err)
	}
	if err := tw.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadTrace(bytes.NewReader(empty.Bytes())); err == nil {
		t.Fatal("header-only trace loaded without error")
	}
	if _, err := LoadTrace(bytes.NewReader([]byte("not a trace"))); err == nil {
		t.Fatal("garbage loaded without error")
	}
}

func TestTenantResolveAndMapping(t *testing.T) {
	// Overrides apply on top of the named profile.
	b, err := Tenant{Benchmark: "mcf2006", FootprintLines: 1 << 30, APKI: 99}.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	if b.FootprintLines != 1<<30 || b.APKI != 99 {
		t.Fatalf("overrides not applied: %+v", b)
	}
	base := ByName("mcf2006")
	b2, err := Tenant{Benchmark: "mcf2006"}.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	if b2.FootprintLines != base.FootprintLines || b2.APKI != base.APKI {
		t.Fatalf("zero overrides changed the profile: %+v vs %+v", b2, base)
	}

	if _, err := (Tenant{Benchmark: "nosuch"}).Resolve(); err == nil {
		t.Fatal("unknown benchmark resolved")
	}
	if _, err := (Tenant{Benchmark: "mcf2006", FootprintLines: -1}).Resolve(); err == nil {
		t.Fatal("negative footprint resolved")
	}

	// Round-robin mapping: two tenants alternate across the four cores.
	four, err := TenantBenchmarks([]Tenant{{Benchmark: "mcf2006"}, {Benchmark: "swim"}})
	if err != nil {
		t.Fatal(err)
	}
	if four[0].Name != "mcf2006/t0" || four[1].Name != "swim/t1" ||
		four[2].Name != "mcf2006/t0" || four[3].Name != "swim/t1" {
		t.Fatalf("round-robin mapping wrong: %v %v %v %v",
			four[0].Name, four[1].Name, four[2].Name, four[3].Name)
	}
	if _, err := TenantBenchmarks(nil); err == nil {
		t.Fatal("zero tenants accepted")
	}
	if _, err := TenantBenchmarks(make([]Tenant, 5)); err == nil {
		t.Fatal("five tenants accepted")
	}
}
