package workload

import "fmt"

// Tenant describes one tenant of a multi-tenant interference mix: a named
// benchmark profile with optional per-tenant overrides. Cloud/HPC nodes
// rarely run the neat four-benchmark mixes of Table 7.3 — they co-schedule
// tenants with wildly different footprints on shared last-level caches,
// and the interference is the point. The scenario layer passes tenants
// straight from JSON, so a new interference study is data, not code.
type Tenant struct {
	// Benchmark names the base profile (a Table 7.3 SPEC stand-in name,
	// e.g. "mcf2006").
	Benchmark string `json:"benchmark"`
	// FootprintLines overrides the profile's working-set size in 64 B
	// lines (0 keeps the profile value). Terabyte-scale footprints are
	// fine: the simulator tracks addresses, and the functional core's
	// sparse store materialises only touched pages.
	FootprintLines int `json:"footprint_lines,omitempty"`
	// APKI overrides the profile's accesses-per-kilo-instruction
	// (0 keeps the profile value).
	APKI float64 `json:"apki,omitempty"`
}

// Resolve returns the tenant's effective benchmark profile.
func (t Tenant) Resolve() (Benchmark, error) {
	b, ok := spec[t.Benchmark]
	if !ok {
		return Benchmark{}, fmt.Errorf("workload: unknown tenant benchmark %q", t.Benchmark)
	}
	if t.FootprintLines < 0 || t.APKI < 0 {
		return Benchmark{}, fmt.Errorf("workload: tenant %q has negative overrides", t.Benchmark)
	}
	if t.FootprintLines > 0 {
		b.FootprintLines = t.FootprintLines
	}
	if t.APKI > 0 {
		b.APKI = t.APKI
	}
	return b, nil
}

// TenantBenchmarks maps 1-4 tenants onto the simulator's four cores,
// round-robin: a single tenant occupies all four cores (four instances
// with disjoint address regions), two tenants alternate, and so on. The
// per-core benchmark name is suffixed with the core index so result tables
// stay readable.
func TenantBenchmarks(tenants []Tenant) ([4]Benchmark, error) {
	var out [4]Benchmark
	if len(tenants) == 0 || len(tenants) > 4 {
		return out, fmt.Errorf("workload: %d tenants (want 1-4)", len(tenants))
	}
	for i := range out {
		b, err := tenants[i%len(tenants)].Resolve()
		if err != nil {
			return out, err
		}
		b.Name = fmt.Sprintf("%s/t%d", b.Name, i%len(tenants))
		out[i] = b
	}
	return out, nil
}
