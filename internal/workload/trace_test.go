package workload

import (
	"bytes"
	"io"
	"testing"
)

func TestTraceRoundTrip(t *testing.T) {
	s := ByName("swim").NewStream(1, 1000)
	var buf bytes.Buffer
	const n = 5000
	count, err := Record(&buf, s, n)
	if err != nil {
		t.Fatal(err)
	}
	if count != n {
		t.Fatalf("recorded %d accesses, want %d", count, n)
	}

	// Replaying must reproduce the identical access sequence.
	ref := ByName("swim").NewStream(1, 1000)
	tr, err := NewTraceReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		got, err := tr.Next()
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if want := ref.Next(); got != want {
			t.Fatalf("record %d: %+v != %+v", i, got, want)
		}
	}
	if _, err := tr.Next(); err != io.EOF {
		t.Fatalf("expected EOF, got %v", err)
	}
	if tr.Count() != n {
		t.Fatalf("count %d, want %d", tr.Count(), n)
	}
}

func TestTraceReaderRejectsBadHeader(t *testing.T) {
	if _, err := NewTraceReader(bytes.NewReader([]byte("NOTATRACE"))); err == nil {
		t.Fatal("bad magic accepted")
	}
	if _, err := NewTraceReader(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty stream accepted")
	}
}

func TestTraceReaderRejectsTruncatedRecord(t *testing.T) {
	var buf bytes.Buffer
	tw, err := NewTraceWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := tw.Write(Access{Line: 1, Gap: 2}); err != nil {
		t.Fatal(err)
	}
	if err := tw.Flush(); err != nil {
		t.Fatal(err)
	}
	// Chop the last record in half.
	data := buf.Bytes()[:buf.Len()-5]
	tr, err := NewTraceReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Next(); err == nil {
		t.Fatal("truncated record accepted")
	}
}

func TestTraceWriterCountsAndFlags(t *testing.T) {
	var buf bytes.Buffer
	tw, err := NewTraceWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	accesses := []Access{
		{Line: 42, Gap: 7, Write: true},
		{Line: 1 << 40, Gap: 1, Write: false},
	}
	for _, a := range accesses {
		if err := tw.Write(a); err != nil {
			t.Fatal(err)
		}
	}
	if tw.Count() != 2 {
		t.Fatalf("count %d", tw.Count())
	}
	if err := tw.Flush(); err != nil {
		t.Fatal(err)
	}
	tr, err := NewTraceReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range accesses {
		got, err := tr.Next()
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("record %d: %+v != %+v", i, got, want)
		}
	}
}

func TestTraceWriterRejectsOversizeGap(t *testing.T) {
	var buf bytes.Buffer
	tw, err := NewTraceWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := tw.Write(Access{Gap: 1 << 40}); err == nil {
		t.Fatal("oversize gap accepted")
	}
}

func TestReplaySourceWrapsAndReadAll(t *testing.T) {
	var buf bytes.Buffer
	s := ByName("mesa").NewStream(9, 0)
	if _, err := Record(&buf, s, 10); err != nil {
		t.Fatal(err)
	}
	accesses, err := ReadAll(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(accesses) != 10 {
		t.Fatalf("ReadAll returned %d accesses", len(accesses))
	}
	rs := NewReplaySource(accesses)
	if rs.Len() != 10 || rs.Wrapped() {
		t.Fatal("fresh replay source state wrong")
	}
	for i := 0; i < 10; i++ {
		if got := rs.Next(); got != accesses[i] {
			t.Fatalf("replay %d diverged", i)
		}
	}
	if !rs.Wrapped() {
		t.Fatal("source should report wrap after consuming the trace")
	}
	if got := rs.Next(); got != accesses[0] {
		t.Fatal("wrap did not restart the trace")
	}
}

// TestTraceGapBoundaryRoundTrip pins the gap decode path at the format's
// boundary values: the maximum encodable gap must survive a round trip
// as a non-negative int on every platform (the old int(uint32) decode
// went negative on 32-bit targets).
func TestTraceGapBoundaryRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	tw, err := NewTraceWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	gaps := []int{0, 1, 1<<31 - 1}
	if uint64(maxInt) > 1<<31 {
		// 64-bit platforms can also exercise the full uint32 range.
		// Route through uint32 variables so the literals stay legal on
		// 32-bit builds, where these values do not fit an int constant.
		hi := uint32(1) << 31
		all := ^uint32(0)
		gaps = append(gaps, int(hi), int(all))
	}
	for _, g := range gaps {
		if err := tw.Write(Access{Line: uint64(g), Gap: g}); err != nil {
			t.Fatalf("gap %d rejected: %v", g, err)
		}
	}
	if err := tw.Flush(); err != nil {
		t.Fatal(err)
	}
	tr, err := NewTraceReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range gaps {
		got, err := tr.Next()
		if err != nil {
			t.Fatalf("gap %d: %v", want, err)
		}
		if got.Gap != want {
			t.Fatalf("gap round trip: got %d, want %d", got.Gap, want)
		}
		if got.Gap < 0 {
			t.Fatalf("gap %d decoded negative", want)
		}
	}
}

// failAfterWriter accepts limit bytes, then fails every write.
type failAfterWriter struct {
	limit   int
	written bytes.Buffer
}

func (f *failAfterWriter) Write(p []byte) (int, error) {
	if f.written.Len()+len(p) > f.limit {
		return 0, io.ErrClosedPipe
	}
	return f.written.Write(p)
}

// TestRecordFlushesOnMidStreamFailure: when the underlying writer dies
// mid-recording, Record must report the failure together with how many
// records it accepted, and must have attempted to flush them rather than
// silently dropping a buffer's worth of tail.
func TestRecordFlushesOnMidStreamFailure(t *testing.T) {
	// Room for the header plus a few thousand records, then failure well
	// before the requested count. bufio's default 4 KiB buffer means the
	// failure surfaces on a flush boundary, not on the exact record.
	fw := &failAfterWriter{limit: 8 + 13*3000}
	s := ByName("swim").NewStream(1, 1000)
	count, err := Record(fw, s, 100_000)
	if err == nil {
		t.Fatal("mid-stream write failure not reported")
	}
	if count <= 0 || count >= 100_000 {
		t.Fatalf("accepted-record count %d not in (0, n)", count)
	}
	// Whatever reached the writer must be a readable trace prefix.
	tr, err := NewTraceReader(bytes.NewReader(fw.written.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	read := int64(0)
	ref := ByName("swim").NewStream(1, 1000)
	for {
		got, err := tr.Next()
		if err != nil {
			break // EOF or the torn final record
		}
		if want := ref.Next(); got != want {
			t.Fatalf("record %d diverged after partial flush", read)
		}
		read++
	}
	if read == 0 {
		t.Fatal("no records survived the flush")
	}
	if read > count {
		t.Fatalf("reader found %d records but only %d were accepted", read, count)
	}
}

func TestNewReplaySourcePanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewReplaySource(nil)
}
