package workload

import (
	"bytes"
	"io"
	"testing"
)

func TestTraceRoundTrip(t *testing.T) {
	s := ByName("swim").NewStream(1, 1000)
	var buf bytes.Buffer
	const n = 5000
	if err := Record(&buf, s, n); err != nil {
		t.Fatal(err)
	}

	// Replaying must reproduce the identical access sequence.
	ref := ByName("swim").NewStream(1, 1000)
	tr, err := NewTraceReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		got, err := tr.Next()
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if want := ref.Next(); got != want {
			t.Fatalf("record %d: %+v != %+v", i, got, want)
		}
	}
	if _, err := tr.Next(); err != io.EOF {
		t.Fatalf("expected EOF, got %v", err)
	}
	if tr.Count() != n {
		t.Fatalf("count %d, want %d", tr.Count(), n)
	}
}

func TestTraceReaderRejectsBadHeader(t *testing.T) {
	if _, err := NewTraceReader(bytes.NewReader([]byte("NOTATRACE"))); err == nil {
		t.Fatal("bad magic accepted")
	}
	if _, err := NewTraceReader(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty stream accepted")
	}
}

func TestTraceReaderRejectsTruncatedRecord(t *testing.T) {
	var buf bytes.Buffer
	tw, err := NewTraceWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := tw.Write(Access{Line: 1, Gap: 2}); err != nil {
		t.Fatal(err)
	}
	if err := tw.Flush(); err != nil {
		t.Fatal(err)
	}
	// Chop the last record in half.
	data := buf.Bytes()[:buf.Len()-5]
	tr, err := NewTraceReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Next(); err == nil {
		t.Fatal("truncated record accepted")
	}
}

func TestTraceWriterCountsAndFlags(t *testing.T) {
	var buf bytes.Buffer
	tw, err := NewTraceWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	accesses := []Access{
		{Line: 42, Gap: 7, Write: true},
		{Line: 1 << 40, Gap: 1, Write: false},
	}
	for _, a := range accesses {
		if err := tw.Write(a); err != nil {
			t.Fatal(err)
		}
	}
	if tw.Count() != 2 {
		t.Fatalf("count %d", tw.Count())
	}
	if err := tw.Flush(); err != nil {
		t.Fatal(err)
	}
	tr, err := NewTraceReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range accesses {
		got, err := tr.Next()
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("record %d: %+v != %+v", i, got, want)
		}
	}
}

func TestTraceWriterRejectsOversizeGap(t *testing.T) {
	var buf bytes.Buffer
	tw, err := NewTraceWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := tw.Write(Access{Gap: 1 << 40}); err == nil {
		t.Fatal("oversize gap accepted")
	}
}

func TestReplaySourceWrapsAndReadAll(t *testing.T) {
	var buf bytes.Buffer
	s := ByName("mesa").NewStream(9, 0)
	if err := Record(&buf, s, 10); err != nil {
		t.Fatal(err)
	}
	accesses, err := ReadAll(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(accesses) != 10 {
		t.Fatalf("ReadAll returned %d accesses", len(accesses))
	}
	rs := NewReplaySource(accesses)
	if rs.Len() != 10 || rs.Wrapped() {
		t.Fatal("fresh replay source state wrong")
	}
	for i := 0; i < 10; i++ {
		if got := rs.Next(); got != accesses[i] {
			t.Fatalf("replay %d diverged", i)
		}
	}
	if !rs.Wrapped() {
		t.Fatal("source should report wrap after consuming the trace")
	}
	if got := rs.Next(); got != accesses[0] {
		t.Fatal("wrap did not restart the trace")
	}
}

func TestNewReplaySourcePanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewReplaySource(nil)
}
