package reliability

import (
	"math"
	"reflect"
	"runtime"
	"testing"

	"arcc/internal/faultmodel"
	"arcc/internal/mc"
)

func TestParseAccel(t *testing.T) {
	for spec, want := range map[string]Accel{
		"":            {},
		"none":        {},
		"conditional": {Mode: AccelConditional},
		"tilt:8":      {Mode: AccelTilted, Tilt: 8},
		"tilt:2.5":    {Mode: AccelTilted, Tilt: 2.5},
	} {
		got, err := ParseAccel(spec)
		if err != nil || got != want {
			t.Fatalf("ParseAccel(%q) = %v, %v; want %v", spec, got, err, want)
		}
		if spec != "" {
			back, err := ParseAccel(got.String())
			if err != nil || back != got {
				t.Fatalf("String round trip of %q: %v, %v", spec, back, err)
			}
		}
	}
	for _, bad := range []string{"tilt:0", "tilt:-3", "tilt:x", "tilt:", "boost", "conditional:2"} {
		if _, err := ParseAccel(bad); err == nil {
			t.Fatalf("ParseAccel(%q) accepted", bad)
		}
	}
}

// TestStatsAccelNoneBitIdentical: with plain sampling the stats path must
// reproduce the legacy functions bit for bit — same samplers, same series
// math, same shard-ordered additions — at more than one parallelism.
func TestStatsAccelNoneBitIdentical(t *testing.T) {
	shape := faultmodel.ARCCChannelShape()
	rates := faultmodel.FieldStudyRates().Scale(4)
	ov := WorstCaseOverheads(shape, 2.0)
	for _, par := range []int{1, 4} {
		opts := mc.Options{Parallelism: par}
		plainF := FaultyPageFraction(11, opts, rates, shape, 2, 36, 5, 700)
		statsF, err := FaultyPageFractionStats(11, opts, rates, shape, 2, 36, 5, 700, Accel{})
		if err != nil {
			t.Fatal(err)
		}
		plainO := LifetimeOverhead(12, opts, rates, 2, 36, 5, 700, ov, 1.0)
		statsO, err := LifetimeOverheadStats(12, opts, rates, 2, 36, 5, 700, ov, 1.0, Accel{})
		if err != nil {
			t.Fatal(err)
		}
		for y := 0; y < 5; y++ {
			if math.Float64bits(statsF.Mean[y]) != math.Float64bits(plainF[y]) {
				t.Fatalf("par %d year %d: faulty-fraction stats mean %v != plain %v", par, y+1, statsF.Mean[y], plainF[y])
			}
			if math.Float64bits(statsO.Mean[y]) != math.Float64bits(plainO[y]) {
				t.Fatalf("par %d year %d: overhead stats mean %v != plain %v", par, y+1, statsO.Mean[y], plainO[y])
			}
		}
		if statsO.FinalSketch == nil || statsO.FinalSketch.N != 700 {
			t.Fatal("plain-sampling run should sketch the final year")
		}
		if math.Abs(statsO.ESS-700) > 1e-6 {
			t.Fatalf("unit-weight ESS = %v, want 700", statsO.ESS)
		}
		if statsO.CI95[4] <= 0 {
			t.Fatal("final-year CI should be positive")
		}
	}
}

// TestStatsAccelDeterministicAcrossParallelism: the full accelerated
// result must be identical at any worker count.
func TestStatsAccelDeterministicAcrossParallelism(t *testing.T) {
	shape := faultmodel.ARCCChannelShape()
	ov := WorstCaseOverheads(shape, 2.0)
	rates := faultmodel.FieldStudyRates()
	for _, accel := range []Accel{{Mode: AccelConditional}, {Mode: AccelTilted, Tilt: 8}} {
		base, err := LifetimeOverheadStats(21, mc.Options{Parallelism: 1}, rates, 2, 36, 5, 900, ov, 1.0, accel)
		if err != nil {
			t.Fatal(err)
		}
		for _, par := range []int{4, runtime.GOMAXPROCS(0)} {
			got, err := LifetimeOverheadStats(21, mc.Options{Parallelism: par}, rates, 2, 36, 5, 900, ov, 1.0, accel)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(base, got) {
				t.Fatalf("%v at parallelism %d differs from serial run", accel, par)
			}
		}
	}
}

// TestStatsAccelEquivalence: accelerated and plain estimates of the same
// quantity must agree within their combined confidence intervals.
func TestStatsAccelEquivalence(t *testing.T) {
	shape := faultmodel.ARCCChannelShape()
	ov := WorstCaseOverheads(shape, 2.0)
	rates := faultmodel.FieldStudyRates()
	plain, err := LifetimeOverheadStats(31, mc.Options{}, rates, 2, 18, 7, 20000, ov, 3.0, Accel{})
	if err != nil {
		t.Fatal(err)
	}
	for _, accel := range []Accel{{Mode: AccelConditional}, {Mode: AccelTilted, Tilt: 4}} {
		acc, err := LifetimeOverheadStats(32, mc.Options{}, rates, 2, 18, 7, 20000, ov, 3.0, accel)
		if err != nil {
			t.Fatal(err)
		}
		for y := 0; y < 7; y++ {
			diff := math.Abs(acc.Mean[y] - plain.Mean[y])
			tol := 3 * math.Sqrt(plain.CI95[y]*plain.CI95[y]+acc.CI95[y]*acc.CI95[y])
			if diff > tol && diff > 1e-12 {
				t.Fatalf("%v year %d: |%v - %v| = %v exceeds %v", accel, y+1, acc.Mean[y], plain.Mean[y], diff, tol)
			}
		}
		if acc.FinalSketch != nil {
			t.Fatalf("%v: weighted run must not sketch raw observations", accel)
		}
	}
}

// TestConditionalVarianceReduction is the acceptance criterion of the
// acceleration work: at genuinely rare fault rates, conditional sampling
// must reach a target CI half-width with at least 10x fewer trials than
// plain sampling. CI half-width scales as sigma/sqrt(n), so at equal
// trial counts the squared CI ratio is the trial-count ratio to equal
// precision.
func TestConditionalVarianceReduction(t *testing.T) {
	shape := faultmodel.ARCCChannelShape()
	ov := WorstCaseOverheads(shape, 2.0)
	rates := faultmodel.FieldStudyRates().Scale(0.05) // P(any fault in 7y) ~ 0.7%
	const channels = 4000
	plain, err := LifetimeOverheadStats(41, mc.Options{}, rates, 2, 18, 7, channels, ov, 3.0, Accel{})
	if err != nil {
		t.Fatal(err)
	}
	cond, err := LifetimeOverheadStats(42, mc.Options{}, rates, 2, 18, 7, channels, ov, 3.0, Accel{Mode: AccelConditional})
	if err != nil {
		t.Fatal(err)
	}
	y := 6 // final year
	if plain.CI95[y] == 0 {
		t.Fatal("plain run saw no faults at all; cannot compare variances")
	}
	gain := (plain.CI95[y] / cond.CI95[y]) * (plain.CI95[y] / cond.CI95[y])
	if gain < 10 {
		t.Fatalf("conditional acceleration gains only %.1fx (plain CI %v, conditional CI %v)", gain, plain.CI95[y], cond.CI95[y])
	}
	t.Logf("conditional acceleration: %.0fx fewer trials to equal CI (plain CI %.3g, conditional CI %.3g)",
		gain, plain.CI95[y], cond.CI95[y])
}

func TestConditionalZeroRateIsError(t *testing.T) {
	shape := faultmodel.ARCCChannelShape()
	_, err := FaultyPageFractionStats(1, mc.Options{}, faultmodel.Rates{}, shape, 2, 36, 5, 100, Accel{Mode: AccelConditional})
	if err == nil {
		t.Fatal("conditioning on an impossible event should be an error")
	}
}

func TestAccelValidate(t *testing.T) {
	for _, bad := range []Accel{
		{Mode: AccelTilted},
		{Mode: AccelTilted, Tilt: -1},
		{Mode: AccelTilted, Tilt: math.Inf(1)},
		{Mode: AccelMode(99)},
	} {
		if bad.Validate() == nil {
			t.Fatalf("%+v validated", bad)
		}
	}
}

// BenchmarkLifetimeOverheadStatsConditional measures the accelerated
// estimator at rare field rates; compare against
// BenchmarkLifetimeOverheadSerial for the per-trial cost and against
// TestConditionalVarianceReduction for the trials-to-precision gain.
func BenchmarkLifetimeOverheadStatsConditional(b *testing.B) {
	shape := faultmodel.ARCCChannelShape()
	ov := WorstCaseOverheads(shape, 2.0)
	rates := faultmodel.FieldStudyRates().Scale(0.05)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := LifetimeOverheadStats(1, mc.Options{Parallelism: 1}, rates, 2, 18, 7, 2000, ov, 3.0, Accel{Mode: AccelConditional}); err != nil {
			b.Fatal(err)
		}
	}
}
