package reliability

import (
	"runtime"
	"testing"

	"arcc/internal/faultmodel"
	"arcc/internal/mc"
)

// The engine contract: for a fixed seed, every reliability Monte Carlo
// must produce bit-identical output at any parallelism. Serial
// (parallelism 1) is the reference.
func TestReliabilityDeterministicAcrossParallelism(t *testing.T) {
	shape := faultmodel.ARCCChannelShape()
	rates := faultmodel.FieldStudyRates().Scale(100)
	ov := WorstCaseOverheads(shape, 2)
	inflated := DefaultParams()
	inflated.Rates = inflated.Rates.Scale(3000)
	inflated.LifeYears = 1

	cases := []struct {
		name string
		run  func(opts mc.Options) []float64
	}{
		{"FaultyPageFraction", func(opts mc.Options) []float64 {
			return FaultyPageFraction(11, opts, rates, shape, 2, 36, 5, 700)
		}},
		{"LifetimeOverhead", func(opts mc.Options) []float64 {
			return LifetimeOverhead(12, opts, rates, 2, 36, 5, 700, ov, 1.0)
		}},
		{"SimulateARCCDED", func(opts mc.Options) []float64 {
			return []float64{float64(SimulateARCCDED(13, opts, inflated, 700))}
		}},
	}
	parallelisms := []int{1, 4, runtime.NumCPU()}
	for _, tc := range cases {
		want := tc.run(mc.Options{Parallelism: 1})
		for _, par := range parallelisms {
			got := tc.run(mc.Options{Parallelism: par})
			for i := range want {
				if got[i] != want[i] {
					t.Errorf("%s: parallelism %d year %d = %v, want bit-identical %v",
						tc.name, par, i+1, got[i], want[i])
				}
			}
		}
	}
}

// benchOverheadRun executes the Fig 7.4 worst-case Monte Carlo once, at a
// volume large enough for the worker pool to matter.
func benchOverheadRun(opts mc.Options) []float64 {
	shape := faultmodel.ARCCChannelShape()
	rates := faultmodel.FieldStudyRates().Scale(4)
	ov := WorstCaseOverheads(shape, 2)
	return LifetimeOverhead(1, opts, rates, 2, 36, 7, 20000, ov, 1.0)
}

func BenchmarkLifetimeOverheadSerial(b *testing.B) {
	for i := 0; i < b.N; i++ {
		benchOverheadRun(mc.Options{Parallelism: 1})
	}
}

// BenchmarkLifetimeOverheadParallel is the acceptance benchmark for the
// sharded engine: 8 workers over the same shard structure as the serial
// run. On a machine with >= 8 cores it runs >= 3x faster than
// BenchmarkLifetimeOverheadSerial while producing bit-identical output
// (asserted here, not just in the unit tests).
func BenchmarkLifetimeOverheadParallel(b *testing.B) {
	var got []float64
	for i := 0; i < b.N; i++ {
		got = benchOverheadRun(mc.Options{Parallelism: 8})
	}
	b.StopTimer()
	want := benchOverheadRun(mc.Options{Parallelism: 1})
	for i := range want {
		if got[i] != want[i] {
			b.Fatalf("parallel output diverged from serial at year %d: %v != %v", i+1, got[i], want[i])
		}
	}
}
