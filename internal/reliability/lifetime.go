package reliability

import (
	"context"
	"encoding/binary"
	"fmt"
	"math"
	"math/rand"

	"arcc/internal/faultmodel"
	"arcc/internal/mc"
)

// yearSums accumulates per-year sums over the Monte Carlo channels of one
// shard; Merge adds element-wise, so the shard-ordered fold of the engine
// reproduces a serial summation bit for bit.
type yearSums struct {
	sums []float64
}

func newYearSums(years int) func() mc.Accumulator {
	return func() mc.Accumulator { return &yearSums{sums: make([]float64, years)} }
}

func (a *yearSums) Merge(other mc.Accumulator) {
	o := other.(*yearSums)
	for i, v := range o.sums {
		a.sums[i] += v
	}
}

// MarshalBinary makes the lifetime Monte Carlos checkpointable (see
// mc.CheckpointConfig): the per-year sums are stored as raw IEEE-754
// bits, so the round trip is exact and a resumed sweep reproduces an
// uninterrupted one bit for bit.
func (a *yearSums) MarshalBinary() ([]byte, error) {
	out := make([]byte, 8*len(a.sums))
	for i, v := range a.sums {
		binary.LittleEndian.PutUint64(out[8*i:], math.Float64bits(v))
	}
	return out, nil
}

// UnmarshalBinary restores a shard's per-year sums from MarshalBinary
// bytes. The accumulator must have been created for the same year count.
func (a *yearSums) UnmarshalBinary(b []byte) error {
	if len(b) != 8*len(a.sums) {
		return fmt.Errorf("reliability: year-sums snapshot holds %d bytes, want %d", len(b), 8*len(a.sums))
	}
	for i := range a.sums {
		a.sums[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[8*i:]))
	}
	return nil
}

// arrivalScratch is the per-shard workspace of the lifetime Monte Carlos:
// one fault-arrival buffer plus one per-year series buffer, reused by
// every trial of a shard. Both only carry capacity between trials —
// SampleArrivalsInto overwrites the arrival buffer from scratch and the
// series helpers overwrite every year slot — so reuse cannot leak state
// across trials.
type arrivalScratch struct {
	buf    []faultmodel.Arrival
	series []float64
}

// newArrivalScratch sizes the per-shard buffer for the channel geometry so
// the steady state samples without reallocating. tiltHint scales the
// arrival capacity for rate-tilted sampling (1 for plain sampling).
func newArrivalScratch(rates faultmodel.Rates, ranks, devicesPerRank int, years float64, tiltHint float64) func() any {
	hint := faultmodel.ArrivalCapHint(rates, ranks, devicesPerRank, years)
	if tiltHint > 1 {
		hint = int(float64(hint) * tiltHint)
	}
	yearBuf := int(years)
	return func() any {
		return &arrivalScratch{
			buf:    make([]faultmodel.Arrival, 0, hint),
			series: make([]float64, yearBuf),
		}
	}
}

// faultyPageSeries writes one channel's per-year faulty-page fraction
// into series (len == years): the union bound over the faults that have
// arrived by the end of each year, capped at 1. Fault spans are large and
// disjointness dominates at these counts, so the cap only binds for
// multi-fault channels with lane faults.
func faultyPageSeries(arrivals []faultmodel.Arrival, shape faultmodel.ChannelShape, years int, series []float64) {
	idx := 0
	frac := 0.0
	for y := 1; y <= years; y++ {
		limit := float64(y) * faultmodel.HoursPerYear
		for idx < len(arrivals) && arrivals[idx].AtHours <= limit {
			frac += shape.UpgradedFraction(arrivals[idx].Type)
			idx++
		}
		if frac > 1 {
			series[y-1] = 1
		} else {
			series[y-1] = frac
		}
	}
}

// overheadSeries writes one channel's per-year time-averaged overhead
// into series (len == years): the overhead step function — additive per
// fault from its arrival onward, capped at cap — integrated from
// power-on through the end of each year and divided by the elapsed
// hours.
func overheadSeries(arrivals []faultmodel.Arrival, overhead OverheadByType, cap float64, years int, series []float64) {
	integrated := 0.0 // overhead-hours accumulated so far
	current := 0.0
	lastT := 0.0
	idx := 0
	for y := 1; y <= years; y++ {
		limit := float64(y) * faultmodel.HoursPerYear
		for idx < len(arrivals) && arrivals[idx].AtHours <= limit {
			arr := arrivals[idx]
			integrated += current * (arr.AtHours - lastT)
			lastT = arr.AtHours
			if ov, ok := overhead[arr.Type]; ok {
				current += ov
				if current > cap {
					current = cap
				}
			}
			idx++
		}
		integrated += current * (limit - lastT)
		lastT = limit
		series[y-1] = integrated / limit
	}
}

// FaultyPageFraction reproduces Fig 3.1: the average fraction of a
// channel's 4 KB pages that has been affected by at least one fault, as a
// function of operational lifespan, under the worst-case assumption that
// every location under faulty circuitry is corrupted. It Monte Carlo
// averages over channels — sharded across workers per opts, bit-identical
// at any parallelism for a given seed — and returns one value per year
// 1..years.
func FaultyPageFraction(seed int64, opts mc.Options, rates faultmodel.Rates, shape faultmodel.ChannelShape,
	ranks, devicesPerRank int, years, channels int) []float64 {
	out, err := FaultyPageFractionCtx(context.Background(), seed, opts, rates, shape, ranks, devicesPerRank, years, channels)
	if err != nil {
		panic(err) // a background context never cancels
	}
	return out
}

// FaultyPageFractionCtx is FaultyPageFraction under a context: a
// cancelled context returns (nil, mc.ErrCanceled) within one shard
// boundary instead of completing the fan-out.
func FaultyPageFractionCtx(ctx context.Context, seed int64, opts mc.Options, rates faultmodel.Rates, shape faultmodel.ChannelShape,
	ranks, devicesPerRank int, years, channels int) ([]float64, error) {
	return FaultyPageFractionBurstCtx(ctx, seed, opts, rates, faultmodel.Burst{}, shape, ranks, devicesPerRank, years, channels)
}

// FaultyPageFractionBurstCtx is FaultyPageFractionCtx under a correlated
// fault-burst model: each sampled history is expanded by burst before the
// per-year series is evaluated. A zero burst consumes no randomness, so
// the result is bit-identical to FaultyPageFractionCtx.
func FaultyPageFractionBurstCtx(ctx context.Context, seed int64, opts mc.Options, rates faultmodel.Rates, burst faultmodel.Burst,
	shape faultmodel.ChannelShape, ranks, devicesPerRank int, years, channels int) ([]float64, error) {
	if years <= 0 || channels <= 0 {
		panic("reliability: invalid years/channels")
	}
	if err := burst.Validate(); err != nil {
		return nil, err
	}
	acc, err := mc.RunCtx(ctx, mc.Job{
		Trials:     channels,
		Seed:       seed,
		NewAcc:     newYearSums(years),
		NewScratch: newArrivalScratch(rates, ranks, devicesPerRank, float64(years), burst.CapHintFactor()),
		TrialScratch: func(rng *rand.Rand, _ int, a mc.Accumulator, sc any) {
			sums := a.(*yearSums).sums
			scratch := sc.(*arrivalScratch)
			arrivals := faultmodel.SampleArrivalsInto(rng, scratch.buf, rates, ranks, devicesPerRank, float64(years))
			arrivals = burst.ExpandInto(rng, arrivals)
			scratch.buf = arrivals
			faultyPageSeries(arrivals, shape, years, scratch.series)
			for i, v := range scratch.series {
				sums[i] += v
			}
		},
	}, opts)
	if err != nil {
		return nil, err
	}
	sums := acc.(*yearSums).sums
	for i := range sums {
		sums[i] /= float64(channels)
	}
	return sums, nil
}

// OverheadByType maps the large-span fault types to the overhead (power
// increase or performance decrease, as a fraction) a channel suffers once
// that fault's pages are upgraded — the per-fault measurements of
// Figs 7.2/7.3 feed in here.
type OverheadByType map[faultmodel.Type]float64

// LifetimeOverhead reproduces the Fig 7.4/7.5 methodology: Monte Carlo over
// channels channels, each accumulating the overhead of every fault from its
// arrival time onward (additive per fault, capped at cap — the overhead of
// a fully-upgraded memory). For each year X it reports the overhead
// time-averaged from power-on through the end of year X, averaged over
// channels. Channels are sharded across workers per opts; the result is
// bit-identical at any parallelism for a given seed.
func LifetimeOverhead(seed int64, opts mc.Options, rates faultmodel.Rates, ranks, devicesPerRank int,
	years, channels int, overhead OverheadByType, cap float64) []float64 {
	out, err := LifetimeOverheadCtx(context.Background(), seed, opts, rates, ranks, devicesPerRank, years, channels, overhead, cap)
	if err != nil {
		panic(err) // a background context never cancels
	}
	return out
}

// LifetimeOverheadCtx is LifetimeOverhead under a context: a cancelled
// context returns (nil, mc.ErrCanceled) within one shard boundary instead
// of completing the fan-out.
func LifetimeOverheadCtx(ctx context.Context, seed int64, opts mc.Options, rates faultmodel.Rates, ranks, devicesPerRank int,
	years, channels int, overhead OverheadByType, cap float64) ([]float64, error) {
	return LifetimeOverheadBurstCtx(ctx, seed, opts, rates, faultmodel.Burst{}, ranks, devicesPerRank, years, channels, overhead, cap)
}

// LifetimeOverheadBurstCtx is LifetimeOverheadCtx under a correlated
// fault-burst model: each sampled history is expanded by burst before the
// overhead series is evaluated. A zero burst consumes no randomness, so
// the result is bit-identical to LifetimeOverheadCtx.
func LifetimeOverheadBurstCtx(ctx context.Context, seed int64, opts mc.Options, rates faultmodel.Rates, burst faultmodel.Burst,
	ranks, devicesPerRank int, years, channels int, overhead OverheadByType, cap float64) ([]float64, error) {
	if years <= 0 || channels <= 0 || cap <= 0 {
		panic(fmt.Sprintf("reliability: invalid lifetime-overhead arguments (years=%d channels=%d cap=%v)", years, channels, cap))
	}
	if err := burst.Validate(); err != nil {
		return nil, err
	}
	acc, err := mc.RunCtx(ctx, mc.Job{
		Trials:     channels,
		Seed:       seed,
		NewAcc:     newYearSums(years),
		NewScratch: newArrivalScratch(rates, ranks, devicesPerRank, float64(years), burst.CapHintFactor()),
		TrialScratch: func(rng *rand.Rand, _ int, a mc.Accumulator, sc any) {
			sums := a.(*yearSums).sums
			scratch := sc.(*arrivalScratch)
			arrivals := faultmodel.SampleArrivalsInto(rng, scratch.buf, rates, ranks, devicesPerRank, float64(years))
			arrivals = burst.ExpandInto(rng, arrivals)
			scratch.buf = arrivals
			overheadSeries(arrivals, overhead, cap, years, scratch.series)
			for i, v := range scratch.series {
				sums[i] += v
			}
		},
	}, opts)
	if err != nil {
		return nil, err
	}
	sums := acc.(*yearSums).sums
	for i := range sums {
		sums[i] /= float64(channels)
	}
	return sums, nil
}

// WorstCaseOverheads derives the Fig 7.4/7.5 "worst case est." inputs from
// Table 7.4 spans: with zero spatial locality, every access to an upgraded
// page costs factor-1 extra (factor 2 for ARCC on commercial chipkill:
// double power, half bandwidth), so a fault that upgrades fraction f of
// pages costs (factor-1)*f.
func WorstCaseOverheads(shape faultmodel.ChannelShape, factor float64) OverheadByType {
	if factor < 1 {
		panic("reliability: worst-case factor below 1")
	}
	out := OverheadByType{}
	for _, t := range faultmodel.Types() {
		if t.IsTransientScale() {
			continue // page-scale spans: negligible overhead (Table 7.4)
		}
		out[t] = (factor - 1) * shape.UpgradedFraction(t)
	}
	return out
}
