package reliability

import "testing"

func TestSCCDCDDUEsPositiveAndGrowWithLife(t *testing.T) {
	p := DefaultParams()
	d7 := SCCDCDExpectedDUEs(p)
	if d7 <= 0 {
		t.Fatal("DUE expectation must be positive")
	}
	p.LifeYears = 3.5
	d35 := SCCDCDExpectedDUEs(p)
	// Quadratic in lifetime (accumulating first fault): 2x life -> 4x DUEs.
	if ratio := d7 / d35; ratio < 3.9 || ratio > 4.1 {
		t.Fatalf("lifetime scaling %v, want ~4 (quadratic)", ratio)
	}
}

func TestSparingDUEsFarBelowSCCDCD(t *testing.T) {
	p := DefaultParams()
	sccdcd, sparing := SCCDCDExpectedDUEs(p), SparingExpectedDUEs(p)
	if sparing >= sccdcd {
		t.Fatal("sparing must reduce the DUE rate")
	}
	factor := SparingDUEReductionFactor(p)
	// The paper cites a 17x field-measured reduction; the pure race model
	// is far more optimistic. Require at least an order of magnitude.
	if factor < 17 {
		t.Fatalf("sparing DUE reduction %vx, want >= 17x", factor)
	}
}

func TestARCCDoesNotDegradeDUERate(t *testing.T) {
	// §6.1: ARCC's DUE rate is bounded by the scheme it is applied to.
	p := DefaultParams()
	if got, base := ARCCExpectedDUEs(p), SCCDCDExpectedDUEs(p); got > base {
		t.Fatalf("ARCC DUE rate %v exceeds SCCDCD %v", got, base)
	}
	// And it differs only by the (tiny) SDC conversion.
	diff := SCCDCDExpectedDUEs(p) - ARCCExpectedDUEs(p)
	sdc := ARCCDEDExpectedSDCs(p)
	if rel := (diff - sdc) / sdc; rel > 1e-6 || rel < -1e-6 {
		t.Fatalf("DUE deficit %v should equal the SDC rate %v", diff, sdc)
	}
}

func TestDUERatesScaleQuadraticallyWithFaultRate(t *testing.T) {
	p := DefaultParams()
	base := SparingExpectedDUEs(p)
	p.Rates = p.Rates.Scale(2)
	if ratio := SparingExpectedDUEs(p) / base; ratio < 3.99 || ratio > 4.01 {
		t.Fatalf("2x rates scaled sparing DUEs by %v, want 4 (pair process)", ratio)
	}
}
