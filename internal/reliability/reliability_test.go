package reliability

import (
	"math"
	"testing"

	"arcc/internal/faultmodel"
	"arcc/internal/mc"
)

func TestOverlapProbBasics(t *testing.T) {
	g := DefaultRankGeom()
	cases := []struct {
		a, b faultmodel.Type
		want float64
	}{
		{faultmodel.Device, faultmodel.Device, 1},
		{faultmodel.Device, faultmodel.Row, 1},
		{faultmodel.Bank, faultmodel.Bank, 1.0 / 8},
		{faultmodel.Bank, faultmodel.Row, 1.0 / 8},
		{faultmodel.Row, faultmodel.Row, 1.0 / (8 * 16384)},
		{faultmodel.Row, faultmodel.Column, 1.0 / 8},
		{faultmodel.Column, faultmodel.Column, 1.0 / (8 * 64)},
		{faultmodel.Bit, faultmodel.Bit, 1.0 / (8 * 16384 * 64)},
		{faultmodel.Lane, faultmodel.Bit, 1},
	}
	for _, tc := range cases {
		if got := g.OverlapProb(tc.a, tc.b); math.Abs(got-tc.want) > 1e-15 {
			t.Errorf("OverlapProb(%v, %v) = %v, want %v", tc.a, tc.b, got, tc.want)
		}
		if got1, got2 := g.OverlapProb(tc.a, tc.b), g.OverlapProb(tc.b, tc.a); got1 != got2 {
			t.Errorf("OverlapProb not symmetric for (%v, %v)", tc.a, tc.b)
		}
	}
}

func TestOverlapProbBounds(t *testing.T) {
	g := DefaultRankGeom()
	for _, a := range faultmodel.Types() {
		for _, b := range faultmodel.Types() {
			p := g.OverlapProb(a, b)
			if p <= 0 || p > 1 {
				t.Fatalf("OverlapProb(%v, %v) = %v outside (0, 1]", a, b, p)
			}
		}
	}
}

func TestPairThreatProb(t *testing.T) {
	g := DefaultRankGeom()
	// Device-device in a 2-rank channel: same rank (1/2) x different
	// device (17/18) x overlap (1).
	got := g.PairThreatProb(faultmodel.Device, faultmodel.Device, 2)
	want := 0.5 * 17.0 / 18
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("PairThreatProb = %v, want %v", got, want)
	}
	// Lane pairs skip the same-rank factor.
	if g.PairThreatProb(faultmodel.Lane, faultmodel.Device, 2) != 17.0/18 {
		t.Fatal("lane threat probability wrong")
	}
}

func TestARCCDEDExpectedSDCsScalesQuadratically(t *testing.T) {
	p := DefaultParams()
	base := ARCCDEDExpectedSDCs(p)
	if base <= 0 {
		t.Fatal("expected SDC count must be positive")
	}
	p.Rates = p.Rates.Scale(4)
	quad := ARCCDEDExpectedSDCs(p)
	if math.Abs(quad/base-16) > 1e-6 {
		t.Fatalf("4x rates scaled SDCs by %vx, want 16x (two-fault race)", quad/base)
	}
}

func TestSCCDCDSDCsFarBelowARCCDED(t *testing.T) {
	// The price of ARCC: its DED window admits two-fault SDCs while
	// SCCDCD needs three faults. The absolute ARCC number must still be
	// tiny — that is the paper's Fig 6.1 claim.
	p := DefaultParams()
	arcc := SDCsPer1000MachineYears(ARCCDEDExpectedSDCs(p), p.LifeYears)
	sccdcd := SDCsPer1000MachineYears(SCCDCDExpectedSDCs(p), p.LifeYears)
	if sccdcd >= arcc {
		t.Fatalf("SCCDCD SDC rate %v not below ARCC DED %v", sccdcd, arcc)
	}
	if arcc > 0.01 {
		t.Fatalf("ARCC DED SDC rate %v per 1000 machine-years; should be insignificant (< 0.01)", arcc)
	}
}

func TestARCCDEDShrinksWithScrubInterval(t *testing.T) {
	p := DefaultParams()
	slow := ARCCDEDExpectedSDCs(p)
	p.ScrubHours = 1
	fast := ARCCDEDExpectedSDCs(p)
	if math.Abs(slow/fast-4) > 1e-9 {
		t.Fatalf("4x faster scrubbing should cut the SDC window 4x, got %vx", slow/fast)
	}
}

func TestMonteCarloValidatesAnalyticModel(t *testing.T) {
	// At heavily inflated rates the event-level Monte Carlo must agree
	// with the closed-form expectation within sampling error. This is the
	// validation step the paper performs against its own models.
	p := DefaultParams()
	p.Rates = p.Rates.Scale(3000)
	p.LifeYears = 1
	want := ARCCDEDExpectedSDCs(p)
	const channels = 3000
	got := float64(SimulateARCCDED(42, mc.Options{}, p, channels)) / channels
	if want <= 0 {
		t.Fatal("analytic expectation not positive")
	}
	rel := math.Abs(got-want) / want
	if rel > 0.25 {
		t.Fatalf("Monte Carlo %v vs analytic %v: relative error %.0f%%", got, want, rel*100)
	}
}

func TestSDCsPer1000MachineYears(t *testing.T) {
	if got := SDCsPer1000MachineYears(0.007, 7); math.Abs(got-1) > 1e-12 {
		t.Fatalf("conversion wrong: %v", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on zero lifespan")
		}
	}()
	SDCsPer1000MachineYears(1, 0)
}

func TestFaultyPageFractionShape(t *testing.T) {
	// Fig 3.1: a few percent at most through year 7 at 1x rates, growing
	// with time and with the rate factor.
	shape := faultmodel.ARCCChannelShape()
	f1 := FaultyPageFraction(1, mc.Options{}, faultmodel.FieldStudyRates(), shape, 2, 36, 7, 4000)
	if len(f1) != 7 {
		t.Fatalf("got %d years", len(f1))
	}
	for y := 1; y < 7; y++ {
		if f1[y] < f1[y-1] {
			t.Fatalf("faulty fraction not monotone: year %d %v < year %d %v", y+1, f1[y], y, f1[y-1])
		}
	}
	if f1[6] <= 0 || f1[6] > 0.10 {
		t.Fatalf("year-7 faulty fraction %v, want (0, 0.10] — 'just a few percent'", f1[6])
	}
	f4 := FaultyPageFraction(2, mc.Options{}, faultmodel.FieldStudyRates().Scale(4), shape, 2, 36, 7, 4000)
	if f4[6] <= f1[6] {
		t.Fatal("4x rates must raise the faulty fraction")
	}
	if f4[6] > 0.25 {
		t.Fatalf("4x year-7 fraction %v implausibly high", f4[6])
	}
}

func TestLifetimeOverheadShape(t *testing.T) {
	// Fig 7.4's worst-case estimate: small (a few percent), growing with
	// years, and bounded by the cap.
	shape := faultmodel.ARCCChannelShape()
	ov := WorstCaseOverheads(shape, 2) // power doubles on upgraded pages
	got := LifetimeOverhead(2, mc.Options{}, faultmodel.FieldStudyRates(), 2, 36, 7, 4000, ov, 1.0)
	for y := 1; y < 7; y++ {
		if got[y] < got[y-1]-1e-12 {
			t.Fatalf("lifetime overhead not monotone at year %d: %v < %v", y+1, got[y], got[y-1])
		}
	}
	if got[6] <= 0 || got[6] > 0.05 {
		t.Fatalf("year-7 worst-case overhead %v, want (0, 5%%]", got[6])
	}
}

func TestLifetimeOverheadRespectsCap(t *testing.T) {
	ov := OverheadByType{faultmodel.Device: 10} // absurd per-fault overhead
	got := LifetimeOverhead(3, mc.Options{}, faultmodel.FieldStudyRates().Scale(1000), 2, 36, 3, 200, ov, 0.5)
	for _, v := range got {
		if v > 0.5+1e-9 {
			t.Fatalf("overhead %v exceeds cap 0.5", v)
		}
	}
}

func TestWorstCaseOverheads(t *testing.T) {
	shape := faultmodel.ARCCChannelShape()
	ov := WorstCaseOverheads(shape, 2)
	if ov[faultmodel.Lane] != 1.0 || ov[faultmodel.Device] != 0.5 {
		t.Fatalf("worst-case overheads %v", ov)
	}
	if _, ok := ov[faultmodel.Bit]; ok {
		t.Fatal("transient-scale types must be excluded")
	}
	// Fig 7.6: LOT-ECC worst case is factor 4.
	lot := WorstCaseOverheads(shape, 4)
	if lot[faultmodel.Lane] != 3.0 {
		t.Fatalf("LOT-ECC lane overhead %v, want 3", lot[faultmodel.Lane])
	}
}

func TestARCCLOTECCLifetimeOverheadMatchesPaperMagnitude(t *testing.T) {
	// Fig 7.6: ~1.6% average overhead over 7 years at 1x rates, no more
	// than ~6.3% at 4x. Generous bands around those anchors.
	shape := faultmodel.ARCCChannelShape()
	ov := WorstCaseOverheads(shape, 4)
	at1 := LifetimeOverhead(4, mc.Options{}, faultmodel.FieldStudyRates(), 2, 18, 7, 6000, ov, 3.0)
	at4 := LifetimeOverhead(5, mc.Options{}, faultmodel.FieldStudyRates().Scale(4), 2, 18, 7, 6000, ov, 3.0)
	if at1[6] <= 0.001 || at1[6] > 0.05 {
		t.Fatalf("1x 7-year overhead %v, want around the paper's 1.6%%", at1[6])
	}
	if at4[6] <= at1[6] || at4[6] > 0.15 {
		t.Fatalf("4x 7-year overhead %v, want larger than 1x but bounded (~6%%)", at4[6])
	}
}

func TestPanicsOnBadArguments(t *testing.T) {
	shape := faultmodel.ARCCChannelShape()
	for name, f := range map[string]func(){
		"bad geom":      func() { RankGeom{}.OverlapProb(faultmodel.Bit, faultmodel.Bit) },
		"bad ranks":     func() { DefaultRankGeom().PairThreatProb(faultmodel.Bit, faultmodel.Bit, 0) },
		"bad params":    func() { ARCCDEDExpectedSDCs(Params{}) },
		"bad channels":  func() { SimulateARCCDED(5, mc.Options{}, DefaultParams(), 0) },
		"bad years":     func() { FaultyPageFraction(5, mc.Options{}, faultmodel.FieldStudyRates(), shape, 2, 36, 0, 1) },
		"bad cap":       func() { LifetimeOverhead(5, mc.Options{}, faultmodel.FieldStudyRates(), 2, 36, 1, 1, nil, 0) },
		"worst-case <1": func() { WorstCaseOverheads(shape, 0.5) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			f()
		}()
	}
}
