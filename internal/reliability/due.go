package reliability

import "arcc/internal/faultmodel"

// This file models the DUE (detectable uncorrectable error) rates of §6.1.
// The paper's claim is qualitative: ARCC does not degrade the DUE rate of
// the scheme it is applied to, because relaxed mode still corrects a single
// bad symbol, and double chip sparing only ever corrects a second fault
// that arrives after the first was detected — with or without ARCC.
//
// The models below quantify the claim:
//
//   - SCCDCD (correct 1): a DUE needs two faults threatening one codeword;
//     the first persists for the machine's life (single-symbol errors are
//     corrected in place, not serviced), so the pair rate integrates the
//     accumulated first fault — the hours^2/2 factor.
//   - Double chip sparing (correct 2, sequentially): a DUE needs the second
//     threat fault to arrive before the first is detected and spared (one
//     scrub interval), or a third simultaneous fault; the window term
//     dominates.
//   - ARCC applied to either: the same events, minus the tiny share whose
//     detection also fails (those become the SDCs of Fig 6.1), so the DUE
//     rate can only drop.

// SCCDCDExpectedDUEs returns the expected DUE events per machine lifetime
// for commercial SCCDCD (single correct, double detect).
func SCCDCDExpectedDUEs(p Params) float64 {
	p.validate()
	hours := p.LifeYears * faultmodel.HoursPerYear
	var sum float64
	for _, a := range faultmodel.Types() {
		ra := p.arrivalRatePerHour(a)
		if ra == 0 {
			continue
		}
		for _, b := range faultmodel.Types() {
			rb := p.arrivalRatePerHour(b)
			if rb == 0 {
				continue
			}
			threat := p.Geom.PairThreatProb(a, b, p.RanksPerChannel)
			// First fault accumulates: integral of ra*t*rb over [0, T].
			sum += ra * rb * hours * hours / 2 * threat
		}
	}
	return sum
}

// SparingExpectedDUEs returns the expected DUE events per machine lifetime
// for double chip sparing: the second fault must beat the scrub that would
// have spared the first.
func SparingExpectedDUEs(p Params) float64 {
	p.validate()
	hours := p.LifeYears * faultmodel.HoursPerYear
	var sum float64
	for _, a := range faultmodel.Types() {
		ra := p.arrivalRatePerHour(a)
		if ra == 0 {
			continue
		}
		for _, b := range faultmodel.Types() {
			rb := p.arrivalRatePerHour(b)
			if rb == 0 {
				continue
			}
			threat := p.Geom.PairThreatProb(a, b, p.RanksPerChannel)
			sum += (ra * hours) * (rb * p.ScrubHours / 2) * threat
		}
	}
	return sum
}

// ARCCExpectedDUEs returns the DUE rate of SCCDCD+ARCC: identical events to
// plain SCCDCD except for the pairs that also defeat detection (the ARCC
// DED SDCs), which are subtracted — they corrupt silently instead of
// trapping. The §6.1 statement "ARCC does not degrade the DUE rate" is the
// inequality ARCCExpectedDUEs <= SCCDCDExpectedDUEs.
func ARCCExpectedDUEs(p Params) float64 {
	due := SCCDCDExpectedDUEs(p) - ARCCDEDExpectedSDCs(p)
	if due < 0 {
		return 0
	}
	return due
}

// SparingDUEReductionFactor returns the ratio of SCCDCD's DUE rate to
// double chip sparing's — the model-level counterpart of the 17x reduction
// the paper cites from field data [4]. The analytic ratio is T_life/T_scrub
// shaped and therefore much larger than 17; the field number folds in
// service actions the model does not represent, so callers should treat
// this as "sparing removes nearly all DUEs", not as a calibrated constant.
func SparingDUEReductionFactor(p Params) float64 {
	sparing := SparingExpectedDUEs(p)
	if sparing == 0 {
		return 0
	}
	return SCCDCDExpectedDUEs(p) / sparing
}
