package reliability

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"strconv"
	"strings"

	"arcc/internal/faultmodel"
	"arcc/internal/mc"
	"arcc/internal/stats"
)

// Rare-event acceleration for the lifetime Monte Carlos. At field rates
// most channels see zero faults over their whole lifespan, so the plain
// estimators spend nearly every trial adding zero; the accelerated paths
// draw fault histories from an importance-sampling proposal (see
// faultmodel's conditional and tilted samplers) and weight each trial by
// its exact likelihood ratio, reaching the same target confidence
// interval with orders of magnitude fewer trials. DESIGN.md
// "Rare-event acceleration" has the derivation and the determinism
// contract.

// AccelMode selects the sampling proposal of an accelerated lifetime
// Monte Carlo.
type AccelMode int

const (
	// AccelNone is plain sampling: every trial weight is 1 and the
	// estimate reproduces the unaccelerated functions bit for bit.
	AccelNone AccelMode = iota
	// AccelConditional samples conditioned on at least one fault in the
	// lifespan. Exact (not just unbiased) for both lifetime metrics,
	// because a zero-fault channel contributes exactly zero to them.
	AccelConditional
	// AccelTilted samples with all fault rates scaled by Accel.Tilt.
	AccelTilted
)

// Accel selects and parameterises the acceleration of a lifetime Monte
// Carlo. The zero value is plain sampling.
type Accel struct {
	Mode AccelMode
	// Tilt is the rate-scaling factor of AccelTilted (ignored otherwise).
	// Must be positive; values above 1 make faults commoner and are the
	// useful regime.
	Tilt float64
}

// Validate reports whether the combination is usable.
func (a Accel) Validate() error {
	switch a.Mode {
	case AccelNone, AccelConditional:
		return nil
	case AccelTilted:
		if a.Tilt <= 0 || math.IsNaN(a.Tilt) || math.IsInf(a.Tilt, 0) {
			return fmt.Errorf("reliability: tilt factor %v must be positive and finite", a.Tilt)
		}
		return nil
	default:
		return fmt.Errorf("reliability: unknown acceleration mode %d", int(a.Mode))
	}
}

// String renders the accel in the form ParseAccel accepts.
func (a Accel) String() string {
	switch a.Mode {
	case AccelConditional:
		return "conditional"
	case AccelTilted:
		return "tilt:" + strconv.FormatFloat(a.Tilt, 'g', -1, 64)
	default:
		return "none"
	}
}

// ParseAccel parses an acceleration spec: "" or "none" (plain sampling),
// "conditional", or "tilt:<factor>" with a positive finite factor.
func ParseAccel(s string) (Accel, error) {
	switch {
	case s == "" || s == "none":
		return Accel{}, nil
	case s == "conditional":
		return Accel{Mode: AccelConditional}, nil
	case strings.HasPrefix(s, "tilt:"):
		f, err := strconv.ParseFloat(strings.TrimPrefix(s, "tilt:"), 64)
		if err != nil {
			return Accel{}, fmt.Errorf("reliability: bad tilt factor in %q: %v", s, err)
		}
		a := Accel{Mode: AccelTilted, Tilt: f}
		if err := a.Validate(); err != nil {
			return Accel{}, err
		}
		return a, nil
	default:
		return Accel{}, fmt.Errorf("reliability: unknown acceleration %q (want none, conditional, or tilt:<factor>)", s)
	}
}

// SeriesStats is the full statistical result of a lifetime Monte Carlo:
// the per-year estimate with its uncertainty, rather than the bare means
// the plain functions return.
type SeriesStats struct {
	// Mean is the per-year estimate (years 1..len(Mean)). With AccelNone
	// it is bit-identical to the corresponding plain function's result;
	// accelerated runs estimate the same quantity unbiasedly.
	Mean []float64
	// CI95 is the per-year half-width of the 95% confidence interval of
	// Mean under the normal approximation.
	CI95 []float64
	// ESS is Kish's effective sample size of the trial weights — equal to
	// Trials for plain sampling, lower when acceleration spreads the
	// weights.
	ESS float64
	// Trials is the number of Monte Carlo channels actually sampled.
	Trials int
	// Accel records how the trials were drawn.
	Accel Accel
	// FinalSketch summarises the distribution of the final year's
	// per-channel value (a quantile sketch over raw observations). Only
	// populated for AccelNone — weighted observations have no meaningful
	// raw quantiles.
	FinalSketch *stats.QuantileSketch
}

// FaultyPageFractionStats is FaultyPageFractionStatsCtx under a
// background context.
func FaultyPageFractionStats(seed int64, opts mc.Options, rates faultmodel.Rates, shape faultmodel.ChannelShape,
	ranks, devicesPerRank int, years, channels int, accel Accel) (*SeriesStats, error) {
	return FaultyPageFractionStatsCtx(context.Background(), seed, opts, rates, shape, ranks, devicesPerRank, years, channels, accel)
}

// FaultyPageFractionStatsCtx is FaultyPageFractionCtx with streaming
// statistics and optional rare-event acceleration: per-year mean with
// 95% confidence interval, effective sample size, and (for plain
// sampling) a quantile sketch of the final year. With accel.Mode ==
// AccelNone the Mean series is bit-identical to FaultyPageFractionCtx at
// any parallelism.
func FaultyPageFractionStatsCtx(ctx context.Context, seed int64, opts mc.Options, rates faultmodel.Rates, shape faultmodel.ChannelShape,
	ranks, devicesPerRank int, years, channels int, accel Accel) (*SeriesStats, error) {
	return FaultyPageFractionStatsBurstCtx(ctx, seed, opts, rates, faultmodel.Burst{}, shape, ranks, devicesPerRank, years, channels, accel)
}

// FaultyPageFractionStatsBurstCtx is FaultyPageFractionStatsCtx under a
// correlated fault-burst model. Burst expansion composes exactly with
// every acceleration mode: the trial weight is the likelihood ratio of
// the primary arrival process alone, and expansion is drawn from the
// identical conditional law under the nominal and proposal processes, so
// the weighted estimate stays unbiased. A zero burst consumes no
// randomness and reproduces FaultyPageFractionStatsCtx bit for bit.
func FaultyPageFractionStatsBurstCtx(ctx context.Context, seed int64, opts mc.Options, rates faultmodel.Rates, burst faultmodel.Burst,
	shape faultmodel.ChannelShape, ranks, devicesPerRank int, years, channels int, accel Accel) (*SeriesStats, error) {
	if years <= 0 || channels <= 0 {
		panic("reliability: invalid years/channels")
	}
	return runSeriesStats(ctx, seed, opts, rates, burst, ranks, devicesPerRank, years, channels, accel,
		func(arrivals []faultmodel.Arrival, series []float64) {
			faultyPageSeries(arrivals, shape, years, series)
		})
}

// LifetimeOverheadStats is LifetimeOverheadStatsCtx under a background
// context.
func LifetimeOverheadStats(seed int64, opts mc.Options, rates faultmodel.Rates, ranks, devicesPerRank int,
	years, channels int, overhead OverheadByType, cap float64, accel Accel) (*SeriesStats, error) {
	return LifetimeOverheadStatsCtx(context.Background(), seed, opts, rates, ranks, devicesPerRank, years, channels, overhead, cap, accel)
}

// LifetimeOverheadStatsCtx is LifetimeOverheadCtx with streaming
// statistics and optional rare-event acceleration, with the same
// contract as FaultyPageFractionStatsCtx: AccelNone means are
// bit-identical to the plain function, accelerated means estimate the
// same quantity unbiasedly with far fewer trials.
func LifetimeOverheadStatsCtx(ctx context.Context, seed int64, opts mc.Options, rates faultmodel.Rates, ranks, devicesPerRank int,
	years, channels int, overhead OverheadByType, cap float64, accel Accel) (*SeriesStats, error) {
	return LifetimeOverheadStatsBurstCtx(ctx, seed, opts, rates, faultmodel.Burst{}, ranks, devicesPerRank, years, channels, overhead, cap, accel)
}

// LifetimeOverheadStatsBurstCtx is LifetimeOverheadStatsCtx under a
// correlated fault-burst model, with the same exact-composition contract
// as FaultyPageFractionStatsBurstCtx.
func LifetimeOverheadStatsBurstCtx(ctx context.Context, seed int64, opts mc.Options, rates faultmodel.Rates, burst faultmodel.Burst,
	ranks, devicesPerRank int, years, channels int, overhead OverheadByType, cap float64, accel Accel) (*SeriesStats, error) {
	if years <= 0 || channels <= 0 || cap <= 0 {
		panic(fmt.Sprintf("reliability: invalid lifetime-overhead arguments (years=%d channels=%d cap=%v)", years, channels, cap))
	}
	return runSeriesStats(ctx, seed, opts, rates, burst, ranks, devicesPerRank, years, channels, accel,
		func(arrivals []faultmodel.Arrival, series []float64) {
			overheadSeries(arrivals, overhead, cap, years, series)
		})
}

// runSeriesStats runs one weighted lifetime Monte Carlo: trials draw an
// arrival history under the accel's proposal, expand it under the burst
// model, evaluate the per-year series with exactly the helper the plain
// functions use, and weight the trial by the primary process's likelihood
// ratio (exact under expansion — see FaultyPageFractionStatsBurstCtx).
func runSeriesStats(ctx context.Context, seed int64, opts mc.Options, rates faultmodel.Rates, burst faultmodel.Burst,
	ranks, devicesPerRank int, years, channels int, accel Accel, series func(arrivals []faultmodel.Arrival, series []float64)) (*SeriesStats, error) {
	if err := accel.Validate(); err != nil {
		return nil, err
	}
	if err := burst.Validate(); err != nil {
		return nil, err
	}
	if accel.Mode == AccelConditional && faultmodel.ExpectedArrivals(rates, ranks, devicesPerRank, float64(years)) <= 0 {
		return nil, fmt.Errorf("reliability: conditional acceleration of a zero-rate fault process (nothing to condition on)")
	}
	tiltHint := burst.CapHintFactor()
	if accel.Mode == AccelTilted {
		tiltHint *= accel.Tilt
	}
	job := mc.WeightedJob{
		Trials:     channels,
		Seed:       seed,
		Dims:       years,
		NewScratch: newArrivalScratch(rates, ranks, devicesPerRank, float64(years), tiltHint),
		Trial: func(rng *rand.Rand, _ int, sc any, vals []float64) float64 {
			scratch := sc.(*arrivalScratch)
			var arrivals []faultmodel.Arrival
			w := 1.0
			switch accel.Mode {
			case AccelConditional:
				arrivals, w = faultmodel.SampleArrivalsConditionalInto(rng, scratch.buf, rates, ranks, devicesPerRank, float64(years))
			case AccelTilted:
				arrivals, w = faultmodel.SampleArrivalsTiltedInto(rng, scratch.buf, rates, accel.Tilt, ranks, devicesPerRank, float64(years))
			default:
				arrivals = faultmodel.SampleArrivalsInto(rng, scratch.buf, rates, ranks, devicesPerRank, float64(years))
			}
			arrivals = burst.ExpandInto(rng, arrivals)
			scratch.buf = arrivals
			series(arrivals, vals)
			return w
		},
	}
	if accel.Mode == AccelNone {
		// Raw per-channel quantiles are only meaningful when every trial
		// weight is 1; sketch the final year's distribution.
		job.SketchDims = []int{years - 1}
	}
	set, err := mc.RunWeightedCtx(ctx, job, opts)
	if err != nil {
		return nil, err
	}
	out := &SeriesStats{
		Mean:        make([]float64, years),
		CI95:        make([]float64, years),
		ESS:         set.Dims[years-1].ESS(),
		Trials:      channels,
		Accel:       accel,
		FinalSketch: set.Sketch(years - 1),
	}
	for i := range out.Mean {
		out.Mean[i] = set.Dims[i].Mean()
		out.CI95[i] = set.Dims[i].CI95()
	}
	return out, nil
}
