// Package reliability implements the paper's reliability analysis
// (Chapters 3 and 6): the fraction of pages touched by faults over a
// memory's lifetime (Fig 3.1), the SDC-rate comparison between always-on
// double error detection (commercial SCCDCD) and ARCC's scrub-race-limited
// detection (Fig 6.1), and the lifetime power/performance overhead
// machinery behind Figs 7.4–7.6.
//
// The SDC analysis follows the modeling approach of the paper's companion
// technical report [12]: fault arrivals are Poisson per type with
// field-study rates, two faults threaten a codeword only if their spans
// intersect geometrically in the same rank (different devices), and ARCC's
// exposure window for an undetected second fault is one scrub interval.
// Closed-form expected-count models are validated by Monte Carlo (as in the
// paper).
package reliability

import (
	"fmt"

	"arcc/internal/faultmodel"
)

// RankGeom describes the address space of one rank for overlap purposes.
type RankGeom struct {
	Devices int // devices per rank (symbols per codeword)
	Banks   int
	Rows    int
	Cols    int // line-columns per row
}

// DefaultRankGeom matches the evaluated DDR2 ranks: 8 banks, 16K rows, 64
// line-columns per row.
func DefaultRankGeom() RankGeom { return RankGeom{Devices: 18, Banks: 8, Rows: 16384, Cols: 64} }

func (g RankGeom) validate() {
	if g.Devices <= 1 || g.Banks <= 0 || g.Rows <= 0 || g.Cols <= 0 {
		panic(fmt.Sprintf("reliability: invalid rank geometry %+v", g))
	}
}

// OverlapProb returns the probability that two independent faults of types
// a and b, placed uniformly within the SAME rank, cover at least one common
// (bank, row, column) line address — the condition for both to corrupt the
// same codeword. Device placement is handled separately (the pair must also
// sit in different devices to corrupt two symbols).
//
// Span model per type: Device covers every address; Bank covers one bank;
// Row covers (bank, row, *); Column covers (bank, *, col); Word and Bit
// cover a single (bank, row, col).
func (g RankGeom) OverlapProb(a, b faultmodel.Type) float64 {
	g.validate()
	// Lane faults electrically corrupt the device position in every rank
	// and address, so they overlap everything.
	if a == faultmodel.Lane || b == faultmodel.Lane {
		return 1
	}
	// Normalize: probability = product over the three coordinates of the
	// probability that the types' spans agree on that coordinate.
	pBank := 1.0
	if constrainsBank(a) && constrainsBank(b) {
		pBank = 1 / float64(g.Banks)
	}
	pRow := 1.0
	if constrainsRow(a) && constrainsRow(b) {
		pRow = 1 / float64(g.Rows)
	}
	pCol := 1.0
	if constrainsCol(a) && constrainsCol(b) {
		pCol = 1 / float64(g.Cols)
	}
	return pBank * pRow * pCol
}

// constrainsBank reports whether the fault type is confined to one bank.
func constrainsBank(t faultmodel.Type) bool { return t != faultmodel.Device }

// constrainsRow reports whether the fault type is confined to one row.
func constrainsRow(t faultmodel.Type) bool {
	return t == faultmodel.Row || t == faultmodel.Word || t == faultmodel.Bit
}

// constrainsCol reports whether the fault type is confined to one column.
func constrainsCol(t faultmodel.Type) bool {
	return t == faultmodel.Column || t == faultmodel.Word || t == faultmodel.Bit
}

// PairThreatProb returns the probability that two independent faults of
// types a and b anywhere in a channel of ranks ranks corrupt a common
// codeword: same rank (unless a lane fault is involved), different
// devices, spans intersecting.
func (g RankGeom) PairThreatProb(a, b faultmodel.Type, ranks int) float64 {
	if ranks <= 0 {
		panic("reliability: non-positive rank count")
	}
	diffDev := float64(g.Devices-1) / float64(g.Devices)
	if a == faultmodel.Lane || b == faultmodel.Lane {
		// The lane hits every rank; only device disjointness matters.
		return diffDev
	}
	return (1 / float64(ranks)) * diffDev * g.OverlapProb(a, b)
}
