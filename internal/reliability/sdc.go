package reliability

import (
	"context"
	"encoding/binary"
	"fmt"
	"math/rand"

	"arcc/internal/faultmodel"
	"arcc/internal/mc"
)

// Params configures the SDC models.
type Params struct {
	Rates           faultmodel.Rates
	RanksPerChannel int
	DevicesPerRank  int
	Geom            RankGeom
	ScrubHours      float64
	LifeYears       float64
}

// DefaultParams matches the Fig 6.1 setup: a 72-device channel (2 ranks),
// four-hour scrubs.
func DefaultParams() Params {
	return Params{
		Rates:           faultmodel.FieldStudyRates(),
		RanksPerChannel: 2,
		DevicesPerRank:  36,
		Geom:            RankGeom{Devices: 36, Banks: 8, Rows: 16384, Cols: 64},
		ScrubHours:      4,
		LifeYears:       7,
	}
}

func (p Params) validate() {
	if p.RanksPerChannel <= 0 || p.DevicesPerRank <= 1 || p.ScrubHours <= 0 || p.LifeYears <= 0 {
		panic(fmt.Sprintf("reliability: invalid params %+v", p))
	}
}

// totalDevices returns devices per channel.
func (p Params) totalDevices() int { return p.RanksPerChannel * p.DevicesPerRank }

// arrivalRatePerHour returns the channel-wide fault rate of type t.
func (p Params) arrivalRatePerHour(t faultmodel.Type) float64 {
	return p.Rates[t] * 1e-9 * float64(p.totalDevices())
}

// ARCCDEDExpectedSDCs returns the expected number of undetected-error
// events per machine lifetime under ARCC's reduced double error detection:
// an SDC requires a second fault to land in a codeword already corrupted by
// an undetected first fault — i.e. the two faults must be geometric threats
// to a common codeword AND arrive within the same scrub interval (after
// which the page is upgraded to full double detection).
func ARCCDEDExpectedSDCs(p Params) float64 {
	p.validate()
	hours := p.LifeYears * faultmodel.HoursPerYear
	var sum float64
	for _, a := range faultmodel.Types() {
		ra := p.arrivalRatePerHour(a)
		if ra == 0 {
			continue
		}
		for _, b := range faultmodel.Types() {
			rb := p.arrivalRatePerHour(b)
			if rb == 0 {
				continue
			}
			// First fault of type a at any time in the lifetime; second
			// fault of type b within the remainder of a's scrub interval
			// (mean exposure ScrubHours/2).
			threat := p.Geom.PairThreatProb(a, b, p.RanksPerChannel)
			sum += (ra * hours) * (rb * p.ScrubHours / 2) * threat
		}
	}
	return sum
}

// SCCDCDExpectedSDCs returns the expected undetected-error events per
// machine lifetime for always-on double error detection (commercial
// SCCDCD): three faults must threaten a common codeword, with the third
// arriving before the second is detected (two faults produce a DUE at the
// next scrub, which services the machine). The first fault persists —
// single bad symbols are corrected in place, not serviced — so it
// accumulates over the machine's age: integrating the instantaneous rate
// lambda_a*t over the lifetime yields the hours^2/2 factor, which is why
// the per-machine-year SDC rate of this scheme grows with intended
// lifespan in Fig 6.1.
func SCCDCDExpectedSDCs(p Params) float64 {
	p.validate()
	hours := p.LifeYears * faultmodel.HoursPerYear
	var sum float64
	for _, a := range faultmodel.Types() {
		ra := p.arrivalRatePerHour(a)
		if ra == 0 {
			continue
		}
		for _, b := range faultmodel.Types() {
			rb := p.arrivalRatePerHour(b)
			if rb == 0 {
				continue
			}
			for _, c := range faultmodel.Types() {
				rc := p.arrivalRatePerHour(c)
				if rc == 0 {
					continue
				}
				// a accumulates with machine age (integral of ra*t over
				// the lifetime = ra*hours^2/2); b overlaps it within some
				// scrub interval; c overlaps both within the same interval.
				threatAB := p.Geom.PairThreatProb(a, b, p.RanksPerChannel)
				threatC := p.Geom.OverlapProb(b, c) * float64(p.Geom.Devices-2) / float64(p.Geom.Devices)
				if a == faultmodel.Lane || b == faultmodel.Lane || c == faultmodel.Lane {
					threatC = float64(p.Geom.Devices-2) / float64(p.Geom.Devices)
				}
				sum += (ra * hours * hours / 2) * (rb * p.ScrubHours / 2) * (rc * p.ScrubHours / 2) * threatAB * threatC
			}
		}
	}
	return sum
}

// SDCsPer1000MachineYears converts an expected per-lifetime count to the
// paper's Fig 6.1 metric, assuming machines are replaced at end of life (or
// at the first SDC, whichever comes first — at these magnitudes the
// difference is negligible).
func SDCsPer1000MachineYears(expectedPerLifetime float64, lifeYears float64) float64 {
	if lifeYears <= 0 {
		panic("reliability: non-positive lifespan")
	}
	return expectedPerLifetime * 1000 / lifeYears
}

// eventCount accumulates undetected-event counts across shards.
type eventCount struct{ events int }

func (a *eventCount) Merge(other mc.Accumulator) { a.events += other.(*eventCount).events }

// MarshalBinary/UnmarshalBinary make the SDC validation Monte Carlo
// checkpointable; the count round-trips exactly.
func (a *eventCount) MarshalBinary() ([]byte, error) {
	out := make([]byte, 8)
	binary.LittleEndian.PutUint64(out, uint64(a.events))
	return out, nil
}

func (a *eventCount) UnmarshalBinary(b []byte) error {
	if len(b) != 8 {
		return fmt.Errorf("reliability: event-count snapshot holds %d bytes, want 8", len(b))
	}
	a.events = int(binary.LittleEndian.Uint64(b))
	return nil
}

// SimulateARCCDED runs the event-level Monte Carlo for the ARCC DED model:
// it draws fault histories for channels channels and counts how many
// undetected double-fault events occur (second threat fault landing before
// the scrub that would have detected the first). It exists to validate the
// closed-form model, exactly as the paper validates its analytic models
// with Monte Carlo; run it at inflated rates to see events at all.
// Channels are sharded across workers per opts with one RNG stream per
// shard, so the count is reproducible at any parallelism.
func SimulateARCCDED(seed int64, opts mc.Options, p Params, channels int) int {
	n, err := SimulateARCCDEDCtx(context.Background(), seed, opts, p, channels)
	if err != nil {
		panic(err) // a background context never cancels
	}
	return n
}

// SimulateARCCDEDCtx is SimulateARCCDED under a context: a cancelled
// context returns (0, mc.ErrCanceled) within one shard boundary.
func SimulateARCCDEDCtx(ctx context.Context, seed int64, opts mc.Options, p Params, channels int) (int, error) {
	p.validate()
	if channels <= 0 {
		panic("reliability: non-positive channel count")
	}
	acc, err := mc.RunCtx(ctx, mc.Job{
		Trials:     channels,
		Seed:       seed,
		NewAcc:     func() mc.Accumulator { return &eventCount{} },
		NewScratch: newArrivalScratch(p.Rates, p.RanksPerChannel, p.DevicesPerRank, p.LifeYears, 1),
		TrialScratch: func(rng *rand.Rand, _ int, a mc.Accumulator, sc any) {
			ec := a.(*eventCount)
			scratch := sc.(*arrivalScratch)
			arrivals := faultmodel.SampleArrivalsInto(rng, scratch.buf, p.Rates, p.RanksPerChannel, p.DevicesPerRank, p.LifeYears)
			scratch.buf = arrivals
			for i, first := range arrivals {
				// The first fault is exposed until the end of its scrub
				// interval.
				detectAt := (float64(int(first.AtHours/p.ScrubHours)) + 1) * p.ScrubHours
				for j := i + 1; j < len(arrivals); j++ {
					second := arrivals[j]
					if second.AtHours >= detectAt {
						break
					}
					if threatens(p.Geom, first, second) && rng.Float64() < p.Geom.OverlapProb(first.Type, second.Type) {
						ec.events++
					}
				}
			}
		},
	}, opts)
	if err != nil {
		return 0, err
	}
	return acc.(*eventCount).events, nil
}

// threatens checks the placement conditions (same rank unless a lane fault,
// different devices) for two sampled arrivals.
func threatens(g RankGeom, a, b faultmodel.Arrival) bool {
	laneInvolved := a.Type == faultmodel.Lane || b.Type == faultmodel.Lane
	if !laneInvolved && a.Rank != b.Rank {
		return false
	}
	return a.Device != b.Device
}
