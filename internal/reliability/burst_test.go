package reliability

import (
	"context"
	"math"
	"slices"
	"testing"

	"arcc/internal/faultmodel"
	"arcc/internal/mc"
)

// burstTestRates returns rates inflated enough that burst effects are
// measurable with modest trial counts.
func burstTestRates() faultmodel.Rates {
	return faultmodel.FieldStudyRates().Scale(100)
}

func TestZeroBurstBitIdentical(t *testing.T) {
	rates := burstTestRates()
	shape := faultmodel.ARCCChannelShape()
	opts := mc.Options{Parallelism: 4}
	ctx := context.Background()

	plain, err := FaultyPageFractionCtx(ctx, 5, opts, rates, shape, 2, 18, 7, 3000)
	if err != nil {
		t.Fatal(err)
	}
	zero, err := FaultyPageFractionBurstCtx(ctx, 5, opts, rates, faultmodel.Burst{}, shape, 2, 18, 7, 3000)
	if err != nil {
		t.Fatal(err)
	}
	if !slices.Equal(plain, zero) {
		t.Fatalf("zero burst diverged:\n%v\n%v", plain, zero)
	}

	ov := WorstCaseOverheads(shape, 2)
	p2, err := LifetimeOverheadCtx(ctx, 5, opts, rates, 2, 18, 7, 3000, ov, 1)
	if err != nil {
		t.Fatal(err)
	}
	z2, err := LifetimeOverheadBurstCtx(ctx, 5, opts, rates, faultmodel.Burst{}, 2, 18, 7, 3000, ov, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !slices.Equal(p2, z2) {
		t.Fatalf("zero burst diverged (overhead):\n%v\n%v", p2, z2)
	}

	// Stats path too, at two parallelisms.
	s1, err := FaultyPageFractionStatsBurstCtx(ctx, 5, mc.Options{Parallelism: 1}, rates, faultmodel.Burst{}, shape, 2, 18, 7, 3000, Accel{})
	if err != nil {
		t.Fatal(err)
	}
	s4, err := FaultyPageFractionStatsBurstCtx(ctx, 5, opts, rates, faultmodel.Burst{}, shape, 2, 18, 7, 3000, Accel{})
	if err != nil {
		t.Fatal(err)
	}
	if !slices.Equal(s1.Mean, s4.Mean) || !slices.Equal(s1.Mean, plain) {
		t.Fatalf("stats zero-burst means diverged:\n%v\n%v\n%v", s1.Mean, s4.Mean, plain)
	}
}

func TestBurstRaisesFaultyFraction(t *testing.T) {
	rates := burstTestRates()
	shape := faultmodel.ARCCChannelShape()
	opts := mc.Options{Parallelism: 4}
	ctx := context.Background()
	burst := faultmodel.Burst{RowProb: 1, RowMean: 8, RowMax: 32, BankProb: 1, BankMean: 8, BankMax: 32}

	plain, err := FaultyPageFractionCtx(ctx, 5, opts, rates, shape, 2, 18, 7, 4000)
	if err != nil {
		t.Fatal(err)
	}
	bursty, err := FaultyPageFractionBurstCtx(ctx, 5, opts, rates, burst, shape, 2, 18, 7, 4000)
	if err != nil {
		t.Fatal(err)
	}
	final := len(plain) - 1
	if bursty[final] <= plain[final] {
		t.Fatalf("correlated bursts did not raise the faulty fraction: %v <= %v", bursty[final], plain[final])
	}

	// Determinism across parallelism.
	again, err := FaultyPageFractionBurstCtx(ctx, 5, mc.Options{Parallelism: 1}, rates, burst, shape, 2, 18, 7, 4000)
	if err != nil {
		t.Fatal(err)
	}
	if !slices.Equal(bursty, again) {
		t.Fatalf("burst run not parallelism-invariant:\n%v\n%v", bursty, again)
	}
}

func TestBurstComposesWithAcceleration(t *testing.T) {
	// The IS contract: conditional acceleration with bursts estimates the
	// same quantity as plain sampling with bursts. Compare the accelerated
	// estimate against a high-trial plain run within combined CIs.
	rates := burstTestRates()
	shape := faultmodel.ARCCChannelShape()
	ctx := context.Background()
	burst := faultmodel.Burst{RowProb: 0.8, RowMean: 6, RowMax: 24}
	const years = 7

	ref, err := FaultyPageFractionStatsBurstCtx(ctx, 21, mc.Options{Parallelism: 4}, rates, burst, shape, 2, 18, years, 60_000, Accel{})
	if err != nil {
		t.Fatal(err)
	}
	acc, err := FaultyPageFractionStatsBurstCtx(ctx, 99, mc.Options{Parallelism: 4}, rates, burst, shape, 2, 18, years, 8_000, Accel{Mode: AccelConditional})
	if err != nil {
		t.Fatal(err)
	}
	// Conditional sampling leaves the zero-fault stratum implicit; both
	// estimate the same mean.
	for y := 0; y < years; y++ {
		tol := 3 * (ref.CI95[y] + acc.CI95[y])
		if math.Abs(ref.Mean[y]-acc.Mean[y]) > tol {
			t.Errorf("year %d: plain %v vs conditional %v (tol %v)", y+1, ref.Mean[y], acc.Mean[y], tol)
		}
	}
	if acc.ESS <= 0 || acc.ESS > float64(acc.Trials) {
		t.Fatalf("degenerate ESS %v", acc.ESS)
	}
}

func TestBurstRejectsInvalid(t *testing.T) {
	bad := faultmodel.Burst{RowProb: 2}
	if _, err := FaultyPageFractionBurstCtx(context.Background(), 1, mc.Options{}, burstTestRates(), bad,
		faultmodel.ARCCChannelShape(), 2, 18, 3, 10); err == nil {
		t.Fatal("invalid burst accepted (plain)")
	}
	if _, err := LifetimeOverheadStatsBurstCtx(context.Background(), 1, mc.Options{}, burstTestRates(), bad,
		2, 18, 3, 10, WorstCaseOverheads(faultmodel.ARCCChannelShape(), 2), 1, Accel{}); err == nil {
		t.Fatal("invalid burst accepted (stats)")
	}
}
