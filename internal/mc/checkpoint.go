package mc

import (
	"context"
	"encoding"
	"sync"
	"time"
)

// A Checkpoint is the durable state of a partially executed job: the
// serialized accumulator of every completed shard, keyed by shard index,
// plus the job shape that makes the snapshot meaningful. Because a
// shard's RNG stream is derived from (Seed, shard index) alone and the
// engine always merges accumulators in shard-index order, a run resumed
// from a checkpoint is bit-identical to an uninterrupted run of the same
// job: the restored shards contribute exactly the accumulator states
// they would have produced live, and the skipped work never touches the
// remaining shards' streams.
//
// Checkpoints serialize naturally as JSON (shard blobs become base64),
// which is how the sweep service persists them.
type Checkpoint struct {
	Trials    int   `json:"trials"`
	Seed      int64 `json:"seed"`
	ShardSize int   `json:"shard_size"`
	// Shards maps a completed shard index to its accumulator's
	// MarshalBinary bytes.
	Shards map[int][]byte `json:"shards"`
}

// Done returns the number of trials the checkpoint covers — the trials
// of every completed shard it holds.
func (c *Checkpoint) Done() int {
	size := c.ShardSize
	if size <= 0 {
		size = DefaultShardSize
	}
	done := 0
	for s := range c.Shards {
		done += shardTrials(s, size, c.Trials)
	}
	return done
}

// matches reports whether the checkpoint was taken from a job of the
// given shape. A mismatched checkpoint is ignored wholesale: resuming it
// would merge accumulators from foreign streams.
func (c *Checkpoint) matches(trials int, seed int64, shardSize int) bool {
	return c != nil && c.Trials == trials && c.Seed == seed && c.ShardSize == shardSize
}

// CheckpointConfig enables shard-level checkpoint/resume for one job
// (Options.Checkpoint). Checkpointing requires the job's accumulators to
// implement encoding.BinaryMarshaler and encoding.BinaryUnmarshaler; a
// job whose accumulators do not is silently run without snapshots (and a
// shard whose accumulator fails to marshal is simply left out of them),
// so checkpointing degrades to a plain run, never an error.
type CheckpointConfig struct {
	// Resume holds the completed-shard snapshots of a prior interrupted
	// run of the same job. Shards present in Resume are not re-executed:
	// their accumulators are deserialized and merged in shard order as if
	// they had just run. A checkpoint whose (Trials, Seed, ShardSize)
	// does not match the job — or an individual shard blob that fails to
	// deserialize — is ignored and the corresponding work re-runs.
	Resume *Checkpoint
	// EveryShards emits a snapshot to Sink every EveryShards completed
	// shards. When both EveryShards and Period are zero, every completed
	// shard snapshots — the right default for jobs whose shards are whole
	// simulator runs (ShardSize 1).
	EveryShards int
	// Period emits a snapshot when at least Period has elapsed since the
	// previous one (checked as shards complete; an idle job does not
	// snapshot on a timer).
	Period time.Duration
	// Sink receives each snapshot. Calls are serialised by the engine and
	// the Checkpoint (including its blobs) is never mutated afterwards,
	// so the sink may retain or persist it from another goroutine. A slow
	// sink stalls the workers' bookkeeping, not their trials; a sink that
	// must not block should hand off and return. The engine also flushes
	// a final snapshot when a run is cancelled mid-way, so a graceful
	// shutdown persists every completed shard, not just the last cadence
	// boundary.
	Sink func(*Checkpoint)
}

// checkpointable is what a job's accumulators must satisfy for shard
// snapshots to work. The round trip must be exact — Unmarshal(Marshal(a))
// must reproduce a's state bit for bit — or the resumed-equals-
// uninterrupted invariant breaks.
type checkpointable interface {
	encoding.BinaryMarshaler
	encoding.BinaryUnmarshaler
}

// checkpointer tracks completed shards during a run and turns them into
// snapshots at the configured cadence. Accumulators are kept by
// reference until a snapshot serializes them (a completed shard's
// accumulator is immutable until the final merge), so a coarse cadence
// pays marshaling cost per snapshot, not per shard.
type checkpointer struct {
	cfg    *CheckpointConfig
	job    Job
	trials int
	seed   int64
	size   int

	mu        sync.Mutex
	pending   map[int]Accumulator // completed, not yet serialized
	blobs     map[int][]byte      // serialized completed shards
	sinceSnap int
	lastSnap  time.Time
}

// newCheckpointer returns nil when checkpointing is off or the job's
// accumulators cannot round-trip.
func newCheckpointer(job Job, size int, cfg *CheckpointConfig) *checkpointer {
	if cfg == nil {
		return nil
	}
	if _, ok := job.NewAcc().(checkpointable); !ok {
		return nil
	}
	return &checkpointer{
		cfg:      cfg,
		job:      job,
		trials:   job.Trials,
		seed:     job.Seed,
		size:     size,
		pending:  map[int]Accumulator{},
		blobs:    map[int][]byte{},
		lastSnap: time.Now(),
	}
}

// restore deserializes the resumable shards of cfg.Resume into accs and
// returns how many trials they cover. Invalid shards are skipped — they
// re-run.
func (c *checkpointer) restore(accs []Accumulator) (resumedTrials int) {
	r := c.cfg.Resume
	if !r.matches(c.trials, c.seed, c.size) {
		return 0
	}
	for s, blob := range r.Shards {
		if s < 0 || s >= len(accs) || len(blob) == 0 {
			continue
		}
		acc := c.job.NewAcc()
		if err := acc.(checkpointable).UnmarshalBinary(blob); err != nil {
			continue
		}
		accs[s] = acc
		c.blobs[s] = blob
		resumedTrials += shardTrials(s, c.size, c.trials)
	}
	return resumedTrials
}

// completed records a freshly finished shard and snapshots when the
// cadence says so.
func (c *checkpointer) completed(s int, acc Accumulator) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.pending[s] = acc
	c.sinceSnap++
	every := c.cfg.EveryShards
	if every <= 0 && c.cfg.Period <= 0 {
		every = 1
	}
	if (every > 0 && c.sinceSnap >= every) ||
		(c.cfg.Period > 0 && time.Since(c.lastSnap) >= c.cfg.Period) {
		c.snapshotLocked()
	}
}

// flush emits a final snapshot covering every completed shard; the
// engine calls it when a run is cancelled so nothing done is lost.
func (c *checkpointer) flush() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.sinceSnap > 0 {
		c.snapshotLocked()
	}
}

func (c *checkpointer) snapshotLocked() {
	for s, acc := range c.pending {
		delete(c.pending, s)
		blob, err := acc.(checkpointable).MarshalBinary()
		if err != nil || len(blob) == 0 {
			// This shard cannot be checkpointed (e.g. a map job whose
			// value type gob cannot encode); it will re-run on resume.
			continue
		}
		c.blobs[s] = blob
	}
	c.sinceSnap = 0
	c.lastSnap = time.Now()
	if c.cfg.Sink == nil || len(c.blobs) == 0 {
		return
	}
	shards := make(map[int][]byte, len(c.blobs))
	for s, b := range c.blobs {
		shards[s] = b
	}
	c.cfg.Sink(&Checkpoint{Trials: c.trials, Seed: c.seed, ShardSize: c.size, Shards: shards})
}

// A Resumer coordinates checkpoint/resume across the several engine
// jobs one exhibit may run back to back (per rate factor, per sweep).
// Each call to JobCheckpoint assigns the next job sequence index; since
// an exhibit launches its engine jobs in deterministic order for a given
// config, the indices of a resumed run line up with those of the
// interrupted one, and each job finds its own saved checkpoint. A stale
// or misaligned checkpoint is harmless — the per-job (Trials, Seed,
// ShardSize) validation rejects it and the job runs from scratch.
type Resumer struct {
	mu      sync.Mutex
	next    int
	saved   map[int]*Checkpoint
	every   int
	period  time.Duration
	persist func(jobIndex int, cp *Checkpoint)
}

// NewResumer builds a Resumer. saved holds the checkpoints of a prior
// interrupted run keyed by engine-job sequence index (nil for a fresh
// run); everyShards/period set the snapshot cadence of every job;
// persist receives each job's snapshots tagged with its sequence index
// (nil to resume without writing new checkpoints).
func NewResumer(saved map[int]*Checkpoint, everyShards int, period time.Duration,
	persist func(jobIndex int, cp *Checkpoint)) *Resumer {
	return &Resumer{saved: saved, every: everyShards, period: period, persist: persist}
}

// JobCheckpoint hands out the checkpoint configuration for the next
// engine job in sequence.
func (r *Resumer) JobCheckpoint() *CheckpointConfig {
	r.mu.Lock()
	i := r.next
	r.next++
	cp := r.saved[i]
	r.mu.Unlock()
	cc := &CheckpointConfig{Resume: cp, EveryShards: r.every, Period: r.period}
	if r.persist != nil {
		cc.Sink = func(cp *Checkpoint) { r.persist(i, cp) }
	}
	return cc
}

// RunCtxResumable is RunCtx with explicit checkpoint/resume control: it
// skips the shards ck.Resume already completed, merges their persisted
// accumulators in shard order, and emits snapshots of newly completed
// shards to ck.Sink at the configured cadence. The result is
// bit-identical to an uninterrupted RunCtx of the same job, however many
// times the run was interrupted and resumed. A nil ck is plain RunCtx.
func RunCtxResumable(ctx context.Context, job Job, opts Options, ck *CheckpointConfig) (Accumulator, error) {
	opts.Checkpoint = ck
	return RunCtx(ctx, job, opts)
}
