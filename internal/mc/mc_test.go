package mc

import (
	"math/rand"
	"runtime"
	"strings"
	"sync"
	"testing"
)

// sumAcc is a float accumulator whose merge is order-sensitive enough to
// expose nondeterministic folds (float addition is not associative).
type sumAcc struct {
	sum   float64
	count int
}

func (a *sumAcc) Merge(other Accumulator) {
	o := other.(*sumAcc)
	a.sum += o.sum
	a.count += o.count
}

func sumJob(trials int, seed int64) Job {
	return Job{
		Trials: trials,
		Seed:   seed,
		NewAcc: func() Accumulator { return &sumAcc{} },
		Trial: func(rng *rand.Rand, trial int, acc Accumulator) {
			a := acc.(*sumAcc)
			// Mix the trial index in so coverage bugs (skipped or doubled
			// trials) shift the sum even if the rng draws collide.
			a.sum += rng.Float64() * float64(trial%7+1)
			a.count++
		},
	}
}

func TestRunCoversEveryTrialExactlyOnce(t *testing.T) {
	for _, trials := range []int{1, 63, 64, 65, 1000} {
		acc := Run(sumJob(trials, 1), Options{Parallelism: 3}).(*sumAcc)
		if acc.count != trials {
			t.Errorf("trials=%d: ran %d trials", trials, acc.count)
		}
	}
}

func TestRunDeterministicAcrossParallelism(t *testing.T) {
	want := Run(sumJob(1000, 42), Options{Parallelism: 1}).(*sumAcc)
	if want.sum == 0 {
		t.Fatal("degenerate sum")
	}
	for _, par := range []int{1, 4, runtime.NumCPU(), 32} {
		got := Run(sumJob(1000, 42), Options{Parallelism: par}).(*sumAcc)
		if got.sum != want.sum {
			t.Errorf("parallelism %d: sum %v, want bit-identical %v", par, got.sum, want.sum)
		}
	}
}

func TestRunSeedChangesResult(t *testing.T) {
	a := Run(sumJob(500, 1), Options{}).(*sumAcc)
	b := Run(sumJob(500, 2), Options{}).(*sumAcc)
	if a.sum == b.sum {
		t.Fatal("different seeds produced identical sums")
	}
}

func TestRunShardSizeChangesStreams(t *testing.T) {
	// Different shard sizes give different (but each internally
	// deterministic) results: the per-shard streams re-partition.
	a := Run(sumJob(500, 1), Options{ShardSize: 64}).(*sumAcc)
	b := Run(sumJob(500, 1), Options{ShardSize: 128}).(*sumAcc)
	if a.sum == b.sum {
		t.Fatal("shard size did not re-partition the streams")
	}
}

func TestShardSeedsDecorrelated(t *testing.T) {
	seen := map[int64]int{}
	for s := 0; s < 10000; s++ {
		seen[ShardSeed(1, s)]++
	}
	if len(seen) != 10000 {
		t.Fatalf("shard seed collisions: %d distinct of 10000", len(seen))
	}
	if ShardSeed(1, 0) == ShardSeed(2, 0) {
		t.Fatal("base seed ignored")
	}
	if DeriveSeed(1, 0) == DeriveSeed(1, 1) || DeriveSeed(1, 0) == DeriveSeed(2, 0) {
		t.Fatal("DeriveSeed ignores tag or root")
	}
}

func TestProgressMonotoneAndComplete(t *testing.T) {
	for _, par := range []int{1, 4} {
		var mu sync.Mutex
		last, calls := 0, 0
		opts := Options{Parallelism: par, ShardSize: 10, Progress: func(done, total int) {
			mu.Lock()
			defer mu.Unlock()
			if calls == 0 && done != 0 {
				t.Errorf("par %d: first progress call %d/%d, want the 0/%d job-start signal", par, done, total, total)
			}
			if done < last || done > total {
				t.Errorf("par %d: progress went %d -> %d of %d", par, last, done, total)
			}
			last = done
			calls++
		}}
		Run(sumJob(95, 7), opts)
		// 1 job-start signal + 10 per-shard calls.
		if last != 95 || calls != 11 {
			t.Fatalf("par %d: final progress %d after %d calls, want 95 after 11", par, last, calls)
		}
	}
}

func TestMapOrdersResultsByTrial(t *testing.T) {
	want := Map(257, 3, Options{Parallelism: 1}, func(rng *rand.Rand, trial int) float64 {
		return float64(trial) + rng.Float64()
	})
	for _, par := range []int{4, runtime.NumCPU()} {
		got := Map(257, 3, Options{Parallelism: par}, func(rng *rand.Rand, trial int) float64 {
			return float64(trial) + rng.Float64()
		})
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("par %d: trial %d = %v, want %v", par, i, got[i], want[i])
			}
		}
	}
	for i, v := range want {
		if int(v) != i {
			t.Fatalf("trial %d result %v landed at wrong index", i, v)
		}
	}
}

// scratchJob is sumJob on the scratch path: each trial writes then reads a
// per-shard buffer, so a shared or missing scratch corrupts the sum.
func scratchJob(trials int, seed int64) Job {
	type buf struct{ vals []float64 }
	return Job{
		Trials: trials,
		Seed:   seed,
		NewAcc: func() Accumulator { return &sumAcc{} },
		NewScratch: func() any {
			return &buf{vals: make([]float64, 0, 8)}
		},
		TrialScratch: func(rng *rand.Rand, trial int, acc Accumulator, scratch any) {
			a := acc.(*sumAcc)
			b := scratch.(*buf)
			b.vals = b.vals[:0]
			for i := 0; i < 1+trial%4; i++ {
				b.vals = append(b.vals, rng.Float64())
			}
			for _, v := range b.vals {
				a.sum += v * float64(trial%7+1)
			}
			a.count++
		},
	}
}

func TestTrialScratchMatchesTrialAcrossParallelism(t *testing.T) {
	want := Run(scratchJob(1000, 42), Options{Parallelism: 1}).(*sumAcc)
	if want.sum == 0 {
		t.Fatal("degenerate sum")
	}
	if want.count != 1000 {
		t.Fatalf("ran %d trials, want 1000", want.count)
	}
	for _, par := range []int{1, 4, runtime.NumCPU(), 32} {
		got := Run(scratchJob(1000, 42), Options{Parallelism: par}).(*sumAcc)
		if got.sum != want.sum {
			t.Errorf("parallelism %d: sum %v, want bit-identical %v", par, got.sum, want.sum)
		}
	}
}

func TestNewScratchCalledOncePerWorker(t *testing.T) {
	for _, par := range []int{1, 4} {
		var mu sync.Mutex
		created := 0
		job := Job{
			Trials: 100,
			Seed:   1,
			NewAcc: func() Accumulator { return &sumAcc{} },
			NewScratch: func() any {
				mu.Lock()
				created++
				mu.Unlock()
				return new(int)
			},
			TrialScratch: func(_ *rand.Rand, _ int, acc Accumulator, scratch any) {
				*(scratch.(*int))++ // panics if scratch were nil
				acc.(*sumAcc).count++
			},
		}
		Run(job, Options{Parallelism: par, ShardSize: 10})
		// One workspace per worker — the shards a worker drains share it.
		if created < 1 || created > par {
			t.Fatalf("parallelism %d: NewScratch called %d times, want 1..%d (once per worker)", par, created, par)
		}
		if par == 1 && created != 1 {
			t.Fatalf("serial: NewScratch called %d times, want exactly 1", created)
		}
	}
}

func TestTrialScratchWithoutNewScratchGetsNil(t *testing.T) {
	job := Job{
		Trials: 10,
		Seed:   1,
		NewAcc: func() Accumulator { return &sumAcc{} },
		TrialScratch: func(_ *rand.Rand, _ int, acc Accumulator, scratch any) {
			if scratch != nil {
				t.Errorf("scratch = %v, want nil without NewScratch", scratch)
			}
			acc.(*sumAcc).count++
		},
	}
	if acc := Run(job, Options{}).(*sumAcc); acc.count != 10 {
		t.Fatalf("ran %d trials, want 10", acc.count)
	}
}

func TestNewProgressPrinterResetsPerJob(t *testing.T) {
	var buf strings.Builder
	p := NewProgressPrinter(&buf, "job")
	// Job 1: two shards of a 100-trial job.
	p(50, 100)
	p(100, 100)
	// Job 2 with the same total must print again from 0%.
	p(50, 100)
	p(100, 100)
	// Job 3 with a new total resets even though done jumped upward.
	p(640, 1000)
	p(1000, 1000)
	got := strings.Count(buf.String(), "\n")
	if got != 6 {
		t.Fatalf("printed %d lines, want 6:\n%s", got, buf.String())
	}
	// Within one job, a tick below the next decile prints nothing.
	buf.Reset()
	p2 := NewProgressPrinter(&buf, "job")
	p2(10, 1000)
	p2(19, 1000)
	if got := strings.Count(buf.String(), "\n"); got != 1 {
		t.Fatalf("sub-decile tick printed: %q", buf.String())
	}
}

// A non-positive total must be ignored, not divided by: the printer sits
// on server paths where a panic would kill the process.
func TestNewProgressPrinterIgnoresZeroTotal(t *testing.T) {
	var buf strings.Builder
	p := NewProgressPrinter(&buf, "job")
	p(0, 0)
	p(5, 0)
	p(1, -3)
	if buf.Len() != 0 {
		t.Fatalf("zero-total ticks printed: %q", buf.String())
	}
	// The printer still works for a real job afterwards.
	p(100, 100)
	if got := strings.Count(buf.String(), "\n"); got != 1 {
		t.Fatalf("printer broken after zero-total tick: %q", buf.String())
	}
}

func TestRunPanicsOnBadJob(t *testing.T) {
	for name, job := range map[string]Job{
		"no trials": {Trials: 0, NewAcc: func() Accumulator { return &sumAcc{} }, Trial: func(*rand.Rand, int, Accumulator) {}},
		"no newacc": {Trials: 1, Trial: func(*rand.Rand, int, Accumulator) {}},
		"no trial":  {Trials: 1, NewAcc: func() Accumulator { return &sumAcc{} }},
		"both trial fns": {Trials: 1, NewAcc: func() Accumulator { return &sumAcc{} },
			Trial:        func(*rand.Rand, int, Accumulator) {},
			TrialScratch: func(*rand.Rand, int, Accumulator, any) {}},
		"scratch without trialscratch": {Trials: 1, NewAcc: func() Accumulator { return &sumAcc{} },
			Trial:      func(*rand.Rand, int, Accumulator) {},
			NewScratch: func() any { return nil }},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			Run(job, Options{})
		}()
	}
}

// TestMapScratchMatchesMap pins MapScratch to Map: same trial order, same
// results, one scratch per shard threaded through that shard's trials, at
// any parallelism.
func TestMapScratchMatchesMap(t *testing.T) {
	const n, seed = 103, int64(5)
	f := func(rng *rand.Rand, trial int) float64 { return rng.Float64() + float64(trial) }
	want := Map(n, seed, Options{Parallelism: 1, ShardSize: 8}, f)
	for _, par := range []int{1, 4, 0} {
		var mu sync.Mutex
		scratches := 0
		got := MapScratch(n, seed, Options{Parallelism: par, ShardSize: 8},
			func() *[]int {
				mu.Lock()
				scratches++
				mu.Unlock()
				s := make([]int, 0, 8)
				return &s
			},
			func(rng *rand.Rand, trial int, s *[]int) float64 {
				*s = append(*s, trial) // scratch carries capacity; contents unused
				return f(rng, trial)
			})
		if len(got) != len(want) {
			t.Fatalf("parallelism %d: %d results, want %d", par, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("parallelism %d: result %d = %v, want %v", par, i, got[i], want[i])
			}
		}
		workers := par
		if workers <= 0 {
			workers = runtime.GOMAXPROCS(0)
		}
		if shards := (n + 7) / 8; workers > shards {
			workers = shards
		}
		if scratches < 1 || scratches > workers {
			t.Errorf("parallelism %d: newScratch called %d times, want 1..%d (once per worker)", par, scratches, workers)
		}
	}
}
