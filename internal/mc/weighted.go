package mc

import (
	"bytes"
	"context"
	"encoding/gob"
	"fmt"
	"math"
	"math/rand"

	"arcc/internal/stats"
)

// Weighted jobs: Monte Carlo whose trials carry an importance-sampling
// likelihood ratio. A trial fills a vector of per-dimension observations
// (e.g. one faulty-page fraction per lifetime year) and returns its
// weight against the target distribution; the engine folds every
// dimension into a stats.Weighted estimator, so the result carries the
// unbiased weighted mean, a confidence interval, and the effective
// sample size — in O(Dims) memory regardless of the trial count.
// Plain (unaccelerated) sampling is the weight-1 special case, and
// stats.Weighted keeps its weighted sum as a plain running sum, so a
// weights-all-one job reproduces a legacy sum-and-divide accumulator bit
// for bit: same additions, same shard-order merge.

// WeightedJob describes one weighted Monte Carlo computation.
type WeightedJob struct {
	// Trials is the total number of trials to run. Must be positive.
	Trials int
	// Seed is the base seed; shard i draws from a stream seeded with
	// Seed ^ splitmix64(i), exactly as in Job.
	Seed int64
	// Dims is the length of the observation vector each trial fills.
	// Must be positive.
	Dims int
	// SketchDims lists the dimensions (indexes < Dims, no duplicates)
	// whose raw observations are additionally folded into a quantile
	// sketch. Sketches record the unweighted values, so their quantiles
	// are meaningful only when every trial weight is 1 — callers running
	// accelerated (weighted) jobs should leave this empty.
	SketchDims []int
	// SketchK is the per-level sketch capacity (0 = stats.DefaultSketchK).
	SketchK int
	// NewScratch, optional, allocates a per-worker scratch workspace with
	// the same capacity-only contract as Job.NewScratch.
	NewScratch func() any
	// Trial runs trial number trial (0-based, global across shards): it
	// writes one observation per dimension into vals (zeroed by the
	// engine before every call, len == Dims) and returns the trial's
	// likelihood ratio against the target distribution — 1 for plain
	// sampling. The weight must be finite and non-negative. scratch is
	// nil when NewScratch is.
	Trial func(rng *rand.Rand, trial int, scratch any, vals []float64) float64
}

// WeightedSet is the result of a weighted job: one estimator per
// dimension plus the requested quantile sketches, merged across shards
// in shard-index order. Fields are exported for gob checkpointing;
// treat them as read-only.
type WeightedSet struct {
	// Dims holds one weighted estimator per observation dimension.
	Dims []stats.Weighted
	// SketchDims and Sketches mirror WeightedJob.SketchDims: Sketches[j]
	// summarises dimension SketchDims[j].
	SketchDims []int
	Sketches   []*stats.QuantileSketch
}

// Sketch returns the quantile sketch of dimension dim, or nil when the
// job did not request one for it.
func (s *WeightedSet) Sketch(dim int) *stats.QuantileSketch {
	for j, d := range s.SketchDims {
		if d == dim {
			return s.Sketches[j]
		}
	}
	return nil
}

// Merge folds another set into the receiver, dimension by dimension.
// Like every streaming merge the result depends on the merge order; the
// engine always merges in shard-index order.
func (s *WeightedSet) Merge(o *WeightedSet) {
	if len(o.Dims) != len(s.Dims) || len(o.Sketches) != len(s.Sketches) {
		panic("mc: merging weighted sets of different shape")
	}
	for i := range s.Dims {
		s.Dims[i].Merge(o.Dims[i])
	}
	for j := range s.Sketches {
		s.Sketches[j].Merge(o.Sketches[j])
	}
}

func (s *WeightedSet) add(vals []float64, w float64) {
	if w < 0 || math.IsNaN(w) || math.IsInf(w, 0) {
		panic(fmt.Sprintf("mc: trial weight %v is not a likelihood ratio", w))
	}
	for i := range s.Dims {
		s.Dims[i].Add(vals[i], w)
	}
	for j, d := range s.SketchDims {
		s.Sketches[j].Add(vals[d])
	}
}

// RunWeighted executes the job and returns the shard-order merge of all
// per-shard estimator sets.
func RunWeighted(job WeightedJob, opts Options) *WeightedSet {
	set, err := RunWeightedCtx(context.Background(), job, opts)
	if err != nil {
		panic(err) // a background context never cancels
	}
	return set
}

// RunWeightedCtx is RunWeighted under a context: a cancelled context
// returns (nil, ErrCanceled) within one shard boundary.
func RunWeightedCtx(ctx context.Context, job WeightedJob, opts Options) (*WeightedSet, error) {
	if job.Dims <= 0 {
		panic(fmt.Sprintf("mc: non-positive dimension count %d", job.Dims))
	}
	if job.Trial == nil {
		panic("mc: weighted job needs Trial")
	}
	seen := make(map[int]bool, len(job.SketchDims))
	for _, d := range job.SketchDims {
		if d < 0 || d >= job.Dims {
			panic(fmt.Sprintf("mc: sketch dimension %d outside [0, %d)", d, job.Dims))
		}
		if seen[d] {
			panic(fmt.Sprintf("mc: duplicate sketch dimension %d", d))
		}
		seen[d] = true
	}
	newSet := func() *WeightedSet {
		set := &WeightedSet{Dims: make([]stats.Weighted, job.Dims)}
		if len(job.SketchDims) > 0 {
			set.SketchDims = append([]int(nil), job.SketchDims...)
			set.Sketches = make([]*stats.QuantileSketch, len(job.SketchDims))
			for j := range set.Sketches {
				set.Sketches[j] = stats.NewQuantileSketch(job.SketchK)
			}
		}
		return set
	}
	acc, err := RunCtx(ctx, Job{
		Trials: job.Trials,
		Seed:   job.Seed,
		NewAcc: func() Accumulator {
			return &weightedAcc{set: newSet(), vals: make([]float64, job.Dims)}
		},
		NewScratch: job.NewScratch,
		TrialScratch: func(rng *rand.Rand, trial int, a Accumulator, scratch any) {
			wa := a.(*weightedAcc)
			for i := range wa.vals {
				wa.vals[i] = 0
			}
			w := job.Trial(rng, trial, scratch, wa.vals)
			wa.set.add(wa.vals, w)
		},
	}, opts)
	if err != nil {
		return nil, err
	}
	return acc.(*weightedAcc).set, nil
}

// weightedAcc is the per-shard accumulator of a weighted job: the
// estimator set plus the shard's reusable observation buffer (capacity
// only — zeroed before every trial — so it is excluded from Merge and
// from the checkpoint image).
type weightedAcc struct {
	set  *WeightedSet
	vals []float64
}

func (a *weightedAcc) Merge(other Accumulator) {
	a.set.Merge(other.(*weightedAcc).set)
}

// MarshalBinary makes weighted jobs checkpointable (see
// CheckpointConfig): gob round-trips the estimator floats bit for bit.
func (a *weightedAcc) MarshalBinary() ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(a.set); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// UnmarshalBinary restores a shard's estimator set from MarshalBinary
// bytes.
func (a *weightedAcc) UnmarshalBinary(b []byte) error {
	set := new(WeightedSet)
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(set); err != nil {
		return err
	}
	a.set = set
	return nil
}
