// Package mc is the sharded Monte Carlo engine behind every lifetime
// figure the repository regenerates (Fig 3.1, 6.1 validation, 7.4-7.6)
// and behind the replicated simulation runs of Chapter 7.
//
// A job's trials are partitioned into fixed-size shards. Each shard owns a
// private RNG stream whose seed is derived from the job seed and the shard
// index alone (base ^ splitmix64(shardIndex)), and accumulates its trial
// results into a private Accumulator. Shards are executed by a pool of
// workers and their accumulators are merged in shard-index order once all
// shards finish. Because the shard structure, the per-shard streams, and
// the merge order depend only on (Trials, ShardSize, Seed) — never on the
// worker count — a job's result is bit-identical at any parallelism,
// including the serial Parallelism=1 special case, which runs the shards
// inline on the calling goroutine with no pool at all.
//
// Jobs whose trials need working buffers (fault-arrival histories, decode
// workspaces, whole simulator-run state) set NewScratch/TrialScratch: the
// engine creates one scratch workspace per worker and threads it through
// every trial that worker executes, so the steady-state trial loop
// allocates nothing. A scratch carries capacity, never state, which keeps
// results independent of how shards are distributed over workers.
package mc

import (
	"bytes"
	"context"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"runtime"
	"sync"
)

// ErrCanceled is the sentinel RunCtx (and the MapCtx/MapScratchCtx
// wrappers) return when the context is cancelled before the job
// completes. The engine stops within one shard boundary of the cancel: no
// new shard starts once the context is done, in-flight shards finish, and
// every worker goroutine exits before RunCtx returns.
var ErrCanceled = errors.New("mc: run canceled")

// DefaultShardSize is the number of trials per shard when Options.ShardSize
// is zero. Small enough to load-balance thousands of cheap trials across a
// pool, large enough to amortise RNG and accumulator setup.
const DefaultShardSize = 64

// Accumulator collects the results of the trials of one shard. One
// accumulator is created per shard and used from a single goroutine;
// implementations need no internal locking.
type Accumulator interface {
	// Merge folds other — the accumulator of a later shard — into the
	// receiver. The engine always merges in shard-index order, so
	// implementations may rely on a deterministic fold even for
	// non-associative float accumulation.
	Merge(other Accumulator)
}

// Job describes one Monte Carlo computation. Exactly one of Trial and
// TrialScratch must be set.
type Job struct {
	// Trials is the total number of trials to run. Must be positive.
	Trials int
	// Seed is the base seed; shard i draws from a stream seeded with
	// Seed ^ splitmix64(i).
	Seed int64
	// NewAcc allocates an empty per-shard accumulator.
	NewAcc func() Accumulator
	// Trial runs trial number trial (0-based, global across shards) using
	// the shard's rng and records its result in acc.
	Trial func(rng *rand.Rand, trial int, acc Accumulator)
	// NewScratch, optional, allocates a scratch workspace. It is created
	// once per worker and handed to every TrialScratch call that worker
	// executes, so per-trial working buffers (fault-arrival histories,
	// decode workspaces, whole simulator-run state) are reused across all
	// the shards a worker drains instead of reallocated per trial or per
	// shard. The scratch must not influence results — trials may not read
	// state a previous trial left behind — so the engine's
	// bit-identical-at-any-parallelism contract is preserved regardless of
	// which shards share a workspace.
	NewScratch func() any
	// TrialScratch is Trial with the shard's scratch workspace. Set it
	// (instead of Trial) together with NewScratch for allocation-free
	// trial loops; scratch is nil when NewScratch is.
	TrialScratch func(rng *rand.Rand, trial int, acc Accumulator, scratch any)
}

// Options tunes how a job executes without affecting its result.
type Options struct {
	// Parallelism is the worker count; <= 0 means runtime.GOMAXPROCS(0).
	// 1 runs the shards inline with no goroutines.
	Parallelism int
	// ShardSize overrides DefaultShardSize. Results are bit-identical only
	// across runs that use the same shard size. Callers whose trials are
	// individually expensive (whole simulator runs) should set 1.
	ShardSize int
	// Progress, when non-nil, is called with (0, total) when the job
	// starts — an explicit job-start signal, so a sink shared across
	// consecutive jobs need not infer boundaries from count heuristics —
	// and then after each shard completes with the number of trials
	// finished so far and the total. A resumed job (Checkpoint.Resume)
	// additionally reports the restored trials right after the start
	// signal. Calls are serialised by the engine; done is non-decreasing
	// across the calls of one job.
	Progress func(done, total int)
	// Checkpoint, when non-nil, enables shard-level checkpoint/resume
	// (see CheckpointConfig). Like every other option it cannot affect
	// the result: a resumed run is bit-identical to an uninterrupted one.
	Checkpoint *CheckpointConfig
}

// Workers returns the effective worker count the options request (before
// capping at the job's shard count).
func (o Options) Workers() int {
	if o.Parallelism <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return o.Parallelism
}

func (o Options) shardSize() int {
	if o.ShardSize <= 0 {
		return DefaultShardSize
	}
	return o.ShardSize
}

// Run executes the job and returns the merge of all shard accumulators
// (shard 0's accumulator after folding shards 1..n-1 into it, in order).
func Run(job Job, opts Options) Accumulator {
	acc, err := RunCtx(context.Background(), job, opts)
	if err != nil {
		// A background context never cancels, and RunCtx has no other
		// error path.
		panic(err)
	}
	return acc
}

// RunCtx is Run under a context: it executes the job and returns the
// merge of all shard accumulators (shard 0's accumulator after folding
// shards 1..n-1 into it, in order). If ctx is cancelled mid-run it
// returns (nil, ErrCanceled) within one shard boundary instead of
// completing the fan-out; a run that completes is unaffected by a cancel
// that arrives afterwards.
func RunCtx(ctx context.Context, job Job, opts Options) (Accumulator, error) {
	if job.Trials <= 0 {
		panic(fmt.Sprintf("mc: non-positive trial count %d", job.Trials))
	}
	if job.NewAcc == nil {
		panic("mc: job needs NewAcc")
	}
	if (job.Trial == nil) == (job.TrialScratch == nil) {
		panic("mc: job needs exactly one of Trial and TrialScratch")
	}
	if job.NewScratch != nil && job.TrialScratch == nil {
		panic("mc: NewScratch requires TrialScratch")
	}
	size := opts.shardSize()
	shards := (job.Trials + size - 1) / size
	accs := make([]Accumulator, shards)

	// Restore completed shards from a prior interrupted run before any
	// work is dispatched; restored slots are skipped below and their
	// accumulators merge in shard order exactly as if they had just run.
	ckpt := newCheckpointer(job, size, opts.Checkpoint)
	resumed := 0
	if ckpt != nil {
		resumed = ckpt.restore(accs)
	}
	if opts.Progress != nil {
		// Explicit job-start signal (see Options.Progress): emitted before
		// any worker goroutine exists, so it is ordered before every
		// per-shard call.
		opts.Progress(0, job.Trials)
		if resumed > 0 {
			opts.Progress(resumed, job.Trials)
		}
	}

	newScratch := func() any {
		if job.NewScratch != nil {
			return job.NewScratch()
		}
		return nil
	}
	runShard := func(s int, scratch any) {
		rng := rand.New(rand.NewSource(ShardSeed(job.Seed, s)))
		acc := job.NewAcc()
		lo := s * size
		hi := lo + size
		if hi > job.Trials {
			hi = job.Trials
		}
		if job.TrialScratch != nil {
			for t := lo; t < hi; t++ {
				job.TrialScratch(rng, t, acc, scratch)
			}
		} else {
			for t := lo; t < hi; t++ {
				job.Trial(rng, t, acc)
			}
		}
		accs[s] = acc
	}

	toRun := shards
	for s := 0; s < shards; s++ {
		if accs[s] != nil {
			toRun--
		}
	}
	workers := opts.Workers()
	if workers > toRun {
		workers = toRun
	}
	if workers <= 1 {
		scratch := newScratch()
		done := resumed
		for s := 0; s < shards; s++ {
			if accs[s] != nil {
				continue // restored from the checkpoint
			}
			if ctx.Err() != nil {
				if ckpt != nil {
					ckpt.flush()
				}
				return nil, ErrCanceled
			}
			runShard(s, scratch)
			if ckpt != nil {
				ckpt.completed(s, accs[s])
			}
			done += shardTrials(s, size, job.Trials)
			if opts.Progress != nil {
				opts.Progress(done, job.Trials)
			}
		}
	} else {
		var (
			wg      sync.WaitGroup
			mu      sync.Mutex
			done    = resumed
			shardCh = make(chan int)
		)
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer wg.Done()
				scratch := newScratch()
				for s := range shardCh {
					// Drain without working once the run is cancelled, so
					// the dispatcher never blocks and the pool exits.
					if ctx.Err() != nil {
						continue
					}
					runShard(s, scratch)
					if ckpt != nil {
						ckpt.completed(s, accs[s])
					}
					if opts.Progress != nil {
						mu.Lock()
						done += shardTrials(s, size, job.Trials)
						opts.Progress(done, job.Trials)
						mu.Unlock()
					}
				}
			}()
		}
	dispatch:
		for s := 0; s < shards; s++ {
			if accs[s] != nil {
				continue // restored from the checkpoint
			}
			select {
			case shardCh <- s:
			case <-ctx.Done():
				break dispatch
			}
		}
		close(shardCh)
		wg.Wait()
	}
	if ctx.Err() != nil {
		// A cancel that raced the finish line loses: when every shard ran
		// to completion the result is whole, so return it. Only a run
		// with shards actually skipped is cancelled — and its completed
		// shards are flushed to the checkpoint sink first, so a graceful
		// shutdown persists everything that finished.
		for s := 0; s < shards; s++ {
			if accs[s] == nil {
				if ckpt != nil {
					ckpt.flush()
				}
				return nil, ErrCanceled
			}
		}
	}

	out := accs[0]
	for s := 1; s < shards; s++ {
		out.Merge(accs[s])
	}
	return out, nil
}

// shardTrials returns how many trials shard s covers.
func shardTrials(s, size, trials int) int {
	lo := s * size
	hi := lo + size
	if hi > trials {
		hi = trials
	}
	return hi - lo
}

// ShardSeed derives the RNG seed of shard s from the job's base seed. The
// splitmix64 finaliser decorrelates the streams of adjacent shards, so the
// caller may use small consecutive base seeds without overlapping streams.
func ShardSeed(base int64, s int) int64 {
	return int64(uint64(base) ^ splitmix64(uint64(s)))
}

// DeriveSeed produces an independent base seed for a sub-experiment (e.g.
// one rate factor of a sweep) from a root seed and a tag. It reuses the
// splitmix64 finaliser with an offset that keeps sub-experiment streams
// disjoint from shard streams of the root seed.
func DeriveSeed(root int64, tag uint64) int64 {
	return int64(splitmix64(uint64(root) + splitmix64(tag) + 0x632be59bd9b4e019))
}

// splitmix64 is the finaliser of Steele et al.'s SplitMix64 generator: a
// bijective avalanche mix of the input, here used to turn a dense shard
// index into a decorrelated stream seed.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// NewProgressPrinter returns a Progress callback that writes a labelled
// line to w at every completed 10% of a job. It may be shared across
// consecutive jobs: a change of total, or done falling back, marks the
// start of a new job and resets the ticks. A non-positive total is
// ignored rather than divided by — progress of an empty job is
// meaningless, and the printer sits on server paths where a panic would
// kill the process.
func NewProgressPrinter(w io.Writer, label string) func(done, total int) {
	lastDone, lastTotal, lastDecile := -1, -1, -1
	return func(done, total int) {
		if total <= 0 {
			return
		}
		if total != lastTotal || done <= lastDone {
			lastDecile = -1
		}
		lastDone, lastTotal = done, total
		decile := done * 10 / total
		if decile > lastDecile {
			fmt.Fprintf(w, "%s: %d/%d (%d%%)\n", label, done, total, decile*10)
			lastDecile = decile
		}
	}
}

// Map runs n trials and returns their results in trial order: a
// convenience wrapper over Run for jobs whose trials each produce one
// independent value (e.g. one simulator run per seed). The per-trial rng
// comes from the trial's shard stream as usual.
func Map[T any](n int, seed int64, opts Options, f func(rng *rand.Rand, trial int) T) []T {
	out, err := MapCtx(context.Background(), n, seed, opts, f)
	if err != nil {
		panic(err) // a background context never cancels
	}
	return out
}

// MapCtx is Map under a context: a cancelled context returns
// (nil, ErrCanceled) within one shard boundary.
func MapCtx[T any](ctx context.Context, n int, seed int64, opts Options, f func(rng *rand.Rand, trial int) T) ([]T, error) {
	size := opts.shardSize()
	if size > n {
		size = n
	}
	acc, err := RunCtx(ctx, Job{
		Trials: n,
		Seed:   seed,
		// Pre-size each shard's buffers to the shard size, so the trial
		// loop appends without regrowth.
		NewAcc: func() Accumulator {
			return &mapAcc[T]{idx: make([]int, 0, size), vals: make([]T, 0, size)}
		},
		Trial: func(rng *rand.Rand, trial int, a Accumulator) {
			ma := a.(*mapAcc[T])
			ma.idx = append(ma.idx, trial)
			ma.vals = append(ma.vals, f(rng, trial))
		},
	}, opts)
	if err != nil {
		return nil, err
	}
	return collectMap[T](acc, n), nil
}

// MapScratch is Map with a reusable scratch workspace, mirroring the
// Job.NewScratch/TrialScratch pair: newScratch runs once per worker and its
// result is threaded through every trial that worker executes. Like Job
// scratch, the workspace must carry capacity only — a trial must not read
// state a previous trial left behind — so results stay bit-identical at any
// parallelism. sim.RunReplicated and the Fig 7.1-7.3 fan-outs thread a
// sim.Scratch this way, so consecutive simulator runs on a worker reuse one
// world's backing arrays.
func MapScratch[T, S any](n int, seed int64, opts Options, newScratch func() S, f func(rng *rand.Rand, trial int, scratch S) T) []T {
	out, err := MapScratchCtx(context.Background(), n, seed, opts, newScratch, f)
	if err != nil {
		panic(err) // a background context never cancels
	}
	return out
}

// MapScratchCtx is MapScratch under a context: a cancelled context
// returns (nil, ErrCanceled) within one shard boundary.
func MapScratchCtx[T, S any](ctx context.Context, n int, seed int64, opts Options, newScratch func() S, f func(rng *rand.Rand, trial int, scratch S) T) ([]T, error) {
	size := opts.shardSize()
	if size > n {
		size = n
	}
	acc, err := RunCtx(ctx, Job{
		Trials: n,
		Seed:   seed,
		NewAcc: func() Accumulator {
			return &mapAcc[T]{idx: make([]int, 0, size), vals: make([]T, 0, size)}
		},
		NewScratch: func() any { return newScratch() },
		TrialScratch: func(rng *rand.Rand, trial int, a Accumulator, scratch any) {
			ma := a.(*mapAcc[T])
			ma.idx = append(ma.idx, trial)
			ma.vals = append(ma.vals, f(rng, trial, scratch.(S)))
		},
	}, opts)
	if err != nil {
		return nil, err
	}
	return collectMap[T](acc, n), nil
}

// collectMap reorders a merged mapAcc into trial order.
func collectMap[T any](acc Accumulator, n int) []T {
	ma := acc.(*mapAcc[T])
	out := make([]T, n)
	for i, idx := range ma.idx {
		out[idx] = ma.vals[i]
	}
	return out
}

type mapAcc[T any] struct {
	idx  []int
	vals []T
}

func (m *mapAcc[T]) Merge(other Accumulator) {
	o := other.(*mapAcc[T])
	m.idx = append(m.idx, o.idx...)
	m.vals = append(m.vals, o.vals...)
}

// mapAccWire is the gob image of a mapAcc shard; gob needs the exported
// mirror because mapAcc's own fields are unexported.
type mapAccWire[T any] struct {
	Idx  []int
	Vals []T
}

// MarshalBinary makes Map/MapScratch jobs checkpointable (see
// CheckpointConfig): a shard's trial results are gob-encoded, which
// round-trips float64 values bit for bit. It fails — and the engine
// simply skips checkpointing that shard — when T is not gob-encodable
// (e.g. a struct with no exported fields).
func (m *mapAcc[T]) MarshalBinary() ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(mapAccWire[T]{Idx: m.idx, Vals: m.vals}); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// UnmarshalBinary restores a shard's trial results from MarshalBinary
// bytes.
func (m *mapAcc[T]) UnmarshalBinary(b []byte) error {
	var w mapAccWire[T]
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&w); err != nil {
		return err
	}
	m.idx, m.vals = w.Idx, w.Vals
	return nil
}
