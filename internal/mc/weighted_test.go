package mc

import (
	"context"
	"math"
	"math/rand"
	"reflect"
	"runtime"
	"testing"
)

// legacySumAcc mirrors the sum-and-divide accumulators the plain
// lifetime jobs use: per-dimension running sums plus a trial count,
// merged elementwise in shard order.
type legacySumAcc struct {
	sums  []float64
	count int
}

func (a *legacySumAcc) Merge(other Accumulator) {
	o := other.(*legacySumAcc)
	for i := range a.sums {
		a.sums[i] += o.sums[i]
	}
	a.count += o.count
}

// weightedObs fills vals deterministically from the trial's rng stream,
// the same way for both engines under test.
func weightedObs(rng *rand.Rand, vals []float64) {
	for i := range vals {
		vals[i] = rng.Float64() * float64(i+1)
	}
}

// TestRunWeightedAllOnesBitIdentical is the weights-all-one equivalence
// property: a weighted job whose every trial returns weight 1 must
// reproduce the legacy sum-and-divide accumulator bit for bit — same
// additions in the same shard order, then one division.
func TestRunWeightedAllOnesBitIdentical(t *testing.T) {
	const dims, trials = 3, 1000
	set := RunWeighted(WeightedJob{
		Trials: trials,
		Seed:   42,
		Dims:   dims,
		Trial: func(rng *rand.Rand, trial int, _ any, vals []float64) float64 {
			weightedObs(rng, vals)
			return 1
		},
	}, Options{Parallelism: 4})

	acc := Run(Job{
		Trials: trials,
		Seed:   42,
		NewAcc: func() Accumulator { return &legacySumAcc{sums: make([]float64, dims)} },
		Trial: func(rng *rand.Rand, trial int, a Accumulator) {
			la := a.(*legacySumAcc)
			vals := make([]float64, dims)
			weightedObs(rng, vals)
			for i, v := range vals {
				la.sums[i] += v
			}
			la.count++
		},
	}, Options{Parallelism: 4}).(*legacySumAcc)

	for i := 0; i < dims; i++ {
		want := acc.sums[i] / float64(acc.count)
		got := set.Dims[i].Mean()
		if math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("dim %d: weighted mean %v != legacy mean %v (bitwise)", i, got, want)
		}
		if set.Dims[i].N() != trials {
			t.Fatalf("dim %d: N = %d, want %d", i, set.Dims[i].N(), trials)
		}
		if ess := set.Dims[i].ESS(); math.Abs(ess-trials) > 1e-6 {
			t.Fatalf("dim %d: unit-weight ESS = %v, want %d", i, ess, trials)
		}
	}
}

// TestRunWeightedParallelismDeterminism: the full result — estimators
// and sketches — must be identical at any worker count.
func TestRunWeightedParallelismDeterminism(t *testing.T) {
	job := WeightedJob{
		Trials:     2000,
		Seed:       7,
		Dims:       2,
		SketchDims: []int{1},
		SketchK:    64,
		Trial: func(rng *rand.Rand, trial int, _ any, vals []float64) float64 {
			weightedObs(rng, vals)
			return 0.5 + rng.Float64()
		},
	}
	base := RunWeighted(job, Options{Parallelism: 1})
	for _, p := range []int{4, runtime.GOMAXPROCS(0)} {
		got := RunWeighted(job, Options{Parallelism: p})
		if !reflect.DeepEqual(base, got) {
			t.Fatalf("parallelism %d result differs from serial run", p)
		}
	}
}

func TestRunWeightedSketch(t *testing.T) {
	set := RunWeighted(WeightedJob{
		Trials:     5000,
		Seed:       3,
		Dims:       2,
		SketchDims: []int{0},
		Trial: func(rng *rand.Rand, trial int, _ any, vals []float64) float64 {
			vals[0] = rng.Float64()
			vals[1] = rng.NormFloat64()
			return 1
		},
	}, Options{})
	sk := set.Sketch(0)
	if sk == nil {
		t.Fatal("requested sketch missing")
	}
	if set.Sketch(1) != nil {
		t.Fatal("unrequested sketch present")
	}
	if sk.N != 5000 {
		t.Fatalf("sketch N = %d, want 5000", sk.N)
	}
	if p50 := sk.Quantile(0.5); math.Abs(p50-0.5) > 0.05 {
		t.Fatalf("uniform median estimate %v", p50)
	}
}

func TestRunWeightedScratch(t *testing.T) {
	type ws struct{ buf []float64 }
	set := RunWeighted(WeightedJob{
		Trials:     500,
		Seed:       9,
		Dims:       1,
		NewScratch: func() any { return &ws{buf: make([]float64, 8)} },
		Trial: func(rng *rand.Rand, trial int, scratch any, vals []float64) float64 {
			s := scratch.(*ws)
			for i := range s.buf {
				s.buf[i] = rng.Float64()
			}
			vals[0] = s.buf[3]
			return 1
		},
	}, Options{Parallelism: 4})
	if set.Dims[0].N() != 500 {
		t.Fatalf("N = %d", set.Dims[0].N())
	}
}

func TestRunWeightedCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := RunWeightedCtx(ctx, WeightedJob{
		Trials: 100,
		Dims:   1,
		Trial: func(rng *rand.Rand, trial int, _ any, vals []float64) float64 {
			vals[0] = rng.Float64()
			return 1
		},
	}, Options{})
	if err != ErrCanceled {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
}

// TestRunWeightedCheckpointResume: a weighted run resumed from a
// mid-run snapshot must be bit-identical to an uninterrupted run.
func TestRunWeightedCheckpointResume(t *testing.T) {
	job := WeightedJob{
		Trials:     1000,
		Seed:       11,
		Dims:       2,
		SketchDims: []int{0},
		SketchK:    32,
		Trial: func(rng *rand.Rand, trial int, _ any, vals []float64) float64 {
			weightedObs(rng, vals)
			return 1 + rng.Float64()
		},
	}
	full := RunWeighted(job, Options{Parallelism: 1})

	var snap *Checkpoint
	ctx, cancel := context.WithCancel(context.Background())
	_, err := RunWeightedCtx(ctx, job, Options{
		Parallelism: 1,
		Checkpoint: &CheckpointConfig{Sink: func(c *Checkpoint) {
			if len(c.Shards) >= 5 {
				snap = c
				cancel()
			}
		}},
	})
	if err != ErrCanceled {
		t.Fatalf("interrupted run: err = %v, want ErrCanceled", err)
	}
	if snap == nil || len(snap.Shards) == 0 {
		t.Fatal("no snapshot captured before cancel")
	}

	resumed, err := RunWeightedCtx(context.Background(), job, Options{
		Parallelism: 1,
		Checkpoint:  &CheckpointConfig{Resume: snap},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(full, resumed) {
		t.Fatal("resumed run differs from uninterrupted run")
	}
}

func TestRunWeightedPanics(t *testing.T) {
	ok := func(rng *rand.Rand, trial int, _ any, vals []float64) float64 {
		vals[0] = rng.Float64()
		return 1
	}
	for name, f := range map[string]func(){
		"zero dims":      func() { RunWeighted(WeightedJob{Trials: 1, Dims: 0, Trial: ok}, Options{}) },
		"nil trial":      func() { RunWeighted(WeightedJob{Trials: 1, Dims: 1}, Options{}) },
		"sketch dim oob": func() { RunWeighted(WeightedJob{Trials: 1, Dims: 1, SketchDims: []int{1}, Trial: ok}, Options{}) },
		"sketch dim dup": func() { RunWeighted(WeightedJob{Trials: 1, Dims: 1, SketchDims: []int{0, 0}, Trial: ok}, Options{}) },
		"negative weight": func() {
			RunWeighted(WeightedJob{Trials: 1, Dims: 1, Trial: func(*rand.Rand, int, any, []float64) float64 { return -1 }}, Options{})
		},
		"nan weight": func() {
			RunWeighted(WeightedJob{Trials: 1, Dims: 1, Trial: func(*rand.Rand, int, any, []float64) float64 { return math.NaN() }}, Options{})
		},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			f()
		}()
	}
}

func BenchmarkRunWeighted(b *testing.B) {
	job := WeightedJob{
		Trials: 10_000,
		Seed:   1,
		Dims:   8,
		Trial: func(rng *rand.Rand, trial int, _ any, vals []float64) float64 {
			weightedObs(rng, vals)
			return 1
		},
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		RunWeighted(job, Options{Parallelism: 4})
	}
}
