package mc

import (
	"context"
	"errors"
	"math/rand"
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

// slowJob builds a job whose trials block on a gate channel after
// signalling that work started, so a test can cancel mid-fan-out with
// shards still pending.
func slowJob(trials int, started *atomic.Int64, gate <-chan struct{}) Job {
	return Job{
		Trials: trials,
		Seed:   1,
		NewAcc: func() Accumulator { return &countAcc{} },
		Trial: func(_ *rand.Rand, _ int, acc Accumulator) {
			started.Add(1)
			<-gate
			acc.(*countAcc).n++
		},
	}
}

type countAcc struct{ n int }

func (a *countAcc) Merge(other Accumulator) { a.n += other.(*countAcc).n }

// TestRunCtxCancelStopsEarly cancels a parallel run while its first
// shards are in flight and asserts the engine returns ErrCanceled
// promptly — without completing the whole fan-out — and that no worker
// goroutines are left behind.
func TestRunCtxCancelStopsEarly(t *testing.T) {
	const trials = 64 * 100 // 100 shards at the default shard size
	baseline := runtime.NumGoroutine()

	var started atomic.Int64
	gate := make(chan struct{})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	resCh := make(chan error, 1)
	go func() {
		_, err := RunCtx(ctx, slowJob(trials, &started, gate), Options{Parallelism: 4})
		resCh <- err
	}()

	// Wait for the pool to be mid-shard, then cancel and release the gate
	// so in-flight trials can finish.
	for started.Load() == 0 {
		time.Sleep(time.Millisecond)
	}
	cancel()
	close(gate)

	select {
	case err := <-resCh:
		if !errors.Is(err, ErrCanceled) {
			t.Fatalf("RunCtx error = %v, want ErrCanceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("RunCtx did not return after cancel")
	}
	// Cancellation cuts the run short: at most the in-flight shards (one
	// per worker, 64 trials each) plus a scheduling margin may have run.
	if got := started.Load(); got >= trials {
		t.Fatalf("all %d trials ran despite cancellation", got)
	}

	// No goroutine leaks: the pool drains and exits.
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC() // encourage exited goroutines to be reaped promptly
		if n := runtime.NumGoroutine(); n <= baseline+2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d running, baseline %d", runtime.NumGoroutine(), baseline)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestRunCtxCancelSerial covers the inline Parallelism=1 path: a context
// cancelled between shards stops the loop at the next shard boundary.
func TestRunCtxCancelSerial(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	ran := 0
	job := Job{
		Trials: 10 * DefaultShardSize,
		Seed:   1,
		NewAcc: func() Accumulator { return &countAcc{} },
		Trial: func(_ *rand.Rand, trial int, acc Accumulator) {
			ran++
			if trial == DefaultShardSize-1 {
				cancel() // mid-first-shard: the shard finishes, the next never starts
			}
			acc.(*countAcc).n++
		},
	}
	acc, err := RunCtx(ctx, job, Options{Parallelism: 1})
	if !errors.Is(err, ErrCanceled) || acc != nil {
		t.Fatalf("RunCtx = (%v, %v), want (nil, ErrCanceled)", acc, err)
	}
	if ran != DefaultShardSize {
		t.Fatalf("%d trials ran, want exactly the in-flight shard (%d)", ran, DefaultShardSize)
	}
}

// TestRunCtxLateCancelKeepsResult pins that a cancel racing the finish
// line loses: when every shard ran to completion the whole result is
// returned, not discarded.
func TestRunCtxLateCancelKeepsResult(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	const trials = 2 * DefaultShardSize
	job := Job{
		Trials: trials,
		Seed:   1,
		NewAcc: func() Accumulator { return &countAcc{} },
		Trial: func(_ *rand.Rand, trial int, acc Accumulator) {
			if trial == trials-1 {
				cancel() // cancel during the very last trial
			}
			acc.(*countAcc).n++
		},
	}
	acc, err := RunCtx(ctx, job, Options{Parallelism: 1})
	if err != nil {
		t.Fatalf("late cancel discarded a completed run: %v", err)
	}
	if got := acc.(*countAcc).n; got != trials {
		t.Fatalf("counted %d trials, want %d", got, trials)
	}
}

// TestRunCtxCompletesUncancelled pins that RunCtx with a live context is
// Run: same accumulator, nil error.
func TestRunCtxCompletesUncancelled(t *testing.T) {
	job := Job{
		Trials: 1000,
		Seed:   7,
		NewAcc: func() Accumulator { return &countAcc{} },
		Trial:  func(_ *rand.Rand, _ int, acc Accumulator) { acc.(*countAcc).n++ },
	}
	acc, err := RunCtx(context.Background(), job, Options{Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	if got := acc.(*countAcc).n; got != 1000 {
		t.Fatalf("counted %d trials, want 1000", got)
	}
}

// TestMapCtxCancel exercises the generic wrappers' error path.
func TestMapCtxCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := MapCtx(ctx, 100, 1, Options{}, func(*rand.Rand, int) int { return 0 }); !errors.Is(err, ErrCanceled) {
		t.Fatalf("MapCtx error = %v, want ErrCanceled", err)
	}
	if _, err := MapScratchCtx(ctx, 100, 1, Options{}, func() *int { return new(int) },
		func(*rand.Rand, int, *int) int { return 0 }); !errors.Is(err, ErrCanceled) {
		t.Fatalf("MapScratchCtx error = %v, want ErrCanceled", err)
	}
}
