package mc

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"math"
	"math/rand"
	"sync/atomic"
	"testing"
	"time"
)

// ckSum is sumAcc with an exact binary round trip, making jobs built on
// it checkpointable.
type ckSum struct {
	sum   float64
	count int
}

func (a *ckSum) Merge(other Accumulator) {
	o := other.(*ckSum)
	a.sum += o.sum
	a.count += o.count
}

func (a *ckSum) MarshalBinary() ([]byte, error) {
	out := make([]byte, 16)
	binary.LittleEndian.PutUint64(out, math.Float64bits(a.sum))
	binary.LittleEndian.PutUint64(out[8:], uint64(a.count))
	return out, nil
}

func (a *ckSum) UnmarshalBinary(b []byte) error {
	if len(b) != 16 {
		return errors.New("ckSum: bad length")
	}
	a.sum = math.Float64frombits(binary.LittleEndian.Uint64(b))
	a.count = int(binary.LittleEndian.Uint64(b[8:]))
	return nil
}

// ckJob mirrors sumJob over ckSum; executed (when non-nil) counts the
// trials whose bodies actually ran, proving restored shards are skipped.
func ckJob(trials int, seed int64, executed *atomic.Int64) Job {
	return Job{
		Trials: trials,
		Seed:   seed,
		NewAcc: func() Accumulator { return &ckSum{} },
		Trial: func(rng *rand.Rand, trial int, acc Accumulator) {
			if executed != nil {
				executed.Add(1)
			}
			a := acc.(*ckSum)
			a.sum += rng.Float64() * float64(trial%7+1)
			a.count++
		},
	}
}

// interrupt runs the job with checkpointing on and cancels after
// afterShards fresh snapshots, returning the latest checkpoint. The run
// must actually be interrupted (return ErrCanceled).
func interrupt(t *testing.T, job Job, opts Options, resume *Checkpoint, afterShards int) *Checkpoint {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var latest *Checkpoint
	snaps := 0
	opts.Checkpoint = &CheckpointConfig{
		Resume: resume,
		Sink: func(cp *Checkpoint) {
			latest = cp
			snaps++
			if snaps >= afterShards {
				cancel()
			}
		},
	}
	if _, err := RunCtx(ctx, job, opts); !errors.Is(err, ErrCanceled) {
		t.Fatalf("interrupted run returned %v, want ErrCanceled", err)
	}
	if latest == nil {
		t.Fatal("no checkpoint emitted before the cancel")
	}
	return latest
}

func TestCheckpointResumeBitIdentical(t *testing.T) {
	const trials, seed = 1000, 42
	want := Run(ckJob(trials, seed, nil), Options{Parallelism: 1}).(*ckSum)

	for _, par := range []int{1, 4} {
		opts := Options{Parallelism: par}
		cp := interrupt(t, ckJob(trials, seed, nil), opts, nil, 5)
		if cp.Done() == 0 || cp.Done() >= trials {
			t.Fatalf("parallelism %d: checkpoint covers %d/%d trials, want a strict mid-point", par, cp.Done(), trials)
		}

		var executed atomic.Int64
		acc, err := RunCtxResumable(context.Background(), ckJob(trials, seed, &executed), opts,
			&CheckpointConfig{Resume: cp})
		if err != nil {
			t.Fatalf("parallelism %d: resume: %v", par, err)
		}
		got := acc.(*ckSum)
		if got.sum != want.sum || got.count != want.count {
			t.Errorf("parallelism %d: resumed sum %v (count %d), want bit-identical %v (%d)",
				par, got.sum, got.count, want.sum, want.count)
		}
		if int(executed.Load()) != trials-cp.Done() {
			t.Errorf("parallelism %d: resume executed %d trials, want %d (checkpoint covers %d)",
				par, executed.Load(), trials-cp.Done(), cp.Done())
		}
	}
}

func TestCheckpointResumeAfterManyInterruptions(t *testing.T) {
	const trials, seed = 1000, 7
	want := Run(ckJob(trials, seed, nil), Options{Parallelism: 1}).(*ckSum)

	// Interrupt after every 3 fresh shards until a resume completes; the
	// final result must be bit-identical no matter how many times the run
	// died.
	var cp *Checkpoint
	interruptions := 0
	for {
		if cp != nil && trials-cp.Done() <= 3*DefaultShardSize {
			break // next run would finish before the third snapshot
		}
		cp = interrupt(t, ckJob(trials, seed, nil), Options{Parallelism: 2}, cp, 3)
		interruptions++
	}
	if interruptions < 2 {
		t.Fatalf("only %d interruptions; the test needs several to mean anything", interruptions)
	}
	acc, err := RunCtxResumable(context.Background(), ckJob(trials, seed, nil), Options{Parallelism: 2},
		&CheckpointConfig{Resume: cp})
	if err != nil {
		t.Fatalf("final resume: %v", err)
	}
	got := acc.(*ckSum)
	if got.sum != want.sum || got.count != want.count {
		t.Errorf("after %d interruptions: sum %v (count %d), want bit-identical %v (%d)",
			interruptions, got.sum, got.count, want.sum, want.count)
	}
}

func TestCheckpointFullyRestoredRunExecutesNothing(t *testing.T) {
	const trials, seed = 300, 3
	var full *Checkpoint
	_, err := RunCtxResumable(context.Background(), ckJob(trials, seed, nil), Options{Parallelism: 2},
		&CheckpointConfig{Sink: func(cp *Checkpoint) { full = cp }})
	if err != nil {
		t.Fatal(err)
	}
	if full == nil || full.Done() != trials {
		t.Fatalf("completed run's final checkpoint covers %v trials, want %d", full.Done(), trials)
	}

	want := Run(ckJob(trials, seed, nil), Options{Parallelism: 1}).(*ckSum)
	var executed atomic.Int64
	acc, err := RunCtxResumable(context.Background(), ckJob(trials, seed, &executed), Options{Parallelism: 4},
		&CheckpointConfig{Resume: full})
	if err != nil {
		t.Fatal(err)
	}
	if got := acc.(*ckSum); got.sum != want.sum || got.count != want.count {
		t.Errorf("fully restored run: sum %v (count %d), want %v (%d)", got.sum, got.count, want.sum, want.count)
	}
	if executed.Load() != 0 {
		t.Errorf("fully restored run executed %d trials, want 0", executed.Load())
	}
}

func TestCheckpointMismatchIgnored(t *testing.T) {
	const trials, seed = 500, 11
	cp := interrupt(t, ckJob(trials, seed, nil), Options{Parallelism: 1}, nil, 4)

	for name, stale := range map[string]*Checkpoint{
		"seed":      {Trials: cp.Trials, Seed: cp.Seed + 1, ShardSize: cp.ShardSize, Shards: cp.Shards},
		"trials":    {Trials: cp.Trials + 64, Seed: cp.Seed, ShardSize: cp.ShardSize, Shards: cp.Shards},
		"shardsize": {Trials: cp.Trials, Seed: cp.Seed, ShardSize: cp.ShardSize / 2, Shards: cp.Shards},
	} {
		// The job keeps its true shape; only the checkpoint's metadata
		// disagrees, so matches() must reject it wholesale.
		job := ckJob(trials, seed, nil)
		want := Run(job, Options{Parallelism: 1}).(*ckSum)
		var executed atomic.Int64
		jobCounted := job
		jobCounted.Trial = func(rng *rand.Rand, trial int, acc Accumulator) {
			executed.Add(1)
			job.Trial(rng, trial, acc)
		}
		acc, err := RunCtxResumable(context.Background(), jobCounted, Options{Parallelism: 1},
			&CheckpointConfig{Resume: stale})
		if err != nil {
			t.Fatalf("%s mismatch: %v", name, err)
		}
		if int(executed.Load()) != trials {
			t.Errorf("%s mismatch: executed %d trials, want all %d (stale checkpoint must be ignored)",
				name, executed.Load(), trials)
		}
		if got := acc.(*ckSum); got.sum != want.sum {
			t.Errorf("%s mismatch: sum %v, want %v", name, got.sum, want.sum)
		}
	}
}

func TestCheckpointCorruptShardReruns(t *testing.T) {
	const trials, seed = 500, 13
	var full *Checkpoint
	_, err := RunCtxResumable(context.Background(), ckJob(trials, seed, nil), Options{Parallelism: 1},
		&CheckpointConfig{Sink: func(cp *Checkpoint) { full = cp }})
	if err != nil {
		t.Fatal(err)
	}
	corrupt := &Checkpoint{Trials: full.Trials, Seed: full.Seed, ShardSize: full.ShardSize, Shards: map[int][]byte{}}
	for s, b := range full.Shards {
		corrupt.Shards[s] = b
	}
	corrupt.Shards[2] = []byte{0xde, 0xad} // wrong length: Unmarshal fails
	corrupt.Shards[99] = full.Shards[0]    // out of range: ignored
	delete(corrupt.Shards, 3)              // simply missing

	want := Run(ckJob(trials, seed, nil), Options{Parallelism: 1}).(*ckSum)
	var executed atomic.Int64
	acc, err := RunCtxResumable(context.Background(), ckJob(trials, seed, &executed), Options{Parallelism: 1},
		&CheckpointConfig{Resume: corrupt})
	if err != nil {
		t.Fatal(err)
	}
	wantExec := shardTrials(2, full.ShardSize, trials) + shardTrials(3, full.ShardSize, trials)
	if int(executed.Load()) != wantExec {
		t.Errorf("executed %d trials, want %d (only the corrupt and missing shards re-run)", executed.Load(), wantExec)
	}
	if got := acc.(*ckSum); got.sum != want.sum || got.count != want.count {
		t.Errorf("sum %v (count %d), want bit-identical %v (%d)", got.sum, got.count, want.sum, want.count)
	}
}

func TestCheckpointNonMarshalableAccNeverSnapshots(t *testing.T) {
	// sumJob's accumulator has no MarshalBinary: the engine must run the
	// job normally and never call the sink.
	sank := 0
	acc, err := RunCtxResumable(context.Background(), sumJob(500, 1), Options{Parallelism: 2},
		&CheckpointConfig{Sink: func(*Checkpoint) { sank++ }})
	if err != nil {
		t.Fatal(err)
	}
	if sank != 0 {
		t.Errorf("sink called %d times for a non-checkpointable job", sank)
	}
	want := Run(sumJob(500, 1), Options{Parallelism: 1}).(*sumAcc)
	if got := acc.(*sumAcc); got.sum != want.sum {
		t.Errorf("sum %v, want %v", got.sum, want.sum)
	}
}

func TestCheckpointEveryShardsCadence(t *testing.T) {
	const trials = 1000 // 16 shards at the default size
	snaps := 0
	var last *Checkpoint
	_, err := RunCtxResumable(context.Background(), ckJob(trials, 5, nil), Options{Parallelism: 1},
		&CheckpointConfig{EveryShards: 4, Sink: func(cp *Checkpoint) { snaps++; last = cp }})
	if err != nil {
		t.Fatal(err)
	}
	if snaps != 4 {
		t.Errorf("EveryShards=4 over 16 shards: %d snapshots, want 4", snaps)
	}
	if last == nil || last.Done() != trials {
		t.Errorf("final snapshot covers %d trials, want %d", last.Done(), trials)
	}
}

func TestCheckpointPeriodCadence(t *testing.T) {
	// A period far longer than the run: only completion-boundary
	// snapshots can fire, and with EveryShards unset they must not fire
	// per shard.
	snaps := 0
	_, err := RunCtxResumable(context.Background(), ckJob(1000, 5, nil), Options{Parallelism: 1},
		&CheckpointConfig{Period: time.Hour, Sink: func(*Checkpoint) { snaps++ }})
	if err != nil {
		t.Fatal(err)
	}
	if snaps != 0 {
		t.Errorf("hour-long period over a millisecond run: %d snapshots, want 0", snaps)
	}
}

func TestCheckpointFlushOnCancelCoversCompletedShards(t *testing.T) {
	// Cancel with a coarse cadence in flight: the flush on the cancel
	// path must persist shards completed since the last snapshot.
	const trials = 1000
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var last *Checkpoint
	shardsDone := 0
	job := ckJob(trials, 9, nil)
	inner := job.Trial
	job.Trial = func(rng *rand.Rand, trial int, acc Accumulator) {
		inner(rng, trial, acc)
		if trial%DefaultShardSize == DefaultShardSize-1 {
			shardsDone++
			if shardsDone == 6 {
				cancel()
			}
		}
	}
	_, err := RunCtxResumable(ctx, job, Options{Parallelism: 1},
		&CheckpointConfig{EveryShards: 100, Sink: func(cp *Checkpoint) { last = cp }})
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("got %v, want ErrCanceled", err)
	}
	if last == nil {
		t.Fatal("cancel did not flush a checkpoint")
	}
	if want := 6 * DefaultShardSize; last.Done() != want {
		t.Errorf("flushed checkpoint covers %d trials, want %d", last.Done(), want)
	}
}

func TestMapScratchResumeBitIdentical(t *testing.T) {
	// The Map helpers thread Options.Checkpoint straight through to the
	// engine; their mapAcc gob-encodes, so map jobs checkpoint too. The
	// value type's fields must be exported — mirrors the sim fan-outs.
	type cell struct{ V float64 }
	run := func(opts Options, executed *atomic.Int64) ([]cell, error) {
		return MapScratchCtx(context.Background(), 40, 21, opts,
			func() int { return 0 },
			func(rng *rand.Rand, i int, _ int) cell {
				if executed != nil {
					executed.Add(1)
				}
				return cell{V: rng.Float64() * float64(i+1)}
			})
	}
	want, err := run(Options{ShardSize: 1, Parallelism: 1}, nil)
	if err != nil {
		t.Fatal(err)
	}

	// Interrupt after 10 of the 40 single-trial shards.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var cp *Checkpoint
	snaps := 0
	opts := Options{ShardSize: 1, Parallelism: 1, Checkpoint: &CheckpointConfig{Sink: func(c *Checkpoint) {
		cp = c
		if snaps++; snaps == 10 {
			cancel()
		}
	}}}
	_, err = MapScratchCtx(ctx, 40, 21, opts,
		func() int { return 0 },
		func(rng *rand.Rand, i int, _ int) cell { return cell{V: rng.Float64() * float64(i+1)} })
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("got %v, want ErrCanceled", err)
	}

	var executed atomic.Int64
	got, err := run(Options{ShardSize: 1, Parallelism: 1, Checkpoint: &CheckpointConfig{Resume: cp}}, &executed)
	if err != nil {
		t.Fatal(err)
	}
	if int(executed.Load()) != 40-cp.Done() {
		t.Errorf("resume executed %d trials, want %d", executed.Load(), 40-cp.Done())
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("cell %d: resumed %v, want bit-identical %v", i, got[i], want[i])
		}
	}
}

func TestCheckpointJSONRoundTrip(t *testing.T) {
	// The server persists checkpoints as JSON; the blobs must survive the
	// base64 round trip and resume bit-identically.
	const trials, seed = 500, 17
	cp := interrupt(t, ckJob(trials, seed, nil), Options{Parallelism: 1}, nil, 4)
	blob, err := json.Marshal(cp)
	if err != nil {
		t.Fatal(err)
	}
	var back Checkpoint
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}

	want := Run(ckJob(trials, seed, nil), Options{Parallelism: 1}).(*ckSum)
	acc, err := RunCtxResumable(context.Background(), ckJob(trials, seed, nil), Options{Parallelism: 1},
		&CheckpointConfig{Resume: &back})
	if err != nil {
		t.Fatal(err)
	}
	if got := acc.(*ckSum); got.sum != want.sum || got.count != want.count {
		t.Errorf("after JSON round trip: sum %v (count %d), want %v (%d)", got.sum, got.count, want.sum, want.count)
	}
}

func TestResumerAlignsJobSequence(t *testing.T) {
	// Two consecutive engine jobs under one Resumer; interrupt during the
	// second, rebuild a Resumer from the persisted map, and re-run both.
	// Job 0 must restore fully, job 1 partially, results bit-identical.
	const trials, seedA, seedB = 500, 23, 29
	wantA := Run(ckJob(trials, seedA, nil), Options{Parallelism: 1}).(*ckSum)
	wantB := Run(ckJob(trials, seedB, nil), Options{Parallelism: 1}).(*ckSum)

	saved := map[int]*Checkpoint{}
	persist := func(i int, cp *Checkpoint) { saved[i] = cp }

	// First attempt: job A completes, job B is cancelled after 3 shards.
	r := NewResumer(nil, 0, 0, persist)
	if _, err := RunCtxResumable(context.Background(), ckJob(trials, seedA, nil), Options{Parallelism: 1}, r.JobCheckpoint()); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ckB := r.JobCheckpoint()
	snaps := 0
	sink := ckB.Sink
	ckB.Sink = func(cp *Checkpoint) {
		sink(cp)
		if snaps++; snaps == 3 {
			cancel()
		}
	}
	if _, err := RunCtxResumable(ctx, ckJob(trials, seedB, nil), Options{Parallelism: 1}, ckB); !errors.Is(err, ErrCanceled) {
		t.Fatalf("got %v, want ErrCanceled", err)
	}
	if saved[0] == nil || saved[0].Done() != trials || saved[1] == nil || saved[1].Done() == 0 {
		t.Fatalf("persisted checkpoints wrong: job0=%v job1=%v", saved[0], saved[1])
	}

	// Second attempt from the persisted map: the sequence indices line up.
	var execA, execB atomic.Int64
	r2 := NewResumer(saved, 0, 0, nil)
	accA, err := RunCtxResumable(context.Background(), ckJob(trials, seedA, &execA), Options{Parallelism: 1}, r2.JobCheckpoint())
	if err != nil {
		t.Fatal(err)
	}
	accB, err := RunCtxResumable(context.Background(), ckJob(trials, seedB, &execB), Options{Parallelism: 1}, r2.JobCheckpoint())
	if err != nil {
		t.Fatal(err)
	}
	if execA.Load() != 0 {
		t.Errorf("job A executed %d trials on resume, want 0 (fully checkpointed)", execA.Load())
	}
	if int(execB.Load()) != trials-saved[1].Done() {
		t.Errorf("job B executed %d trials on resume, want %d", execB.Load(), trials-saved[1].Done())
	}
	if got := accA.(*ckSum); got.sum != wantA.sum {
		t.Errorf("job A: sum %v, want %v", got.sum, wantA.sum)
	}
	if got := accB.(*ckSum); got.sum != wantB.sum {
		t.Errorf("job B: sum %v, want %v", got.sum, wantB.sum)
	}
}
