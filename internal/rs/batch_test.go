package rs

import (
	"bytes"
	"math/rand"
	"testing"
)

// batchCodes are the geometries the batch path is exercised on: the three
// ARCC codeword shapes plus a deliberately odd one (stride tails, nk
// outside the 2/4 specialisations).
func batchCodes() []*Code {
	return []*Code{New(18, 16), New(36, 32), New(72, 64), New(255, 223), New(20, 15)}
}

// buildBatch returns count random valid codewords, flat at the given
// stride, plus the same codewords as slices. Gap bytes between codewords
// are filled with junk to catch kernels that read past N.
func buildBatch(r *rand.Rand, c *Code, count, stride int) (flat []byte, cws [][]byte) {
	flat = make([]byte, count*stride+7) // +junk tail beyond the last codeword
	r.Read(flat)
	cws = make([][]byte, count)
	for i := 0; i < count; i++ {
		cw := flat[i*stride : i*stride+c.N()]
		r.Read(cw[:c.K()])
		c.EncodeInto(cw)
		cws[i] = cw
	}
	return flat, cws
}

// corrupt flips nbad distinct random symbols of cw.
func corruptLanes(r *rand.Rand, cw []byte, nbad int) {
	for _, pos := range r.Perm(len(cw))[:nbad] {
		cw[pos] ^= byte(1 + r.Intn(255))
	}
}

func TestEncodeBatchMatchesScalar(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for _, c := range batchCodes() {
		for _, count := range []int{0, 1, 2, 7, 8, 9, 16, 23} {
			stride := c.N() + r.Intn(3)
			flat, cws := buildBatch(r, c, count, stride)
			// Scramble the check symbols, then batch-encode both forms.
			want := make([][]byte, count)
			for i, cw := range cws {
				r.Read(cw[c.K():])
				want[i] = append([]byte(nil), cw...)
				c.EncodeInto(want[i])
			}
			c.EncodeBatchFlat(flat, stride, count)
			for i, cw := range cws {
				if !bytes.Equal(cw, want[i]) {
					t.Fatalf("(%d,%d) EncodeBatchFlat count=%d stride=%d: codeword %d mismatch", c.N(), c.K(), count, stride, i)
				}
			}
			for i := range cws {
				r.Read(cws[i][c.K():])
			}
			c.EncodeBatch(cws)
			for i, cw := range cws {
				if !bytes.Equal(cw, want[i]) {
					t.Fatalf("(%d,%d) EncodeBatch count=%d: codeword %d mismatch", c.N(), c.K(), count, i)
				}
			}
		}
	}
}

func TestSyndromesAndCheckBatchMatchScalar(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for _, c := range batchCodes() {
		nk := c.CheckSymbols()
		for _, count := range []int{0, 1, 3, 8, 11, 17} {
			stride := c.N() + r.Intn(5)
			flat, cws := buildBatch(r, c, count, stride)
			// Corrupt a few lanes so both clean and dirty lanes appear.
			for i := range cws {
				if i%3 == 1 {
					corruptLanes(r, cws[i], 1+r.Intn(3))
				}
			}
			want := make([]byte, count*nk)
			allClean := true
			for i, cw := range cws {
				c.SyndromesInto(cw, want[i*nk:(i+1)*nk])
				allClean = allClean && allZero(want[i*nk:(i+1)*nk])
			}

			got := make([]byte, count*nk)
			c.SyndromesBatchFlat(flat, stride, count, got)
			if !bytes.Equal(got, want) {
				t.Fatalf("(%d,%d) SyndromesBatchFlat count=%d stride=%d mismatch:\n got %x\nwant %x", c.N(), c.K(), count, stride, got, want)
			}
			for i := range got {
				got[i] = 0
			}
			c.SyndromesBatch(cws, got)
			if !bytes.Equal(got, want) {
				t.Fatalf("(%d,%d) SyndromesBatch count=%d mismatch", c.N(), c.K(), count)
			}
			if g := c.CheckBatchFlat(flat, stride, count); g != allClean {
				t.Fatalf("(%d,%d) CheckBatchFlat = %v, want %v", c.N(), c.K(), g, allClean)
			}
			if g := c.CheckBatch(cws); g != allClean {
				t.Fatalf("(%d,%d) CheckBatch = %v, want %v", c.N(), c.K(), g, allClean)
			}
		}
	}
}

// decodeScalarReference applies the per-codeword scalar decoder with the
// batch path's in-place semantics: corrected lanes rewritten, DUE lanes
// left raw and listed.
func decodeScalarReference(c *Code, cws [][]byte, maxErrors int) (BatchResult, [][]byte) {
	s := c.NewScratch()
	var res BatchResult
	out := make([][]byte, len(cws))
	for i, cw := range cws {
		out[i] = append([]byte(nil), cw...)
		r, err := c.DecodeScratch(cw, maxErrors, s)
		if err != nil {
			res.Bad = append(res.Bad, i)
			continue
		}
		copy(out[i], r.Corrected)
		res.Corrected += len(r.ErrorPositions)
	}
	return res, out
}

func TestDecodeBatchMatchesScalar(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for _, c := range batchCodes() {
		maxFix := c.MaxCorrectable()
		for _, count := range []int{0, 1, 2, 8, 9, 13, 20} {
			for trial := 0; trial < 8; trial++ {
				stride := c.N() + r.Intn(4)
				flat, cws := buildBatch(r, c, count, stride)
				// Random per-lane corruption: clean, correctable, and
				// overwhelming patterns mixed in one batch.
				for i := range cws {
					switch r.Intn(4) {
					case 1:
						corruptLanes(r, cws[i], 1+r.Intn(max(maxFix, 1)))
					case 2:
						corruptLanes(r, cws[i], maxFix+1+r.Intn(3))
					}
				}
				snapshot := make([][]byte, count)
				for i, cw := range cws {
					snapshot[i] = append([]byte(nil), cw...)
				}
				wantRes, wantOut := decodeScalarReference(c, snapshot, maxFix)

				s := c.NewScratch()
				gotRes := c.DecodeBatchFlat(flat, stride, count, maxFix, s)
				if gotRes.Corrected != wantRes.Corrected || !equalInts(gotRes.Bad, wantRes.Bad) {
					t.Fatalf("(%d,%d) DecodeBatchFlat count=%d: result %+v, want %+v", c.N(), c.K(), count, gotRes, wantRes)
				}
				for i, cw := range cws {
					if !bytes.Equal(cw, wantOut[i]) {
						t.Fatalf("(%d,%d) DecodeBatchFlat count=%d: codeword %d content mismatch", c.N(), c.K(), count, i)
					}
				}

				// Slice form on a fresh copy of the same batch.
				copies := make([][]byte, count)
				for i := range snapshot {
					copies[i] = append([]byte(nil), snapshot[i]...)
				}
				gotRes = c.DecodeBatch(copies, maxFix, s)
				if gotRes.Corrected != wantRes.Corrected || !equalInts(gotRes.Bad, wantRes.Bad) {
					t.Fatalf("(%d,%d) DecodeBatch count=%d: result %+v, want %+v", c.N(), c.K(), count, gotRes, wantRes)
				}
				for i := range copies {
					if !bytes.Equal(copies[i], wantOut[i]) {
						t.Fatalf("(%d,%d) DecodeBatch count=%d: codeword %d content mismatch", c.N(), c.K(), count, i)
					}
				}
			}
		}
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestDecodeBatchMaxErrorsZero pins the detect-only policy through the
// batch path: any dirty lane is a DUE.
func TestDecodeBatchMaxErrorsZero(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	c := New(36, 32)
	flat, cws := buildBatch(r, c, 8, c.N())
	corruptLanes(r, cws[5], 1)
	s := c.NewScratch()
	res := c.DecodeBatchFlat(flat, c.N(), 8, 0, s)
	if res.Corrected != 0 || !equalInts(res.Bad, []int{5}) {
		t.Fatalf("detect-only batch: %+v, want Bad=[5]", res)
	}
}

// TestDecodeErasuresFastPathMatchesErrors pins the pure-erasure fast path
// (skipped Chien search) against the errors+erasures general path and
// against re-encoding.
func TestDecodeErasuresFastPathMatchesErrors(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	c := New(36, 32)
	s := c.NewScratch()
	for trial := 0; trial < 500; trial++ {
		cw := make([]byte, c.N())
		r.Read(cw[:c.K()])
		c.EncodeInto(cw)
		orig := append([]byte(nil), cw...)
		ne := r.Intn(c.CheckSymbols() + 1)
		erasures := r.Perm(c.N())[:ne]
		for _, p := range erasures {
			cw[p] ^= byte(r.Intn(256)) // may be a zero flip: erased-but-right
		}
		res, err := c.DecodeErrorsErasuresScratch(cw, erasures, 0, s)
		if err != nil {
			t.Fatalf("trial %d: erasure decode failed: %v (erasures %v)", trial, err, erasures)
		}
		if !bytes.Equal(res.Corrected, orig) {
			t.Fatalf("trial %d: erasure decode content mismatch", trial)
		}
		// Positions must be ascending and exactly the flipped symbols.
		for i := 1; i < len(res.ErrorPositions); i++ {
			if res.ErrorPositions[i-1] >= res.ErrorPositions[i] {
				t.Fatalf("trial %d: positions not ascending: %v", trial, res.ErrorPositions)
			}
		}
		for _, p := range res.ErrorPositions {
			if cw[p] == orig[p] {
				t.Fatalf("trial %d: position %d reported but unchanged", trial, p)
			}
		}
	}
}

// TestBatchAllocs pins the zero-allocation contract of every batch API,
// clean and dirty, after a single warm-up call (the Bad buffer may grow
// once).
func TestBatchAllocs(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	c := New(36, 32)
	const count = 13
	flat, cws := buildBatch(r, c, count, c.N())
	corruptLanes(r, cws[3], 2)
	corruptLanes(r, cws[9], c.CheckSymbols()+2) // a DUE lane
	pristine := append([]byte(nil), flat...)
	s := c.NewScratch()
	syn := make([]byte, count*c.CheckSymbols())

	c.DecodeBatchFlat(flat, c.N(), count, c.MaxCorrectable(), s) // warm up s.bad
	copy(flat, pristine)

	cases := []struct {
		name string
		fn   func()
	}{
		{"EncodeBatchFlat", func() { c.EncodeBatchFlat(flat, c.N(), count) }},
		{"EncodeBatch", func() { c.EncodeBatch(cws) }},
		{"SyndromesBatchFlat", func() { c.SyndromesBatchFlat(flat, c.N(), count, syn) }},
		{"SyndromesBatch", func() { c.SyndromesBatch(cws, syn) }},
		{"CheckBatchFlat", func() { _ = c.CheckBatchFlat(flat, c.N(), count) }},
		{"CheckBatch", func() { _ = c.CheckBatch(cws) }},
		{"DecodeBatchFlat", func() {
			copy(flat, pristine)
			c.DecodeBatchFlat(flat, c.N(), count, c.MaxCorrectable(), s)
		}},
		{"DecodeBatch", func() {
			copy(flat, pristine)
			c.DecodeBatch(cws, c.MaxCorrectable(), s)
		}},
	}
	for _, tc := range cases {
		if n := testing.AllocsPerRun(50, tc.fn); n != 0 {
			t.Errorf("%s allocates %v per run, want 0", tc.name, n)
		}
	}
}

// FuzzDecodeBatchEquivalence feeds arbitrary bytes as a batch buffer and
// cross-checks the batch decoder against the scalar decoder lane by lane.
func FuzzDecodeBatchEquivalence(f *testing.F) {
	f.Add([]byte{0}, uint8(3), uint8(2))
	f.Add(bytes.Repeat([]byte{0xA5}, 200), uint8(9), uint8(1))
	f.Add(bytes.Repeat([]byte{7}, 500), uint8(16), uint8(2))
	c := New(36, 32)
	f.Fuzz(func(t *testing.T, raw []byte, countIn, maxErrIn uint8) {
		count := int(countIn) % 17
		maxErrors := int(maxErrIn) % (c.MaxCorrectable() + 1)
		need := count * c.N()
		flat := make([]byte, need)
		copy(flat, raw)
		// Re-encode alternating lanes so clean lanes are represented even
		// in random fuzz input.
		for i := 0; i < count; i += 2 {
			c.EncodeInto(flat[i*c.N() : (i+1)*c.N()])
		}
		cws := make([][]byte, count)
		for i := range cws {
			cws[i] = append([]byte(nil), flat[i*c.N():(i+1)*c.N()]...)
		}
		wantRes, wantOut := decodeScalarReference(c, cws, maxErrors)
		s := c.NewScratch()
		gotRes := c.DecodeBatchFlat(flat, c.N(), count, maxErrors, s)
		if gotRes.Corrected != wantRes.Corrected || !equalInts(gotRes.Bad, wantRes.Bad) {
			t.Fatalf("batch result %+v, want %+v", gotRes, wantRes)
		}
		for i := 0; i < count; i++ {
			if !bytes.Equal(flat[i*c.N():(i+1)*c.N()], wantOut[i]) {
				t.Fatalf("lane %d content mismatch", i)
			}
		}
	})
}
