package rs

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
)

// corrupt flips e distinct symbols of cw (in place) to different values
// drawn from rng, returning the corrupted positions in increasing order.
func corrupt(rng *rand.Rand, cw []byte, e int) []int {
	positions := rng.Perm(len(cw))[:e]
	for _, p := range positions {
		delta := byte(1 + rng.Intn(255)) // nonzero, so the symbol changes
		cw[p] ^= delta
	}
	out := append([]int(nil), positions...)
	for i := range out {
		for j := i + 1; j < len(out); j++ {
			if out[j] < out[i] {
				out[i], out[j] = out[j], out[i]
			}
		}
	}
	return out
}

// fuzzCodes are the two geometries the ARCC evaluation uses: (18, 16) for
// relaxed pages and (36, 32) for upgraded pages.
var fuzzCodes = []*Code{New(18, 16), New(36, 32)}

// FuzzRSRoundTrip checks, for both ARCC code geometries, the two
// guarantees memory controllers rely on:
//
//   - a codeword corrupted in at most t = MaxCorrectable symbols decodes
//     back to the original, reporting exactly the corrupted positions;
//   - under bounded decoding with bound b, any corruption of e symbols
//     with b < e <= N-K-b is flagged ErrUncorrectable (a DUE) — never
//     silently miscorrected. (For the 4-check upgraded code with b = 1
//     this is SCCDCD's "single correct, double detect" guarantee; full
//     2t-radius decoding carries no such band, see
//     TestRelaxedCodeDoubleErrorMayMiscorrect.)
func FuzzRSRoundTrip(f *testing.F) {
	f.Add(int64(1), []byte("fuzz seed"))
	f.Add(int64(42), []byte{0, 0, 0, 0})
	f.Add(int64(-7), []byte{0xFF, 0x80, 0x01})
	f.Fuzz(func(t *testing.T, seed int64, data []byte) {
		rng := rand.New(rand.NewSource(seed))
		for _, code := range fuzzCodes {
			msg := make([]byte, code.K())
			for i := range msg {
				if len(data) > 0 {
					msg[i] = data[i%len(data)]
				}
			}
			clean := code.Encode(msg)

			// Correctable band: e <= t errors round-trip.
			e := rng.Intn(code.MaxCorrectable() + 1)
			cw := append([]byte(nil), clean...)
			want := corrupt(rng, cw, e)
			res, err := code.Decode(cw)
			if err != nil {
				t.Fatalf("(%d,%d): %d <= t errors not corrected: %v", code.N(), code.K(), e, err)
			}
			if !bytes.Equal(res.Corrected, clean) {
				t.Fatalf("(%d,%d): decode returned wrong codeword for %d errors", code.N(), code.K(), e)
			}
			if len(res.ErrorPositions) != len(want) {
				t.Fatalf("(%d,%d): corrected positions %v, corrupted %v", code.N(), code.K(), res.ErrorPositions, want)
			}
			for i := range want {
				if res.ErrorPositions[i] != want[i] {
					t.Fatalf("(%d,%d): corrected positions %v, corrupted %v", code.N(), code.K(), res.ErrorPositions, want)
				}
			}

			// Guaranteed-detection band: with bound b, e in (b, N-K-b]
			// errors must be a DUE. Use the strongest policy bound the
			// code offers (b = t-1; for the relaxed code that is b = 0,
			// detect-only).
			b := code.MaxCorrectable() - 1
			lo, hi := b+1, code.CheckSymbols()-b
			e2 := lo + rng.Intn(hi-lo+1)
			cw2 := append([]byte(nil), clean...)
			corrupt(rng, cw2, e2)
			if _, err := code.DecodeBounded(cw2, b); !errors.Is(err, ErrUncorrectable) {
				t.Fatalf("(%d,%d): %d errors under bound %d not flagged as DUE: %v",
					code.N(), code.K(), e2, b, err)
			}

			// Erasure band: up to N-K known-bad positions reconstruct.
			ne := 1 + rng.Intn(code.CheckSymbols())
			cw3 := append([]byte(nil), clean...)
			erased := corrupt(rng, cw3, ne)
			res3, err := code.DecodeErasures(cw3, erased)
			if err != nil || !bytes.Equal(res3.Corrected, clean) {
				t.Fatalf("(%d,%d): %d erasures not reconstructed: %v", code.N(), code.K(), ne, err)
			}
		}
	})
}

// TestRSCorruptionPropertyTable is the seeded companion of FuzzRSRoundTrip:
// it sweeps every error count in both the correctable and the
// guaranteed-detection band for both code geometries, many trials each, so
// the properties hold in ordinary `go test` runs without the fuzzer.
func TestRSCorruptionPropertyTable(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for _, code := range fuzzCodes {
		msg := make([]byte, code.K())
		for trial := 0; trial < 200; trial++ {
			rng.Read(msg)
			clean := code.Encode(msg)

			for e := 0; e <= code.MaxCorrectable(); e++ {
				cw := append([]byte(nil), clean...)
				corrupt(rng, cw, e)
				res, err := code.Decode(cw)
				if err != nil || !bytes.Equal(res.Corrected, clean) {
					t.Fatalf("(%d,%d) trial %d: %d errors not corrected (%v)", code.N(), code.K(), trial, e, err)
				}
			}

			b := code.MaxCorrectable() - 1
			for e := b + 1; e <= code.CheckSymbols()-b; e++ {
				cw := append([]byte(nil), clean...)
				corrupt(rng, cw, e)
				if _, err := code.DecodeBounded(cw, b); !errors.Is(err, ErrUncorrectable) {
					t.Fatalf("(%d,%d) trial %d: %d errors under bound %d escaped detection (%v)",
						code.N(), code.K(), trial, e, b, err)
				}
			}
		}
	}
}
