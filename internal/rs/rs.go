// Package rs implements a systematic Reed–Solomon codec over GF(2^8).
//
// Chipkill-correct memory systems protect each memory word with a
// symbol-based linear block code whose symbols are spread across DRAM
// devices, one symbol per device, so that a whole-device failure corrupts at
// most one symbol per codeword. This package provides the code itself:
//
//   - Code{N, K} describes an (N, K) code with N-K check symbols.
//   - Encode appends check symbols to K data symbols.
//   - Decode corrects up to floor((N-K)/2) symbol errors and reports
//     detected-but-uncorrectable patterns.
//   - DecodeErasures corrects up to N-K erasures at known positions
//     (used by double chip sparing once a failed device is identified).
//
// The configurations used by the ARCC evaluation are (18, 16) for relaxed
// pages (2 check symbols: single symbol correct OR single symbol detect,
// depending on decode policy) and (36, 32) for upgraded pages (4 check
// symbols: single correct + double detect as in commercial SCCDCD).
package rs

import (
	"errors"
	"fmt"

	"arcc/internal/gf"
)

// ErrUncorrectable reports a codeword whose error pattern exceeds the code's
// correction capability but was still detected (a DUE, in memory terms).
var ErrUncorrectable = errors.New("rs: detected uncorrectable error")

// Code is an (N, K) systematic Reed–Solomon code over GF(2^8). Codewords are
// laid out data-first: positions 0..K-1 hold data symbols, K..N-1 hold check
// symbols. Code values are immutable and safe for concurrent use.
type Code struct {
	n, k int
	gen  gf.Polynomial // generator polynomial, degree n-k
}

// New constructs an (n, k) code. It panics if the parameters are outside
// 0 < k < n <= 255: code construction is configuration, not runtime input.
func New(n, k int) *Code {
	if k <= 0 || n <= k || n > gf.Order {
		panic(fmt.Sprintf("rs: invalid code parameters (n=%d, k=%d)", n, k))
	}
	// g(x) = (x - alpha^0)(x - alpha^1)...(x - alpha^(n-k-1))
	gen := gf.Polynomial{1}
	for i := 0; i < n-k; i++ {
		gen = gf.PolyMul(gen, gf.Polynomial{gf.Exp(i), 1})
	}
	return &Code{n: n, k: k, gen: gen}
}

// N returns the codeword length in symbols.
func (c *Code) N() int { return c.n }

// K returns the number of data symbols per codeword.
func (c *Code) K() int { return c.k }

// CheckSymbols returns the number of check symbols per codeword, N-K.
func (c *Code) CheckSymbols() int { return c.n - c.k }

// MaxCorrectable returns the number of symbol errors the code can correct
// with errors-only decoding, floor((N-K)/2).
func (c *Code) MaxCorrectable() int { return (c.n - c.k) / 2 }

// Encode computes the codeword for data (length K) and returns a fresh
// N-symbol slice: data followed by check symbols. It panics if len(data) != K.
func (c *Code) Encode(data []byte) []byte {
	if len(data) != c.k {
		panic(fmt.Sprintf("rs: Encode called with %d data symbols, want %d", len(data), c.k))
	}
	cw := make([]byte, c.n)
	copy(cw, data)
	c.EncodeInto(cw)
	return cw
}

// EncodeInto recomputes the check symbols of cw (length N) in place from its
// first K data symbols.
func (c *Code) EncodeInto(cw []byte) {
	if len(cw) != c.n {
		panic(fmt.Sprintf("rs: EncodeInto called with %d symbols, want %d", len(cw), c.n))
	}
	// Systematic encoding: check symbols are the remainder of
	// data(x) * x^(n-k) divided by g(x). The message polynomial places
	// data[0] (codeword position 0) at the highest power, so the codeword
	// read as a polynomial is cw[0]*x^(n-1) + ... + cw[n-1]*x^0 and has the
	// generator's roots alpha^0..alpha^(n-k-1).
	nk := c.n - c.k
	rem := make([]byte, nk)
	lead := c.gen[nk] // == 1, generator is monic
	_ = lead
	for i := 0; i < c.k; i++ {
		factor := cw[i] ^ rem[0]
		copy(rem, rem[1:])
		rem[nk-1] = 0
		if factor != 0 {
			for j := 0; j < nk; j++ {
				// gen coefficients from highest-1 down to 0.
				rem[j] ^= gf.Mul(factor, c.gen[nk-1-j])
			}
		}
	}
	copy(cw[c.k:], rem)
}

// Syndromes computes the N-K syndromes of cw. All zero syndromes mean the
// codeword is consistent (either error-free, or an undetectable error
// pattern that aliases to another valid codeword).
func (c *Code) Syndromes(cw []byte) []byte {
	if len(cw) != c.n {
		panic(fmt.Sprintf("rs: Syndromes called with %d symbols, want %d", len(cw), c.n))
	}
	syn := make([]byte, c.n-c.k)
	for i := range syn {
		// S_i = cw(alpha^i) with cw[0] the highest-power coefficient.
		var s byte
		x := gf.Exp(i)
		for _, v := range cw {
			s = gf.Mul(s, x) ^ v
		}
		syn[i] = s
	}
	return syn
}

// Check reports whether cw is a consistent codeword (all syndromes zero).
func (c *Code) Check(cw []byte) bool {
	for _, s := range c.Syndromes(cw) {
		if s != 0 {
			return false
		}
	}
	return true
}
