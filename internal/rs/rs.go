// Package rs implements a systematic Reed–Solomon codec over GF(2^8).
//
// Chipkill-correct memory systems protect each memory word with a
// symbol-based linear block code whose symbols are spread across DRAM
// devices, one symbol per device, so that a whole-device failure corrupts at
// most one symbol per codeword. This package provides the code itself:
//
//   - Code{N, K} describes an (N, K) code with N-K check symbols.
//   - Encode appends check symbols to K data symbols.
//   - Decode corrects up to floor((N-K)/2) symbol errors and reports
//     detected-but-uncorrectable patterns.
//   - DecodeErasures corrects up to N-K erasures at known positions
//     (used by double chip sparing once a failed device is identified).
//
// The configurations used by the ARCC evaluation are (18, 16) for relaxed
// pages (2 check symbols: single symbol correct OR single symbol detect,
// depending on decode policy) and (36, 32) for upgraded pages (4 check
// symbols: single correct + double detect as in commercial SCCDCD).
//
// The hot path is allocation-free: New precomputes multiplication-table
// rows for the generator coefficients, the syndrome evaluation points, and
// the Chien stepping constants, and a reusable Scratch workspace (see
// NewScratch/DecodeScratch) holds every buffer a decode needs. The plain
// Decode/DecodeErasures entry points are thin wrappers that borrow a
// pooled Scratch and copy the result out.
//
// When several codewords of the same code decode together — the memory
// controller's burst path, every exhibit's trial loop — the batch entry
// points (EncodeBatch, SyndromesBatch, CheckBatch, DecodeBatch, and their
// flat-stride *Flat forms; see batch.go) run the syndrome and encode
// recurrences word-parallel on package gf's bit-sliced kernels, eight
// codewords at a time. The all-clean batch is verified without running
// the scalar decoder at all; only lanes with nonzero syndromes fall back
// to DecodeScratch, one lane at a time.
package rs

import (
	"errors"
	"fmt"
	"sync"

	"arcc/internal/gf"
)

// ErrUncorrectable reports a codeword whose error pattern exceeds the code's
// correction capability but was still detected (a DUE, in memory terms).
var ErrUncorrectable = errors.New("rs: detected uncorrectable error")

// Code is an (N, K) systematic Reed–Solomon code over GF(2^8). Codewords are
// laid out data-first: positions 0..K-1 hold data symbols, K..N-1 hold check
// symbols. Code values are immutable and safe for concurrent use.
type Code struct {
	n, k int
	gen  gf.Polynomial // generator polynomial, degree n-k

	// encRows[j] is the multiplication row of gen[n-k-1-j]: the feedback
	// taps of the systematic encoder, highest coefficient first, so the
	// encode inner loop is rem[j] ^= encRows[j][factor].
	encRows []*[gf.Size]byte
	// synRows[i] is the multiplication row of alpha^i, the Horner step of
	// syndrome S_i.
	synRows []*[gf.Size]byte
	// stepRows[i] is the multiplication row of alpha^i, used by the
	// incremental Chien search to step term i from one codeword position to
	// the next (indices 0..n-k, the maximum locator degree).
	stepRows []*[gf.Size]byte
	// chienInit[i] = alpha^(-(n-1)*i): term i's multiplier at the Chien
	// search's first query point, the locator inverse of position 0.
	chienInit []byte

	// posRoot[p] = alpha^(n-1-p), the locator of codeword position p;
	// posRootInv[p] is its inverse and posRootRows[p] its multiplication
	// row. Hoisted out of the per-decode loops exactly like the Chien
	// stepping rows: the erasure-locator build, the Chien root recording,
	// and the pure-erasure fast path (which knows its roots without a
	// search) all index these instead of calling Exp/Inv/MulRow.
	posRoot     []byte
	posRootInv  []byte
	posRootRows []*[gf.Size]byte

	// synBatch[i] is the broadcast row of alpha^i and encBatch[j] the
	// broadcast row of gen[n-k-1-j]: the word-parallel counterparts of
	// synRows and encRows, driving the batch syndrome and encode kernels
	// (batch.go) eight codeword lanes at a time.
	synBatch []gf.BroadcastRow
	encBatch []gf.BroadcastRow

	// scratch pools Scratch workspaces for the allocating Decode wrappers.
	scratch sync.Pool
}

// New constructs an (n, k) code. It panics if the parameters are outside
// 0 < k < n <= 255: code construction is configuration, not runtime input.
func New(n, k int) *Code {
	if k <= 0 || n <= k || n > gf.Order {
		panic(fmt.Sprintf("rs: invalid code parameters (n=%d, k=%d)", n, k))
	}
	// g(x) = (x - alpha^0)(x - alpha^1)...(x - alpha^(n-k-1))
	gen := gf.Polynomial{1}
	for i := 0; i < n-k; i++ {
		gen = gf.PolyMul(gen, gf.Polynomial{gf.Exp(i), 1})
	}
	c := &Code{n: n, k: k, gen: gen}
	nk := n - k
	c.encRows = make([]*[gf.Size]byte, nk)
	c.synRows = make([]*[gf.Size]byte, nk)
	for j := 0; j < nk; j++ {
		c.encRows[j] = gf.MulRow(gen[nk-1-j])
		c.synRows[j] = gf.MulRow(gf.Exp(j))
	}
	c.stepRows = make([]*[gf.Size]byte, nk+1)
	c.chienInit = make([]byte, nk+1)
	for i := 0; i <= nk; i++ {
		c.stepRows[i] = gf.MulRow(gf.Exp(i))
		c.chienInit[i] = gf.Exp(-(n - 1) * i)
	}
	c.posRoot = make([]byte, n)
	c.posRootInv = make([]byte, n)
	c.posRootRows = make([]*[gf.Size]byte, n)
	for p := 0; p < n; p++ {
		x := gf.Exp(n - 1 - p)
		c.posRoot[p] = x
		c.posRootInv[p] = gf.Inv(x)
		c.posRootRows[p] = gf.MulRow(x)
	}
	c.synBatch = make([]gf.BroadcastRow, nk)
	c.encBatch = make([]gf.BroadcastRow, nk)
	for j := 0; j < nk; j++ {
		c.synBatch[j] = gf.MulRowBatch(gf.Exp(j))
		c.encBatch[j] = gf.MulRowBatch(gen[nk-1-j])
	}
	c.scratch.New = func() any { return c.NewScratch() }
	return c
}

// N returns the codeword length in symbols.
func (c *Code) N() int { return c.n }

// K returns the number of data symbols per codeword.
func (c *Code) K() int { return c.k }

// CheckSymbols returns the number of check symbols per codeword, N-K.
func (c *Code) CheckSymbols() int { return c.n - c.k }

// MaxCorrectable returns the number of symbol errors the code can correct
// with errors-only decoding, floor((N-K)/2).
func (c *Code) MaxCorrectable() int { return (c.n - c.k) / 2 }

// Encode computes the codeword for data (length K) and returns a fresh
// N-symbol slice: data followed by check symbols. It panics if len(data) != K.
func (c *Code) Encode(data []byte) []byte {
	if len(data) != c.k {
		panic(fmt.Sprintf("rs: Encode called with %d data symbols, want %d", len(data), c.k))
	}
	cw := make([]byte, c.n)
	copy(cw, data)
	c.EncodeInto(cw)
	return cw
}

// EncodeInto recomputes the check symbols of cw (length N) in place from its
// first K data symbols. It performs no heap allocations.
func (c *Code) EncodeInto(cw []byte) {
	if len(cw) != c.n {
		panic(fmt.Sprintf("rs: EncodeInto called with %d symbols, want %d", len(cw), c.n))
	}
	// Systematic encoding: check symbols are the remainder of
	// data(x) * x^(n-k) divided by g(x). The message polynomial places
	// data[0] (codeword position 0) at the highest power, so the codeword
	// read as a polynomial is cw[0]*x^(n-1) + ... + cw[n-1]*x^0 and has the
	// generator's roots alpha^0..alpha^(n-k-1). The generator is monic, so
	// the division step is a table-row lookup per tap.
	nk := c.n - c.k
	var remBuf [gf.Order]byte
	rem := remBuf[:nk]
	for i := 0; i < c.k; i++ {
		factor := cw[i] ^ rem[0]
		copy(rem, rem[1:])
		rem[nk-1] = 0
		if factor != 0 {
			for j, row := range c.encRows {
				rem[j] ^= row[factor]
			}
		}
	}
	copy(cw[c.k:], rem)
}

// Syndromes computes the N-K syndromes of cw in a fresh slice. All zero
// syndromes mean the codeword is consistent (either error-free, or an
// undetectable error pattern that aliases to another valid codeword).
func (c *Code) Syndromes(cw []byte) []byte {
	return c.SyndromesInto(cw, make([]byte, c.n-c.k))
}

// SyndromesInto computes the N-K syndromes of cw into syn, which must have
// length N-K, and returns syn. It performs no heap allocations.
func (c *Code) SyndromesInto(cw, syn []byte) []byte {
	if len(cw) != c.n {
		panic(fmt.Sprintf("rs: Syndromes called with %d symbols, want %d", len(cw), c.n))
	}
	if len(syn) != c.n-c.k {
		panic(fmt.Sprintf("rs: SyndromesInto called with a %d-symbol buffer, want %d", len(syn), c.n-c.k))
	}
	// S_i = cw(alpha^i) with cw[0] the highest-power coefficient: Horner's
	// rule, one row lookup per symbol. All N-K Horner chains run
	// interleaved in a single pass over the codeword, so the chains'
	// serial lookup latencies overlap. S_0 evaluates at alpha^0 = 1 and is
	// a plain XOR of the symbols. The 2- and 4-check-symbol unrollings
	// cover the two geometries the ARCC evaluation decodes on every access.
	switch len(syn) {
	case 2:
		r1 := c.synRows[1]
		var s0, s1 byte
		for _, v := range cw {
			s0 ^= v
			s1 = r1[s1] ^ v
		}
		syn[0], syn[1] = s0, s1
	case 4:
		r1, r2, r3 := c.synRows[1], c.synRows[2], c.synRows[3]
		var s0, s1, s2, s3 byte
		for _, v := range cw {
			s0 ^= v
			s1 = r1[s1] ^ v
			s2 = r2[s2] ^ v
			s3 = r3[s3] ^ v
		}
		syn[0], syn[1], syn[2], syn[3] = s0, s1, s2, s3
	default:
		for i := range syn {
			syn[i] = 0
		}
		for _, v := range cw {
			syn[0] ^= v
			for i := 1; i < len(syn); i++ {
				syn[i] = c.synRows[i][syn[i]] ^ v
			}
		}
	}
	return syn
}

// Check reports whether cw is a consistent codeword (all syndromes zero).
// It performs no heap allocations.
func (c *Code) Check(cw []byte) bool {
	var buf [gf.Order]byte
	return allZero(c.SyndromesInto(cw, buf[:c.n-c.k]))
}
