package rs

import (
	"math/rand"
	"testing"
)

// The benchmarks below cover the codec hot path on the (36, 32) upgraded
// code — the geometry every ARCC decode in the simulator uses. The
// *Scratch variants are the steady-state path (zero allocations); the
// plain variants measure the pooled allocating wrappers.

func benchCodeword(b *testing.B, c *Code, flips ...int) []byte {
	b.Helper()
	rng := rand.New(rand.NewSource(1))
	cw := make([]byte, c.N())
	rng.Read(cw[:c.K()])
	c.EncodeInto(cw)
	for i, pos := range flips {
		cw[pos] ^= byte(0x5a + i)
	}
	return cw
}

func BenchmarkEncodeInto(b *testing.B) {
	c := New(36, 32)
	cw := benchCodeword(b, c)
	b.SetBytes(int64(c.N()))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.EncodeInto(cw)
	}
}

func BenchmarkSyndromes(b *testing.B) {
	c := New(36, 32)
	cw := benchCodeword(b, c)
	syn := make([]byte, c.CheckSymbols())
	b.SetBytes(int64(c.N()))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.SyndromesInto(cw, syn)
	}
}

func BenchmarkChienSearch(b *testing.B) {
	// A degree-2 locator over the (36, 32) code: the search the 2-error
	// decode performs.
	c := New(36, 32)
	cw := benchCodeword(b, c, 3, 17)
	s := c.NewScratch()
	syn := c.SyndromesInto(cw, s.syn)
	sigma := berlekampMasseyInto(syn, s)
	locator := append([]byte(nil), sigma...)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		positions, _, _ := c.chienInto(locator, s)
		if len(positions) != 2 {
			b.Fatalf("found %d roots, want 2", len(positions))
		}
	}
}

func benchmarkDecodeScratch(b *testing.B, flips ...int) {
	c := New(36, 32)
	cw := benchCodeword(b, c, flips...)
	s := c.NewScratch()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.DecodeScratch(cw, c.MaxCorrectable(), s); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecodeScratchClean(b *testing.B) { benchmarkDecodeScratch(b) }
func BenchmarkDecodeScratch1Err(b *testing.B)  { benchmarkDecodeScratch(b, 3) }
func BenchmarkDecodeScratch2Err(b *testing.B)  { benchmarkDecodeScratch(b, 3, 17) }

func BenchmarkDecode2Err(b *testing.B) {
	// The allocating wrapper on the same workload as DecodeScratch2Err:
	// the delta is the pooled-scratch detach copy.
	c := New(36, 32)
	cw := benchCodeword(b, c, 3, 17)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Decode(cw); err != nil {
			b.Fatal(err)
		}
	}
}

// The batch benchmarks below iterate b.N in codeword steps (i += lanes per
// batch call), so their ns/op is per CODEWORD — directly comparable to the
// scalar per-codeword benchmarks above. The headline comparison is
// BenchmarkDecodeBatchClean vs BenchmarkDecodeScratchClean: the all-clean
// read that dominates every exhibit and server sweep.

// benchBatch builds a flat batch of `lanes` valid codewords; flips applies
// per-lane corruption keyed by lane index.
func benchBatch(b *testing.B, c *Code, lanes int, flips map[int][]int) []byte {
	b.Helper()
	rng := rand.New(rand.NewSource(1))
	buf := make([]byte, lanes*c.N())
	for l := 0; l < lanes; l++ {
		cw := buf[l*c.N() : (l+1)*c.N()]
		rng.Read(cw[:c.K()])
		c.EncodeInto(cw)
		for i, pos := range flips[l] {
			cw[pos] ^= byte(0x5a + i)
		}
	}
	return buf
}

func BenchmarkEncodeBatch(b *testing.B) {
	c := New(36, 32)
	const lanes = 8
	buf := benchBatch(b, c, lanes, nil)
	b.SetBytes(int64(c.N()))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i += lanes {
		c.EncodeBatchFlat(buf, c.N(), lanes)
	}
}

func BenchmarkSyndromesBatch(b *testing.B) {
	c := New(36, 32)
	const lanes = 8
	buf := benchBatch(b, c, lanes, nil)
	syn := make([]byte, lanes*c.CheckSymbols())
	b.SetBytes(int64(c.N()))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i += lanes {
		c.SyndromesBatchFlat(buf, c.N(), lanes, syn)
	}
}

func BenchmarkCheckBatch(b *testing.B) {
	c := New(36, 32)
	const lanes = 8
	buf := benchBatch(b, c, lanes, nil)
	b.SetBytes(int64(c.N()))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i += lanes {
		if !c.CheckBatchFlat(buf, c.N(), lanes) {
			b.Fatal("clean batch reported dirty")
		}
	}
}

func benchmarkDecodeBatch(b *testing.B, lanes int, flips map[int][]int) {
	c := New(36, 32)
	buf := benchBatch(b, c, lanes, flips)
	pristine := append([]byte(nil), buf...)
	s := c.NewScratch()
	dirty := len(flips) > 0
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i += lanes {
		res := c.DecodeBatchFlat(buf, c.N(), lanes, c.MaxCorrectable(), s)
		if !res.OK() {
			b.Fatal("batch decode failed")
		}
		if dirty {
			copy(buf, pristine) // restore the corrupted lanes for the next pass
		}
	}
}

func BenchmarkDecodeBatchClean(b *testing.B) { benchmarkDecodeBatch(b, 8, nil) }

// BenchmarkDecodeBatchClean64 is the clean path at server-sweep batch
// sizes: a whole 64-codeword burst per call.
func BenchmarkDecodeBatchClean64(b *testing.B) { benchmarkDecodeBatch(b, 64, nil) }

// BenchmarkDecodeBatch1Dirty has one 2-error lane among 8: the scalar
// fallback cost amortised over a mostly-clean batch.
func BenchmarkDecodeBatch1Dirty(b *testing.B) {
	benchmarkDecodeBatch(b, 8, map[int][]int{3: {3, 17}})
}

func BenchmarkDecodeErasuresScratch(b *testing.B) {
	c := New(36, 32)
	cw := benchCodeword(b, c, 3, 17, 30)
	s := c.NewScratch()
	erasures := []int{3, 17, 30}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.DecodeErrorsErasuresScratch(cw, erasures, 0, s); err != nil {
			b.Fatal(err)
		}
	}
}
