package rs

import (
	"math/rand"
	"testing"
)

// The benchmarks below cover the codec hot path on the (36, 32) upgraded
// code — the geometry every ARCC decode in the simulator uses. The
// *Scratch variants are the steady-state path (zero allocations); the
// plain variants measure the pooled allocating wrappers.

func benchCodeword(b *testing.B, c *Code, flips ...int) []byte {
	b.Helper()
	rng := rand.New(rand.NewSource(1))
	cw := make([]byte, c.N())
	rng.Read(cw[:c.K()])
	c.EncodeInto(cw)
	for i, pos := range flips {
		cw[pos] ^= byte(0x5a + i)
	}
	return cw
}

func BenchmarkEncodeInto(b *testing.B) {
	c := New(36, 32)
	cw := benchCodeword(b, c)
	b.SetBytes(int64(c.N()))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.EncodeInto(cw)
	}
}

func BenchmarkSyndromes(b *testing.B) {
	c := New(36, 32)
	cw := benchCodeword(b, c)
	syn := make([]byte, c.CheckSymbols())
	b.SetBytes(int64(c.N()))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.SyndromesInto(cw, syn)
	}
}

func BenchmarkChienSearch(b *testing.B) {
	// A degree-2 locator over the (36, 32) code: the search the 2-error
	// decode performs.
	c := New(36, 32)
	cw := benchCodeword(b, c, 3, 17)
	s := c.NewScratch()
	syn := c.SyndromesInto(cw, s.syn)
	sigma := berlekampMasseyInto(syn, s)
	locator := append([]byte(nil), sigma...)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		positions, _, _ := c.chienInto(locator, s)
		if len(positions) != 2 {
			b.Fatalf("found %d roots, want 2", len(positions))
		}
	}
}

func benchmarkDecodeScratch(b *testing.B, flips ...int) {
	c := New(36, 32)
	cw := benchCodeword(b, c, flips...)
	s := c.NewScratch()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.DecodeScratch(cw, c.MaxCorrectable(), s); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecodeScratchClean(b *testing.B) { benchmarkDecodeScratch(b) }
func BenchmarkDecodeScratch1Err(b *testing.B)  { benchmarkDecodeScratch(b, 3) }
func BenchmarkDecodeScratch2Err(b *testing.B)  { benchmarkDecodeScratch(b, 3, 17) }

func BenchmarkDecode2Err(b *testing.B) {
	// The allocating wrapper on the same workload as DecodeScratch2Err:
	// the delta is the pooled-scratch detach copy.
	c := New(36, 32)
	cw := benchCodeword(b, c, 3, 17)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Decode(cw); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecodeErasuresScratch(b *testing.B) {
	c := New(36, 32)
	cw := benchCodeword(b, c, 3, 17, 30)
	s := c.NewScratch()
	erasures := []int{3, 17, 30}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.DecodeErrorsErasuresScratch(cw, erasures, 0, s); err != nil {
			b.Fatal(err)
		}
	}
}
