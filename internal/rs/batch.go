package rs

import (
	"fmt"

	"arcc/internal/gf"
)

// This file implements the batch codec path: every exhibit and every
// arcc-server sweep decodes many independent codewords under the same code,
// so the batch entry points amortise per-codeword overhead and run the
// syndrome and encode recurrences word-parallel — eight codewords at a
// time, one byte lane per codeword, on the bit-sliced gf kernels
// (gf.MulWord / gf.XtimeWord). The dominant workload is the clean read:
// a batch whose codewords all have zero syndromes completes without
// touching the scalar decoder at all, and only the rare lanes whose
// syndromes come back nonzero fall back to the existing (fully tested)
// scalar scratch decoder, one lane at a time.
//
// Layouts. Each API takes either a [][]byte (one slice per codeword, each
// of length N) or a flat []byte with an explicit stride: codeword i
// occupies buf[i*stride : i*stride+N], stride >= N. The flat form is the
// fast path — the word kernels gather lanes straight out of it — and is
// what the memory controller's read path uses (its per-burst codewords are
// already contiguous in scratch). The slice form stages groups of eight
// through an on-stack buffer and costs one extra copy per codeword.
//
// In-place contract. Batch decoding corrects codewords IN PLACE: clean
// lanes are left untouched (no output copy — that is the point), corrected
// lanes are overwritten with the repaired codeword, and lanes with
// detected-uncorrectable patterns keep their raw content and are listed in
// BatchResult.Bad. Inputs of Encode/Syndromes/Check batches are read-only
// except for the check symbols EncodeBatch rewrites.

// BatchResult reports the outcome of one batch decode.
type BatchResult struct {
	// Corrected is the total number of symbol positions repaired across
	// the batch (the sum of len(ErrorPositions) over the scalar decodes of
	// the dirty lanes; clean lanes contribute zero).
	Corrected int
	// Bad lists the batch indices of codewords whose error patterns were
	// detected but not correctable; their content is left as read. The
	// slice aliases the Scratch and is valid until its next batch use.
	Bad []int
}

// OK reports whether every codeword in the batch decoded cleanly or was
// fully corrected.
func (r BatchResult) OK() bool { return len(r.Bad) == 0 }

// batchStage is an on-stack staging buffer for the [][]byte entry points:
// one group of gf.Lanes codewords at the maximum codeword length.
type batchStage [gf.Lanes * gf.Order]byte

func (c *Code) checkBatchFlatArgs(buf []byte, stride, count int) {
	if count < 0 {
		panic(fmt.Sprintf("rs: negative batch count %d", count))
	}
	if stride < c.n {
		panic(fmt.Sprintf("rs: batch stride %d below codeword length %d", stride, c.n))
	}
	if count > 0 && len(buf) < (count-1)*stride+c.n {
		panic(fmt.Sprintf("rs: batch buffer holds %d bytes, want >= %d for %d codewords at stride %d",
			len(buf), (count-1)*stride+c.n, count, stride))
	}
}

func (c *Code) checkBatchSlices(cws [][]byte) {
	for i, cw := range cws {
		if len(cw) != c.n {
			panic(fmt.Sprintf("rs: batch codeword %d has %d symbols, want %d", i, len(cw), c.n))
		}
	}
}

// synWords runs the word-parallel syndrome recurrence over up to gf.Lanes
// codewords at buf[0:], stride apart, writing syndrome word i (lane l's
// byte holding S_i of codeword l) into sw[i] and returning the OR of all
// words — zero iff every lane is a consistent codeword. Lanes beyond lanes
// are zero and therefore clean. The alpha^1..alpha^3 Horner steps of the
// 2- and 4-check-symbol geometries are the fused xtime kernels (multiplying
// by 2, 4 and 8 in one shallow step each, so the loop-carried accumulator
// chains stay short); wider codes step through the precomputed broadcast
// rows.
// The symbol sweep loads eight consecutive positions per lane as one word
// and transposes the 8x8 byte block (gf.GatherWords8), so the per-position
// cost is a register read instead of eight scattered byte loads; only the
// n mod 8 tail positions gather byte-wise.
func (c *Code) synWords(buf []byte, stride, lanes int, sw []uint64) uint64 {
	var gw [8]uint64
	switch len(sw) {
	case 2:
		var s0, s1 uint64
		p := 0
		for ; p+8 <= c.n; p += 8 {
			gf.GatherWords8(buf, p, stride, lanes, &gw)
			for _, v := range gw {
				s0 ^= v
				s1 = gf.XtimeWord(s1) ^ v
			}
		}
		for ; p < c.n; p++ {
			v := gf.GatherWord(buf, p, stride, lanes)
			s0 ^= v
			s1 = gf.XtimeWord(s1) ^ v
		}
		sw[0], sw[1] = s0, s1
		return s0 | s1
	case 4:
		var s0, s1, s2, s3 uint64
		p := 0
		for ; p+8 <= c.n; p += 8 {
			gf.GatherWords8(buf, p, stride, lanes, &gw)
			for _, v := range gw {
				s0 ^= v
				s1 = gf.XtimeWord(s1) ^ v
				s2 = gf.Xtime2Word(s2) ^ v
				s3 = gf.Xtime3Word(s3) ^ v
			}
		}
		for ; p < c.n; p++ {
			v := gf.GatherWord(buf, p, stride, lanes)
			s0 ^= v
			s1 = gf.XtimeWord(s1) ^ v
			s2 = gf.Xtime2Word(s2) ^ v
			s3 = gf.Xtime3Word(s3) ^ v
		}
		sw[0], sw[1], sw[2], sw[3] = s0, s1, s2, s3
		return s0 | s1 | s2 | s3
	default:
		for i := range sw {
			sw[i] = 0
		}
		step := func(v uint64) {
			sw[0] ^= v
			for i := 1; i < len(sw); i++ {
				sw[i] = gf.MulWord(sw[i], &c.synBatch[i]) ^ v
			}
		}
		p := 0
		for ; p+8 <= c.n; p += 8 {
			gf.GatherWords8(buf, p, stride, lanes, &gw)
			for _, v := range gw {
				step(v)
			}
		}
		for ; p < c.n; p++ {
			step(gf.GatherWord(buf, p, stride, lanes))
		}
		var dirty uint64
		for _, w := range sw {
			dirty |= w
		}
		return dirty
	}
}

// encodeGroup recomputes the check symbols of up to gf.Lanes codewords at
// buf[0:], stride apart, in place: the word-parallel form of EncodeInto's
// LFSR, with the generator taps applied to all lanes at once through the
// precomputed broadcast rows.
func (c *Code) encodeGroup(buf []byte, stride, lanes int) {
	nk := c.n - c.k
	var remBuf [gf.Order]uint64
	var gw [8]uint64
	rem := remBuf[:nk]
	step := func(v uint64) {
		factor := v ^ rem[0]
		copy(rem, rem[1:])
		rem[nk-1] = 0
		for j := range rem {
			rem[j] ^= gf.MulWord(factor, &c.encBatch[j])
		}
	}
	i := 0
	for ; i+8 <= c.k; i += 8 {
		gf.GatherWords8(buf, i, stride, lanes, &gw)
		for _, v := range gw {
			step(v)
		}
	}
	for ; i < c.k; i++ {
		step(gf.GatherWord(buf, i, stride, lanes))
	}
	for j := 0; j < nk; j++ {
		gf.ScatterWord(rem[j], buf, c.k+j, stride, lanes)
	}
}

// EncodeBatchFlat recomputes the check symbols of count codewords laid out
// in buf at the given stride, in place, from each codeword's first K data
// symbols. It performs no heap allocations.
func (c *Code) EncodeBatchFlat(buf []byte, stride, count int) {
	c.checkBatchFlatArgs(buf, stride, count)
	for base := 0; base < count; base += gf.Lanes {
		lanes := min(gf.Lanes, count-base)
		c.encodeGroup(buf[base*stride:], stride, lanes)
	}
}

// EncodeBatch recomputes the check symbols of every codeword (each of
// length N) in place from its first K data symbols. It performs no heap
// allocations; the codewords are staged through an on-stack group buffer.
func (c *Code) EncodeBatch(cws [][]byte) {
	c.checkBatchSlices(cws)
	var stage batchStage
	for base := 0; base < len(cws); base += gf.Lanes {
		lanes := min(gf.Lanes, len(cws)-base)
		for l := 0; l < lanes; l++ {
			copy(stage[l*c.n:], cws[base+l][:c.k])
		}
		c.encodeGroup(stage[:], c.n, lanes)
		for l := 0; l < lanes; l++ {
			copy(cws[base+l][c.k:], stage[l*c.n+c.k:(l+1)*c.n])
		}
	}
}

// SyndromesBatchFlat computes the N-K syndromes of count codewords laid
// out in buf at the given stride into syn — codeword i's syndromes occupy
// syn[i*(N-K) : (i+1)*(N-K)] — and returns syn. It performs no heap
// allocations.
func (c *Code) SyndromesBatchFlat(buf []byte, stride, count int, syn []byte) []byte {
	c.checkBatchFlatArgs(buf, stride, count)
	nk := c.n - c.k
	if len(syn) != count*nk {
		panic(fmt.Sprintf("rs: SyndromesBatch into %d bytes, want %d", len(syn), count*nk))
	}
	var sw [gf.Order]uint64
	for base := 0; base < count; base += gf.Lanes {
		lanes := min(gf.Lanes, count-base)
		c.synWords(buf[base*stride:], stride, lanes, sw[:nk])
		for i := 0; i < nk; i++ {
			gf.ScatterWord(sw[i], syn[base*nk:], i, nk, lanes)
		}
	}
	return syn
}

// SyndromesBatch computes the N-K syndromes of every codeword into syn
// (len(cws) * (N-K) bytes, laid out per codeword) and returns syn. It
// performs no heap allocations.
func (c *Code) SyndromesBatch(cws [][]byte, syn []byte) []byte {
	c.checkBatchSlices(cws)
	nk := c.n - c.k
	if len(syn) != len(cws)*nk {
		panic(fmt.Sprintf("rs: SyndromesBatch into %d bytes, want %d", len(syn), len(cws)*nk))
	}
	var stage batchStage
	var sw [gf.Order]uint64
	for base := 0; base < len(cws); base += gf.Lanes {
		lanes := min(gf.Lanes, len(cws)-base)
		for l := 0; l < lanes; l++ {
			copy(stage[l*c.n:], cws[base+l])
		}
		c.synWords(stage[:], c.n, lanes, sw[:nk])
		for i := 0; i < nk; i++ {
			gf.ScatterWord(sw[i], syn[base*nk:], i, nk, lanes)
		}
	}
	return syn
}

// CheckBatchFlat reports whether all count codewords laid out in buf at
// the given stride are consistent (every syndrome of every codeword zero).
// It performs no heap allocations and short-circuits on the first dirty
// group.
func (c *Code) CheckBatchFlat(buf []byte, stride, count int) bool {
	c.checkBatchFlatArgs(buf, stride, count)
	nk := c.n - c.k
	var sw [gf.Order]uint64
	for base := 0; base < count; base += gf.Lanes {
		lanes := min(gf.Lanes, count-base)
		if c.synWords(buf[base*stride:], stride, lanes, sw[:nk]) != 0 {
			return false
		}
	}
	return true
}

// CheckBatch reports whether every codeword is consistent. It performs no
// heap allocations.
func (c *Code) CheckBatch(cws [][]byte) bool {
	c.checkBatchSlices(cws)
	nk := c.n - c.k
	var stage batchStage
	var sw [gf.Order]uint64
	for base := 0; base < len(cws); base += gf.Lanes {
		lanes := min(gf.Lanes, len(cws)-base)
		for l := 0; l < lanes; l++ {
			copy(stage[l*c.n:], cws[base+l])
		}
		if c.synWords(stage[:], c.n, lanes, sw[:nk]) != 0 {
			return false
		}
	}
	return true
}

// DecodeBatchFlat decodes count codewords laid out in buf at the given
// stride, in place, each correcting at most maxErrors symbol errors. The
// all-clean fast path — every lane's syndromes zero, verified
// word-parallel — touches nothing; lanes with nonzero syndromes fall back
// to the scalar scratch decoder: corrected lanes are rewritten in place,
// detected-uncorrectable lanes keep their raw content and are reported in
// BatchResult.Bad. Steady-state decoding performs zero heap allocations
// (Bad grows s's buffer once on the first batch that needs it).
func (c *Code) DecodeBatchFlat(buf []byte, stride, count, maxErrors int, s *Scratch) BatchResult {
	c.checkBatchFlatArgs(buf, stride, count)
	if maxErrors < 0 || maxErrors > c.MaxCorrectable() {
		panic(fmt.Sprintf("rs: maxErrors %d out of range [0, %d]", maxErrors, c.MaxCorrectable()))
	}
	nk := c.n - c.k
	res := BatchResult{Bad: s.bad[:0]}
	var sw [gf.Order]uint64
	for base := 0; base < count; base += gf.Lanes {
		lanes := min(gf.Lanes, count-base)
		dirty := c.synWords(buf[base*stride:], stride, lanes, sw[:nk])
		if dirty == 0 {
			continue
		}
		for l := 0; l < lanes; l++ {
			if byte(dirty>>(8*l)) == 0 {
				continue
			}
			lane := buf[(base+l)*stride : (base+l)*stride+c.n]
			r, err := c.DecodeScratch(lane, maxErrors, s)
			if err != nil {
				res.Bad = append(res.Bad, base+l)
				continue
			}
			copy(lane, r.Corrected)
			res.Corrected += len(r.ErrorPositions)
		}
	}
	s.bad = res.Bad[:0]
	return res
}

// DecodeErrorsErasuresBatchFlat decodes count codewords laid out in buf at
// the given stride, in place, each correcting the erased positions plus at
// most maxErrors unknown-position errors — the batch counterpart of
// DecodeErrorsErasuresScratch with the same in-place contract as
// DecodeBatchFlat: the word-parallel syndrome sweep leaves all-clean groups
// untouched, and only lanes with nonzero syndromes fall back to the scalar
// erasure decoder. The erasure positions apply to every codeword in the
// batch (the sparing use case: one dead device position per rank).
func (c *Code) DecodeErrorsErasuresBatchFlat(buf []byte, stride, count int, erasures []int, maxErrors int, s *Scratch) BatchResult {
	c.checkBatchFlatArgs(buf, stride, count)
	nk := c.n - c.k
	res := BatchResult{Bad: s.bad[:0]}
	var sw [gf.Order]uint64
	for base := 0; base < count; base += gf.Lanes {
		lanes := min(gf.Lanes, count-base)
		dirty := c.synWords(buf[base*stride:], stride, lanes, sw[:nk])
		if dirty == 0 {
			continue
		}
		for l := 0; l < lanes; l++ {
			if byte(dirty>>(8*l)) == 0 {
				continue
			}
			lane := buf[(base+l)*stride : (base+l)*stride+c.n]
			r, err := c.DecodeErrorsErasuresScratch(lane, erasures, maxErrors, s)
			if err != nil {
				res.Bad = append(res.Bad, base+l)
				continue
			}
			copy(lane, r.Corrected)
			res.Corrected += len(r.ErrorPositions)
		}
	}
	s.bad = res.Bad[:0]
	return res
}

// DecodeBatch decodes every codeword (each of length N) in place with the
// same contract as DecodeBatchFlat, staging clean-checks through an
// on-stack group buffer; dirty lanes are decoded directly in their own
// slices.
func (c *Code) DecodeBatch(cws [][]byte, maxErrors int, s *Scratch) BatchResult {
	c.checkBatchSlices(cws)
	if maxErrors < 0 || maxErrors > c.MaxCorrectable() {
		panic(fmt.Sprintf("rs: maxErrors %d out of range [0, %d]", maxErrors, c.MaxCorrectable()))
	}
	nk := c.n - c.k
	res := BatchResult{Bad: s.bad[:0]}
	var stage batchStage
	var sw [gf.Order]uint64
	for base := 0; base < len(cws); base += gf.Lanes {
		lanes := min(gf.Lanes, len(cws)-base)
		for l := 0; l < lanes; l++ {
			copy(stage[l*c.n:], cws[base+l])
		}
		dirty := c.synWords(stage[:], c.n, lanes, sw[:nk])
		if dirty == 0 {
			continue
		}
		for l := 0; l < lanes; l++ {
			if byte(dirty>>(8*l)) == 0 {
				continue
			}
			lane := cws[base+l]
			r, err := c.DecodeScratch(lane, maxErrors, s)
			if err != nil {
				res.Bad = append(res.Bad, base+l)
				continue
			}
			copy(lane, r.Corrected)
			res.Corrected += len(r.ErrorPositions)
		}
	}
	s.bad = res.Bad[:0]
	return res
}
