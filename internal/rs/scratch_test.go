package rs

import (
	"bytes"
	"math/rand"
	"testing"
)

// TestDecodeScratchMatchesWrappers drives the scratch and allocating entry
// points over the same randomized error patterns — clean words, correctable
// errors, uncorrectable garbage — with one long-lived Scratch, proving that
// workspace reuse never leaks state between decodes.
func TestDecodeScratchMatchesWrappers(t *testing.T) {
	r := rand.New(rand.NewSource(20))
	for _, c := range codesUnderTest() {
		s := c.NewScratch()
		for trial := 0; trial < 500; trial++ {
			cw := c.Encode(randData(r, c.K()))
			bad := make([]byte, len(cw))
			copy(bad, cw)
			// 0..N-K+1 errors: from clean through correctable to beyond.
			errs := r.Intn(c.CheckSymbols() + 2)
			for _, p := range r.Perm(c.N())[:errs] {
				bad[p] ^= byte(1 + r.Intn(255))
			}
			maxErrors := r.Intn(c.MaxCorrectable() + 1)

			want, wantErr := c.DecodeBounded(bad, maxErrors)
			got, gotErr := c.DecodeScratch(bad, maxErrors, s)
			if wantErr != gotErr {
				t.Fatalf("(%d,%d) trial %d: scratch err %v, wrapper err %v", c.N(), c.K(), trial, gotErr, wantErr)
			}
			if gotErr != nil {
				continue
			}
			if !bytes.Equal(got.Corrected, want.Corrected) {
				t.Fatalf("(%d,%d) trial %d: scratch corrected disagrees with wrapper", c.N(), c.K(), trial)
			}
			if len(got.ErrorPositions) != len(want.ErrorPositions) {
				t.Fatalf("(%d,%d) trial %d: positions %v vs %v", c.N(), c.K(), trial, got.ErrorPositions, want.ErrorPositions)
			}
			for i := range got.ErrorPositions {
				if got.ErrorPositions[i] != want.ErrorPositions[i] {
					t.Fatalf("(%d,%d) trial %d: positions %v vs %v", c.N(), c.K(), trial, got.ErrorPositions, want.ErrorPositions)
				}
			}
		}
	}
}

// TestDecodeErrorsErasuresScratchMatchesWrapper is the erasure-path twin of
// the test above, interleaving erasure decodes with error decodes on the
// same Scratch.
func TestDecodeErrorsErasuresScratchMatchesWrapper(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	for _, c := range codesUnderTest() {
		s := c.NewScratch()
		nk := c.CheckSymbols()
		for trial := 0; trial < 500; trial++ {
			cw := c.Encode(randData(r, c.K()))
			bad := make([]byte, len(cw))
			copy(bad, cw)
			numErase := r.Intn(nk + 1)
			perm := r.Perm(c.N())
			erasures := perm[:numErase]
			maxErrors := r.Intn((nk-numErase)/2 + 1)
			// Corrupt some erased positions and maybe extra ones.
			for _, p := range erasures {
				if r.Intn(2) == 0 {
					bad[p] ^= byte(1 + r.Intn(255))
				}
			}
			extra := r.Intn(maxErrors + 2) // occasionally beyond capacity
			for _, p := range perm[numErase : numErase+extra] {
				bad[p] ^= byte(1 + r.Intn(255))
			}

			want, wantErr := c.DecodeErrorsErasures(bad, erasures, maxErrors)
			got, gotErr := c.DecodeErrorsErasuresScratch(bad, erasures, maxErrors, s)
			if wantErr != gotErr {
				t.Fatalf("(%d,%d) trial %d: scratch err %v, wrapper err %v", c.N(), c.K(), trial, gotErr, wantErr)
			}
			if gotErr != nil {
				// Interleave an error-only decode to stress scratch reuse.
				c.DecodeScratch(cw, c.MaxCorrectable(), s)
				continue
			}
			if !bytes.Equal(got.Corrected, want.Corrected) {
				t.Fatalf("(%d,%d) trial %d: scratch corrected disagrees with wrapper", c.N(), c.K(), trial)
			}
		}
	}
}

// TestErasureOnlyDecodeDetectsExcessErrors pins the erasure-only policy
// (maxErrors == 0, as DecodeErasures uses): a codeword carrying errors
// beyond the erased positions has nonzero modified syndromes past the
// erasure count and must come back ErrUncorrectable — never a silent
// miscorrection presented as success.
func TestErasureOnlyDecodeDetectsExcessErrors(t *testing.T) {
	r := rand.New(rand.NewSource(22))
	for _, c := range codesUnderTest() {
		nk := c.CheckSymbols()
		for numErase := 1; numErase < nk; numErase++ {
			for trial := 0; trial < 200; trial++ {
				cw := c.Encode(randData(r, c.K()))
				bad := make([]byte, len(cw))
				copy(bad, cw)
				perm := r.Perm(c.N())
				erasures := perm[:numErase]
				for _, p := range erasures {
					bad[p] ^= byte(1 + r.Intn(255))
				}
				// One extra error the erasure list does not cover.
				bad[perm[numErase]] ^= byte(1 + r.Intn(255))

				res, err := c.DecodeErrorsErasures(bad, erasures, 0)
				if err == nil && bytes.Equal(res.Corrected, cw) {
					t.Fatalf("(%d,%d) %d erasures + 1 error: erasure-only decode claimed the original codeword", c.N(), c.K(), numErase)
				}
				if err != ErrUncorrectable {
					t.Fatalf("(%d,%d) %d erasures + 1 error: err = %v, want ErrUncorrectable", c.N(), c.K(), numErase, err)
				}
			}
		}
	}
}

// TestScratchEntryPointsZeroAllocations is the allocation regression
// contract of this package: the steady-state codec path must not touch the
// heap.
func TestScratchEntryPointsZeroAllocations(t *testing.T) {
	c := New(36, 32)
	r := rand.New(rand.NewSource(23))
	cw := c.Encode(randData(r, c.K()))
	oneErr := append([]byte(nil), cw...)
	oneErr[5] ^= 0x21
	twoErr := append([]byte(nil), cw...)
	twoErr[3] ^= 0x5a
	twoErr[17] ^= 0xc3
	s := c.NewScratch()
	syn := make([]byte, c.CheckSymbols())

	cases := []struct {
		name string
		f    func()
	}{
		{"EncodeInto", func() { c.EncodeInto(cw) }},
		{"SyndromesInto", func() { c.SyndromesInto(cw, syn) }},
		{"DecodeScratch/clean", func() {
			if _, err := c.DecodeScratch(cw, 2, s); err != nil {
				t.Fatal(err)
			}
		}},
		{"DecodeScratch/1err", func() {
			if _, err := c.DecodeScratch(oneErr, 2, s); err != nil {
				t.Fatal(err)
			}
		}},
		{"DecodeScratch/2err", func() {
			if _, err := c.DecodeScratch(twoErr, 2, s); err != nil {
				t.Fatal(err)
			}
		}},
		{"DecodeErrorsErasuresScratch", func() {
			if _, err := c.DecodeErrorsErasuresScratch(twoErr, []int{3, 17}, 1, s); err != nil {
				t.Fatal(err)
			}
		}},
	}
	for _, tc := range cases {
		tc.f() // warm up (first use may grow nothing, but keep it uniform)
		if allocs := testing.AllocsPerRun(100, tc.f); allocs != 0 {
			t.Errorf("%s: %v allocs/op, want 0", tc.name, allocs)
		}
	}
}

// TestScratchResultAliasing documents the Scratch ownership contract: the
// Result of a scratch decode is overwritten by the next decode on the same
// workspace, while the allocating wrappers return stable copies.
func TestScratchResultAliasing(t *testing.T) {
	c := New(36, 32)
	r := rand.New(rand.NewSource(24))
	cwA := c.Encode(randData(r, c.K()))
	cwB := c.Encode(randData(r, c.K()))
	s := c.NewScratch()

	resA, err := c.DecodeScratch(cwA, 2, s)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(resA.Corrected, cwA) {
		t.Fatal("first scratch decode wrong")
	}
	if _, err := c.DecodeScratch(cwB, 2, s); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(resA.Corrected, cwB) {
		t.Fatal("scratch result did not alias the workspace; update the contract docs")
	}

	stable, err := c.Decode(cwA)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Decode(cwB); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(stable.Corrected, cwA) {
		t.Fatal("allocating wrapper result was clobbered by a later decode")
	}
}
