package rs

// Result reports the outcome of a successful decode.
type Result struct {
	// Corrected is the repaired codeword. The allocating entry points
	// (Decode, DecodeBounded, DecodeErasures, DecodeErrorsErasures) return
	// a fresh slice, even when no correction was needed; the Scratch entry
	// points return a slice aliasing the workspace.
	Corrected []byte
	// ErrorPositions lists the codeword positions (0-based, data-first) at
	// which symbols were corrected, in increasing order.
	ErrorPositions []int
}

// detach copies the result's slices out of a Scratch so it survives the
// scratch's reuse.
func (r Result) detach() Result {
	if r.Corrected != nil {
		r.Corrected = append([]byte(nil), r.Corrected...)
	}
	if len(r.ErrorPositions) > 0 {
		r.ErrorPositions = append([]int(nil), r.ErrorPositions...)
	} else {
		r.ErrorPositions = nil
	}
	return r
}

// Decode corrects up to MaxCorrectable symbol errors in cw. It returns
// ErrUncorrectable when the error pattern is detected but exceeds the
// correction capability. The input is not modified.
func (c *Code) Decode(cw []byte) (Result, error) {
	return c.DecodeBounded(cw, c.MaxCorrectable())
}

// DecodeBounded corrects at most maxErrors symbol errors (which must not
// exceed MaxCorrectable). Memory controllers use the bound to implement
// policy: commercial SCCDCD decodes its 4-check-symbol code with a bound of
// one error so that the residual check capacity guarantees detection of a
// second bad symbol.
//
// It is a thin wrapper over DecodeScratch with a pooled workspace; callers
// on the hot path should hold their own Scratch and call DecodeScratch to
// avoid the result copy.
func (c *Code) DecodeBounded(cw []byte, maxErrors int) (Result, error) {
	s := c.scratch.Get().(*Scratch)
	res, err := c.DecodeScratch(cw, maxErrors, s)
	res = res.detach()
	c.scratch.Put(s)
	return res, err
}

// DecodeErasures corrects symbols at the given known-bad positions
// (erasures). Up to N-K erasures can be repaired. Double chip sparing uses
// this path once a failed device has been identified: the device's symbol
// position is erased and reconstructed. The input is not modified.
func (c *Code) DecodeErasures(cw []byte, erasures []int) (Result, error) {
	return c.DecodeErrorsErasures(cw, erasures, 0)
}

// DecodeErrorsErasures corrects the erased positions and additionally up to
// maxErrors unknown-position errors, subject to the distance bound
// 2*errors + erasures <= N-K. The input is not modified.
//
// It is a thin wrapper over DecodeErrorsErasuresScratch with a pooled
// workspace, exactly as DecodeBounded wraps DecodeScratch.
func (c *Code) DecodeErrorsErasures(cw []byte, erasures []int, maxErrors int) (Result, error) {
	s := c.scratch.Get().(*Scratch)
	res, err := c.DecodeErrorsErasuresScratch(cw, erasures, maxErrors, s)
	res = res.detach()
	c.scratch.Put(s)
	return res, err
}

func allZero(b []byte) bool {
	for _, v := range b {
		if v != 0 {
			return false
		}
	}
	return true
}
