package rs

import (
	"fmt"

	"arcc/internal/gf"
)

// Result reports the outcome of a successful decode.
type Result struct {
	// Corrected is the repaired codeword (a fresh slice, even when no
	// correction was needed).
	Corrected []byte
	// ErrorPositions lists the codeword positions (0-based, data-first) at
	// which symbols were corrected, in increasing order.
	ErrorPositions []int
}

// Decode corrects up to MaxCorrectable symbol errors in cw. It returns
// ErrUncorrectable when the error pattern is detected but exceeds the
// correction capability. The input is not modified.
func (c *Code) Decode(cw []byte) (Result, error) {
	return c.DecodeBounded(cw, c.MaxCorrectable())
}

// DecodeBounded corrects at most maxErrors symbol errors (which must not
// exceed MaxCorrectable). Memory controllers use the bound to implement
// policy: commercial SCCDCD decodes its 4-check-symbol code with a bound of
// one error so that the residual check capacity guarantees detection of a
// second bad symbol.
func (c *Code) DecodeBounded(cw []byte, maxErrors int) (Result, error) {
	if len(cw) != c.n {
		panic(fmt.Sprintf("rs: Decode called with %d symbols, want %d", len(cw), c.n))
	}
	if maxErrors < 0 || maxErrors > c.MaxCorrectable() {
		panic(fmt.Sprintf("rs: maxErrors %d out of range [0, %d]", maxErrors, c.MaxCorrectable()))
	}
	out := make([]byte, c.n)
	copy(out, cw)

	syn := c.Syndromes(cw)
	if allZero(syn) {
		return Result{Corrected: out}, nil
	}
	if maxErrors == 0 {
		return Result{}, ErrUncorrectable
	}

	sigma := berlekampMassey(syn)
	deg := gf.PolyDegree(sigma)
	if deg < 1 || deg > maxErrors {
		return Result{}, ErrUncorrectable
	}
	positions, roots := c.chienSearch(sigma)
	if len(positions) != deg {
		// The locator polynomial does not split into distinct roots inside
		// the codeword: more errors than the code can locate.
		return Result{}, ErrUncorrectable
	}
	magnitudes := c.forney(syn, sigma, roots)
	for i, pos := range positions {
		if magnitudes[i] == 0 {
			return Result{}, ErrUncorrectable
		}
		out[pos] ^= magnitudes[i]
	}
	if !c.Check(out) {
		return Result{}, ErrUncorrectable
	}
	return Result{Corrected: out, ErrorPositions: positions}, nil
}

// DecodeErasures corrects symbols at the given known-bad positions
// (erasures). Up to N-K erasures can be repaired. Double chip sparing uses
// this path once a failed device has been identified: the device's symbol
// position is erased and reconstructed. The input is not modified.
func (c *Code) DecodeErasures(cw []byte, erasures []int) (Result, error) {
	return c.DecodeErrorsErasures(cw, erasures, 0)
}

// DecodeErrorsErasures corrects the erased positions and additionally up to
// maxErrors unknown-position errors, subject to the distance bound
// 2*errors + erasures <= N-K. The input is not modified.
func (c *Code) DecodeErrorsErasures(cw []byte, erasures []int, maxErrors int) (Result, error) {
	if len(cw) != c.n {
		panic(fmt.Sprintf("rs: Decode called with %d symbols, want %d", len(cw), c.n))
	}
	nk := c.n - c.k
	if len(erasures) > nk {
		return Result{}, ErrUncorrectable
	}
	if maxErrors < 0 || 2*maxErrors+len(erasures) > nk {
		panic(fmt.Sprintf("rs: 2*%d errors + %d erasures exceeds %d check symbols", maxErrors, len(erasures), nk))
	}
	seen := make(map[int]bool, len(erasures))
	for _, p := range erasures {
		if p < 0 || p >= c.n {
			panic(fmt.Sprintf("rs: erasure position %d out of range [0, %d)", p, c.n))
		}
		if seen[p] {
			panic(fmt.Sprintf("rs: duplicate erasure position %d", p))
		}
		seen[p] = true
	}
	out := make([]byte, c.n)
	copy(out, cw)

	syn := c.Syndromes(cw)
	if allZero(syn) {
		return Result{Corrected: out}, nil
	}

	// Erasure locator Gamma(x) = prod over erasures of (1 + X_j x), where
	// X_j = alpha^(n-1-pos) is the locator of codeword position pos.
	gamma := gf.Polynomial{1}
	for _, pos := range erasures {
		x := gf.Exp(c.n - 1 - pos)
		gamma = gf.PolyMul(gamma, gf.Polynomial{1, x})
	}

	// Modified syndromes Xi(x) = [S(x) * Gamma(x)] mod x^(n-k).
	sPoly := gf.Polynomial(syn)
	xi := gf.PolyMul(sPoly, gamma)
	if len(xi) > nk {
		xi = xi[:nk]
	}
	modSyn := make([]byte, nk)
	copy(modSyn, xi)

	// With e erasures, only the modified syndromes at indices e..nk-1 obey
	// the error-locator LFSR recurrence, so Berlekamp–Massey runs on that
	// suffix (capacity floor((nk-e)/2) unknown errors).
	sigma := gf.Polynomial{1}
	if maxErrors > 0 {
		sigma = berlekampMassey(modSyn[len(erasures):])
		if gf.PolyDegree(sigma) > maxErrors {
			return Result{}, ErrUncorrectable
		}
	} else if !allZero(modSyn) && len(erasures) == 0 {
		return Result{}, ErrUncorrectable
	}

	// Combined locator Psi(x) = Sigma(x) * Gamma(x); its roots cover both
	// unknown error positions and erased positions.
	psi := gf.PolyMul(sigma, gamma)
	positions, roots := c.chienSearch(psi)
	if len(positions) != gf.PolyDegree(psi) {
		return Result{}, ErrUncorrectable
	}
	magnitudes := c.forney(syn, psi, roots)
	for i, pos := range positions {
		out[pos] ^= magnitudes[i]
	}
	if !c.Check(out) {
		return Result{}, ErrUncorrectable
	}
	var corrected []int
	for i, pos := range positions {
		if magnitudes[i] != 0 {
			corrected = append(corrected, pos)
		}
	}
	return Result{Corrected: out, ErrorPositions: corrected}, nil
}

// berlekampMassey finds the minimal error-locator polynomial sigma(x) with
// sigma(0) = 1 for the given syndrome sequence.
func berlekampMassey(syn []byte) gf.Polynomial {
	sigma := gf.Polynomial{1}
	prev := gf.Polynomial{1}
	var l, m int = 0, 1
	var b byte = 1
	for n := 0; n < len(syn); n++ {
		// Discrepancy d = S_n + sum_{i=1..l} sigma_i * S_{n-i}.
		d := syn[n]
		for i := 1; i <= l && i < len(sigma); i++ {
			d ^= gf.Mul(sigma[i], syn[n-i])
		}
		if d == 0 {
			m++
			continue
		}
		coef := gf.Mul(d, gf.Inv(b))
		// t(x) = sigma(x) - coef * x^m * prev(x)
		shifted := make(gf.Polynomial, m+len(prev))
		for i, v := range prev {
			shifted[m+i] = gf.Mul(coef, v)
		}
		t := gf.PolyAdd(sigma, shifted)
		if 2*l <= n {
			l = n + 1 - l
			prev = sigma
			b = d
			m = 1
		} else {
			m++
		}
		sigma = t
	}
	return sigma
}

// chienSearch finds codeword positions whose locators are roots of the
// locator polynomial. It returns the positions in increasing order together
// with the corresponding locator values X_j.
func (c *Code) chienSearch(locator gf.Polynomial) (positions []int, roots []byte) {
	for pos := 0; pos < c.n; pos++ {
		x := gf.Exp(c.n - 1 - pos) // locator of position pos
		if gf.PolyEval(locator, gf.Inv(x)) == 0 {
			positions = append(positions, pos)
			roots = append(roots, x)
		}
	}
	return positions, roots
}

// forney computes error magnitudes for the located errors using the Forney
// algorithm with first consecutive root alpha^0.
func (c *Code) forney(syn []byte, locator gf.Polynomial, roots []byte) []byte {
	nk := c.n - c.k
	omega := gf.PolyMul(gf.Polynomial(syn), locator)
	if len(omega) > nk {
		omega = omega[:nk]
	}
	omega = gf.PolyTrim(omega)
	deriv := gf.PolyDeriv(locator)
	mags := make([]byte, len(roots))
	for i, x := range roots {
		xInv := gf.Inv(x)
		den := gf.PolyEval(deriv, xInv)
		if den == 0 {
			// Repeated root: the locator is degenerate; magnitude 0 will
			// force the caller's consistency check to fail.
			continue
		}
		num := gf.PolyEval(omega, xInv)
		// e_j = X_j^(1-b) * Omega(X_j^-1) / Lambda'(X_j^-1), with b = 0.
		mags[i] = gf.Mul(x, gf.Div(num, den))
	}
	return mags
}

func allZero(b []byte) bool {
	for _, v := range b {
		if v != 0 {
			return false
		}
	}
	return true
}
