package rs

import (
	"fmt"

	"arcc/internal/gf"
)

// Scratch is a reusable decode workspace. A Scratch holds every buffer the
// decoder needs — syndromes, Berlekamp–Massey state, locator products,
// Chien accumulators, Forney magnitudes, and the corrected codeword — so
// that steady-state decoding performs zero heap allocations.
//
// A Scratch belongs to one decode call at a time: it is not safe for
// concurrent use, and the Result returned by DecodeScratch /
// DecodeErrorsErasuresScratch aliases the scratch's buffers, valid only
// until the next call that reuses the Scratch. Callers that need the result
// to outlive the scratch must copy it (the allocating Decode wrappers do
// exactly that with a pooled Scratch).
type Scratch struct {
	out    []byte // corrected codeword, length N
	syn    []byte // syndromes, length N-K
	modSyn []byte // erasure-modified syndromes, length N-K

	// Berlekamp–Massey rotates three polynomial buffers (sigma, prev,
	// scratch); each holds at most N-K+1 coefficients, with headroom for
	// the untrimmed update term.
	bmA, bmB, bmC []byte

	gamma []byte // erasure locator, degree <= N-K
	psi   []byte // combined locator sigma*gamma

	omega []byte // Forney error evaluator, degree < N-K
	deriv []byte // formal derivative of the locator

	terms     []byte // incremental Chien per-coefficient accumulators
	roots     []byte // locator values X_j of found positions
	rootInv   []byte // inverse locators (the Chien query points)
	mags      []byte // Forney magnitudes
	positions []int  // codeword positions of found roots

	// bad backs BatchResult.Bad for the batch decoders (batch.go). It
	// grows on the first batch that reports uncorrectable lanes and is
	// reused afterwards.
	bad []int
}

// NewScratch allocates a decode workspace sized for the code.
func (c *Code) NewScratch() *Scratch {
	nk := c.n - c.k
	return &Scratch{
		out:       make([]byte, c.n),
		syn:       make([]byte, nk),
		modSyn:    make([]byte, nk),
		bmA:       make([]byte, 0, 2*nk+4),
		bmB:       make([]byte, 0, 2*nk+4),
		bmC:       make([]byte, 0, 2*nk+4),
		gamma:     make([]byte, 0, nk+2),
		psi:       make([]byte, 0, 2*nk+4),
		omega:     make([]byte, nk),
		deriv:     make([]byte, 0, nk+2),
		terms:     make([]byte, nk+2),
		roots:     make([]byte, 0, nk+2),
		rootInv:   make([]byte, 0, nk+2),
		mags:      make([]byte, nk+2),
		positions: make([]int, 0, nk+2),
		bad:       make([]int, 0, gf.Lanes),
	}
}

// DecodeScratch corrects at most maxErrors symbol errors in cw using the
// workspace s, with zero heap allocations. The input is not modified. The
// returned Result aliases s's buffers and is valid until s's next use; see
// Decode/DecodeBounded for the allocating equivalents and the meaning of
// maxErrors.
func (c *Code) DecodeScratch(cw []byte, maxErrors int, s *Scratch) (Result, error) {
	if len(cw) != c.n {
		panic(fmt.Sprintf("rs: Decode called with %d symbols, want %d", len(cw), c.n))
	}
	if maxErrors < 0 || maxErrors > c.MaxCorrectable() {
		panic(fmt.Sprintf("rs: maxErrors %d out of range [0, %d]", maxErrors, c.MaxCorrectable()))
	}
	out := s.out
	copy(out, cw)

	syn := c.SyndromesInto(cw, s.syn)
	if allZero(syn) {
		return Result{Corrected: out}, nil
	}
	if maxErrors == 0 {
		return Result{}, ErrUncorrectable
	}

	sigma := berlekampMasseyInto(syn, s)
	deg := len(sigma) - 1 // sigma is trimmed, so this is its degree
	if deg < 1 || deg > maxErrors {
		return Result{}, ErrUncorrectable
	}
	positions, roots, rootInv := c.chienInto(sigma, s)
	if len(positions) != deg {
		// The locator polynomial does not split into distinct roots inside
		// the codeword: more errors than the code can locate.
		return Result{}, ErrUncorrectable
	}
	mags := c.forneyInto(syn, sigma, roots, rootInv, s)
	for i, pos := range positions {
		if mags[i] == 0 {
			return Result{}, ErrUncorrectable
		}
		out[pos] ^= mags[i]
	}
	if !checkCorrected(syn, roots, mags, s.modSyn) {
		return Result{}, ErrUncorrectable
	}
	return Result{Corrected: out, ErrorPositions: positions}, nil
}

// DecodeErrorsErasuresScratch corrects the erased positions and additionally
// up to maxErrors unknown-position errors using the workspace s, with zero
// heap allocations. The input is not modified. The returned Result aliases
// s's buffers and is valid until s's next use; see DecodeErrorsErasures for
// the allocating equivalent and the distance bound.
func (c *Code) DecodeErrorsErasuresScratch(cw []byte, erasures []int, maxErrors int, s *Scratch) (Result, error) {
	if len(cw) != c.n {
		panic(fmt.Sprintf("rs: Decode called with %d symbols, want %d", len(cw), c.n))
	}
	nk := c.n - c.k
	if len(erasures) > nk {
		return Result{}, ErrUncorrectable
	}
	if maxErrors < 0 || 2*maxErrors+len(erasures) > nk {
		panic(fmt.Sprintf("rs: 2*%d errors + %d erasures exceeds %d check symbols", maxErrors, len(erasures), nk))
	}
	for i, p := range erasures {
		if p < 0 || p >= c.n {
			panic(fmt.Sprintf("rs: erasure position %d out of range [0, %d)", p, c.n))
		}
		for _, q := range erasures[:i] {
			if q == p {
				panic(fmt.Sprintf("rs: duplicate erasure position %d", p))
			}
		}
	}
	out := s.out
	copy(out, cw)

	syn := c.SyndromesInto(cw, s.syn)
	if allZero(syn) {
		return Result{Corrected: out}, nil
	}

	// Erasure locator Gamma(x) = prod over erasures of (1 + X_j x), where
	// X_j = alpha^(n-1-pos) is the locator of codeword position pos. Built
	// in place, one multiply-accumulate sweep per erasure, off the
	// precomputed per-position locator rows.
	gamma := s.gamma[:1]
	gamma[0] = 1
	for _, pos := range erasures {
		row := c.posRootRows[pos]
		gamma = gamma[:len(gamma)+1]
		gamma[len(gamma)-1] = 0
		for i := len(gamma) - 1; i >= 1; i-- {
			gamma[i] ^= row[gamma[i-1]]
		}
	}

	// Modified syndromes Xi(x) = [S(x) * Gamma(x)] mod x^(n-k).
	modSyn := s.modSyn
	for i := range modSyn {
		modSyn[i] = 0
	}
	mulAddTruncated(modSyn, syn, gamma)

	// With e erasures, only the modified syndromes at indices e..nk-1 obey
	// the error-locator LFSR recurrence, so Berlekamp–Massey runs on that
	// suffix (capacity floor((nk-e)/2) unknown errors). With no unknown
	// errors allowed, a nonzero suffix means the pattern exceeds the
	// erasure capacity: detected, not correctable.
	var positions []int
	var roots, rootInv, locator []byte
	if maxErrors > 0 {
		sigma := berlekampMasseyInto(modSyn[len(erasures):], s)
		if len(sigma)-1 > maxErrors {
			return Result{}, ErrUncorrectable
		}

		// Combined locator Psi(x) = Sigma(x) * Gamma(x); its roots cover
		// both unknown error positions and erased positions.
		psi := s.psi[:len(sigma)+len(gamma)-1]
		for i := range psi {
			psi[i] = 0
		}
		for i, v := range sigma {
			gf.MulAddSlice(psi[i:i+len(gamma)], gamma, v)
		}
		psi = gf.PolyTrim(psi)

		positions, roots, rootInv = c.chienInto(psi, s)
		if len(positions) != len(psi)-1 {
			return Result{}, ErrUncorrectable
		}
		locator = psi
	} else {
		if !allZero(modSyn[len(erasures):]) {
			return Result{}, ErrUncorrectable
		}
		// Pure-erasure fast path: the combined locator is Gamma itself and
		// its roots are exactly the erased positions, so the Chien search
		// (and Berlekamp–Massey, trivially sigma = 1) is skipped entirely.
		// Record the positions ascending — the order the search would have
		// found them — and read the locators and their inverses straight
		// from the precomputed per-position tables.
		positions = s.positions[:0]
		for _, p := range erasures {
			positions = append(positions, p)
			for i := len(positions) - 1; i > 0 && positions[i-1] > positions[i]; i-- {
				positions[i-1], positions[i] = positions[i], positions[i-1]
			}
		}
		roots = s.roots[:len(positions)]
		rootInv = s.rootInv[:len(positions)]
		for i, p := range positions {
			roots[i] = c.posRoot[p]
			rootInv[i] = c.posRootInv[p]
		}
		locator = gamma
	}
	mags := c.forneyInto(syn, locator, roots, rootInv, s)
	for i, pos := range positions {
		out[pos] ^= mags[i]
	}
	if !checkCorrected(syn, roots, mags, s.modSyn) {
		return Result{}, ErrUncorrectable
	}
	// Report only the positions whose symbols actually changed: an erased
	// position may turn out to have held the right value.
	n := 0
	for i, pos := range positions {
		if mags[i] != 0 {
			positions[n] = pos
			n++
		}
	}
	if n == 0 {
		return Result{Corrected: out}, nil
	}
	return Result{Corrected: out, ErrorPositions: positions[:n]}, nil
}

// berlekampMasseyInto finds the minimal error-locator polynomial sigma(x)
// with sigma(0) = 1 for the given syndrome sequence. The result is trimmed
// and aliases one of s's rotating buffers.
func berlekampMasseyInto(syn []byte, s *Scratch) []byte {
	sigma := s.bmA[:1]
	sigma[0] = 1
	prev := s.bmB[:1]
	prev[0] = 1
	tmp := s.bmC
	var l, m int = 0, 1
	var b byte = 1
	for n := 0; n < len(syn); n++ {
		// Discrepancy d = S_n + sum_{i=1..l} sigma_i * S_{n-i}.
		d := syn[n]
		for i := 1; i <= l && i < len(sigma); i++ {
			d ^= gf.Mul(sigma[i], syn[n-i])
		}
		if d == 0 {
			m++
			continue
		}
		coef := gf.Mul(d, gf.Inv(b))
		// t(x) = sigma(x) - coef * x^m * prev(x), trimmed.
		tl := m + len(prev)
		if len(sigma) > tl {
			tl = len(sigma)
		}
		tmp = tmp[:tl]
		for i := range tmp {
			tmp[i] = 0
		}
		copy(tmp, sigma)
		gf.MulAddSlice(tmp[m:m+len(prev)], prev, coef)
		tmp = gf.PolyTrim(tmp)
		if 2*l <= n {
			l = n + 1 - l
			b = d
			m = 1
			sigma, prev, tmp = tmp, sigma, prev
		} else {
			m++
			sigma, tmp = tmp, sigma
		}
	}
	return sigma
}

// chienInto runs the incremental Chien search: it finds the codeword
// positions whose locators are roots of the locator polynomial (trimmed,
// degree >= 0), in increasing position order, together with the locator
// values X_j and their inverses. The returned slices alias s's buffers.
//
// Instead of evaluating the polynomial from scratch at every position, it
// keeps one running accumulator per coefficient: term i starts at
// locator[i] * alpha^(-(n-1)*i) — its value at the locator inverse of
// position 0 — and stepping to the next position multiplies term i by the
// constant alpha^i (a precomputed table row). The locator's value at a
// position is then just the XOR of the terms: no Inv, no PolyEval. A
// degree-d polynomial has at most d roots, so the search stops as soon as
// d have been found; degrees 1 and 2 (every bounded-1 decode and the full
// (36,32) decode) run unrolled with the accumulators in registers.
func (c *Code) chienInto(locator []byte, s *Scratch) (positions []int, roots, rootInv []byte) {
	deg := len(locator) - 1
	positions = s.positions[:0]
	roots = s.roots[:0]
	rootInv = s.rootInv[:0]
	if deg <= 0 {
		return positions, roots, rootInv
	}
	terms := s.terms[:deg+1]
	for i := range terms {
		terms[i] = gf.Mul(locator[i], c.chienInit[i])
	}
	switch deg {
	case 1:
		t0, t1 := terms[0], terms[1]
		step1 := c.stepRows[1]
		for pos := 0; pos < c.n; pos++ {
			if t0^t1 == 0 {
				return append(positions, pos), append(roots, c.posRoot[pos]), append(rootInv, c.posRootInv[pos])
			}
			t1 = step1[t1]
		}
	case 2:
		t0, t1, t2 := terms[0], terms[1], terms[2]
		step1, step2 := c.stepRows[1], c.stepRows[2]
		for pos := 0; pos < c.n; pos++ {
			if t0^t1^t2 == 0 {
				positions = append(positions, pos)
				roots = append(roots, c.posRoot[pos])
				rootInv = append(rootInv, c.posRootInv[pos])
				if len(positions) == 2 {
					return positions, roots, rootInv
				}
			}
			t1 = step1[t1]
			t2 = step2[t2]
		}
	default:
		for pos := 0; pos < c.n; pos++ {
			var sum byte
			for _, t := range terms {
				sum ^= t
			}
			if sum == 0 {
				positions = append(positions, pos)
				roots = append(roots, c.posRoot[pos])
				rootInv = append(rootInv, c.posRootInv[pos])
				if len(positions) == deg {
					return positions, roots, rootInv
				}
			}
			for i := 1; i <= deg; i++ {
				terms[i] = c.stepRows[i][terms[i]]
			}
		}
	}
	return positions, roots, rootInv
}

// forneyInto computes error magnitudes for the located errors using the
// Forney algorithm with first consecutive root alpha^0. The returned slice
// aliases s's buffers.
func (c *Code) forneyInto(syn, locator, roots, rootInv []byte, s *Scratch) []byte {
	// Omega(x) = [S(x) * locator(x)] mod x^(n-k), trimmed.
	omega := s.omega
	for i := range omega {
		omega[i] = 0
	}
	mulAddTruncated(omega, syn, locator)
	omega = gf.PolyTrim(omega)
	// deriv = locator'; in characteristic 2 the even-power terms vanish.
	deriv := s.deriv[:0]
	if len(locator) >= 2 {
		deriv = s.deriv[:len(locator)-1]
		for i := range deriv {
			deriv[i] = 0
		}
		for i := 1; i < len(locator); i += 2 {
			deriv[i-1] = locator[i]
		}
		deriv = gf.PolyTrim(deriv)
	}
	mags := s.mags[:len(roots)]
	for i, x := range roots {
		mags[i] = 0
		xInv := rootInv[i]
		den := gf.PolyEval(deriv, xInv)
		if den == 0 {
			// Repeated root: the locator is degenerate; magnitude 0 will
			// force the caller's consistency check to fail.
			continue
		}
		num := gf.PolyEval(omega, xInv)
		// e_j = X_j^(1-b) * Omega(X_j^-1) / Lambda'(X_j^-1), with b = 0.
		mags[i] = gf.Mul(x, gf.Div(num, den))
	}
	return mags
}

// checkCorrected reports whether the corrected codeword is consistent,
// without re-evaluating it: correcting magnitude m_j at the position with
// locator X_j shifts syndrome S_i by m_j * X_j^i, so the corrected word's
// syndromes are syn[i] ^ sum_j m_j * X_j^i — exact GF(2^8) algebra, a few
// table lookups instead of another full syndrome pass. chk is a caller
// buffer of length N-K.
func checkCorrected(syn, roots, mags, chk []byte) bool {
	copy(chk, syn)
	for j, x := range roots {
		m := mags[j]
		if m == 0 {
			continue
		}
		row := gf.MulRow(x)
		for i := range chk {
			chk[i] ^= m // m == mags[j] * x^i at step i
			m = row[m]
		}
	}
	return allZero(chk)
}

// mulAddTruncated adds a*b into dst, keeping only the coefficients below
// len(dst): dst += (a*b) mod x^len(dst).
func mulAddTruncated(dst, a, b []byte) {
	for i, v := range a {
		if v == 0 || i >= len(dst) {
			continue
		}
		end := len(dst) - i
		if end > len(b) {
			end = len(b)
		}
		gf.MulAddSlice(dst[i:i+end], b[:end], v)
	}
}
