package rs

import (
	"bytes"
	"math/rand"
	"testing"
)

// codesUnderTest returns the two code geometries the ARCC evaluation uses
// plus a small code for exhaustive checks.
func codesUnderTest() []*Code {
	return []*Code{
		New(18, 16), // relaxed: 2 check symbols
		New(36, 32), // upgraded / commercial SCCDCD: 4 check symbols
		New(10, 4),  // 6 check symbols, corrects 3: stress decoder paths
	}
}

func randData(r *rand.Rand, k int) []byte {
	d := make([]byte, k)
	r.Read(d)
	return d
}

func TestNewPanicsOnBadParams(t *testing.T) {
	for _, tc := range []struct{ n, k int }{{0, 0}, {10, 10}, {10, 12}, {256, 8}, {5, 0}, {5, -1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d, %d) did not panic", tc.n, tc.k)
				}
			}()
			New(tc.n, tc.k)
		}()
	}
}

func TestCodeAccessors(t *testing.T) {
	c := New(36, 32)
	if c.N() != 36 || c.K() != 32 || c.CheckSymbols() != 4 || c.MaxCorrectable() != 2 {
		t.Fatalf("accessors: N=%d K=%d check=%d t=%d", c.N(), c.K(), c.CheckSymbols(), c.MaxCorrectable())
	}
}

func TestEncodeIsSystematic(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for _, c := range codesUnderTest() {
		data := randData(r, c.K())
		cw := c.Encode(data)
		if !bytes.Equal(cw[:c.K()], data) {
			t.Fatalf("(%d,%d): codeword does not begin with data", c.N(), c.K())
		}
		if !c.Check(cw) {
			t.Fatalf("(%d,%d): fresh codeword fails syndrome check", c.N(), c.K())
		}
	}
}

func TestEncodeLinear(t *testing.T) {
	// The code is linear: encode(a) XOR encode(b) == encode(a XOR b).
	r := rand.New(rand.NewSource(2))
	for _, c := range codesUnderTest() {
		a, b := randData(r, c.K()), randData(r, c.K())
		sum := make([]byte, c.K())
		for i := range sum {
			sum[i] = a[i] ^ b[i]
		}
		cwa, cwb, cws := c.Encode(a), c.Encode(b), c.Encode(sum)
		for i := range cws {
			if cwa[i]^cwb[i] != cws[i] {
				t.Fatalf("(%d,%d): linearity violated at symbol %d", c.N(), c.K(), i)
			}
		}
	}
}

func TestDecodeCleanCodeword(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for _, c := range codesUnderTest() {
		cw := c.Encode(randData(r, c.K()))
		res, err := c.Decode(cw)
		if err != nil {
			t.Fatalf("(%d,%d): decode of clean codeword failed: %v", c.N(), c.K(), err)
		}
		if !bytes.Equal(res.Corrected, cw) {
			t.Fatalf("(%d,%d): clean decode altered codeword", c.N(), c.K())
		}
		if len(res.ErrorPositions) != 0 {
			t.Fatalf("(%d,%d): clean decode reported errors at %v", c.N(), c.K(), res.ErrorPositions)
		}
	}
}

func TestDecodeCorrectsSingleErrorEveryPositionEveryValue(t *testing.T) {
	c := New(18, 16)
	r := rand.New(rand.NewSource(4))
	cw := c.Encode(randData(r, c.K()))
	for pos := 0; pos < c.N(); pos++ {
		for _, delta := range []byte{1, 0x80, 0xFF, 0x5A} {
			bad := make([]byte, len(cw))
			copy(bad, cw)
			bad[pos] ^= delta
			res, err := c.Decode(bad)
			if err != nil {
				t.Fatalf("pos %d delta %#x: %v", pos, delta, err)
			}
			if !bytes.Equal(res.Corrected, cw) {
				t.Fatalf("pos %d delta %#x: wrong correction", pos, delta)
			}
			if len(res.ErrorPositions) != 1 || res.ErrorPositions[0] != pos {
				t.Fatalf("pos %d: reported positions %v", pos, res.ErrorPositions)
			}
		}
	}
}

func TestDecodeCorrectsUpToT(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	for _, c := range codesUnderTest() {
		tMax := c.MaxCorrectable()
		for errs := 1; errs <= tMax; errs++ {
			for trial := 0; trial < 200; trial++ {
				cw := c.Encode(randData(r, c.K()))
				bad := make([]byte, len(cw))
				copy(bad, cw)
				positions := r.Perm(c.N())[:errs]
				for _, p := range positions {
					bad[p] ^= byte(1 + r.Intn(255))
				}
				res, err := c.Decode(bad)
				if err != nil {
					t.Fatalf("(%d,%d) %d errors: %v", c.N(), c.K(), errs, err)
				}
				if !bytes.Equal(res.Corrected, cw) {
					t.Fatalf("(%d,%d) %d errors: wrong correction", c.N(), c.K(), errs)
				}
				if len(res.ErrorPositions) != errs {
					t.Fatalf("(%d,%d): reported %d corrections, want %d", c.N(), c.K(), len(res.ErrorPositions), errs)
				}
			}
		}
	}
}

func TestDecodeDetectsTPlusOneErrors(t *testing.T) {
	// With 2t check symbols, t+1 errors are beyond correction. For the
	// (36,32) code decoded at full power (t=2), 3 errors may alias, but for
	// a *bounded* decode at 1 error, 2 errors must always be detected:
	// that is the SCCDCD guarantee.
	c := New(36, 32)
	r := rand.New(rand.NewSource(6))
	for trial := 0; trial < 2000; trial++ {
		cw := c.Encode(randData(r, c.K()))
		bad := make([]byte, len(cw))
		copy(bad, cw)
		positions := r.Perm(c.N())[:2]
		for _, p := range positions {
			bad[p] ^= byte(1 + r.Intn(255))
		}
		if _, err := c.DecodeBounded(bad, 1); err != ErrUncorrectable {
			t.Fatalf("double error decoded under single-error bound: trial %d, err %v", trial, err)
		}
	}
}

func TestRelaxedCodeDoubleErrorMayMiscorrect(t *testing.T) {
	// The relaxed (18,16) code corrects one symbol. A double error either
	// gets detected or miscorrects to a valid-looking codeword — it must
	// never be returned as a *clean* decode with the original data intact.
	// This documents the SDC window ARCC's reliability analysis studies.
	c := New(18, 16)
	r := rand.New(rand.NewSource(7))
	var detected, miscorrected int
	for trial := 0; trial < 2000; trial++ {
		cw := c.Encode(randData(r, c.K()))
		bad := make([]byte, len(cw))
		copy(bad, cw)
		positions := r.Perm(c.N())[:2]
		for _, p := range positions {
			bad[p] ^= byte(1 + r.Intn(255))
		}
		res, err := c.Decode(bad)
		switch {
		case err == ErrUncorrectable:
			detected++
		case err == nil && !bytes.Equal(res.Corrected, cw):
			miscorrected++
		case err == nil:
			t.Fatal("double error decoded back to the original codeword")
		}
	}
	if detected == 0 {
		t.Fatal("no double errors detected in 2000 trials")
	}
	if miscorrected == 0 {
		t.Fatal("expected some miscorrections for the 1-symbol-correct code; the SDC window should exist")
	}
}

func TestDecodeBoundedZeroDetectsOnly(t *testing.T) {
	c := New(18, 16)
	r := rand.New(rand.NewSource(8))
	cw := c.Encode(randData(r, c.K()))
	bad := make([]byte, len(cw))
	copy(bad, cw)
	bad[3] ^= 0x40
	if _, err := c.DecodeBounded(bad, 0); err != ErrUncorrectable {
		t.Fatalf("detect-only decode of corrupted word: err = %v, want ErrUncorrectable", err)
	}
	res, err := c.DecodeBounded(cw, 0)
	if err != nil || !bytes.Equal(res.Corrected, cw) {
		t.Fatalf("detect-only decode of clean word failed: %v", err)
	}
}

func TestDecodeBoundedPanicsOutOfRange(t *testing.T) {
	c := New(18, 16)
	cw := c.Encode(make([]byte, 16))
	for _, bound := range []int{-1, 2} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("DecodeBounded(bound=%d) did not panic", bound)
				}
			}()
			c.DecodeBounded(cw, bound)
		}()
	}
}

func TestDecodeErasures(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	for _, c := range codesUnderTest() {
		nk := c.CheckSymbols()
		for numErase := 1; numErase <= nk; numErase++ {
			for trial := 0; trial < 100; trial++ {
				cw := c.Encode(randData(r, c.K()))
				bad := make([]byte, len(cw))
				copy(bad, cw)
				erasures := r.Perm(c.N())[:numErase]
				for _, p := range erasures {
					bad[p] ^= byte(1 + r.Intn(255))
				}
				res, err := c.DecodeErasures(bad, erasures)
				if err != nil {
					t.Fatalf("(%d,%d) %d erasures: %v", c.N(), c.K(), numErase, err)
				}
				if !bytes.Equal(res.Corrected, cw) {
					t.Fatalf("(%d,%d) %d erasures: wrong reconstruction", c.N(), c.K(), numErase)
				}
			}
		}
	}
}

func TestDecodeErasuresUnchangedPositionsAllowed(t *testing.T) {
	// Erasing positions that are actually intact must still succeed: a
	// failed device may return correct data on some beats.
	c := New(36, 32)
	r := rand.New(rand.NewSource(10))
	cw := c.Encode(randData(r, c.K()))
	res, err := c.DecodeErasures(cw, []int{0, 7, 35})
	if err != nil || !bytes.Equal(res.Corrected, cw) {
		t.Fatalf("erasing intact positions: err=%v", err)
	}
	if len(res.ErrorPositions) != 0 {
		t.Fatalf("intact erasures reported corrections at %v", res.ErrorPositions)
	}
}

func TestDecodeErrorsErasuresCombined(t *testing.T) {
	// 2 erasures + 1 unknown error within the 6-check-symbol code.
	c := New(10, 4)
	r := rand.New(rand.NewSource(11))
	for trial := 0; trial < 500; trial++ {
		cw := c.Encode(randData(r, c.K()))
		bad := make([]byte, len(cw))
		copy(bad, cw)
		perm := r.Perm(c.N())
		erasures := perm[:2]
		errPos := perm[2]
		for _, p := range erasures {
			bad[p] ^= byte(1 + r.Intn(255))
		}
		bad[errPos] ^= byte(1 + r.Intn(255))
		res, err := c.DecodeErrorsErasures(bad, erasures, 1)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !bytes.Equal(res.Corrected, cw) {
			t.Fatalf("trial %d: wrong combined correction", trial)
		}
	}
}

func TestDecodeErasuresTooMany(t *testing.T) {
	c := New(18, 16)
	cw := c.Encode(make([]byte, 16))
	if _, err := c.DecodeErasures(cw, []int{0, 1, 2}); err != ErrUncorrectable {
		t.Fatalf("3 erasures on 2-check code: err = %v, want ErrUncorrectable", err)
	}
}

func TestDecodeErasuresPanicsOnBadPositions(t *testing.T) {
	c := New(18, 16)
	cw := c.Encode(make([]byte, 16))
	for _, bad := range [][]int{{-1}, {18}, {3, 3}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("DecodeErasures(%v) did not panic", bad)
				}
			}()
			c.DecodeErasures(cw, bad)
		}()
	}
}

func TestDecodeDoesNotModifyInput(t *testing.T) {
	c := New(18, 16)
	r := rand.New(rand.NewSource(12))
	cw := c.Encode(randData(r, c.K()))
	bad := make([]byte, len(cw))
	copy(bad, cw)
	bad[5] ^= 0x11
	snapshot := make([]byte, len(bad))
	copy(snapshot, bad)
	if _, err := c.Decode(bad); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(bad, snapshot) {
		t.Fatal("Decode modified its input")
	}
}

func TestEncodeIntoMatchesEncode(t *testing.T) {
	c := New(36, 32)
	r := rand.New(rand.NewSource(13))
	data := randData(r, c.K())
	want := c.Encode(data)
	cw := make([]byte, c.N())
	copy(cw, data)
	// Poison the check-symbol region to prove EncodeInto overwrites it.
	for i := c.K(); i < c.N(); i++ {
		cw[i] = 0xAA
	}
	c.EncodeInto(cw)
	if !bytes.Equal(cw, want) {
		t.Fatal("EncodeInto disagrees with Encode")
	}
}

func TestSyndromesLengthAndPanic(t *testing.T) {
	c := New(18, 16)
	if got := len(c.Syndromes(make([]byte, 18))); got != 2 {
		t.Fatalf("syndrome count = %d, want 2", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Syndromes with wrong length did not panic")
		}
	}()
	c.Syndromes(make([]byte, 17))
}
