package experiments

import (
	"context"
	"io"
	"math/rand"

	"arcc/internal/exhibit"
	"arcc/internal/faultmodel"
	"arcc/internal/mc"
	"arcc/internal/sim"
	"arcc/internal/stats"
	"arcc/internal/workload"
)

// FaultScenario names one Fig 7.2/7.3 fault case and its upgraded-page
// fraction (Table 7.4).
type FaultScenario struct {
	Name     string
	Type     faultmodel.Type
	Fraction float64
}

// FaultScenarios returns the four cases of Figs 7.2/7.3.
func FaultScenarios() []FaultScenario {
	shape := faultmodel.ARCCChannelShape()
	return []FaultScenario{
		{"1 Lane Fault", faultmodel.Lane, shape.UpgradedFraction(faultmodel.Lane)},
		{"1 Device Fault", faultmodel.Device, shape.UpgradedFraction(faultmodel.Device)},
		{"1 Subbank Fault", faultmodel.Bank, shape.UpgradedFraction(faultmodel.Bank)},
		{"1 Column Fault", faultmodel.Column, shape.UpgradedFraction(faultmodel.Column)},
	}
}

// Fig71Result holds the fault-free power and performance comparison.
type Fig71Result struct {
	Mixes []string
	// PowerReduction[i] = 1 - ARCC/baseline power for mix i.
	PowerReduction []float64
	// IPCGain[i] = ARCC/baseline IPC - 1 for mix i.
	IPCGain []float64
	// Averages across mixes.
	AvgPowerReduction, AvgIPCGain float64
}

// Fig71 reproduces Figure 7.1: DRAM power and performance improvement of
// fault-free ARCC over commercial chipkill, per mix. The per-mix simulator
// runs fan out across the engine's workers; each run is seeded from its
// config alone, so the figure is identical at any parallelism. A
// cancelled ctx aborts between runs and returns mc.ErrCanceled.
func Fig71(ctx context.Context, cfg exhibit.Config) (Fig71Result, error) {
	var res Fig71Result
	mixes := workload.Mixes()
	// Exported fields: the pair must gob-encode for shard checkpointing.
	type pair struct{ Base, Arcc sim.Result }
	pairs, err := mc.MapScratchCtx(ctx, len(mixes), cfg.SeedOrDefault(), cfg.SimOptions(), sim.NewScratch,
		func(_ *rand.Rand, i int, s *sim.Scratch) pair {
			return pair{
				Base: runMix(mixes[i], sim.Baseline, 0, cfg, s),
				Arcc: runMix(mixes[i], sim.ARCC, 0, cfg, s),
			}
		})
	if err != nil {
		return Fig71Result{}, err
	}
	for i, mix := range mixes {
		res.Mixes = append(res.Mixes, mix.Name)
		res.PowerReduction = append(res.PowerReduction, 1-pairs[i].Arcc.PowerMW/pairs[i].Base.PowerMW)
		res.IPCGain = append(res.IPCGain, pairs[i].Arcc.IPCSum/pairs[i].Base.IPCSum-1)
	}
	res.AvgPowerReduction = stats.Mean(res.PowerReduction)
	res.AvgIPCGain = stats.Mean(res.IPCGain)
	return res, nil
}

// Fprint renders the Fig 7.1 rows.
func (r Fig71Result) Fprint(w io.Writer) {
	fprintf(w, "Figure 7.1: Power and Performance Improvements (ARCC vs commercial chipkill, fault-free)\n")
	fprintf(w, "%-8s %-16s %-12s\n", "Mix", "Power reduction", "IPC gain")
	for i, m := range r.Mixes {
		fprintf(w, "%-8s %15.1f%% %11.1f%%\n", m, r.PowerReduction[i]*100, r.IPCGain[i]*100)
	}
	fprintf(w, "%-8s %15.1f%% %11.1f%%\n", "AVG", r.AvgPowerReduction*100, r.AvgIPCGain*100)
}

// Fig72Result holds power (Fig 7.2) or IPC (Fig 7.3) under fault scenarios,
// normalised to the fault-free run of the same mix.
type FaultSweepResult struct {
	Metric    string // "power" or "ipc"
	Mixes     []string
	Scenarios []FaultScenario
	// Normalized[s][m]: scenario s, mix m, value / fault-free value.
	Normalized [][]float64
	// WorstCase[s] is the zero-locality analytic estimate for scenario s.
	WorstCase []float64
	// Avg[s] averages Normalized[s] across mixes.
	Avg []float64
}

// Fig72 reproduces Figure 7.2 (power under faults).
func Fig72(ctx context.Context, cfg exhibit.Config) (FaultSweepResult, error) {
	return faultSweep(ctx, cfg, "power")
}

// Fig73 reproduces Figure 7.3 (performance under faults).
func Fig73(ctx context.Context, cfg exhibit.Config) (FaultSweepResult, error) {
	return faultSweep(ctx, cfg, "ipc")
}

func faultSweep(ctx context.Context, cfg exhibit.Config, metric string) (FaultSweepResult, error) {
	res := FaultSweepResult{Metric: metric, Scenarios: FaultScenarios()}
	mixes := workload.Mixes()
	// Fault-free reference runs, then every (scenario, mix) cell, each a
	// whole simulator run fanned out across the engine's workers.
	clean, err := mc.MapScratchCtx(ctx, len(mixes), cfg.SeedOrDefault(), cfg.SimOptions(), sim.NewScratch,
		func(_ *rand.Rand, i int, s *sim.Scratch) sim.Result {
			return runMix(mixes[i], sim.ARCC, 0, cfg, s)
		})
	if err != nil {
		return FaultSweepResult{}, err
	}
	for i := range mixes {
		res.Mixes = append(res.Mixes, mixes[i].Name)
	}
	cells, err := mc.MapScratchCtx(ctx, len(res.Scenarios)*len(mixes), cfg.SeedOrDefault(), cfg.SimOptions(), sim.NewScratch,
		func(_ *rand.Rand, i int, s *sim.Scratch) sim.Result {
			return runMix(mixes[i%len(mixes)], sim.ARCC, res.Scenarios[i/len(mixes)].Fraction, cfg, s)
		})
	if err != nil {
		return FaultSweepResult{}, err
	}
	for s, sc := range res.Scenarios {
		row := make([]float64, len(mixes))
		for i := range mixes {
			r := cells[s*len(mixes)+i]
			if metric == "power" {
				row[i] = r.PowerMW / clean[i].PowerMW
			} else {
				row[i] = r.IPCSum / clean[i].IPCSum
			}
		}
		res.Normalized = append(res.Normalized, row)
		res.Avg = append(res.Avg, stats.Mean(row))
		if metric == "power" {
			// Zero locality: upgraded accesses cost 2x -> +fraction.
			res.WorstCase = append(res.WorstCase, 1+sc.Fraction)
		} else {
			// Zero locality, bandwidth bound: half bandwidth on the
			// upgraded fraction.
			res.WorstCase = append(res.WorstCase, 1-0.5*sc.Fraction)
		}
	}
	return res, nil
}

// Fprint renders a fault sweep.
func (r FaultSweepResult) Fprint(w io.Writer) {
	title := "Figure 7.2: Power Consumption of a Memory System with Fault (normalized to fault-free)"
	if r.Metric == "ipc" {
		title = "Figure 7.3: Performance of a Memory System with Fault (normalized to fault-free)"
	}
	fprintf(w, "%s\n%-10s", title, "Mix")
	for _, sc := range r.Scenarios {
		fprintf(w, " %16s", sc.Name)
	}
	fprintf(w, "\n")
	for m, mix := range r.Mixes {
		fprintf(w, "%-10s", mix)
		for s := range r.Scenarios {
			fprintf(w, " %16.3f", r.Normalized[s][m])
		}
		fprintf(w, "\n")
	}
	fprintf(w, "%-10s", "AVG")
	for s := range r.Scenarios {
		fprintf(w, " %16.3f", r.Avg[s])
	}
	fprintf(w, "\n%-10s", "worst est.")
	for s := range r.Scenarios {
		fprintf(w, " %16.3f", r.WorstCase[s])
	}
	fprintf(w, "\n")
}

// runMix runs one sim configuration against the shard's scratch.
func runMix(mix workload.Mix, system sim.MemorySystem, upgradedFraction float64, cfg exhibit.Config, s *sim.Scratch) sim.Result {
	c := sim.DefaultConfig(mix, system)
	c.InstructionsPerCore = instructions(cfg)
	c.UpgradedFraction = upgradedFraction
	c.Seed = cfg.SeedOrDefault()
	return sim.RunWith(c, s)
}
