package experiments

import (
	"context"
	"io"
	"math/rand"

	"arcc/internal/cache"
	"arcc/internal/core"
	"arcc/internal/dram"
	"arcc/internal/exhibit"
	"arcc/internal/mc"
	"arcc/internal/memctrl"
	"arcc/internal/scrub"
	"arcc/internal/sim"
	"arcc/internal/workload"
)

// This file holds the ablation studies DESIGN.md calls out: each isolates
// one design decision of the paper and quantifies what it buys.

// ScrubAblationRow reports fault-detection coverage of the two scrubbing
// algorithms for one fault situation.
type ScrubAblationRow struct {
	Scenario     string
	FourStep     bool // fault found by the 4-step scrubber
	Conventional bool // fault found by the conventional scrubber
}

// AblationScrub compares the 4-step and conventional scrubbers' detection
// coverage across fault situations, including the hidden stuck-at case that
// motivates the §4.2.2 hardening. Results are functional (real codewords).
func AblationScrub() []ScrubAblationRow {
	type scenario struct {
		name    string
		fault   dram.Fault
		content byte // fill pattern stored before the fault appears
	}
	scenarios := []scenario{
		{"stuck-at-1 device, zero-filled data", dram.Fault{Device: 3, Scope: dram.ScopeDevice, Mode: dram.StuckAt1}, 0x00},
		{"stuck-at-0 device, zero-filled data (hidden)", dram.Fault{Device: 3, Scope: dram.ScopeDevice, Mode: dram.StuckAt0}, 0x00},
		{"stuck-at-1 device, one-filled data (hidden)", dram.Fault{Device: 3, Scope: dram.ScopeDevice, Mode: dram.StuckAt1}, 0xFF},
		{"wrong-data (decoder) fault", dram.Fault{Device: 3, Scope: dram.ScopeRow, Mode: dram.WrongData, Bank: 0, Row: 0}, 0x5A},
		{"stuck-at-0 bank, mixed data", dram.Fault{Device: 3, Scope: dram.ScopeBank, Mode: dram.StuckAt0, Bank: 0}, 0x5A},
	}
	var rows []ScrubAblationRow
	for _, sc := range scenarios {
		row := ScrubAblationRow{Scenario: sc.name}
		for _, algo := range []scrub.Algorithm{scrub.FourStep, scrub.Conventional} {
			mem := core.New(core.Config{Pages: 4, RanksPerChannel: 1, BanksPerDevice: 2, RowsPerBank: 1})
			mem.RelaxAll()
			line := make([]byte, core.LineBytes)
			for i := range line {
				line[i] = sc.content
			}
			for page := 0; page < mem.Pages(); page++ {
				for l := 0; l < core.LinesPerPage; l++ {
					if err := mem.WriteLine(page, l, line); err != nil {
						panic(err)
					}
				}
			}
			mem.InjectFault(0, 0, sc.fault)
			s := scrub.New(mem, algo)
			found := len(s.FullScrub()) > 0
			if algo == scrub.FourStep {
				row.FourStep = found
			} else {
				row.Conventional = found
			}
		}
		rows = append(rows, row)
	}
	return rows
}

// FprintAblationScrub renders the scrubber coverage comparison.
func FprintAblationScrub(w io.Writer) {
	fprintf(w, "Ablation: scrubber fault-detection coverage (4-step vs conventional, §4.2.2)\n")
	fprintf(w, "%-48s %-9s %-12s\n", "Scenario", "4-step", "conventional")
	for _, r := range AblationScrub() {
		fprintf(w, "%-48s %-9v %-12v\n", r.Scenario, r.FourStep, r.Conventional)
	}
}

// PolicyAblationResult compares LLC replacement policies for upgraded pairs
// under heavy upgrade pressure.
type PolicyAblationResult struct {
	Mixes []string
	// IPCRatio[p][m] is policy p's IPC relative to SharedRecency for mix m,
	// with every page upgraded (lane-fault pressure).
	Policies []string
	IPCRatio [][]float64
}

// AblationLLCPolicy quantifies the §4.2.3 design choice: shared-recency
// paired replacement versus independent LRU, measured through the full
// simulator with all pages upgraded. The (policy, mix) runs fan out
// across the engine's workers; each run is seeded from its config alone,
// so the ratios are identical at any parallelism, and row 0 — the
// shared-recency baseline divided by itself — is exactly 1.
func AblationLLCPolicy(ctx context.Context, cfg exhibit.Config) (PolicyAblationResult, error) {
	res := PolicyAblationResult{Policies: []string{"shared-recency", "independent-lru"}}
	policies := []cache.Policy{cache.SharedRecency, cache.IndependentLRU}
	mixes := []workload.Mix{workload.Mixes()[0], workload.Mixes()[9], workload.Mixes()[11]}
	for _, mix := range mixes {
		res.Mixes = append(res.Mixes, mix.Name)
	}
	ipcs, err := mc.MapScratchCtx(ctx, len(policies)*len(mixes), cfg.SeedOrDefault(), cfg.SimOptions(), sim.NewScratch,
		func(_ *rand.Rand, i int, s *sim.Scratch) float64 {
			c := sim.DefaultConfig(mixes[i%len(mixes)], sim.ARCC)
			c.InstructionsPerCore = instructions(cfg)
			c.UpgradedFraction = 1
			c.LLCPolicy = policies[i/len(mixes)]
			return sim.RunWith(c, s).IPCSum
		})
	if err != nil {
		return PolicyAblationResult{}, err
	}
	for pi := range policies {
		row := make([]float64, len(mixes))
		for mi := range mixes {
			row[mi] = ipcs[pi*len(mixes)+mi] / ipcs[mi] // vs the shared-recency run of the same mix
		}
		res.IPCRatio = append(res.IPCRatio, row)
	}
	return res, nil
}

// Fprint renders the LLC policy ablation.
func (r PolicyAblationResult) Fprint(w io.Writer) {
	fprintf(w, "Ablation: LLC replacement for upgraded pairs (IPC vs shared-recency, all pages upgraded, §4.2.3)\n")
	fprintf(w, "%-18s", "Policy")
	for _, m := range r.Mixes {
		fprintf(w, " %9s", m)
	}
	fprintf(w, "\n")
	for pi, p := range r.Policies {
		fprintf(w, "%-18s", p)
		for mi := range r.Mixes {
			fprintf(w, " %9.3f", r.IPCRatio[pi][mi])
		}
		fprintf(w, "\n")
	}
}

// PairingAblationResult compares the §4.2.4 sub-line pairing designs.
type PairingAblationResult struct {
	Mixes []string
	// FIFORatio[m] is PairFIFO IPC / PairPromote IPC with all pages
	// upgraded.
	FIFORatio []float64
}

// AblationPairing measures the cost of the simpler strict-FIFO pairing
// design relative to pointer promotion, under full upgrade pressure. The
// four (mix, pairing) runs fan out across the engine's workers.
func AblationPairing(ctx context.Context, cfg exhibit.Config) (PairingAblationResult, error) {
	var res PairingAblationResult
	pairings := []memctrl.Pairing{memctrl.PairFIFO, memctrl.PairPromote}
	mixes := []workload.Mix{workload.Mixes()[0], workload.Mixes()[9]}
	for _, mix := range mixes {
		res.Mixes = append(res.Mixes, mix.Name)
	}
	ipcs, err := mc.MapScratchCtx(ctx, len(pairings)*len(mixes), cfg.SeedOrDefault(), cfg.SimOptions(), sim.NewScratch,
		func(_ *rand.Rand, i int, s *sim.Scratch) float64 {
			c := sim.DefaultConfig(mixes[i%len(mixes)], sim.ARCC)
			c.InstructionsPerCore = instructions(cfg)
			c.UpgradedFraction = 1
			c.Pairing = pairings[i/len(mixes)]
			return sim.RunWith(c, s).IPCSum
		})
	if err != nil {
		return PairingAblationResult{}, err
	}
	for mi := range mixes {
		res.FIFORatio = append(res.FIFORatio, ipcs[mi]/ipcs[len(mixes)+mi])
	}
	return res, nil
}

// Fprint renders the pairing ablation.
func (r PairingAblationResult) Fprint(w io.Writer) {
	fprintf(w, "Ablation: sub-line pairing design (FIFO IPC / pointer-promotion IPC, all pages upgraded, §4.2.4)\n")
	for i, m := range r.Mixes {
		fprintf(w, "%-8s %6.3f\n", m, r.FIFORatio[i])
	}
}
