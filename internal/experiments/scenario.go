package experiments

import (
	"context"
	"fmt"
	"io"
	"math/rand"

	"arcc/internal/exhibit"
	"arcc/internal/mc"
	"arcc/internal/reliability"
	"arcc/internal/sim"
	"arcc/internal/workload"
)

// ScenarioResult holds everything a declarative scenario computes: the
// lifetime reliability sweep of the described channel, the closed-form
// SDC/DUE rates, and (when the scenario names workload mixes) a
// full-system simulator sweep at the scenario's upgraded fraction.
type ScenarioResult struct {
	Scenario exhibit.Scenario
	// FaultyFraction[y] is the average fraction of pages affected by
	// faults by the end of year y+1 (Fig 3.1 methodology).
	FaultyFraction []float64
	// Overhead[y] is the worst-case average access-cost overhead through
	// year y+1 under the scenario's upgrade factor (Fig 7.4 methodology).
	Overhead []float64
	// FaultyCI/OverheadCI are the per-year 95% confidence half-widths of
	// the series above, and FaultyESS/OverheadESS the effective sample
	// sizes of their Monte Carlos. Populated only when the scenario (or
	// the run config) requests acceleration or confidence intervals.
	FaultyCI    []float64 `json:",omitempty"`
	OverheadCI  []float64 `json:",omitempty"`
	FaultyESS   float64   `json:",omitempty"`
	OverheadESS float64   `json:",omitempty"`
	// OverheadQuantiles summarises the final year's per-channel overhead
	// distribution; only plain (unweighted) sampling has meaningful raw
	// quantiles, so accelerated runs leave it nil.
	OverheadQuantiles *QuantileSummary `json:",omitempty"`
	// SDCs per 1000 machine-years (closed form, Fig 6.1 methodology).
	SDCSCCDCD, SDCARCC float64
	// Expected DUE events per machine lifetime (§6.1 methodology).
	DUESCCDCD, DUEARCC, DUESparing float64
	// Simulator sweep labels, one per run: the scenario's mix names, plus
	// "tenants" for its multi-tenant interference run and "trace" for its
	// trace-replay run. Nil when the scenario requests no simulator runs.
	Mixes []string
	// IPC and PowerMW are the runs at the scenario's upgraded fraction;
	// the Vs ratios normalize to the fault-free run of the same mix.
	IPC, PowerMW             []float64
	IPCVsClean, PowerVsClean []float64
}

// QuantileSummary is the tail summary of a per-channel distribution,
// read off a bounded-memory quantile sketch.
type QuantileSummary struct {
	P50 float64 `json:"p50"`
	P90 float64 `json:"p90"`
	P99 float64 `json:"p99"`
}

// NewScenarioExhibit turns a declarative scenario into a runnable
// exhibit. It validates the parts the exhibit package cannot — the
// workload mix names — and returns an exhibit named after the scenario.
// The exhibit is returned, not registered: scenario names come from user
// files and must not collide with (or shadow) the paper's exhibits.
func NewScenarioExhibit(s exhibit.Scenario) (exhibit.Exhibit, error) {
	if err := s.Validate(); err != nil {
		return exhibit.Exhibit{}, err
	}
	if _, err := scenarioMixes(s); err != nil {
		return exhibit.Exhibit{}, err
	}
	return exhibit.Exhibit{
		Name:     s.Name,
		Title:    "Scenario: " + s.Name,
		Describe: s.Description,
		Run: func(ctx context.Context, cfg exhibit.Config) (*exhibit.Report, error) {
			r, err := RunScenario(ctx, cfg, s)
			if err != nil {
				return nil, err
			}
			return newReport(s.Name, "Scenario: "+s.Name, cfg, r, r.Tables(), r.Fprint), nil
		},
	}, nil
}

// scenarioMixes resolves the scenario's mix names against Table 7.3.
func scenarioMixes(s exhibit.Scenario) ([]workload.Mix, error) {
	all := workload.Mixes()
	out := make([]workload.Mix, 0, len(s.Mixes))
	for _, name := range s.Mixes {
		found := false
		for _, m := range all {
			if m.Name == name {
				out = append(out, m)
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("experiments: scenario %q: unknown mix %q (Table 7.3 has Mix1..Mix%d)",
				s.Name, name, len(all))
		}
	}
	return out, nil
}

// RunScenario computes a declarative scenario under cfg: the Monte Carlo
// channel count comes from cfg.Trials when set, otherwise the scenario's;
// seeds derive from cfg's root seed, so a scenario is bit-identical at
// any parallelism like every other exhibit.
func RunScenario(ctx context.Context, cfg exhibit.Config, s exhibit.Scenario) (ScenarioResult, error) {
	if err := s.Validate(); err != nil {
		return ScenarioResult{}, err
	}
	mixes, err := scenarioMixes(s)
	if err != nil {
		return ScenarioResult{}, err
	}
	rates := s.Rates()
	shape := s.Shape()
	factor := s.CostFactor()
	trials := s.Trials
	if cfg.Trials > 0 {
		trials = cfg.Trials
	} else if cfg.Quick && trials > 1_000 {
		trials = 1_000
	}
	// The run config's acceleration spec overrides the scenario's; either
	// source of "ci" turns interval reporting on.
	accelSpec := s.Accel
	if cfg.Accel != "" {
		accelSpec = cfg.Accel
	}
	accel, err := reliability.ParseAccel(accelSpec)
	if err != nil {
		return ScenarioResult{}, err
	}
	wantStats := cfg.CI || s.CI || accel.Mode != reliability.AccelNone
	// The report embeds the *effective* parameters — what actually ran —
	// so a serialized scenario reproduces the numbers it carries.
	s.Trials = trials
	s.Accel = accelSpec
	s.CI = s.CI || cfg.CI
	res := ScenarioResult{Scenario: s}

	ov := reliability.WorstCaseOverheads(shape, factor)
	burst := s.BurstOrZero()
	if wantStats {
		// The streaming-statistics path: same samplers, same per-year
		// series math, weighted by each trial's likelihood ratio. With
		// accel "none" the means are bit-identical to the plain path.
		fs, err := reliability.FaultyPageFractionStatsBurstCtx(ctx,
			mc.DeriveSeed(cfg.SeedOrDefault(), tagScenario), cfg.MCOptions(),
			rates, burst, shape, s.Ranks, s.DevicesPerRank, s.Years, trials, accel)
		if err != nil {
			return ScenarioResult{}, err
		}
		os, err := reliability.LifetimeOverheadStatsBurstCtx(ctx,
			mc.DeriveSeed(cfg.SeedOrDefault(), tagScenario+1), cfg.MCOptions(),
			rates, burst, s.Ranks, s.DevicesPerRank, s.Years, trials, ov, factor-1, accel)
		if err != nil {
			return ScenarioResult{}, err
		}
		res.FaultyFraction, res.FaultyCI, res.FaultyESS = fs.Mean, fs.CI95, fs.ESS
		res.Overhead, res.OverheadCI, res.OverheadESS = os.Mean, os.CI95, os.ESS
		if sk := os.FinalSketch; sk != nil && sk.N > 0 {
			res.OverheadQuantiles = &QuantileSummary{
				P50: sk.Quantile(0.50), P90: sk.Quantile(0.90), P99: sk.Quantile(0.99),
			}
		}
	} else {
		res.FaultyFraction, err = reliability.FaultyPageFractionBurstCtx(ctx,
			mc.DeriveSeed(cfg.SeedOrDefault(), tagScenario), cfg.MCOptions(),
			rates, burst, shape, s.Ranks, s.DevicesPerRank, s.Years, trials)
		if err != nil {
			return ScenarioResult{}, err
		}
		res.Overhead, err = reliability.LifetimeOverheadBurstCtx(ctx,
			mc.DeriveSeed(cfg.SeedOrDefault(), tagScenario+1), cfg.MCOptions(),
			rates, burst, s.Ranks, s.DevicesPerRank, s.Years, trials, ov, factor-1)
		if err != nil {
			return ScenarioResult{}, err
		}
	}

	p := reliability.Params{
		Rates:           rates,
		RanksPerChannel: s.Ranks,
		DevicesPerRank:  s.DevicesPerRank,
		Geom:            reliability.RankGeom{Devices: s.DevicesPerRank, Banks: s.BanksPerDevice, Rows: 16384, Cols: 64},
		ScrubHours:      s.ScrubHours,
		LifeYears:       float64(s.Years),
	}
	res.SDCSCCDCD = reliability.SDCsPer1000MachineYears(reliability.SCCDCDExpectedSDCs(p), p.LifeYears)
	res.SDCARCC = reliability.SDCsPer1000MachineYears(reliability.ARCCDEDExpectedSDCs(p), p.LifeYears)
	res.DUESCCDCD = reliability.SCCDCDExpectedDUEs(p)
	res.DUEARCC = reliability.ARCCExpectedDUEs(p)
	res.DUESparing = reliability.SparingExpectedDUEs(p)

	// The simulator sweep is a labeled run list: one run per named mix,
	// plus a "tenants" run when the scenario declares a multi-tenant
	// interference mix and a "trace" run when it replays a trace file.
	// Every run shares the scenario's memory-generation, shared-LLC, and
	// LLC-capacity axes.
	type simRun struct {
		label   string
		mix     workload.Mix
		tenants []workload.Tenant
		trace   *workload.TraceSource
	}
	runs := make([]simRun, 0, len(mixes)+2)
	for _, m := range mixes {
		runs = append(runs, simRun{label: m.Name, mix: m})
	}
	if len(s.Tenants) > 0 {
		// The mix slot is a placeholder; Tenants overrides its benchmarks.
		runs = append(runs, simRun{label: "tenants", mix: workload.Mixes()[0], tenants: s.Tenants})
	}
	if s.Trace != "" {
		src, err := workload.LoadTraceFile(s.Trace)
		if err != nil {
			return ScenarioResult{}, fmt.Errorf("experiments: scenario %q: %w", s.Name, err)
		}
		runs = append(runs, simRun{label: "trace", mix: workload.Mixes()[0], trace: src})
	}
	if len(runs) == 0 {
		return res, nil
	}
	system := sim.ARCC
	if s.System == "baseline" {
		system = sim.Baseline
	}
	tech := sim.Tech{Generation: s.Generation(), Width: s.Width}
	instr := s.Instructions
	if instr == 0 {
		instr = instructions(cfg)
		s.Instructions = instr
		res.Scenario = s
	}
	// Per run: a fault-free reference and the scenario run, fanned out
	// across the engine's workers (one simulator run per shard).
	// Exported fields: the pair must gob-encode for shard checkpointing.
	type pair struct{ Clean, Faulted sim.Result }
	pairs, err := mc.MapScratchCtx(ctx, len(runs), cfg.SeedOrDefault(), cfg.SimOptions(), sim.NewScratch,
		func(_ *rand.Rand, i int, scratch *sim.Scratch) pair {
			run := func(upgraded float64) sim.Result {
				c := sim.DefaultConfig(runs[i].mix, system)
				c.InstructionsPerCore = instr
				c.UpgradedFraction = upgraded
				c.Seed = cfg.SeedOrDefault()
				c.Tech = tech
				c.CPUCyclesPerDRAMCycle = tech.CPR()
				c.SharedLLC = s.SharedLLC
				if s.LLCBytes > 0 {
					c.LLCBytes = s.LLCBytes
				}
				c.Tenants = runs[i].tenants
				if runs[i].trace != nil {
					for core := range c.Sources {
						c.Sources[core] = runs[i].trace.Clone()
					}
				}
				return sim.RunWith(c, scratch)
			}
			return pair{Clean: run(0), Faulted: run(s.UpgradedFraction)}
		})
	if err != nil {
		return ScenarioResult{}, err
	}
	for i, r := range runs {
		res.Mixes = append(res.Mixes, r.label)
		res.IPC = append(res.IPC, pairs[i].Faulted.IPCSum)
		res.PowerMW = append(res.PowerMW, pairs[i].Faulted.PowerMW)
		res.IPCVsClean = append(res.IPCVsClean, pairs[i].Faulted.IPCSum/pairs[i].Clean.IPCSum)
		res.PowerVsClean = append(res.PowerVsClean, pairs[i].Faulted.PowerMW/pairs[i].Clean.PowerMW)
	}
	return res, nil
}

// Fprint renders the scenario report.
func (r ScenarioResult) Fprint(w io.Writer) {
	s := r.Scenario
	fprintf(w, "Scenario: %s\n", s.Name)
	if s.Description != "" {
		fprintf(w, "%s\n", s.Description)
	}
	fprintf(w, "channel: %d x %d-device ranks, %d banks/device, %gx field-study rates, %s upgrade cost %.0fx\n",
		s.Ranks, s.DevicesPerRank, s.BanksPerDevice, s.RateFactor, s.Scheme, s.CostFactor())
	if r.FaultyCI != nil {
		fprintf(w, "accel: %s, effective samples: faulty %.0f, overhead %.0f (of %d trials)\n",
			s.Accel, r.FaultyESS, r.OverheadESS, s.Trials)
		fprintf(w, "\n%-6s %-26s %-26s\n", "Year", "faulty pages (95% CI)", "worst overhead (95% CI)")
		for y := range r.FaultyFraction {
			fprintf(w, "%-6d %12.4f%% ±%8.4f%% %12.4f%% ±%8.4f%%\n", y+1,
				r.FaultyFraction[y]*100, r.FaultyCI[y]*100, r.Overhead[y]*100, r.OverheadCI[y]*100)
		}
		if q := r.OverheadQuantiles; q != nil {
			fprintf(w, "final-year overhead quantiles: p50 %.4f%%, p90 %.4f%%, p99 %.4f%%\n",
				q.P50*100, q.P90*100, q.P99*100)
		}
	} else {
		fprintf(w, "\n%-6s %-16s %-16s\n", "Year", "faulty pages", "worst overhead")
		for y := range r.FaultyFraction {
			fprintf(w, "%-6d %14.4f%% %14.4f%%\n", y+1, r.FaultyFraction[y]*100, r.Overhead[y]*100)
		}
	}
	fprintf(w, "\nSDCs per 1000 machine-years: SCCDCD DED %.3e, ARCC DED %.3e\n", r.SDCSCCDCD, r.SDCARCC)
	fprintf(w, "expected DUEs per lifetime:  SCCDCD %.3e, SCCDCD+ARCC %.3e, chip sparing %.3e\n",
		r.DUESCCDCD, r.DUEARCC, r.DUESparing)
	if len(r.Mixes) > 0 {
		fprintf(w, "\nsimulator sweep (%s, %.1f%% of pages upgraded):\n", s.System, s.UpgradedFraction*100)
		fprintf(w, "%-8s %-10s %-12s %-14s %-14s\n", "Mix", "IPC", "Power (mW)", "IPC vs clean", "power vs clean")
		for i, m := range r.Mixes {
			fprintf(w, "%-8s %-10.3f %-12.1f %-14.3f %-14.3f\n",
				m, r.IPC[i], r.PowerMW[i], r.IPCVsClean[i], r.PowerVsClean[i])
		}
	}
}

// Tables projects a scenario result for the CSV renderer.
func (r ScenarioResult) Tables() []exhibit.Table {
	lifetime := exhibit.Table{Name: "lifetime",
		Columns: []string{"year", "faulty_fraction", "worst_overhead"}}
	if r.FaultyCI != nil {
		lifetime.Columns = append(lifetime.Columns, "faulty_ci95", "overhead_ci95")
	}
	for y := range r.FaultyFraction {
		row := exhibit.Row(exhibit.Itoa(y+1),
			exhibit.Ftoa(r.FaultyFraction[y]), exhibit.Ftoa(r.Overhead[y]))
		if r.FaultyCI != nil {
			row = append(row, exhibit.Ftoa(r.FaultyCI[y]), exhibit.Ftoa(r.OverheadCI[y]))
		}
		lifetime.Rows = append(lifetime.Rows, row)
	}
	rates := exhibit.Table{Name: "rates",
		Columns: []string{"sdc_sccdcd", "sdc_arcc", "due_sccdcd", "due_arcc", "due_sparing"},
		Rows: [][]string{exhibit.Row(exhibit.Ftoa(r.SDCSCCDCD), exhibit.Ftoa(r.SDCARCC),
			exhibit.Ftoa(r.DUESCCDCD), exhibit.Ftoa(r.DUEARCC), exhibit.Ftoa(r.DUESparing))}}
	out := []exhibit.Table{lifetime, rates}
	if r.FaultyCI != nil {
		mcStats := exhibit.Table{Name: "mc_stats",
			Columns: []string{"accel", "faulty_ess", "overhead_ess"},
			Rows: [][]string{exhibit.Row(r.Scenario.Accel,
				exhibit.Ftoa(r.FaultyESS), exhibit.Ftoa(r.OverheadESS))}}
		if q := r.OverheadQuantiles; q != nil {
			mcStats.Columns = append(mcStats.Columns, "overhead_p50", "overhead_p90", "overhead_p99")
			mcStats.Rows[0] = append(mcStats.Rows[0], exhibit.Ftoa(q.P50), exhibit.Ftoa(q.P90), exhibit.Ftoa(q.P99))
		}
		out = append(out, mcStats)
	}
	if len(r.Mixes) > 0 {
		sweep := exhibit.Table{Name: "sim_sweep",
			Columns: []string{"mix", "ipc", "power_mw", "ipc_vs_clean", "power_vs_clean"}}
		for i, m := range r.Mixes {
			sweep.Rows = append(sweep.Rows, exhibit.Row(m, exhibit.Ftoa(r.IPC[i]),
				exhibit.Ftoa(r.PowerMW[i]), exhibit.Ftoa(r.IPCVsClean[i]), exhibit.Ftoa(r.PowerVsClean[i])))
		}
		out = append(out, sweep)
	}
	return out
}
