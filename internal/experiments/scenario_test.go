package experiments

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"arcc/internal/exhibit"
	"arcc/internal/faultmodel"
	"arcc/internal/mc"
	"arcc/internal/workload"
)

func testScenario() exhibit.Scenario {
	s := exhibit.DefaultScenario()
	s.Name = "test-sweep"
	s.Description = "a sweep the paper never shipped"
	s.RateFactor = 3
	s.Ranks = 3
	s.DevicesPerRank = 12
	s.Years = 5
	s.Trials = 400
	s.Scheme = "lotecc"
	s.Mixes = []string{"Mix1", "Mix7"}
	s.UpgradedFraction = 0.25
	return s
}

func TestRunScenario(t *testing.T) {
	cfg := exhibit.NewConfig(exhibit.WithQuick(true), exhibit.WithSeed(1))
	r, err := RunScenario(context.Background(), cfg, testScenario())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.FaultyFraction) != 5 || len(r.Overhead) != 5 {
		t.Fatalf("series length wrong: %d/%d", len(r.FaultyFraction), len(r.Overhead))
	}
	for y := 1; y < 5; y++ {
		if r.FaultyFraction[y] < r.FaultyFraction[y-1] {
			t.Fatal("faulty fraction shrank with age")
		}
	}
	if r.FaultyFraction[4] <= 0 || r.Overhead[4] <= 0 {
		t.Fatal("3x-rate scenario produced no faults at all")
	}
	if len(r.Mixes) != 2 || len(r.IPC) != 2 || len(r.IPCVsClean) != 2 {
		t.Fatalf("sim sweep shape wrong: %+v", r.Mixes)
	}
	for i := range r.Mixes {
		if r.IPC[i] <= 0 || r.PowerMW[i] <= 0 {
			t.Fatalf("mix %s: non-positive sim results", r.Mixes[i])
		}
		// A quarter of pages upgraded costs some power, bounded by the
		// all-upgraded worst case.
		if r.PowerVsClean[i] < 0.97 || r.PowerVsClean[i] > 1.30 {
			t.Errorf("mix %s: power ratio %v outside [0.97, 1.30]", r.Mixes[i], r.PowerVsClean[i])
		}
	}

	var buf bytes.Buffer
	r.Fprint(&buf)
	out := buf.String()
	for _, want := range []string{"Scenario: test-sweep", "faulty pages", "simulator sweep", "Mix7"} {
		if !strings.Contains(out, want) {
			t.Errorf("scenario rendering missing %q", want)
		}
	}
	if n := len(r.Tables()); n != 3 {
		t.Fatalf("scenario with sim sweep must project 3 tables, got %d", n)
	}
}

// TestRunScenarioStats exercises the acceleration/CI threading: plain CI
// runs keep the legacy means bit for bit while adding intervals, ESS,
// and tail quantiles; accelerated runs agree within their intervals and
// carry no raw-quantile summary.
func TestRunScenarioStats(t *testing.T) {
	base := testScenario()
	base.Mixes = nil // lifetime sweep only

	plainCfg := exhibit.NewConfig(exhibit.WithSeed(1))
	plain, err := RunScenario(context.Background(), plainCfg, base)
	if err != nil {
		t.Fatal(err)
	}
	if plain.FaultyCI != nil || plain.OverheadQuantiles != nil {
		t.Fatal("plain run carries stats it was not asked for")
	}

	ciCfg := exhibit.NewConfig(exhibit.WithSeed(1), exhibit.WithCI(true))
	withCI, err := RunScenario(context.Background(), ciCfg, base)
	if err != nil {
		t.Fatal(err)
	}
	for y := range plain.FaultyFraction {
		if withCI.FaultyFraction[y] != plain.FaultyFraction[y] || withCI.Overhead[y] != plain.Overhead[y] {
			t.Fatalf("year %d: CI reporting changed the means (%v vs %v, %v vs %v)",
				y+1, withCI.FaultyFraction[y], plain.FaultyFraction[y], withCI.Overhead[y], plain.Overhead[y])
		}
	}
	if len(withCI.FaultyCI) != base.Years || len(withCI.OverheadCI) != base.Years {
		t.Fatalf("CI series mis-sized: %d/%d", len(withCI.FaultyCI), len(withCI.OverheadCI))
	}
	if withCI.OverheadESS != float64(base.Trials) {
		t.Fatalf("unit-weight ESS %v, want %d", withCI.OverheadESS, base.Trials)
	}
	if withCI.OverheadQuantiles == nil {
		t.Fatal("plain-sampling CI run should summarise final-year quantiles")
	}
	if !withCI.Scenario.CI || withCI.Scenario.Accel != "" {
		t.Fatalf("effective scenario wrong: %+v", withCI.Scenario)
	}

	accelCfg := exhibit.NewConfig(exhibit.WithSeed(1), exhibit.WithAccel("conditional"))
	accel, err := RunScenario(context.Background(), accelCfg, base)
	if err != nil {
		t.Fatal(err)
	}
	if accel.Scenario.Accel != "conditional" {
		t.Fatalf("effective accel %q", accel.Scenario.Accel)
	}
	if accel.OverheadQuantiles != nil {
		t.Fatal("weighted run must not report raw quantiles")
	}
	for y := range accel.Overhead {
		diff := accel.Overhead[y] - plain.Overhead[y]
		if diff < 0 {
			diff = -diff
		}
		tol := 4 * (accel.OverheadCI[y] + withCI.OverheadCI[y])
		if diff > tol && diff > 1e-12 {
			t.Fatalf("year %d: accelerated overhead %v vs plain %v (tol %v)",
				y+1, accel.Overhead[y], plain.Overhead[y], tol)
		}
	}

	var buf bytes.Buffer
	withCI.Fprint(&buf)
	out := buf.String()
	for _, want := range []string{"95% CI", "effective samples", "quantiles"} {
		if !strings.Contains(out, want) {
			t.Errorf("CI rendering missing %q:\n%s", want, out)
		}
	}
	tables := withCI.Tables()
	if len(tables) != 3 { // lifetime, rates, mc_stats
		t.Fatalf("CI run should project 3 tables, got %d", len(tables))
	}
	if tables[0].Columns[len(tables[0].Columns)-1] != "overhead_ci95" {
		t.Fatalf("lifetime table missing CI columns: %v", tables[0].Columns)
	}
}

// TestRunScenarioNewAxes drives every PR-10 scenario axis at once: DDR5
// geometry, correlated bursts, a multi-tenant mix on a shared LLC, and a
// trace-replay row — all declared on the Scenario, no code.
func TestRunScenarioNewAxes(t *testing.T) {
	trace := filepath.Join(t.TempDir(), "core0.trc")
	f, err := os.Create(trace)
	if err != nil {
		t.Fatal(err)
	}
	stream := workload.ByName("mesa").NewStream(7, 0)
	if _, err := workload.Record(f, stream, 2000); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	s := exhibit.DefaultScenario()
	s.Name = "axes-sweep"
	s.Description = "every new axis at once"
	s.RateFactor = 3
	s.Trials = 400
	s.Mixes = []string{"Mix1"}
	s.DRAM = "ddr5"
	s.Width = 8
	s.Burst = &faultmodel.Burst{RowProb: 0.5, RowMean: 4, RowMax: 16}
	s.Tenants = []workload.Tenant{{Benchmark: "mcf2006", FootprintLines: 12288}}
	s.SharedLLC = true
	s.LLCBytes = 1 << 21
	s.Trace = trace

	cfg := exhibit.NewConfig(exhibit.WithQuick(true), exhibit.WithSeed(1))
	r, err := RunScenario(context.Background(), cfg, s)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"Mix1", "tenants", "trace"}
	if len(r.Mixes) != len(want) {
		t.Fatalf("sim sweep rows %v, want %v", r.Mixes, want)
	}
	for i, label := range want {
		if r.Mixes[i] != label {
			t.Fatalf("sim sweep rows %v, want %v", r.Mixes, want)
		}
		if r.IPC[i] <= 0 || r.PowerMW[i] <= 0 {
			t.Fatalf("row %s: non-positive sim results", label)
		}
	}

	// The burst axis must raise the faulty-page fraction over the same
	// scenario without it (same seed, same trials).
	noBurst := s
	noBurst.Burst = nil
	noBurst.Mixes = nil
	noBurst.Tenants = nil
	noBurst.Trace = ""
	plain, err := RunScenario(context.Background(), cfg, noBurst)
	if err != nil {
		t.Fatal(err)
	}
	final := len(plain.FaultyFraction) - 1
	if r.FaultyFraction[final] <= plain.FaultyFraction[final] {
		t.Fatalf("burst axis did not raise faulty fraction: %v <= %v",
			r.FaultyFraction[final], plain.FaultyFraction[final])
	}

	// And the whole thing stays bit-identical across parallelism.
	render := func(parallel int) string {
		cfg := exhibit.NewConfig(exhibit.WithQuick(true), exhibit.WithParallel(parallel))
		r, err := RunScenario(context.Background(), cfg, s)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		r.Fprint(&buf)
		return buf.String()
	}
	if serial, par := render(1), render(4); serial != par {
		t.Errorf("new-axis scenario drifted at parallelism 4:\n%s\nvs serial:\n%s", par, serial)
	}

	var buf bytes.Buffer
	r.Fprint(&buf)
	out := buf.String()
	for _, wantStr := range []string{"tenants", "trace"} {
		if !strings.Contains(out, wantStr) {
			t.Errorf("rendering missing %q:\n%s", wantStr, out)
		}
	}
}

// TestScenarioDeterministicAtAnyParallelism extends the engine contract to
// user-defined scenarios.
func TestScenarioDeterministicAtAnyParallelism(t *testing.T) {
	render := func(parallel int) string {
		cfg := exhibit.NewConfig(exhibit.WithQuick(true), exhibit.WithParallel(parallel))
		r, err := RunScenario(context.Background(), cfg, testScenario())
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		r.Fprint(&buf)
		return buf.String()
	}
	want := render(1)
	if got := render(4); got != want {
		t.Errorf("scenario drifted at parallelism 4:\n%s\nvs serial:\n%s", got, want)
	}
}

func TestNewScenarioExhibit(t *testing.T) {
	ex, err := NewScenarioExhibit(testScenario())
	if err != nil {
		t.Fatal(err)
	}
	if ex.Name != "test-sweep" {
		t.Fatalf("exhibit name %q", ex.Name)
	}
	report, err := ex.Run(context.Background(), quick())
	if err != nil {
		t.Fatal(err)
	}
	if report.Exhibit != "test-sweep" || report.Data == nil || report.Text == nil {
		t.Fatalf("scenario report incomplete: %+v", report)
	}

	bad := testScenario()
	bad.Mixes = []string{"Mix99"}
	if _, err := NewScenarioExhibit(bad); err == nil {
		t.Fatal("unknown mix accepted")
	}
}

// TestExhibitCancellation cancels the context before running MC-backed
// exhibits and asserts the sentinel surfaces through the exhibit API.
func TestExhibitCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, name := range []string{"f3.1", "f7.1", "f7.4", "ablation-llc"} {
		e, ok := exhibit.Lookup(name)
		if !ok {
			t.Fatalf("exhibit %q not registered", name)
		}
		if _, err := e.Run(ctx, quick()); !errors.Is(err, mc.ErrCanceled) {
			t.Errorf("%s: error = %v, want mc.ErrCanceled", name, err)
		}
	}
	if _, err := RunScenario(ctx, quick(), testScenario()); !errors.Is(err, mc.ErrCanceled) {
		t.Errorf("scenario: error = %v, want mc.ErrCanceled", err)
	}
}
