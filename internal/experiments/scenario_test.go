package experiments

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"testing"

	"arcc/internal/exhibit"
	"arcc/internal/mc"
)

func testScenario() exhibit.Scenario {
	s := exhibit.DefaultScenario()
	s.Name = "test-sweep"
	s.Description = "a sweep the paper never shipped"
	s.RateFactor = 3
	s.Ranks = 3
	s.DevicesPerRank = 12
	s.Years = 5
	s.Trials = 400
	s.Scheme = "lotecc"
	s.Mixes = []string{"Mix1", "Mix7"}
	s.UpgradedFraction = 0.25
	return s
}

func TestRunScenario(t *testing.T) {
	cfg := exhibit.NewConfig(exhibit.WithQuick(true), exhibit.WithSeed(1))
	r, err := RunScenario(context.Background(), cfg, testScenario())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.FaultyFraction) != 5 || len(r.Overhead) != 5 {
		t.Fatalf("series length wrong: %d/%d", len(r.FaultyFraction), len(r.Overhead))
	}
	for y := 1; y < 5; y++ {
		if r.FaultyFraction[y] < r.FaultyFraction[y-1] {
			t.Fatal("faulty fraction shrank with age")
		}
	}
	if r.FaultyFraction[4] <= 0 || r.Overhead[4] <= 0 {
		t.Fatal("3x-rate scenario produced no faults at all")
	}
	if len(r.Mixes) != 2 || len(r.IPC) != 2 || len(r.IPCVsClean) != 2 {
		t.Fatalf("sim sweep shape wrong: %+v", r.Mixes)
	}
	for i := range r.Mixes {
		if r.IPC[i] <= 0 || r.PowerMW[i] <= 0 {
			t.Fatalf("mix %s: non-positive sim results", r.Mixes[i])
		}
		// A quarter of pages upgraded costs some power, bounded by the
		// all-upgraded worst case.
		if r.PowerVsClean[i] < 0.97 || r.PowerVsClean[i] > 1.30 {
			t.Errorf("mix %s: power ratio %v outside [0.97, 1.30]", r.Mixes[i], r.PowerVsClean[i])
		}
	}

	var buf bytes.Buffer
	r.Fprint(&buf)
	out := buf.String()
	for _, want := range []string{"Scenario: test-sweep", "faulty pages", "simulator sweep", "Mix7"} {
		if !strings.Contains(out, want) {
			t.Errorf("scenario rendering missing %q", want)
		}
	}
	if n := len(r.Tables()); n != 3 {
		t.Fatalf("scenario with sim sweep must project 3 tables, got %d", n)
	}
}

// TestScenarioDeterministicAtAnyParallelism extends the engine contract to
// user-defined scenarios.
func TestScenarioDeterministicAtAnyParallelism(t *testing.T) {
	render := func(parallel int) string {
		cfg := exhibit.NewConfig(exhibit.WithQuick(true), exhibit.WithParallel(parallel))
		r, err := RunScenario(context.Background(), cfg, testScenario())
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		r.Fprint(&buf)
		return buf.String()
	}
	want := render(1)
	if got := render(4); got != want {
		t.Errorf("scenario drifted at parallelism 4:\n%s\nvs serial:\n%s", got, want)
	}
}

func TestNewScenarioExhibit(t *testing.T) {
	ex, err := NewScenarioExhibit(testScenario())
	if err != nil {
		t.Fatal(err)
	}
	if ex.Name != "test-sweep" {
		t.Fatalf("exhibit name %q", ex.Name)
	}
	report, err := ex.Run(context.Background(), quick())
	if err != nil {
		t.Fatal(err)
	}
	if report.Exhibit != "test-sweep" || report.Data == nil || report.Text == nil {
		t.Fatalf("scenario report incomplete: %+v", report)
	}

	bad := testScenario()
	bad.Mixes = []string{"Mix99"}
	if _, err := NewScenarioExhibit(bad); err == nil {
		t.Fatal("unknown mix accepted")
	}
}

// TestExhibitCancellation cancels the context before running MC-backed
// exhibits and asserts the sentinel surfaces through the exhibit API.
func TestExhibitCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, name := range []string{"f3.1", "f7.1", "f7.4", "ablation-llc"} {
		e, ok := exhibit.Lookup(name)
		if !ok {
			t.Fatalf("exhibit %q not registered", name)
		}
		if _, err := e.Run(ctx, quick()); !errors.Is(err, mc.ErrCanceled) {
			t.Errorf("%s: error = %v, want mc.ErrCanceled", name, err)
		}
	}
	if _, err := RunScenario(ctx, quick(), testScenario()); !errors.Is(err, mc.ErrCanceled) {
		t.Errorf("scenario: error = %v, want mc.ErrCanceled", err)
	}
}
