package experiments

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"arcc/internal/exhibit"
)

func quick() exhibit.Config { return exhibit.NewConfig(exhibit.WithQuick(true)) }

// runQuick runs an MC-backed exhibit function under a background context
// with the quick profile, failing the test on error.
func runQuick[T any](t *testing.T, f func(context.Context, exhibit.Config) (T, error)) T {
	t.Helper()
	r, err := f(context.Background(), quick())
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestTables(t *testing.T) {
	rows := Table71()
	if len(rows) != 2 || rows[0].RankSize != 36 || rows[1].RankSize != 18 {
		t.Fatalf("Table 7.1 wrong: %+v", rows)
	}
	// Equal device budget: chan*ranks*rankSize must match.
	if rows[0].Channels*rows[0].Ranks*rows[0].RankSize != rows[1].Channels*rows[1].Ranks*rows[1].RankSize {
		t.Fatal("configurations must use the same total device count")
	}
	if len(Table72()) != 12 {
		t.Fatalf("Table 7.2 has %d rows", len(Table72()))
	}
	if len(Table73()) != 12 {
		t.Fatalf("Table 7.3 has %d mixes", len(Table73()))
	}
	t74 := Table74()
	if len(t74) != 4 || t74[0].Fraction != 1.0 || t74[1].Fraction != 0.5 ||
		t74[2].Fraction != 1.0/16 || t74[3].Fraction != 1.0/32 {
		t.Fatalf("Table 7.4 wrong: %+v", t74)
	}

	var buf bytes.Buffer
	FprintTable71(&buf)
	FprintTable72(&buf)
	FprintTable73(&buf)
	FprintTable74(&buf)
	out := buf.String()
	for _, want := range []string{"Table 7.1", "Table 7.2", "Table 7.3", "Table 7.4", "ARCC", "Mix12", "Subbank"} {
		if !strings.Contains(out, want) {
			t.Errorf("printed tables missing %q", want)
		}
	}
}

func TestFig31(t *testing.T) {
	r := runQuick(t, Fig31)
	if len(r.Fraction) != 3 || len(r.Fraction[0]) != 7 {
		t.Fatalf("Fig 3.1 shape wrong")
	}
	// Higher rate factors give strictly larger year-7 fractions.
	if !(r.Fraction[0][6] < r.Fraction[1][6] && r.Fraction[1][6] < r.Fraction[2][6]) {
		t.Fatalf("rate factors not ordered: %v %v %v", r.Fraction[0][6], r.Fraction[1][6], r.Fraction[2][6])
	}
	// "Just a few percent" at 1x through year 7.
	if r.Fraction[0][6] > 0.10 {
		t.Fatalf("1x year-7 fraction %v too large", r.Fraction[0][6])
	}
	var buf bytes.Buffer
	r.Fprint(&buf)
	if !strings.Contains(buf.String(), "Figure 3.1") {
		t.Fatal("printer broken")
	}
}

func TestFig61(t *testing.T) {
	r := Fig61(quick())
	for fi := range r.Factors {
		for li := range r.Lifespans {
			if r.ARCC[fi][li] <= r.SCCDCD[fi][li] {
				t.Fatalf("ARCC DED must have a (slightly) higher SDC rate than SCCDCD")
			}
			if r.ARCC[fi][li] > 0.1 {
				t.Fatalf("ARCC SDC rate %v per 1000 machine-years not insignificant", r.ARCC[fi][li])
			}
		}
	}
	// Quadratic rate scaling: factor 4 vs 1 is 16x for the two-fault race.
	if ratio := r.ARCC[2][0] / r.ARCC[0][0]; ratio < 15.9 || ratio > 16.1 {
		t.Fatalf("ARCC DED 4x/1x ratio %v, want 16", ratio)
	}
	var buf bytes.Buffer
	r.Fprint(&buf)
	if !strings.Contains(buf.String(), "Figure 6.1") {
		t.Fatal("printer broken")
	}
}

func TestFig71(t *testing.T) {
	r := runQuick(t, Fig71)
	if len(r.Mixes) != 12 {
		t.Fatalf("%d mixes", len(r.Mixes))
	}
	// The headline numbers: ~36.7% power reduction, ~+5.9% IPC. Quick
	// runs are noisy; accept generous bands that still pin the shape.
	if r.AvgPowerReduction < 0.25 || r.AvgPowerReduction > 0.50 {
		t.Fatalf("avg power reduction %.1f%%, want 25-50%% (paper: 36.7%%)", r.AvgPowerReduction*100)
	}
	if r.AvgIPCGain < 0.0 || r.AvgIPCGain > 0.20 {
		t.Fatalf("avg IPC gain %.1f%%, want 0-20%% (paper: 5.9%%)", r.AvgIPCGain*100)
	}
	// Power benefits are "relatively uniform across workloads".
	for i, red := range r.PowerReduction {
		if red < 0.15 || red > 0.55 {
			t.Errorf("mix %s power reduction %.1f%% outside uniform band", r.Mixes[i], red*100)
		}
	}
	var buf bytes.Buffer
	r.Fprint(&buf)
	if !strings.Contains(buf.String(), "AVG") {
		t.Fatal("printer broken")
	}
}

func TestFig72(t *testing.T) {
	r := runQuick(t, Fig72)
	if len(r.Scenarios) != 4 {
		t.Fatalf("%d scenarios", len(r.Scenarios))
	}
	// Power under faults: >= 1, bounded by worst case, ordered by span.
	for s := range r.Scenarios {
		for m := range r.Mixes {
			v := r.Normalized[s][m]
			if v < 0.97 {
				t.Errorf("%s/%s: power ratio %v below 1", r.Scenarios[s].Name, r.Mixes[m], v)
			}
			if v > r.WorstCase[s]+0.05 {
				t.Errorf("%s/%s: power ratio %v exceeds worst case %v", r.Scenarios[s].Name, r.Mixes[m], v, r.WorstCase[s])
			}
		}
	}
	if !(r.Avg[0] > r.Avg[1] && r.Avg[1] > r.Avg[2] && r.Avg[2] > r.Avg[3]) {
		t.Fatalf("power overhead not ordered lane > device > subbank > column: %v", r.Avg)
	}
}

func TestFig73(t *testing.T) {
	r := runQuick(t, Fig73)
	var sawGain, sawLoss bool
	for m := range r.Mixes {
		v := r.Normalized[0][m] // lane fault: all pages upgraded
		if v > 1.0 {
			sawGain = true
		}
		if v < 1.0 {
			sawLoss = true
		}
		if v < 0.5 {
			t.Errorf("%s: IPC ratio %v below the 50%% worst-case bound", r.Mixes[m], v)
		}
	}
	// Fig 7.3's signature: some mixes gain (prefetch), some lose.
	if !sawGain || !sawLoss {
		t.Fatalf("expected both gainers and losers under a lane fault (gain=%v loss=%v)", sawGain, sawLoss)
	}
}

func TestFig74And75(t *testing.T) {
	for _, tc := range []struct {
		name string
		run  func(context.Context, exhibit.Config) (LifetimeResult, error)
	}{{"Fig74", Fig74}, {"Fig75", Fig75}} {
		r := runQuick(t, tc.run)
		if len(r.Measured) != 3 || len(r.WorstCase) != 3 {
			t.Fatalf("%s: wrong factor count", tc.name)
		}
		for fi := range r.Factors {
			for y := 0; y < r.Years; y++ {
				meas, worst := r.Measured[fi][y], r.WorstCase[fi][y]
				if meas < -1e-9 || worst < -1e-9 {
					t.Fatalf("%s: negative overhead", tc.name)
				}
				if meas > 0.30 || worst > 0.30 {
					t.Fatalf("%s: overhead beyond 30%% (%v/%v); 'the degradation is small'", tc.name, meas, worst)
				}
			}
			// Growing with years.
			if r.WorstCase[fi][6] < r.WorstCase[fi][0] {
				t.Fatalf("%s: worst-case overhead shrank with age", tc.name)
			}
		}
		// The paper's takeaway: power benefit >= 30% even at year 7, 4x
		// rates. Overhead at 4x year 7 must stay well under the ~37%
		// fault-free benefit.
		if r.WorstCase[2][6] > 0.12 {
			t.Fatalf("%s: 4x year-7 worst-case overhead %v too large", tc.name, r.WorstCase[2][6])
		}
		var buf bytes.Buffer
		r.Fprint(&buf)
		if !strings.Contains(buf.String(), "Figure 7.") {
			t.Fatal("printer broken")
		}
	}
}

func TestFig76(t *testing.T) {
	r := runQuick(t, Fig76)
	if r.Measured != nil {
		t.Fatal("Fig 7.6 reports worst case only")
	}
	// Paper: ~1.6% average at 1x over 7 years; <= ~6.3% at 4x.
	at1, at4 := r.WorstCase[0][6], r.WorstCase[2][6]
	if at1 <= 0 || at1 > 0.05 {
		t.Fatalf("1x overhead %v, want around 1.6%%", at1)
	}
	if at4 <= at1 || at4 > 0.15 {
		t.Fatalf("4x overhead %v, want larger but bounded (~6.3%%)", at4)
	}
	var buf bytes.Buffer
	r.Fprint(&buf)
	if !strings.Contains(buf.String(), "LOT-ECC") {
		t.Fatal("printer broken")
	}
}

func TestDeterminism(t *testing.T) {
	a, b := runQuick(t, Fig31), runQuick(t, Fig31)
	for fi := range a.Fraction {
		for y := range a.Fraction[fi] {
			if a.Fraction[fi][y] != b.Fraction[fi][y] {
				t.Fatal("Fig 3.1 not deterministic")
			}
		}
	}
}

// TestFig7xIdenticalAtAnyParallelism pins the scratch-threaded simulator
// fan-outs to the engine's bit-identical contract: the rendered Fig 7.1 and
// Fig 7.3 exhibits are byte-identical at parallelism 1, 4, and GOMAXPROCS,
// even though each worker reuses one sim.Scratch across its runs.
func TestFig7xIdenticalAtAnyParallelism(t *testing.T) {
	ctx := context.Background()
	render := func(parallel int) (string, string) {
		cfg := exhibit.NewConfig(exhibit.WithQuick(true), exhibit.WithParallel(parallel))
		var b71, b73 bytes.Buffer
		r71, err := Fig71(ctx, cfg)
		if err != nil {
			t.Fatal(err)
		}
		r71.Fprint(&b71)
		r73, err := Fig73(ctx, cfg)
		if err != nil {
			t.Fatal(err)
		}
		r73.Fprint(&b73)
		return b71.String(), b73.String()
	}
	want71, want73 := render(1)
	for _, par := range []int{4, 0} {
		got71, got73 := render(par)
		if got71 != want71 {
			t.Errorf("Fig 7.1 drifted at parallelism %d:\n%s\nvs serial:\n%s", par, got71, want71)
		}
		if got73 != want73 {
			t.Errorf("Fig 7.3 drifted at parallelism %d:\n%s\nvs serial:\n%s", par, got73, want73)
		}
	}
}
