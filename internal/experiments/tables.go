package experiments

import (
	"io"

	"arcc/internal/faultmodel"
	"arcc/internal/workload"
)

// Table71Row is one memory configuration of Table 7.1.
type Table71Row struct {
	Name     string
	Tech     string
	IO       string
	Channels int
	Ranks    int
	RankSize int
}

// Table71 returns the evaluated memory configurations.
func Table71() []Table71Row {
	return []Table71Row{
		{Name: "Baseline", Tech: "DDR2", IO: "X4", Channels: 2, Ranks: 1, RankSize: 36},
		{Name: "ARCC", Tech: "DDR2", IO: "X8", Channels: 2, Ranks: 2, RankSize: 18},
	}
}

// FprintTable71 renders Table 7.1.
func FprintTable71(w io.Writer) {
	fprintf(w, "Table 7.1: Memory Configurations\n")
	fprintf(w, "%-10s %-6s %-4s %-5s %-11s %-9s\n", "Name", "Tech", "I/O", "Chan", "Ranks/Chan", "Rank Size")
	for _, r := range Table71() {
		fprintf(w, "%-10s %-6s %-4s %-5d %-11d %-9d\n", r.Name, r.Tech, r.IO, r.Channels, r.Ranks, r.RankSize)
	}
}

// Table72Row is one processor parameter of Table 7.2.
type Table72Row struct{ Param, Value string }

// Table72 returns the simulated core parameters.
func Table72() []Table72Row {
	return []Table72Row{
		{"SS Width", "2"},
		{"IQ Size", "16"},
		{"Phys Regs", "72FP/72INT"},
		{"LSQ Size", "32LQ/32SQ"},
		{"L1 D$, I$", "32 kB"},
		{"L1 Assoc", "2"},
		{"L1 lat.", "1 cycle"},
		{"L2$", "1MB"},
		{"L2 Assoc", "16"},
		{"L2 lat.", "10 cycles"},
		{"Cacheline Size", "64B"},
		{"L2 MSHR", "240"},
	}
}

// FprintTable72 renders Table 7.2.
func FprintTable72(w io.Writer) {
	fprintf(w, "Table 7.2: Processor Microarchitecture\n")
	for _, r := range Table72() {
		fprintf(w, "%-16s %s\n", r.Param, r.Value)
	}
}

// Table73 returns the 12 workload mixes (Table 7.3).
func Table73() []workload.Mix { return workload.Mixes() }

// FprintTable73 renders Table 7.3.
func FprintTable73(w io.Writer) {
	fprintf(w, "Table 7.3: Workloads\n")
	for _, m := range Table73() {
		fprintf(w, "%-6s %s;%s;%s;%s\n", m.Name,
			m.Benchmarks[0].Name, m.Benchmarks[1].Name, m.Benchmarks[2].Name, m.Benchmarks[3].Name)
	}
}

// Table74Row is one fault-modeling entry of Table 7.4.
type Table74Row struct {
	FaultType string
	Fraction  float64
	Note      string
}

// Table74 returns the fraction of pages upgraded per fault type, derived
// from the ARCC channel shape (not hard-coded: the derivation is the test).
func Table74() []Table74Row {
	shape := faultmodel.ARCCChannelShape()
	return []Table74Row{
		{"Lane", shape.UpgradedFraction(faultmodel.Lane), "causes both ranks per channel to be upgraded"},
		{"Device", shape.UpgradedFraction(faultmodel.Device), "causes 1 of the 2 ranks to be upgraded"},
		{"Subbank", shape.UpgradedFraction(faultmodel.Bank), "causes 1 of the 8 banks in a single rank to be upgraded"},
		{"Column", shape.UpgradedFraction(faultmodel.Column), "causes half of the pages in a single bank to be upgraded"},
	}
}

// FprintTable74 renders Table 7.4.
func FprintTable74(w io.Writer) {
	fprintf(w, "Table 7.4: Fault Modeling Details\n")
	fprintf(w, "%-10s %-10s %s\n", "Fault Type", "Fraction", "Note")
	for _, r := range Table74() {
		fprintf(w, "%-10s %-10.6f %s\n", r.FaultType, r.Fraction, r.Note)
	}
}
