// Package experiments contains one regenerator per table and figure of the
// paper's evaluation. Each Fig/Table function computes the underlying data
// with the packages that model the system and returns a structured result;
// each result type has a Fprint method that renders the same rows/series
// the paper reports. The cmd/arcc-experiments binary, the root benchmark
// suite, and the integration tests all drive these entry points.
package experiments

import (
	"fmt"
	"io"

	"arcc/internal/mc"
)

// Options tunes experiment cost. The zero value requests paper-scale runs;
// Quick cuts simulation volume for tests and benchmarks.
type Options struct {
	// Quick trades precision for speed (shorter instruction budgets,
	// fewer Monte Carlo channels).
	Quick bool
	// Seed drives all randomness; fixed default when zero.
	Seed int64
	// Parallel caps the worker count of the Monte Carlo engine and the
	// per-mix simulation fan-out: 0 means GOMAXPROCS, 1 forces the serial
	// path. Results are bit-identical at any setting for a given seed.
	Parallel int
	// Trials overrides the Monte Carlo channel count of the lifetime
	// figures (0 keeps the profile default).
	Trials int
	// Progress, when non-nil, receives completion counts as an exhibit's
	// Monte Carlo trials or simulator runs finish.
	Progress func(done, total int)
}

// mcOpts returns the engine options for channel-sharded Monte Carlo. The
// reliability sweeps behind the lifetime figures run on the engine's
// scratch path: each worker reuses one fault-arrival buffer across the
// trials it executes, so the per-trial hot loop does not allocate.
func (o Options) mcOpts() mc.Options {
	return mc.Options{Parallelism: o.Parallel, Progress: o.Progress}
}

// simOpts returns the engine options for fan-outs whose trials are whole
// simulator runs: one run per shard.
func (o Options) simOpts() mc.Options {
	return mc.Options{Parallelism: o.Parallel, ShardSize: 1, Progress: o.Progress}
}

func (o Options) seed() int64 {
	if o.Seed == 0 {
		return 1
	}
	return o.Seed
}

// instructions returns the per-core instruction budget for sim runs.
func (o Options) instructions() int64 {
	if o.Quick {
		return 150_000
	}
	return 1_000_000
}

// channels returns the Monte Carlo channel count.
func (o Options) channels() int {
	if o.Trials > 0 {
		return o.Trials
	}
	if o.Quick {
		return 1_000
	}
	return 10_000
}

// Seed-derivation tags: every Monte Carlo consumer derives its base seed
// as mc.DeriveSeed(o.seed(), tag+index), so no two exhibits (or rate
// factors within one exhibit) share an RNG stream.
const (
	tagFig31         uint64 = 0x3100
	tagLifetimeMeas  uint64 = 0x7400
	tagLifetimeWorst uint64 = 0x7500
	tagFig76         uint64 = 0x7600
)

func fprintf(w io.Writer, format string, args ...any) {
	if _, err := fmt.Fprintf(w, format, args...); err != nil {
		panic(err) // experiment printers write to buffers/stdout; failure is programmer error
	}
}
