// Package experiments contains one regenerator per table and figure of the
// paper's evaluation, each registered as an exhibit (internal/exhibit) in
// this package's init: callers discover them with exhibit.Lookup/All and
// run them with Exhibit.Run(ctx, cfg), which yields a structured Report
// renderable as text (byte-identical to the goldens), JSON, or CSV.
//
// The underlying Fig/Table functions remain exported for direct use: each
// computes its data with the packages that model the system and returns a
// typed result whose Fprint method renders the same rows/series the paper
// reports. The Monte Carlo and simulator fan-outs all honour context
// cancellation — a cancelled context aborts within one engine shard and
// surfaces mc.ErrCanceled. The cmd/arcc-experiments binary, the root
// benchmark suite, and the integration tests all drive these entry points
// through the exhibit registry.
package experiments

import (
	"fmt"
	"io"

	"arcc/internal/exhibit"
)

// instructions returns the per-core instruction budget for sim runs under
// cfg's profile.
func instructions(cfg exhibit.Config) int64 {
	if cfg.Quick {
		return 150_000
	}
	return 1_000_000
}

// channels returns the Monte Carlo channel count under cfg's profile.
func channels(cfg exhibit.Config) int {
	if cfg.Trials > 0 {
		return cfg.Trials
	}
	if cfg.Quick {
		return 1_000
	}
	return 10_000
}

// Seed-derivation tags: every Monte Carlo consumer derives its base seed
// as mc.DeriveSeed(cfg.SeedOrDefault(), tag+index), so no two exhibits (or
// rate factors within one exhibit) share an RNG stream.
const (
	tagFig31         uint64 = 0x3100
	tagLifetimeMeas  uint64 = 0x7400
	tagLifetimeWorst uint64 = 0x7500
	tagFig76         uint64 = 0x7600
	tagScenario      uint64 = 0x5C00
)

func fprintf(w io.Writer, format string, args ...any) {
	if _, err := fmt.Fprintf(w, format, args...); err != nil {
		panic(err) // experiment printers write to buffers/stdout; failure is programmer error
	}
}
