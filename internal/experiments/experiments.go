// Package experiments contains one regenerator per table and figure of the
// paper's evaluation. Each Fig/Table function computes the underlying data
// with the packages that model the system and returns a structured result;
// each result type has a Fprint method that renders the same rows/series
// the paper reports. The cmd/arcc-experiments binary, the root benchmark
// suite, and the integration tests all drive these entry points.
package experiments

import (
	"fmt"
	"io"
)

// Options tunes experiment cost. The zero value requests paper-scale runs;
// Quick cuts simulation volume for tests and benchmarks.
type Options struct {
	// Quick trades precision for speed (shorter instruction budgets,
	// fewer Monte Carlo channels).
	Quick bool
	// Seed drives all randomness; fixed default when zero.
	Seed int64
}

func (o Options) seed() int64 {
	if o.Seed == 0 {
		return 1
	}
	return o.Seed
}

// instructions returns the per-core instruction budget for sim runs.
func (o Options) instructions() int64 {
	if o.Quick {
		return 150_000
	}
	return 1_000_000
}

// channels returns the Monte Carlo channel count.
func (o Options) channels() int {
	if o.Quick {
		return 1_000
	}
	return 10_000
}

func fprintf(w io.Writer, format string, args ...any) {
	if _, err := fmt.Fprintf(w, format, args...); err != nil {
		panic(err) // experiment printers write to buffers/stdout; failure is programmer error
	}
}
